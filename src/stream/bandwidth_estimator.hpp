// BandwidthEstimator: the measurement half of the ABR loop.
//
// An exponentially-weighted moving average of link throughput over
// *completed* transfers — failed or partial transfers never feed it, so a
// lossy link is estimated by what actually arrives. Each front-end that
// owns a viewer owns one estimator (per-session in SceneServer, one in a
// standalone StreamingLoader); every demand fetch and prefetch that front-
// end pays observes (bytes, elapsed_ns) here, and each begin_frame copies
// bandwidth_bytes_per_sec() into its LodPolicy's throughput term
// (lod_policy.hpp) before tier selection.
//
// Transfers with zero duration are skipped: an instantaneous transfer
// (MemoryBackend, a perfect simulated link) carries no throughput
// information, so a session on such a link keeps "no estimate" (0.0) and
// the ABR term stays inert — which is exactly the bit-exact default.
//
// Convergence: for a constant-rate link the estimate lands on the true
// rate with the first sample and stays there; after a rate step the error
// shrinks by (1 - alpha) per sample, so the estimate is within
// (1-alpha)^n of the step after n transfers. Thread-safe; observe() is
// called from render workers and the async prefetch lane concurrently.
#pragma once

#include <cstdint>
#include <mutex>

namespace sgs::stream {

class BandwidthEstimator {
 public:
  explicit BandwidthEstimator(double alpha = 0.25) : alpha_(alpha) {}

  // Records one completed transfer. No-op when bytes or elapsed_ns is 0.
  void observe(std::uint64_t bytes, std::uint64_t elapsed_ns) {
    if (bytes == 0 || elapsed_ns == 0) return;
    const double rate =
        static_cast<double>(bytes) * 1e9 / static_cast<double>(elapsed_ns);
    std::lock_guard<std::mutex> lk(mutex_);
    if (samples_ == 0) {
      ewma_bps_ = rate;
    } else {
      ewma_bps_ += alpha_ * (rate - ewma_bps_);
    }
    ++samples_;
  }

  // Estimated link throughput; 0.0 until the first completed transfer
  // ("no estimate" — the ABR term treats it as an unconstrained link).
  double bandwidth_bytes_per_sec() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return ewma_bps_;
  }

  std::uint64_t samples() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return samples_;
  }

 private:
  mutable std::mutex mutex_;
  double alpha_;
  double ewma_bps_ = 0.0;
  std::uint64_t samples_ = 0;
};

}  // namespace sgs::stream
