// Minimal binary PPM (P6) reader/writer so rendered frames can be inspected
// without any external image dependency.
#pragma once

#include <string>

#include "common/image.hpp"

namespace sgs {

// Writes `img` as binary PPM with sRGB-ish 1/2.2 gamma and 8-bit
// quantization. Returns false on IO failure.
bool write_ppm(const std::string& path, const Image& img, bool apply_gamma = true);

// Reads a binary PPM written by write_ppm (inverse gamma applied when
// `apply_gamma`). Returns an empty image on failure.
Image read_ppm(const std::string& path, bool apply_gamma = true);

}  // namespace sgs
