// Unit helpers and formatting for the hardware-model reports.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace sgs {

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kGB = 1e9;   // DRAM vendors quote decimal GB/s
constexpr double kGHz = 1e9;
constexpr double kPJ = 1e-12;
constexpr double kMJ_PER_PJ = 1e-12 / 1e6;

// Pretty "12.3 MB" style formatting for byte counts.
inline std::string format_bytes(double bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (bytes >= kGiB) {
    os << bytes / kGiB << " GiB";
  } else if (bytes >= kMiB) {
    os << bytes / kMiB << " MiB";
  } else if (bytes >= kKiB) {
    os << bytes / kKiB << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

// "45.7x" multiplier formatting used across the figure harnesses.
inline std::string format_ratio(double r, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << r << "x";
  return os.str();
}

inline std::string format_fixed(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace sgs
