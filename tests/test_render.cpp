// Tests for the tile-centric reference renderer and its traffic accounting.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gs/sh.hpp"
#include "metrics/psnr.hpp"
#include "render/tile_renderer.hpp"
#include "scene/generator.hpp"

namespace sgs::render {
namespace {

gs::Camera front_camera(int w = 128, int h = 128) {
  return gs::Camera::look_at({0, 0, -4}, {0, 0, 0}, {0, 1, 0}, 0.7f, w, h);
}

gs::Gaussian solid_gaussian(Vec3f pos, Vec3f color, float scale = 0.15f,
                            float opacity = 0.95f) {
  gs::Gaussian g;
  g.position = pos;
  g.scale = {scale, scale, scale};
  g.opacity = opacity;
  g.sh[0] = gs::color_to_dc(color);
  return g;
}

TEST(TileRenderer, EmptyModelGivesBackground) {
  TileRenderConfig cfg;
  cfg.background = {0.25f, 0.5f, 0.75f};
  const auto r = render_tile_centric({}, front_camera(), cfg);
  for (const auto& p : r.image.pixels()) {
    EXPECT_EQ(p, (Vec3f{0.25f, 0.5f, 0.75f}));
  }
  EXPECT_EQ(r.trace.pair_count, 0u);
  EXPECT_EQ(r.trace.blend_ops, 0u);
}

TEST(TileRenderer, SingleGaussianColorsCenter) {
  gs::GaussianModel model;
  model.gaussians = {solid_gaussian({0, 0, 0}, {1.0f, 0.0f, 0.0f})};
  const auto r = render_tile_centric(model, front_camera());
  const Vec3f center = r.image.at(64, 64);
  EXPECT_GT(center.x, 0.5f);
  EXPECT_LT(center.y, 0.2f);
  // Far corner stays background.
  EXPECT_LT(r.image.at(2, 2).x, 0.05f);
}

TEST(TileRenderer, FrontGaussianWins) {
  gs::GaussianModel model;
  model.gaussians = {solid_gaussian({0, 0, 1.0f}, {0, 1, 0}),   // back, green
                     solid_gaussian({0, 0, -1.0f}, {1, 0, 0})}; // front, red
  const auto r = render_tile_centric(model, front_camera());
  const Vec3f center = r.image.at(64, 64);
  EXPECT_GT(center.x, center.y * 2.0f);
  // Order in the model array must not matter (depth sort).
  std::swap(model.gaussians[0], model.gaussians[1]);
  const auto r2 = render_tile_centric(model, front_camera());
  EXPECT_NEAR(r2.image.at(64, 64).x, center.x, 1e-5f);
}

TEST(TileRenderer, TranslucentBlendsBoth) {
  gs::GaussianModel model;
  model.gaussians = {solid_gaussian({0, 0, -1.0f}, {1, 0, 0}, 0.3f, 0.5f),
                     solid_gaussian({0, 0, 1.0f}, {0, 1, 0}, 0.3f, 0.9f)};
  const auto r = render_tile_centric(model, front_camera());
  const Vec3f center = r.image.at(64, 64);
  EXPECT_GT(center.x, 0.2f);
  EXPECT_GT(center.y, 0.1f);  // back shows through 50% front
}

TEST(TileRenderer, BehindCameraInvisible) {
  gs::GaussianModel model;
  model.gaussians = {solid_gaussian({0, 0, -10.0f}, {1, 0, 0})};
  const auto r = render_tile_centric(model, front_camera());
  EXPECT_EQ(r.trace.projected_count, 0u);
  for (const auto& p : r.image.pixels()) EXPECT_EQ(p.x, 0.0f);
}

TEST(TileRenderer, TraceCountsConsistent) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = 3000;
  cfg.extent_min = {-1.5f, -1.5f, -1.5f};
  cfg.extent_max = {1.5f, 1.5f, 1.5f};
  cfg.seed = 31;
  const auto model = scene::generate_scene(cfg);
  const auto r = render_tile_centric(model, front_camera(256, 192));

  EXPECT_EQ(r.trace.gaussian_count, model.size());
  EXPECT_LE(r.trace.projected_count, r.trace.gaussian_count);
  EXPECT_LE(r.trace.contributing_count, r.trace.projected_count);
  EXPECT_LE(r.trace.processed_pairs, r.trace.pair_count);
  EXPECT_EQ(r.trace.pixel_count, 256u * 192u);
  EXPECT_EQ(r.trace.tile_count, (256u / 16) * (192u / 16));

  // Per-tile pair counts sum to the global pair count.
  std::uint64_t sum = 0;
  for (auto c : r.trace.tile_pair_counts) sum += c;
  EXPECT_EQ(sum, r.trace.pair_count);
}

TEST(TileRenderer, TrafficFormulasExact) {
  scene::GeneratorConfig scfg;
  scfg.gaussian_count = 1000;
  scfg.seed = 13;
  const auto model = scene::generate_scene(scfg);
  TileRenderConfig cfg;
  const auto r = render_tile_centric(model, front_camera(), cfg);
  const auto& rs = cfg.record_sizes;
  const auto& t = r.trace;

  EXPECT_EQ(t.traffic[Stage::kProjectionRead], model.size() * rs.gaussian_in);
  EXPECT_EQ(t.traffic[Stage::kProjectionWrite],
            t.projected_count * rs.projected_feature + t.pair_count * rs.sort_pair);
  EXPECT_EQ(t.traffic[Stage::kSortingRead],
            static_cast<std::uint64_t>(rs.sort_passes) * t.pair_count * rs.sort_pair);
  EXPECT_EQ(t.traffic[Stage::kSortingRead], t.traffic[Stage::kSortingWrite]);
  EXPECT_EQ(t.traffic[Stage::kRenderingRead], t.processed_pairs * rs.render_fetch);
  EXPECT_EQ(t.traffic[Stage::kRenderingWrite], t.pixel_count * rs.frame_pixel);
  EXPECT_EQ(t.traffic.total(),
            t.traffic[Stage::kProjectionRead] + t.traffic[Stage::kProjectionWrite] +
                t.traffic[Stage::kSortingRead] + t.traffic[Stage::kSortingWrite] +
                t.traffic[Stage::kRenderingRead] + t.traffic[Stage::kRenderingWrite]);
}

TEST(TileRenderer, IntermediateTrafficExcludesModelAndFrame) {
  TrafficBreakdown t;
  t[Stage::kProjectionRead] = 100;
  t[Stage::kProjectionWrite] = 40;
  t[Stage::kSortingRead] = 30;
  t[Stage::kSortingWrite] = 30;
  t[Stage::kRenderingRead] = 20;
  t[Stage::kRenderingWrite] = 5;
  EXPECT_EQ(t.total(), 225u);
  EXPECT_EQ(t.intermediate(), 120u);
  EXPECT_NEAR(t.fraction(Stage::kProjectionRead), 100.0 / 225.0, 1e-12);
}

TEST(TileRenderer, StageNames) {
  EXPECT_STREQ(stage_name(Stage::kProjectionRead), "projection-read");
  EXPECT_STREQ(stage_name(Stage::kRenderingWrite), "rendering-write");
}

TEST(TileRenderer, DeterministicAcrossRuns) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = 2000;
  cfg.seed = 17;
  const auto model = scene::generate_scene(cfg);
  const auto a = render_tile_centric(model, front_camera());
  const auto b = render_tile_centric(model, front_camera());
  EXPECT_EQ(a.image.pixels(), b.image.pixels());
  EXPECT_EQ(a.trace.blend_ops, b.trace.blend_ops);
}

TEST(TileRenderer, OpaqueWallTriggersEarlyTermination) {
  // A dense wall of opaque Gaussians in front of many behind: the processed
  // pair count must be well below the total pair count.
  gs::GaussianModel model;
  Rng rng(19);
  for (int i = 0; i < 400; ++i) {
    model.gaussians.push_back(solid_gaussian(
        {rng.uniform(-0.6f, 0.6f), rng.uniform(-0.6f, 0.6f), -1.0f},
        {0.8f, 0.2f, 0.2f}, 0.25f, 0.99f));
  }
  for (int i = 0; i < 400; ++i) {
    model.gaussians.push_back(solid_gaussian(
        {rng.uniform(-0.6f, 0.6f), rng.uniform(-0.6f, 0.6f), 1.5f},
        {0.2f, 0.8f, 0.2f}, 0.25f, 0.99f));
  }
  const auto r = render_tile_centric(model, front_camera(64, 64));
  EXPECT_LT(r.trace.processed_pairs, r.trace.pair_count);
}

TEST(TileRenderer, NonMultipleTileResolution) {
  // 100x75 is not a multiple of 16; edge tiles must render correctly.
  gs::GaussianModel model;
  model.gaussians = {solid_gaussian({0, 0, 0}, {0, 0, 1}, 0.5f)};
  const auto r = render_tile_centric(model, front_camera(100, 75));
  EXPECT_EQ(r.image.width(), 100);
  EXPECT_EQ(r.image.height(), 75);
  EXPECT_GT(r.image.at(50, 37).z, 0.3f);
}

}  // namespace
}  // namespace sgs::render
