#include "stream/residency_cache.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "obs/trace.hpp"

namespace sgs::stream {

ResidencyCache::ResidencyCache(const AssetStore& store,
                               ResidencyCacheConfig config)
    : store_(&store),
      config_(config),
      budget_bytes_(config.budget_bytes),
      entries_(static_cast<std::size_t>(store.group_count())) {
  if (config_.coarse_floor_budget_bytes > 0 && store.has_coarse_tier()) {
    pin_coarse_floor();
  }
}

void ResidencyCache::pin_coarse_floor() {
  const int tier = store_->coarse_tier();
  const auto dir = store_->directory();
  // Predict the decoded floor from the directory alone: decoded records are
  // fixed-width columns, so the floor costs kept-residents x
  // kBytesPerRecord regardless of SH truncation. All-or-nothing: a floor
  // that does not fit is disabled before a single byte is read — a partial
  // floor would let acquire "never block" for some groups and stall on the
  // rest, the worst of both behaviors.
  std::uint64_t predicted = 0;
  for (const AssetDirEntry& e : dir) {
    predicted += std::uint64_t{e.tiers[static_cast<std::size_t>(tier)].count} *
                 gs::GaussianColumns::kBytesPerRecord;
  }
  if (predicted > config_.coarse_floor_budget_bytes) {
    SGS_TRACE_INSTANT("cache", "coarse_floor_disabled", "predicted_bytes",
                      predicted, "budget_bytes",
                      config_.coarse_floor_budget_bytes);
    return;
  }
  SGS_TRACE_SPAN("cache", "pin_coarse_floor", "groups",
                 static_cast<std::uint64_t>(dir.size()));
  floor_.resize(entries_.size());
  floor_present_.assign(entries_.size(), 0);
  for (std::size_t i = 0; i < dir.size(); ++i) {
    if (dir[i].count == 0) continue;  // empty groups need no floor payload
    const auto v = static_cast<voxel::DenseVoxelId>(i);
    StreamResult<DecodedGroup> read = store_->read_group_checked(v, tier);
    if (!read.ok()) {
      // A hole, not a poisoned runtime state: this group's demand path
      // keeps its full retry budget — only the one-shot floor pin is
      // missing, so its acquires fall back to the blocking path.
      ++stats_.fetch_errors;
      entries_[i].last_error =
          std::make_shared<const StreamError>(read.take_error());
      continue;
    }
    floor_[i] = read.take();
    floor_bytes_ += floor_[i].resident_bytes();
    floor_present_[i] = 1;
  }
  coarse_tier_ = tier;
}

void ResidencyCache::record_coarse_fallback() {
  std::lock_guard<std::mutex> lk(mutex_);
  ++stats_.coarse_fallbacks;
}

void ResidencyCache::begin_frame(
    const FrameIntent&, std::span<const voxel::DenseVoxelId> plan_voxels) {
  // Pin the plan's working set: whether or not a candidate is resident yet,
  // it must not be evicted while the frame is in flight (views into it may
  // outlive their release()).
  frame_pins_.assign(plan_voxels.begin(), plan_voxels.end());
  std::lock_guard<std::mutex> lk(mutex_);
  assert(!bracket_active_ &&
         "ResidencyCache::begin_frame frames must not overlap");
  bracket_active_ = true;
  pin_plan_locked(frame_pins_);
}

void ResidencyCache::end_frame() {
  std::lock_guard<std::mutex> lk(mutex_);
  assert(bracket_active_ && "end_frame without begin_frame");
  unpin_plan_locked(frame_pins_);
  frame_pins_.clear();
  bracket_active_ = false;
}

void ResidencyCache::pin_plan(std::span<const voxel::DenseVoxelId> voxels) {
  std::lock_guard<std::mutex> lk(mutex_);
  // The single-session bracket and multi-session pin_plan must not drive
  // one cache at the same time: the bracket owns the frame_pins_ slot and
  // assumes it is the only pinner whose unpin drains the budget overshoot.
  assert(!bracket_active_ &&
         "pin_plan while a begin_frame/end_frame bracket is active — use one "
         "pinning path per cache");
  pin_plan_locked(voxels);
}

void ResidencyCache::unpin_plan(std::span<const voxel::DenseVoxelId> voxels) {
  std::lock_guard<std::mutex> lk(mutex_);
  assert(!bracket_active_ &&
         "unpin_plan while a begin_frame/end_frame bracket is active — use "
         "one pinning path per cache");
  unpin_plan_locked(voxels);
}

void ResidencyCache::pin_plan_locked(
    std::span<const voxel::DenseVoxelId> voxels) {
  for (const voxel::DenseVoxelId v : voxels) {
    ++entries_[static_cast<std::size_t>(v)].plan_pins;
  }
}

void ResidencyCache::unpin_plan_locked(
    std::span<const voxel::DenseVoxelId> voxels) {
  for (const voxel::DenseVoxelId v : voxels) {
    Entry& e = entries_[static_cast<std::size_t>(v)];
    assert(e.plan_pins > 0);
    --e.plan_pins;
  }
  // Pins may have carried residency above budget; drain the overshoot now.
  // (Unconditional: a session that pinned nothing still gets the drain.)
  evict_over_budget_locked();
}

GroupView ResidencyCache::acquire(voxel::DenseVoxelId v) {
  return acquire_outcome(v).view;
}

AcquireOutcome ResidencyCache::acquire_outcome(voxel::DenseVoxelId v, int tier,
                                               std::uint64_t deadline_ns) {
  std::unique_lock<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  AcquireOutcome out;
  out.group = v;
  out.requested_tier = tier;
  // The deadline can only divert to a payload that exists: the pinned
  // floor (immutable after construction) or a stale resident tier
  // (re-checked at the decision points — residency moves while we wait).
  const bool floor_here = coarse_floor_resident(v);
  bool fallback = false;
  for (;;) {
    if (e.loading) {
      if (deadline_ns != kNoFetchDeadline && (floor_here || e.resident)) {
        // Someone else's fetch is in flight. Sleeping past the deadline is
        // exactly the stall the deadline exists to kill: wait only until
        // it, then serve the fallback (the in-flight fetch still lands and
        // serves future frames).
        const auto until = std::chrono::steady_clock::time_point(
            std::chrono::nanoseconds(deadline_ns));
        if (!cv_.wait_until(lk, until, [&e] { return !e.loading; })) {
          fallback = true;
          break;
        }
      } else {
        // Another worker (or the prefetcher) is fetching this group; its
        // arrival serves this acquire without paying a fetch: a hit, as
        // long as the arriving tier satisfies the request (re-checked
        // below).
        cv_.wait(lk, [&e] { return !e.loading; });
      }
      continue;
    }
    if (e.resident && e.tier <= tier) {
      if (!out.missed) {
        ++stats_.hits;
        ++stats_.tier_hits[static_cast<std::size_t>(e.tier)];
      }
      break;
    }
    // Demand miss (absent) or upgrade (resident at a worse tier): this
    // render worker wants a fetch either way. Error gating first — a
    // negative-cached or backing-off (group, tier) is served degraded
    // without touching the disk (that is the whole point of the negative
    // cache). The state is tier-scoped: a corrupt L0 payload leaves this
    // same group's L1/L2 requests fetching normally.
    const auto t = static_cast<std::size_t>(tier);
    if (e.tier_failed(tier) || e.backoff_remaining[t] > 0) {
      if (!e.tier_failed(tier)) --e.backoff_remaining[t];
      ++stats_.misses;
      ++stats_.tier_misses[t];
      ++stats_.degraded_groups;
      SGS_TRACE_INSTANT("cache", "degraded", "group",
                        static_cast<std::uint64_t>(v), "tier",
                        static_cast<std::uint64_t>(tier));
      out.degraded = true;
      out.group_failed = e.tier_failed(tier);
      out.error = e.last_error;
      break;
    }
    // Deadline gate: the wanted fetch would block past the deadline. With
    // a fallback payload available, serve it instead of the disk; without
    // one, fall through to the blocking path — a deadline bounds stalls,
    // it never invents pixels.
    if (deadline_ns != kNoFetchDeadline && (floor_here || e.resident) &&
        core::stage_clock_ns() >= deadline_ns) {
      fallback = true;
      break;
    }
    ++stats_.misses;
    ++stats_.tier_misses[static_cast<std::size_t>(tier)];
    const bool upgrade_attempt = e.resident;
    if (!fetch_locked(lk, v, tier, /*is_prefetch=*/false)) {
      // The fetch failed: serve the stale resident payload when there is
      // one (a failed upgrade keeps its old tier), an empty view otherwise
      // — the frame renders without this group instead of dying with it.
      ++stats_.degraded_groups;
      SGS_TRACE_INSTANT("cache", "degraded", "group",
                        static_cast<std::uint64_t>(v), "tier",
                        static_cast<std::uint64_t>(tier));
      out.degraded = true;
      out.fetch_errored = true;
      out.group_failed = e.tier_failed(tier);
      out.error = e.last_error;
      break;
    }
    if (upgrade_attempt) {
      ++stats_.upgrades;
      out.upgraded = true;
    }
    out.missed = true;
    out.bytes_fetched = e.group.payload_bytes;
    out.fetch_ns = e.group.fetch_ns;
  }
  // Pin on every path — including degraded empty views and floor serves —
  // so the caller's unconditional release() stays balanced.
  ++e.pins;
  if (e.resident) {
    touch_locked(e, v);
    // Eviction runs only now, with the new entry pinned: with every other
    // group pinned the pass could otherwise evict the group this very call
    // just fetched (fetch_locked defers eviction for exactly that reason).
    if (out.missed) evict_over_budget_locked();
    if (fallback) {
      // Stale-tier fallback: served what is already here, no disk touch —
      // a hit at the stale tier (the caller paid no fetch). The front-end
      // re-queues the wanted tier as an urgent prefetch.
      ++stats_.hits;
      ++stats_.tier_hits[static_cast<std::size_t>(e.tier)];
      out.coarse_fallback = true;
      SGS_TRACE_INSTANT("cache", "coarse_fallback", "group",
                        static_cast<std::uint64_t>(v), "tier",
                        static_cast<std::uint64_t>(e.tier));
    }
    out.served_tier = e.tier;
    out.view.model_indices = e.group.model_indices;
    out.view.cols = &e.group.cols;
    out.view.first = 0;
  } else if (fallback || (out.degraded && floor_here)) {
    // Floor serve: the pinned coarse payload, immortal for the cache's
    // lifetime — the view needs no residency protection (the pin above
    // only keeps release() balanced). A deadline fallback counts as a hit
    // at the floor tier; a degraded (error-state) serve keeps its miss
    // accounting and merely upgrades the empty view to the floor payload.
    const DecodedGroup& g = floor_[static_cast<std::size_t>(v)];
    if (fallback) {
      ++stats_.hits;
      ++stats_.tier_hits[static_cast<std::size_t>(coarse_tier_)];
      out.coarse_fallback = true;
      SGS_TRACE_INSTANT("cache", "coarse_fallback", "group",
                        static_cast<std::uint64_t>(v), "tier",
                        static_cast<std::uint64_t>(coarse_tier_));
    }
    out.served_tier = coarse_tier_;
    out.view.model_indices = g.model_indices;
    out.view.cols = &g.cols;
    out.view.first = 0;
  } else {
    // Nothing to serve: an empty view the pipeline streams zero residents
    // through (the rest of the frame is unaffected).
    out.served_tier = -1;
    out.view.model_indices = {};
    out.view.cols = nullptr;
    out.view.first = 0;
  }
  return out;
}

void ResidencyCache::release(voxel::DenseVoxelId v) {
  std::lock_guard<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  // Degraded (empty-view) acquires pin non-resident entries, so residency
  // is not implied here — only pin balance is.
  assert(e.pins > 0);
  --e.pins;
  // An upgrade may be parked on this group waiting for views to drain.
  if (e.pins == 0 && e.loading) cv_.notify_all();
}

bool ResidencyCache::prefetch(voxel::DenseVoxelId v, int tier,
                              std::uint64_t* fetched_bytes) {
  return prefetch_checked(v, tier, fetched_bytes) == PrefetchResult::kFetched;
}

PrefetchResult ResidencyCache::prefetch_checked(voxel::DenseVoxelId v,
                                                int tier,
                                                std::uint64_t* fetched_bytes,
                                                std::uint64_t* fetched_ns) {
  std::unique_lock<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  if (e.loading) return PrefetchResult::kSkipped;
  if (e.resident && e.tier <= tier) return PrefetchResult::kSkipped;
  // Upgrading a group someone is reading would block the async lane on the
  // readers; leave it to the next demand acquire instead.
  if (e.resident && e.pins > 0) return PrefetchResult::kSkipped;
  // Negative cache: a corrupt payload is re-requested by ranking every
  // frame and every session; each denial must cost a counter decrement,
  // not a disk read — that is what turns one bad payload from a refetch
  // storm into background noise.
  const auto t = static_cast<std::size_t>(tier);
  if (e.tier_failed(tier) || e.backoff_remaining[t] > 0) {
    if (!e.tier_failed(tier)) --e.backoff_remaining[t];
    return PrefetchResult::kNegativeCached;
  }
  if (!fetch_locked(lk, v, tier, /*is_prefetch=*/true)) {
    return PrefetchResult::kErrored;
  }
  if (fetched_bytes != nullptr) *fetched_bytes = e.group.payload_bytes;
  if (fetched_ns != nullptr) *fetched_ns = e.group.fetch_ns;
  evict_over_budget_locked();
  return PrefetchResult::kFetched;
}

bool ResidencyCache::group_failed(voxel::DenseVoxelId v) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return entries_[static_cast<std::size_t>(v)].failed_tiers != 0;
}

bool ResidencyCache::tier_failed(voxel::DenseVoxelId v, int tier) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return entries_[static_cast<std::size_t>(v)].tier_failed(tier);
}

std::optional<StreamError> ResidencyCache::group_error(
    voxel::DenseVoxelId v) const {
  std::lock_guard<std::mutex> lk(mutex_);
  const Entry& e = entries_[static_cast<std::size_t>(v)];
  if (e.last_error == nullptr) return std::nullopt;
  return *e.last_error;
}

bool ResidencyCache::resident(voxel::DenseVoxelId v) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return entries_[static_cast<std::size_t>(v)].resident;
}

int ResidencyCache::resident_tier(voxel::DenseVoxelId v) const {
  std::lock_guard<std::mutex> lk(mutex_);
  const Entry& e = entries_[static_cast<std::size_t>(v)];
  return e.resident ? e.tier : -1;
}

std::vector<std::uint8_t> ResidencyCache::resident_snapshot() const {
  std::vector<std::uint8_t> flags(entries_.size(), 0);
  std::lock_guard<std::mutex> lk(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    flags[i] = entries_[i].resident ? 1 : 0;
  }
  return flags;
}

std::vector<std::uint8_t> ResidencyCache::tier_snapshot() const {
  std::vector<std::uint8_t> tiers;
  ranking_snapshot(&tiers, nullptr);
  return tiers;
}

std::vector<std::uint8_t> ResidencyCache::failed_tier_snapshot() const {
  std::vector<std::uint8_t> failed;
  ranking_snapshot(nullptr, &failed);
  return failed;
}

void ResidencyCache::ranking_snapshot(
    std::vector<std::uint8_t>* resident_tiers,
    std::vector<std::uint8_t>* failed_tiers) const {
  if (resident_tiers != nullptr) {
    resident_tiers->assign(entries_.size(), kTierAbsent);
  }
  if (failed_tiers != nullptr) failed_tiers->assign(entries_.size(), 0);
  std::lock_guard<std::mutex> lk(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (resident_tiers != nullptr && entries_[i].resident) {
      (*resident_tiers)[i] = static_cast<std::uint8_t>(entries_[i].tier);
    }
    if (failed_tiers != nullptr) {
      (*failed_tiers)[i] = entries_[i].failed_tiers;
    }
  }
}

std::uint64_t ResidencyCache::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return resident_bytes_;
}

std::uint64_t ResidencyCache::budget_bytes() const {
  return budget_bytes_.load(std::memory_order_relaxed);
}

void ResidencyCache::set_budget_bytes(std::uint64_t budget_bytes) {
  std::lock_guard<std::mutex> lk(mutex_);
  budget_bytes_.store(budget_bytes, std::memory_order_relaxed);
  // A shrink takes effect now, not at the next fetch: the governor's
  // invariant is that shards sum to the global budget the moment a
  // rebalance returns (pinned in-flight working sets excepted, as always).
  evict_over_budget_locked();
}

core::StreamCacheStats ResidencyCache::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

bool ResidencyCache::fetch_locked(std::unique_lock<std::mutex>& lk,
                                  voxel::DenseVoxelId v, int tier,
                                  bool is_prefetch) {
  Entry& e = entries_[static_cast<std::size_t>(v)];
  e.loading = true;
  const bool upgrade = e.resident;
  if (upgrade) {
    // Replacing the payload invalidates its buffers; wait for outstanding
    // views to drain first. New acquires queue behind `loading`, and the
    // pipeline holds at most one group per worker while waiting on none,
    // so the drain cannot deadlock. Eviction skips loading entries.
    cv_.wait(lk, [&e] { return e.pins == 0; });
  }
  // RAII over the in-flight mark: `loading` is cleared and every waiter
  // woken on ANY exit from this function — early return, a throw from the
  // store read, an allocation failure in decode. Without this, one
  // throwing fetch would leave loading=true forever and every later
  // acquire of this group would sleep on cv_ for good (the deadlock the
  // failure-domain work exists to kill).
  struct LoadingGuard {
    std::unique_lock<std::mutex>& lk;
    Entry& e;
    std::condition_variable& cv;
    ~LoadingGuard() {
      if (!lk.owns_lock()) lk.lock();
      e.loading = false;
      cv.notify_all();
    }
  } guard{lk, e, cv_};

  lk.unlock();
  // Disk read + decode outside the lock: other groups stay acquirable and
  // other fetches only serialize on the store's own file mutex. The typed
  // read path never throws; errors come back as values.
  StreamResult<DecodedGroup> fetched = [&] {
    SGS_TRACE_SPAN("cache", "fetch", "group", static_cast<std::uint64_t>(v),
                   "tier", static_cast<std::uint64_t>(tier));
    return store_->read_group_checked(v, tier);
  }();
  lk.lock();
  if (!fetched.ok()) {
    const auto t = static_cast<std::size_t>(tier);
    ++stats_.fetch_errors;
    e.last_error =
        std::make_shared<const StreamError>(fetched.take_error());
    // Saturating: fail_count is a u8 and max_fetch_attempts an unvalidated
    // int — a wrap at 255 under a keep-retrying config would both dodge
    // the budget check and feed a negative shift (UB) below.
    if (e.fail_count[t] < 255) ++e.fail_count[t];
    const int budget = std::clamp(config_.max_fetch_attempts, 1, 255);
    if (e.fail_count[t] >= budget) {
      // Retry budget exhausted: negative-cache this (group, tier) for the
      // cache's lifetime. Total disk touches for a permanently-bad payload
      // are bounded by max_fetch_attempts, no matter how many sessions
      // keep asking for it; the group's OTHER tiers stay fetchable.
      if (e.failed_tiers == 0) ++stats_.failed_groups;
      e.failed_tiers |= static_cast<std::uint8_t>(1u << tier);
      e.backoff_remaining[t] = 0;
    } else {
      const int shift = std::min<int>(e.fail_count[t] - 1, 16);
      e.backoff_remaining[t] = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(
              config_.retry_backoff_cap,
              std::uint64_t{config_.retry_backoff_base} << shift));
      SGS_TRACE_INSTANT("cache", "retry", "group",
                        static_cast<std::uint64_t>(v), "tier",
                        static_cast<std::uint64_t>(tier));
    }
    return false;  // guard clears loading + notifies waiters
  }
  // Success resets this tier's failure state: a transient error (repaired
  // file, recovered disk) does not haunt the tier forever.
  e.fail_count[static_cast<std::size_t>(tier)] = 0;
  e.backoff_remaining[static_cast<std::size_t>(tier)] = 0;
  if (upgrade) {
    resident_bytes_ -= e.group.resident_bytes();
  }
  e.group = fetched.take();
  e.tier = tier;
  if (!e.resident) {
    e.resident = true;
    lru_.push_front(v);
    e.lru_it = lru_.begin();
  }
  resident_bytes_ += e.group.resident_bytes();
  stats_.bytes_fetched += e.group.payload_bytes;
  stats_.tier_bytes_fetched[static_cast<std::size_t>(tier)] +=
      e.group.payload_bytes;
  // Link accounting (trace v8): the backend transfer this fetch completed.
  // Fetch-scoped like bytes_fetched — floor pinning and open-time metadata
  // traffic live in the store backend's own stats(), not here.
  stats_.net_bytes += e.group.payload_bytes;
  stats_.net_stall_ns += e.group.fetch_ns;
  if (is_prefetch) {
    ++stats_.prefetches;
    ++stats_.tier_prefetches[static_cast<std::size_t>(tier)];
  }
  // Deliberately no eviction pass here: a demand-missing acquire must pin
  // the new entry first, or — with every other resident group pinned — the
  // pass could evict the group it just fetched out from under the caller.
  // Callers run evict_over_budget_locked() once the entry is protected.
  return true;  // guard clears loading + notifies waiters
}

void ResidencyCache::touch_locked(Entry& e, voxel::DenseVoxelId v) {
  if (e.lru_it != lru_.begin()) {
    lru_.erase(e.lru_it);
    lru_.push_front(v);
    e.lru_it = lru_.begin();
  }
}

void ResidencyCache::evict_over_budget_locked() {
  auto it = lru_.end();
  const std::uint64_t budget = budget_bytes_.load(std::memory_order_relaxed);
  while (resident_bytes_ > budget && it != lru_.begin()) {
    --it;
    Entry& e = entries_[static_cast<std::size_t>(*it)];
    if (e.pins > 0 || e.plan_pins > 0 || e.loading) {
      continue;  // protected (or mid-upgrade); try next-older
    }
    resident_bytes_ -= e.group.resident_bytes();
    e.group = DecodedGroup{};  // frees the decoded buffers
    e.resident = false;
    SGS_TRACE_INSTANT("cache", "evict", "group",
                      static_cast<std::uint64_t>(*it));
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

}  // namespace sgs::stream
