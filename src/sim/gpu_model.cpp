#include "sim/gpu_model.hpp"

#include <algorithm>

#include "gs/gaussian.hpp"

namespace sgs::sim {

GpuSimResult simulate_gpu(const render::TileCentricTrace& trace,
                          const GpuConfig& cfg) {
  using render::Stage;
  GpuSimResult result;
  const render::TrafficBreakdown& t = trace.traffic;

  const double peak_flops = cfg.peak_tflops * 1e12;
  const double bw = cfg.mem_bw_gbps * 1e9 * cfg.mem_eff;

  result.projection_bytes =
      t[Stage::kProjectionRead] + t[Stage::kProjectionWrite];
  result.sorting_bytes = t[Stage::kSortingRead] + t[Stage::kSortingWrite];
  result.rendering_bytes =
      t[Stage::kRenderingRead] + t[Stage::kRenderingWrite];

  // Projection: full 427-MAC projection for every Gaussian.
  const double proj_flops = static_cast<double>(trace.gaussian_count) *
                            gs::kFineFilterMacs * cfg.flops_per_mac;
  result.stages.projection_s =
      std::max(proj_flops / (peak_flops * cfg.compute_eff_projection),
               static_cast<double>(result.projection_bytes) / bw);

  // Sorting: radix sort is memory-bound; compute cost is hidden.
  result.stages.sorting_s = static_cast<double>(result.sorting_bytes) / bw;

  // Rendering: the CUDA kernel evaluates every pixel of a tile for every
  // traversed pair (warp-synchronous loop, no sub-tile skipping), so the
  // GPU's blend work is pairs * tile-pixels rather than the covered-pixel
  // count the accelerators' shape-aware render queues dispatch.
  const double tile_px = static_cast<double>(trace.tile_size) *
                         static_cast<double>(trace.tile_size);
  const double render_flops = static_cast<double>(trace.processed_pairs) *
                              tile_px * cfg.flops_per_blend_op;
  result.stages.rendering_s =
      std::max(render_flops / (peak_flops * cfg.compute_eff_render),
               static_cast<double>(result.rendering_bytes) / bw);

  SimReport& r = result.report;
  r.machine = "OrinNX";
  r.seconds = result.stages.total_s();
  r.fps = r.seconds > 0.0 ? 1.0 / r.seconds : 0.0;
  r.dram_bytes = t.total();

  const double total_flops = proj_flops + render_flops +
                             // sorting compute: ~12 ops per pair per pass
                             static_cast<double>(trace.pair_count) * 48.0;
  r.energy.compute_pj = total_flops * cfg.energy_per_flop_pj;
  r.energy.dram_pj = static_cast<double>(r.dram_bytes) * cfg.dram_pj_per_byte;
  r.energy.static_pj = cfg.static_watts * r.seconds * 1e12;

  r.stage_busy["projection"] = result.stages.projection_s;
  r.stage_busy["sorting"] = result.stages.sorting_s;
  r.stage_busy["rendering"] = result.stages.rendering_s;
  return result;
}

double required_bandwidth_gbps(const render::TileCentricTrace& trace,
                               double target_fps) {
  return static_cast<double>(trace.traffic.total()) * target_fps / 1e9;
}

}  // namespace sgs::sim
