// DRAM traffic accounting for the tile-centric (original 3DGS) pipeline.
//
// Stage taxonomy follows paper Fig. 2: projection reads raw Gaussians and
// writes processed features + intersection metadata; sorting makes repeated
// read/write passes over the duplicated (tile, depth, id) pairs; rendering
// reads back sorted features per tile and writes the frame.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sgs::render {

enum class Stage : int {
  kProjectionRead = 0,
  kProjectionWrite,
  kSortingRead,
  kSortingWrite,
  kRenderingRead,
  kRenderingWrite,
  kCount
};

inline constexpr int kStageCount = static_cast<int>(Stage::kCount);

const char* stage_name(Stage s);

struct TrafficBreakdown {
  std::array<std::uint64_t, kStageCount> bytes{};

  std::uint64_t& operator[](Stage s) { return bytes[static_cast<int>(s)]; }
  std::uint64_t operator[](Stage s) const { return bytes[static_cast<int>(s)]; }

  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto b : bytes) t += b;
    return t;
  }
  double fraction(Stage s) const {
    const std::uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>((*this)[s]) / static_cast<double>(t);
  }
  // "Intermediate" traffic = everything except the initial model read and
  // the final frame write (the paper reports this at ~85%).
  std::uint64_t intermediate() const {
    return total() - (*this)[Stage::kProjectionRead] - (*this)[Stage::kRenderingWrite];
  }

  TrafficBreakdown& operator+=(const TrafficBreakdown& o) {
    for (int i = 0; i < kStageCount; ++i) bytes[static_cast<std::size_t>(i)] += o.bytes[static_cast<std::size_t>(i)];
    return *this;
  }
};

// On-DRAM record sizes of the tile-centric pipeline (bytes). Matches the
// reference CUDA implementation's intermediate buffers.
struct TileCentricRecordSizes {
  // Raw model read during projection: 59 float parameters.
  std::uint64_t gaussian_in = 59 * 4;
  // Processed feature record written by projection: 2D mean (2f), depth
  // (1f), conic (3f), RGB (3f), opacity (1f) = 10 floats.
  std::uint64_t projected_feature = 10 * 4;
  // Duplicated sort pair: 64-bit key (tile | depth) + 32-bit Gaussian id,
  // padded to 16 B in the double-buffered sort layout.
  std::uint64_t sort_pair = 16;
  // Number of full read+write passes the GPU radix sort makes over the pair
  // array (CUB radix: 64-bit keys, 8-bit digits).
  int sort_passes = 8;
  // Per-pair fetch during rendering: feature record + id.
  std::uint64_t render_fetch = 10 * 4 + 4;
  // Final frame write per pixel (RGBA8).
  std::uint64_t frame_pixel = 4;
};

}  // namespace sgs::render
