#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "core/streaming_trace.hpp"

namespace sgs::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}

namespace {

constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

std::atomic<std::size_t> g_capacity{kDefaultCapacity};

// One thread's bounded ring. `events` grows up to the capacity, then wraps:
// the newest event overwrites the oldest (a stuck consumer keeps the most
// recent timeline, which is the one that explains the current frame) and
// `dropped` counts every overwrite.
struct ThreadBuffer {
  std::mutex mutex;
  int tid = 0;
  std::string name;
  std::vector<TraceEvent> events;
  std::size_t next_overwrite = 0;  // wrap position once at capacity
  std::uint64_t dropped = 0;

  void emit(const TraceEvent& e) {
    std::lock_guard<std::mutex> lk(mutex);
    const std::size_t cap =
        std::max<std::size_t>(1, g_capacity.load(std::memory_order_relaxed));
    if (events.size() < cap) {
      events.push_back(e);
    } else {
      if (next_overwrite >= events.size()) next_overwrite = 0;
      events[next_overwrite++] = e;
      ++dropped;
    }
  }
};

// Registered buffers, in thread-registration order (the deterministic
// export order). Leaked on purpose: pool helpers and the async lane may
// still emit during static destruction.
struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
};

TraceRegistry& registry() {
  static TraceRegistry* g = new TraceRegistry();
  return *g;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    auto buf = std::make_shared<ThreadBuffer>();
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mutex);
    buf->tid = static_cast<int>(reg.buffers.size()) + 1;
    buf->name = "thread-" + std::to_string(buf->tid);
    reg.buffers.push_back(buf);
    t_buffer = buf.get();  // registry keeps it alive past thread exit
  }
  return *t_buffer;
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out << ' ';
    } else {
      out << c;
    }
  }
  out << '"';
}

// Microsecond timestamps with the sub-microsecond tail preserved: Chrome
// trace `ts`/`dur` are doubles in us.
void write_us(std::ostream& out, std::uint64_t ns) {
  out << ns / 1000 << '.' << ns / 100 % 10 << ns / 10 % 10 << ns % 10;
}

}  // namespace

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_capacity(std::size_t events_per_thread) {
  g_capacity.store(std::max<std::size_t>(1, events_per_thread),
                   std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lk(buf.mutex);
  buf.name = name;
}

void trace_emit(const TraceEvent& e) { local_buffer().emit(e); }

std::vector<ThreadTrace> trace_collect() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mutex);
    buffers = reg.buffers;
  }
  std::vector<ThreadTrace> out;
  out.reserve(buffers.size());
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mutex);
    ThreadTrace t;
    t.tid = buf->tid;
    t.name = buf->name;
    t.dropped = buf->dropped;
    if (buf->dropped == 0) {
      t.events = buf->events;
    } else {
      // Wrapped ring: rotate so events come out oldest-first.
      const std::size_t pivot =
          buf->next_overwrite >= buf->events.size() ? 0 : buf->next_overwrite;
      t.events.reserve(buf->events.size());
      t.events.insert(t.events.end(), buf->events.begin() + static_cast<std::ptrdiff_t>(pivot),
                      buf->events.end());
      t.events.insert(t.events.end(), buf->events.begin(),
                      buf->events.begin() + static_cast<std::ptrdiff_t>(pivot));
    }
    out.push_back(std::move(t));
  }
  return out;
}

void trace_reset() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> lk(reg.mutex);
    buffers = reg.buffers;
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lk(buf->mutex);
    buf->events.clear();
    buf->next_overwrite = 0;
    buf->dropped = 0;
  }
}

std::uint64_t trace_dropped_total() {
  std::uint64_t total = 0;
  for (const ThreadTrace& t : trace_collect()) total += t.dropped;
  return total;
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<ThreadTrace>& threads) {
  // Normalize to the earliest event: steady_clock nanoseconds since boot
  // would otherwise overflow the double precision Perfetto parses `ts` at.
  std::uint64_t t0 = ~std::uint64_t{0};
  for (const ThreadTrace& t : threads) {
    for (const TraceEvent& e : t.events) t0 = std::min(t0, e.ts_ns);
  }
  if (t0 == ~std::uint64_t{0}) t0 = 0;

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const ThreadTrace& t : threads) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << t.tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    write_json_string(out, t.name);
    out << "}}";
    for (const TraceEvent& e : t.events) {
      out << ",\n{\"ph\":\""
          << (e.phase == TracePhase::kSpan ? 'X' : 'i')
          << "\",\"pid\":1,\"tid\":" << t.tid << ",\"name\":";
      write_json_string(out, e.name);
      out << ",\"cat\":";
      write_json_string(out, e.cat);
      out << ",\"ts\":";
      write_us(out, e.ts_ns - t0);
      if (e.phase == TracePhase::kSpan) {
        out << ",\"dur\":";
        write_us(out, e.dur_ns);
      } else {
        out << ",\"s\":\"t\"";  // thread-scoped instant
      }
      if (e.arg0_name != nullptr) {
        out << ",\"args\":{";
        write_json_string(out, e.arg0_name);
        out << ':' << e.arg0;
        if (e.arg1_name != nullptr) {
          out << ',';
          write_json_string(out, e.arg1_name);
          out << ':' << e.arg1;
        }
        out << '}';
      }
      out << '}';
    }
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool write_chrome_trace(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, trace_collect());
  return static_cast<bool>(out);
}

void TraceSpan::open(const char* cat, const char* name, const char* arg0_name,
                     std::uint64_t arg0, const char* arg1_name,
                     std::uint64_t arg1) {
  active_ = true;
  cat_ = cat;
  name_ = name;
  arg0_name_ = arg0_name;
  arg1_name_ = arg1_name;
  arg0_ = arg0;
  arg1_ = arg1;
  t0_ = core::stage_clock_ns();
}

void TraceSpan::close() {
  // Spans opened while enabled still emit after a concurrent disable: a
  // half-recorded frame is more useful than a torn one, and collect() is
  // only specified at quiescent points anyway.
  TraceEvent e;
  e.name = name_;
  e.cat = cat_;
  e.ts_ns = t0_;
  e.dur_ns = core::stage_clock_ns() - t0_;
  e.arg0_name = arg0_name_;
  e.arg1_name = arg1_name_;
  e.arg0 = arg0_;
  e.arg1 = arg1_;
  e.phase = TracePhase::kSpan;
  trace_emit(e);
}

void trace_instant(const char* cat, const char* name) {
  trace_instant(cat, name, nullptr, 0, nullptr, 0);
}

void trace_instant(const char* cat, const char* name, const char* arg0_name,
                   std::uint64_t arg0) {
  trace_instant(cat, name, arg0_name, arg0, nullptr, 0);
}

void trace_instant(const char* cat, const char* name, const char* arg0_name,
                   std::uint64_t arg0, const char* arg1_name,
                   std::uint64_t arg1) {
  TraceEvent e;
  e.name = name;
  e.cat = cat;
  e.ts_ns = core::stage_clock_ns();
  e.dur_ns = 0;
  e.arg0_name = arg0_name;
  e.arg1_name = arg1_name;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.phase = TracePhase::kInstant;
  trace_emit(e);
}

}  // namespace sgs::obs
