// Detailed model of the Voxel Sorting Unit (paper Fig. 10).
//
// The VSU pipelines four hardware structures per pixel group:
//   1. ray sampling — each sampled ray's DDA steps compute raw voxel IDs;
//   2. renaming table — maps sparse raw VIDs onto dense VIDr (empty voxels
//      are filtered out by the offline renaming; the table is a direct
//      lookup sized by the non-empty voxel count);
//   3. adjacency table — a small cache of (source VIDr -> destination set)
//      entries built from consecutive VIDr pairs of each ray;
//   4. in-degree table — indexed by VIDr, drives Kahn's topological sort:
//      zero-in-degree entries pop to the voxel queue, each pop decrements
//      its destinations.
// This model charges per-operation cycles, tracks table occupancies against
// configured capacities, and reports overflow (which a real design would
// handle by splitting the group — counted, not fatal).
#pragma once

#include <cstdint>

#include "core/streaming_trace.hpp"

namespace sgs::sim {

struct VsuConfig {
  // Table capacities (entries). The renaming table covers the scene's dense
  // voxel ID space; adjacency/in-degree tables are per-group working sets.
  std::uint32_t renaming_entries = 65536;
  std::uint32_t adjacency_entries = 1024;
  std::uint32_t indegree_entries = 1024;

  // Per-operation cycle costs.
  double cycles_per_ray_step = 1.0;       // DDA step + renaming lookup
  double cycles_per_adjacency_op = 1.0;   // tag match + insert
  double cycles_per_indegree_init = 1.0;  // table init from adjacency
  double cycles_per_pop = 2.0;            // heap pop + dependents update
};

struct VsuGroupReport {
  double cycles = 0.0;
  std::uint64_t ray_steps = 0;
  std::uint64_t renaming_lookups = 0;
  std::uint64_t adjacency_ops = 0;
  std::uint64_t indegree_ops = 0;
  std::uint64_t pops = 0;
  bool adjacency_overflow = false;
  bool indegree_overflow = false;
};

struct VsuFrameReport {
  double total_cycles = 0.0;
  double max_group_cycles = 0.0;
  std::uint64_t groups_with_overflow = 0;
  std::uint64_t total_pops = 0;
};

// Cycle/occupancy model for one pixel group's VSU work.
VsuGroupReport simulate_vsu_group(const core::GroupWork& group,
                                  const VsuConfig& config = {});

// Aggregates over a frame trace.
VsuFrameReport simulate_vsu_frame(const core::StreamingTrace& trace,
                                  const VsuConfig& config = {});

}  // namespace sgs::sim
