// Multi-session serving benchmark (and CI smoke test).
//
// Renders N phase-shifted walkthrough sessions twice:
//   isolated — each session alone with its own ResidencyCache and loader
//              (the PR 2 single-viewer out-of-core path), every session
//              paying its own fetches cold;
//   shared   — all sessions concurrently on one serve::SceneServer: one
//              cache with the same byte budget, refcounted plan pins, and
//              one merged prefetch queue.
// Every session's images must be bit-identical between the two runs — the
// benchmark exits non-zero otherwise — and the shared run's global hit
// rate must be at least the mean of the isolated per-session hit rates
// (cross-session reuse is the whole point of sharing; a regression here
// means the merge or the pinning broke).
//
// Emits BENCH_serve.json (flat key/value) for trend tracking.
//
//   ./bench_serve [--scene train] [--sessions 4] [--frames 6]
//                 [--model_scale 0.02] [--res_scale 0.25] [--arc 0.03]
//                 [--spread 0.005] [--budget_kb 0] [--out BENCH_serve.json]
//
// --budget_kb 0 picks ~50% of the decoded scene — small enough to evict,
// large enough that the union of the sessions' working sets still shares.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/render_sequence.hpp"
#include "scene/presets.hpp"
#include "serve/scene_server.hpp"
#include "stream/asset_store.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace {

constexpr const char* kUsage = R"(bench_serve — shared-cache serving vs isolated per-session streaming

  --scene <name>      scene preset (default train)
  --sessions <n>      viewer sessions (default 4)
  --frames <n>        frames per session (default 6)
  --model_scale <f>   fraction of the preset model (default 0.02)
  --res_scale <f>     fraction of the preset resolution (default 0.25)
  --arc <f>           orbit fraction each session walks (default 0.03)
  --spread <f>        orbit phase offset between sessions (default 0.005)
  --budget_kb <n>     cache budget in KiB (0 = 50% of the decoded scene)
  --out <path>        JSON output (default BENCH_serve.json)
  --help              this text
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const auto preset = scene::preset_from_name(args.get("scene", "train"));
  const int sessions = args.get_int("sessions", 4);
  const int frames = args.get_int("frames", 6);
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.02));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.25));
  const float arc = static_cast<float>(args.get_double("arc", 0.03));
  const float spread = static_cast<float>(args.get_double("spread", 0.005));
  const std::uint64_t budget_kb =
      static_cast<std::uint64_t>(args.get_int("budget_kb", 0));
  const std::string out_path = args.get("out", "BENCH_serve.json");
  const std::string store_path = "/tmp/bench_serve.sgsc";

  bench::print_header("multi-session serving: shared cache vs isolated",
                      "bit-identical sessions, cross-session fetch reuse");

  const auto model = scene::make_preset_scene(preset, model_scale);
  int w = 0, h = 0;
  scene::scaled_resolution(preset, res_scale, w, h);
  core::StreamingConfig scfg;
  scfg.voxel_size = scene::preset_info(preset).default_voxel_size;
  const auto prepared = core::StreamingScene::prepare(model, scfg);
  try {
    if (!stream::AssetStore::write(store_path, prepared)) {
      std::fprintf(stderr, "FAILED to write %s\n", store_path.c_str());
      return 1;
    }
  } catch (const stream::StreamException& e) {
    std::fprintf(stderr, "FAILED to write store: %s\n", e.what());
    return 1;
  }
  stream::AssetStore store(store_path);
  const std::uint64_t budget = budget_kb > 0
                                   ? budget_kb * 1024
                                   : store.decoded_bytes_total() / 2;

  std::vector<std::vector<gs::Camera>> paths(
      static_cast<std::size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    for (int f = 0; f < frames; ++f) {
      const float t = spread * static_cast<float>(s) +
                      arc * static_cast<float>(f) / static_cast<float>(frames);
      paths[static_cast<std::size_t>(s)].push_back(
          scene::make_preset_camera(preset, w, h, t));
    }
  }

  core::SequenceOptions seq;
  seq.reuse_max_translation = 0.25f * scfg.voxel_size;
  seq.reuse_max_rotation_rad = 0.04f;
  stream::PrefetchConfig pcfg;
  pcfg.synchronous = true;  // reproducible hit/miss split in both runs

  // --- isolated passes: each session cold, its own cache -------------------
  const auto scene_ooc = store.make_scene();
  std::vector<core::SequenceResult> isolated;
  double iso_hit_sum = 0.0;
  std::uint64_t iso_bytes = 0;
  for (int s = 0; s < sessions; ++s) {
    stream::ResidencyCacheConfig ccfg;
    ccfg.budget_bytes = budget;
    stream::ResidencyCache cache(store, ccfg);
    stream::StreamingLoader loader(cache, pcfg);
    isolated.push_back(core::render_sequence(
        scene_ooc, paths[static_cast<std::size_t>(s)], seq, &loader));
    const auto total = cache.stats();
    iso_hit_sum += total.hit_rate();
    iso_bytes += total.bytes_fetched;
  }
  const double iso_hit_mean = iso_hit_sum / sessions;

  // --- shared pass: one SceneServer, same budget ---------------------------
  serve::SceneServerConfig cfg;
  cfg.cache.budget_bytes = budget;
  cfg.prefetch = pcfg;
  cfg.sequence = seq;
  serve::SceneServer server(store, cfg);
  const auto shared = server.run(paths);
  const serve::ServerReport& rep = shared.report;

  // --- compare + report ----------------------------------------------------
  bool identical = true;
  for (int s = 0; s < sessions && identical; ++s) {
    const auto& alone = isolated[static_cast<std::size_t>(s)].frames;
    const auto& served = shared.sessions[static_cast<std::size_t>(s)];
    identical = alone.size() == served.size();
    for (std::size_t f = 0; f < served.size() && identical; ++f) {
      identical = alone[f].image.pixels() == served[f].image.pixels();
    }
  }
  const bool reuse_won = rep.global_hit_rate >= iso_hit_mean;

  bench::Table table({"mode", "hit rate", "fetched", "evictions", "stalls"});
  char iso_rate[32];
  std::snprintf(iso_rate, sizeof(iso_rate), "%.1f%% (mean)",
                100.0 * iso_hit_mean);
  table.row({"isolated x" + std::to_string(sessions), iso_rate,
             format_bytes(static_cast<double>(iso_bytes)), "-", "-"});
  table.row({"shared", bench::fmt(100.0 * rep.global_hit_rate, 1) + "%",
             format_bytes(static_cast<double>(rep.shared_cache.bytes_fetched)),
             std::to_string(rep.shared_cache.evictions),
             std::to_string(rep.stall_frames)});
  table.print();
  std::printf("  budget %s for %d sessions; %llu prefetch requests merged\n",
              format_bytes(static_cast<double>(budget)).c_str(), sessions,
              static_cast<unsigned long long>(rep.merged_prefetch_requests));
  std::printf("  sessions bit-identical to isolated runs: %s\n",
              identical ? "yes" : "NO");
  std::printf("  shared hit rate >= isolated mean: %s\n",
              reuse_won ? "yes" : "NO");

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"sessions\": " << sessions << ",\n"
       << "  \"frames_per_session\": " << frames << ",\n"
       << "  \"budget_bytes\": " << budget << ",\n"
       << "  \"shared_hit_rate\": " << rep.global_hit_rate << ",\n"
       << "  \"isolated_hit_rate_mean\": " << iso_hit_mean << ",\n"
       << "  \"shared_bytes_fetched\": " << rep.shared_cache.bytes_fetched
       << ",\n"
       << "  \"isolated_bytes_fetched_total\": " << iso_bytes << ",\n"
       << "  \"shared_evictions\": " << rep.shared_cache.evictions << ",\n"
       << "  \"merged_prefetch_requests\": " << rep.merged_prefetch_requests
       << ",\n"
       << "  \"p50_ms\": " << rep.p50_ms << ",\n"
       << "  \"p95_ms\": " << rep.p95_ms << ",\n"
       << "  \"p99_ms\": " << rep.p99_ms << ",\n"
       << "  \"stall_frames\": " << rep.stall_frames << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"reuse_won\": " << (reuse_won ? "true" : "false") << "\n"
       << "}\n";
  std::printf("  wrote %s\n", out_path.c_str());

  std::remove(store_path.c_str());
  return identical && reuse_won ? 0 : 1;
}
