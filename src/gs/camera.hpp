// Pinhole camera with OpenCV-style intrinsics.
//
// Camera space: +x right, +y down, +z forward (depth). Pixel (u, v) maps to
// the ray direction ((u - cx)/fx, (v - cy)/fy, 1) in camera space.
#pragma once

#include "common/mat.hpp"
#include "common/vec.hpp"

namespace sgs::gs {

struct Ray {
  Vec3f origin;
  Vec3f direction;  // unit length

  Vec3f at(float t) const { return origin + direction * t; }
};

class Camera {
 public:
  Camera() = default;
  Camera(Mat3f world_to_cam_rotation, Vec3f position, float fx, float fy,
         float cx, float cy, int width, int height);

  // Builds a camera at `eye` looking at `target` with the given vertical
  // field of view (radians). `up_hint` resolves the roll ambiguity.
  static Camera look_at(Vec3f eye, Vec3f target, Vec3f up_hint, float vfov_rad,
                        int width, int height);

  const Mat3f& rotation() const { return rot_; }          // world -> camera
  Vec3f position() const { return pos_; }                 // camera center (world)
  float fx() const { return fx_; }
  float fy() const { return fy_; }
  float cx() const { return cx_; }
  float cy() const { return cy_; }
  int width() const { return width_; }
  int height() const { return height_; }

  Vec3f world_to_camera(Vec3f p_world) const { return rot_ * (p_world - pos_); }
  Vec3f camera_to_world(Vec3f p_cam) const { return rot_.transposed() * p_cam + pos_; }

  // Perspective projection of a camera-space point; valid only for z > 0.
  Vec2f project_cam(Vec3f p_cam) const {
    return {fx_ * p_cam.x / p_cam.z + cx_, fy_ * p_cam.y / p_cam.z + cy_};
  }

  // World-space ray through the center of pixel (px, py).
  Ray pixel_ray(float px, float py) const;

  // Larger of the two focal lengths; used by the conservative coarse filter.
  float focal_max() const { return fx_ > fy_ ? fx_ : fy_; }

 private:
  Mat3f rot_ = Mat3f::identity();
  Vec3f pos_{0, 0, 0};
  float fx_ = 1.0f, fy_ = 1.0f, cx_ = 0.0f, cy_ = 0.0f;
  int width_ = 0, height_ = 0;
};

}  // namespace sgs::gs
