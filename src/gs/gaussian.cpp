#include "gs/gaussian.hpp"

#include <algorithm>
#include <limits>

namespace sgs::gs {

GaussianModel::Bounds GaussianModel::center_bounds() const {
  Bounds b;
  if (gaussians.empty()) return b;
  constexpr float inf = std::numeric_limits<float>::infinity();
  b.min = {inf, inf, inf};
  b.max = {-inf, -inf, -inf};
  for (const Gaussian& g : gaussians) {
    for (int a = 0; a < 3; ++a) {
      b.min[a] = std::min(b.min[a], g.position[a]);
      b.max[a] = std::max(b.max[a], g.position[a]);
    }
  }
  return b;
}

GaussianModel::Bounds GaussianModel::extent_bounds() const {
  Bounds b;
  if (gaussians.empty()) return b;
  constexpr float inf = std::numeric_limits<float>::infinity();
  b.min = {inf, inf, inf};
  b.max = {-inf, -inf, -inf};
  for (const Gaussian& g : gaussians) {
    const float r = g.bounding_radius();
    for (int a = 0; a < 3; ++a) {
      b.min[a] = std::min(b.min[a], g.position[a] - r);
      b.max[a] = std::max(b.max[a], g.position[a] + r);
    }
  }
  return b;
}

}  // namespace sgs::gs
