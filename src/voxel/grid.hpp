// Uniform voxel grid over a Gaussian model.
//
// The streaming pipeline's offline step (paper Sec. III-A): the scene is
// partitioned into voxels, each Gaussian is assigned to the voxel containing
// its center, and per-voxel Gaussian lists are stored contiguously so a voxel
// can be streamed from DRAM as one sequential burst. Empty voxels are
// excluded from the ID space through a renaming table (Sec. IV-B) to keep
// on-chip tables small.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gs/gaussian.hpp"

namespace sgs::voxel {

using RawVoxelId = std::int64_t;    // linear index in the full grid
using DenseVoxelId = std::int32_t;  // renamed index over non-empty voxels

inline constexpr DenseVoxelId kInvalidDenseId = -1;

struct VoxelGridConfig {
  Vec3f origin{0, 0, 0};  // world position of voxel (0,0,0)'s min corner
  float voxel_size = 1.0f;
  Vec3i dims{1, 1, 1};
};

class VoxelGrid {
 public:
  // Partitions the model: grid bounds cover all Gaussian centers (inflated
  // by half a voxel so boundary points index safely).
  static VoxelGrid build(const gs::GaussianModel& model, float voxel_size);

  // Reassembles a grid from serialized parts (the .sgsc asset store):
  // `config` plus, per non-empty voxel in dense order, its raw ID and the
  // model indices of its residents. Produces internal state identical to the
  // build() that originally created the parts, so out-of-core rendering
  // traverses exactly the same grid. Throws std::runtime_error on
  // out-of-range raw IDs, non-ascending dense order, or duplicate model
  // indices (`gaussian_count` is the total model size).
  static VoxelGrid assemble(
      const VoxelGridConfig& config, std::span<const RawVoxelId> raw_ids,
      std::span<const std::vector<std::uint32_t>> residents,
      std::size_t gaussian_count);

  const VoxelGridConfig& config() const { return config_; }
  std::int64_t raw_voxel_count() const {
    return static_cast<std::int64_t>(config_.dims.x) * config_.dims.y * config_.dims.z;
  }
  // Number of non-empty voxels (the renamed ID range, paper's "VIDr").
  std::int32_t voxel_count() const { return static_cast<std::int32_t>(dense_to_raw_.size()); }
  std::size_t gaussian_count() const { return gaussian_order_.size(); }

  // --- coordinate mapping --------------------------------------------------
  Vec3i coord_of_point(Vec3f p) const;
  bool in_bounds(Vec3i c) const;
  RawVoxelId raw_id(Vec3i c) const;
  Vec3i coord_of_raw(RawVoxelId id) const;

  // Renaming table: raw -> dense (kInvalidDenseId for empty voxels).
  DenseVoxelId dense_of_raw(RawVoxelId id) const;
  RawVoxelId raw_of_dense(DenseVoxelId id) const { return dense_to_raw_[static_cast<std::size_t>(id)]; }

  // --- per-voxel contents ----------------------------------------------------
  // Model indices of the Gaussians in a dense voxel, contiguous in the
  // streaming order (the "DRAM layout" order).
  std::span<const std::uint32_t> gaussians_in(DenseVoxelId id) const;
  // All Gaussian model indices in streaming order (concatenated voxels).
  std::span<const std::uint32_t> streaming_order() const { return gaussian_order_; }
  // Dense voxel each Gaussian belongs to.
  DenseVoxelId voxel_of_gaussian(std::uint32_t model_index) const {
    return gaussian_to_voxel_[model_index];
  }

  Vec3f voxel_min_corner(DenseVoxelId id) const;
  Vec3f voxel_center(DenseVoxelId id) const;

  // Camera-independent voxel extent: distance from center to corner.
  float voxel_half_diagonal() const;

  // True if the Gaussian's 3-sigma bounding box extends beyond its voxel —
  // the "cross-boundary" condition the fine-tuning loss penalizes.
  bool crosses_boundary(const gs::Gaussian& g) const;

  // Fraction of Gaussians whose extent crosses their voxel boundary.
  double cross_boundary_ratio(const gs::GaussianModel& model) const;

 private:
  VoxelGridConfig config_;
  std::vector<DenseVoxelId> raw_to_dense_;       // size raw_voxel_count()
  std::vector<RawVoxelId> dense_to_raw_;         // size voxel_count()
  std::vector<std::uint32_t> offsets_;           // CSR offsets, size voxel_count()+1
  std::vector<std::uint32_t> gaussian_order_;    // CSR payload (model indices)
  std::vector<DenseVoxelId> gaussian_to_voxel_;  // size model.size()
};

}  // namespace sgs::voxel
