// Runtime CPU-feature dispatch for the per-Gaussian SIMD kernels
// (gs/kernels.hpp). The kernels ship three tiers:
//
//   kScalar — the reference path. Calls the exact same scalar routines the
//     pre-SIMD pipeline used (projection.cpp, sh.cpp, blending.cpp), so a
//     scalar-dispatched render is bit-identical to the historical output and
//     to the frozen golden tests.
//   kSse2   — 4-wide coarse filter and alpha blending (x86-64 baseline; the
//     fine projection and SH evaluation fall back to scalar).
//   kAvx2   — 8-wide coarse filter, fine projection, SH evaluation, and
//     alpha blending, plus gathered VQ codebook decode. Requires AVX2+FMA.
//
// Dispatch is resolved per kernel call from active_isa(): the detected level
// by default, or a pinned level when one of the override channels is set —
// force_isa() (tests, the examples' --force-scalar flag) or the
// SGS_FORCE_SCALAR environment variable (CI's forced-scalar smoke). Forcing
// *up* is clamped to the detected level, so a pinned binary can degrade but
// never execute instructions the host lacks. Building with -DSGS_SIMD=OFF
// compiles the vector kernels out entirely and pins detection to kScalar.
//
// Determinism contract: within one process at one dispatch level, kernel
// results depend only on their inputs — never on pointer alignment or the
// offset of a group slice inside its column store (lane blocking counts from
// the slice start, tails are masked, loads are unaligned). That is what lets
// the four bit-exactness invariants (OOC == resident, forced-L0 == exact,
// per-session == alone, error-free == pristine) hold at *every* dispatch
// level: both sides of each comparison run the same kernels on the same
// bytes. Only comparisons against a *different* binary or dispatch level
// (the frozen scalar goldens) require pinning kScalar; scalar-vs-vector
// differences are bounded by the kernel tolerance contract instead
// (docs/ARCHITECTURE.md, "SIMD dispatch & layout").
#pragma once

namespace sgs::simd {

enum class IsaLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// Highest level this host supports (cached cpuid probe; kScalar when built
// with -DSGS_SIMD=OFF, on non-x86 targets, or under SGS_FORCE_SCALAR).
IsaLevel detect_isa();

// The level kernels dispatch on: min(forced, detected) when a force is set,
// detected otherwise.
IsaLevel active_isa();

// Pins dispatch for the whole process (atomic; last writer wins).
void force_isa(IsaLevel level);
void clear_forced_isa();

// Human-readable name ("scalar", "sse2", "avx2") for logs and benches.
const char* isa_name(IsaLevel level);

// RAII pin used by tests: forces `level` for the scope, then restores the
// previous force state (including "none").
class ScopedForceIsa {
 public:
  explicit ScopedForceIsa(IsaLevel level);
  ~ScopedForceIsa();
  ScopedForceIsa(const ScopedForceIsa&) = delete;
  ScopedForceIsa& operator=(const ScopedForceIsa&) = delete;

 private:
  int previous_;  // raw forced slot: -1 == none
};

}  // namespace sgs::simd
