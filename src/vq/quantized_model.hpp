// Vector-quantized Gaussian model: the compressed form streamed from DRAM
// by the fine-grained filter (paper Sec. III-C, Fig. 8).
//
// Quantized groups (paper Sec. V-A: "a codebook with 4096 entries for scale,
// rotation, and DC, and a codebook with 512 entries for SH coefficients"):
//   scale    (3 floats)  -> 4096-entry codebook
//   rotation (4 floats)  -> 4096-entry codebook
//   DC color (3 floats)  -> 4096-entry codebook
//   SH rest  (45 floats) ->  512-entry codebook
// At those sizes the codebooks occupy ~251 KB of float32 SRAM — the paper's
// 250 KB codebook buffer. Position and max-scale stay uncompressed in the
// coarse stream; opacity stays a raw float in the fine stream ("we only
// compress the second half" and the first half stays exact).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "gs/gaussian.hpp"
#include "vq/codebook.hpp"

namespace sgs::vq {

struct VqConfig {
  std::uint32_t scale_entries = 4096;
  std::uint32_t rotation_entries = 4096;
  std::uint32_t dc_entries = 4096;
  std::uint32_t sh_entries = 512;
  int kmeans_iters = 12;
  // Quantization-aware refinement (Lee et al. [9] in the paper): extra Lloyd
  // passes over the full dataset after initial training, letting centroids
  // absorb assignment drift.
  int refine_iters = 3;
  std::size_t max_train_samples = 65536;
  std::uint64_t seed = 42;
};

struct QuantizedIndices {
  std::uint16_t scale = 0;
  std::uint16_t rotation = 0;
  std::uint16_t dc = 0;
  std::uint16_t sh = 0;
};

class QuantizedModel {
 public:
  // Trains codebooks on the model and assigns every Gaussian.
  static QuantizedModel build(const gs::GaussianModel& model, const VqConfig& config);

  std::size_t size() const { return positions_.size(); }

  // Reconstructs Gaussian i from the coarse stream (exact position) plus
  // codebook lookups — exactly what the accelerator's HFU decodes on-chip.
  gs::Gaussian decode(std::uint32_t i) const;
  gs::GaussianModel decode_all() const;

  // Max scale of the *decoded* Gaussian. The offline layout stores this in
  // the coarse record so the coarse filter stays conservative with respect
  // to the values the fine filter will actually compute.
  float coarse_max_scale(std::uint32_t i) const { return coarse_max_scale_[i]; }
  Vec3f position(std::uint32_t i) const { return positions_[i]; }
  float opacity(std::uint32_t i) const { return opacities_[i]; }
  const QuantizedIndices& indices(std::uint32_t i) const { return indices_[i]; }

  const Codebook& scale_codebook() const { return scale_cb_; }
  const Codebook& rotation_codebook() const { return rotation_cb_; }
  const Codebook& dc_codebook() const { return dc_cb_; }
  const Codebook& sh_codebook() const { return sh_cb_; }

  // Total on-chip codebook SRAM footprint in bytes.
  std::size_t codebook_bytes() const;
  // Index payload bits per Gaussian (12+12+12+9 = 45 at default config).
  int index_bits_per_gaussian() const;

  // Binary round-trip of the whole quantized scene (magic "SGVQ": the four
  // codebooks followed by per-Gaussian position/opacity/index records).
  // Loading reproduces decode() bit-for-bit — training is expensive, so a
  // trained codec can be shipped next to the scene instead of rebuilt.
  // coarse_max_scale is recomputed from the loaded scale codebook (not
  // stored), keeping the file free of derivable data. save returns false on
  // IO failure; load throws std::runtime_error on malformed input.
  bool save(std::ostream& out) const;
  static QuantizedModel load(std::istream& in);
  bool save_file(const std::string& path) const;
  static QuantizedModel load_file(const std::string& path);

 private:
  std::vector<Vec3f> positions_;
  std::vector<float> opacities_;
  std::vector<float> coarse_max_scale_;
  std::vector<QuantizedIndices> indices_;
  Codebook scale_cb_;
  Codebook rotation_cb_;
  Codebook dc_cb_;
  Codebook sh_cb_;
};

}  // namespace sgs::vq
