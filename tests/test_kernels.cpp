// Kernel-equivalence suite for the batched SoA kernels (gs/kernels.hpp):
//
//   - scalar bit-identity: the kScalar path must reproduce the legacy
//     per-record routines (project_coarse / project_gaussian / eval_sh /
//     gaussian_alpha + gs::blend) bit for bit — that is what keeps the
//     frozen pipeline goldens valid at scalar dispatch;
//   - scalar-vs-SIMD tolerance: every vector path must agree with scalar
//     within kSimdAbsTolerance on unit-range outputs (survivor sets equal,
//     projections and blended planes within tolerance), across random
//     Gaussians AND adversarial cases (near-zero scales, opacity at the
//     cull thresholds, degenerate quaternions, saturated pixels, group
//     sizes 0/1/7/8/9/64);
//   - slice-offset independence: results at any fixed ISA must not depend
//     on the record slice's offset into the column arena (the resident ==
//     out-of-core determinism requirement);
//   - gather_codebook_column: bitwise identical at every ISA.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "common/simd.hpp"
#include "gs/blending.hpp"
#include "gs/camera.hpp"
#include "gs/gaussian_soa.hpp"
#include "gs/kernels.hpp"
#include "gs/projection.hpp"
#include "gs/sh.hpp"

namespace sgs::gs {
namespace {

gs::Camera test_camera() {
  return gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, 256, 256);
}

Gaussian random_gaussian(std::mt19937& rng) {
  std::uniform_real_distribution<float> pos(-3.0f, 3.0f);
  std::normal_distribution<float> logs(-2.0f, 0.5f);
  std::normal_distribution<float> qd(0.0f, 1.0f);
  std::uniform_real_distribution<float> op(0.0f, 1.0f);
  std::normal_distribution<float> shd(0.0f, 0.3f);
  Gaussian g;
  g.position = {pos(rng), pos(rng), pos(rng)};
  g.scale = {std::exp(logs(rng)), std::exp(logs(rng)), std::exp(logs(rng))};
  g.rotation = Quatf{qd(rng), qd(rng), qd(rng), qd(rng)};
  g.opacity = op(rng);
  for (int c = 0; c < kShCoeffCount; ++c) {
    g.sh[static_cast<std::size_t>(c)] = {shd(rng), shd(rng), shd(rng)};
  }
  return g;
}

// The adversarial set the issue calls out, cycled to fill any group size.
std::vector<Gaussian> adversarial_gaussians(std::size_t n) {
  std::mt19937 rng(7);
  std::vector<Gaussian> base;
  {
    Gaussian g = random_gaussian(rng);
    g.scale = {1e-12f, 1e-12f, 1e-12f};  // near-zero scales
    base.push_back(g);
  }
  {
    Gaussian g = random_gaussian(rng);
    g.opacity = 0.0f;  // culled by the min-opacity threshold
    base.push_back(g);
  }
  {
    Gaussian g = random_gaussian(rng);
    g.opacity = 1.0f;  // saturates pixels fast
    g.scale = {0.5f, 0.5f, 0.5f};
    base.push_back(g);
  }
  {
    Gaussian g = random_gaussian(rng);
    g.rotation = Quatf{0.0f, 0.0f, 0.0f, 0.0f};  // degenerate quaternion
    base.push_back(g);
  }
  {
    Gaussian g = random_gaussian(rng);
    g.position = {0.0f, 0.0f, -5.0f + 0.19f};  // right at the near plane
    base.push_back(g);
  }
  {
    Gaussian g = random_gaussian(rng);
    g.opacity = 1.0f / 255.0f;  // exactly the opacity cull threshold
    base.push_back(g);
  }
  std::vector<Gaussian> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(base[i % base.size()]);
  return out;
}

GaussianColumns make_columns(const std::vector<Gaussian>& gs,
                             std::size_t pad_front = 0) {
  GaussianColumns cols;
  cols.resize(pad_front + gs.size());
  std::mt19937 rng(99);
  for (std::size_t k = 0; k < pad_front; ++k) {
    cols.set(k, random_gaussian(rng), 0.123f);  // garbage the slice must skip
  }
  for (std::size_t k = 0; k < gs.size(); ++k) {
    cols.set(pad_front + k, gs[k], gs[k].max_scale());
  }
  return cols;
}

const FilterRect kRect{96.0f, 96.0f, 160.0f, 160.0f};

std::vector<simd::IsaLevel> vector_isas() {
  std::vector<simd::IsaLevel> out;
#ifdef SGS_KERNELS_X86
  const simd::IsaLevel top = simd::detect_isa();
  if (top >= simd::IsaLevel::kSse2) out.push_back(simd::IsaLevel::kSse2);
  if (top >= simd::IsaLevel::kAvx2) out.push_back(simd::IsaLevel::kAvx2);
#endif
  return out;
}

// ------------------------------------------------------ scalar bit-identity

TEST(ScalarKernels, CoarseFilterMatchesLegacyRoutinesBitExact) {
  std::mt19937 rng(11);
  std::vector<Gaussian> gs;
  for (int i = 0; i < 500; ++i) gs.push_back(random_gaussian(rng));
  const GaussianColumns cols = make_columns(gs);
  const gs::Camera cam = test_camera();

  std::vector<std::uint32_t> got;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    coarse_filter_batch(cols, 0, gs.size(), cam, kRect, got);
  }
  std::vector<std::uint32_t> want;
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const auto proj = project_coarse(gs[i].position, gs[i].max_scale(), cam);
    if (proj && disc_intersects_rect(proj->mean, proj->radius, kRect.x0,
                                     kRect.y0, kRect.x1, kRect.y1)) {
      want.push_back(static_cast<std::uint32_t>(i));
    }
  }
  EXPECT_EQ(got, want);
}

TEST(ScalarKernels, FineProjectionMatchesLegacyRoutinesBitExact) {
  std::mt19937 rng(12);
  std::vector<Gaussian> gs;
  for (int i = 0; i < 300; ++i) gs.push_back(random_gaussian(rng));
  const GaussianColumns cols = make_columns(gs);
  const gs::Camera cam = test_camera();

  std::vector<std::uint32_t> cand(gs.size());
  for (std::size_t i = 0; i < gs.size(); ++i) {
    cand[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<FineSurvivor> got;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    fine_project_batch(cols, 0, cand, cam, kRect, got);
  }
  std::size_t j = 0;
  for (std::size_t i = 0; i < gs.size(); ++i) {
    const auto proj = project_gaussian(gs[i], cam);
    if (!proj || !disc_intersects_rect(proj->mean, proj->radius, kRect.x0,
                                       kRect.y0, kRect.x1, kRect.y1)) {
      continue;
    }
    ASSERT_LT(j, got.size());
    EXPECT_EQ(got[j].local, i);
    EXPECT_EQ(got[j].proj.mean, proj->mean);
    EXPECT_EQ(got[j].proj.depth, proj->depth);
    EXPECT_EQ(got[j].proj.conic.a, proj->conic.a);
    EXPECT_EQ(got[j].proj.conic.b, proj->conic.b);
    EXPECT_EQ(got[j].proj.conic.c, proj->conic.c);
    EXPECT_EQ(got[j].proj.radius, proj->radius);
    EXPECT_EQ(got[j].proj.color, proj->color);
    EXPECT_EQ(got[j].proj.opacity, proj->opacity);
    ++j;
  }
  EXPECT_EQ(j, got.size());
}

TEST(ScalarKernels, BlendMatchesLegacyAccumulatorLoopBitExact) {
  std::mt19937 rng(13);
  const int row = 64;
  const std::size_t n_px = 64 * 64;
  BlendPlanes planes;
  planes.reset(n_px);
  std::vector<float> md(n_px, 0.0f);
  std::vector<gs::PixelAccumulator> acc(n_px);
  std::vector<float> md_ref(n_px, 0.0f);

  std::uniform_real_distribution<float> mean(0.0f, 64.0f);
  std::uniform_real_distribution<float> op(0.1f, 1.0f);
  std::uniform_real_distribution<float> col(0.0f, 1.0f);
  const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
  for (int s = 0; s < 40; ++s) {
    ProjectedGaussian p;
    p.mean = {mean(rng), mean(rng)};
    p.conic = {0.02f, 0.005f, 0.03f};
    p.radius = 25.0f;
    p.depth = 1.0f + 0.1f * static_cast<float>(s % 7);
    p.opacity = op(rng);
    p.color = {col(rng), col(rng), col(rng)};
    const PixelSpan span = splat_pixel_span(p.mean, p.radius, 0, 0, 64, 64);
    if (span.x0 >= span.x1 || span.y0 >= span.y1) continue;

    const BlendCounters c = blend_survivor(planes, md, p, span, 0, 0, row);
    // Reference: the historical per-pixel loop over PixelAccumulators.
    std::uint64_t ref_ops = 0, ref_contrib = 0, ref_viol = 0;
    std::uint32_t ref_sat = 0;
    for (int py = span.y0; py < span.y1; ++py) {
      for (int px = span.x0; px < span.x1; ++px) {
        const auto pi = static_cast<std::size_t>(py * row + px);
        gs::PixelAccumulator& a = acc[pi];
        if (a.saturated()) continue;
        ++ref_ops;
        const float alpha = gaussian_alpha(
            p, {static_cast<float>(px) + 0.5f, static_cast<float>(py) + 0.5f});
        if (alpha <= 0.0f) continue;
        ++ref_contrib;
        if (p.depth < md_ref[pi] - 1e-6f) {
          ++ref_viol;
        } else {
          md_ref[pi] = p.depth;
        }
        gs::blend(a, p.color, alpha);
        if (a.saturated()) ++ref_sat;
      }
    }
    EXPECT_EQ(c.blend_ops, ref_ops);
    EXPECT_EQ(c.contributions, ref_contrib);
    EXPECT_EQ(c.violations, ref_viol);
    EXPECT_EQ(c.newly_saturated, ref_sat);
  }
  for (std::size_t pi = 0; pi < n_px; ++pi) {
    EXPECT_EQ(planes.r[pi], acc[pi].color.x);
    EXPECT_EQ(planes.g[pi], acc[pi].color.y);
    EXPECT_EQ(planes.b[pi], acc[pi].color.z);
    EXPECT_EQ(planes.t[pi], acc[pi].transmittance);
    EXPECT_EQ(md[pi], md_ref[pi]);
  }
}

// --------------------------------------------------- scalar-vs-SIMD property

#ifdef SGS_KERNELS_X86

void run_filter_equivalence(const std::vector<Gaussian>& gs,
                            std::size_t pad_front) {
  const GaussianColumns cols = make_columns(gs, pad_front);
  const gs::Camera cam = test_camera();

  std::vector<std::uint32_t> scalar_idx;
  std::vector<FineSurvivor> scalar_fine;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    coarse_filter_batch(cols, pad_front, gs.size(), cam, kRect, scalar_idx);
    fine_project_batch(cols, pad_front, scalar_idx, cam, kRect, scalar_fine);
  }
  for (const simd::IsaLevel isa : vector_isas()) {
    const simd::ScopedForceIsa pin(isa);
    std::vector<std::uint32_t> idx;
    coarse_filter_batch(cols, pad_front, gs.size(), cam, kRect, idx);
    EXPECT_EQ(idx, scalar_idx) << "coarse @ " << simd::isa_name(isa);

    std::vector<FineSurvivor> fine;
    fine_project_batch(cols, pad_front, scalar_idx, cam, kRect, fine);
    ASSERT_EQ(fine.size(), scalar_fine.size())
        << "fine survivor count @ " << simd::isa_name(isa);
    for (std::size_t j = 0; j < fine.size(); ++j) {
      const auto& a = fine[j].proj;
      const auto& b = scalar_fine[j].proj;
      EXPECT_EQ(fine[j].local, scalar_fine[j].local);
      // Screen-space quantities scale with focal length: relative bound.
      const auto near_rel = [](float x, float y) {
        return std::abs(x - y) <=
               kSimdAbsTolerance * std::max(1.0f, std::abs(y));
      };
      EXPECT_TRUE(near_rel(a.mean.x, b.mean.x)) << a.mean.x << " " << b.mean.x;
      EXPECT_TRUE(near_rel(a.mean.y, b.mean.y));
      EXPECT_TRUE(near_rel(a.depth, b.depth));
      EXPECT_TRUE(near_rel(a.radius, b.radius));
      EXPECT_TRUE(near_rel(a.conic.a, b.conic.a));
      EXPECT_TRUE(near_rel(a.conic.b, b.conic.b));
      EXPECT_TRUE(near_rel(a.conic.c, b.conic.c));
      EXPECT_EQ(a.opacity, b.opacity);  // pure copy, never recomputed
      EXPECT_NEAR(a.color.x, b.color.x, kSimdAbsTolerance);
      EXPECT_NEAR(a.color.y, b.color.y, kSimdAbsTolerance);
      EXPECT_NEAR(a.color.z, b.color.z, kSimdAbsTolerance);
    }
  }
}

TEST(SimdEquivalence, FilterKernelsOnRandomGaussians) {
  std::mt19937 rng(21);
  std::vector<Gaussian> gs;
  for (int i = 0; i < 1000; ++i) gs.push_back(random_gaussian(rng));
  run_filter_equivalence(gs, /*pad_front=*/0);
}

TEST(SimdEquivalence, FilterKernelsOnAdversarialGroupSizes) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 64ul}) {
    run_filter_equivalence(adversarial_gaussians(n), /*pad_front=*/0);
  }
}

TEST(SimdEquivalence, ResultsIndependentOfSliceOffset) {
  // The same records viewed at slice offset 0 and offset 5 must produce
  // identical outputs at every ISA — lane blocking counts from the slice
  // start, never from pointer alignment (the OOC == resident requirement:
  // a cache entry is offset 0, a resident arena slice is arbitrary).
  std::mt19937 rng(22);
  std::vector<Gaussian> gs;
  for (int i = 0; i < 37; ++i) gs.push_back(random_gaussian(rng));
  const GaussianColumns at0 = make_columns(gs, 0);
  const GaussianColumns at5 = make_columns(gs, 5);
  const gs::Camera cam = test_camera();

  std::vector<simd::IsaLevel> isas{simd::IsaLevel::kScalar};
  for (const auto isa : vector_isas()) isas.push_back(isa);
  for (const simd::IsaLevel isa : isas) {
    const simd::ScopedForceIsa pin(isa);
    std::vector<std::uint32_t> i0, i5;
    coarse_filter_batch(at0, 0, gs.size(), cam, kRect, i0);
    coarse_filter_batch(at5, 5, gs.size(), cam, kRect, i5);
    EXPECT_EQ(i0, i5) << simd::isa_name(isa);

    std::vector<FineSurvivor> f0, f5;
    fine_project_batch(at0, 0, i0, cam, kRect, f0);
    fine_project_batch(at5, 5, i5, cam, kRect, f5);
    ASSERT_EQ(f0.size(), f5.size());
    for (std::size_t j = 0; j < f0.size(); ++j) {
      EXPECT_EQ(f0[j].local, f5[j].local);
      EXPECT_EQ(f0[j].proj.mean, f5[j].proj.mean);
      EXPECT_EQ(f0[j].proj.depth, f5[j].proj.depth);
      EXPECT_EQ(f0[j].proj.color, f5[j].proj.color);
      EXPECT_EQ(f0[j].proj.radius, f5[j].proj.radius);
    }
  }
}

TEST(SimdEquivalence, ShEvalWithinTolerance) {
  std::mt19937 rng(23);
  std::vector<Gaussian> gs;
  for (int i = 0; i < 200; ++i) gs.push_back(random_gaussian(rng));
  const GaussianColumns cols = make_columns(gs);
  const Vec3f cam_pos{0.0f, 0.0f, -5.0f};

  std::vector<std::uint32_t> locals(gs.size());
  for (std::size_t i = 0; i < gs.size(); ++i) {
    locals[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<Vec3f> scalar_colors(gs.size());
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    eval_sh_batch(cols, 0, locals, cam_pos, scalar_colors.data());
  }
  for (const simd::IsaLevel isa : vector_isas()) {
    const simd::ScopedForceIsa pin(isa);
    std::vector<Vec3f> colors(gs.size());
    eval_sh_batch(cols, 0, locals, cam_pos, colors.data());
    for (std::size_t i = 0; i < gs.size(); ++i) {
      EXPECT_NEAR(colors[i].x, scalar_colors[i].x, kSimdAbsTolerance);
      EXPECT_NEAR(colors[i].y, scalar_colors[i].y, kSimdAbsTolerance);
      EXPECT_NEAR(colors[i].z, scalar_colors[i].z, kSimdAbsTolerance);
    }
  }
}

TEST(SimdEquivalence, BlendWithinToleranceIncludingSaturation) {
  std::mt19937 rng(24);
  std::uniform_real_distribution<float> mean(0.0f, 64.0f);
  std::uniform_real_distribution<float> col(0.0f, 1.0f);
  const int row = 64;
  const std::size_t n_px = 64 * 64;

  // A survivor stream with opaque records mixed in so pixels saturate
  // mid-run (the examined-mask path) and out-of-order depths (violations).
  std::vector<ProjectedGaussian> stream;
  for (int s = 0; s < 60; ++s) {
    ProjectedGaussian p;
    p.mean = {mean(rng), mean(rng)};
    p.conic = {0.02f, 0.005f, 0.03f};
    p.radius = 25.0f;
    p.depth = (s % 5 == 4) ? 0.5f : 1.0f + 0.05f * static_cast<float>(s);
    p.opacity = (s % 3 == 0) ? 0.999f : 0.4f;
    p.color = {col(rng), col(rng), col(rng)};
    stream.push_back(p);
  }

  BlendPlanes scalar_planes;
  scalar_planes.reset(n_px);
  std::vector<float> scalar_md(n_px, 0.0f);
  std::vector<BlendCounters> scalar_counters;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    for (const auto& p : stream) {
      const PixelSpan span = splat_pixel_span(p.mean, p.radius, 0, 0, 64, 64);
      if (span.x0 >= span.x1 || span.y0 >= span.y1) continue;
      scalar_counters.push_back(
          blend_survivor(scalar_planes, scalar_md, p, span, 0, 0, row));
    }
  }
  for (const simd::IsaLevel isa : vector_isas()) {
    const simd::ScopedForceIsa pin(isa);
    BlendPlanes planes;
    planes.reset(n_px);
    std::vector<float> md(n_px, 0.0f);
    std::size_t ci = 0;
    for (const auto& p : stream) {
      const PixelSpan span = splat_pixel_span(p.mean, p.radius, 0, 0, 64, 64);
      if (span.x0 >= span.x1 || span.y0 >= span.y1) continue;
      const BlendCounters c = blend_survivor(planes, md, p, span, 0, 0, row);
      ASSERT_LT(ci, scalar_counters.size());
      const BlendCounters& sc = scalar_counters[ci++];
      EXPECT_EQ(c.blend_ops, sc.blend_ops) << simd::isa_name(isa);
      EXPECT_EQ(c.contributions, sc.contributions);
      EXPECT_EQ(c.violations, sc.violations);
      EXPECT_EQ(c.newly_saturated, sc.newly_saturated);
    }
    for (std::size_t pi = 0; pi < n_px; ++pi) {
      EXPECT_NEAR(planes.r[pi], scalar_planes.r[pi], kSimdAbsTolerance);
      EXPECT_NEAR(planes.g[pi], scalar_planes.g[pi], kSimdAbsTolerance);
      EXPECT_NEAR(planes.b[pi], scalar_planes.b[pi], kSimdAbsTolerance);
      EXPECT_NEAR(planes.t[pi], scalar_planes.t[pi], kSimdAbsTolerance);
      EXPECT_EQ(md[pi], scalar_md[pi]);
    }
  }
}

TEST(SimdEquivalence, CodebookGatherBitIdentical) {
  std::mt19937 rng(25);
  std::uniform_real_distribution<float> val(-2.0f, 2.0f);
  const std::size_t dim = 45, entries = 256;
  std::vector<float> cb(dim * entries);
  for (auto& v : cb) v = val(rng);
  for (const std::size_t n : {0ul, 1ul, 7ul, 8ul, 9ul, 64ul, 333ul}) {
    std::uniform_int_distribution<std::uint32_t> pick(0, entries - 1);
    std::vector<std::uint32_t> idx(n);
    for (auto& i : idx) i = pick(rng);
    for (const std::size_t dst_stride : {1ul, 16ul}) {
      std::vector<float> scalar_dst(std::max<std::size_t>(1, n * dst_stride),
                                    -1.0f);
      std::vector<float> simd_dst(scalar_dst);
      {
        const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
        gather_codebook_column(scalar_dst.data(), dst_stride, cb.data(),
                               idx.data(), n, dim, 17);
      }
      for (const simd::IsaLevel isa : vector_isas()) {
        const simd::ScopedForceIsa pin(isa);
        std::vector<float> dst(simd_dst);
        gather_codebook_column(dst.data(), dst_stride, cb.data(), idx.data(),
                               n, dim, 17);
        EXPECT_EQ(dst, scalar_dst)
            << simd::isa_name(isa) << " n=" << n << " stride=" << dst_stride;
      }
    }
  }
}

#endif  // SGS_KERNELS_X86

// ------------------------------------------------------------ dispatch state

TEST(SimdDispatch, ForcingClampsToDetectedAndRestores) {
  const simd::IsaLevel detected = simd::detect_isa();
  EXPECT_EQ(simd::active_isa(), detected);
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    EXPECT_EQ(simd::active_isa(), simd::IsaLevel::kScalar);
    {
      // Forcing *up* never exceeds what the CPU supports.
      const simd::ScopedForceIsa up(simd::IsaLevel::kAvx2);
      EXPECT_LE(static_cast<int>(simd::active_isa()),
                static_cast<int>(detected));
    }
    EXPECT_EQ(simd::active_isa(), simd::IsaLevel::kScalar);  // restored
  }
  EXPECT_EQ(simd::active_isa(), detected);
}

TEST(SimdDispatch, IsaNamesAreStable) {
  EXPECT_STREQ(simd::isa_name(simd::IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::isa_name(simd::IsaLevel::kSse2), "sse2");
  EXPECT_STREQ(simd::isa_name(simd::IsaLevel::kAvx2), "avx2");
}

}  // namespace
}  // namespace sgs::gs
