// Energy and area constants for the 32 nm accelerator models.
//
// The paper synthesizes at TSMC 32 nm with Synopsys/Cadence, estimates SRAM
// with CACTI 7.0, and takes DRAM energy from Micron's power calculators.
// Offline EDA tools are out of scope here, so this header pins the model to
// published per-operation constants at comparable nodes:
//   * 16-bit MAC at 28-45 nm: ~0.8-2 pJ  -> 1.2 pJ
//   * small SRAM (<=64 KB) access:      ~0.06-0.12 pJ/B -> 0.08 pJ/B
//   * large SRAM (256 KB class) access: ~0.15-0.3 pJ/B  -> 0.20 pJ/B
//   * LPDDR3 access: ~4-6 pJ/bit        -> 37.5 pJ/B (in DramConfig)
// Areas reproduce the paper's Table I per-unit values exactly; the area
// model scales linearly with unit counts for design-space exploration.
#pragma once

namespace sgs::sim {

struct EnergyConstants {
  double mac_pj = 1.2;
  double sram_small_pj_per_byte = 0.08;
  double sram_large_pj_per_byte = 0.20;
  // Static (leakage + clock tree) power for the full 5.37 mm^2 accelerator.
  double accel_static_watts = 0.25;
};

struct EnergyBreakdown {
  double dram_pj = 0.0;
  double sram_pj = 0.0;
  double compute_pj = 0.0;
  double static_pj = 0.0;

  double total_pj() const { return dram_pj + sram_pj + compute_pj + static_pj; }
  double total_mj() const { return total_pj() * 1e-9; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& o) {
    dram_pj += o.dram_pj;
    sram_pj += o.sram_pj;
    compute_pj += o.compute_pj;
    static_pj += o.static_pj;
    return *this;
  }
};

// Table I per-unit areas (mm^2 at 32 nm).
struct AreaConstants {
  double vsu_mm2 = 0.06;            // 1 unit
  double hfu_mm2 = 0.79 / 4.0;      // per HFU (paper: 4 units = 0.79)
  double sort_unit_mm2 = 0.04 / 2.0;
  double render_unit_mm2 = 2.53 / 64.0;
  double sram_mm2_per_kb = 1.95 / 355.0;
  // GSCore total at 32 nm (scaled by DeepScaleTool in the paper).
  double gscore_total_mm2 = 5.53;
};

}  // namespace sgs::sim
