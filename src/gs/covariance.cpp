#include "gs/covariance.hpp"

#include <cmath>

namespace sgs::gs {

Mat3f build_covariance_3d(Vec3f scale, const Quatf& rotation) {
  const Mat3f r = rotation.to_rotation_matrix();
  const Mat3f s = Mat3f::diagonal(scale);
  const Mat3f m = r * s;           // M = R S
  return m * m.transposed();       // Sigma = M M^T = R S S^T R^T
}

Sym2f project_covariance(const Mat3f& cov3d, const Mat3f& world_to_cam,
                         Vec3f p_cam, float fx, float fy) {
  // Camera-space covariance: V = W Sigma W^T.
  const Mat3f v = world_to_cam * cov3d * world_to_cam.transposed();

  // Perspective Jacobian at p_cam (rows of the 2x3 matrix J).
  const float inv_z = 1.0f / p_cam.z;
  const float inv_z2 = inv_z * inv_z;
  const Vec3f j0{fx * inv_z, 0.0f, -fx * p_cam.x * inv_z2};
  const Vec3f j1{0.0f, fy * inv_z, -fy * p_cam.y * inv_z2};

  // Sigma' = J V J^T, expanded to the three unique entries.
  const Vec3f vj0 = v * j0;
  const Vec3f vj1 = v * j1;
  Sym2f out;
  out.a = j0.dot(vj0) + kScreenSpaceDilation;
  out.b = j0.dot(vj1);
  out.c = j1.dot(vj1) + kScreenSpaceDilation;
  return out;
}

float splat_radius(const Sym2f& cov2d) {
  return 3.0f * std::sqrt(std::max(0.0f, cov2d.eigenvalues().lambda_max));
}

}  // namespace sgs::gs
