// Frame-sequence rendering: the first genuinely *streaming* (multi-frame)
// scenario of the pipeline.
//
// A SequenceRenderer keeps the FrameScheduler (and its per-worker scratch
// arenas) and the last FramePlan alive across frames. While the camera moves
// less than the configured thresholds, the cached plan — built with a
// generous binning margin — is reused verbatim: the per-frame voxel-table
// rebuild (one conservative projection per non-empty voxel plus the group
// binning) is skipped entirely and the frame's trace charges zero
// voxel_table_steps, which is exactly the reuse win frame-to-frame streaming
// systems report. When the camera leaves the reuse envelope a fresh plan is
// built and the cycle restarts.
//
// Thread-safety and the out-of-core bracket: a SequenceRenderer is a
// single viewer — render() must be called sequentially on one instance
// (its cached plan and scheduler arenas are not guarded). Distinct
// instances render concurrently; that is how serve::SceneServer hosts N
// sessions, each with its own SequenceRenderer over one shared,
// thread-safe cache. When a `source` is supplied, every frame is
// bracketed: begin_frame(intent, plan_voxels) before rendering — the
// source pins the plan's candidate working set against eviction and may
// prefetch ahead — and end_frame() after, which drops exactly those pins.
// The source's counter deltas over that window land in the result's
// trace.cache, and frame_wall_ns carries the frame's wall-clock latency
// for server-side p50/p95 aggregation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/frame_plan.hpp"
#include "core/frame_scheduler.hpp"
#include "core/streaming_renderer.hpp"

namespace sgs::stream {
class GroupSource;
}

namespace sgs::core {

struct SequenceOptions {
  // Per-frame render options (violator collection, coarse override, stage
  // timing).
  StreamingRenderOptions render;
  // A cached plan is reused while the camera stays within these bounds of
  // the camera the plan was built for. Reuse is approximate: the plan's
  // binning margin absorbs the projection drift for geometry at moderate
  // depth, so thresholds should be chosen against plan_margin_px (roughly
  // margin >= focal * rotation + focal * translation / min scene depth).
  float reuse_max_translation = 0.1f;
  float reuse_max_rotation_rad = 0.02f;
  // Binning margin used for plans built by the sequence (the single-frame
  // renderer uses 1 px; sequences pad more so the plan survives motion).
  float plan_margin_px = 24.0f;
  // Per-frame demand-fetch budget handed to the source's FrameIntent,
  // RELATIVE nanoseconds from its begin_frame. kNoFetchDeadline keeps
  // demand misses blocking (bit-exact); a finite budget lets a
  // deadline-aware source (stream::StreamingLoader over a coarse-floored
  // cache) serve expired misses from its always-resident coarse tier —
  // the frame never stalls, trace.cache.coarse_fallbacks counts the
  // substitutions. Ignored by sources without deadline support.
  std::uint64_t fetch_deadline_ns = kNoFetchDeadline;
};

struct SequenceStats {
  std::size_t plans_built = 0;
  std::size_t plans_reused = 0;
  // Cached plans discarded because a frame changed image size/intrinsics
  // (always replanned, never reused across geometries).
  std::size_t plans_invalidated_geometry = 0;
};

class SequenceRenderer {
 public:
  // `source` selects where voxel groups come from: nullptr renders fully
  // resident from `scene`; a cache-backed source (stream::ResidencyCache or
  // stream::StreamingLoader) renders out of core against `scene`'s grid +
  // layout metadata (e.g. an AssetStore::make_scene() scene). The renderer
  // brackets every frame with the source's begin_frame/end_frame — passing
  // the camera, the reuse envelope as the motion hint, and the plan's
  // candidate working set — and publishes the source's per-frame counter
  // deltas in each result's trace.cache.
  explicit SequenceRenderer(const StreamingScene& scene,
                            SequenceOptions options = {},
                            stream::GroupSource* source = nullptr);

  // Renders the next frame of the sequence. The camera may have any pose.
  // A change of image geometry (size or intrinsics) is valid but forces a
  // replan — a cached plan is never silently reused across geometries.
  StreamingRenderResult render(const gs::Camera& camera);

  const SequenceStats& stats() const { return stats_; }

 private:
  const StreamingScene* scene_;
  SequenceOptions options_;
  stream::GroupSource* source_;
  FrameScheduler scheduler_;
  std::optional<FramePlan> plan_;
  // The cached plan's candidate union, refreshed on rebuild; only
  // maintained when a source consumes it (out-of-core rendering).
  std::vector<voxel::DenseVoxelId> plan_working_set_;
  SequenceStats stats_;
};

struct SequenceResult {
  std::vector<StreamingRenderResult> frames;
  SequenceStats stats;
};

// Convenience wrapper: renders a whole camera trajectory through one
// SequenceRenderer (optionally out of core through `source`).
SequenceResult render_sequence(const StreamingScene& scene,
                               const std::vector<gs::Camera>& cameras,
                               const SequenceOptions& options = {},
                               stream::GroupSource* source = nullptr);

}  // namespace sgs::core
