#include "common/cli.hpp"

#include <cstdlib>

namespace sgs {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";  // bare flag
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it != flags_.end()) used_[name] = true;
  return it != flags_.end();
}

std::string CliArgs::get(const std::string& name, const std::string& def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return it->second;
}

int CliArgs::get_int(const std::string& name, int def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return std::atoi(it->second.c_str());
}

std::int64_t CliArgs::get_i64(const std::string& name, std::int64_t def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return std::atoll(it->second.c_str());
}

double CliArgs::get_double(const std::string& name, double def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return std::atof(it->second.c_str());
}

bool CliArgs::get_bool(const std::string& name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  used_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> r;
  for (const auto& [k, v] : flags_) {
    (void)v;
    if (!used_.count(k)) r.push_back(k);
  }
  return r;
}

}  // namespace sgs
