// 3D covariance construction and EWA projection to screen space.
#pragma once

#include "common/mat.hpp"
#include "common/quat.hpp"
#include "common/vec.hpp"

namespace sgs::gs {

// Sigma = R * diag(s)^2 * R^T  (symmetric PSD by construction).
Mat3f build_covariance_3d(Vec3f scale, const Quatf& rotation);

// Screen-space dilation added to the projected covariance; the reference
// rasterizer uses 0.3 px^2 as an antialiasing low-pass filter.
inline constexpr float kScreenSpaceDilation = 0.3f;

// Projects a 3D covariance to the 2x2 screen-space covariance using the
// local-affine (EWA) approximation:
//   Sigma' = J W Sigma W^T J^T + dilation * I,
// where W is the world->camera rotation and J the perspective Jacobian at
// camera-space position `p_cam` (z > 0 required).
Sym2f project_covariance(const Mat3f& cov3d, const Mat3f& world_to_cam,
                         Vec3f p_cam, float fx, float fy);

// 3-sigma screen-space radius from a projected covariance.
float splat_radius(const Sym2f& cov2d);

}  // namespace sgs::gs
