// AssetStore: the chunked on-disk scene format (.sgsc) for out-of-core
// streaming. The unit of storage — and of fetch traffic — is the voxel
// group: all Gaussians resident in one dense voxel, stored as one
// contiguous payload so a fetch is a single sequential read, exactly the
// burst the DRAM model prices.
//
// Since v2 a group may carry up to kLodTierCount payload tiers, each a
// cheaper encoding of the same group along two axes:
//   - SH truncation: a tier stores only the first sh_coeffs spherical-
//     harmonics coefficients per Gaussian (complete bands: 16, 9, 4, or
//     1); the decoder zero-fills the rest. SH is 81% of a raw record, so
//     band <=1 (4 coeffs) cuts a record to 92 B and DC-only to 56 B.
//   - Importance pruning: a tier keeps only the top keep*count residents
//     by opacity * max_scale, with survivors' opacities scaled up so the
//     group keeps its opacity mass (clamped, deterministic).
// Default tiers: L0 = full fidelity (bit-identical to the v1 payload),
// L1 = all residents at SH band <=1, L2 = pruned subset at DC only.
// Tiers are built once at store-write time; the per-group per-tier
// directory lets a loader fetch a distant group at a fraction of its L0
// bytes. A v1 file is readable as "v2 with one tier", and writing with
// tier_count == 1 emits a byte-identical v1 file.
//
// File layout (little-endian, magic "SGSC", normative spec in
// docs/SGSC_FORMAT.md):
//
//   header       rendering config + voxel-grid config + counts + flags
//                (+ tier count and per-tier SH coefficient counts, v2)
//   codebooks    the four VQ codebooks (Codebook::save), VQ scenes only
//   directory    per group: raw voxel id, AABB, and per tier
//                offset/size/count (v1: single tier, different field order)
//   index table  u32 model index per Gaussian, groups concatenated in dense
//                order — the spatial index stays resident (4 B/Gaussian)
//                while parameters stream (24 B VQ / 236 B raw per Gaussian)
//   tier tables  v2 only: per tier >= 1, the pruned groups' model indices
//                (same framing as the index table; resident like it)
//   payloads     per group per tier, parameter records only:
//                  raw  {pos3, scale3, rot4 wxyz, opacity, sh 3*N} f32,
//                       N = the tier's sh_coeffs (59 floats at L0)
//                  VQ   {pos3 f32, opacity f32, scale/rot/DC u16, plus the
//                       SH index u16 when sh_coeffs > 1}
//
// Decoding a fetched L0 group reproduces the prepared scene's render model
// bit-for-bit: raw payloads are the exact floats, VQ payloads replay
// QuantizedModel::decode against codebooks that round-tripped exactly. That
// is the property the out-of-core == resident golden test pins down; L1/L2
// payloads truncate/prune the same records and are validated by PSNR
// bounds instead.
#pragma once

#include <array>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/streaming_renderer.hpp"
#include "core/streaming_trace.hpp"
#include "gs/gaussian.hpp"
#include "gs/gaussian_soa.hpp"
#include "stream/fetch_backend.hpp"
#include "stream/stream_error.hpp"
#include "voxel/grid.hpp"
#include "vq/codebook.hpp"

namespace sgs::stream {

inline constexpr std::uint32_t kSgscMagic = 0x43534753;  // "SGSC"
inline constexpr std::uint32_t kSgscVersionV1 = 1;
inline constexpr std::uint32_t kSgscVersion = 2;

using core::kLodTierCount;

// One tier's payload extent within a group's directory entry.
struct TierExtent {
  std::uint64_t offset = 0;  // absolute file offset of the tier payload
  std::uint64_t bytes = 0;   // payload size on disk (the fetch traffic unit)
  std::uint32_t count = 0;   // Gaussians in this tier's subset
};

struct AssetDirEntry {
  voxel::RawVoxelId raw_id = 0;
  // Tier-0 (full fidelity) extent, mirrored from tiers[0] so pre-LOD call
  // sites keep reading the fields they always did.
  std::uint64_t offset = 0;
  std::uint64_t bytes = 0;
  std::uint32_t count = 0;
  Vec3f aabb_min{0, 0, 0};  // world-space voxel bounds (prefetch ranking)
  Vec3f aabb_max{0, 0, 0};
  // Per-tier extents; slots >= the store's tier_count() stay zero.
  std::array<TierExtent, kLodTierCount> tiers{};
};

// One voxel group fetched from the store and decoded to SoA columns
// (resident order — index k here is resident k of the tier's subset).
// Decoded floats are bitwise identical to what a resident scene's grouped
// columns hold for the same records, which is what keeps the out-of-core ==
// resident invariant byte-exact under SIMD (equal inputs, same kernels).
struct DecodedGroup {
  std::span<const std::uint32_t> model_indices;  // store's resident index table
  gs::GaussianColumns cols;
  std::uint64_t payload_bytes = 0;  // file bytes this fetch read
  std::uint64_t fetch_ns = 0;       // backend transfer time for those bytes
                                    // (virtual on a simulated link) — what
                                    // a BandwidthEstimator observes
  int tier = 0;                     // which payload tier was decoded

  std::size_t size() const { return cols.size(); }
  gs::Gaussian gaussian(std::size_t k) const { return cols.gaussian(k); }
  float max_scale(std::size_t k) const { return cols.max_scale[k]; }

  // In-memory footprint charged against a residency budget.
  std::size_t resident_bytes() const { return cols.bytes(); }
};

// How one payload tier degrades the full parameter set.
struct TierSpec {
  // Fraction of each group's residents the tier keeps. Selection is the
  // top ceil(keep*count) residents by opacity * max_scale — the screen
  // contribution proxy — with the original resident order preserved, at
  // least one resident per non-empty group, and counts clamped monotone
  // non-increasing across tiers. Survivors' opacities are scaled by the
  // group's pruned opacity mass (clamped to [1,2]x and 1.0 absolute).
  float keep = 1.0f;
  // Spherical-harmonics coefficients stored per record: a complete band
  // count (16, 9, 4, or 1). The decoder zero-fills the truncated tail.
  int sh_coeffs = gs::kShCoeffCount;
};

struct AssetStoreWriteOptions {
  // Payload tiers to emit. 1 writes a v1 file, byte-identical to the
  // pre-LOD writer; 2..kLodTierCount write a v2 file whose lower tiers
  // follow `tiers[t]`. tiers[0] must stay full fidelity.
  int tier_count = 1;
  std::array<TierSpec, kLodTierCount> tiers = {
      TierSpec{1.0f, gs::kShCoeffCount},  // L0: everything, exact
      TierSpec{1.0f, 4},                  // L1: SH band <= 1
      TierSpec{0.85f, 1},                 // L2: DC only, lightly pruned
  };

  // Options for a store whose LAST tier is a dedicated coarse-floor
  // payload: L1 keeps every resident at SH band <= 1, while the final tier
  // prunes to the top `keep` fraction at DC only — small enough that a
  // ResidencyCache can pin every group's floor under a few % of the
  // scene's decoded bytes (the budget counts decoded records, so the floor
  // cost scales with kept residents, not with SH truncation).
  static AssetStoreWriteOptions with_coarse_floor(float keep = 0.04f);
};

class AssetStore {
 public:
  // Serializes a prepared scene (which must have resident parameters) into
  // the .sgsc format. Returns false on invalid options or an unprepared
  // scene. IO failures THROW StreamException (kIoWrite, path in the
  // message): the stream state is verified after the payload pass and on
  // close, so a full disk can no longer silently emit a truncated store
  // that only fails at read time.
  static bool write(const std::string& path, const core::StreamingScene& scene,
                    const AssetStoreWriteOptions& options = {});

  // Opens a store: loads header, codebooks, directory, and index/tier
  // tables; reassembles the voxel grid. Payloads stay on disk. Accepts v1
  // files (read as a single-tier v2). Throws StreamException (a
  // std::runtime_error carrying the typed StreamError) on malformed input.
  // The path overload reads through a LocalFileBackend — byte-identical to
  // the pre-seam direct-file path; the backend overload streams everything
  // (open-time metadata included) through the given transport.
  explicit AssetStore(const std::string& path);
  explicit AssetStore(std::shared_ptr<FetchBackend> backend);

  // Non-throwing open: returns nullptr on failure, with the typed error in
  // *error (when non-null). The fault-isolated entry point a long-lived
  // server uses so one bad store cannot unwind the process.
  static std::unique_ptr<AssetStore> open(const std::string& path,
                                          StreamError* error = nullptr);
  static std::unique_ptr<AssetStore> open(std::shared_ptr<FetchBackend> backend,
                                          StreamError* error = nullptr);

  // The transport this store reads through (never null once constructed).
  // Its stats() are the link-level transfer counters — open-time metadata
  // and coarse-floor pin traffic included, unlike the cache's fetch-scoped
  // net_bytes/net_stall_ns.
  const FetchBackend& backend() const { return *backend_; }

  bool vector_quantized() const { return vq_; }
  std::size_t gaussian_count() const { return gaussian_count_; }
  // Payload tiers this store carries (1 for v1 files).
  int tier_count() const { return tier_count_; }
  // The residency-hierarchy capability open() reports: true when the store
  // carries a cheaper-than-L0 tier a ResidencyCache can pin as its
  // always-resident coarse floor. A v1 (single-tier) store reports false,
  // and deadline-driven callers fall back to the blocking demand-fetch
  // path on it.
  bool has_coarse_tier() const { return tier_count_ > 1; }
  // The floor tier itself — the store's cheapest payload tier.
  int coarse_tier() const { return tier_count_ - 1; }
  // SH coefficients stored per record at `tier` (kShCoeffCount at L0).
  int tier_sh_coeffs(int tier) const {
    return tier_sh_[static_cast<std::size_t>(tier)];
  }
  std::int32_t group_count() const {
    return static_cast<std::int32_t>(directory_.size());
  }
  const AssetDirEntry& entry(voxel::DenseVoxelId v) const {
    return directory_[static_cast<std::size_t>(v)];
  }
  const TierExtent& tier_extent(voxel::DenseVoxelId v, int tier) const {
    return directory_[static_cast<std::size_t>(v)]
        .tiers[static_cast<std::size_t>(tier)];
  }
  std::span<const AssetDirEntry> directory() const { return directory_; }
  // Sum of tier-0 payload bytes on disk: the scene's full-fidelity
  // streamable parameter footprint (what an all-L0 walkthrough's fetch
  // traffic is charged against). Lower tiers add payload_bytes_tier(t) —
  // a sum of directory extents, so a tier whose payload aliases the tier
  // above (see the writer) re-counts the shared bytes.
  std::uint64_t payload_bytes_total() const { return payload_total_[0]; }
  std::uint64_t payload_bytes_tier(int tier) const {
    return payload_total_[static_cast<std::size_t>(tier)];
  }
  // Total *decoded* in-memory footprint of all groups at L0 — the unit a
  // ResidencyCache budget is expressed in. Distinct from payload bytes:
  // a VQ payload is 24 B/Gaussian on disk but decodes to full SoA columns.
  std::uint64_t decoded_bytes_total() const {
    return static_cast<std::uint64_t>(gaussian_count_) *
           gs::GaussianColumns::kBytesPerRecord;
  }

  const core::StreamingConfig& config() const { return config_; }
  const voxel::VoxelGrid& grid() const { return grid_; }

  // Model indices of group v's residents at `tier` (streaming order),
  // backed by the resident index/tier tables — valid for the store's
  // lifetime. Tier 1+ spans are subsequences of the tier-0 span.
  std::span<const std::uint32_t> group_indices(voxel::DenseVoxelId v,
                                               int tier = 0) const;

  // A model-free StreamingScene (grid + layout + config) around this
  // store's metadata; render it through a cache-backed GroupSource.
  core::StreamingScene make_scene() const {
    return core::StreamingScene::from_parts(config_, grid_);
  }

  // Reads one group's payload at `tier` through the backend and decodes
  // it. Thread-safe: backends serialize their own transport, decode runs
  // unlocked. `tier` must be < tier_count(). Throws StreamException on a
  // failed transfer or corrupt payload — the thin legacy wrapper over
  // read_group_checked below.
  DecodedGroup read_group(voxel::DenseVoxelId v, int tier = 0) const;

  // The typed, non-throwing read path: returns the decoded group or a
  // StreamError (kIoRead / kNetTimeout / kCorruptPayload / kDecode,
  // group+tier tagged) without ever propagating an exception. A failed
  // read is a recoverable, per-group event: the store stays open and every
  // other group stays readable. A transfer that delivers fewer bytes than
  // the directory extent — a short read mid-payload, however the backend
  // noticed it — maps to kIoRead with group+tier context here, never to a
  // decode error. This is what the ResidencyCache fetches through.
  StreamResult<DecodedGroup> read_group_checked(voxel::DenseVoxelId v,
                                                int tier = 0) const;

 private:
  // For open(): members are filled by load(). Keep default-constructible
  // state private so a half-loaded store can never escape.
  AssetStore() = default;

  // Parses the store behind backend_ into this instance. Returns false
  // with the typed error in *error on any malformed input; never throws.
  bool load(StreamError* error);

  // The throwing core of the read path (throws StreamException only);
  // read_group_checked catches and converts.
  DecodedGroup read_group_impl(voxel::DenseVoxelId v, int tier) const;
  core::StreamingConfig config_;
  voxel::VoxelGrid grid_;
  bool vq_ = false;
  int tier_count_ = 1;
  std::array<int, kLodTierCount> tier_sh_{gs::kShCoeffCount,
                                          gs::kShCoeffCount,
                                          gs::kShCoeffCount};
  std::size_t gaussian_count_ = 0;
  std::array<std::uint64_t, kLodTierCount> payload_total_{};
  std::vector<AssetDirEntry> directory_;
  // Per tier: per-group model-index lists, concatenated in dense order, with
  // prefix-sum offsets. Tier 0 is the resident spatial index of v1.
  std::array<std::vector<std::uint32_t>, kLodTierCount> index_table_;
  std::array<std::vector<std::uint64_t>, kLodTierCount> index_offsets_;
  vq::Codebook scale_cb_, rotation_cb_, dc_cb_, sh_cb_;

  // The byte-ranged transport every read goes through (fetch_backend.hpp).
  std::shared_ptr<FetchBackend> backend_;
};

}  // namespace sgs::stream
