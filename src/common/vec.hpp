// Small fixed-size vector types used throughout the library.
//
// The library deliberately ships its own ~200-line math layer instead of
// depending on Eigen/glm: the hot paths (projection, blending, DDA) only need
// 2/3/4-wide float vectors and 3x3 matrices, and owning the layer keeps the
// accelerator work-counting exact (every MAC in the model corresponds to a
// visible arithmetic op here).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace sgs {

struct Vec2f {
  float x = 0.0f;
  float y = 0.0f;

  constexpr Vec2f() = default;
  constexpr Vec2f(float x_, float y_) : x(x_), y(y_) {}

  constexpr Vec2f operator+(Vec2f o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2f operator-(Vec2f o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2f operator*(float s) const { return {x * s, y * s}; }
  constexpr Vec2f operator/(float s) const { return {x / s, y / s}; }
  constexpr Vec2f& operator+=(Vec2f o) { x += o.x; y += o.y; return *this; }
  constexpr Vec2f& operator-=(Vec2f o) { x -= o.x; y -= o.y; return *this; }
  constexpr bool operator==(const Vec2f&) const = default;

  constexpr float dot(Vec2f o) const { return x * o.x + y * o.y; }
  float norm() const { return std::sqrt(dot(*this)); }
  constexpr float norm2() const { return dot(*this); }
};

struct Vec3f {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3f() = default;
  constexpr Vec3f(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}
  static constexpr Vec3f splat(float v) { return {v, v, v}; }

  constexpr Vec3f operator+(Vec3f o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3f operator-(Vec3f o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3f operator-() const { return {-x, -y, -z}; }
  constexpr Vec3f operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3f operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3f& operator+=(Vec3f o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3f& operator-=(Vec3f o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3f& operator*=(float s) { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3f&) const = default;

  constexpr float dot(Vec3f o) const { return x * o.x + y * o.y + z * o.z; }
  constexpr Vec3f cross(Vec3f o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  // Element-wise product (Hadamard).
  constexpr Vec3f cwise(Vec3f o) const { return {x * o.x, y * o.y, z * o.z}; }
  float norm() const { return std::sqrt(dot(*this)); }
  constexpr float norm2() const { return dot(*this); }
  Vec3f normalized() const {
    const float n = norm();
    return n > 0.0f ? (*this) / n : Vec3f{0.0f, 0.0f, 0.0f};
  }
  constexpr float max_component() const { return std::max(x, std::max(y, z)); }
  constexpr float min_component() const { return std::min(x, std::min(y, z)); }

  constexpr float operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr float& operator[](int i) {
    return i == 0 ? x : (i == 1 ? y : z);
  }
};

constexpr Vec3f operator*(float s, Vec3f v) { return v * s; }
constexpr Vec2f operator*(float s, Vec2f v) { return v * s; }

struct Vec4f {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;
  float w = 0.0f;

  constexpr Vec4f() = default;
  constexpr Vec4f(float x_, float y_, float z_, float w_) : x(x_), y(y_), z(z_), w(w_) {}

  constexpr Vec4f operator+(Vec4f o) const { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
  constexpr Vec4f operator-(Vec4f o) const { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
  constexpr Vec4f operator*(float s) const { return {x * s, y * s, z * s, w * s}; }
  constexpr bool operator==(const Vec4f&) const = default;

  constexpr float dot(Vec4f o) const { return x * o.x + y * o.y + z * o.z + w * o.w; }
  float norm() const { return std::sqrt(dot(*this)); }
};

// Integer 3-vector for voxel coordinates.
struct Vec3i {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;

  constexpr Vec3i() = default;
  constexpr Vec3i(std::int32_t x_, std::int32_t y_, std::int32_t z_) : x(x_), y(y_), z(z_) {}

  constexpr Vec3i operator+(Vec3i o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3i operator-(Vec3i o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr bool operator==(const Vec3i&) const = default;

  constexpr std::int32_t operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr std::int32_t& operator[](int i) { return i == 0 ? x : (i == 1 ? y : z); }
  // L1 distance, used by tests to assert DDA steps move one face at a time.
  constexpr std::int32_t manhattan(Vec3i o) const {
    return std::abs(x - o.x) + std::abs(y - o.y) + std::abs(z - o.z);
  }
};

inline std::ostream& operator<<(std::ostream& os, Vec2f v) {
  return os << "(" << v.x << ", " << v.y << ")";
}
inline std::ostream& operator<<(std::ostream& os, Vec3f v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}
inline std::ostream& operator<<(std::ostream& os, Vec3i v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

constexpr float clampf(float v, float lo, float hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

constexpr float lerp(float a, float b, float t) { return a + (b - a) * t; }
constexpr Vec3f lerp(Vec3f a, Vec3f b, float t) { return a + (b - a) * t; }

}  // namespace sgs
