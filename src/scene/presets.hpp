// The six evaluation scenes of the paper, as procedural presets.
//
//   synthetic: Lego (Synthetic-NeRF), Palace (Synthetic-NSVF)
//   real-world: Train, Truck (Tanks&Temples), Playroom, Drjohnson (Deep Blending)
//
// Each preset records the *paper-scale* Gaussian count and rendering
// resolution; callers pass a scale factor (benches default well below 1.0 so
// a full figure sweep runs in minutes on a CPU — the reproduced quantities
// are ratios, which are insensitive to scale; see EXPERIMENTS.md).
#pragma once

#include <array>
#include <string>

#include "gs/camera.hpp"
#include "scene/generator.hpp"

namespace sgs::scene {

enum class ScenePreset { kLego, kPalace, kTrain, kTruck, kPlayroom, kDrjohnson };

inline constexpr std::array<ScenePreset, 6> kAllPresets = {
    ScenePreset::kLego,     ScenePreset::kPalace,   ScenePreset::kTrain,
    ScenePreset::kTruck,    ScenePreset::kPlayroom, ScenePreset::kDrjohnson};

inline constexpr std::array<ScenePreset, 2> kSyntheticPresets = {
    ScenePreset::kLego, ScenePreset::kPalace};
inline constexpr std::array<ScenePreset, 4> kRealWorldPresets = {
    ScenePreset::kTrain, ScenePreset::kTruck, ScenePreset::kPlayroom,
    ScenePreset::kDrjohnson};

// The paper's dataset grouping (Fig. 11 averages over the four datasets).
enum class Dataset { kSyntheticNerf, kSyntheticNsvf, kTanksAndTemples, kDeepBlending };

struct PresetInfo {
  std::string name;
  Dataset dataset;
  bool synthetic;
  // Number of Gaussians in a typical trained model of this scene.
  std::size_t paper_gaussian_count;
  // Evaluation resolution of the dataset images.
  int paper_width;
  int paper_height;
  // Paper Sec. V-A: voxel size 0.4 for synthetic scenes, 2.0 for real-world.
  float default_voxel_size;
};

const PresetInfo& preset_info(ScenePreset p);
ScenePreset preset_from_name(const std::string& name);

// Generates the preset scene with `scale` times the paper Gaussian count.
gs::GaussianModel make_preset_scene(ScenePreset p, float scale = 1.0f);

// The generator configuration a preset uses (exposed for tests/tuning).
GeneratorConfig preset_generator_config(ScenePreset p, float scale);

// A representative evaluation camera: synthetic presets orbit the object,
// real-world presets stand inside the capture volume. `frame` in [0, 1)
// moves the camera along its trajectory (used by the walkthrough example).
gs::Camera make_preset_camera(ScenePreset p, int width, int height,
                              float frame = 0.0f);

// Resolution scaled from the paper's (keeps aspect, multiple-of-16 tiles).
void scaled_resolution(ScenePreset p, float resolution_scale, int& width,
                       int& height);

}  // namespace sgs::scene
