// Per-Gaussian projection: the "fine" (exact) path used by both pipelines
// and the 4-parameter "coarse" path used by the hierarchical filter.
#pragma once

#include <optional>

#include "gs/camera.hpp"
#include "gs/covariance.hpp"
#include "gs/gaussian.hpp"

namespace sgs::gs {

// Gaussians closer than this camera-space depth are culled (matches the
// near-plane rejection of the reference rasterizer).
inline constexpr float kNearClip = 0.2f;

// Splats whose projected alpha can never reach 1/255 inside their 3-sigma
// disc are invisible; the fine filter rejects them.
inline constexpr float kMinOpacity = 1.0f / 255.0f;

struct ProjectedGaussian {
  Vec2f mean;    // pixel coordinates of the projected center
  float depth;   // camera-space z, the sort key
  Sym2f conic;   // inverse of the 2D covariance
  float radius;  // 3-sigma screen-space radius in pixels
  Vec3f color;   // view-dependent RGB (SH-decoded)
  float opacity;
};

// Exact projection. Returns nullopt if the Gaussian is culled (behind the
// near plane, degenerate covariance, or opacity below threshold).
std::optional<ProjectedGaussian> project_gaussian(const Gaussian& g,
                                                  const Camera& cam);

// Result of the coarse phase: projected center plus a radius that provably
// upper-bounds the exact `ProjectedGaussian::radius` (see project_coarse).
struct CoarseProjection {
  Vec2f mean;
  float depth;
  float radius;
};

// Coarse projection from only the 4 coarse parameters {position, max scale}.
//
// Conservativeness argument: the exact screen covariance is
// J W Sigma W^T J^T + 0.3 I with lambda_max(Sigma) <= s_max^2, so
// lambda_max(cov2d) <= s_max^2 * sigma_max(J)^2 + 0.3, where
// sigma_max(J)^2 is the largest eigenvalue of the 2x2 matrix J J^T
// (computed exactly — J has rank 2, so this costs a handful of MACs).
// The returned 3*sqrt(...) therefore dominates splat_radius() for every
// orientation/anisotropy. Returns nullopt only for near-plane culls, which
// the fine path also culls.
std::optional<CoarseProjection> project_coarse(Vec3f position, float max_scale,
                                               const Camera& cam);

// Conservative screen-space extent of a world-space sphere: projected
// center plus a radius that upper-bounds the projection of every point of
// the sphere (r * sigma_max(J), plus a 1 px margin for the local-affine
// approximation). Used by the VSU's voxel->group binning table, where the
// sphere is a voxel's bounding sphere. Returns nullopt when the sphere is
// entirely behind the near plane; spheres *straddling* the near plane are
// the caller's responsibility (the projection is undefined there).
std::optional<CoarseProjection> project_sphere_extent(Vec3f center,
                                                      float world_radius,
                                                      const Camera& cam);

// Conservative test that the disc (center, radius) overlaps the pixel
// rectangle [x0, x1) x [y0, y1). Used for both tile binning and the
// hierarchical filter's intersection tests.
bool disc_intersects_rect(Vec2f center, float radius, float x0, float y0,
                          float x1, float y1);

}  // namespace sgs::gs
