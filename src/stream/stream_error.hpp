// Typed errors for the streaming stack: the failure-domain currency that
// lets a fetch or decode error stay a *recoverable event* instead of a
// process-terminating exception.
//
// Every AssetStore read path reports failures as a StreamError — a kind
// (which layer of the format broke), the voxel group and tier involved
// (when the error is group-scoped), and a human-readable detail string.
// The ResidencyCache turns those errors into failed/backoff entry states
// and degraded serves; the serve layer attributes them per session. The
// exception form (StreamException) exists only at the edges: legacy
// throwing entry points (AssetStore's constructor, read_group) wrap the
// same typed error so callers that do catch get the full story, and it
// derives from std::runtime_error so pre-existing handlers keep working.
//
// Contract: a StreamError never crosses a thread unprotected — the cache
// stores the last error per entry under its mutex, and the async lane
// captures task exceptions into its own channel (common/parallel.hpp)
// rather than letting them std::terminate the process.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace sgs::stream {

// Which layer of the .sgsc contract failed. Open-time kinds (header,
// directory, index) poison the whole store; group-scoped kinds (io-read,
// payload, decode) poison one group at one tier and leave the rest of the
// store serveable.
enum class StreamErrorKind : std::uint8_t {
  kIoOpen = 0,          // store file cannot be opened
  kIoRead,              // read syscall failed / short read mid-payload
  kIoWrite,             // writer's stream went bad (disk full, quota)
  kCorruptHeader,       // magic/version/config/counts implausible
  kCorruptDirectory,    // directory entry inconsistent with the file
  kCorruptIndex,        // index/tier tables truncated or not a subsequence
  kCorruptPayload,      // payload bytes fail validation (codebook range)
  kDecode,              // decode-side failure (allocation, internal)
  kNetTimeout,          // network transfer lost or timed out (group-scoped
                        // when it hits a payload read; the cache retries it
                        // exactly like a disk error)
};

inline const char* to_string(StreamErrorKind kind) {
  switch (kind) {
    case StreamErrorKind::kIoOpen: return "io-open";
    case StreamErrorKind::kIoRead: return "io-read";
    case StreamErrorKind::kIoWrite: return "io-write";
    case StreamErrorKind::kCorruptHeader: return "corrupt-header";
    case StreamErrorKind::kCorruptDirectory: return "corrupt-directory";
    case StreamErrorKind::kCorruptIndex: return "corrupt-index";
    case StreamErrorKind::kCorruptPayload: return "corrupt-payload";
    case StreamErrorKind::kDecode: return "decode";
    case StreamErrorKind::kNetTimeout: return "net-timeout";
  }
  return "unknown";
}

// One recoverable streaming failure. `group`/`tier` are -1 when the error
// is store-scoped rather than group-scoped.
struct StreamError {
  StreamErrorKind kind = StreamErrorKind::kIoRead;
  std::int64_t group = -1;  // dense voxel id, -1 when not group-scoped
  int tier = -1;            // payload tier, -1 when not tier-scoped
  std::string detail;

  // "corrupt-payload group 12 tier 0: .sgsc payload index out of range"
  std::string to_string() const {
    std::string s = stream::to_string(kind);
    if (group >= 0) s += " group " + std::to_string(group);
    if (tier >= 0) s += " tier " + std::to_string(tier);
    if (!detail.empty()) {
      s += ": ";
      s += detail;
    }
    return s;
  }
};

// The exception form of a StreamError, for the legacy throwing entry
// points. Derives from std::runtime_error (what those paths always threw)
// so existing catch sites keep working while new ones read error().
class StreamException : public std::runtime_error {
 public:
  explicit StreamException(StreamError error)
      : std::runtime_error(error.to_string()), error_(std::move(error)) {}
  const StreamError& error() const { return error_; }

 private:
  StreamError error_;
};

// Minimal expected-style result for AssetStore's checked read paths: either
// a value or a StreamError, never an exception. T must be default- and
// move-constructible (DecodedGroup is).
template <typename T>
class StreamResult {
 public:
  StreamResult(T value) : value_(std::move(value)) {}      // NOLINT(implicit)
  StreamResult(StreamError error) : error_(std::move(error)) {}  // NOLINT

  bool ok() const { return !error_.has_value(); }
  T& value() { return value_; }
  const T& value() const { return value_; }
  T&& take() { return std::move(value_); }
  const StreamError& error() const { return *error_; }
  StreamError&& take_error() { return std::move(*error_); }

 private:
  T value_{};
  std::optional<StreamError> error_;
};

}  // namespace sgs::stream
