// Tests for the observability subsystem (src/obs/): the sharded metrics
// registry, the log-scale latency histogram, span tracing through the real
// pipeline, the Chrome Trace exporter + analyzer, and — the hard contract —
// that enabling tracing changes no rendered pixel.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "core/trace_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_stats.hpp"
#include "scene/generator.hpp"
#include "serve/scene_server.hpp"
#include "stream/asset_store.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace sgs::obs {
namespace {

// Every tracing test restores the global tracer to its default state so
// test order cannot leak enabled tracing (or a tiny ring) into the suite.
struct TraceGuard {
  TraceGuard() {
    set_trace_enabled(false);
    trace_reset();
  }
  ~TraceGuard() {
    set_trace_enabled(false);
    trace_reset();
    set_trace_capacity(std::size_t{1} << 14);
  }
};

gs::GaussianModel test_model(std::uint64_t seed, std::size_t count) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = count;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.seed = seed;
  return scene::generate_scene(cfg);
}

core::StreamingScene test_scene(std::uint64_t seed, std::size_t count) {
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  return core::StreamingScene::prepare(test_model(seed, count), cfg);
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& p) : path(p) {}
  ~TempFile() { std::remove(path.c_str()); }
};

std::vector<gs::Camera> orbit(int frames, int size) {
  std::vector<gs::Camera> cams;
  for (int f = 0; f < frames; ++f) {
    const float t = 0.6f * static_cast<float>(f) / static_cast<float>(frames);
    const float a = 6.2831853f * t;
    cams.push_back(gs::Camera::look_at(
        {6.0f * std::sin(a), 1.0f, -6.0f * std::cos(a)}, {0, 0, 0}, {0, 1, 0},
        0.9f, size, size));
  }
  return cams;
}

// ------------------------------------------------------------ LogHistogram --

TEST(LogHistogram, SmallValuesAreExact) {
  // Unit buckets below 2*kSubBuckets: the reported bound IS the value.
  for (std::uint64_t v = 0; v < 2 * LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_upper_bound(LogHistogram::bucket_index(v)),
              v);
  }
}

TEST(LogHistogram, BoundNeverUnderstatesAndStaysWithinPrecision) {
  // Sweep a wide value range: every bucket upper bound must cover its value
  // and overstate it by at most 2^-kPrecisionBits = 12.5%.
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v = v * 3 + 7) {
    const std::uint64_t ub =
        LogHistogram::bucket_upper_bound(LogHistogram::bucket_index(v));
    EXPECT_GE(ub, v);
    EXPECT_LE(ub - v, v / LogHistogram::kSubBuckets);
  }
  // The extremes of the u64 range stay in range.
  const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
  const int b = LogHistogram::bucket_index(top);
  EXPECT_LT(b, LogHistogram::kBucketCount);
  EXPECT_EQ(LogHistogram::bucket_upper_bound(b), top);
}

TEST(LogHistogram, PercentilesNearestRankWithinPrecision) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  // Nearest-rank truth for U{1..1000}: pXX = XX0. Reported values may
  // overstate by <= 12.5%, never understate.
  for (const double q : {0.50, 0.95, 0.99}) {
    const auto truth = static_cast<std::uint64_t>(q * 1000.0);
    const std::uint64_t got = h.percentile(q);
    EXPECT_GE(got, truth) << "q=" << q;
    EXPECT_LE(got, truth + truth / LogHistogram::kSubBuckets) << "q=" << q;
  }
  // Extremes clamp to observed min/max exactly.
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(1.0), 1000u);
  EXPECT_LE(h.percentile(0.50), h.percentile(0.95));
  EXPECT_LE(h.percentile(0.95), h.percentile(0.99));
}

TEST(LogHistogram, MergeEqualsConcatenation) {
  LogHistogram evens, odds, all;
  for (std::uint64_t v = 0; v <= 10000; ++v) {
    ((v % 2 == 0) ? evens : odds).record(v * 37 + 11);
    all.record(v * 37 + 11);
  }
  evens.merge(odds);
  EXPECT_EQ(evens.count(), all.count());
  EXPECT_EQ(evens.sum(), all.sum());
  EXPECT_EQ(evens.min(), all.min());
  EXPECT_EQ(evens.max(), all.max());
  for (int b = 0; b < LogHistogram::kBucketCount; ++b) {
    ASSERT_EQ(evens.bucket(b), all.bucket(b)) << "bucket " << b;
  }
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.999}) {
    EXPECT_EQ(evens.percentile(q), all.percentile(q));
  }
}

TEST(LogHistogram, EmptyHistogramIsZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
}

// --------------------------------------------------------- MetricsRegistry --

TEST(MetricsRegistry, CounterSumsExactAcrossPoolThreads) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("work.items");
  const MetricId g = reg.gauge("work.last");
  constexpr std::size_t kN = 20000;
  parallel_for(0, kN, [&](std::size_t i) {
    reg.add(c, i % 3 + 1);
    reg.set(g, 42);
  });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kN; ++i) expected += i % 3 + 1;

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "work.items");
  EXPECT_EQ(snap.counters[0].value, expected);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 42u);
}

TEST(MetricsRegistry, SnapshotSerializationIsDeterministic) {
  // Two registries filled by identical multi-threaded workloads must
  // serialize identically: shard merge order is creation order and metric
  // order is registration order, so thread scheduling cannot reorder the
  // output.
  auto fill = [](MetricsRegistry& reg) {
    const MetricId c0 = reg.counter("alpha");
    const MetricId c1 = reg.counter("beta");
    const MetricId h = reg.histogram("lat");
    parallel_for(0, 5000, [&](std::size_t i) {
      reg.add(c0, 1);
      reg.add(c1, i % 7);
      reg.observe(h, i * 13 + 1);
    });
    std::ostringstream out;
    write_metrics_jsonl_line(out, reg.snapshot(), 3);
    return out.str();
  };
  MetricsRegistry a, b;
  const std::string sa = fill(a);
  const std::string sb = fill(b);
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa.find("\"frame\":3"), std::string::npos);
  EXPECT_NE(sa.find("\"alpha\":5000"), std::string::npos);
  // One JSON object per line, newline-terminated (the JSONL contract).
  EXPECT_EQ(sa.back(), '\n');
  EXPECT_EQ(std::count(sa.begin(), sa.end(), '\n'), 1);
}

TEST(MetricsRegistry, HistogramShardsMergeToSerialReference) {
  MetricsRegistry reg;
  const MetricId h = reg.histogram("ns");
  LogHistogram ref;
  constexpr std::size_t kN = 8000;
  for (std::size_t i = 0; i < kN; ++i) ref.record(i * i + 1);
  parallel_for(0, kN, [&](std::size_t i) { reg.observe(h, i * i + 1); });

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const LogHistogram& got = snap.histograms[0].hist;
  EXPECT_EQ(got.count(), ref.count());
  EXPECT_EQ(got.sum(), ref.sum());
  EXPECT_EQ(got.min(), ref.min());
  EXPECT_EQ(got.max(), ref.max());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(got.percentile(q), ref.percentile(q));
  }
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsNames) {
  MetricsRegistry reg;
  const MetricId c = reg.counter("c");
  const MetricId h = reg.histogram("h");
  reg.add(c, 5);
  reg.observe(h, 100);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].value, 0u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count(), 0u);
  // Re-registering a name returns the same id.
  EXPECT_EQ(reg.counter("c"), c);
}

// ------------------------------------------------------------------ tracing --

TEST(Trace, SpanNestingOrderedWithinEachPoolThread) {
  TraceGuard guard;
  set_trace_enabled(true);
  parallel_for(0, 64, [&](std::size_t i) {
    SGS_TRACE_SPAN("test", "outer", "i", i);
    SGS_TRACE_SPAN("test", "inner", "i", i);
  });
  set_trace_enabled(false);

  std::size_t outers = 0, inners = 0;
  for (const ThreadTrace& t : trace_collect()) {
    // A ring holds events in close order: each inner lands immediately
    // before its outer, and must nest inside it on the shared clock.
    for (std::size_t k = 0; k < t.events.size(); ++k) {
      const TraceEvent& e = t.events[k];
      if (std::string(e.name) == "inner") {
        ++inners;
        ASSERT_LT(k + 1, t.events.size());
        const TraceEvent& outer = t.events[k + 1];
        ASSERT_STREQ(outer.name, "outer");
        EXPECT_EQ(outer.arg0, e.arg0);  // same iteration
        EXPECT_LE(outer.ts_ns, e.ts_ns);
        EXPECT_GE(outer.ts_ns + outer.dur_ns, e.ts_ns + e.dur_ns);
      } else if (std::string(e.name) == "outer") {
        ++outers;
      }
    }
  }
  EXPECT_EQ(outers, 64u);
  EXPECT_EQ(inners, 64u);
}

TEST(Trace, RingBoundOverwritesOldestAndCountsDrops) {
  TraceGuard guard;
  set_trace_capacity(16);
  set_trace_enabled(true);
  set_thread_name("ring-test");
  for (std::uint64_t i = 0; i < 100; ++i) {
    trace_instant("test", "tick", "i", i);
  }
  set_trace_enabled(false);

  bool found = false;
  for (const ThreadTrace& t : trace_collect()) {
    if (t.name != "ring-test") continue;
    found = true;
    ASSERT_EQ(t.events.size(), 16u);
    EXPECT_EQ(t.dropped, 84u);
    // Oldest-first after rotation: the survivors are exactly the last 16
    // emissions, in order.
    for (std::size_t k = 0; k < t.events.size(); ++k) {
      EXPECT_EQ(t.events[k].arg0, 84 + k);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_GE(trace_dropped_total(), 84u);
}

TEST(Trace, CollectWhileEmittingIsSafe) {
  // TSan coverage for the ring buffers: writers on pool threads while the
  // main thread collects concurrently.
  TraceGuard guard;
  set_trace_enabled(true);
  std::thread collector([] {
    for (int i = 0; i < 50; ++i) {
      const auto threads = trace_collect();
      (void)threads;
    }
  });
  parallel_for(0, 5000, [&](std::size_t i) {
    SGS_TRACE_SPAN("test", "work", "i", i);
    trace_instant("test", "mark", "i", i);
  });
  collector.join();
  set_trace_enabled(false);
}

TEST(Trace, DisabledSpanEmitsNothing) {
  TraceGuard guard;
  trace_reset();
  {
    SGS_TRACE_SPAN("test", "ghost");
    SGS_TRACE_INSTANT("test", "ghost_i");
  }
  for (const ThreadTrace& t : trace_collect()) {
    for (const TraceEvent& e : t.events) {
      EXPECT_STRNE(e.name, "ghost");
      EXPECT_STRNE(e.name, "ghost_i");
    }
  }
}

// ------------------------------------------- tracing-on goldens + exporter --

TEST(Trace, OutOfCoreRenderBitIdenticalWithTracingOn) {
  const auto scene = test_scene(41, 2000);
  TempFile file("/tmp/sgs_test_obs_golden.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);

  const auto cameras = orbit(3, 96);
  core::SequenceOptions seq;
  seq.render.collect_stage_timing = true;
  const auto resident = core::render_sequence(scene, cameras, seq);

  stream::ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = store.decoded_bytes_total() * 40 / 100;
  stream::ResidencyCache cache(store, ccfg);
  stream::StreamingLoader loader(cache);
  const auto scene_ooc = store.make_scene();

  TraceGuard guard;
  set_trace_enabled(true);
  const auto ooc = core::render_sequence(scene_ooc, cameras, seq, &loader);
  loader.wait_idle();
  set_trace_enabled(false);

  ASSERT_EQ(ooc.frames.size(), resident.frames.size());
  core::StageTimingsNs stalls;
  for (std::size_t f = 0; f < ooc.frames.size(); ++f) {
    // The invariant the whole subsystem is gated on: tracing observes the
    // pipeline, it never perturbs a pixel.
    EXPECT_EQ(ooc.frames[f].image.pixels(), resident.frames[f].image.pixels())
        << "frame " << f;
    stalls.accumulate(ooc.frames[f].trace.total_stage_ns());
  }
  // A cold cache demand-missed: the synchronous stall time must now be
  // attributed to the new fetch/decode stage timings.
  EXPECT_GT(stalls.fetch + stalls.decode, 0u);

  // The exported trace is valid and contains the expected span names.
  std::ostringstream json;
  write_chrome_trace(json, trace_collect());
  std::string error;
  const auto summary = analyze_trace_text(json.str(), &error);
  ASSERT_TRUE(summary.has_value()) << error;
  EXPECT_GT(summary->spans, 0u);
  for (const char* name : {"frame", "vsu", "filter", "sort", "blend"}) {
    EXPECT_TRUE(summary->by_name.count(name)) << name;
  }
  EXPECT_TRUE(summary->by_name.count("fetch") ||
              summary->by_name.count("decode"));
}

TEST(Trace, ServedSessionsBitIdenticalWithTracingOn) {
  const auto scene = test_scene(43, 1500);
  TempFile file("/tmp/sgs_test_obs_serve.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);

  std::vector<std::vector<gs::Camera>> paths = {orbit(2, 96), orbit(2, 96)};
  serve::SceneServerConfig cfg;
  cfg.cache.budget_bytes = store.decoded_bytes_total() * 50 / 100;

  TraceGuard guard;
  set_trace_enabled(true);
  const auto result = serve::SceneServer(store, cfg).run(paths);
  set_trace_enabled(false);

  for (std::size_t s = 0; s < paths.size(); ++s) {
    const auto alone = core::render_sequence(scene, paths[s], {});
    for (std::size_t f = 0; f < paths[s].size(); ++f) {
      EXPECT_EQ(result.sessions[s][f].image.pixels(),
                alone.frames[f].image.pixels())
          << "session " << s << " frame " << f;
    }
  }
  // p99 rides the log-scale histogram now; quantiles stay monotone and the
  // merged fleet histogram covers every frame.
  const serve::ServerReport& rep = result.report;
  EXPECT_LE(rep.p50_ms, rep.p95_ms);
  EXPECT_LE(rep.p95_ms, rep.p99_ms);
  EXPECT_EQ(rep.latency.count(), 4u);
  for (const auto& sr : rep.sessions) {
    EXPECT_LE(sr.p50_ms, sr.p95_ms);
    EXPECT_LE(sr.p95_ms, sr.p99_ms);
    EXPECT_EQ(sr.latency.count(), 2u);
  }

  // session_frame spans carry the session arg into the analyzer.
  std::ostringstream json;
  write_chrome_trace(json, trace_collect());
  std::string error;
  const auto summary = analyze_trace_text(json.str(), &error);
  ASSERT_TRUE(summary.has_value()) << error;
  ASSERT_EQ(summary->by_session.size(), 2u);
  EXPECT_EQ(summary->by_session.at(0).count, 2u);
  EXPECT_EQ(summary->by_session.at(1).count, 2u);
}

// --------------------------------------------------- trace_io v6 roundtrip --

TEST(TraceIo, FetchDecodeTimingsSurviveRoundTrip) {
  core::StreamingTrace trace;
  trace.pixel_count = 64;
  core::GroupWork g;
  g.rays = 8;
  g.timing_ns.vsu = 10;
  g.timing_ns.filter = 20;
  g.timing_ns.sort = 30;
  g.timing_ns.blend = 40;
  g.timing_ns.fetch = 5000;
  g.timing_ns.decode = 700;
  trace.groups.push_back(g);

  std::stringstream buf;
  ASSERT_TRUE(core::write_trace(buf, trace));
  const core::StreamingTrace back = core::read_trace(buf);
  ASSERT_EQ(back.groups.size(), 1u);
  EXPECT_EQ(back.groups[0].timing_ns.fetch, 5000u);
  EXPECT_EQ(back.groups[0].timing_ns.decode, 700u);
  EXPECT_EQ(back.total_stage_ns().total(), 5800u);
}

// ------------------------------------------------------------- trace_stats --

TEST(TraceStats, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(analyze_trace_text("not json", &error).has_value());
  EXPECT_FALSE(analyze_trace_text("{}", &error).has_value());
  EXPECT_NE(error.find("traceEvents"), std::string::npos);
  // An event without a tid.
  EXPECT_FALSE(analyze_trace_text(
                   R"({"traceEvents":[{"ph":"X","name":"a","ts":1,"dur":2}]})",
                   &error)
                   .has_value());
  // A span without a duration.
  EXPECT_FALSE(
      analyze_trace_text(
          R"({"traceEvents":[{"ph":"X","name":"a","tid":1,"ts":1}]})", &error)
          .has_value());
  // An unsupported phase.
  EXPECT_FALSE(analyze_trace_text(
                   R"({"traceEvents":[{"ph":"B","name":"a","tid":1,"ts":1}]})",
                   &error)
                   .has_value());
  // Trailing garbage after the document.
  EXPECT_FALSE(analyze_trace_text(R"({"traceEvents":[]} extra)", &error)
                   .has_value());
}

TEST(TraceStats, SummarizesSyntheticTrace) {
  const std::string doc = R"({"traceEvents":[
    {"ph":"M","name":"thread_name","tid":1,"args":{"name":"main"}},
    {"ph":"X","name":"fetch","tid":1,"ts":10.0,"dur":3.5,
     "args":{"group":7,"tier":1}},
    {"ph":"X","name":"fetch","tid":2,"ts":11.0,"dur":9.0,
     "args":{"group":8,"tier":0}},
    {"ph":"X","name":"session_frame","tid":1,"ts":0.0,"dur":50.0,
     "args":{"session":3}},
    {"ph":"i","name":"evict","tid":2,"ts":12.0,"args":{"group":7}}
  ]})";
  std::string error;
  const auto summary = analyze_trace_text(doc, &error);
  ASSERT_TRUE(summary.has_value()) << error;
  EXPECT_EQ(summary->events, 4u);
  EXPECT_EQ(summary->spans, 3u);
  EXPECT_EQ(summary->instants, 1u);
  EXPECT_EQ(summary->tids, (std::vector<int>{1, 2}));
  EXPECT_EQ(summary->thread_names.at(1), "main");
  EXPECT_EQ(summary->by_name.at("fetch").count, 2u);
  EXPECT_EQ(summary->by_name.at("fetch").max_dur_ns, 9000u);
  EXPECT_EQ(summary->instants_by_name.at("evict"), 1u);
  EXPECT_EQ(summary->by_session.at(3).count, 1u);
  // Fetch samples sorted by duration descending, args preserved.
  ASSERT_EQ(summary->fetches.size(), 2u);
  EXPECT_EQ(summary->fetches[0].group, 8);
  EXPECT_EQ(summary->fetches[0].dur_ns, 9000u);
  EXPECT_EQ(summary->fetches[1].tier, 1);
}

}  // namespace
}  // namespace sgs::obs
