// Work trace of a streaming-rendered frame.
//
// The functional renderer (streaming_renderer.cpp) records, per pixel group
// and per voxel visit, exactly how much work each pipeline stage performed.
// The accelerator simulator replays this trace through its stage-granular
// pipeline model; the same trace drives all STREAMINGGS variants.
#pragma once

#include <cstdint>
#include <vector>

namespace sgs::core {

// One voxel streamed for one pixel group.
struct VoxelWorkItem {
  std::uint32_t residents = 0;     // Gaussians streamed through the coarse phase
  std::uint32_t coarse_pass = 0;   // survivors entering the fine phase
  std::uint32_t fine_pass = 0;     // survivors entering sort + render
  std::uint64_t coarse_bytes = 0;  // DRAM bytes, coarse stream
  std::uint64_t fine_bytes = 0;    // DRAM bytes, fine stream
  std::uint64_t blend_ops = 0;     // pixel-blend evaluations in this voxel
};

// One pixel group (tile) of the frame.
struct GroupWork {
  std::uint32_t rays = 0;        // pixels in the group
  std::uint64_t dda_steps = 0;   // VSU ray-marching steps (incl. empty cells)
  std::uint32_t nodes = 0;       // voxels in the ordering DAG
  std::uint32_t edges = 0;       // dependency edges
  std::vector<VoxelWorkItem> voxels;  // in global rendering order
};

struct StreamingTrace {
  int group_size = 32;
  std::uint64_t pixel_count = 0;
  std::uint64_t frame_write_bytes = 0;
  // Per-frame VSU voxel-table build: every non-empty voxel is projected
  // once to bin it into the pixel groups it may affect.
  std::uint64_t voxel_table_steps = 0;
  std::vector<GroupWork> groups;

  // --- aggregates ----------------------------------------------------------
  std::uint64_t total_residents() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.residents;
    return t;
  }
  std::uint64_t total_coarse_pass() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.coarse_pass;
    return t;
  }
  std::uint64_t total_fine_pass() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.fine_pass;
    return t;
  }
  std::uint64_t total_blend_ops() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.blend_ops;
    return t;
  }
  std::uint64_t total_dram_bytes() const {
    std::uint64_t t = frame_write_bytes;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.coarse_bytes + v.fine_bytes;
    return t;
  }
};

}  // namespace sgs::core
