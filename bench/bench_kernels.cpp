// Google-benchmark microbenchmarks of the library's hot kernels: SH
// evaluation, exact and coarse projection, alpha blending, DDA traversal,
// topological voxel ordering, k-means assignment, and the two renderers on
// a small scene.
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/frame_plan.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "core/voxel_order.hpp"
#include "gs/blending.hpp"
#include "gs/projection.hpp"
#include "gs/sh.hpp"
#include "render/tile_renderer.hpp"
#include "scene/generator.hpp"
#include "voxel/dda.hpp"
#include "vq/kmeans.hpp"

namespace {

using namespace sgs;

gs::Camera bench_camera(int w = 256, int h = 256) {
  return gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, w, h);
}

gs::GaussianModel bench_model(std::size_t n) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = n;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.seed = 99;
  return scene::generate_scene(cfg);
}

void BM_ShEval(benchmark::State& state) {
  Rng rng(1);
  std::array<Vec3f, 16> coeffs;
  for (auto& c : coeffs) c = rng.normal_vec3(0.2f);
  Vec3f dir = rng.unit_sphere();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::eval_sh(coeffs, dir));
    dir.x += 1e-6f;  // defeat caching
  }
}
BENCHMARK(BM_ShEval);

void BM_ProjectGaussian(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cam = bench_camera();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::project_gaussian(model.gaussians[i], cam));
    i = (i + 1) & 4095;
  }
}
BENCHMARK(BM_ProjectGaussian);

void BM_ProjectCoarse(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cam = bench_camera();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& g = model.gaussians[i];
    benchmark::DoNotOptimize(gs::project_coarse(g.position, g.max_scale(), cam));
    i = (i + 1) & 4095;
  }
}
BENCHMARK(BM_ProjectCoarse);

void BM_AlphaBlend(benchmark::State& state) {
  gs::ProjectedGaussian g;
  g.mean = {128, 128};
  g.conic = Sym2f{0.02f, 0.005f, 0.03f};
  g.opacity = 0.8f;
  g.color = {0.7f, 0.3f, 0.2f};
  gs::PixelAccumulator acc;
  float x = 120.0f;
  for (auto _ : state) {
    const float a = gs::gaussian_alpha(g, {x, 126.0f});
    if (a > 0.0f) gs::blend(acc, g.color, a);
    benchmark::DoNotOptimize(acc);
    x = x < 136.0f ? x + 0.25f : 120.0f;
    if (acc.saturated()) acc = gs::PixelAccumulator{};
  }
}
BENCHMARK(BM_AlphaBlend);

void BM_DdaTraversal(benchmark::State& state) {
  const auto model = bench_model(20000);
  const auto grid = voxel::VoxelGrid::build(model, 0.5f);
  const auto cam = bench_camera();
  Rng rng(3);
  for (auto _ : state) {
    const gs::Ray ray =
        cam.pixel_ray(rng.uniform(0.0f, 256.0f), rng.uniform(0.0f, 256.0f));
    benchmark::DoNotOptimize(voxel::intersected_voxels(ray, grid));
  }
}
BENCHMARK(BM_DdaTraversal);

void BM_TopologicalOrder(benchmark::State& state) {
  // 64 rays over a 64-voxel chain with random subsequences.
  Rng rng(7);
  std::vector<std::vector<voxel::DenseVoxelId>> rays;
  for (int r = 0; r < 64; ++r) {
    std::vector<voxel::DenseVoxelId> ray;
    for (int v = 0; v < 64; ++v) {
      if (rng.uniform() < 0.4f) ray.push_back(v);
    }
    rays.push_back(std::move(ray));
  }
  auto depth = [](voxel::DenseVoxelId v) { return static_cast<float>(v); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::topological_voxel_order(rays, depth));
  }
}
BENCHMARK(BM_TopologicalOrder);

void BM_KMeansAssign(benchmark::State& state) {
  Rng rng(11);
  const std::size_t dim = 45;
  std::vector<float> centroids(512 * dim);
  for (auto& v : centroids) v = rng.normal();
  std::vector<float> query(dim);
  for (auto& v : query) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vq::nearest_centroid(centroids, dim, query));
    query[0] += 1e-5f;
  }
}
BENCHMARK(BM_KMeansAssign);

void BM_TileRenderFrame(benchmark::State& state) {
  const auto model = bench_model(static_cast<std::size_t>(state.range(0)));
  const auto cam = bench_camera(192, 192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::render_tile_centric(model, cam));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TileRenderFrame)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_StreamingRenderFrame(benchmark::State& state) {
  const auto model = bench_model(static_cast<std::size_t>(state.range(0)));
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto cam = bench_camera(192, 192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::render_streaming(scene, cam));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamingRenderFrame)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

// Multi-group stress: small pixel groups put the load on the per-group
// pipeline (scratch-arena reuse + pool scheduling) rather than the blending
// inner loop — the path the staged refactor targets.
void BM_StreamingRenderFrameFineGroups(benchmark::State& state) {
  const auto model = bench_model(20000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 0.5f;
  cfg.use_vq = false;
  cfg.group_size = static_cast<int>(state.range(0));
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto cam = bench_camera(256, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::render_streaming(scene, cam));
  }
}
BENCHMARK(BM_StreamingRenderFrameFineGroups)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Per-frame voxel-table build (the FramePlan layer on its own).
void BM_FramePlanBuild(benchmark::State& state) {
  const auto model = bench_model(20000);
  const auto grid = voxel::VoxelGrid::build(model, 0.5f);
  const auto cam = bench_camera();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FramePlan::build(grid, cam, 32));
  }
}
BENCHMARK(BM_FramePlanBuild);

// Frame-sequence rendering under headset-like creep: nearly every frame
// reuses the cached plan, so the per-frame cost is the staged pipeline
// alone (no table rebuild).
void BM_StreamingSequenceCreep(benchmark::State& state) {
  const auto model = bench_model(20000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  core::SequenceRenderer sequence(scene);
  float x = 0.0f;
  for (auto _ : state) {
    const auto cam = gs::Camera::look_at({x, 0, -5}, {0, 0, 0}, {0, 1, 0},
                                         0.8f, 192, 192);
    benchmark::DoNotOptimize(sequence.render(cam));
    x += 1e-4f;  // creep well inside the reuse envelope
  }
}
BENCHMARK(BM_StreamingSequenceCreep)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
