#include "core/finetune.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/psnr.hpp"
#include "render/tile_renderer.hpp"
#include "voxel/grid.hpp"

namespace sgs::core {

FinetuneResult boundary_aware_finetune(const gs::GaussianModel& initial,
                                       const StreamingConfig& streaming_config,
                                       const gs::Camera& camera,
                                       const Image& reference,
                                       const FinetuneConfig& config) {
  FinetuneResult result;
  result.model = initial;

  StreamingConfig cfg = streaming_config;
  cfg.use_vq = false;  // quantization happens after boundary fine-tuning

  std::vector<Vec3f> original_scales(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i) {
    original_scales[i] = initial.gaussians[i].scale;
  }

  // Positions never move, so the voxel grid is constant across fine-tuning;
  // build it once for the per-iteration boundary checks.
  const voxel::VoxelGrid grid =
      voxel::VoxelGrid::build(initial, cfg.voxel_size);

  // Gaussians measured rendering out of depth order in the latest refresh.
  // The set is re-measured each refresh (not sticky): a Gaussian that
  // stopped violating stops shrinking, which is the L_origin / L_CBP
  // equilibrium of Eq. 1 — further shrinking would only cost appearance
  // without reducing L_CBP.
  std::vector<bool> flagged(initial.size(), false);

  const int refresh = std::max(1, config.refresh_every);
  for (int iter = 0; iter <= config.iterations; ++iter) {
    const bool refresh_now = (iter % refresh == 0) || iter == config.iterations;
    if (refresh_now) {
      // Measure T_i and quality on the current model.
      StreamingScene scene = StreamingScene::prepare(result.model, cfg);
      StreamingRenderOptions opts;
      opts.collect_violators = true;
      StreamingRenderResult r = render_streaming(scene, camera, opts);
      std::fill(flagged.begin(), flagged.end(), false);
      for (std::uint32_t v : r.violators) flagged[v] = true;

      const render::TileRenderResult current_tile =
          render::render_tile_centric(result.model, camera);

      FinetunePoint pt;
      pt.iteration = iter;
      pt.violation_ratio = r.stats.violation_ratio();
      pt.cross_boundary_ratio = scene.grid().cross_boundary_ratio(result.model);
      pt.psnr_db = metrics::psnr_capped(r.image, current_tile.image);
      pt.psnr_vs_initial_db = metrics::psnr_capped(r.image, reference);
      result.history.push_back(pt);
      if (iter == config.iterations) break;
    }

    // One descent step on  beta * L_CBP  plus the anchor term. Positions and
    // every non-scale parameter stay fixed (paper: "keep each Gaussian
    // position fixed to retain the scene geometry"). A Gaussian whose
    // 3-sigma extent already fits its voxel cannot fire T_i again and is
    // left alone regardless of stale flags.
    const float shrink = 1.0f - config.lr * config.beta;
    for (std::size_t i = 0; i < result.model.size(); ++i) {
      gs::Gaussian& g = result.model.gaussians[i];
      if (flagged[i] && grid.crosses_boundary(g)) {
        const Vec3f floor = original_scales[i] * config.min_scale_factor;
        g.scale = g.scale * shrink;
        g.scale = {std::max(g.scale.x, floor.x), std::max(g.scale.y, floor.y),
                   std::max(g.scale.z, floor.z)};
      } else if (!flagged[i] && config.anchor_weight > 0.0f) {
        // L_origin proxy: non-violating Gaussians recover toward the
        // original appearance.
        g.scale = lerp(g.scale, original_scales[i],
                       config.lr * config.anchor_weight);
      }
    }
  }
  return result;
}

}  // namespace sgs::core
