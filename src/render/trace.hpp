// Work trace of a tile-centric frame: the exact operation counts a frame
// performed, independent of what hardware executes them. The GPU roofline
// model and the GSCore simulator both consume this.
#pragma once

#include <cstdint>
#include <vector>

#include "render/traffic.hpp"

namespace sgs::render {

struct TileCentricTrace {
  // Model/workload shape.
  std::uint64_t gaussian_count = 0;    // Gaussians in the model
  std::uint64_t projected_count = 0;   // survived near-plane/degeneracy culls
  std::uint64_t contributing_count = 0;  // landed in at least one tile
  std::uint64_t pair_count = 0;        // duplicated (tile, Gaussian) pairs
  std::uint64_t processed_pairs = 0;   // pairs traversed before tile saturation
  std::uint64_t blend_ops = 0;         // per-pixel alpha-blend evaluations
  std::uint64_t tile_count = 0;
  std::uint64_t pixel_count = 0;
  int tile_size = 16;

  // Per-tile duplicated pair counts (drives GSCore's per-tile sort model).
  std::vector<std::uint32_t> tile_pair_counts;

  // Exact DRAM bytes by stage.
  TrafficBreakdown traffic;
};

}  // namespace sgs::render
