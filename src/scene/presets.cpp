#include "scene/presets.hpp"

#include <cmath>
#include <stdexcept>

namespace sgs::scene {

namespace {

const PresetInfo kInfos[] = {
    // name        dataset                        synth  count     res          voxel
    {"lego",      Dataset::kSyntheticNerf,       true,  330'000,  800,  800,  0.4f},
    {"palace",    Dataset::kSyntheticNsvf,       true,  540'000,  800,  800,  0.4f},
    {"train",     Dataset::kTanksAndTemples,     false, 1'050'000, 980,  545,  2.0f},
    {"truck",     Dataset::kTanksAndTemples,     false, 2'540'000, 979,  546,  2.0f},
    {"playroom",  Dataset::kDeepBlending,        false, 2'320'000, 1264, 832,  2.0f},
    {"drjohnson", Dataset::kDeepBlending,        false, 3'270'000, 1332, 876,  2.0f},
};

int preset_index(ScenePreset p) { return static_cast<int>(p); }

}  // namespace

const PresetInfo& preset_info(ScenePreset p) { return kInfos[preset_index(p)]; }

ScenePreset preset_from_name(const std::string& name) {
  for (int i = 0; i < 6; ++i) {
    if (kInfos[i].name == name) return static_cast<ScenePreset>(i);
  }
  throw std::invalid_argument("unknown scene preset: " + name);
}

GeneratorConfig preset_generator_config(ScenePreset p, float scale) {
  const PresetInfo& info = preset_info(p);
  GeneratorConfig cfg;
  cfg.gaussian_count = static_cast<std::size_t>(
      std::max(1.0, std::round(static_cast<double>(info.paper_gaussian_count) * scale)));
  cfg.seed = 0xC0FFEE00ULL + static_cast<std::uint64_t>(preset_index(p));
  // Coverage coupling: with fewer Gaussians than the paper-scale model, the
  // surfels must grow to keep surfaces covered (surface density ~ N * s^2).
  // The shift uses a sub-sqrt exponent and a cap so that reduced-scale
  // models trade a little coverage for keeping the cross-boundary Gaussian
  // ratio near the low-percent range of trained models (paper Fig. 7).
  const float coverage_shift =
      scale < 1.0f ? -0.3f * std::log(std::max(scale, 1e-4f)) : 0.0f;

  if (info.synthetic) {
    // Bounded object in a ~2.6-unit cube (NeRF-synthetic convention); splats
    // are small and dense.
    cfg.extent_min = {-1.3f, -1.3f, -1.3f};
    cfg.extent_max = {1.3f, 1.3f, 1.3f};
    cfg.cluster_count = p == ScenePreset::kPalace ? 60 : 36;
    cfg.cluster_radius_min_frac = 0.02f;
    cfg.cluster_radius_max_frac = 0.10f;
    // Trained synthetic-NeRF splats are ~1-3 px at 800x800: s_max ~ 4e-3 of
    // a 2.6-unit scene. Shifted for coverage at reduced model scales.
    cfg.log_scale_mean = std::min(-5.5f + coverage_shift, -4.7f);
    cfg.log_scale_std = 0.55f;
    cfg.ground_fraction = 0.0f;
    cfg.sh_ac_std = 0.06f;
  } else {
    // Unbounded capture compressed into a ~30-unit working volume with a
    // dominant ground plane; splats span a wider scale range.
    cfg.extent_min = {-15.0f, -4.0f, -15.0f};
    cfg.extent_max = {15.0f, 8.0f, 15.0f};
    cfg.cluster_count = 90;
    cfg.cluster_radius_min_frac = 0.02f;
    cfg.cluster_radius_max_frac = 0.08f;
    // Trained real-world splats: s_max ~ 1e-2 units against 2.0-unit voxels
    // (cross-boundary ratio in the paper's low-percent range).
    cfg.log_scale_mean = std::min(-4.4f + coverage_shift, -3.9f);
    cfg.log_scale_std = 0.65f;
    cfg.ground_fraction = 0.25f;
    cfg.sh_ac_std = 0.08f;
    if (p == ScenePreset::kPlayroom || p == ScenePreset::kDrjohnson) {
      // Indoor: tighter volume, more box/wall structure.
      cfg.extent_min = {-8.0f, -3.0f, -8.0f};
      cfg.extent_max = {8.0f, 4.0f, 8.0f};
      cfg.cluster_count = 70;
      cfg.ground_fraction = 0.2f;
    }
  }
  return cfg;
}

gs::GaussianModel make_preset_scene(ScenePreset p, float scale) {
  return generate_scene(preset_generator_config(p, scale));
}

gs::Camera make_preset_camera(ScenePreset p, int width, int height, float frame) {
  const PresetInfo& info = preset_info(p);
  const float angle = 6.2831853f * frame;
  if (info.synthetic) {
    // NeRF-synthetic style orbit: radius ~4, slightly above the equator.
    const Vec3f eye{4.0f * std::sin(angle + 0.7f), 1.6f,
                    4.0f * std::cos(angle + 0.7f)};
    return gs::Camera::look_at(eye, {0.0f, 0.0f, 0.0f}, {0.0f, 1.0f, 0.0f},
                               0.69f /* ~40 deg vfov */, width, height);
  }
  // Real-world: camera inside the volume, looking across it at eye height.
  const float r = p == ScenePreset::kPlayroom || p == ScenePreset::kDrjohnson
                      ? 5.5f
                      : 11.0f;
  const Vec3f eye{r * std::sin(angle + 0.3f), 1.4f, r * std::cos(angle + 0.3f)};
  const Vec3f target{0.0f, 0.8f, 0.0f};
  return gs::Camera::look_at(eye, target, {0.0f, 1.0f, 0.0f},
                             0.85f /* ~49 deg vfov */, width, height);
}

void scaled_resolution(ScenePreset p, float resolution_scale, int& width,
                       int& height) {
  const PresetInfo& info = preset_info(p);
  auto round16 = [](float v) {
    const int r = static_cast<int>(std::round(v / 16.0f)) * 16;
    return r < 16 ? 16 : r;
  };
  width = round16(static_cast<float>(info.paper_width) * resolution_scale);
  height = round16(static_cast<float>(info.paper_height) * resolution_scale);
}

}  // namespace sgs::scene
