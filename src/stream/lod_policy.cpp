#include "stream/lod_policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gs/projection.hpp"

namespace sgs::stream {

namespace {

// Projected pixel extent of the group's voxel edge at its nearest depth,
// inflated by the caller's motion envelope exactly like the prefetch
// ranking: the tier must stay right while the camera drifts within the
// plan-reuse window.
float group_footprint_px(const AssetStore& store, const FrameIntent& intent,
                         voxel::DenseVoxelId v) {
  const AssetDirEntry& e = store.entry(v);
  const gs::Camera& cam = *intent.camera;
  const Vec3f center = (e.aabb_min + e.aabb_max) * 0.5f;
  const float radius = (e.aabb_max - e.aabb_min).norm() * 0.5f;
  const float edge = e.aabb_max.x - e.aabb_min.x;  // voxels are cubes
  const Vec3f c_cam = cam.world_to_camera(center);
  const float trans_env = intent.motion_translation;
  const float near_z = std::max(c_cam.z - radius - trans_env, gs::kNearClip);
  return cam.focal_max() * edge / near_z;
}

}  // namespace

int select_group_tier(const AssetStore& store, const FrameIntent& intent,
                      voxel::DenseVoxelId v, const LodPolicy& policy) {
  if (policy.force_tier0 || intent.camera == nullptr) return 0;
  int store_max = store.tier_count() - 1;
  if (policy.reserve_coarse_tier && store_max > 0) --store_max;
  const int max_tier = std::clamp(policy.max_tier, 0, store_max);
  if (max_tier == 0) return 0;
  const float fp = group_footprint_px(store, intent, v);
  int tier = 0;
  if (fp < policy.footprint_full_px) tier = 1;
  if (fp < policy.footprint_half_px) tier = 2;
  return std::min(tier, max_tier);
}

TierSelection select_frame_tiers(
    const AssetStore& store, const FrameIntent& intent,
    std::span<const voxel::DenseVoxelId> plan_voxels,
    const LodPolicy& policy) {
  TierSelection sel;
  sel.tier_by_group.assign(static_cast<std::size_t>(store.group_count()), 0);
  if (plan_voxels.empty()) return sel;

  struct Candidate {
    float depth;
    voxel::DenseVoxelId id;
    int tier;
  };
  std::vector<Candidate> order;
  order.reserve(plan_voxels.size());
  for (const voxel::DenseVoxelId v : plan_voxels) {
    const AssetDirEntry& e = store.entry(v);
    const Vec3f center = (e.aabb_min + e.aabb_max) * 0.5f;
    const float depth = intent.camera != nullptr
                            ? (center - intent.camera->position()).norm()
                            : 0.0f;
    order.push_back({depth, v, select_group_tier(store, intent, v, policy)});
  }

  // Budget demotion walks near-to-far: near groups keep their footprint
  // tier (they dominate the image), far groups absorb the cut. The
  // estimate charges every group's tier payload as if it had to be fetched
  // — deliberately blind to residency, so selection stays a pure function
  // of the camera (see header).
  int store_max = store.tier_count() - 1;
  if (policy.reserve_coarse_tier && store_max > 0) --store_max;
  const int max_tier = std::clamp(policy.max_tier, 0, store_max);
  if (policy.frame_fetch_budget_bytes > 0 && !policy.force_tier0 &&
      max_tier > 0) {
    std::sort(order.begin(), order.end(), [](const Candidate& a,
                                             const Candidate& b) {
      return a.depth != b.depth ? a.depth < b.depth : a.id < b.id;
    });
    std::uint64_t est = 0;
    bool over = false;
    for (Candidate& c : order) {
      if (!over) {
        est += store.tier_extent(c.id, c.tier).bytes;
        if (est > policy.frame_fetch_budget_bytes) over = true;
      } else if (c.tier < max_tier) {
        c.tier = max_tier;
        ++sel.demoted;
      }
    }
  }

  for (const Candidate& c : order) {
    sel.tier_by_group[static_cast<std::size_t>(c.id)] =
        static_cast<std::uint8_t>(c.tier);
    ++sel.histogram[static_cast<std::size_t>(c.tier)];
  }
  return sel;
}

LodPolicy lod_policy_from_name(const std::string& name) {
  LodPolicy p;
  if (name == "off" || name == "l0") {
    p.force_tier0 = true;
  } else if (name == "quality") {
    p.footprint_full_px = 48.0f;
    p.footprint_half_px = 16.0f;
  } else if (name == "balanced") {
    // The LodPolicy{} defaults.
  } else if (name == "aggressive") {
    p.footprint_full_px = 192.0f;
    p.footprint_half_px = 96.0f;
  } else {
    throw std::invalid_argument("unknown LOD policy: " + name +
                                " (try off|quality|balanced|aggressive)");
  }
  return p;
}

}  // namespace sgs::stream
