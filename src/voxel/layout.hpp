// Customized DRAM data layout (paper Fig. 8).
//
// Gaussian features are split into two halves stored in separate streams:
//   * coarse stream — 4 uncompressed float32 per Gaussian {x, y, z, s_max},
//     read by the coarse-grained filter;
//   * fine stream — the remaining 55 parameters, either raw float32 or
//     vector-quantized to four codebook indices plus a raw opacity.
// Both streams are laid out voxel-by-voxel in dense-voxel order so streaming
// one voxel is a single sequential DRAM burst per stream.
#pragma once

#include <cstdint>

#include "gs/gaussian.hpp"
#include "voxel/grid.hpp"

namespace sgs::voxel {

// Byte sizes of the on-DRAM records. These drive every traffic number in the
// evaluation, so they are fixed constants rather than sizeof() of host
// structs (host padding must not leak into the hardware model).
inline constexpr std::size_t kCoarseRecordBytes = 4 * sizeof(float);  // 16
inline constexpr std::size_t kFineRecordRawBytes =
    static_cast<std::size_t>(gs::kFineParams) * sizeof(float);  // 220
// VQ fine record: scale/rotation/DC indices (12-bit codebooks, stored as
// uint16) + SH index (9-bit, stored as uint16) + raw float opacity.
inline constexpr std::size_t kFineRecordVqBytes = 4 * sizeof(std::uint16_t) + sizeof(float);  // 12

struct VoxelSpan {
  std::uint64_t coarse_offset = 0;  // bytes into the coarse stream
  std::uint64_t fine_offset = 0;    // bytes into the fine stream
  std::uint32_t count = 0;          // Gaussians in this voxel
};

// Address map of the two streams for a given grid. Purely an accounting
// structure: the renderers use it to charge exact DRAM byte counts, and the
// simulator uses it to size bursts.
class DataLayout {
 public:
  DataLayout(const VoxelGrid& grid, bool vector_quantized);

  bool vector_quantized() const { return vq_; }
  std::size_t fine_record_bytes() const {
    return vq_ ? kFineRecordVqBytes : kFineRecordRawBytes;
  }

  const VoxelSpan& span(DenseVoxelId id) const { return spans_[static_cast<std::size_t>(id)]; }
  std::size_t voxel_count() const { return spans_.size(); }

  std::uint64_t coarse_stream_bytes() const { return coarse_total_; }
  std::uint64_t fine_stream_bytes() const { return fine_total_; }
  std::uint64_t total_bytes() const { return coarse_total_ + fine_total_; }

  // Bytes the coarse phase loads for a whole voxel (all residents).
  std::uint64_t coarse_bytes(DenseVoxelId id) const {
    return static_cast<std::uint64_t>(span(id).count) * kCoarseRecordBytes;
  }
  // Bytes the fine phase loads for `survivors` Gaussians of a voxel.
  std::uint64_t fine_bytes(std::uint32_t survivors) const {
    return static_cast<std::uint64_t>(survivors) * fine_record_bytes();
  }

 private:
  bool vq_;
  std::vector<VoxelSpan> spans_;
  std::uint64_t coarse_total_ = 0;
  std::uint64_t fine_total_ = 0;
};

}  // namespace sgs::voxel
