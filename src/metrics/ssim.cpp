#include "metrics/ssim.hpp"

#include <cassert>
#include <cmath>
#include <vector>

namespace sgs::metrics {

namespace {
constexpr int kWindow = 8;
constexpr int kStride = 4;
constexpr double kC1 = (0.01 * 1.0) * (0.01 * 1.0);
constexpr double kC2 = (0.03 * 1.0) * (0.03 * 1.0);

double luma(const Vec3f& p) {
  return 0.299 * p.x + 0.587 * p.y + 0.114 * p.z;
}
}  // namespace

double ssim(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  const int w = a.width();
  const int h = a.height();
  if (w < kWindow || h < kWindow) return a.pixels() == b.pixels() ? 1.0 : 0.0;

  double total = 0.0;
  std::size_t windows = 0;
  for (int y0 = 0; y0 + kWindow <= h; y0 += kStride) {
    for (int x0 = 0; x0 + kWindow <= w; x0 += kStride) {
      double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
      for (int y = y0; y < y0 + kWindow; ++y) {
        for (int x = x0; x < x0 + kWindow; ++x) {
          const double va = luma(a.at(x, y));
          const double vb = luma(b.at(x, y));
          sa += va;
          sb += vb;
          saa += va * va;
          sbb += vb * vb;
          sab += va * vb;
        }
      }
      constexpr double n = kWindow * kWindow;
      const double mu_a = sa / n;
      const double mu_b = sb / n;
      const double var_a = saa / n - mu_a * mu_a;
      const double var_b = sbb / n - mu_b * mu_b;
      const double cov = sab / n - mu_a * mu_b;
      const double num = (2.0 * mu_a * mu_b + kC1) * (2.0 * cov + kC2);
      const double den = (mu_a * mu_a + mu_b * mu_b + kC1) * (var_a + var_b + kC2);
      total += num / den;
      ++windows;
    }
  }
  return windows > 0 ? total / static_cast<double>(windows) : 1.0;
}

}  // namespace sgs::metrics
