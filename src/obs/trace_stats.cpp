#include "obs/trace_stats.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <variant>

namespace sgs::obs {

namespace {

// ------------------------------------------------------ minimal JSON value --

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  // Numbers are kept as double: Chrome trace ts/dur are microsecond doubles
  // and every integer this schema carries fits a double exactly.
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      v = nullptr;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
};

// Recursive-descent parser. Throws std::runtime_error with a byte offset on
// malformed input; the analyze entry points translate that into the error
// string contract.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue{parse_string()};
      case 't':
        parse_literal("true");
        return JsonValue{true};
      case 'f':
        parse_literal("false");
        return JsonValue{false};
      case 'n':
        parse_literal("null");
        return JsonValue{nullptr};
      default:
        return JsonValue{parse_number()};
    }
  }

  void parse_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    for (;;) {
      std::string key = parse_string_at_peek();
      expect(':');
      obj[std::move(key)] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue{std::move(obj)};
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue{std::move(arr)};
  }

  std::string parse_string_at_peek() {
    if (peek() != '"') fail("expected string");
    return parse_string();
  }

  std::string parse_string() {
    // pos_ is at the opening quote (peek() established it).
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // The exporter never emits \u escapes; pass them through
            // as-is rather than decoding UTF-16 pairs.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            out += "\\u";
            out += text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            fail("bad escape");
        }
      } else {
        out.push_back(c);
      }
    }
    fail("unterminated string");
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const std::size_t d0 = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      return pos_ > d0;
    };
    if (!digits()) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) fail("bad number exponent");
    }
    return std::stod(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------- analysis --

std::uint64_t us_to_ns(double us) {
  return static_cast<std::uint64_t>(std::llround(us * 1000.0));
}

const JsonValue* find(const JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::optional<TraceSummary> analyze_document(const JsonValue& doc,
                                             std::string* error) {
  auto fail = [&](const std::string& what) -> std::optional<TraceSummary> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("top level is not an object");
  const JsonValue* events = find(doc.object(), "traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }

  TraceSummary sum;
  std::vector<int> tids;
  std::size_t index = 0;
  for (const JsonValue& ev : events->array()) {
    const std::string at = "event " + std::to_string(index++);
    if (!ev.is_object()) return fail(at + ": not an object");
    const JsonObject& obj = ev.object();
    const JsonValue* ph = find(obj, "ph");
    const JsonValue* name = find(obj, "name");
    const JsonValue* tid = find(obj, "tid");
    if (ph == nullptr || !ph->is_string()) return fail(at + ": missing ph");
    if (name == nullptr || !name->is_string()) {
      return fail(at + ": missing name");
    }
    if (tid == nullptr || !tid->is_number()) return fail(at + ": missing tid");
    const int tid_i = static_cast<int>(tid->number());
    const std::string& phase = ph->str();

    if (phase == "M") {
      if (name->str() == "thread_name") {
        const JsonValue* args = find(obj, "args");
        if (args != nullptr && args->is_object()) {
          const JsonValue* tn = find(args->object(), "name");
          if (tn != nullptr && tn->is_string()) {
            sum.thread_names[tid_i] = tn->str();
          }
        }
      }
      continue;
    }

    const JsonValue* ts = find(obj, "ts");
    if (ts == nullptr || !ts->is_number()) return fail(at + ": missing ts");
    tids.push_back(tid_i);
    ++sum.events;

    std::int64_t group = -1, tier = -1, session = -1;
    if (const JsonValue* args = find(obj, "args");
        args != nullptr && args->is_object()) {
      if (const JsonValue* g = find(args->object(), "group");
          g != nullptr && g->is_number()) {
        group = static_cast<std::int64_t>(g->number());
      }
      if (const JsonValue* t = find(args->object(), "tier");
          t != nullptr && t->is_number()) {
        tier = static_cast<std::int64_t>(t->number());
      }
      if (const JsonValue* s = find(args->object(), "session");
          s != nullptr && s->is_number()) {
        session = static_cast<std::int64_t>(s->number());
      }
    }

    if (phase == "X") {
      const JsonValue* dur = find(obj, "dur");
      if (dur == nullptr || !dur->is_number()) {
        return fail(at + ": span without dur");
      }
      ++sum.spans;
      const std::uint64_t dur_ns = us_to_ns(dur->number());
      SpanAgg& agg = sum.by_name[name->str()];
      ++agg.count;
      agg.total_dur_ns += dur_ns;
      agg.max_dur_ns = std::max(agg.max_dur_ns, dur_ns);
      if (name->str() == "session_frame") {
        SpanAgg& ses = sum.by_session[session];
        ++ses.count;
        ses.total_dur_ns += dur_ns;
        ses.max_dur_ns = std::max(ses.max_dur_ns, dur_ns);
      }
      if (name->str() == "fetch") {
        SpanSample s;
        s.name = name->str();
        s.tid = tid_i;
        s.ts_ns = us_to_ns(ts->number());
        s.dur_ns = dur_ns;
        s.group = group;
        s.tier = tier;
        sum.fetches.push_back(std::move(s));
      }
    } else if (phase == "i" || phase == "I") {
      ++sum.instants;
      ++sum.instants_by_name[name->str()];
    } else {
      return fail(at + ": unsupported phase '" + phase + "'");
    }
  }

  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  sum.tids = std::move(tids);
  std::sort(sum.fetches.begin(), sum.fetches.end(),
            [](const SpanSample& a, const SpanSample& b) {
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.ts_ns < b.ts_ns;
            });
  return sum;
}

}  // namespace

std::optional<TraceSummary> analyze_trace_text(const std::string& text,
                                               std::string* error) {
  try {
    JsonParser parser(text);
    const JsonValue doc = parser.parse();
    return analyze_document(doc, error);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::optional<TraceSummary> analyze_trace_file(const std::string& path,
                                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return analyze_trace_text(buf.str(), error);
}

}  // namespace sgs::obs
