// Unit tests for the common substrate: math types, RNG, image IO, threading,
// CLI parsing.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "common/cli.hpp"
#include "common/image.hpp"
#include "common/mat.hpp"
#include "common/parallel.hpp"
#include "common/ppm.hpp"
#include "common/quat.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "common/vec.hpp"

namespace sgs {
namespace {

constexpr float kEps = 1e-5f;

// ---------------------------------------------------------------- vectors --

TEST(Vec3, ArithmeticIdentities) {
  const Vec3f a{1.0f, -2.0f, 3.0f};
  const Vec3f b{0.5f, 4.0f, -1.0f};
  EXPECT_EQ(a + b - b, a);
  EXPECT_EQ(a * 1.0f, a);
  EXPECT_EQ(a * 0.0f, (Vec3f{0, 0, 0}));
  EXPECT_FLOAT_EQ(a.dot(b), 1.0f * 0.5f - 2.0f * 4.0f + 3.0f * -1.0f);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3f a{1.0f, 2.0f, 3.0f};
  const Vec3f b{-4.0f, 0.5f, 2.0f};
  const Vec3f c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0f, kEps);
  EXPECT_NEAR(c.dot(b), 0.0f, kEps);
}

TEST(Vec3, CrossAnticommutes) {
  const Vec3f a{1.0f, 2.0f, 3.0f};
  const Vec3f b{-4.0f, 0.5f, 2.0f};
  const Vec3f lhs = a.cross(b);
  const Vec3f rhs = b.cross(a) * -1.0f;
  EXPECT_NEAR(lhs.x, rhs.x, kEps);
  EXPECT_NEAR(lhs.y, rhs.y, kEps);
  EXPECT_NEAR(lhs.z, rhs.z, kEps);
}

TEST(Vec3, NormalizedHasUnitLength) {
  const Vec3f v{3.0f, -4.0f, 12.0f};
  EXPECT_NEAR(v.normalized().norm(), 1.0f, kEps);
  // Zero vector normalizes to zero, not NaN.
  EXPECT_EQ((Vec3f{0, 0, 0}).normalized(), (Vec3f{0, 0, 0}));
}

TEST(Vec3, ComponentAccessors) {
  Vec3f v{7.0f, 8.0f, 9.0f};
  EXPECT_FLOAT_EQ(v[0], 7.0f);
  EXPECT_FLOAT_EQ(v[1], 8.0f);
  EXPECT_FLOAT_EQ(v[2], 9.0f);
  v[1] = -1.0f;
  EXPECT_FLOAT_EQ(v.y, -1.0f);
  EXPECT_FLOAT_EQ(v.max_component(), 9.0f);
  EXPECT_FLOAT_EQ(v.min_component(), -1.0f);
}

TEST(Vec3i, ManhattanDistance) {
  EXPECT_EQ((Vec3i{0, 0, 0}).manhattan({1, 1, 1}), 3);
  EXPECT_EQ((Vec3i{5, -2, 3}).manhattan({5, -2, 3}), 0);
  EXPECT_EQ((Vec3i{0, 0, 0}).manhattan({-2, 0, 0}), 2);
}

TEST(Clamp, Bounds) {
  EXPECT_FLOAT_EQ(clampf(5.0f, 0.0f, 1.0f), 1.0f);
  EXPECT_FLOAT_EQ(clampf(-5.0f, 0.0f, 1.0f), 0.0f);
  EXPECT_FLOAT_EQ(clampf(0.25f, 0.0f, 1.0f), 0.25f);
}

// --------------------------------------------------------------- matrices --

TEST(Mat3, IdentityIsNeutral) {
  const Mat3f i = Mat3f::identity();
  const Vec3f v{1.0f, 2.0f, 3.0f};
  EXPECT_EQ(i * v, v);
  const Mat3f a = Mat3f::from_rows({1, 2, 3}, {4, 5, 6}, {7, 8, 10});
  EXPECT_EQ(i * a, a);
  EXPECT_EQ(a * i, a);
}

TEST(Mat3, InverseRoundTrip) {
  const Mat3f a = Mat3f::from_rows({2, 1, 0}, {1, 3, 1}, {0, 1, 4});
  const Mat3f prod = a * a.inverse();
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(prod(r, c), r == c ? 1.0f : 0.0f, 1e-4f);
    }
  }
}

TEST(Mat3, DetOfSingularIsZero) {
  const Mat3f a = Mat3f::from_rows({1, 2, 3}, {2, 4, 6}, {0, 1, 1});
  EXPECT_NEAR(a.det(), 0.0f, 1e-4f);
}

TEST(Mat3, TransposeInvolution) {
  const Mat3f a = Mat3f::from_rows({1, 2, 3}, {4, 5, 6}, {7, 8, 9});
  EXPECT_EQ(a.transposed().transposed(), a);
}

TEST(Sym2, EigenvaluesOfDiagonal) {
  const Sym2f s{4.0f, 0.0f, 9.0f};
  const auto e = s.eigenvalues();
  EXPECT_FLOAT_EQ(e.lambda_max, 9.0f);
  EXPECT_FLOAT_EQ(e.lambda_min, 4.0f);
}

TEST(Sym2, InverseQuadraticConsistency) {
  const Sym2f s{3.0f, 1.0f, 2.0f};
  const Sym2f inv = s.inverse();
  // M * M^-1 == I expressed through the packed form.
  EXPECT_NEAR(s.a * inv.a + s.b * inv.b, 1.0f, kEps);
  EXPECT_NEAR(s.a * inv.b + s.b * inv.c, 0.0f, kEps);
  EXPECT_NEAR(s.b * inv.b + s.c * inv.c, 1.0f, kEps);
}

TEST(Sym2, EigenvalueBoundsTraceDet) {
  const Sym2f s{5.0f, 2.0f, 3.0f};
  const auto e = s.eigenvalues();
  EXPECT_NEAR(e.lambda_max + e.lambda_min, s.trace(), 1e-4f);
  EXPECT_NEAR(e.lambda_max * e.lambda_min, s.det(), 1e-3f);
}

// ------------------------------------------------------------- quaternions --

TEST(Quat, IdentityRotation) {
  const Quatf q;
  const Vec3f v{1.0f, 2.0f, 3.0f};
  const Vec3f r = q.rotate(v);
  EXPECT_NEAR(r.x, v.x, kEps);
  EXPECT_NEAR(r.y, v.y, kEps);
  EXPECT_NEAR(r.z, v.z, kEps);
}

TEST(Quat, AxisAngle90AboutZ) {
  const Quatf q = Quatf::from_axis_angle({0, 0, 1}, 1.57079632679f);
  const Vec3f r = q.rotate({1, 0, 0});
  EXPECT_NEAR(r.x, 0.0f, 1e-4f);
  EXPECT_NEAR(r.y, 1.0f, 1e-4f);
  EXPECT_NEAR(r.z, 0.0f, 1e-4f);
}

TEST(Quat, RotationMatrixIsOrthonormal) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const Quatf q = Quatf::from_axis_angle(rng.unit_sphere(),
                                           rng.uniform(0.0f, 6.28f));
    const Mat3f r = q.to_rotation_matrix();
    const Mat3f rrt = r * r.transposed();
    for (int a = 0; a < 3; ++a)
      for (int b = 0; b < 3; ++b)
        EXPECT_NEAR(rrt(a, b), a == b ? 1.0f : 0.0f, 1e-4f);
    EXPECT_NEAR(r.det(), 1.0f, 1e-4f);
  }
}

TEST(Quat, UnnormalizedQuatStillRotates) {
  // The squared-norm division must make scaling a no-op.
  const Quatf q = Quatf::from_axis_angle({0, 1, 0}, 0.7f);
  const Quatf q2{q.w * 3.0f, q.x * 3.0f, q.y * 3.0f, q.z * 3.0f};
  const Vec3f v{0.3f, -1.0f, 2.0f};
  const Vec3f a = q.rotate(v);
  const Vec3f b = q2.rotate(v);
  EXPECT_NEAR(a.x, b.x, 1e-4f);
  EXPECT_NEAR(a.y, b.y, 1e-4f);
  EXPECT_NEAR(a.z, b.z, 1e-4f);
}

TEST(Quat, CompositionMatchesMatrixProduct) {
  const Quatf qa = Quatf::from_axis_angle({1, 0, 0}, 0.4f);
  const Quatf qb = Quatf::from_axis_angle({0, 1, 0}, -0.9f);
  const Mat3f m1 = (qa * qb).to_rotation_matrix();
  const Mat3f m2 = qa.to_rotation_matrix() * qb.to_rotation_matrix();
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) EXPECT_NEAR(m1(a, b), m2(a, b), 1e-4f);
}

// -------------------------------------------------------------------- RNG --

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(21);
  double sum = 0.0, sum2 = 0.0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, UnitSphereOnSurface) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(rng.unit_sphere().norm(), 1.0f, 1e-4f);
  }
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

// ------------------------------------------------------------------ image --

TEST(Image, ConstructionAndAccess) {
  Image img(4, 3, {0.5f, 0.25f, 0.125f});
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_EQ(img.at(2, 1), (Vec3f{0.5f, 0.25f, 0.125f}));
  img.at(0, 0) = {1, 0, 0};
  EXPECT_EQ(img.at(0, 0), (Vec3f{1, 0, 0}));
  EXPECT_EQ(img.rgb8_bytes(), 36u);
}

TEST(Ppm, RoundTripNoGamma) {
  Image img(8, 5);
  Rng rng(17);
  for (int y = 0; y < 5; ++y)
    for (int x = 0; x < 8; ++x)
      img.at(x, y) = {rng.uniform(), rng.uniform(), rng.uniform()};

  const std::string path =
      (std::filesystem::temp_directory_path() / "sgs_test_rt.ppm").string();
  ASSERT_TRUE(write_ppm(path, img, /*apply_gamma=*/false));
  const Image back = read_ppm(path, /*apply_gamma=*/false);
  ASSERT_EQ(back.width(), 8);
  ASSERT_EQ(back.height(), 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 8; ++x) {
      // 8-bit quantization error bound.
      EXPECT_NEAR(back.at(x, y).x, img.at(x, y).x, 1.0f / 255.0f);
      EXPECT_NEAR(back.at(x, y).y, img.at(x, y).y, 1.0f / 255.0f);
      EXPECT_NEAR(back.at(x, y).z, img.at(x, y).z, 1.0f / 255.0f);
    }
  }
  std::remove(path.c_str());
}

TEST(Ppm, ReadMissingFileReturnsEmpty) {
  EXPECT_TRUE(read_ppm("/nonexistent/definitely_missing.ppm").empty());
}

// --------------------------------------------------------------- parallel --

TEST(Parallel, CoversAllIndicesExactlyOnce) {
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, SingleThreadFallback) {
  const int saved = parallelism();
  set_parallelism(1);
  std::vector<int> order;
  parallel_for(0, 10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  set_parallelism(saved);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Parallel, PoolCoversAllIndicesAcrossResizes) {
  // Exercise the persistent pool through several reconfigurations: every
  // job must cover its range exactly once regardless of worker count.
  // Repeated rebuilds also regression-test the helper birth-epoch: a fresh
  // helper must not drain a job published before it existed.
  const int saved = parallelism();
  for (int rep = 0; rep < 5; ++rep) {
    for (const int workers : {4, 2, 4, 1, 3}) {
      set_parallelism(workers);
      constexpr std::size_t n = 5000;
      std::vector<std::atomic<int>> hits(n);
      parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
    }
  }
  set_parallelism(saved);
}

TEST(Parallel, WorkerIndexedVariantStaysInRange) {
  const int saved = parallelism();
  set_parallelism(4);
  constexpr std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  std::atomic<bool> in_range{true};
  parallel_for_workers(0, n, [&](int worker, std::size_t i) {
    if (worker < 0 || worker >= 4) in_range = false;
    hits[i].fetch_add(1);
  });
  set_parallelism(saved);
  EXPECT_TRUE(in_range.load());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, WorkerIndexIsExclusivePerArena) {
  // The contract FrameScheduler relies on: one worker index is never used
  // by two threads at once, so per-worker arenas need no locks. Detect
  // overlap with per-worker entry counters.
  const int saved = parallelism();
  set_parallelism(4);
  std::array<std::atomic<int>, 4> depth{};
  std::atomic<bool> overlapped{false};
  parallel_for_workers(0, 2000, [&](int worker, std::size_t) {
    if (depth[static_cast<std::size_t>(worker)].fetch_add(1) != 0) {
      overlapped = true;
    }
    depth[static_cast<std::size_t>(worker)].fetch_sub(1);
  });
  set_parallelism(saved);
  EXPECT_FALSE(overlapped.load());
}

TEST(Parallel, NestedParallelForRunsSeriallyWithoutDeadlock) {
  const int saved = parallelism();
  set_parallelism(4);
  std::atomic<int> count{0};
  parallel_for(0, 8, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);

  // The serial paths must also tolerate nesting: a single-iteration outer
  // loop (width 1 even with a wide pool) and a parallelism-1 pool both run
  // inline while holding the submit lock — the nested call must not retake
  // it.
  count = 0;
  parallel_for(0, 1, [&](std::size_t) {
    parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 8);

  set_parallelism(1);
  count = 0;
  parallel_for(0, 4, [&](std::size_t) {
    parallel_for(0, 4, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 16);
  set_parallelism(saved);
}

// -------------------------------------------------------------------- CLI --

TEST(Cli, ParsesSpaceAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=4.5", "--flag",
                        "--name", "lego"};
  CliArgs args(7, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0.0), 4.5);
  EXPECT_TRUE(args.get_bool("flag", false));
  EXPECT_EQ(args.get("name", ""), "lego");
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--used", "1", "--unused", "2"};
  CliArgs args(5, argv);
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "unused");
}

TEST(Cli, Positional) {
  const char* argv[] = {"prog", "file1", "--k", "v", "file2"};
  CliArgs args(5, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.positional()[1], "file2");
}

// ------------------------------------------------------------------ units --

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(3.5 * 1024 * 1024), "3.50 MiB");
}

TEST(Units, FormatRatio) {
  EXPECT_EQ(format_ratio(45.67), "45.7x");
  EXPECT_EQ(format_ratio(2.0, 2), "2.00x");
}

}  // namespace
}  // namespace sgs
