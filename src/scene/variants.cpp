#include "scene/variants.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace sgs::scene {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::k3dgs: return "3DGS";
    case Algorithm::kMiniSplatting: return "Mini-Splatting";
    case Algorithm::kLightGaussian: return "LightGaussian";
  }
  return "?";
}

float significance(const gs::Gaussian& g) {
  const float s = g.max_scale();
  return g.opacity * s * s;
}

gs::GaussianModel mini_splatting_variant(const gs::GaussianModel& model,
                                         std::uint64_t seed,
                                         float keep_fraction) {
  gs::GaussianModel out;
  const std::size_t target = static_cast<std::size_t>(
      std::max(1.0, std::floor(static_cast<double>(model.size()) * keep_fraction)));
  if (model.empty()) return out;

  // Systematic (low-variance) weighted resampling without replacement:
  // walk the significance CDF with a jittered comb of `target` teeth and
  // keep each Gaussian at most once.
  std::vector<double> cdf(model.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < model.size(); ++i) {
    acc += static_cast<double>(significance(model.gaussians[i])) + 1e-12;
    cdf[i] = acc;
  }
  Rng rng(seed);
  const double step = acc / static_cast<double>(target);
  double pointer = rng.uniform() * step;
  out.gaussians.reserve(target);
  std::size_t idx = 0;
  for (std::size_t t = 0; t < target; ++t) {
    while (idx < cdf.size() && cdf[idx] < pointer) ++idx;
    if (idx >= cdf.size()) break;
    gs::Gaussian g = model.gaussians[idx];
    // Compensate lost coverage: survivors get denser alpha and slightly
    // larger support, as in budget-constrained reconstructions.
    g.opacity = std::min(0.99f, g.opacity * 1.25f);
    g.scale *= 1.15f;
    out.gaussians.push_back(g);
    pointer += step;
  }
  return out;
}

gs::GaussianModel light_gaussian_variant(const gs::GaussianModel& model,
                                         float prune_fraction, int sh_degree) {
  gs::GaussianModel out;
  if (model.empty()) return out;

  std::vector<std::size_t> order(model.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return significance(model.gaussians[a]) > significance(model.gaussians[b]);
  });

  const std::size_t keep = static_cast<std::size_t>(std::max(
      1.0, std::ceil(static_cast<double>(model.size()) * (1.0 - prune_fraction))));
  const int keep_coeffs = sh_degree >= 3 ? 16 : (sh_degree == 2 ? 9 : (sh_degree == 1 ? 4 : 1));

  out.gaussians.reserve(keep);
  for (std::size_t i = 0; i < keep && i < order.size(); ++i) {
    gs::Gaussian g = model.gaussians[order[i]];
    for (int k = keep_coeffs; k < gs::kShCoeffCount; ++k) {
      g.sh[static_cast<std::size_t>(k)] = Vec3f{0.0f, 0.0f, 0.0f};
    }
    out.gaussians.push_back(g);
  }
  return out;
}

gs::GaussianModel apply_algorithm(const gs::GaussianModel& model, Algorithm a,
                                  std::uint64_t seed) {
  switch (a) {
    case Algorithm::k3dgs: return model;
    case Algorithm::kMiniSplatting: return mini_splatting_variant(model, seed);
    case Algorithm::kLightGaussian: return light_gaussian_variant(model);
  }
  return model;
}

}  // namespace sgs::scene
