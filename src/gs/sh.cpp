#include "gs/sh.hpp"

#include <algorithm>
#include <cmath>

namespace sgs::gs {

namespace {
// Normalization constants of the real SH basis (same literals as the
// reference CUDA rasterizer).
constexpr float kC0 = 0.28209479177387814f;
constexpr float kC1 = 0.4886025119029199f;
constexpr float kC2[5] = {1.0925484305920792f, -1.0925484305920792f,
                          0.31539156525252005f, -1.0925484305920792f,
                          0.5462742152960396f};
constexpr float kC3[7] = {-0.5900435899266435f, 2.890611442640554f,
                          -0.4570457994644658f, 0.3731763325901154f,
                          -0.4570457994644658f, 1.445305721320277f,
                          -0.5900435899266435f};
}  // namespace

std::array<float, 16> sh_basis(Vec3f dir) {
  const Vec3f d = dir.normalized();
  const float x = d.x, y = d.y, z = d.z;
  const float xx = x * x, yy = y * y, zz = z * z;
  const float xy = x * y, yz = y * z, xz = x * z;
  std::array<float, 16> b{};
  b[0] = kC0;
  b[1] = -kC1 * y;
  b[2] = kC1 * z;
  b[3] = -kC1 * x;
  b[4] = kC2[0] * xy;
  b[5] = kC2[1] * yz;
  b[6] = kC2[2] * (2.0f * zz - xx - yy);
  b[7] = kC2[3] * xz;
  b[8] = kC2[4] * (xx - yy);
  b[9] = kC3[0] * y * (3.0f * xx - yy);
  b[10] = kC3[1] * xy * z;
  b[11] = kC3[2] * y * (4.0f * zz - xx - yy);
  b[12] = kC3[3] * z * (2.0f * zz - 3.0f * xx - 3.0f * yy);
  b[13] = kC3[4] * x * (4.0f * zz - xx - yy);
  b[14] = kC3[5] * z * (xx - yy);
  b[15] = kC3[6] * x * (xx - 3.0f * yy);
  return b;
}

Vec3f eval_sh(std::span<const Vec3f> coeffs, Vec3f dir, int degree) {
  const int n = degree >= 3 ? 16 : (degree == 2 ? 9 : (degree == 1 ? 4 : 1));
  const auto basis = sh_basis(dir);
  Vec3f c{0, 0, 0};
  const int count = std::min<int>(n, static_cast<int>(coeffs.size()));
  for (int i = 0; i < count; ++i) c += coeffs[static_cast<std::size_t>(i)] * basis[static_cast<std::size_t>(i)];
  c += Vec3f::splat(0.5f);
  return {std::max(0.0f, c.x), std::max(0.0f, c.y), std::max(0.0f, c.z)};
}

Vec3f color_to_dc(Vec3f rgb) { return (rgb - Vec3f::splat(0.5f)) / kC0; }

Vec3f dc_to_color(Vec3f dc) {
  const Vec3f c = dc * kC0 + Vec3f::splat(0.5f);
  return {std::max(0.0f, c.x), std::max(0.0f, c.y), std::max(0.0f, c.z)};
}

}  // namespace sgs::gs
