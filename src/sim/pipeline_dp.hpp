// Stage-granular pipeline makespan.
//
// Items (voxel visits, tiles) flow through S stages in order; each stage is
// a single resource processing items FIFO. With double buffering between
// stages, completion follows the classic permutation-flow-shop recurrence
//   C[i][s] = max(C[i-1][s], C[i][s-1]) + t[i][s],
// which captures exactly the overlap the paper's double-buffered design
// achieves (stage s of item i runs while stage s-1 processes item i+1).
#pragma once

#include <cstddef>
#include <vector>

namespace sgs::sim {

class PipelineDp {
 public:
  explicit PipelineDp(std::size_t stage_count)
      : completion_(stage_count, 0.0), busy_(stage_count, 0.0) {}

  std::size_t stage_count() const { return completion_.size(); }

  // Feeds one item through all stages; `times[s]` is the item's service
  // time on stage s (0 = passes through instantly).
  void push(const std::vector<double>& times);

  // Same, from a raw pointer (hot path, avoids allocation).
  void push(const double* times);

  // Makespan so far: completion time of the last pushed item's last stage.
  double makespan() const { return completion_.empty() ? 0.0 : completion_.back(); }

  // Total busy time of a stage (its utilization = busy / makespan).
  double stage_busy(std::size_t s) const { return busy_[s]; }

 private:
  std::vector<double> completion_;  // completion time per stage, last item
  std::vector<double> busy_;
};

}  // namespace sgs::sim
