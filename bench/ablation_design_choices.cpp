// Ablation bench for the design choices DESIGN.md calls out beyond the
// paper's own figures:
//   * pixel-group size (the unit of voxel streaming vs. re-read overhead,
//     bounded above by the 89 KB accumulator scratch);
//   * VSU ray-sampling stride (ordering-edge density vs. VSU work);
//   * per-voxel sort granularity: the simplified bitonic unit's width.
//
//   ./ablation_design_choices [--scene train] [--model_scale 0.06]
//                             [--res_scale 0.4]
#include "bench_common.hpp"
#include "common/bitonic.hpp"
#include "common/units.hpp"
#include "common/cli.hpp"
#include "metrics/psnr.hpp"
#include "sim/experiment.hpp"
#include "sim/vsu_model.hpp"

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  const auto preset = scene::preset_from_name(args.get("scene", "train"));
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.06));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.4));

  const auto& info = scene::preset_info(preset);
  const auto model = scene::make_preset_scene(preset, model_scale);
  int w = 0, h = 0;
  scene::scaled_resolution(preset, res_scale, w, h);
  const auto cam = scene::make_preset_camera(preset, w, h);
  const auto reference = render::render_tile_centric(model, cam);

  bench::print_header("Ablation - pixel-group size", "");
  {
    bench::Table table({"group", "accum SRAM", "fits 89KB", "streamed",
                        "DRAM", "accel time", "PSNR"});
    for (const int g : {16, 32, 64, 128}) {
      core::StreamingConfig scfg;
      scfg.voxel_size = info.default_voxel_size;
      scfg.use_vq = false;  // isolate the streaming structure
      scfg.group_size = g;
      const auto scene_p = core::StreamingScene::prepare(model, scfg);
      const auto r = core::render_streaming(scene_p, cam);
      const auto sim = sim::simulate_streaminggs(r.trace);
      const double accum_kb = static_cast<double>(g) * g * 20.0 / 1024.0;
      table.row({std::to_string(g) + "x" + std::to_string(g),
                 bench::fmt(accum_kb, 1) + " KiB",
                 accum_kb <= 89.0 ? "yes" : "NO",
                 std::to_string(r.stats.gaussians_streamed),
                 format_bytes(static_cast<double>(r.stats.total_dram_bytes())),
                 bench::fmt(sim.seconds * 1e3, 3) + " ms",
                 bench::fmt(metrics::psnr_capped(r.image, reference.image), 2)});
    }
    table.print();
    std::printf(
        "  Larger groups amortize voxel re-streaming; 64x64 is the largest\n"
        "  whose accumulators fit the paper's 89 KB scratch buffer.\n");
  }

  bench::print_header("Ablation - VSU ray-sampling stride", "");
  {
    bench::Table table({"stride", "rays/group", "VSU cycles/frame",
                        "topo edges", "error Gaussians", "PSNR"});
    for (const int s : {1, 2, 4, 8, 16}) {
      core::StreamingConfig scfg;
      scfg.voxel_size = info.default_voxel_size;
      scfg.use_vq = false;
      scfg.ray_stride = s;
      const auto scene_p = core::StreamingScene::prepare(model, scfg);
      const auto r = core::render_streaming(scene_p, cam);
      const auto vsu = sim::simulate_vsu_frame(r.trace);
      const int per_axis = (scfg.group_size + s - 1) / s + 1;
      table.row({std::to_string(s),
                 std::to_string(per_axis * per_axis),
                 bench::fmt(vsu.total_cycles / 1000.0, 0) + "k",
                 std::to_string(r.stats.topo_edges),
                 bench::fmt(100.0 * r.stats.violation_ratio(), 2) + "%",
                 bench::fmt(metrics::psnr_capped(r.image, reference.image), 2)});
    }
    table.print();
    std::printf(
        "  Discovery is stride-independent (the voxel table guarantees\n"
        "  coverage); sparse rays only thin the ordering DAG, trading a few\n"
        "  misordered Gaussians for an order of magnitude less VSU work.\n");
  }

  bench::print_header("Ablation - bitonic sorter width", "");
  {
    bench::Table table({"width (cmp/cycle)", "sort cycles @256", "accel time"});
    core::StreamingConfig sort_cfg;
    sort_cfg.voxel_size = info.default_voxel_size;
    sort_cfg.use_vq = false;
    const auto scene_p = core::StreamingScene::prepare(model, sort_cfg);
    const auto r = core::render_streaming(scene_p, cam);
    for (const double width : {2.0, 8.0, 32.0}) {
      sim::StreamingGsSimOptions opt;
      opt.hw.sort_elems_per_cycle_per_unit = width;
      const auto sim_r = simulate_streaminggs(r.trace, opt);
      table.row({bench::fmt(width, 0),
                 bench::fmt(bitonic_sort_cycles(
                                256, static_cast<std::uint32_t>(
                                         width * opt.hw.sort_unit_count)),
                            0),
                 bench::fmt(sim_r.seconds * 1e3, 3) + " ms"});
    }
    table.print();
    std::printf(
        "  Per-voxel survivor lists are short, so the simplified sorting\n"
        "  unit is never the bottleneck (the paper's rationale for adopting\n"
        "  GSCore's unit unchanged).\n");
  }
  return 0;
}
