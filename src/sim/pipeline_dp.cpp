#include "sim/pipeline_dp.hpp"

#include <algorithm>
#include <cassert>

namespace sgs::sim {

void PipelineDp::push(const std::vector<double>& times) {
  assert(times.size() == completion_.size());
  push(times.data());
}

void PipelineDp::push(const double* times) {
  double prev_stage_done = 0.0;  // C[i][s-1]
  for (std::size_t s = 0; s < completion_.size(); ++s) {
    const double start = std::max(completion_[s], prev_stage_done);
    completion_[s] = start + times[s];
    busy_[s] += times[s];
    prev_stage_done = completion_[s];
  }
}

}  // namespace sgs::sim
