// Tests for the out-of-core streaming subsystem (src/stream/): the .sgsc
// asset store round-trip, residency-cache LRU/pinning/determinism, the
// prefetching loader, the async pool lane, and — the acceptance bar — a
// golden proof that cache-backed rendering is bit-identical to fully
// resident rendering while actually exercising misses and evictions.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/parallel.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "scene/generator.hpp"
#include "stream/asset_store.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace sgs::stream {
namespace {

gs::GaussianModel test_model(std::uint64_t seed, std::size_t count) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = count;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.seed = seed;
  return scene::generate_scene(cfg);
}

core::StreamingScene test_scene(std::uint64_t seed, std::size_t count,
                                bool vq) {
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = vq;
  if (vq) {
    // Small books keep training fast; the format does not care.
    cfg.vq.scale_entries = 64;
    cfg.vq.rotation_entries = 64;
    cfg.vq.dc_entries = 64;
    cfg.vq.sh_entries = 32;
    cfg.vq.kmeans_iters = 4;
    cfg.vq.refine_iters = 1;
  }
  return core::StreamingScene::prepare(test_model(seed, count), cfg);
}

gs::Camera test_camera(int size = 128) {
  return gs::Camera::look_at({0, 0, -6}, {0, 0, 0}, {0, 1, 0}, 0.9f, size,
                             size);
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& p) : path(p) {}
  ~TempFile() { std::remove(path.c_str()); }
};

bool gaussians_equal(const gs::Gaussian& a, const gs::Gaussian& b) {
  return a.position == b.position && a.scale == b.scale &&
         a.rotation == b.rotation && a.opacity == b.opacity && a.sh == b.sh;
}

// ------------------------------------------------------------- AssetStore --

void expect_store_matches_scene(const AssetStore& store,
                                const core::StreamingScene& scene) {
  const voxel::VoxelGrid& g0 = scene.grid();
  const voxel::VoxelGrid& g1 = store.grid();
  ASSERT_EQ(g1.voxel_count(), g0.voxel_count());
  ASSERT_EQ(g1.gaussian_count(), g0.gaussian_count());
  EXPECT_EQ(g1.config().origin, g0.config().origin);
  EXPECT_EQ(g1.config().dims, g0.config().dims);
  EXPECT_EQ(g1.config().voxel_size, g0.config().voxel_size);

  for (voxel::DenseVoxelId v = 0; v < g0.voxel_count(); ++v) {
    // Spatial index round-trips exactly.
    ASSERT_EQ(g1.raw_of_dense(v), g0.raw_of_dense(v));
    const auto r0 = g0.gaussians_in(v);
    const auto r1 = g1.gaussians_in(v);
    ASSERT_EQ(r1.size(), r0.size());
    for (std::size_t k = 0; k < r0.size(); ++k) EXPECT_EQ(r1[k], r0[k]);

    // Decoded payloads reproduce the render model bit-for-bit.
    const DecodedGroup group = store.read_group(v);
    ASSERT_EQ(group.gaussians.size(), r0.size());
    for (std::size_t k = 0; k < r0.size(); ++k) {
      EXPECT_EQ(group.model_indices[k], r0[k]);
      const gs::Gaussian& expect = scene.render_model().gaussians[r0[k]];
      EXPECT_TRUE(gaussians_equal(group.gaussians[k], expect));
      EXPECT_EQ(group.coarse_max_scale[k], scene.coarse_max_scale(r0[k]));
    }
  }
}

TEST(AssetStore, RawRoundTripIsBitExact) {
  const auto scene = test_scene(7, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_raw.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));

  AssetStore store(file.path);
  EXPECT_FALSE(store.vector_quantized());
  EXPECT_EQ(store.payload_bytes_total(),
            scene.grid().gaussian_count() * 236u);
  expect_store_matches_scene(store, scene);

  const auto scene_ooc = store.make_scene();
  EXPECT_FALSE(scene_ooc.params_resident());
  EXPECT_EQ(scene_ooc.config().group_size, scene.config().group_size);
  EXPECT_EQ(scene_ooc.layout().total_bytes(), scene.layout().total_bytes());
}

TEST(AssetStore, VqRoundTripIsBitExact) {
  const auto scene = test_scene(8, 2000, /*vq=*/true);
  TempFile file("/tmp/sgs_test_vq.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));

  AssetStore store(file.path);
  EXPECT_TRUE(store.vector_quantized());
  EXPECT_EQ(store.payload_bytes_total(), scene.grid().gaussian_count() * 24u);
  expect_store_matches_scene(store, scene);
}

TEST(AssetStore, RejectsGarbageAndTruncation) {
  TempFile file("/tmp/sgs_test_bad.sgsc");
  {
    std::ofstream out(file.path, std::ios::binary);
    out.write("not a store at all", 18);
  }
  EXPECT_THROW(AssetStore store(file.path), std::runtime_error);

  const auto scene = test_scene(9, 500, /*vq=*/false);
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  std::ifstream in(file.path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Cut the file mid-payload: the metadata still parses, but the directory
  // now references payloads beyond EOF — open fails fast instead of letting
  // a later read_group decode garbage.
  {
    std::ofstream out(file.path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(AssetStore store(file.path), std::runtime_error);

  // Cut inside the metadata: open fails while parsing the header.
  {
    std::ofstream out(file.path, std::ios::binary);
    out.write(bytes.data(), 40);
  }
  EXPECT_THROW(AssetStore store(file.path), std::runtime_error);
}

TEST(AssetStore, WriteRequiresResidentParams) {
  const auto scene = test_scene(10, 400, /*vq=*/false);
  TempFile file("/tmp/sgs_test_parts.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  // A scene assembled from store metadata has no parameters to serialize.
  EXPECT_FALSE(AssetStore::write("/tmp/sgs_test_parts2.sgsc",
                                 store.make_scene()));
}

// --------------------------------------------------------- ResidencyCache --

// One Gaussian per voxel in a row of voxels: every group decodes to the
// same resident size, so eviction arithmetic is exact.
core::StreamingScene uniform_groups_scene(int n_groups) {
  gs::GaussianModel m;
  for (int i = 0; i < n_groups; ++i) {
    gs::Gaussian g;
    g.position = {static_cast<float>(i) + 0.5f, 0.5f, 0.5f};
    m.gaussians.push_back(g);
  }
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  return core::StreamingScene::prepare(m, cfg);
}

TEST(ResidencyCache, HitsMissesAndLruEviction) {
  const auto scene = uniform_groups_scene(8);
  TempFile file("/tmp/sgs_test_cache.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ASSERT_EQ(store.group_count(), 8);

  // Budget: exactly two decoded groups (all groups are the same size).
  const std::uint64_t unit = store.read_group(0).resident_bytes();
  ResidencyCacheConfig cfg;
  cfg.budget_bytes = 2 * unit;
  ResidencyCache cache(store, cfg);

  auto touch = [&cache](voxel::DenseVoxelId v) {
    cache.acquire(v);
    cache.release(v);
  };

  touch(0);  // miss
  touch(0);  // hit
  touch(1);  // miss
  touch(2);  // miss; evicts 0 (the least recently used)
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(cache.resident_bytes(), cfg.budget_bytes);
  EXPECT_FALSE(cache.resident(0));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_TRUE(cache.resident(2));

  // LRU order respects touches: re-warming 1 makes 2 the next victim.
  touch(1);  // hit: still resident
  touch(3);  // miss; evicts 2
  EXPECT_TRUE(cache.resident(1));
  EXPECT_FALSE(cache.resident(2));
  EXPECT_TRUE(cache.resident(3));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().bytes_fetched, 4 * store.entry(0).bytes);
}

TEST(ResidencyCache, DeterministicUnderFixedRequestTrace) {
  const auto scene = test_scene(12, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_det.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  const int n = store.group_count();
  ASSERT_GE(n, 3);

  // A fixed pseudo-random request trace, replayed on two fresh caches with
  // the same budget: every counter and the final resident set must agree.
  std::vector<voxel::DenseVoxelId> trace;
  std::uint64_t x = 12345;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    trace.push_back(static_cast<voxel::DenseVoxelId>((x >> 33) % n));
  }

  ResidencyCacheConfig cfg;
  cfg.budget_bytes = store.payload_bytes_total() / 3;
  auto run = [&](ResidencyCache& cache) {
    for (const voxel::DenseVoxelId v : trace) {
      cache.acquire(v);
      cache.release(v);
    }
    return cache.stats();
  };

  ResidencyCache a(store, cfg), b(store, cfg);
  const auto sa = run(a);
  const auto sb = run(b);
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sa.bytes_fetched, sb.bytes_fetched);
  EXPECT_EQ(sa.hits + sa.misses, trace.size());
  EXPECT_GT(sa.evictions, 0u);
  for (voxel::DenseVoxelId v = 0; v < n; ++v) {
    EXPECT_EQ(a.resident(v), b.resident(v));
  }
}

TEST(ResidencyCache, PlanPinsBlockEvictionUntilEndFrame) {
  const auto scene = test_scene(13, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_pin.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ASSERT_GE(store.group_count(), 3);

  ResidencyCacheConfig cfg;
  cfg.budget_bytes = 1;  // nothing fits: everything unpinned is evicted
  ResidencyCache cache(store, cfg);

  const std::vector<voxel::DenseVoxelId> pinned = {0, 1};
  cache.begin_frame(FrameIntent{}, pinned);
  cache.acquire(0);
  cache.release(0);
  cache.acquire(1);
  cache.release(1);
  // Both released and far over budget, yet plan-pinned: still resident.
  EXPECT_TRUE(cache.resident(0));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.end_frame();  // pins drop; the overshoot drains
  EXPECT_FALSE(cache.resident(0));
  EXPECT_FALSE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ResidencyCache, PrefetchCountsSeparatelyFromMisses) {
  const auto scene = test_scene(14, 1500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_pf.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});

  EXPECT_TRUE(cache.prefetch(0));
  EXPECT_FALSE(cache.prefetch(0));  // already resident
  cache.acquire(0);
  cache.release(0);
  const auto s = cache.stats();
  EXPECT_EQ(s.prefetches, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.bytes_fetched, store.entry(0).bytes);
}

// -------------------------------------------------------- StreamingLoader --

TEST(StreamingLoader, RanksVisibleGroupsNearToFarUnderCaps) {
  const auto scene = test_scene(15, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_rank.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});

  PrefetchConfig pcfg;
  pcfg.max_groups_per_frame = 8;
  StreamingLoader loader(cache, pcfg);

  const gs::Camera cam = test_camera();
  FrameIntent intent;
  intent.camera = &cam;
  const auto batch = loader.rank_prefetch(intent);
  ASSERT_FALSE(batch.empty());
  EXPECT_LE(batch.size(), pcfg.max_groups_per_frame);

  // Near-to-far ordering.
  float prev = -1.0f;
  for (const voxel::DenseVoxelId v : batch) {
    const auto& e = store.entry(v);
    const Vec3f center = (e.aabb_min + e.aabb_max) * 0.5f;
    const float d = (center - cam.position()).norm();
    EXPECT_GE(d, prev);
    prev = d;
  }

  // Resident groups drop out of the ranking.
  for (const voxel::DenseVoxelId v : batch) cache.prefetch(v);
  const auto batch2 = loader.rank_prefetch(intent);
  for (const voxel::DenseVoxelId v : batch2) {
    EXPECT_FALSE(cache.resident(v));
  }
}

TEST(StreamingLoader, AsyncBeginFrameWarmsTheCache) {
  const auto scene = test_scene(16, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_warm.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});
  StreamingLoader loader(cache);

  const gs::Camera cam = test_camera();
  FrameIntent intent;
  intent.camera = &cam;
  loader.begin_frame(intent, {});
  loader.wait_idle();
  loader.end_frame();
  const auto s = loader.stats();
  EXPECT_GT(s.prefetches, 0u);
  EXPECT_GT(s.bytes_fetched, 0u);
  EXPECT_EQ(s.misses, 0u);
}

// -------------------------------------------------------------- async lane --

TEST(AsyncLane, RunsTasksFifoAndWaitsIdle) {
  std::vector<int> order;
  std::atomic<int> sum{0};
  for (int i = 0; i < 16; ++i) {
    async_submit([i, &order, &sum] {
      order.push_back(i);  // single lane worker: no race on the vector
      sum += i;
    });
  }
  async_wait_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(sum.load(), 120);
}

// ------------------------------------------------- golden: OOC == resident --

std::vector<gs::Camera> orbit_trajectory(int frames, int size) {
  std::vector<gs::Camera> cams;
  for (int f = 0; f < frames; ++f) {
    const float t =
        0.6f * static_cast<float>(f) / static_cast<float>(frames);
    const float a = 6.2831853f * t;
    cams.push_back(gs::Camera::look_at(
        {6.0f * std::sin(a), 1.0f, -6.0f * std::cos(a)}, {0, 0, 0}, {0, 1, 0},
        0.9f, size, size));
  }
  return cams;
}

void golden_out_of_core(bool vq) {
  const auto scene = test_scene(vq ? 18 : 17, 2500, vq);
  TempFile file(vq ? "/tmp/sgs_test_golden_vq.sgsc"
                   : "/tmp/sgs_test_golden_raw.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);

  // Budget well below the scene so the walkthrough must evict and refetch.
  ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  ResidencyCache cache(store, ccfg);
  PrefetchConfig pcfg;
  pcfg.synchronous = true;  // deterministic stats for the assertions below
  StreamingLoader loader(cache, pcfg);
  const auto scene_ooc = store.make_scene();

  const auto cameras = orbit_trajectory(vq ? 3 : 6, 128);
  core::SequenceOptions seq;
  const auto resident = core::render_sequence(scene, cameras, seq);
  const auto ooc = core::render_sequence(scene_ooc, cameras, seq, &loader);

  ASSERT_EQ(ooc.frames.size(), resident.frames.size());
  core::StreamCacheStats total;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    const auto& a = resident.frames[f];
    const auto& b = ooc.frames[f];
    // The acceptance bar: bit-identical image bytes...
    EXPECT_EQ(a.image.pixels(), b.image.pixels()) << "frame " << f;
    // ...and identical streaming stats (same voxels, same survivors).
    EXPECT_EQ(a.stats.gaussians_streamed, b.stats.gaussians_streamed);
    EXPECT_EQ(a.stats.coarse_pass, b.stats.coarse_pass);
    EXPECT_EQ(a.stats.fine_pass, b.stats.fine_pass);
    EXPECT_EQ(a.stats.blend_ops, b.stats.blend_ops);
    EXPECT_EQ(a.stats.total_dram_bytes(), b.stats.total_dram_bytes());
    // Resident frames report no cache activity; OOC frames do.
    EXPECT_EQ(a.trace.cache.accesses(), 0u);
    EXPECT_GT(b.trace.cache.accesses(), 0u);
    total.accumulate(b.trace.cache);
  }
  // The walkthrough really was out of core: hits, misses, evictions, and
  // fetch traffic all non-zero under the 35% budget.
  EXPECT_GT(total.hit_rate(), 0.0);
  EXPECT_GT(total.hits, 0u);
  EXPECT_GT(total.misses + total.prefetches, 0u);
  EXPECT_GT(total.evictions, 0u);
  EXPECT_GT(total.bytes_fetched, 0u);
}

TEST(OutOfCoreGolden, RawWalkthroughBitIdenticalWithEvictions) {
  golden_out_of_core(/*vq=*/false);
}

TEST(OutOfCoreGolden, VqWalkthroughBitIdenticalWithEvictions) {
  golden_out_of_core(/*vq=*/true);
}

// Out-of-core through the bare cache (no loader): every first touch is a
// demand miss, and the result is still bit-identical.
TEST(OutOfCoreGolden, ModelFreeSceneWithoutSourceIsRejected) {
  const auto scene = test_scene(20, 400, /*vq=*/false);
  TempFile file("/tmp/sgs_test_nosource.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  const auto scene_ooc = store.make_scene();
  // Rendering store metadata without a cache-backed source must fail loudly
  // (there are no resident parameters to read), on both entry points.
  EXPECT_THROW(core::render_streaming(scene_ooc, test_camera()),
               std::invalid_argument);
  core::SequenceRenderer seq(scene_ooc, {});
  EXPECT_THROW(seq.render(test_camera()), std::invalid_argument);
}

TEST(OutOfCoreGolden, BareCacheWithoutLoaderAlsoMatches) {
  const auto scene = test_scene(19, 1500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_bare.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});
  const auto scene_ooc = store.make_scene();

  const gs::Camera cam = test_camera();
  core::SequenceOptions seq;
  core::SequenceRenderer res_renderer(scene, seq);
  core::SequenceRenderer ooc_renderer(scene_ooc, seq, &cache);
  const auto a = res_renderer.render(cam);
  const auto b = ooc_renderer.render(cam);
  EXPECT_EQ(a.image.pixels(), b.image.pixels());
  EXPECT_GT(b.trace.cache.misses, 0u);
  EXPECT_EQ(b.trace.cache.prefetches, 0u);
}

}  // namespace
}  // namespace sgs::stream
