// Front-to-back alpha compositing, the "Rendering" stage of both pipelines.
//
// The streaming pipeline relies on the fact that compositing state is just
// (accumulated color, remaining transmittance): partial per-voxel results
// accumulate into the same two values, so a tile's pixel state never leaves
// the on-chip buffer between voxels (paper Fig. 1b, "partial pixel values").
#pragma once

#include "common/vec.hpp"
#include "gs/projection.hpp"

namespace sgs::gs {

// Alpha ceiling used by the reference rasterizer to keep 1-alpha bounded
// away from zero.
inline constexpr float kAlphaClamp = 0.99f;
// Contributions below this alpha are skipped entirely.
inline constexpr float kMinBlendAlpha = 1.0f / 255.0f;
// Once remaining transmittance falls below this, a pixel is saturated and
// later Gaussians are ignored (early termination).
inline constexpr float kTransmittanceCutoff = 1e-4f;

struct PixelAccumulator {
  Vec3f color{0.0f, 0.0f, 0.0f};
  float transmittance = 1.0f;

  bool saturated() const { return transmittance < kTransmittanceCutoff; }
};

// Evaluates the Gaussian falloff at `pixel` and returns the blend alpha, or
// 0 if the contribution is negligible / the exponent is out of range.
float gaussian_alpha(const ProjectedGaussian& g, Vec2f pixel);

// Composites one contribution front-to-back: C += T * alpha * c; T *= 1-a.
inline void blend(PixelAccumulator& acc, Vec3f color, float alpha) {
  acc.color += acc.transmittance * alpha * color;
  acc.transmittance *= (1.0f - alpha);
}

// Final pixel color against a background (3DGS composites onto a solid
// background with the leftover transmittance).
inline Vec3f resolve(const PixelAccumulator& acc, Vec3f background) {
  return acc.color + acc.transmittance * background;
}

// Pixel rectangle [x0, x1) x [y0, y1) a splat can touch: the 3-sigma disc's
// bounding box clipped to the given region. Both renderers blend only these
// pixels (the hardware render queue dispatches only covered sub-tiles), so
// the two pipelines evaluate identical pixel sets per Gaussian.
struct PixelSpan {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  bool empty() const { return x0 >= x1 || y0 >= y1; }
};

inline PixelSpan splat_pixel_span(Vec2f mean, float radius, int rx0, int ry0,
                                  int rx1, int ry1) {
  PixelSpan s;
  s.x0 = rx0 > static_cast<int>(mean.x - radius) ? rx0
                                                 : static_cast<int>(mean.x - radius);
  s.y0 = ry0 > static_cast<int>(mean.y - radius) ? ry0
                                                 : static_cast<int>(mean.y - radius);
  const int hx = static_cast<int>(mean.x + radius) + 1;
  const int hy = static_cast<int>(mean.y + radius) + 1;
  s.x1 = rx1 < hx ? rx1 : hx;
  s.y1 = ry1 < hy ? ry1 : hy;
  if (s.x0 < rx0) s.x0 = rx0;
  if (s.y0 < ry0) s.y0 = ry0;
  return s;
}

}  // namespace sgs::gs
