// StreamingLoader: prefetch-driven GroupSource for out-of-core rendering —
// plus the shared, session-aware fetch queue a multi-viewer server uses.
//
// StreamingLoader decorates a ResidencyCache: acquire/release/pinning pass
// straight through, and begin_frame() additionally ranks the store's
// non-resident voxel groups by predicted visibility for the frame's camera
// — inflated by the caller's motion envelope, so groups about to enter the
// frustum are fetched *before* the frame that needs them — and fetches the
// best-ranked ones on the pool's async lane while the frame renders on the
// main workers. A demand miss still stalls the render worker that hits it;
// the loader's job is making those stalls rare.
//
// Ranking (rank_prefetch_groups): a group is a candidate when its directory
// AABB, padded by the envelope's worst-case projection drift, touches the
// image rect; candidates are ordered near-to-far (near groups are streamed
// by more pixel groups and occlude far ones). Per frame, fetches are capped
// by a group-count and a byte budget — the fetch-bandwidth knob.
//
// SharedPrefetchQueue is the N-session variant: every session enqueues its
// own ranking into ONE fetch queue over ONE shared cache. Requests for a
// group already queued by any other session are merged (fetched once,
// counted in merged_requests()), and batches drain in enqueue order on the
// async FIFO lane — first-come, first-served across sessions.
//
// Thread-safety: StreamingLoader assumes one driving session (its frame
// bracket is the single-session GroupSource contract), but its fetches run
// concurrently with render workers. SharedPrefetchQueue::enqueue is safe
// from any number of session threads concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "stream/residency_cache.hpp"

namespace sgs::stream {

struct PrefetchConfig {
  // Per-frame fetch-ahead caps (bandwidth budget per frame).
  std::size_t max_groups_per_frame = 64;
  std::uint64_t max_bytes_per_frame = 16ull << 20;
  // The motion envelope is assumed to persist for this many frames: the
  // visibility pad grows with it, so the prefetcher looks further ahead
  // along the camera's drift than a single frame's reuse bound.
  float lookahead_frames = 4.0f;
  // Fetch inline inside begin_frame/enqueue instead of on the async lane.
  // Slower (the fetch no longer overlaps rendering) but fully deterministic
  // — what the golden tests and reproducible benchmarks use.
  bool synchronous = false;
};

// Non-resident groups worth fetching for `intent` against `cache`'s store,
// best first (near-to-far), capped by the config's group/byte budgets. The
// shared ranking core of StreamingLoader and SharedPrefetchQueue.
std::vector<voxel::DenseVoxelId> rank_prefetch_groups(
    const ResidencyCache& cache, const FrameIntent& intent,
    const PrefetchConfig& config);

// Thread-safe per-session cache-counter sink. A session's own front-end
// (serve::SessionSource) and the shared fetch queue both credit it: render
// workers record hits/misses concurrently while the async lane records the
// prefetches this session's intents initiated.
class SessionCacheStats {
 public:
  void record_acquire(const AcquireOutcome& outcome) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (outcome.missed) {
      ++stats_.misses;
      stats_.bytes_fetched += outcome.bytes_fetched;
    } else {
      ++stats_.hits;
    }
  }
  void record_prefetch(std::uint64_t bytes) {
    std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.prefetches;
    stats_.bytes_fetched += bytes;
  }
  core::StreamCacheStats snapshot() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return stats_;
  }

 private:
  mutable std::mutex mutex_;
  core::StreamCacheStats stats_;  // evictions stay 0: they are a property
                                  // of the shared cache, not of a session
};

class StreamingLoader final : public GroupSource {
 public:
  explicit StreamingLoader(ResidencyCache& cache, PrefetchConfig config = {});
  // Drains in-flight async fetches (they capture `this`).
  ~StreamingLoader() override;

  void begin_frame(const FrameIntent& intent,
                   std::span<const voxel::DenseVoxelId> plan_voxels) override;
  void end_frame() override;
  GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId v) override;
  core::StreamCacheStats stats() const override;

  // Ranking for this loader's cache and config. Exposed for tests.
  std::vector<voxel::DenseVoxelId> rank_prefetch(
      const FrameIntent& intent) const;

  // Blocks until all submitted prefetch batches have landed.
  void wait_idle() const;

  ResidencyCache& cache() { return *cache_; }
  const PrefetchConfig& config() const { return config_; }

 private:
  ResidencyCache* cache_;
  PrefetchConfig config_;
};

// One fetch queue shared by N viewer sessions over one ResidencyCache.
//
// Each session calls enqueue() at the top of its frame with its own camera
// intent (and optionally its SessionCacheStats sink for attribution). The
// queue ranks the session's candidates, drops every group that is already
// queued by *any* session (the cross-session merge — the request is served
// by the fetch already on its way), and submits the remainder as one batch
// on the async FIFO lane. Batches drain strictly in enqueue order, so no
// session's fetches can starve another's: service is first-come,
// first-served at batch granularity.
class SharedPrefetchQueue {
 public:
  explicit SharedPrefetchQueue(ResidencyCache& cache,
                               PrefetchConfig config = {});
  // Drains in-flight batches (their tasks capture `this`).
  ~SharedPrefetchQueue();

  // Ranks + enqueues one session's prefetch work. Returns the number of
  // groups newly queued (after merging with other sessions' pending
  // requests). `sink`, when non-null, is credited for every group this
  // call's batch actually fetches — including fetches that land after the
  // session's frame ended (the counters are cumulative and monotone).
  std::size_t enqueue(const FrameIntent& intent,
                      SessionCacheStats* sink = nullptr);

  // Blocks until every batch enqueued before this call has landed.
  void wait_idle() const;

  // Requests dropped because the same group was already queued by some
  // session: the fetch-traffic the merge saved, in group requests.
  std::uint64_t merged_requests() const;

  ResidencyCache& cache() { return *cache_; }
  const PrefetchConfig& config() const { return config_; }

 private:
  ResidencyCache* cache_;
  PrefetchConfig config_;
  mutable std::mutex mutex_;
  std::unordered_set<voxel::DenseVoxelId> queued_;  // pending across sessions
  std::uint64_t merged_ = 0;
};

}  // namespace sgs::stream
