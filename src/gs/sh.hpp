// Real spherical harmonics up to degree 3, matching the basis and constants
// of the reference 3DGS implementation (INRIA). View-dependent color is
// decoded as  max(0, 0.5 + sum_i sh[i] * B_i(dir)).
#pragma once

#include <array>
#include <span>

#include "common/vec.hpp"

namespace sgs::gs {

inline constexpr int kShDegree = 3;

// Evaluates the 16 degree-<=3 basis functions for a unit direction.
std::array<float, 16> sh_basis(Vec3f dir);

// Decodes RGB from SH coefficients for a view direction (need not be unit;
// it is normalized internally). `degree` truncates evaluation (0..3); the
// LightGaussian-style variant uses truncated degrees.
Vec3f eval_sh(std::span<const Vec3f> coeffs, Vec3f dir, int degree = kShDegree);

// Inverse of the DC decode: the coefficient a constant color corresponds to.
Vec3f color_to_dc(Vec3f rgb);
// DC-only decode (what the fine filter computes before view-dependence).
Vec3f dc_to_color(Vec3f dc);

}  // namespace sgs::gs
