// SceneServer: one scene, one shared residency cache, N concurrent viewer
// sessions.
//
// The paper's streaming design assumes a single viewer; a server room does
// not. A SceneServer owns one AssetStore-backed scene and one shared,
// thread-safe ResidencyCache, and hosts any number of sessions — each a
// SequenceRenderer driving its own camera path through its own
// SessionSource front-end. Sessions share the decoded voxel groups: a
// group fetched for one viewer serves every viewer, eviction respects the
// union of all in-flight working sets (refcounted plan pins), and all
// sessions' prefetch rankings merge into one deduplicated fetch queue.
//
// The load-bearing invariant: a session's rendered frames are bit-identical
// to rendering the same camera path alone *under the same LodPolicy, with
// adaptive tiers requested deterministically* (tier selection is a pure
// function of the session's camera and policy — never of shared cache
// state). Sharing the cache changes who pays which fetch and when — never
// a pixel — on single-tier stores or with lod.force_tier0; with adaptive
// tiers on a multi-tier store, a frame may be served a better-than-
// requested tier that happens to be resident, so the guarantee relaxes to
// the PSNR bound of the store's tiers (tests/test_serve.cpp pins the
// bit-exact cases down for raw and VQ stores).
//
// Threading model:
//   - run() drives one std::thread per session; frames from different
//     sessions interleave on the persistent pool, which serves render jobs
//     FIFO-fairly across sessions (common/parallel.hpp).
//   - render_frame() is safe to call concurrently for *distinct* sessions.
//     One session is sequential: its frames form one camera path.
//   - open_session() must not race render_frame()/run() (add sessions
//     between runs, not during).
//   - Per-session cache counters (SessionReport::cache) attribute every
//     hit, demand miss, and prefetched byte to the session that caused it;
//     the shared cache's global counters (ServerReport::shared_cache) are
//     their sum plus evictions, which are a property of the shared budget.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "obs/metrics.hpp"
#include "stream/asset_store.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace sgs::serve {

// Per-session front-end over the server's shared cache and fetch queue:
// the GroupSource a session's SequenceRenderer renders through.
//
// Frame bracket contract: begin_frame() selects this session's payload
// tiers for the plan under its own LodPolicy (each session carries its own
// quality knob over the one shared cache), pins the session's plan working
// set (refcounted in the shared cache — other sessions' pins on the same
// groups are independent), and enqueues the session's prefetch ranking
// into the shared queue; end_frame() drops exactly the pins this session
// took. acquire()/release() pass through to the shared cache with
// per-session attribution, requesting the frame's selected tier per group.
// acquire() may be called concurrently from any pool worker; stats()
// returns this session's counters only (thread-safe).
class SessionSource final : public stream::GroupSource {
 public:
  SessionSource(stream::ResidencyCache& cache,
                stream::SharedPrefetchQueue& queue,
                stream::LodPolicy lod = {});

  void begin_frame(const stream::FrameIntent& intent,
                   std::span<const voxel::DenseVoxelId> plan_voxels) override;
  void end_frame() override;
  stream::GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId v) override;
  core::StreamCacheStats stats() const override;

  // Deadline support (zero-stall serving): begin_frame resolves the
  // intent's (or the queue config's) relative fetch budget to an absolute
  // stage-clock deadline; an acquire that would still be fetching past it
  // is served from the shared cache's coarse floor instead of blocking.
  // The first floor-serve of each (frame, group) increments this session's
  // AND the shared cache's coarse_fallbacks — so per-session counters sum
  // exactly to the global one — and re-queues the wanted tier at
  // kUrgentPriority on the shared queue.
  //
  // Frames whose tier selection was demoted below the footprint-ideal tier
  // by the policy's byte budget — the "quality gave way to bandwidth"
  // signal a server operator watches.
  std::size_t degraded_frames() const { return degraded_frames_; }
  // Plan-group tier requests accumulated over all frames.
  const std::array<std::uint64_t, core::kLodTierCount>& tier_requests() const {
    return tier_requests_;
  }
  const stream::LodPolicy& lod() const { return lod_; }
  // This session's measured link estimate (EWMA over the transfers its
  // demand misses and credited prefetches completed). When the session's
  // policy enables the ABR term, begin_frame folds this into tier
  // selection and the shared queue's prefetch byte cap — each session
  // adapts to the link IT measured, over the one shared cache.
  double estimated_bandwidth_bps() const {
    return session_stats_.estimated_bandwidth_bps();
  }

 private:
  stream::ResidencyCache* cache_;
  stream::SharedPrefetchQueue* queue_;
  stream::LodPolicy lod_;
  stream::TierSelection selection_;  // current frame's tier per group
  stream::SessionCacheStats session_stats_;
  std::vector<voxel::DenseVoxelId> pinned_;  // this session's frame pins
  std::array<std::uint64_t, core::kLodTierCount> tier_requests_{};
  std::size_t degraded_frames_ = 0;
  // This frame's absolute demand-fetch deadline (kNoFetchDeadline = block).
  std::uint64_t frame_deadline_ns_ = stream::kNoFetchDeadline;
  // Groups already served from the coarse floor this frame: acquire() runs
  // concurrently on pool workers, but the fallback count and urgent
  // re-queue must fire once per (frame, group).
  std::mutex fallback_mutex_;
  std::unordered_set<voxel::DenseVoxelId> fallback_seen_;
};

struct SceneServerConfig {
  // Shared cache budget — one budget for the union of all sessions'
  // working sets, the whole point of sharing.
  stream::ResidencyCacheConfig cache;
  // Per-frame prefetch caps applied to each session's enqueue.
  stream::PrefetchConfig prefetch;
  // Sequence options every session renders with (plan reuse envelope,
  // binning margin, render options).
  core::SequenceOptions sequence;
  // Quality policy sessions open with unless open_session() is given their
  // own — each session streams the shared scene at its own fidelity. On a
  // single-tier (v1) store every policy degenerates to L0.
  stream::LodPolicy lod;
};

// Aggregated per-session outcome (latency in wall-clock milliseconds).
// Percentiles come from a fixed-bucket log-scale obs::LogHistogram over
// frame nanoseconds — O(1) memory per session regardless of frame count,
// each quantile overstating its sample by at most 12.5% (never under).
struct SessionReport {
  std::size_t frames = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  obs::LogHistogram latency;  // frame wall time in ns, all frames
  core::StreamCacheStats cache;  // session-attributed; evictions always 0.
                                 // Failure attribution rides here too:
                                 // cache.fetch_errors / degraded_groups /
                                 // failed_groups (distinct bad groups this
                                 // session touched) — a poisoned group
                                 // shows up ONLY in the sessions that
                                 // actually streamed it.
  std::size_t stall_frames = 0;  // frames with >= 1 demand miss
  // Frames with >= 1 group served from the shared cache's coarse floor
  // because its fetch missed the frame deadline. With a deadline and a
  // floor in force, stall_frames stays 0 and these frames carry the cost
  // as bounded quality loss instead of latency.
  std::size_t fallback_frames = 0;
  std::size_t plans_built = 0;
  std::size_t plans_reused = 0;
  // LOD: plan-group tier requests over all frames, and frames whose
  // selection was demoted below the footprint tier by the byte budget.
  std::array<std::uint64_t, core::kLodTierCount> tier_requests{};
  std::size_t degraded_frames = 0;
  // Frames that saw at least one fetch error or degraded (error-state)
  // serve. The session still completed every one of them — fault isolation
  // means a bad group costs pixels of one group, never the session.
  std::size_t error_frames = 0;
  // The session's link estimate at report time (0 = no transfer with a
  // non-zero duration completed yet — e.g. local disk, everything already
  // resident, or a perfect simulated link). ABR demotions it caused are in
  // cache.abr_demotions.
  double estimated_bandwidth_bps = 0.0;
};

struct ServerReport {
  std::vector<SessionReport> sessions;
  // The shared cache's global counters (includes evictions and every
  // session's traffic).
  core::StreamCacheStats shared_cache;
  double global_hit_rate = 0.0;
  // Prefetch requests served by another session's in-flight fetch — the
  // cross-session merge win of the shared queue.
  std::uint64_t merged_prefetch_requests = 0;
  // Latency across all sessions' frames (merge of the per-session
  // histograms; bucket-wise addition, so merged percentiles are computed
  // over the exact union of samples).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  obs::LogHistogram latency;
  std::size_t stall_frames = 0;
  // Sum of the sessions' fallback_frames (coarse-floor deadline serves).
  std::size_t fallback_frames = 0;
  // Exceptions the async prefetch lane captured instead of terminating on
  // since this server was constructed (the lane's counter is process-wide;
  // the report scopes it to this server's lifetime — see
  // common/parallel.hpp). Non-zero means a background task itself threw —
  // distinct from fetch errors, which the cache absorbs before they ever
  // reach the lane.
  std::uint64_t async_lane_errors = 0;
};

struct ServerRunResult {
  // result.sessions[s][f] is session s's frame f — bit-identical to the
  // same path rendered alone.
  std::vector<std::vector<core::StreamingRenderResult>> sessions;
  ServerReport report;
};

class SceneServer {
 public:
  // The store must outlive the server. The server's scene is the store's
  // model-free metadata scene; all parameters stream through the shared
  // cache under config.cache.budget_bytes.
  explicit SceneServer(const stream::AssetStore& store,
                       SceneServerConfig config = {});
  ~SceneServer();

  // Opens a new viewer session and returns its id (dense, starting at 0).
  // Not thread-safe against concurrent render_frame()/run(). The default
  // overload uses config().lod; the other gives the session its own
  // quality policy over the same shared cache.
  int open_session();
  int open_session(const stream::LodPolicy& lod);
  std::size_t session_count() const { return sessions_.size(); }

  // Renders the next frame of `session`'s camera path. Thread-safe across
  // distinct sessions; calls for one session must be sequential.
  core::StreamingRenderResult render_frame(int session,
                                           const gs::Camera& camera);

  // Drives one thread per camera path (opening sessions as needed so that
  // path i maps to session i) until every path is rendered, then drains
  // the fetch queue and returns all frames plus the report.
  ServerRunResult run(const std::vector<std::vector<gs::Camera>>& paths);

  // Snapshot of per-session and global counters so far. Call only while no
  // frame is in flight (between frames or after run()).
  ServerReport report() const;

  // Blocks until all queued prefetch batches have landed.
  void wait_idle() const;

  // Requests still pending in the shared priority queue — 0 after a
  // wait_idle with no frames in flight (no session's work starves).
  std::size_t pending_prefetch_requests() const {
    return queue_.pending_requests();
  }

  stream::ResidencyCache& cache() { return cache_; }
  const core::StreamingScene& scene() const { return scene_; }
  const SceneServerConfig& config() const { return config_; }

 private:
  struct Session;

  // Registered once: render_frame() observes per-frame latency into the
  // global metrics registry without a name lookup on the frame path.
  obs::MetricId frame_ns_metric_;
  SceneServerConfig config_;
  core::StreamingScene scene_;
  stream::ResidencyCache cache_;
  // Declared before queue_ so the queue (whose async batches credit
  // session sinks) drains before any session is destroyed.
  std::vector<std::unique_ptr<Session>> sessions_;
  stream::SharedPrefetchQueue queue_;
  // Lane-error baseline at construction: report() attributes only errors
  // captured during this server's lifetime, not earlier async work's.
  std::uint64_t async_errors_at_open_ = 0;
};

}  // namespace sgs::serve
