// Cross-cutting property tests: determinism across thread counts, traffic
// conservation between renderer and simulator, order-completeness of the
// streaming pipeline, model monotonicity, and reversibility properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/streaming_renderer.hpp"
#include "core/voxel_order.hpp"
#include "metrics/psnr.hpp"
#include "render/tile_renderer.hpp"
#include "scene/generator.hpp"
#include "scene/presets.hpp"
#include "scene/variants.hpp"
#include "sim/gpu_model.hpp"
#include "sim/gscore_sim.hpp"
#include "sim/streaminggs_sim.hpp"
#include "sim/vsu_model.hpp"
#include "voxel/dda.hpp"

namespace sgs {
namespace {

gs::Camera prop_camera(int w = 160, int h = 160) {
  return gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, w, h);
}

gs::GaussianModel prop_model(std::uint64_t seed, std::size_t n = 6000) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = n;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.seed = seed;
  return scene::generate_scene(cfg);
}

// ------------------------------------------------------------- determinism --

TEST(Determinism, TileRendererThreadCountInvariant) {
  const auto model = prop_model(41);
  const auto cam = prop_camera();
  const int saved = parallelism();
  set_parallelism(1);
  const auto serial = render::render_tile_centric(model, cam);
  set_parallelism(8);
  const auto parallel = render::render_tile_centric(model, cam);
  set_parallelism(saved);
  EXPECT_EQ(serial.image.pixels(), parallel.image.pixels());
  EXPECT_EQ(serial.trace.blend_ops, parallel.trace.blend_ops);
  EXPECT_EQ(serial.trace.pair_count, parallel.trace.pair_count);
}

TEST(Determinism, StreamingRendererThreadCountInvariant) {
  const auto model = prop_model(42);
  const auto cam = prop_camera();
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const int saved = parallelism();
  set_parallelism(1);
  const auto serial = core::render_streaming(scene, cam);
  set_parallelism(8);
  const auto parallel = core::render_streaming(scene, cam);
  set_parallelism(saved);
  EXPECT_EQ(serial.image.pixels(), parallel.image.pixels());
  EXPECT_EQ(serial.stats.gaussians_streamed, parallel.stats.gaussians_streamed);
  EXPECT_EQ(serial.stats.fine_pass, parallel.stats.fine_pass);
  EXPECT_EQ(serial.stats.depth_order_violations,
            parallel.stats.depth_order_violations);
}

TEST(Determinism, SimulatorIsPure) {
  const auto model = prop_model(43, 3000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene, prop_camera());
  const auto a = sim::simulate_streaminggs(r.trace);
  const auto b = sim::simulate_streaminggs(r.trace);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.energy.total_pj(), b.energy.total_pj());
}

// ------------------------------------------------- traffic conservation ----

class TrafficConservation : public ::testing::TestWithParam<bool> {};

TEST_P(TrafficConservation, SimChargesExactlyTraceBytes) {
  const bool use_vq = GetParam();
  const auto model = prop_model(44, 4000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.2f;
  cfg.use_vq = use_vq;
  cfg.vq.scale_entries = 64;
  cfg.vq.rotation_entries = 64;
  cfg.vq.dc_entries = 64;
  cfg.vq.sh_entries = 32;
  cfg.vq.kmeans_iters = 2;
  cfg.vq.max_train_samples = 1024;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene, prop_camera());
  const auto sim_r = sim::simulate_streaminggs(r.trace);
  // Invariant 5 (DESIGN.md): the simulator's DRAM bytes equal the
  // renderer's counted traffic exactly — no hidden traffic either way.
  EXPECT_EQ(sim_r.dram_bytes, r.stats.total_dram_bytes());
  EXPECT_EQ(sim_r.dram_bytes, r.trace.total_dram_bytes());
}

INSTANTIATE_TEST_SUITE_P(VqOnOff, TrafficConservation, ::testing::Bool());

TEST(TrafficConservation, EnergyScalesWithDramBytes) {
  const auto model = prop_model(45, 4000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.2f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene, prop_camera());
  sim::StreamingGsSimOptions cheap, dear;
  dear.hw.dram.energy_pj_per_byte = cheap.hw.dram.energy_pj_per_byte * 2.0;
  const auto rc = sim::simulate_streaminggs(r.trace, cheap);
  const auto rd = sim::simulate_streaminggs(r.trace, dear);
  EXPECT_NEAR(rd.energy.dram_pj, 2.0 * rc.energy.dram_pj, 1e-6 * rd.energy.dram_pj);
}

// --------------------------------------------------- streaming completeness --

TEST(StreamingCompleteness, EveryRayDiscoveredVoxelIsRendered) {
  // Any voxel a full-resolution per-pixel DDA would find must appear in the
  // trace's voxel visits for that group (discovery is conservative).
  const auto model = prop_model(46, 4000);
  const auto cam = prop_camera(128, 128);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  cfg.group_size = 64;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene, cam);

  // Visited voxel count per group from the trace.
  ASSERT_EQ(r.trace.groups.size(), 4u);  // 128/64 squared
  for (int gy = 0; gy < 2; ++gy) {
    for (int gx = 0; gx < 2; ++gx) {
      const auto& work = r.trace.groups[static_cast<std::size_t>(gy) * 2 + gx];
      // Exact per-pixel discovery for this group.
      std::set<voxel::DenseVoxelId> exact;
      for (int py = gy * 64; py < gy * 64 + 64; py += 7) {
        for (int px = gx * 64; px < gx * 64 + 64; px += 7) {
          const auto ray = cam.pixel_ray(static_cast<float>(px) + 0.5f,
                                         static_cast<float>(py) + 0.5f);
          for (auto v : voxel::intersected_voxels(ray, scene.grid())) {
            exact.insert(v);
          }
        }
      }
      // The trace must stream at least as many voxels (it may stream more:
      // saturation can cut the tail, so compare against nodes, the DAG).
      EXPECT_GE(work.nodes, exact.size());
    }
  }
}

TEST(StreamingCompleteness, OrderContainsNoDuplicates) {
  const auto model = prop_model(47, 3000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 0.8f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene, prop_camera());
  // Per group, voxel work items are unique voxels: residents summed over a
  // group never exceed the model size times 1 (each voxel visited once).
  for (const auto& g : r.trace.groups) {
    std::uint64_t sum = 0;
    for (const auto& v : g.voxels) sum += v.residents;
    EXPECT_LE(sum, model.size());
  }
}

// ------------------------------------------------------- model monotonicity --

TEST(Monotonicity, GpuTimeGrowsWithModel) {
  const auto small = prop_model(48, 2000);
  const auto large = prop_model(48, 20000);
  const auto cam = prop_camera();
  const auto rs = render::render_tile_centric(small, cam);
  const auto rl = render::render_tile_centric(large, cam);
  EXPECT_GT(sim::simulate_gpu(rl.trace).report.seconds,
            sim::simulate_gpu(rs.trace).report.seconds);
  EXPECT_GT(sim::simulate_gscore(rl.trace).seconds,
            sim::simulate_gscore(rs.trace).seconds);
}

TEST(Monotonicity, FasterDramNeverSlower) {
  const auto model = prop_model(49, 4000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene, prop_camera());
  double prev = 1e300;
  for (double bpc : {12.8, 25.6, 51.2}) {
    sim::StreamingGsSimOptions opt;
    opt.hw.dram.peak_bytes_per_cycle = bpc;
    const auto s = sim::simulate_streaminggs(r.trace, opt);
    EXPECT_LE(s.cycles, prev + 1e-9);
    prev = s.cycles;
  }
}

TEST(Monotonicity, VariantTrafficOrdering) {
  // raw > vq fine records at equal filtering behavior.
  const auto model = prop_model(50, 4000);
  core::StreamingConfig raw_cfg;
  raw_cfg.voxel_size = 1.0f;
  raw_cfg.use_vq = false;
  core::StreamingConfig vq_cfg = raw_cfg;
  vq_cfg.use_vq = true;
  vq_cfg.vq.scale_entries = 64;
  vq_cfg.vq.rotation_entries = 64;
  vq_cfg.vq.dc_entries = 64;
  vq_cfg.vq.sh_entries = 32;
  vq_cfg.vq.kmeans_iters = 2;
  vq_cfg.vq.max_train_samples = 1024;
  const auto raw_scene = core::StreamingScene::prepare(model, raw_cfg);
  const auto vq_scene = core::StreamingScene::prepare(model, vq_cfg);
  const auto cam = prop_camera();
  const auto raw_r = core::render_streaming(raw_scene, cam);
  const auto vq_r = core::render_streaming(vq_scene, cam);
  EXPECT_GT(raw_r.stats.fine_read_bytes, vq_r.stats.fine_read_bytes);
  EXPECT_EQ(raw_r.stats.coarse_read_bytes / voxel::kCoarseRecordBytes,
            raw_r.stats.gaussians_streamed);
}

// ------------------------------------------------------------ DDA symmetry --

class DdaSymmetry : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdaSymmetry, ReversedRayVisitsReversedCells) {
  Rng rng(GetParam());
  voxel::VoxelGridConfig cfg;
  cfg.origin = {-4, -4, -4};
  cfg.voxel_size = 1.0f;
  cfg.dims = {8, 8, 8};
  for (int trial = 0; trial < 30; ++trial) {
    // Segment fully inside the grid, then traverse both directions.
    const Vec3f a = rng.uniform_vec3(-3.5f, 3.5f);
    const Vec3f b = rng.uniform_vec3(-3.5f, 3.5f);
    if ((b - a).norm() < 0.5f) continue;
    const float len = (b - a).norm();
    std::vector<Vec3i> fwd, bwd;
    voxel::traverse({a, (b - a).normalized()}, cfg, len, [&](Vec3i c, float) {
      fwd.push_back(c);
      return true;
    });
    voxel::traverse({b, (a - b).normalized()}, cfg, len, [&](Vec3i c, float) {
      bwd.push_back(c);
      return true;
    });
    std::reverse(bwd.begin(), bwd.end());
    // Boundary-grazing can add/drop one end cell; the interiors must match.
    ASSERT_GE(fwd.size(), 1u);
    ASSERT_GE(bwd.size(), 1u);
    std::set<std::tuple<int, int, int>> fs, bs;
    for (auto c : fwd) fs.insert({c.x, c.y, c.z});
    for (auto c : bwd) bs.insert({c.x, c.y, c.z});
    std::vector<std::tuple<int, int, int>> diff;
    std::set_symmetric_difference(fs.begin(), fs.end(), bs.begin(), bs.end(),
                                  std::back_inserter(diff));
    EXPECT_LE(diff.size(), 2u) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdaSymmetry, ::testing::Values(61, 62, 63));

// -------------------------------------------------------------- VSU frame ---

TEST(VsuFrame, MatchesTraceAggregates) {
  const auto model = prop_model(51, 3000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene, prop_camera());
  const auto fr = sim::simulate_vsu_frame(r.trace);
  std::uint64_t pops = 0;
  for (const auto& g : r.trace.groups) pops += g.nodes;
  EXPECT_EQ(fr.total_pops, pops);
  EXPECT_GT(fr.total_cycles, 0.0);
  EXPECT_LE(fr.max_group_cycles, fr.total_cycles);
}

// ----------------------------------------------------------- variant sweeps --

class AlgorithmSweep : public ::testing::TestWithParam<scene::Algorithm> {};

TEST_P(AlgorithmSweep, VariantsRenderAndFilterSanely) {
  const auto base = scene::make_preset_scene(scene::ScenePreset::kTrain, 0.01f);
  const auto model = scene::apply_algorithm(base, GetParam(), 5);
  ASSERT_FALSE(model.empty());
  const auto cam = prop_camera(128, 96);
  core::StreamingConfig cfg;
  cfg.voxel_size = 2.0f;
  cfg.use_vq = false;
  const auto scene_p = core::StreamingScene::prepare(model, cfg);
  const auto r = core::render_streaming(scene_p, cam);
  EXPECT_LE(r.stats.fine_pass, r.stats.coarse_pass);
  EXPECT_LE(r.stats.coarse_pass, r.stats.gaussians_streamed);
  // The streaming render approximates this model's reference render.
  const auto reference = render::render_tile_centric(model, cam);
  EXPECT_GT(metrics::psnr_capped(r.image, reference.image), 20.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, AlgorithmSweep,
    ::testing::ValuesIn(scene::kAllAlgorithms.begin(),
                        scene::kAllAlgorithms.end()),
    [](const ::testing::TestParamInfo<scene::Algorithm>& info) {
      std::string n = scene::algorithm_name(info.param);
      n.erase(std::remove(n.begin(), n.end(), '-'), n.end());
      return n;
    });

}  // namespace
}  // namespace sgs
