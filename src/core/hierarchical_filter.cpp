#include "core/hierarchical_filter.hpp"

namespace sgs::core {

bool coarse_filter(Vec3f position, float max_scale, const gs::Camera& cam,
                   const GroupRect& rect, gs::CoarseProjection* out) {
  const auto proj = gs::project_coarse(position, max_scale, cam);
  if (!proj) return false;  // near-plane cull; the fine phase culls this too
  if (!gs::disc_intersects_rect(proj->mean, proj->radius, rect.x0, rect.y0,
                                rect.x1, rect.y1)) {
    return false;
  }
  if (out) *out = *proj;
  return true;
}

std::optional<gs::ProjectedGaussian> fine_filter(const gs::Gaussian& g,
                                                 const gs::Camera& cam,
                                                 const GroupRect& rect) {
  auto proj = gs::project_gaussian(g, cam);
  if (!proj) return std::nullopt;
  if (!gs::disc_intersects_rect(proj->mean, proj->radius, rect.x0, rect.y0,
                                rect.x1, rect.y1)) {
    return std::nullopt;
  }
  return proj;
}

}  // namespace sgs::core
