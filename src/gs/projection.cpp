#include "gs/projection.hpp"

#include <cmath>
#include <limits>

#include "gs/sh.hpp"

namespace sgs::gs {

std::optional<ProjectedGaussian> project_gaussian(const Gaussian& g,
                                                  const Camera& cam) {
  const Vec3f p_cam = cam.world_to_camera(g.position);
  if (p_cam.z <= kNearClip) return std::nullopt;
  if (g.opacity < kMinOpacity) return std::nullopt;

  const Mat3f cov3d = build_covariance_3d(g.scale, g.rotation);
  const Sym2f cov2d =
      project_covariance(cov3d, cam.rotation(), p_cam, cam.fx(), cam.fy());
  if (cov2d.det() <= 0.0f) return std::nullopt;  // numerically degenerate

  ProjectedGaussian out;
  out.mean = cam.project_cam(p_cam);
  out.depth = p_cam.z;
  out.conic = cov2d.inverse();
  out.radius = splat_radius(cov2d);
  const Vec3f view_dir = g.position - cam.position();
  out.color = eval_sh(g.sh, view_dir);
  out.opacity = g.opacity;
  return out;
}

std::optional<CoarseProjection> project_coarse(Vec3f position, float max_scale,
                                               const Camera& cam) {
  const Vec3f p_cam = cam.world_to_camera(position);
  if (p_cam.z <= kNearClip) return std::nullopt;

  const float inv_z = 1.0f / p_cam.z;
  const float xz = p_cam.x * inv_z;
  const float yz = p_cam.y * inv_z;
  // Exact sigma_max(J)^2 from the 2x2 symmetric J J^T = [[a, b], [b, c]].
  const float fx = cam.fx() * inv_z;
  const float fy = cam.fy() * inv_z;
  const float a = fx * fx * (1.0f + xz * xz);
  const float c = fy * fy * (1.0f + yz * yz);
  const float b = fx * fy * xz * yz;
  const float mid = 0.5f * (a + c);
  const float disc = 0.5f * (a - c);
  const float jj = mid + std::sqrt(disc * disc + b * b);
  const float lambda_bound = max_scale * max_scale * jj + kScreenSpaceDilation;

  CoarseProjection out;
  out.mean = cam.project_cam(p_cam);
  out.depth = p_cam.z;
  out.radius = 3.0f * std::sqrt(lambda_bound);
  return out;
}

std::optional<CoarseProjection> project_sphere_extent(Vec3f center,
                                                      float world_radius,
                                                      const Camera& cam) {
  const Vec3f p_cam = cam.world_to_camera(center);
  if (p_cam.z <= kNearClip) return std::nullopt;

  // Mean-value bound: |uv(p) - uv(center)| <= sup_q ||J(q)||_2 * r over the
  // segment from center to p, which stays inside the ball. The supremum is
  // bounded by the trace of J J^T with worst-case components over the ball
  // (depth z - r, lateral offsets |x| + r, |y| + r). Spheres straddling the
  // near plane (z - r <= 0) have unbounded projections and return the
  // caller-handled sentinel radius.
  const float z_min = p_cam.z - world_radius;
  CoarseProjection out;
  out.mean = cam.project_cam(p_cam);
  out.depth = p_cam.z;
  if (z_min <= 1e-4f) {
    out.radius = std::numeric_limits<float>::infinity();
    return out;
  }
  const float inv_z = 1.0f / z_min;
  const float xz = (std::abs(p_cam.x) + world_radius) * inv_z;
  const float yz = (std::abs(p_cam.y) + world_radius) * inv_z;
  const float fx = cam.fx() * inv_z;
  const float fy = cam.fy() * inv_z;
  const float jj_trace = fx * fx * (1.0f + xz * xz) + fy * fy * (1.0f + yz * yz);
  out.radius = world_radius * std::sqrt(jj_trace) + 1.0f;
  return out;
}

bool disc_intersects_rect(Vec2f center, float radius, float x0, float y0,
                          float x1, float y1) {
  // Distance from the disc center to the rectangle, axis by axis.
  const float dx = center.x < x0 ? x0 - center.x : (center.x > x1 ? center.x - x1 : 0.0f);
  const float dy = center.y < y0 ? y0 - center.y : (center.y > y1 ? center.y - y1 : 0.0f);
  return dx * dx + dy * dy <= radius * radius;
}

}  // namespace sgs::gs
