// Deterministic parallel-for over index ranges on a persistent thread pool.
//
// Rendering parallelizes over pixel groups; each group writes a disjoint
// pixel region and accumulates its own statistics into a per-group slot, so
// any dynamic schedule is race-free and the merged result is reproducible
// regardless of thread count or timing.
//
// The pool is created lazily on first use and persists for the process
// lifetime: repeated frames (the streaming case) pay no thread spawn/join
// cost per call. Iterations are claimed in contiguous chunks from a shared
// atomic counter (dynamic scheduling), which load-balances the skewed
// per-group costs typical of splatting while keeping the per-iteration
// overhead to one amortized atomic fetch-add.
//
// One job runs at a time; concurrent submitters (e.g. the per-session
// threads of a serve::SceneServer) are serialized FIFO-fairly — jobs are
// granted the pool strictly in arrival order, so no session can starve the
// others by resubmitting quickly. See also the async FIFO lane below,
// which runs *beside* jobs rather than between them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sgs {

// Number of workers used by the parallel loops (defaults to hardware
// concurrency, at least 1). Override via set_parallelism, e.g. in tests.
// Setting it tears down and rebuilds the persistent pool, so it must NOT be
// called from inside a parallel_for body (it would self-deadlock waiting
// for the job it is part of) nor concurrently with a running loop on
// another thread: callers size per-worker state from parallelism() before
// submitting, and a concurrent resize would let worker indices outrun it.
// It is a configuration knob for startup and tests, not a runtime control.
int parallelism();
void set_parallelism(int n);

// Invokes fn(i) for i in [begin, end). Blocks until all iterations complete.
// fn must be safe to call concurrently for distinct i. With parallelism() == 1
// (or a nested call from inside a worker) iterations run serially in order on
// the calling thread.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

// Worker-indexed variant: fn(worker, i) with worker in [0, parallelism()).
// A given worker index is used by at most one thread at a time — including
// through nested calls, which run serially under the enclosing worker's
// index — so callers can keep one scratch arena per worker and reuse it
// across iterations without locking (the FrameScheduler's GroupContext
// pattern).
void parallel_for_workers(
    std::size_t begin, std::size_t end,
    const std::function<void(int worker, std::size_t i)>& fn);

// Task-granular fairness observability (both monotone since process
// start; nested loops count toward the enclosing job, not separately):
// jobs the pool has completed, and the total nanoseconds submitters spent
// queued behind other jobs for the pool's FIFO ticket before their own job
// started. With N sessions multiplexed over the pool, wait/jobs is the
// average cross-session scheduling cost per frame task — the number a
// serve operator watches to see the pool seam, published as
// pool.jobs_completed / pool.submit_wait_ns by obs::publish_parallel_stats.
std::uint64_t pool_jobs_completed();
std::uint64_t pool_submit_wait_ns();

// ---------------------------------------------------------------------------
// Async lane of the persistent pool: a dedicated background worker that
// drains a FIFO of fire-and-forget tasks without ever blocking (or being
// blocked by) parallel_for jobs. The streaming loader uses it to prefetch
// voxel groups while a frame renders on the main workers.
//
// Tasks run strictly in submission order on one thread, so a producer that
// submits dependent tasks needs no further synchronization between them.
// The lane is created lazily on first submit and joined at process exit.
//
// Failure domain: an exception escaping a task does NOT std::terminate the
// process (a background prefetch failure must never kill the render loop).
// The lane catches it, records the task as completed, and captures the
// message into a bounded error channel that callers drain explicitly —
// typically at the async_wait_idle() that brackets a frame or a run.

// Enqueues fn for execution on the async lane and returns immediately.
void async_submit(std::function<void()> fn);

// Blocks until every task submitted before this call has finished.
void async_wait_idle();

// Tasks executed by the async lane since process start (diagnostics/tests).
std::uint64_t async_tasks_completed();

// Tasks whose exception the lane captured since process start (monotone).
std::uint64_t async_task_errors();

// Drains the captured error messages (oldest first) and clears the channel.
// The channel keeps at most the first 64 messages between drains; the
// counter above stays exact regardless.
std::vector<std::string> async_take_errors();

}  // namespace sgs
