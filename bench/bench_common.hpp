// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace sgs::bench {

// Fixed-width ASCII table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto line = [&] {
      os << "  +";
      for (std::size_t w : width) os << std::string(w + 2, '-') << "+";
      os << "\n";
    };
    auto print_row = [&](const std::vector<std::string>& cells) {
      os << "  |";
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& v = c < cells.size() ? cells[c] : "";
        os << " " << std::setw(static_cast<int>(width[c])) << v << " |";
      }
      os << "\n";
    };
    line();
    print_row(headers_);
    line();
    for (const auto& r : rows_) print_row(r);
    line();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

inline std::string fmt_ratio(double v, int prec = 1) { return fmt(v, prec) + "x"; }

inline void print_header(const std::string& title, const std::string& paper_note) {
  std::cout << "\n==== " << title << " ====\n";
  if (!paper_note.empty()) std::cout << "  paper: " << paper_note << "\n";
}

}  // namespace sgs::bench
