#include "sim/vsu_model.hpp"

#include <algorithm>

namespace sgs::sim {

VsuGroupReport simulate_vsu_group(const core::GroupWork& group,
                                  const VsuConfig& config) {
  VsuGroupReport r;
  // 1+2. Ray sampling: every DDA step computes a raw VID and performs one
  // renaming-table lookup (empty voxels resolve to "invalid" and are
  // dropped, which is why dda_steps rather than the non-empty count drives
  // this stage).
  r.ray_steps = group.dda_steps;
  r.renaming_lookups = group.dda_steps;
  r.cycles += static_cast<double>(group.dda_steps) * config.cycles_per_ray_step;

  // 3. Adjacency table: one tagged insert/update per deduplicated edge plus
  // one miss-probe per node when the table entry is first allocated.
  r.adjacency_ops = group.edges + group.nodes;
  r.cycles +=
      static_cast<double>(r.adjacency_ops) * config.cycles_per_adjacency_op;
  r.adjacency_overflow = group.nodes > config.adjacency_entries;

  // 4. In-degree table: init one counter per node, then one pop per node
  // with a dependents walk amortized into the pop cost.
  r.indegree_ops = group.nodes;
  r.cycles +=
      static_cast<double>(group.nodes) * config.cycles_per_indegree_init;
  r.pops = group.nodes;
  r.cycles += static_cast<double>(group.nodes) * config.cycles_per_pop;
  r.indegree_overflow = group.nodes > config.indegree_entries;
  return r;
}

VsuFrameReport simulate_vsu_frame(const core::StreamingTrace& trace,
                                  const VsuConfig& config) {
  VsuFrameReport fr;
  for (const core::GroupWork& g : trace.groups) {
    const VsuGroupReport r = simulate_vsu_group(g, config);
    fr.total_cycles += r.cycles;
    fr.max_group_cycles = std::max(fr.max_group_cycles, r.cycles);
    fr.total_pops += r.pops;
    if (r.adjacency_overflow || r.indegree_overflow) ++fr.groups_with_overflow;
  }
  // The per-frame voxel-table build precedes group processing.
  fr.total_cycles +=
      static_cast<double>(trace.voxel_table_steps) * config.cycles_per_ray_step;
  return fr;
}

}  // namespace sgs::sim
