// StreamingLoader: prefetch-driven GroupSource for out-of-core rendering —
// plus the shared, session-aware fetch queue a multi-viewer server uses.
//
// StreamingLoader decorates a ResidencyCache: acquire/release/pinning pass
// straight through, and begin_frame() additionally (a) selects a payload
// tier per plan group through its LodPolicy — acquire() then requests that
// tier, so distant groups stream importance-pruned subsets — and (b) ranks
// the store's fetch-worthy voxel groups by predicted visibility for the
// frame's camera — inflated by the caller's motion envelope, so groups
// about to enter the frustum are fetched *before* the frame that needs
// them — and fetches the best-ranked ones on the pool's async lane while
// the frame renders on the main workers. A demand miss still stalls the
// render worker that hits it; the loader's job is making those stalls rare.
//
// Ranking (rank_prefetch_groups): a group is a candidate when its directory
// AABB, padded by the envelope's worst-case projection drift, touches the
// image rect and it is not already resident at (or better than) the tier
// the policy wants for it; candidates are ordered near-to-far (near groups
// are streamed by more pixel groups and occlude far ones). Per frame,
// fetches are capped by a group-count and a byte budget — the
// fetch-bandwidth knob — with each candidate charged at its tier's bytes.
//
// SharedPrefetchQueue is the N-session variant: every session enqueues its
// own ranking into ONE fetch queue over ONE shared cache. Requests for a
// group already queued by any other session at the same or a better tier
// are merged (fetched once, counted in merged_requests()), and batches
// drain in enqueue order on the async FIFO lane — first-come, first-served
// across sessions.
//
// Thread-safety: StreamingLoader assumes one driving session (its frame
// bracket is the single-session GroupSource contract), but its fetches run
// concurrently with render workers. SharedPrefetchQueue::enqueue is safe
// from any number of session threads concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stream/lod_policy.hpp"
#include "stream/residency_cache.hpp"

namespace sgs::stream {

struct PrefetchConfig {
  // Per-frame fetch-ahead caps (bandwidth budget per frame).
  std::size_t max_groups_per_frame = 64;
  std::uint64_t max_bytes_per_frame = 16ull << 20;
  // The motion envelope is assumed to persist for this many frames: the
  // visibility pad grows with it, so the prefetcher looks further ahead
  // along the camera's drift than a single frame's reuse bound.
  float lookahead_frames = 4.0f;
  // Fetch inline inside begin_frame/enqueue instead of on the async lane.
  // Slower (the fetch no longer overlaps rendering) but fully deterministic
  // — what the golden tests and reproducible benchmarks use.
  bool synchronous = false;
  // Tier selection for plan groups and prefetch candidates. The defaults
  // adapt on multi-tier stores and degenerate to L0 on v1 stores;
  // lod.force_tier0 restores bit-exact out-of-core rendering everywhere.
  LodPolicy lod;
};

// One group worth fetching, at the tier the policy wants it.
struct PrefetchRequest {
  voxel::DenseVoxelId id = 0;
  std::uint8_t tier = 0;
};

// Fetch-worthy groups for `intent` against `cache`'s store, best first
// (near-to-far), capped by the config's group/byte budgets. A group
// qualifies when it is absent or resident only at a worse tier than
// config.lod wants. The shared ranking core of StreamingLoader and
// SharedPrefetchQueue.
std::vector<PrefetchRequest> rank_prefetch_groups(
    const ResidencyCache& cache, const FrameIntent& intent,
    const PrefetchConfig& config);

// Thread-safe per-session cache-counter sink. A session's own front-end
// (serve::SessionSource) and the shared fetch queue both credit it: render
// workers record hits/misses concurrently while the async lane records the
// prefetches this session's intents initiated.
class SessionCacheStats {
 public:
  void record_acquire(const AcquireOutcome& outcome) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (outcome.degraded) {
      // Served degraded (stale tier or empty view) because of an error
      // state. Counted under misses — the request was not satisfied at the
      // asked tier — with the failure attributed alongside.
      ++stats_.misses;
      ++stats_.tier_misses[static_cast<std::size_t>(outcome.requested_tier)];
      ++stats_.degraded_groups;
      if (outcome.fetch_errored) ++stats_.fetch_errors;
      if (outcome.group_failed) failed_seen_.insert(outcome.group);
    } else if (outcome.missed) {
      ++stats_.misses;
      ++stats_.tier_misses[static_cast<std::size_t>(outcome.requested_tier)];
      if (outcome.upgraded) ++stats_.upgrades;
      stats_.bytes_fetched += outcome.bytes_fetched;
      stats_.tier_bytes_fetched[static_cast<std::size_t>(
          outcome.requested_tier)] += outcome.bytes_fetched;
    } else {
      ++stats_.hits;
      ++stats_.tier_hits[static_cast<std::size_t>(outcome.served_tier)];
    }
  }
  void record_prefetch(std::uint64_t bytes, int tier = 0) {
    std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.prefetches;
    ++stats_.tier_prefetches[static_cast<std::size_t>(tier)];
    stats_.bytes_fetched += bytes;
    stats_.tier_bytes_fetched[static_cast<std::size_t>(tier)] += bytes;
  }
  // A prefetch this session requested was attempted and errored (the batch
  // continues past it; the error is attributed here). Unlike the traffic
  // counters, errors are not tier-resolved in StreamCacheStats.
  void record_prefetch_error() {
    std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.fetch_errors;
  }
  core::StreamCacheStats snapshot() const {
    std::lock_guard<std::mutex> lk(mutex_);
    core::StreamCacheStats s = stats_;
    // Session scope: DISTINCT permanently-failed groups this session
    // touched (the shared cache's counter is the global transition count).
    s.failed_groups = failed_seen_.size();
    return s;
  }

 private:
  mutable std::mutex mutex_;
  core::StreamCacheStats stats_;  // evictions stay 0: they are a property
                                  // of the shared cache, not of a session
  std::unordered_set<voxel::DenseVoxelId> failed_seen_;
};

class StreamingLoader final : public GroupSource {
 public:
  explicit StreamingLoader(ResidencyCache& cache, PrefetchConfig config = {});
  // Drains in-flight async fetches (they capture `this`).
  ~StreamingLoader() override;

  void begin_frame(const FrameIntent& intent,
                   std::span<const voxel::DenseVoxelId> plan_voxels) override;
  void end_frame() override;
  GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId v) override;
  core::StreamCacheStats stats() const override;

  // Ranking for this loader's cache and config. Exposed for tests.
  std::vector<PrefetchRequest> rank_prefetch(const FrameIntent& intent) const;

  // Blocks until all submitted prefetch batches have landed.
  void wait_idle() const;

  // The last begin_frame's tier selection (histogram + demotions), for
  // reporting degraded frames. Valid between begin_frame and the next.
  const TierSelection& frame_selection() const { return selection_; }

  ResidencyCache& cache() { return *cache_; }
  const PrefetchConfig& config() const { return config_; }

 private:
  ResidencyCache* cache_;
  PrefetchConfig config_;
  TierSelection selection_;  // tier_by_group consulted by acquire()
};

// One fetch queue shared by N viewer sessions over one ResidencyCache.
//
// Each session calls enqueue() at the top of its frame with its own camera
// intent (and optionally its SessionCacheStats sink for attribution, plus
// its own LodPolicy). The queue ranks the session's candidates, drops every
// group that is already queued by *any* session at the same or a better
// tier (the cross-session merge — the request is served by the fetch
// already on its way), and submits the remainder as one batch on the async
// FIFO lane. Batches drain strictly in enqueue order, so no session's
// fetches can starve another's: service is first-come, first-served at
// batch granularity.
class SharedPrefetchQueue {
 public:
  explicit SharedPrefetchQueue(ResidencyCache& cache,
                               PrefetchConfig config = {});
  // Drains in-flight batches (their tasks capture `this`).
  ~SharedPrefetchQueue();

  // Ranks + enqueues one session's prefetch work. Returns the number of
  // groups newly queued (after merging with other sessions' pending
  // requests). `sink`, when non-null, is credited for every group this
  // call's batch actually fetches — including fetches that land after the
  // session's frame ended (the counters are cumulative and monotone).
  // `lod`, when non-null, overrides the queue config's policy — the
  // per-session quality knob of the serve layer.
  std::size_t enqueue(const FrameIntent& intent,
                      SessionCacheStats* sink = nullptr,
                      const LodPolicy* lod = nullptr);

  // Blocks until every batch enqueued before this call has landed.
  void wait_idle() const;

  // Requests dropped because the same group was already queued at the same
  // or a better tier by some session: the fetch-traffic the merge saved,
  // in group requests.
  std::uint64_t merged_requests() const;

  ResidencyCache& cache() { return *cache_; }
  const PrefetchConfig& config() const { return config_; }

 private:
  ResidencyCache* cache_;
  PrefetchConfig config_;
  mutable std::mutex mutex_;
  // Pending requests across sessions: group -> best tier queued.
  std::unordered_map<voxel::DenseVoxelId, std::uint8_t> queued_;
  std::uint64_t merged_ = 0;
};

}  // namespace sgs::stream
