#include "render/tile_renderer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <vector>

#include "common/parallel.hpp"
#include "gs/blending.hpp"
#include "gs/projection.hpp"

namespace sgs::render {

namespace {

struct Pair {
  std::uint32_t tile;
  float depth;
  std::uint32_t gaussian;  // index into the projected array
};

}  // namespace

TileRenderResult render_tile_centric(const gs::GaussianModel& model,
                                     const gs::Camera& camera,
                                     const TileRenderConfig& config) {
  const int width = camera.width();
  const int height = camera.height();
  const int ts = config.tile_size;
  const int tiles_x = (width + ts - 1) / ts;
  const int tiles_y = (height + ts - 1) / ts;
  const std::size_t tile_count = static_cast<std::size_t>(tiles_x) * tiles_y;
  const TileCentricRecordSizes& rs = config.record_sizes;

  TileRenderResult result;
  result.image = Image(width, height, config.background);
  TileCentricTrace& trace = result.trace;
  trace.gaussian_count = model.size();
  trace.tile_count = tile_count;
  trace.pixel_count = static_cast<std::uint64_t>(width) * height;
  trace.tile_size = ts;

  // --- Stage 1: projection (parallel over Gaussians) ------------------------
  std::vector<std::optional<gs::ProjectedGaussian>> projected(model.size());
  parallel_for(0, model.size(), [&](std::size_t i) {
    projected[i] = gs::project_gaussian(model.gaussians[i], camera);
  });

  // DRAM: every Gaussian's 59 parameters are read during projection.
  trace.traffic[Stage::kProjectionRead] = model.size() * rs.gaussian_in;

  // --- Pair duplication (serial; deterministic order) -----------------------
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < model.size(); ++i) {
    if (!projected[i]) continue;
    ++trace.projected_count;
    const gs::ProjectedGaussian& p = *projected[i];
    // Conservative tile range from the 3-sigma disc.
    const int tx0 = std::max(0, static_cast<int>(std::floor((p.mean.x - p.radius) / static_cast<float>(ts))));
    const int ty0 = std::max(0, static_cast<int>(std::floor((p.mean.y - p.radius) / static_cast<float>(ts))));
    const int tx1 = std::min(tiles_x - 1, static_cast<int>(std::floor((p.mean.x + p.radius) / static_cast<float>(ts))));
    const int ty1 = std::min(tiles_y - 1, static_cast<int>(std::floor((p.mean.y + p.radius) / static_cast<float>(ts))));
    const std::size_t pairs_before = pairs.size();
    for (int ty = ty0; ty <= ty1; ++ty) {
      for (int tx = tx0; tx <= tx1; ++tx) {
        const float x0 = static_cast<float>(tx * ts);
        const float y0 = static_cast<float>(ty * ts);
        if (!gs::disc_intersects_rect(p.mean, p.radius, x0, y0,
                                      x0 + static_cast<float>(ts),
                                      y0 + static_cast<float>(ts))) {
          continue;
        }
        pairs.push_back({static_cast<std::uint32_t>(ty * tiles_x + tx), p.depth,
                         static_cast<std::uint32_t>(i)});
      }
    }
    if (pairs.size() > pairs_before) ++trace.contributing_count;
  }
  trace.pair_count = pairs.size();

  // DRAM: projection writes one feature record per surviving Gaussian plus
  // one sort pair per duplication.
  trace.traffic[Stage::kProjectionWrite] =
      trace.projected_count * rs.projected_feature + trace.pair_count * rs.sort_pair;

  // --- Stage 2: global sort by (tile, depth) ---------------------------------
  std::stable_sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.tile != b.tile) return a.tile < b.tile;
    return a.depth < b.depth;
  });
  // DRAM: the GPU radix sort streams the pair array read+write per pass.
  trace.traffic[Stage::kSortingRead] =
      static_cast<std::uint64_t>(rs.sort_passes) * trace.pair_count * rs.sort_pair;
  trace.traffic[Stage::kSortingWrite] = trace.traffic[Stage::kSortingRead];

  // Per-tile ranges.
  std::vector<std::uint32_t> tile_begin(tile_count + 1, 0);
  for (const Pair& p : pairs) ++tile_begin[p.tile + 1];
  for (std::size_t t = 0; t < tile_count; ++t) tile_begin[t + 1] += tile_begin[t];
  trace.tile_pair_counts.resize(tile_count);
  for (std::size_t t = 0; t < tile_count; ++t) {
    trace.tile_pair_counts[t] = tile_begin[t + 1] - tile_begin[t];
  }

  // --- Stage 3: per-tile blending (parallel over tiles) ----------------------
  std::atomic<std::uint64_t> blend_ops{0};
  std::atomic<std::uint64_t> processed_pairs{0};
  parallel_for(0, tile_count, [&](std::size_t t) {
    const int tx = static_cast<int>(t) % tiles_x;
    const int ty = static_cast<int>(t) / tiles_x;
    const int px0 = tx * ts;
    const int py0 = ty * ts;
    const int px1 = std::min(width, px0 + ts);
    const int py1 = std::min(height, py0 + ts);
    const int n_px = (px1 - px0) * (py1 - py0);

    std::vector<gs::PixelAccumulator> acc(static_cast<std::size_t>(n_px));
    int saturated = 0;
    std::uint64_t local_blend = 0;
    std::uint64_t local_processed = 0;

    const int row = px1 - px0;
    for (std::uint32_t k = tile_begin[t]; k < tile_begin[t + 1]; ++k) {
      if (saturated == n_px) break;  // tile-level early termination
      ++local_processed;
      const gs::ProjectedGaussian& g = *projected[pairs[k].gaussian];
      const gs::PixelSpan span =
          gs::splat_pixel_span(g.mean, g.radius, px0, py0, px1, py1);
      for (int py = span.y0; py < span.y1; ++py) {
        for (int px = span.x0; px < span.x1; ++px) {
          const int pi = (py - py0) * row + (px - px0);
          gs::PixelAccumulator& a = acc[static_cast<std::size_t>(pi)];
          if (a.saturated()) continue;
          ++local_blend;
          const float alpha = gs::gaussian_alpha(
              g, {static_cast<float>(px) + 0.5f, static_cast<float>(py) + 0.5f});
          if (alpha <= 0.0f) continue;
          gs::blend(a, g.color, alpha);
          if (a.saturated()) ++saturated;
        }
      }
    }

    int pi = 0;
    for (int py = py0; py < py1; ++py) {
      for (int px = px0; px < px1; ++px, ++pi) {
        result.image.at(px, py) =
            gs::resolve(acc[static_cast<std::size_t>(pi)], config.background);
      }
    }
    blend_ops.fetch_add(local_blend, std::memory_order_relaxed);
    processed_pairs.fetch_add(local_processed, std::memory_order_relaxed);
  });
  trace.blend_ops = blend_ops.load();
  trace.processed_pairs = processed_pairs.load();

  // DRAM: rendering fetches each traversed pair's feature once per tile and
  // writes the frame once.
  trace.traffic[Stage::kRenderingRead] = trace.processed_pairs * rs.render_fetch;
  trace.traffic[Stage::kRenderingWrite] = trace.pixel_count * rs.frame_pixel;
  return result;
}

}  // namespace sgs::render
