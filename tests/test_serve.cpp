// Tests for the multi-session scene server (src/serve/) and the shared
// residency-cache machinery under it (refcounted plan pins, per-session
// attribution, the merged prefetch queue) — the acceptance bar being that
// N sessions over ONE shared cache render images bit-identical to each
// session alone, for raw and VQ stores, while the shared cache actually
// takes concurrent traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "scene/generator.hpp"
#include "serve/scene_server.hpp"
#include "stream/asset_store.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"
#include "stream_fault_testutil.hpp"

namespace sgs::serve {
namespace {

gs::GaussianModel test_model(std::uint64_t seed, std::size_t count) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = count;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.seed = seed;
  return scene::generate_scene(cfg);
}

core::StreamingScene test_scene(std::uint64_t seed, std::size_t count,
                                bool vq) {
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = vq;
  if (vq) {
    cfg.vq.scale_entries = 64;
    cfg.vq.rotation_entries = 64;
    cfg.vq.dc_entries = 64;
    cfg.vq.sh_entries = 32;
    cfg.vq.kmeans_iters = 4;
    cfg.vq.refine_iters = 1;
  }
  return core::StreamingScene::prepare(test_model(seed, count), cfg);
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& p) : path(p) {}
  ~TempFile() { std::remove(path.c_str()); }
};

// Session s's camera path: a phase-shifted slice of one orbit, so the
// sessions' working sets overlap heavily — the serving sweet spot.
std::vector<gs::Camera> session_path(int session, int frames, int size) {
  std::vector<gs::Camera> cams;
  for (int f = 0; f < frames; ++f) {
    const float t = 0.02f * static_cast<float>(session) +
                    0.5f * static_cast<float>(f) / static_cast<float>(frames);
    const float a = 6.2831853f * t;
    cams.push_back(gs::Camera::look_at(
        {6.0f * std::sin(a), 1.0f, -6.0f * std::cos(a)}, {0, 0, 0}, {0, 1, 0},
        0.9f, size, size));
  }
  return cams;
}

// ------------------------------------------ golden: served == rendered alone

void golden_multi_session(bool vq) {
  const auto scene = test_scene(vq ? 31 : 30, 2500, vq);
  TempFile file(vq ? "/tmp/sgs_test_serve_vq.sgsc"
                   : "/tmp/sgs_test_serve_raw.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);

  const int n_sessions = 8;
  const int frames = vq ? 2 : 3;
  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < n_sessions; ++s) {
    paths.push_back(session_path(s, frames, 128));
  }

  SceneServerConfig cfg;
  // Budget well below the scene: the shared run must evict while plans
  // from several sessions are in flight.
  cfg.cache.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  const auto result = SceneServer(store, cfg).run(paths);

  ASSERT_EQ(result.sessions.size(), paths.size());
  for (int s = 0; s < n_sessions; ++s) {
    // The reference: this session's path rendered alone, fully resident.
    const auto alone =
        core::render_sequence(scene, paths[static_cast<std::size_t>(s)], {});
    const auto& served = result.sessions[static_cast<std::size_t>(s)];
    ASSERT_EQ(served.size(), alone.frames.size());
    for (std::size_t f = 0; f < served.size(); ++f) {
      // The acceptance bar: bit-identical image bytes...
      EXPECT_EQ(served[f].image.pixels(), alone.frames[f].image.pixels())
          << "session " << s << " frame " << f;
      // ...and identical streaming work (same voxels, same survivors).
      EXPECT_EQ(served[f].stats.fine_pass, alone.frames[f].stats.fine_pass);
      EXPECT_EQ(served[f].stats.blend_ops, alone.frames[f].stats.blend_ops);
      EXPECT_GT(served[f].frame_wall_ns, 0u);
    }
  }

  // The run really was shared and out of core.
  const ServerReport& rep = result.report;
  ASSERT_EQ(rep.sessions.size(), static_cast<std::size_t>(n_sessions));
  EXPECT_GT(rep.shared_cache.accesses(), 0u);
  EXPECT_GT(rep.shared_cache.evictions, 0u);
  EXPECT_GT(rep.shared_cache.bytes_fetched, 0u);
  EXPECT_GE(rep.global_hit_rate, 0.0);
  EXPECT_LE(rep.global_hit_rate, 1.0);
  EXPECT_LE(rep.p50_ms, rep.p95_ms);

  // Per-session attribution is exact: every hit, miss, prefetch, and
  // fetched byte lands in exactly one session's counters, so the sums
  // reproduce the shared cache's global view (evictions are global-only).
  core::StreamCacheStats sum;
  for (const SessionReport& sr : rep.sessions) {
    EXPECT_EQ(sr.frames, static_cast<std::size_t>(frames));
    EXPECT_EQ(sr.cache.evictions, 0u);
    EXPECT_LE(sr.p50_ms, sr.p95_ms);
    EXPECT_GE(sr.plans_built, 1u);
    sum.accumulate(sr.cache);
  }
  EXPECT_EQ(sum.hits, rep.shared_cache.hits);
  EXPECT_EQ(sum.misses, rep.shared_cache.misses);
  EXPECT_EQ(sum.prefetches, rep.shared_cache.prefetches);
  EXPECT_EQ(sum.bytes_fetched, rep.shared_cache.bytes_fetched);
}

TEST(ServeGolden, EightSessionsBitIdenticalRaw) {
  golden_multi_session(/*vq=*/false);
}

TEST(ServeGolden, EightSessionsBitIdenticalVq) {
  golden_multi_session(/*vq=*/true);
}

// ------------------------------------------------- refcounted plan pinning

TEST(SharedCache, PlanPinsRefcountAcrossSessions) {
  const auto scene = test_scene(32, 1500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_refpin.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);
  ASSERT_GE(store.group_count(), 2);

  stream::ResidencyCacheConfig cfg;
  cfg.budget_bytes = 1;  // nothing unpinned survives
  stream::ResidencyCache cache(store, cfg);

  const std::vector<voxel::DenseVoxelId> shared_set = {0, 1};
  cache.pin_plan(shared_set);  // session A's plan
  cache.pin_plan(shared_set);  // session B pins the same groups
  cache.acquire(0);
  cache.release(0);
  cache.acquire(1);
  cache.release(1);

  // A's frame ends: B still holds the groups — eviction must respect the
  // union of in-flight working sets, so nothing may be dropped yet.
  cache.unpin_plan(shared_set);
  EXPECT_TRUE(cache.resident(0));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 0u);

  // B's frame ends: the last pins drop and the overshoot drains.
  cache.unpin_plan(shared_set);
  EXPECT_FALSE(cache.resident(0));
  EXPECT_FALSE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 2u);
}

// --------------------------------------------------- concurrent cache stress

// N threads hammer one cache with interleaved acquire/release, prefetch,
// and pin/unpin cycles. Asserts the counters stay exact under contention
// and that no group is ever decoded twice while it stays resident.
TEST(SharedCache, ConcurrentStressCountersConsistentNoDoubleDecode) {
  const auto scene = test_scene(33, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_stress.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);
  const int n_groups = store.group_count();
  ASSERT_GE(n_groups, 8);

  // Phase 1: budget above the whole scene — nothing is ever evicted, so
  // each distinct group must be fetched exactly once no matter how many
  // threads race for it (the no-double-decode guarantee: concurrent
  // acquires of a loading group wait instead of fetching again).
  {
    stream::ResidencyCacheConfig cfg;
    cfg.budget_bytes = store.decoded_bytes_total() + 1;
    stream::ResidencyCache cache(store, cfg);

    const int n_threads = 8;
    const int ops = 400;
    std::atomic<std::uint64_t> acquires{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t x = 9000 + static_cast<std::uint64_t>(t);
        for (int i = 0; i < ops; ++i) {
          x = x * 6364136223846793005ull + 1442695040888963407ull;
          const auto v = static_cast<voxel::DenseVoxelId>(
              (x >> 33) % static_cast<std::uint64_t>(n_groups));
          if (i % 5 == 4) {
            cache.prefetch(v);
          } else {
            cache.acquire(v);
            cache.release(v);
            acquires.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();

    const auto s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, acquires.load());
    EXPECT_EQ(s.evictions, 0u);
    // All fetches (demand + prefetch) covered distinct groups exactly once.
    std::uint64_t resident_count = 0;
    std::uint64_t resident_total = 0;
    for (voxel::DenseVoxelId v = 0; v < n_groups; ++v) {
      if (cache.resident(v)) {
        ++resident_count;
        resident_total += store.read_group(v).resident_bytes();
      }
    }
    EXPECT_EQ(s.misses + s.prefetches, resident_count);
    EXPECT_EQ(cache.resident_bytes(), resident_total);
  }

  // Phase 2: a starving budget plus concurrent pin/unpin cycles — the
  // counters must stay exact, pins must never be evicted out from under a
  // frame, and after the last unpin the residency drains to the budget.
  {
    stream::ResidencyCacheConfig cfg;
    cfg.budget_bytes = store.decoded_bytes_total() / 5;
    stream::ResidencyCache cache(store, cfg);

    const int n_threads = 8;
    const int rounds = 60;
    std::atomic<std::uint64_t> acquires{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t) {
      threads.emplace_back([&, t] {
        std::uint64_t x = 77 + static_cast<std::uint64_t>(t);
        for (int r = 0; r < rounds; ++r) {
          // A tiny "frame": pin a working set, stream it, unpin.
          std::vector<voxel::DenseVoxelId> plan;
          for (int k = 0; k < 6; ++k) {
            x = x * 6364136223846793005ull + 1442695040888963407ull;
            plan.push_back(static_cast<voxel::DenseVoxelId>(
                (x >> 33) % static_cast<std::uint64_t>(n_groups)));
          }
          cache.pin_plan(plan);
          for (const voxel::DenseVoxelId v : plan) {
            const stream::GroupView view = cache.acquire(v);
            EXPECT_EQ(view.size(), store.group_indices(v).size());
            cache.release(v);
            acquires.fetch_add(1, std::memory_order_relaxed);
          }
          cache.unpin_plan(plan);
        }
      });
    }
    for (auto& th : threads) th.join();

    const auto s = cache.stats();
    EXPECT_EQ(s.hits + s.misses, acquires.load());
    EXPECT_GT(s.evictions, 0u);
    // All pins dropped: the drain has brought residency under budget.
    cache.unpin_plan({});
    EXPECT_LE(cache.resident_bytes(), cfg.budget_bytes);
  }
}

// ---------------------------------------------------------- per-session LOD

// Two sessions, one shared tiered store: one session insists on exact L0
// frames, the other streams adaptively under a tight per-frame byte budget.
// The exact session must stay bit-identical to rendering alone even while
// the adaptive one fetches (and the exact one upgrades) pruned tiers in
// the same cache; the reports must carry each session's quality story.
TEST(ServeLod, PerSessionQualityOverOneSharedCache) {
  const auto scene = test_scene(35, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_serve_lod.sgsc");
  stream::AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene, wopts));
  stream::AssetStore store(file.path);
  ASSERT_EQ(store.tier_count(), 3);

  const int frames = 3;
  std::vector<std::vector<gs::Camera>> paths;
  paths.push_back(session_path(0, frames, 128));
  paths.push_back(session_path(1, frames, 128));

  SceneServerConfig cfg;
  cfg.cache.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  SceneServer server(store, cfg);
  stream::LodPolicy exact;
  exact.force_tier0 = true;
  ASSERT_EQ(server.open_session(exact), 0);
  stream::LodPolicy adaptive;  // sized to the 128 px test camera
  adaptive.footprint_full_px = 40.0f;
  adaptive.footprint_half_px = 20.0f;
  adaptive.frame_fetch_budget_bytes = 1;  // force budget demotion
  ASSERT_EQ(server.open_session(adaptive), 1);

  const auto result = server.run(paths);

  // The L0 session's frames are exact regardless of its neighbor's tiers.
  const auto alone = core::render_sequence(scene, paths[0], {});
  ASSERT_EQ(result.sessions[0].size(), alone.frames.size());
  for (std::size_t f = 0; f < alone.frames.size(); ++f) {
    EXPECT_EQ(result.sessions[0][f].image.pixels(),
              alone.frames[f].image.pixels())
        << "frame " << f;
  }

  const SessionReport& r0 = result.report.sessions[0];
  const SessionReport& r1 = result.report.sessions[1];
  // Session 0 requested nothing below L0 and was never degraded.
  EXPECT_GT(r0.tier_requests[0], 0u);
  EXPECT_EQ(r0.tier_requests[1] + r0.tier_requests[2], 0u);
  EXPECT_EQ(r0.degraded_frames, 0u);
  // Session 1 streamed pruned tiers, and its 1-byte budget demoted every
  // frame's tail below the footprint-ideal tier.
  EXPECT_GT(r1.tier_requests[1] + r1.tier_requests[2], 0u);
  EXPECT_EQ(r1.degraded_frames, static_cast<std::size_t>(frames));

  // Shared counters stay coherent under tiering: the tier breakdowns
  // partition the totals and upgrades are a subset of misses.
  const core::StreamCacheStats& g = result.report.shared_cache;
  std::uint64_t tier_hits = 0, tier_misses = 0, tier_bytes = 0;
  for (int t = 0; t < core::kLodTierCount; ++t) {
    tier_hits += g.tier_hits[t];
    tier_misses += g.tier_misses[t];
    tier_bytes += g.tier_bytes_fetched[t];
  }
  EXPECT_EQ(tier_hits, g.hits);
  EXPECT_EQ(tier_misses, g.misses);
  EXPECT_EQ(tier_bytes, g.bytes_fetched);
  EXPECT_LE(g.upgrades, g.misses);
}

// ------------------------------------------------------ merged fetch queue

TEST(SharedQueue, MergesDuplicateRequestsAcrossSessions) {
  const auto scene = test_scene(34, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_merge.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);
  stream::ResidencyCache cache(store, {});

  stream::PrefetchConfig pcfg;
  pcfg.max_groups_per_frame = 8;
  stream::SharedPrefetchQueue queue(cache, pcfg);

  const gs::Camera cam = gs::Camera::look_at({0, 0, -6}, {0, 0, 0}, {0, 1, 0},
                                             0.9f, 128, 128);
  stream::FrameIntent intent;
  intent.camera = &cam;

  // Stall the async lane so both sessions' requests are pending at once.
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  async_submit([open] { open.wait(); });

  stream::SessionCacheStats sink_a, sink_b;
  const std::size_t queued_a = queue.enqueue(intent, &sink_a);
  ASSERT_GT(queued_a, 0u);
  // Session B wants the same groups for the same view: every request is
  // already queued by A — merged, nothing new.
  const std::size_t queued_b = queue.enqueue(intent, &sink_b);
  EXPECT_EQ(queued_b, 0u);
  EXPECT_GE(queue.merged_requests(), queued_a);

  gate.set_value();
  queue.wait_idle();

  // Each group was fetched exactly once, attributed to the initiator.
  const auto s = cache.stats();
  EXPECT_EQ(s.prefetches, queued_a);
  EXPECT_EQ(sink_a.snapshot().prefetches, queued_a);
  EXPECT_EQ(sink_b.snapshot().prefetches, 0u);
}

// --------------------------------------------------------- failure domain

// The acceptance bar of fault isolation at the serving layer: an 8-session
// run over a store with ONE poisoned voxel group completes every frame of
// every session, survives without terminate or deadlock, and attributes the
// failure to exactly the sessions that streamed the bad group.
TEST(SceneServer, EightSessionsSurviveOnePoisonedGroup) {
  const auto scene = test_scene(35, 2500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_serve_poison.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  // The densest (central) group — the one every orbiting session streams.
  {
    stream::AssetStore probe(file.path);
    stream::faulttest::poison_vq_group(file.path, probe,
                                       stream::faulttest::densest_group(probe));
  }
  stream::AssetStore store(file.path);

  const int n_sessions = 8;
  const int frames = 2;
  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < n_sessions; ++s) {
    paths.push_back(session_path(s, frames, 128));
  }

  SceneServerConfig cfg;
  cfg.cache.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  // One strike: the first failed fetch negative-caches the group, so the
  // attribution below is exact (1 attempt, 1 failed group) regardless of
  // how the 8 session threads interleave.
  cfg.cache.max_fetch_attempts = 1;
  const auto result = SceneServer(store, cfg).run(paths);

  // Every session completed every frame — the poisoned group cost pixels,
  // never a session.
  ASSERT_EQ(result.sessions.size(), paths.size());
  for (int s = 0; s < n_sessions; ++s) {
    EXPECT_EQ(result.sessions[static_cast<std::size_t>(s)].size(),
              static_cast<std::size_t>(frames))
        << "session " << s;
  }

  const ServerReport& rep = result.report;
  // Exactly one disk attempt, one permanently-failed group, and at least
  // one degraded serve, all visible in the shared cache's v5 counters.
  EXPECT_EQ(rep.shared_cache.fetch_errors, 1u);
  EXPECT_EQ(rep.shared_cache.failed_groups, 1u);
  EXPECT_GT(rep.shared_cache.degraded_groups, 0u);
  // No async-lane task died either: the cache absorbs fetch errors before
  // they can escape a prefetch batch (nothing in this binary throws tasks).
  EXPECT_EQ(rep.async_lane_errors, 0u);

  // Attribution: the one fetch error lands in exactly one session's
  // counters; failed-group sightings land only in sessions that actually
  // streamed the bad group, and at least one did.
  std::uint64_t error_sum = 0;
  std::uint64_t degraded_sum = 0;
  std::uint64_t failed_sessions = 0;
  std::size_t error_frames = 0;
  for (const SessionReport& sr : rep.sessions) {
    EXPECT_EQ(sr.frames, static_cast<std::size_t>(frames));
    error_sum += sr.cache.fetch_errors;
    degraded_sum += sr.cache.degraded_groups;
    EXPECT_LE(sr.cache.failed_groups, 1u);  // there is only one bad group
    if (sr.cache.failed_groups > 0) ++failed_sessions;
    error_frames += sr.error_frames;
  }
  EXPECT_EQ(error_sum, rep.shared_cache.fetch_errors);
  EXPECT_EQ(degraded_sum, rep.shared_cache.degraded_groups);
  EXPECT_GE(failed_sessions, 1u);
  EXPECT_GT(error_frames, 0u);
}

// ----------------------------------------------- zero-stall serving --------
//
// Eight sessions over a coarse-floored store with a zero per-frame fetch
// deadline: no session ever blocks on a demand fetch (stall_frames == 0
// everywhere), the shared priority queue drains every session's requests
// (no starvation), and per-session fallback attribution sums exactly to
// the shared cache's global counter.
TEST(SceneServer, EightSessionsZeroDeadlineNeverStallNorStarve) {
  const auto scene = test_scene(36, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_serve_zerostall.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(
      file.path, scene, stream::AssetStoreWriteOptions::with_coarse_floor()));
  stream::AssetStore store(file.path);
  ASSERT_TRUE(store.has_coarse_tier());

  const int n_sessions = 8;
  const int frames = 3;
  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < n_sessions; ++s) {
    paths.push_back(session_path(s, frames, 128));
  }

  SceneServerConfig cfg;
  cfg.cache.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  cfg.cache.coarse_floor_budget_bytes = store.decoded_bytes_total();
  cfg.prefetch.fetch_deadline_ns = 0;  // every demand fetch is past due
  // Squeeze the shared per-enqueue byte cap so warm-up cannot finish
  // inside one frame: the floor must actually carry load.
  cfg.prefetch.max_bytes_per_frame = store.payload_bytes_total() / 16;
  cfg.lod.force_tier0 = true;

  SceneServer server(store, cfg);
  ASSERT_TRUE(server.cache().coarse_floor_enabled());
  const auto result = server.run(paths);

  const ServerReport& rep = result.report;
  ASSERT_EQ(rep.sessions.size(), static_cast<std::size_t>(n_sessions));
  // Zero-stall, per session: not one frame with a demand miss anywhere.
  std::uint64_t fallback_sum = 0;
  std::size_t fallback_frames_sum = 0;
  for (const SessionReport& sr : rep.sessions) {
    EXPECT_EQ(sr.frames, static_cast<std::size_t>(frames));
    EXPECT_EQ(sr.stall_frames, 0u);
    EXPECT_EQ(sr.cache.misses, 0u);
    fallback_sum += sr.cache.coarse_fallbacks;
    fallback_frames_sum += sr.fallback_frames;
  }
  EXPECT_EQ(rep.stall_frames, 0u);
  // The floor actually carried load, and attribution is exact: per-session
  // fallback counters sum to the shared cache's global one (each fallback
  // is credited to both scopes from the same per-frame dedup site).
  EXPECT_GT(fallback_sum, 0u);
  EXPECT_EQ(fallback_sum, rep.shared_cache.coarse_fallbacks);
  EXPECT_GT(fallback_frames_sum, 0u);
  EXPECT_EQ(rep.fallback_frames, fallback_frames_sum);
  // Non-fallback traffic attribution still holds (pre-PR invariant).
  core::StreamCacheStats sum;
  for (const SessionReport& sr : rep.sessions) sum.accumulate(sr.cache);
  EXPECT_EQ(sum.hits, rep.shared_cache.hits);
  EXPECT_EQ(sum.misses, rep.shared_cache.misses);
  EXPECT_EQ(sum.prefetches, rep.shared_cache.prefetches);
  EXPECT_EQ(sum.bytes_fetched, rep.shared_cache.bytes_fetched);

  // No starvation: after run()'s wait_idle, the shared priority queue is
  // empty — every session's requests (ranked and urgent re-queues alike)
  // were drained within the run's bounded drain batches.
  EXPECT_EQ(server.pending_prefetch_requests(), 0u);

  // Quality floor: frames that never fell back are bit-identical to the
  // session rendered alone; fallback frames still render the full scene.
  for (int s = 0; s < n_sessions; ++s) {
    const auto alone =
        core::render_sequence(scene, paths[static_cast<std::size_t>(s)], {});
    const auto& served = result.sessions[static_cast<std::size_t>(s)];
    ASSERT_EQ(served.size(), alone.frames.size());
    for (std::size_t f = 0; f < served.size(); ++f) {
      if (served[f].trace.cache.coarse_fallbacks == 0) {
        EXPECT_EQ(served[f].image.pixels(), alone.frames[f].image.pixels())
            << "session " << s << " frame " << f;
      }
    }
  }
}

// --------------------------------------------- multiplexed state machine ---

// The tentpole contract: session count is bounded by memory, not cores.
// Twelve sessions over TWO drivers (max_concurrent_frames = 2) complete
// bit-identically to rendering alone, the ready-queue wait is measured on
// every driven frame, and the FIFO rotation yields a fair throughput split.
TEST(ServeMultiplexed, SessionsExceedDriverCountBitIdentical) {
  const auto scene = test_scene(40, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_serve_mux.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);

  const int n_sessions = 12;
  const int frames = 2;
  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < n_sessions; ++s) {
    paths.push_back(session_path(s, frames, 96));
  }

  SceneServerConfig cfg;
  cfg.cache.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  cfg.max_concurrent_frames = 2;  // 12 sessions share 2 drivers
  SceneServer server(store, cfg);
  const auto result = server.run(paths);

  ASSERT_EQ(result.sessions.size(), paths.size());
  for (int s = 0; s < n_sessions; ++s) {
    const auto alone =
        core::render_sequence(scene, paths[static_cast<std::size_t>(s)], {});
    const auto& served = result.sessions[static_cast<std::size_t>(s)];
    ASSERT_EQ(served.size(), alone.frames.size());
    for (std::size_t f = 0; f < served.size(); ++f) {
      EXPECT_EQ(served[f].image.pixels(), alone.frames[f].image.pixels())
          << "session " << s << " frame " << f;
      // v9 trace stamping: single-scene host, no rejects, queue wait set
      // by the scheduler (first frames start at the same ready mark, so
      // only later frames are guaranteed a positive wait).
      EXPECT_EQ(served[f].trace.scenes, 1u);
      EXPECT_EQ(served[f].trace.admission_rejects, 0u);
    }
  }

  const ServerReport& rep = result.report;
  // Every driven frame recorded a queue wait; with 12 sessions behind 2
  // drivers most of the fleet waits, so the total wait cannot be zero.
  EXPECT_EQ(rep.queue_wait.count(),
            static_cast<std::uint64_t>(n_sessions * frames));
  EXPECT_GT(rep.queue_wait.sum(), 0u);
  EXPECT_LE(rep.queue_wait_p50_ms, rep.queue_wait_p99_ms);
  // Throughput was measured for every session and split fairly: FIFO
  // rotation admits no starvation, so Jain's index stays high.
  for (const SessionReport& sr : rep.sessions) {
    EXPECT_GT(sr.throughput_fps, 0.0);
    EXPECT_EQ(sr.state, SessionState::kReady);
    EXPECT_EQ(sr.queue_wait.count(), static_cast<std::uint64_t>(frames));
  }
  EXPECT_GT(rep.fairness_index, 0.9);
  EXPECT_LE(rep.fairness_index, 1.0 + 1e-9);
}

// ----------------------------------------------------- multi-scene hosting --

// Two DIFFERENT scenes behind one server: every session stays bit-identical
// to rendering its own scene alone, per-scene counter attribution is exact,
// and the shard budgets always sum to the configured global budget.
TEST(ServeGolden, TwoSceneHostBitIdentical) {
  const auto scene_a = test_scene(41, 2200, /*vq=*/false);
  const auto scene_b = test_scene(42, 1600, /*vq=*/false);
  TempFile file_a("/tmp/sgs_test_serve_2s_a.sgsc");
  TempFile file_b("/tmp/sgs_test_serve_2s_b.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file_a.path, scene_a));
  ASSERT_TRUE(stream::AssetStore::write(file_b.path, scene_b));
  stream::AssetStore store_a(file_a.path);
  stream::AssetStore store_b(file_b.path);

  const int n_sessions = 6;
  const int frames = 2;
  SceneServerConfig cfg;
  cfg.cache.budget_bytes =
      (store_a.decoded_bytes_total() + store_b.decoded_bytes_total()) * 35 /
      100;
  cfg.shard_rebalance_frames = 4;
  SceneServer server({&store_a, &store_b}, cfg);
  ASSERT_EQ(server.scene_count(), 2u);
  // Construction splits the global budget exactly (remainder on shard 0).
  EXPECT_EQ(server.shard_budget_bytes(0) + server.shard_budget_bytes(1),
            cfg.cache.budget_bytes);

  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < n_sessions; ++s) {
    const auto scene_idx = static_cast<std::uint32_t>(s % 2);
    ASSERT_EQ(server.open_session(cfg.lod, scene_idx), s);
    paths.push_back(session_path(s, frames, 96));
  }
  const auto result = server.run(paths);

  ASSERT_EQ(result.sessions.size(), paths.size());
  for (int s = 0; s < n_sessions; ++s) {
    const auto& own_scene = (s % 2 == 0) ? scene_a : scene_b;
    const auto alone = core::render_sequence(
        own_scene, paths[static_cast<std::size_t>(s)], {});
    const auto& served = result.sessions[static_cast<std::size_t>(s)];
    ASSERT_EQ(served.size(), alone.frames.size());
    for (std::size_t f = 0; f < served.size(); ++f) {
      EXPECT_EQ(served[f].image.pixels(), alone.frames[f].image.pixels())
          << "session " << s << " frame " << f;
      EXPECT_EQ(served[f].trace.scenes, 2u);
    }
  }

  const ServerReport& rep = result.report;
  ASSERT_EQ(rep.scenes, 2u);
  ASSERT_EQ(rep.scene_caches.size(), 2u);
  ASSERT_EQ(rep.scene_budget_bytes.size(), 2u);
  EXPECT_EQ(rep.scene_budget_bytes[0] + rep.scene_budget_bytes[1],
            cfg.cache.budget_bytes);
  // Per-SCENE attribution: scene k's shard counters are the sum of scene
  // k's sessions' counters (evictions are shard-global), and the global
  // view is the sum of the shards.
  for (std::uint32_t k = 0; k < 2; ++k) {
    core::StreamCacheStats sum;
    for (const SessionReport& sr : rep.sessions) {
      if (sr.scene == k) sum.accumulate(sr.cache);
    }
    EXPECT_EQ(sum.hits, rep.scene_caches[k].hits) << "scene " << k;
    EXPECT_EQ(sum.misses, rep.scene_caches[k].misses) << "scene " << k;
    EXPECT_EQ(sum.prefetches, rep.scene_caches[k].prefetches) << "scene " << k;
    EXPECT_EQ(sum.bytes_fetched, rep.scene_caches[k].bytes_fetched)
        << "scene " << k;
  }
  core::StreamCacheStats sum;
  for (const SessionReport& sr : rep.sessions) sum.accumulate(sr.cache);
  EXPECT_EQ(sum.hits, rep.shared_cache.hits);
  EXPECT_EQ(sum.misses, rep.shared_cache.misses);
  EXPECT_EQ(sum.prefetches, rep.shared_cache.prefetches);
  EXPECT_EQ(sum.bytes_fetched, rep.shared_cache.bytes_fetched);
}

// --------------------------------------------------------------- admission --

TEST(Admission, CapTypedRejectNoPartialRegistration) {
  const auto scene = test_scene(43, 1200, /*vq=*/false);
  TempFile file("/tmp/sgs_test_serve_admit.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);

  SceneServerConfig cfg;
  cfg.max_sessions = 2;
  SceneServer server(store, cfg);

  ASSERT_EQ(server.open_session(), 0);
  ASSERT_EQ(server.open_session(), 1);
  EXPECT_EQ(server.session_count(), 2u);

  // Over the cap: a typed reject, atomically — no partial registration.
  const AdmissionResult over = server.try_open_session();
  EXPECT_FALSE(over.admitted);
  EXPECT_EQ(over.reason, AdmissionRejectReason::kSessionCapReached);
  EXPECT_EQ(server.session_count(), 2u);
  EXPECT_EQ(server.report().sessions.size(), 2u);
  EXPECT_EQ(server.admission_rejects(), 1u);

  // The throwing overload surfaces the same reason.
  try {
    server.open_session();
    FAIL() << "open_session past the cap must throw";
  } catch (const AdmissionRejectedError& e) {
    EXPECT_EQ(e.reason(), AdmissionRejectReason::kSessionCapReached);
  }
  EXPECT_EQ(server.admission_rejects(), 2u);

  // Unknown scene is the other typed reject.
  const AdmissionResult bad_scene = server.try_open_session(/*scene=*/7);
  EXPECT_FALSE(bad_scene.admitted);
  EXPECT_EQ(bad_scene.reason, AdmissionRejectReason::kUnknownScene);
  EXPECT_EQ(server.admission_rejects(), 3u);

  // A rejected open left the admitted sessions fully functional.
  const auto cams = session_path(0, 1, 96);
  EXPECT_GT(server.render_frame(0, cams[0]).frame_wall_ns, 0u);

  // close frees the admission slot; the closed id is dead, never reused.
  server.close_session(0);
  EXPECT_EQ(server.session_count(), 1u);
  EXPECT_EQ(server.session_state(0), SessionState::kClosed);
  EXPECT_THROW(server.render_frame(0, cams[0]), std::invalid_argument);
  EXPECT_THROW(server.close_session(0), std::invalid_argument);
  EXPECT_THROW(server.close_session(99), std::out_of_range);
  const AdmissionResult reopened = server.try_open_session();
  ASSERT_TRUE(reopened.admitted);
  EXPECT_EQ(reopened.session, 2);
  EXPECT_EQ(server.session_count(), 2u);
  // Closed sessions keep their report slot (counters survive).
  EXPECT_EQ(server.report().sessions.size(), 3u);
}

// Eight threads hammer open/close against a small cap: every admit and
// every reject is counted exactly once, and the final table is coherent.
TEST(Admission, OpenCloseHammerExactCounters) {
  const auto scene = test_scene(44, 1200, /*vq=*/false);
  TempFile file("/tmp/sgs_test_serve_hammer.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);

  SceneServerConfig cfg;
  cfg.max_sessions = 4;
  SceneServer server(store, cfg);

  const int n_threads = 8;
  const int iters = 50;
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> closed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < iters; ++i) {
        const AdmissionResult res = server.try_open_session();
        if (!res.admitted) {
          EXPECT_EQ(res.reason, AdmissionRejectReason::kSessionCapReached);
          rejected.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        admitted.fetch_add(1, std::memory_order_relaxed);
        // Release the slot so other threads keep admitting: each thread
        // closes only ids it opened, so no double close can happen.
        server.close_session(res.session);
        closed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(admitted.load(), closed.load());
  EXPECT_EQ(server.session_count(), 0u);
  // Exactness: every attempt is exactly one admit or one reject, ids were
  // never reused, and the reject counter matches the local tally.
  EXPECT_EQ(admitted.load() + rejected.load(),
            static_cast<std::uint64_t>(n_threads * iters));
  EXPECT_EQ(server.admission_rejects(), rejected.load());
  EXPECT_EQ(server.report().sessions.size(),
            static_cast<std::size_t>(admitted.load()));
  EXPECT_EQ(server.report().admission_rejects, rejected.load());
}

// ------------------------------------------- open during run (the old race) --

// Registration while the server is mid-run used to be documented as unsafe;
// it is now part of the contract. Sessions join (and render) while run()
// drives the original fleet — under TSan in CI this doubles as the data-race
// proof for the session-table lock.
TEST(SceneServer, OpenSessionDuringRunIsSafe) {
  const auto scene = test_scene(45, 1600, /*vq=*/false);
  TempFile file("/tmp/sgs_test_serve_openrun.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file.path, scene));
  stream::AssetStore store(file.path);

  SceneServerConfig cfg;
  cfg.cache.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  SceneServer server(store, cfg);

  const int n_driven = 4;
  const int frames = 3;
  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < n_driven; ++s) {
    ASSERT_EQ(server.open_session(), s);  // pre-open run()'s fleet
    paths.push_back(session_path(s, frames, 96));
  }

  std::thread runner([&] { (void)server.run(paths); });
  // While the fleet renders: join late, render on the new session, and
  // bounce admissions — all against the live session table.
  std::vector<int> joined;
  for (int i = 0; i < 6; ++i) {
    const AdmissionResult res = server.try_open_session();
    ASSERT_TRUE(res.admitted);
    joined.push_back(res.session);
    const auto cams = session_path(10 + i, 1, 96);
    EXPECT_GT(server.render_frame(res.session, cams[0]).frame_wall_ns, 0u);
  }
  for (std::size_t i = 0; i + 1 < joined.size(); i += 2) {
    server.close_session(joined[i]);
  }
  runner.join();

  const ServerReport rep = server.report();
  EXPECT_EQ(rep.sessions.size(), static_cast<std::size_t>(n_driven) + 6u);
  for (int s = 0; s < n_driven; ++s) {
    EXPECT_EQ(rep.sessions[static_cast<std::size_t>(s)].frames,
              static_cast<std::size_t>(frames));
  }
  // Attribution stayed exact across the concurrent joins.
  core::StreamCacheStats sum;
  for (const SessionReport& sr : rep.sessions) sum.accumulate(sr.cache);
  EXPECT_EQ(sum.hits, rep.shared_cache.hits);
  EXPECT_EQ(sum.misses, rep.shared_cache.misses);
  EXPECT_EQ(sum.prefetches, rep.shared_cache.prefetches);
  EXPECT_EQ(sum.bytes_fetched, rep.shared_cache.bytes_fetched);
}

// ------------------------------------------------- shard budget governor ----

// Asymmetric demand across two scenes under a starving global budget: a
// sampler thread asserts the governor's conservation law — the shard
// budgets sum EXACTLY to the global budget at every instant (shrink-
// before-grow) and never drop below the floor share — while rebalances
// and evictions run. Afterwards the hot scene must hold at least as much
// budget as the cold one, and the drained residency fits the global
// budget.
TEST(ShardBudget, ConservedUnderConcurrentRebalance) {
  const auto scene_a = test_scene(46, 2200, /*vq=*/false);
  const auto scene_b = test_scene(47, 1400, /*vq=*/false);
  TempFile file_a("/tmp/sgs_test_serve_gov_a.sgsc");
  TempFile file_b("/tmp/sgs_test_serve_gov_b.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file_a.path, scene_a));
  ASSERT_TRUE(stream::AssetStore::write(file_b.path, scene_b));
  stream::AssetStore store_a(file_a.path);
  stream::AssetStore store_b(file_b.path);

  SceneServerConfig cfg;
  const std::uint64_t global =
      (store_a.decoded_bytes_total() + store_b.decoded_bytes_total()) * 30 /
      100;
  cfg.cache.budget_bytes = global;
  cfg.shard_rebalance_frames = 2;  // rebalance aggressively
  SceneServer server({&store_a, &store_b}, cfg);

  // Demand skew: five sessions orbit scene 0, one touches scene 1 briefly.
  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < 5; ++s) {
    ASSERT_EQ(server.open_session(cfg.lod, 0), s);
    paths.push_back(session_path(s, 4, 96));
  }
  ASSERT_EQ(server.open_session(cfg.lod, 1), 5);
  paths.push_back(session_path(5, 1, 96));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> samples{0};
  std::thread sampler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t b0 = server.shard_budget_bytes(0);
      const std::uint64_t b1 = server.shard_budget_bytes(1);
      // Conservation: sampled across the two shards mid-rebalance, the
      // shares may be caught between the shrink and grow passes — their
      // sum must never EXCEED the global budget (and snaps back to it).
      EXPECT_LE(b0 + b1, global);
      EXPECT_GE(b0, global / 8);  // floor share: global / (4 * n_shards)
      EXPECT_GE(b1, global / 8);
      samples.fetch_add(1, std::memory_order_relaxed);
    }
  });
  const auto result = server.run(paths);
  stop.store(true);
  sampler.join();

  EXPECT_GT(samples.load(), 0u);
  // Quiescent: the split is exact again and skewed toward the hot scene.
  EXPECT_EQ(server.shard_budget_bytes(0) + server.shard_budget_bytes(1),
            global);
  EXPECT_GE(server.shard_budget_bytes(0), server.shard_budget_bytes(1));
  // The governor ran under real pressure, and with every pin dropped each
  // shard drained under its share — so total residency fits the global
  // budget.
  EXPECT_GT(result.report.shared_cache.evictions, 0u);
  EXPECT_LE(server.cache(0).resident_bytes() + server.cache(1).resident_bytes(),
            global);
  // The hot-scene sessions rendered correctly throughout the rebalances.
  const auto alone = core::render_sequence(scene_a, paths[0], {});
  ASSERT_EQ(result.sessions[0].size(), alone.frames.size());
  for (std::size_t f = 0; f < alone.frames.size(); ++f) {
    EXPECT_EQ(result.sessions[0][f].image.pixels(),
              alone.frames[f].image.pixels());
  }
}

// ------------------------------------------------------- fleet-scale stress --

// 64 sessions across 2 scene shards multiplexed onto 4 drivers: the
// fleet-scale target CI runs under ThreadSanitizer. Pixels are covered by
// the golden tests above; here the bar is that the scheduler at 16x
// session-per-driver oversubscription keeps every counter exact, every
// shard inside the one global budget, and every session progressing.
TEST(ServeStress, SixtyFourSessionsTwoScenesMultiplexed) {
  const auto scene_a = test_scene(48, 900, /*vq=*/false);
  const auto scene_b = test_scene(49, 700, /*vq=*/false);
  TempFile file_a("/tmp/sgs_test_serve_stress_a.sgsc");
  TempFile file_b("/tmp/sgs_test_serve_stress_b.sgsc");
  ASSERT_TRUE(stream::AssetStore::write(file_a.path, scene_a));
  ASSERT_TRUE(stream::AssetStore::write(file_b.path, scene_b));
  stream::AssetStore store_a(file_a.path);
  stream::AssetStore store_b(file_b.path);

  const int n_sessions = 64;
  const int frames = 2;
  SceneServerConfig cfg;
  cfg.cache.budget_bytes =
      (store_a.decoded_bytes_total() + store_b.decoded_bytes_total()) * 40 /
      100;
  cfg.max_concurrent_frames = 4;
  cfg.shard_rebalance_frames = 8;
  SceneServer server({&store_a, &store_b}, cfg);

  std::vector<std::vector<gs::Camera>> paths;
  for (int s = 0; s < n_sessions; ++s) {
    ASSERT_EQ(server.open_session(cfg.lod, static_cast<std::uint32_t>(s % 2)),
              s);
    paths.push_back(session_path(s, frames, 48));
  }
  const auto result = server.run(paths);

  ASSERT_EQ(result.sessions.size(), static_cast<std::size_t>(n_sessions));
  for (int s = 0; s < n_sessions; ++s) {
    EXPECT_EQ(result.sessions[static_cast<std::size_t>(s)].size(),
              static_cast<std::size_t>(frames))
        << "session " << s;
  }

  const ServerReport& rep = result.report;
  ASSERT_EQ(rep.sessions.size(), static_cast<std::size_t>(n_sessions));
  // Shard budgets partition the global budget exactly, and what is
  // actually resident stays within it.
  ASSERT_EQ(rep.scene_budget_bytes.size(), 2u);
  EXPECT_EQ(rep.scene_budget_bytes[0] + rep.scene_budget_bytes[1],
            cfg.cache.budget_bytes);
  EXPECT_LE(server.cache(0).resident_bytes() + server.cache(1).resident_bytes(),
            cfg.cache.budget_bytes);
  // Counter exactness at fleet scale: per-session attribution sums to the
  // shard totals, which sum to the global view.
  for (std::uint32_t k = 0; k < 2; ++k) {
    core::StreamCacheStats sum;
    for (const SessionReport& sr : rep.sessions) {
      if (sr.scene == k) sum.accumulate(sr.cache);
    }
    EXPECT_EQ(sum.hits, rep.scene_caches[k].hits) << "scene " << k;
    EXPECT_EQ(sum.misses, rep.scene_caches[k].misses) << "scene " << k;
    EXPECT_EQ(sum.bytes_fetched, rep.scene_caches[k].bytes_fetched)
        << "scene " << k;
  }
  // Every session made progress and the scheduler spread the drivers
  // across the fleet rather than starving the tail.
  for (const SessionReport& sr : rep.sessions) {
    EXPECT_GT(sr.throughput_fps, 0.0);
    EXPECT_EQ(sr.queue_wait.count(), static_cast<std::uint64_t>(frames));
  }
  EXPECT_GT(rep.fairness_index, 0.5);
  EXPECT_EQ(rep.admission_rejects, 0u);
}

}  // namespace
}  // namespace sgs::serve
