// Tiny command-line flag parser for the example and benchmark executables.
//
// Supports `--name value` and `--name=value`; unknown flags are reported so
// typos do not silently fall back to defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgs {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def) const;
  int get_int(const std::string& name, int def) const;
  std::int64_t get_i64(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  // Flags present on the command line that were never queried.
  std::vector<std::string> unused() const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
};

}  // namespace sgs
