#include "voxel/grid.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sgs::voxel {

VoxelGrid VoxelGrid::build(const gs::GaussianModel& model, float voxel_size) {
  assert(voxel_size > 0.0f);
  VoxelGrid grid;
  grid.config_.voxel_size = voxel_size;

  const auto bounds = model.center_bounds();
  // Nudge the origin outward so points exactly on the min face index inside.
  const float eps = 1e-4f * voxel_size;
  grid.config_.origin = bounds.min - Vec3f::splat(eps);
  const Vec3f span = bounds.max - grid.config_.origin;
  grid.config_.dims = {
      std::max(1, static_cast<std::int32_t>(std::floor(span.x / voxel_size)) + 1),
      std::max(1, static_cast<std::int32_t>(std::floor(span.y / voxel_size)) + 1),
      std::max(1, static_cast<std::int32_t>(std::floor(span.z / voxel_size)) + 1)};

  const std::int64_t raw_count = grid.raw_voxel_count();
  // First pass: raw occupancy counts.
  std::vector<std::uint32_t> raw_counts(static_cast<std::size_t>(raw_count), 0);
  std::vector<RawVoxelId> assignment(model.size());
  for (std::size_t i = 0; i < model.size(); ++i) {
    const Vec3i c = grid.coord_of_point(model.gaussians[i].position);
    assert(grid.in_bounds(c));
    const RawVoxelId id = grid.raw_id(c);
    assignment[i] = id;
    ++raw_counts[static_cast<std::size_t>(id)];
  }

  // Renaming table: dense IDs in raw-ID (spatial) order, skipping empties.
  grid.raw_to_dense_.assign(static_cast<std::size_t>(raw_count), kInvalidDenseId);
  for (RawVoxelId r = 0; r < raw_count; ++r) {
    if (raw_counts[static_cast<std::size_t>(r)] > 0) {
      grid.raw_to_dense_[static_cast<std::size_t>(r)] =
          static_cast<DenseVoxelId>(grid.dense_to_raw_.size());
      grid.dense_to_raw_.push_back(r);
    }
  }

  // CSR construction in dense order.
  const std::size_t n_dense = grid.dense_to_raw_.size();
  grid.offsets_.assign(n_dense + 1, 0);
  for (std::size_t i = 0; i < model.size(); ++i) {
    const DenseVoxelId d = grid.raw_to_dense_[static_cast<std::size_t>(assignment[i])];
    ++grid.offsets_[static_cast<std::size_t>(d) + 1];
  }
  for (std::size_t v = 0; v < n_dense; ++v) grid.offsets_[v + 1] += grid.offsets_[v];

  grid.gaussian_order_.resize(model.size());
  grid.gaussian_to_voxel_.resize(model.size());
  std::vector<std::uint32_t> cursor(grid.offsets_.begin(), grid.offsets_.end() - 1);
  for (std::size_t i = 0; i < model.size(); ++i) {
    const DenseVoxelId d = grid.raw_to_dense_[static_cast<std::size_t>(assignment[i])];
    grid.gaussian_order_[cursor[static_cast<std::size_t>(d)]++] =
        static_cast<std::uint32_t>(i);
    grid.gaussian_to_voxel_[i] = d;
  }
  return grid;
}

VoxelGrid VoxelGrid::assemble(
    const VoxelGridConfig& config, std::span<const RawVoxelId> raw_ids,
    std::span<const std::vector<std::uint32_t>> residents,
    std::size_t gaussian_count) {
  if (raw_ids.size() != residents.size()) {
    throw std::runtime_error("grid assemble: directory size mismatch");
  }
  VoxelGrid grid;
  grid.config_ = config;
  const std::int64_t raw_count = grid.raw_voxel_count();

  grid.raw_to_dense_.assign(static_cast<std::size_t>(raw_count), kInvalidDenseId);
  grid.dense_to_raw_.reserve(raw_ids.size());
  RawVoxelId prev = -1;
  for (const RawVoxelId r : raw_ids) {
    // build() emits dense IDs in ascending raw order; require the same so
    // the renaming table round-trips exactly.
    if (r < 0 || r >= raw_count || r <= prev) {
      throw std::runtime_error("grid assemble: bad raw voxel id order");
    }
    prev = r;
    grid.raw_to_dense_[static_cast<std::size_t>(r)] =
        static_cast<DenseVoxelId>(grid.dense_to_raw_.size());
    grid.dense_to_raw_.push_back(r);
  }

  grid.offsets_.assign(raw_ids.size() + 1, 0);
  grid.gaussian_order_.reserve(gaussian_count);
  grid.gaussian_to_voxel_.assign(gaussian_count, kInvalidDenseId);
  for (std::size_t v = 0; v < residents.size(); ++v) {
    for (const std::uint32_t mi : residents[v]) {
      if (mi >= gaussian_count ||
          grid.gaussian_to_voxel_[mi] != kInvalidDenseId) {
        throw std::runtime_error("grid assemble: bad model index");
      }
      grid.gaussian_order_.push_back(mi);
      grid.gaussian_to_voxel_[mi] = static_cast<DenseVoxelId>(v);
    }
    grid.offsets_[v + 1] = static_cast<std::uint32_t>(grid.gaussian_order_.size());
  }
  if (grid.gaussian_order_.size() != gaussian_count) {
    throw std::runtime_error("grid assemble: residents do not cover the model");
  }
  return grid;
}

Vec3i VoxelGrid::coord_of_point(Vec3f p) const {
  const Vec3f rel = (p - config_.origin) / config_.voxel_size;
  return {static_cast<std::int32_t>(std::floor(rel.x)),
          static_cast<std::int32_t>(std::floor(rel.y)),
          static_cast<std::int32_t>(std::floor(rel.z))};
}

bool VoxelGrid::in_bounds(Vec3i c) const {
  return c.x >= 0 && c.y >= 0 && c.z >= 0 && c.x < config_.dims.x &&
         c.y < config_.dims.y && c.z < config_.dims.z;
}

RawVoxelId VoxelGrid::raw_id(Vec3i c) const {
  return static_cast<RawVoxelId>(c.x) +
         static_cast<RawVoxelId>(config_.dims.x) *
             (static_cast<RawVoxelId>(c.y) +
              static_cast<RawVoxelId>(config_.dims.y) * static_cast<RawVoxelId>(c.z));
}

Vec3i VoxelGrid::coord_of_raw(RawVoxelId id) const {
  const std::int64_t dx = config_.dims.x;
  const std::int64_t dy = config_.dims.y;
  return {static_cast<std::int32_t>(id % dx),
          static_cast<std::int32_t>((id / dx) % dy),
          static_cast<std::int32_t>(id / (dx * dy))};
}

DenseVoxelId VoxelGrid::dense_of_raw(RawVoxelId id) const {
  if (id < 0 || id >= raw_voxel_count()) return kInvalidDenseId;
  return raw_to_dense_[static_cast<std::size_t>(id)];
}

std::span<const std::uint32_t> VoxelGrid::gaussians_in(DenseVoxelId id) const {
  assert(id >= 0 && id < voxel_count());
  const std::size_t b = offsets_[static_cast<std::size_t>(id)];
  const std::size_t e = offsets_[static_cast<std::size_t>(id) + 1];
  return {gaussian_order_.data() + b, e - b};
}

Vec3f VoxelGrid::voxel_min_corner(DenseVoxelId id) const {
  const Vec3i c = coord_of_raw(raw_of_dense(id));
  return config_.origin + Vec3f{static_cast<float>(c.x), static_cast<float>(c.y),
                                static_cast<float>(c.z)} *
                              config_.voxel_size;
}

Vec3f VoxelGrid::voxel_center(DenseVoxelId id) const {
  return voxel_min_corner(id) + Vec3f::splat(0.5f * config_.voxel_size);
}

float VoxelGrid::voxel_half_diagonal() const {
  return 0.5f * config_.voxel_size * std::sqrt(3.0f);
}

bool VoxelGrid::crosses_boundary(const gs::Gaussian& g) const {
  const Vec3i c = coord_of_point(g.position);
  const Vec3f lo = config_.origin +
                   Vec3f{static_cast<float>(c.x), static_cast<float>(c.y),
                         static_cast<float>(c.z)} *
                       config_.voxel_size;
  const Vec3f hi = lo + Vec3f::splat(config_.voxel_size);
  const float r = g.bounding_radius();
  for (int a = 0; a < 3; ++a) {
    if (g.position[a] - r < lo[a] || g.position[a] + r > hi[a]) return true;
  }
  return false;
}

double VoxelGrid::cross_boundary_ratio(const gs::GaussianModel& model) const {
  if (model.empty()) return 0.0;
  std::size_t crossing = 0;
  for (const gs::Gaussian& g : model.gaussians) {
    if (crosses_boundary(g)) ++crossing;
  }
  return static_cast<double>(crossing) / static_cast<double>(model.size());
}

}  // namespace sgs::voxel
