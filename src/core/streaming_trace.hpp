// Work trace of a streaming-rendered frame.
//
// The functional renderer (streaming_renderer.cpp) records, per pixel group
// and per voxel visit, exactly how much work each pipeline stage performed.
// The accelerator simulator replays this trace through its stage-granular
// pipeline model; the same trace drives all STREAMINGGS variants.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <vector>

namespace sgs::core {

// Number of level-of-detail payload tiers a voxel group may carry in a
// .sgsc v2 store: L0 = full fidelity, L1/L2 = importance-pruned subsets.
// Shared by the stream layer (tier directories, cache tagging), the trace
// (per-tier counters), and the simulator (per-tier fetch charging).
inline constexpr int kLodTierCount = 3;

// Monotonic timestamp shared by every producer of stage timings: one clock,
// one cast, so plan/vsu/filter/sort/blend breakdowns stay comparable.
inline std::uint64_t stage_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Sentinel for "no demand-fetch deadline": a frame (or acquire) carrying it
// keeps the blocking pre-deadline behavior — a demand miss stalls the
// render worker until the fetch lands. Any other value is a deadline on the
// stage clock above (absolute at the cache seam, relative per-frame in
// SequenceOptions / FrameIntent / PrefetchConfig); an acquire whose fetch
// would run past it is served from the residency cache's always-resident
// coarse floor instead of blocking.
inline constexpr std::uint64_t kNoFetchDeadline = ~std::uint64_t{0};

// Wall-clock nanoseconds the software model spent in each pipeline stage.
// Filled only when stage timing is enabled (StreamingRenderOptions /
// SequenceOptions); all-zero otherwise. Timing is diagnostic metadata: it
// never participates in image or stats determinism.
struct StageTimingsNs {
  std::uint64_t plan = 0;    // frame-plan build (voxel table), frame-level
  std::uint64_t vsu = 0;     // ray marching + topological ordering
  std::uint64_t filter = 0;  // coarse + fine hierarchical filtering
  std::uint64_t sort = 0;    // per-voxel bitonic depth sort
  std::uint64_t blend = 0;   // alpha blending + pixel resolve
  // Trace v6: the formerly-unattributed stall time. `fetch` is the wall
  // time render workers spent inside source.acquire() minus the decode
  // share — lock waits, disk reads, waiting on another worker's in-flight
  // fetch; near-zero for resident scenes. `decode` is payload decode
  // (column peel + codebook gathers) performed synchronously on the
  // acquiring worker; async-lane prefetch decode does NOT land here — it
  // never blocks a frame.
  std::uint64_t fetch = 0;
  std::uint64_t decode = 0;

  std::uint64_t total() const {
    return plan + vsu + filter + sort + blend + fetch + decode;
  }
  void accumulate(const StageTimingsNs& o) {
    plan += o.plan;
    vsu += o.vsu;
    filter += o.filter;
    sort += o.sort;
    blend += o.blend;
    fetch += o.fetch;
    decode += o.decode;
  }
};

// Monotone per-thread count of nanoseconds this thread spent decoding store
// payloads (written by stream::AssetStore's read path, differenced by the
// group pipeline around acquire() to split synchronous miss time into the
// `fetch` vs `decode` stage timings above).
inline std::uint64_t& thread_decode_ns() {
  thread_local std::uint64_t ns = 0;
  return ns;
}

// Residency-cache activity attributed to one frame (out-of-core rendering,
// src/stream/). All-zero for fully-resident frames. `bytes_fetched` is
// on-disk .sgsc payload traffic — the stream the DRAM model charges for
// fetches — not the decoded in-memory footprint.
struct StreamCacheStats {
  std::uint64_t hits = 0;          // acquires served from resident groups
  std::uint64_t misses = 0;        // acquires that had to fetch (stalls)
  std::uint64_t prefetches = 0;    // groups fetched ahead of demand
  std::uint64_t evictions = 0;     // groups dropped by the byte budget
  std::uint64_t bytes_fetched = 0; // store payload bytes read (miss + prefetch)

  // Tier breakdown (trace v4, all-zero for single-tier stores at L0 except
  // the tier-0 slots). Hits are tagged with the tier actually SERVED
  // (resident tier); misses and upgrades with the tier REQUESTED (which the
  // fetch pays for); prefetches and fetched bytes with the tier FETCHED.
  // `upgrades` counts the subset of misses that refetched an
  // already-resident group at a higher-fidelity tier; hence
  // hits + misses == accesses() still holds, and upgrades <= misses.
  std::array<std::uint64_t, kLodTierCount> tier_hits{};
  std::array<std::uint64_t, kLodTierCount> tier_misses{};
  std::array<std::uint64_t, kLodTierCount> tier_prefetches{};
  std::array<std::uint64_t, kLodTierCount> tier_bytes_fetched{};
  std::uint64_t upgrades = 0;

  // Failure domain (trace v5, all-zero on error-free runs). A fetch that
  // errors never terminates a session: the acquire is served *degraded* —
  // the group's stale lower-fidelity tier when one is resident, an empty
  // view otherwise (the frame renders without that group) — and the group
  // enters a retry-with-backoff state so one corrupt group cannot trigger
  // a refetch storm.
  std::uint64_t fetch_errors = 0;    // fetch attempts that failed (typed
                                     // StreamError from the store)
  std::uint64_t degraded_groups = 0; // acquires served degraded (stale tier
                                     // or empty view) because of an error
                                     // state; a subset of misses
  std::uint64_t failed_groups = 0;   // groups whose retry budget ran out
                                     // (negative-cached until process end);
                                     // for a session scope: distinct failed
                                     // groups this session touched

  // Zero-stall streaming (trace v7). A demand acquire whose fetch would
  // run past the frame's deadline is served from the cache's pinned coarse
  // floor (or a stale resident tier) instead of blocking — counted as a
  // hit at the served tier, with the fallback recorded here exactly once
  // per (frame, group) by the frame-aware front-ends (StreamingLoader /
  // serve::SessionSource), so per-session counters sum to the shared
  // cache's global value. A subset of hits; zero with a generous deadline,
  // a disabled floor, or a single-tier store.
  std::uint64_t coarse_fallbacks = 0;

  // Network-backed streaming (trace v8). `net_bytes` / `net_stall_ns` are
  // the bytes and transfer time of completed backend transfers paid by
  // demand misses and prefetches — the numerator and denominator of the
  // observable per-frame link throughput. Transfer time is virtual on a
  // SimulatedNetworkBackend and wall-clock on real I/O; fetch-scoped like
  // bytes_fetched (coarse-floor pinning and open-time metadata traffic are
  // excluded — the store backend's own stats() carries those).
  // `abr_demotions` counts plan groups demoted below their static-budget
  // tier by the LodPolicy ABR throughput term; it is accounted by the
  // frame-aware front-ends (StreamingLoader / serve::SessionSource) at
  // selection time, so the shared cache's own counter stays 0 and a server
  // report sums the sessions'.
  std::uint64_t net_bytes = 0;
  std::uint64_t net_stall_ns = 0;
  std::uint64_t abr_demotions = 0;

  std::uint64_t accesses() const { return hits + misses; }
  double hit_rate() const {
    return accesses() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(accesses());
  }
  void accumulate(const StreamCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    prefetches += o.prefetches;
    evictions += o.evictions;
    bytes_fetched += o.bytes_fetched;
    for (int t = 0; t < kLodTierCount; ++t) {
      tier_hits[t] += o.tier_hits[t];
      tier_misses[t] += o.tier_misses[t];
      tier_prefetches[t] += o.tier_prefetches[t];
      tier_bytes_fetched[t] += o.tier_bytes_fetched[t];
    }
    upgrades += o.upgrades;
    fetch_errors += o.fetch_errors;
    degraded_groups += o.degraded_groups;
    failed_groups += o.failed_groups;
    coarse_fallbacks += o.coarse_fallbacks;
    net_bytes += o.net_bytes;
    net_stall_ns += o.net_stall_ns;
    abr_demotions += o.abr_demotions;
  }
  // Per-frame delta between two cumulative snapshots of a source's counters
  // (all fields are monotone).
  StreamCacheStats delta_since(const StreamCacheStats& earlier) const {
    StreamCacheStats d;
    d.hits = hits - earlier.hits;
    d.misses = misses - earlier.misses;
    d.prefetches = prefetches - earlier.prefetches;
    d.evictions = evictions - earlier.evictions;
    d.bytes_fetched = bytes_fetched - earlier.bytes_fetched;
    for (int t = 0; t < kLodTierCount; ++t) {
      d.tier_hits[t] = tier_hits[t] - earlier.tier_hits[t];
      d.tier_misses[t] = tier_misses[t] - earlier.tier_misses[t];
      d.tier_prefetches[t] = tier_prefetches[t] - earlier.tier_prefetches[t];
      d.tier_bytes_fetched[t] =
          tier_bytes_fetched[t] - earlier.tier_bytes_fetched[t];
    }
    d.upgrades = upgrades - earlier.upgrades;
    d.fetch_errors = fetch_errors - earlier.fetch_errors;
    d.degraded_groups = degraded_groups - earlier.degraded_groups;
    d.failed_groups = failed_groups - earlier.failed_groups;
    d.coarse_fallbacks = coarse_fallbacks - earlier.coarse_fallbacks;
    d.net_bytes = net_bytes - earlier.net_bytes;
    d.net_stall_ns = net_stall_ns - earlier.net_stall_ns;
    d.abr_demotions = abr_demotions - earlier.abr_demotions;
    return d;
  }
};

// One voxel streamed for one pixel group.
struct VoxelWorkItem {
  std::uint32_t residents = 0;     // Gaussians streamed through the coarse phase
  std::uint32_t coarse_pass = 0;   // survivors entering the fine phase
  std::uint32_t fine_pass = 0;     // survivors entering sort + render
  std::uint64_t coarse_bytes = 0;  // DRAM bytes, coarse stream
  std::uint64_t fine_bytes = 0;    // DRAM bytes, fine stream
  std::uint64_t blend_ops = 0;     // pixel-blend evaluations in this voxel
};

// One pixel group (tile) of the frame.
struct GroupWork {
  std::uint32_t rays = 0;        // pixels in the group
  std::uint64_t dda_steps = 0;   // VSU ray-marching steps (incl. empty cells)
  std::uint32_t nodes = 0;       // voxels in the ordering DAG
  std::uint32_t edges = 0;       // dependency edges
  StageTimingsNs timing_ns;      // per-stage software time (opt-in)
  std::vector<VoxelWorkItem> voxels;  // in global rendering order
};

struct StreamingTrace {
  int group_size = 32;
  std::uint64_t pixel_count = 0;
  std::uint64_t frame_write_bytes = 0;
  // Per-frame VSU voxel-table build: every non-empty voxel is projected
  // once to bin it into the pixel groups it may affect. Zero for frames
  // that reused a cached FramePlan (sequence rendering).
  std::uint64_t voxel_table_steps = 0;
  // True when this frame reused the previous frame's FramePlan.
  bool plan_reused = false;
  // Frame-plan build time (opt-in, see StageTimingsNs).
  std::uint64_t plan_build_ns = 0;
  // Residency-cache deltas for this frame (all-zero when fully resident).
  StreamCacheStats cache;
  // Serving-host context (trace v9); defaults describe the single-viewer
  // paths. `scenes` is how many scene shards the host held when this frame
  // rendered; `admission_rejects` its cumulative admission-reject count at
  // commit; `queue_wait_ns` how long this frame's session sat in the
  // multiplexed scheduler's ready queue before a driver picked it up (0
  // when driven directly, without the scheduler).
  std::uint32_t scenes = 1;
  std::uint64_t admission_rejects = 0;
  std::uint64_t queue_wait_ns = 0;
  std::vector<GroupWork> groups;

  // --- aggregates ----------------------------------------------------------
  std::uint64_t total_residents() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.residents;
    return t;
  }
  std::uint64_t total_coarse_pass() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.coarse_pass;
    return t;
  }
  std::uint64_t total_fine_pass() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.fine_pass;
    return t;
  }
  std::uint64_t total_blend_ops() const {
    std::uint64_t t = 0;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.blend_ops;
    return t;
  }
  std::uint64_t total_dram_bytes() const {
    std::uint64_t t = frame_write_bytes;
    for (const auto& g : groups)
      for (const auto& v : g.voxels) t += v.coarse_bytes + v.fine_bytes;
    return t;
  }
  // Per-stage software time summed over all groups plus the plan build.
  StageTimingsNs total_stage_ns() const {
    StageTimingsNs t;
    t.plan = plan_build_ns;
    for (const auto& g : groups) t.accumulate(g.timing_ns);
    return t;
  }
};

}  // namespace sgs::core
