// Detailed LPDDR3 timing model: channels, banks, row buffers.
//
// The pipeline simulators use a flat effective-bandwidth constant
// (DramConfig.efficiency); this module computes where those constants come
// from. It models the paper's Micron 16 Gb LPDDR3 x4-channel part at the
// request level: sequential voxel streams mostly hit open rows and approach
// peak bandwidth, while tile-centric scatter pays activate/precharge on
// most requests. `effective_efficiency` lets tests assert that the flat
// constants used by the simulators are consistent with the detailed model.
#pragma once

#include <cstdint>
#include <vector>

namespace sgs::sim {

struct DramDetailConfig {
  // Micron 16 Gb LPDDR3-1600, 4 x 32-bit channels (paper Sec. V-A).
  int channels = 4;
  double bytes_per_cycle_per_channel = 6.4;  // at the 1 GHz accelerator clock
  // Row buffer (page) size per bank and the number of banks per channel.
  std::uint32_t row_bytes = 4096;
  int banks_per_channel = 8;
  // Timing in accelerator cycles (LPDDR3-1600: tRCD ~ 18 ns, tRP ~ 18 ns,
  // CAS ~ 15 ns at 1 GHz host clock).
  double t_rcd = 18.0;  // activate -> column access
  double t_rp = 18.0;   // precharge
  double t_cas = 15.0;  // column access latency (pipelined across bursts)
  // Channel interleaving granularity: consecutive addresses rotate channels
  // every this many bytes.
  std::uint32_t interleave_bytes = 256;
  // Energy (Micron power-calculator range).
  double activate_pj = 2500.0;        // per row activate+precharge pair
  double transfer_pj_per_byte = 25.0; // IO + core access
};

struct DramAccessStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  double cycles = 0.0;
  double energy_pj = 0.0;

  double row_hit_rate() const {
    const std::uint64_t total = row_hits + row_misses;
    return total == 0 ? 0.0 : static_cast<double>(row_hits) / static_cast<double>(total);
  }
};

class DramModel {
 public:
  explicit DramModel(const DramDetailConfig& config = {});

  const DramDetailConfig& config() const { return config_; }

  // Services a contiguous read/write of `bytes` starting at `address`.
  // Returns the cycles the transfer occupies (activates serialize with the
  // transfer on the owning bank; channel parallelism divides the payload).
  double access(std::uint64_t address, std::uint64_t bytes);

  const DramAccessStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  double peak_bytes_per_cycle() const {
    return config_.bytes_per_cycle_per_channel * config_.channels;
  }

  // Effective fraction of peak bandwidth achieved by repeatedly streaming
  // sequential chunks of `chunk_bytes` from random chunk-aligned addresses
  // (the access pattern of voxel streaming: one burst per voxel visit).
  static double effective_efficiency(std::uint64_t chunk_bytes,
                                     const DramDetailConfig& config = {});

 private:
  DramDetailConfig config_;
  DramAccessStats stats_;
  // Open row per (channel, bank); row id ~ address / row_bytes.
  std::vector<std::int64_t> open_row_;

  int bank_count() const { return config_.channels * config_.banks_per_channel; }
};

}  // namespace sgs::sim
