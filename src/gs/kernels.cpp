// Scalar reference kernels + runtime dispatchers.
//
// The scalar paths call the exact routines the pre-SIMD pipeline called
// (project_coarse / project_gaussian / eval_sh / gaussian_alpha) in the
// exact historical iteration order, so kScalar dispatch reproduces the
// frozen goldens bit for bit. The dispatchers re-read simd::active_isa()
// per call: a ScopedForceIsa around a render switches every kernel at once.
#include "gs/kernels.hpp"

#include <array>
#include <numeric>

#include "gs/sh.hpp"

namespace sgs::gs {

namespace {

void coarse_filter_batch_scalar(const GaussianColumns& cols, std::size_t first,
                                std::size_t count, const Camera& cam,
                                const FilterRect& rect,
                                std::vector<std::uint32_t>& out_idx) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t k = first + i;
    const auto proj = project_coarse({cols.px[k], cols.py[k], cols.pz[k]},
                                     cols.max_scale[k], cam);
    if (!proj) continue;
    if (!disc_intersects_rect(proj->mean, proj->radius, rect.x0, rect.y0,
                              rect.x1, rect.y1)) {
      continue;
    }
    out_idx.push_back(static_cast<std::uint32_t>(i));
  }
}

void fine_project_batch_scalar(const GaussianColumns& cols, std::size_t first,
                               std::span<const std::uint32_t> candidates,
                               const Camera& cam, const FilterRect& rect,
                               std::vector<FineSurvivor>& out) {
  for (const std::uint32_t local : candidates) {
    const Gaussian g = cols.gaussian(first + local);
    const auto proj = project_gaussian(g, cam);
    if (!proj) continue;
    if (!disc_intersects_rect(proj->mean, proj->radius, rect.x0, rect.y0,
                              rect.x1, rect.y1)) {
      continue;
    }
    out.push_back({*proj, local});
  }
}

void eval_sh_batch_scalar(const GaussianColumns& cols, std::size_t first,
                          std::span<const std::uint32_t> locals, Vec3f cam_pos,
                          Vec3f* out_colors) {
  std::array<Vec3f, kShCoeffCount> coeffs;
  for (std::size_t j = 0; j < locals.size(); ++j) {
    const std::size_t k = first + locals[j];
    const std::size_t base = k * static_cast<std::size_t>(kShCoeffCount);
    for (std::size_t c = 0; c < static_cast<std::size_t>(kShCoeffCount); ++c) {
      coeffs[c] = {cols.sh_r[base + c], cols.sh_g[base + c],
                   cols.sh_b[base + c]};
    }
    const Vec3f dir =
        Vec3f{cols.px[k], cols.py[k], cols.pz[k]} - cam_pos;
    out_colors[j] = eval_sh(coeffs, dir);
  }
}

BlendCounters blend_survivor_scalar(BlendPlanes& planes,
                                    std::vector<float>& max_depth,
                                    const ProjectedGaussian& proj,
                                    const PixelSpan& span, int px0, int py0,
                                    int row_w) {
  BlendCounters out;
  for (int py = span.y0; py < span.y1; ++py) {
    for (int px = span.x0; px < span.x1; ++px) {
      const auto pi =
          static_cast<std::size_t>((py - py0) * row_w + (px - px0));
      if (planes.t[pi] < kTransmittanceCutoff) continue;
      ++out.blend_ops;
      const float alpha = gaussian_alpha(
          proj,
          {static_cast<float>(px) + 0.5f, static_cast<float>(py) + 0.5f});
      if (alpha <= 0.0f) continue;
      out.contributed = true;
      ++out.contributions;
      float& md = max_depth[pi];
      if (proj.depth < md - 1e-6f) {
        ++out.violations;
        out.violated = true;
      } else {
        md = proj.depth;
      }
      // Same op order as gs::blend on a PixelAccumulator, split per plane.
      const float w = planes.t[pi] * alpha;
      planes.r[pi] += w * proj.color.x;
      planes.g[pi] += w * proj.color.y;
      planes.b[pi] += w * proj.color.z;
      planes.t[pi] *= (1.0f - alpha);
      if (planes.t[pi] < kTransmittanceCutoff) ++out.newly_saturated;
    }
  }
  return out;
}

void gather_codebook_column_scalar(float* dst, std::size_t dst_stride,
                                   const float* src, const std::uint32_t* idx,
                                   std::size_t n, std::size_t src_stride,
                                   std::size_t src_offset) {
  for (std::size_t k = 0; k < n; ++k) {
    dst[k * dst_stride] =
        src[static_cast<std::size_t>(idx[k]) * src_stride + src_offset];
  }
}

}  // namespace

void coarse_filter_batch(const GaussianColumns& cols, std::size_t first,
                         std::size_t count, const Camera& cam,
                         const FilterRect& rect,
                         std::vector<std::uint32_t>& out_idx) {
#ifdef SGS_KERNELS_X86
  switch (simd::active_isa()) {
    case simd::IsaLevel::kAvx2:
      return detail::coarse_filter_batch_avx2(cols, first, count, cam, rect,
                                              out_idx);
    case simd::IsaLevel::kSse2:
      return detail::coarse_filter_batch_sse2(cols, first, count, cam, rect,
                                              out_idx);
    default:
      break;
  }
#endif
  coarse_filter_batch_scalar(cols, first, count, cam, rect, out_idx);
}

void fine_project_batch(const GaussianColumns& cols, std::size_t first,
                        std::span<const std::uint32_t> candidates,
                        const Camera& cam, const FilterRect& rect,
                        std::vector<FineSurvivor>& out) {
#ifdef SGS_KERNELS_X86
  // The fine phase vectorizes at AVX2 only; kSse2 shares the scalar path.
  if (simd::active_isa() == simd::IsaLevel::kAvx2) {
    return detail::fine_project_batch_avx2(cols, first, candidates, cam, rect,
                                           out);
  }
#endif
  fine_project_batch_scalar(cols, first, candidates, cam, rect, out);
}

void eval_sh_batch(const GaussianColumns& cols, std::size_t first,
                   std::span<const std::uint32_t> locals, Vec3f cam_pos,
                   Vec3f* out_colors) {
#ifdef SGS_KERNELS_X86
  if (simd::active_isa() == simd::IsaLevel::kAvx2) {
    return detail::eval_sh_batch_avx2(cols, first, locals, cam_pos,
                                      out_colors);
  }
#endif
  eval_sh_batch_scalar(cols, first, locals, cam_pos, out_colors);
}

BlendCounters blend_survivor(BlendPlanes& planes, std::vector<float>& max_depth,
                             const ProjectedGaussian& proj,
                             const PixelSpan& span, int px0, int py0,
                             int row_w) {
#ifdef SGS_KERNELS_X86
  switch (simd::active_isa()) {
    case simd::IsaLevel::kAvx2:
      return detail::blend_survivor_avx2(planes, max_depth, proj, span, px0,
                                         py0, row_w);
    case simd::IsaLevel::kSse2:
      return detail::blend_survivor_sse2(planes, max_depth, proj, span, px0,
                                         py0, row_w);
    default:
      break;
  }
#endif
  return blend_survivor_scalar(planes, max_depth, proj, span, px0, py0, row_w);
}

void gather_codebook_column(float* dst, std::size_t dst_stride,
                            const float* src, const std::uint32_t* idx,
                            std::size_t n, std::size_t src_stride,
                            std::size_t src_offset) {
#ifdef SGS_KERNELS_X86
  if (simd::active_isa() == simd::IsaLevel::kAvx2) {
    return detail::gather_codebook_column_avx2(dst, dst_stride, src, idx, n,
                                               src_stride, src_offset);
  }
#endif
  gather_codebook_column_scalar(dst, dst_stride, src, idx, n, src_stride,
                                src_offset);
}

}  // namespace sgs::gs
