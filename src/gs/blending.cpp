#include "gs/blending.hpp"

#include <cmath>

namespace sgs::gs {

float gaussian_alpha(const ProjectedGaussian& g, Vec2f pixel) {
  const Vec2f d = pixel - g.mean;
  const float power = 0.5f * g.conic.quadratic(d);
  if (power < 0.0f) return 0.0f;  // non-PSD conic fallout; treat as empty
  float alpha = g.opacity * std::exp(-power);
  if (alpha < kMinBlendAlpha) return 0.0f;
  if (alpha > kAlphaClamp) alpha = kAlphaClamp;
  return alpha;
}

}  // namespace sgs::gs
