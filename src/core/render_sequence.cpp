#include "core/render_sequence.hpp"

#include <utility>

namespace sgs::core {

SequenceRenderer::SequenceRenderer(const StreamingScene& scene,
                                   SequenceOptions options)
    : scene_(&scene), options_(std::move(options)) {}

StreamingRenderResult SequenceRenderer::render(const gs::Camera& camera) {
  const bool reuse =
      plan_.has_value() &&
      plan_->reusable_for(camera, options_.reuse_max_translation,
                          options_.reuse_max_rotation_rad);
  std::uint64_t plan_ns = 0;
  if (!reuse) {
    plan_ = FramePlan::build_timed(scene_->grid(), camera,
                                   scene_->config().group_size,
                                   options_.plan_margin_px,
                                   options_.render.collect_stage_timing,
                                   plan_ns);
    ++stats_.plans_built;
  } else {
    ++stats_.plans_reused;
  }

  StreamingRenderResult result =
      scheduler_.render_frame(*scene_, camera, *plan_, options_.render);
  result.trace.plan_reused = reuse;
  result.trace.plan_build_ns = plan_ns;
  if (reuse) {
    // The voxel table was not rebuilt this frame: the VSU is charged zero
    // table steps, which is exactly the reuse win the sim sees.
    result.trace.voxel_table_steps = 0;
  }
  return result;
}

SequenceResult render_sequence(const StreamingScene& scene,
                               const std::vector<gs::Camera>& cameras,
                               const SequenceOptions& options) {
  SequenceRenderer renderer(scene, options);
  SequenceResult out;
  out.frames.reserve(cameras.size());
  for (const gs::Camera& cam : cameras) {
    out.frames.push_back(renderer.render(cam));
  }
  out.stats = renderer.stats();
  return out;
}

}  // namespace sgs::core
