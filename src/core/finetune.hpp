// Boundary-aware fine-tuning (paper Sec. III-B, Eq. 1-2, Fig. 7).
//
// The paper fine-tunes with  L = L_origin + beta * L_CBP  where
// L_CBP = (1/N) sum_i S_i * T_i  shrinks the max scale S_i of Gaussians that
// rendered out of depth order (T_i = 1), while keeping positions fixed.
//
// This reproduction optimizes the same objective without a differentiable
// rasterizer (substitution documented in DESIGN.md §1):
//   * T_i is *measured*: a streaming render flags every Gaussian that
//     contributed to a pixel with depth below that pixel's running maximum —
//     exactly the indicator of Eq. 2.
//   * the L_CBP gradient step multiplies flagged Gaussians' scales by
//     (1 - lr * beta) per iteration;
//   * L_origin is proxied by a parameter-space anchor that pulls unflagged
//     Gaussians back toward their original scales, so shrinkage costs
//     appearance only while a Gaussian is actually causing order errors.
// Quality is tracked as PSNR of the streaming render against the original
// model's tile-centric render (the reproduction's ground-truth proxy).
#pragma once

#include <vector>

#include "common/image.hpp"
#include "core/streaming_renderer.hpp"
#include "gs/camera.hpp"

namespace sgs::core {

struct FinetuneConfig {
  // Paper Sec. V-A: beta = 0.05, 3000 fine-tuning iterations.
  float beta = 0.05f;
  int iterations = 3000;
  // Descent step size on the scale parameters. lr*beta is the per-iteration
  // multiplicative shrink of a violating Gaussian (~0.35% at defaults, so a
  // Gaussian violating through a whole 150-iteration refresh window shrinks
  // by ~40% before re-measurement).
  float lr = 0.07f;
  // T_i is re-measured by rendering every `refresh_every` iterations (a
  // full render per SGD step would be wasteful; violator sets change
  // slowly).
  int refresh_every = 150;
  // Anchor pull toward original scales for non-violating Gaussians (the
  // L_origin proxy). Default 0: ex-violators keep their converged size —
  // regrowth makes the violator set oscillate between refreshes.
  float anchor_weight = 0.0f;
  // Floor on the shrink factor so scales stay strictly positive.
  float min_scale_factor = 0.05f;
};

struct FinetunePoint {
  int iteration = 0;
  // Measured fraction of blended contributions that were out of depth order
  // (the paper's "error Gaussian ratio").
  double violation_ratio = 0.0;
  // Fraction of Gaussians whose 3-sigma extent crosses a voxel boundary.
  double cross_boundary_ratio = 0.0;
  // Streaming render vs. the tile-centric render of the *current* model:
  // the rendering-quality recovery Fig. 7 tracks. Ordering errors are the
  // only difference between the two pipelines on the same model, so this
  // rises exactly as the violation ratio falls. (The paper measures against
  // ground-truth photos, which do not exist for procedural scenes; see
  // EXPERIMENTS.md.)
  double psnr_db = 0.0;
  // Streaming render vs. the tile render of the *initial* model: the net
  // appearance cost of the shrunk scales (the L_origin term's budget).
  double psnr_vs_initial_db = 0.0;
};

struct FinetuneResult {
  gs::GaussianModel model;
  std::vector<FinetunePoint> history;  // one point per refresh (incl. iter 0)
};

// `reference` is the ground-truth proxy image (tile-centric render of
// `initial`). `streaming_config` controls voxelization; VQ is forced off
// during fine-tuning (the paper quantizes after boundary fine-tuning).
FinetuneResult boundary_aware_finetune(const gs::GaussianModel& initial,
                                       const StreamingConfig& streaming_config,
                                       const gs::Camera& camera,
                                       const Image& reference,
                                       const FinetuneConfig& config);

}  // namespace sgs::core
