// The STREAMINGGS fully streaming renderer (paper Sec. III).
//
// Offline, StreamingScene partitions the model into voxels, lays the two
// parameter halves out voxel-contiguously, and (optionally) trains the VQ
// codebooks. Per frame, each pixel group (a) ray-marches its pixels through
// the grid (VSU), (b) topologically sorts the intersected voxels, then (c)
// streams each voxel through hierarchical filtering, a per-voxel depth sort,
// and on-chip alpha blending. Only final pixels are written back: the
// pipeline has *zero* intermediate DRAM traffic, the paper's core claim.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/image.hpp"
#include "core/streaming_trace.hpp"
#include "gs/camera.hpp"
#include "gs/gaussian.hpp"
#include "gs/gaussian_soa.hpp"
#include "voxel/grid.hpp"
#include "voxel/layout.hpp"
#include "vq/quantized_model.hpp"

namespace sgs::core {

struct StreamingConfig {
  // Paper Sec. V-A: voxel size 2.0 for real-world scenes, 0.4 for synthetic.
  float voxel_size = 2.0f;
  // Pixel-group edge in pixels. Groups are the unit of voxel streaming; the
  // blending stage inside a group still operates per pixel. 64x64 is the
  // largest group whose accumulators (16 B color/transmittance + 4 B depth
  // per pixel = 80 KB) fit the paper's 89 KB inter-stage buffer.
  int group_size = 64;
  // VSU ray-sampling stride: voxel discovery and ordering march every
  // stride-th pixel ray (plus the group's edge rays). Voxels project tens of
  // pixels wide, so a sparse ray grid finds the same voxel set at a fraction
  // of the VSU work; stride 1 degenerates to exact per-pixel traversal.
  int ray_stride = 8;
  // Disables give the paper's ablation variants: w/o CGF skips the
  // coarse-grained filter (every resident is fine-filtered), w/o VQ streams
  // raw 220-byte fine records instead of codebook indices.
  bool use_coarse_filter = true;
  bool use_vq = true;
  vq::VqConfig vq;
  Vec3f background{0.0f, 0.0f, 0.0f};
};

// Offline-prepared scene: grid + DRAM layout + optional quantization.
class StreamingScene {
 public:
  static StreamingScene prepare(const gs::GaussianModel& model,
                                const StreamingConfig& config);

  const StreamingConfig& config() const { return config_; }
  const voxel::VoxelGrid& grid() const { return grid_; }
  const voxel::DataLayout& layout() const { return layout_; }

  // Model whose parameters the fine phase actually uses: the VQ-decoded
  // model when quantization is on, otherwise the original.
  const gs::GaussianModel& render_model() const { return render_model_; }
  const gs::GaussianModel& original_model() const { return original_model_; }
  const vq::QuantizedModel* quantized() const { return quantized_.get(); }

  // Max scale stored in the coarse stream for Gaussian i (decoded-aware, so
  // the coarse filter stays conservative under VQ).
  float coarse_max_scale(std::uint32_t i) const {
    return coarse_max_scale_[i];
  }
  // The whole coarse-stream scale array (model order); empty for scenes
  // assembled from_parts.
  std::span<const float> coarse_max_scales() const { return coarse_max_scale_; }

  // SoA render parameters, grouped: the records of dense voxel v occupy the
  // contiguous slice [group_offset(v), group_offset(v + 1)) in the same
  // order as grid().gaussians_in(v). This is the layout the batched kernels
  // stream; empty for scenes assembled from_parts.
  const gs::GaussianColumns& group_columns() const { return group_columns_; }
  std::size_t group_offset(voxel::DenseVoxelId v) const {
    return group_offsets_[v];
  }

  // True when the Gaussian parameters are resident in this scene
  // (render_model() is populated). Scenes assembled from_parts carry only
  // grid + layout + config and must be rendered through a cache-backed
  // GroupSource (src/stream/).
  bool params_resident() const { return !render_model_.empty(); }

  // Assembles a model-free scene around an out-of-core store's metadata:
  // grid, DRAM layout, and rendering config only. render_model(),
  // original_model(), quantized(), and coarse_max_scales() stay empty.
  static StreamingScene from_parts(const StreamingConfig& config,
                                   voxel::VoxelGrid grid);

 private:
  StreamingConfig config_;
  gs::GaussianModel original_model_;
  gs::GaussianModel render_model_;
  std::unique_ptr<vq::QuantizedModel> quantized_;
  voxel::VoxelGrid grid_;
  voxel::DataLayout layout_{voxel::VoxelGrid(), false};
  std::vector<float> coarse_max_scale_;
  gs::GaussianColumns group_columns_;
  std::vector<std::size_t> group_offsets_;
};

struct StreamingStats {
  // DRAM traffic (the streaming pipeline has exactly three streams).
  std::uint64_t coarse_read_bytes = 0;
  std::uint64_t fine_read_bytes = 0;
  std::uint64_t frame_write_bytes = 0;

  // Filtering funnel.
  std::uint64_t gaussians_streamed = 0;  // voxel residents entering coarse
  std::uint64_t coarse_pass = 0;
  std::uint64_t fine_pass = 0;

  // Rendering.
  std::uint64_t blend_ops = 0;
  std::uint64_t blended_contributions = 0;  // alpha > 0 blends
  std::uint64_t depth_order_violations = 0; // out-of-order contributions
  // Unique Gaussians that contributed / contributed out of depth order at
  // least once this frame (the paper's "error Gaussian" counting unit).
  std::uint64_t gaussians_blended_unique = 0;
  std::uint64_t gaussians_violating_unique = 0;

  // VSU.
  std::uint64_t dda_steps = 0;
  std::uint64_t voxel_visits = 0;  // total (group, voxel) pairs processed
  std::uint64_t topo_nodes = 0;
  std::uint64_t topo_edges = 0;
  std::uint64_t cycle_breaks = 0;

  std::uint32_t max_voxel_residents = 0;  // buffer-sizing diagnostic

  std::uint64_t total_dram_bytes() const {
    return coarse_read_bytes + fine_read_bytes + frame_write_bytes;
  }
  // Fraction of residents removed by hierarchical filtering (the paper
  // reports 76.3%).
  double filtered_fraction() const {
    return gaussians_streamed == 0
               ? 0.0
               : 1.0 - static_cast<double>(fine_pass) /
                           static_cast<double>(gaussians_streamed);
  }
  // The paper's "error Gaussian ratio" (Fig. 7): fraction of rendered
  // Gaussians that contributed out of depth order at least once (the
  // measured T_i of Eq. 2, counted per Gaussian).
  double violation_ratio() const {
    return gaussians_blended_unique == 0
               ? 0.0
               : static_cast<double>(gaussians_violating_unique) /
                     static_cast<double>(gaussians_blended_unique);
  }
  // Contribution-level variant (every out-of-order alpha blend counts).
  double violation_contribution_ratio() const {
    return blended_contributions == 0
               ? 0.0
               : static_cast<double>(depth_order_violations) /
                     static_cast<double>(blended_contributions);
  }
};

struct StreamingRenderResult {
  Image image;
  StreamingStats stats;
  StreamingTrace trace;
  // Model indices of Gaussians that contributed out of depth order at least
  // once (only filled when collect_violators is set; feeds fine-tuning).
  std::vector<std::uint32_t> violators;
  // Wall-clock time of the whole frame (plan + render + source brackets),
  // filled by SequenceRenderer::render — the per-session latency sample a
  // scene server aggregates into p50/p95. Zero for single-frame
  // render_streaming calls. Diagnostic metadata: never deterministic, never
  // part of image or stats comparisons.
  std::uint64_t frame_wall_ns = 0;
};

struct StreamingRenderOptions {
  bool collect_violators = false;
  // Overrides the scene config's coarse-filter flag when set (lets ablation
  // variants share one prepared scene; preparation only depends on VQ).
  std::optional<bool> coarse_filter_override;
  // Records wall-clock per-stage timings into the trace (StageTimingsNs).
  // Off by default: the clock reads sit in the per-voxel hot loop. Timing is
  // metadata only — image bytes and stats are identical either way.
  bool collect_stage_timing = false;
};

StreamingRenderResult render_streaming(
    const StreamingScene& scene, const gs::Camera& camera,
    const StreamingRenderOptions& options = {});

}  // namespace sgs::core
