#include "core/voxel_order.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

namespace sgs::core {

VoxelOrderResult topological_voxel_order(
    const std::vector<std::vector<voxel::DenseVoxelId>>& per_ray_orders,
    const std::function<float(voxel::DenseVoxelId)>& depth_key) {
  VoxelOrderResult result;

  // Local node numbering (the group usually touches a tiny subset of the
  // grid, so dense per-grid arrays would be wasteful).
  std::unordered_map<voxel::DenseVoxelId, std::uint32_t> local_of;
  std::vector<voxel::DenseVoxelId> id_of;
  auto intern = [&](voxel::DenseVoxelId v) {
    const auto [it, inserted] = local_of.try_emplace(v, static_cast<std::uint32_t>(id_of.size()));
    if (inserted) id_of.push_back(v);
    return it->second;
  };

  // Dependency edges from consecutive voxels of each ray, deduplicated.
  std::unordered_set<std::uint64_t> edge_set;
  std::vector<std::vector<std::uint32_t>> adj;
  std::vector<std::uint32_t> in_degree;
  auto ensure_node = [&](std::uint32_t n) {
    if (n >= adj.size()) {
      adj.resize(n + 1);
      in_degree.resize(n + 1, 0);
    }
  };
  for (const auto& ray : per_ray_orders) {
    for (std::size_t i = 0; i < ray.size(); ++i) {
      const std::uint32_t cur = intern(ray[i]);
      ensure_node(cur);
      if (i == 0) continue;
      const std::uint32_t prev = intern(ray[i - 1]);
      ensure_node(prev);
      if (prev == cur) continue;  // defensive; DDA never revisits a cell
      const std::uint64_t key = (static_cast<std::uint64_t>(prev) << 32) | cur;
      if (edge_set.insert(key).second) {
        adj[prev].push_back(cur);
        ++in_degree[cur];
      }
    }
  }
  result.node_count = id_of.size();
  result.edge_count = edge_set.size();
  if (id_of.empty()) return result;

  // Kahn's algorithm with a min-heap on camera distance: among all ready
  // voxels, emit the closest first, which keeps the global order close to
  // each ray's own front-to-back order.
  std::vector<float> depth(id_of.size());
  for (std::size_t i = 0; i < id_of.size(); ++i) depth[i] = depth_key(id_of[i]);

  using HeapEntry = std::pair<float, std::uint32_t>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> ready;
  std::vector<bool> emitted(id_of.size(), false);
  for (std::uint32_t n = 0; n < id_of.size(); ++n) {
    if (in_degree[n] == 0) ready.emplace(depth[n], n);
  }

  result.order.reserve(id_of.size());
  std::size_t remaining = id_of.size();
  while (remaining > 0) {
    if (ready.empty()) {
      // Cycle: force-release the closest un-emitted node.
      std::uint32_t pick = 0;
      float best = std::numeric_limits<float>::infinity();
      for (std::uint32_t n = 0; n < id_of.size(); ++n) {
        if (!emitted[n] && depth[n] < best) {
          best = depth[n];
          pick = n;
        }
      }
      ++result.cycle_breaks;
      in_degree[pick] = 0;
      ready.emplace(depth[pick], pick);
    }
    const auto [d, n] = ready.top();
    ready.pop();
    (void)d;
    if (emitted[n]) continue;
    emitted[n] = true;
    --remaining;
    result.order.push_back(id_of[n]);
    for (std::uint32_t m : adj[n]) {
      if (emitted[m]) continue;
      if (in_degree[m] > 0 && --in_degree[m] == 0) ready.emplace(depth[m], m);
    }
  }
  return result;
}

bool order_respects_rays(
    const std::vector<voxel::DenseVoxelId>& order,
    const std::vector<std::vector<voxel::DenseVoxelId>>& per_ray_orders) {
  std::unordered_map<voxel::DenseVoxelId, std::size_t> pos;
  pos.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& ray : per_ray_orders) {
    for (std::size_t i = 1; i < ray.size(); ++i) {
      const auto a = pos.find(ray[i - 1]);
      const auto b = pos.find(ray[i]);
      if (a == pos.end() || b == pos.end()) return false;
      if (a->second >= b->second) return false;
    }
  }
  return true;
}

}  // namespace sgs::core
