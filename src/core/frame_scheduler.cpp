#include "core/frame_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <stdexcept>
#include <unordered_set>

#include "common/parallel.hpp"

namespace sgs::core {

FrameScheduler::FrameScheduler()
    : contexts_(static_cast<std::size_t>(parallelism())) {}

StreamingRenderResult FrameScheduler::render_frame(
    const StreamingScene& scene, const gs::Camera& camera,
    const FramePlan& plan, const StreamingRenderOptions& options,
    stream::GroupSource* source) {
  // A plan binned for different image geometry would tile this frame
  // wrongly (and silently): reject it here, at the last common gate of the
  // single-frame and sequence paths.
  const gs::Camera& pc = plan.camera();
  if (pc.width() != camera.width() || pc.height() != camera.height() ||
      pc.fx() != camera.fx() || pc.fy() != camera.fy() ||
      pc.cx() != camera.cx() || pc.cy() != camera.cy()) {
    throw std::invalid_argument(
        "render_frame: camera image geometry does not match the plan's");
  }

  StreamingConfig cfg = scene.config();
  if (options.coarse_filter_override) {
    cfg.use_coarse_filter = *options.coarse_filter_override;
  }

  const int width = camera.width();
  const int height = camera.height();
  const std::size_t group_count = plan.group_count();

  StreamingRenderResult result;
  result.image = Image(width, height, cfg.background);
  result.trace.group_size = plan.group_size();
  result.trace.pixel_count = static_cast<std::uint64_t>(width) * height;
  result.trace.groups.resize(group_count);
  result.trace.voxel_table_steps = plan.voxel_table_steps();

  GroupPipelineOptions pipe_options;
  pipe_options.use_coarse_filter = cfg.use_coarse_filter;
  pipe_options.ray_stride = cfg.ray_stride;
  pipe_options.collect_stage_timing = options.collect_stage_timing;

  // Per-group result slots: any dynamic schedule is race-free (disjoint
  // slots + disjoint pixel regions), and the sequential merge below makes
  // every counter deterministic.
  std::vector<StreamingStats> group_stats(group_count);
  std::vector<std::vector<std::uint32_t>> group_violators(group_count);
  std::vector<std::vector<std::uint32_t>> group_contributors(group_count);

  // The pool may be resized between frames (set_parallelism in tests);
  // follow it so worker indices always have an arena.
  const auto workers = static_cast<std::size_t>(parallelism());
  if (contexts_.size() < workers) contexts_.resize(workers);

  // Default source: the fully-resident scene. A scene assembled from store
  // metadata (from_parts) has no parameters to read — rendering it without
  // a cache-backed source would dereference an empty model.
  if (source == nullptr && !scene.params_resident()) {
    throw std::invalid_argument(
        "render_frame: model-free scene requires a cache-backed GroupSource");
  }
  std::optional<stream::ResidentGroupSource> resident;
  if (source == nullptr) resident.emplace(scene);
  stream::GroupSource& src = source ? *source : *resident;

  parallel_for_workers(0, group_count, [&](int worker, std::size_t gi) {
    GroupContext& ctx = contexts_[static_cast<std::size_t>(worker)];
    GroupPipeline::render_group(scene, camera, plan, gi, pipe_options, src,
                                ctx, result.trace.groups[gi], group_stats[gi],
                                result.image);
    group_violators[gi] = ctx.violators;
    group_contributors[gi] = ctx.contributors;
  });

  // Deterministic merge in group-index order.
  StreamingStats total;
  std::unordered_set<std::uint32_t> violator_set;
  std::unordered_set<std::uint32_t> contributor_set;
  for (std::size_t gi = 0; gi < group_count; ++gi) {
    const StreamingStats& local = group_stats[gi];
    total.coarse_read_bytes += local.coarse_read_bytes;
    total.fine_read_bytes += local.fine_read_bytes;
    total.frame_write_bytes += local.frame_write_bytes;
    total.gaussians_streamed += local.gaussians_streamed;
    total.coarse_pass += local.coarse_pass;
    total.fine_pass += local.fine_pass;
    total.blend_ops += local.blend_ops;
    total.blended_contributions += local.blended_contributions;
    total.depth_order_violations += local.depth_order_violations;
    total.dda_steps += local.dda_steps;
    total.voxel_visits += local.voxel_visits;
    total.topo_nodes += local.topo_nodes;
    total.topo_edges += local.topo_edges;
    total.cycle_breaks += local.cycle_breaks;
    total.max_voxel_residents =
        std::max(total.max_voxel_residents, local.max_voxel_residents);
    for (std::uint32_t v : group_violators[gi]) violator_set.insert(v);
    for (std::uint32_t c : group_contributors[gi]) contributor_set.insert(c);
  }

  // Groups tile the image exactly once: the per-group RGBA8 write-backs must
  // sum to the full frame.
  assert(total.frame_write_bytes ==
         static_cast<std::uint64_t>(width) * height * 4);

  total.gaussians_blended_unique = contributor_set.size();
  total.gaussians_violating_unique = violator_set.size();
  result.stats = total;
  result.trace.frame_write_bytes = total.frame_write_bytes;
  if (options.collect_violators) {
    result.violators.assign(violator_set.begin(), violator_set.end());
    std::sort(result.violators.begin(), result.violators.end());
  }
  return result;
}

}  // namespace sgs::core
