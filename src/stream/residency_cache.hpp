// ResidencyCache: decoded voxel groups held under a byte budget, shareable
// by any number of concurrent viewer sessions.
//
// The cache is the GroupSource an out-of-core render uses: acquire() pins a
// group and returns its decoded view, fetching from the AssetStore on a
// miss (a demand stall — the render worker blocks on the disk read). A
// loader thread can warm the cache ahead of demand through prefetch().
//
// Entries are tier-tagged (LOD): each group is resident at exactly one
// payload tier at a time. A request for tier t is satisfied by any
// resident tier <= t; a request better than the resident tier refetches
// just that group (an upgrade). The per-tier hit/miss/prefetch/byte
// counters and the upgrade count surface in stats() (trace v4).
//
// Eviction is strict LRU over unprotected groups: a group is protected
// while (a) any acquire is outstanding on it (`pins`), or (b) at least one
// in-flight FramePlan claims it (`plan_pins`, a refcount — several sessions
// may pin the same group, and eviction respects the *union* of their
// working sets). Plan pins are taken with pin_plan() and dropped with
// unpin_plan(); the single-session GroupSource bracket (begin_frame /
// end_frame) is implemented on top of that pair. Pinned groups may push
// residency above the budget; the overshoot drains at the next unpin.
//
// The budget counts decoded in-memory bytes (DecodedGroup::resident_bytes),
// while bytes_fetched counts on-disk payload bytes — the two sides of the
// memory/traffic trade the simulator prices.
//
// Thread-safety: one mutex guards all cache state; every public method is
// safe to call concurrently from any thread EXCEPT the GroupSource bracket
// begin_frame/end_frame, which keeps its working set in one member slot
// and therefore admits exactly one driving session (the PR 2 single-viewer
// path). Multi-session callers must take their pins through pin_plan /
// unpin_plan with per-session working sets (serve::SessionSource does).
// Fetches (disk read + decode) run *outside* the lock with the entry
// marked `loading`, so concurrent acquires of other groups proceed, and
// concurrent acquires of the *same* group sleep on a condition variable
// instead of fetching twice (no double-decode, ever). pin/unpin/acquire/
// release never block on disk unless they themselves miss.
//
// Attribution: the cumulative counters in stats() are global across all
// callers. Multi-session front-ends (serve::SessionSource) use
// acquire_outcome() / the prefetch byte out-param to additionally attribute
// each hit, miss, and fetched byte to the session that caused it.
//
// Determinism: for a fixed request trace from one thread, hits, misses,
// evictions, and the resident set are fully reproducible (pure LRU, no
// clocks). Concurrent traces keep counters exact but their interleaving is
// scheduling-dependent; the *rendered image* never depends on cache state.
//
// Failure domain: a fetch that errors (typed StreamError from the store)
// never terminates the caller and never wedges the entry — loading is
// cleared and waiters woken on EVERY exit path (RAII). The acquire is
// served *degraded*: the group's stale resident tier when one is there
// (an upgrade that failed), an empty view otherwise (the frame renders
// without that group). Failure state is per (group, tier) — errors are
// tier-scoped on disk (one corrupt payload does not poison the group's
// other tiers), so a group whose L0 is corrupt still streams at L1/L2.
// A failing tier enters a deterministic retry-with-backoff state — each
// failure doubles a countdown of denied requests before the next disk
// attempt — and after max_fetch_attempts failures that tier is
// negative-cached for the cache's lifetime, so one corrupt payload costs
// a bounded number of disk touches total, never a refetch storm.
// Counters: fetch_errors / degraded_groups / failed_groups in stats()
// (trace v5; failed_groups counts groups with >= 1 failed tier, once).
//
// Residency hierarchy (the zero-stall floor): when the config carries a
// coarse_floor_budget_bytes and the store has a cheaper-than-L0 tier
// (AssetStore::has_coarse_tier), construction pins every group's CHEAPEST
// tier into a separate floor arena — charged against the floor budget, not
// budget_bytes; never in the LRU; never evictable — so acquire can always
// return *something* without touching the disk. Deadline-aware acquires
// (acquire_outcome with a deadline on core::stage_clock_ns) that would
// have to block past the deadline are served the group's best
// immediately-available payload instead: a stale resident tier when one is
// there, the floor otherwise. Such serves count as hits at the served tier
// with outcome.coarse_fallback set; frame-aware front-ends dedup the flag
// per (frame, group) into stats().coarse_fallbacks (trace v7) via
// record_coarse_fallback(). The floor also backstops error-state serves:
// a degraded acquire with a floor payload renders the coarse tier instead
// of an empty view. The floor is all-or-nothing against its budget
// (predicted from the directory before any read; too big = disabled, the
// pre-floor blocking behavior), but per-group read errors at open only
// leave holes. One-time open traffic is reported by coarse_floor_bytes(),
// not mixed into stats() — per-session prefetch attribution must keep
// summing to the global counters.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "stream/asset_store.hpp"
#include "stream/group_source.hpp"
#include "stream/stream_error.hpp"

namespace sgs::stream {

struct ResidencyCacheConfig {
  // Decoded-bytes budget. Groups beyond it are evicted LRU-first; pinned
  // groups are never evicted even when over budget.
  std::uint64_t budget_bytes = 64ull << 20;
  // Failure domain. A (group, tier) fetch may fail this many times before
  // that tier is negative-cached for good (failed_groups counts the group
  // once); between failures, retries back off exponentially, measured in
  // *denied requests* (not wall time, so behavior stays deterministic per
  // request trace): after failure k the next retry_backoff_base << (k-1)
  // fetch-wanting requests (capped at retry_backoff_cap) are served
  // degraded without touching the disk.
  int max_fetch_attempts = 3;
  std::uint32_t retry_backoff_base = 4;
  std::uint32_t retry_backoff_cap = 64;
  // Always-resident coarse floor, a SEPARATE budget from budget_bytes
  // (decoded bytes, like the main budget — a few % of the scene is the
  // intended scale). 0 disables the floor. When > 0 and the store has a
  // coarse tier, construction pins every group's cheapest tier for the
  // cache's lifetime; when the directory-predicted floor exceeds this
  // budget the floor is disabled outright (all-or-nothing, so a partially
  // pinned floor can never masquerade as zero-stall coverage).
  std::uint64_t coarse_floor_budget_bytes = 0;
};

// What one prefetch request actually did.
enum class PrefetchResult : std::uint8_t {
  kFetched = 0,     // fetched (or upgraded) the group at the asked tier
  kSkipped,         // nothing to do: resident/in-flight/pinned by readers
  kErrored,         // the fetch was attempted and failed (typed error)
  kNegativeCached,  // denied without disk IO: group failed or backing off
};

// What one acquire actually did — the per-session attribution record.
struct AcquireOutcome {
  GroupView view;
  // The group this outcome describes (failure attribution keys on it).
  voxel::DenseVoxelId group = 0;
  // True when this call paid the demand fetch itself (a stall for the
  // calling worker). An acquire that waited on someone else's in-flight
  // fetch counts as a hit: the group arrived without this caller paying.
  bool missed = false;
  // On-disk payload bytes this call fetched (non-zero only when `missed`).
  std::uint64_t bytes_fetched = 0;
  // Backend transfer time for those bytes (non-zero only when `missed`;
  // virtual on a simulated link) — what the caller's BandwidthEstimator
  // observes and its per-session net_stall_ns accumulates.
  std::uint64_t fetch_ns = 0;
  // LOD attribution: the tier the caller asked for, the tier the returned
  // view actually carries (served <= requested — a resident better tier
  // satisfies a worse request — EXCEPT degraded serves, which may return a
  // stale worse tier or, with served_tier == -1, an empty view), and
  // whether this call refetched an already-resident group at higher
  // fidelity.
  int requested_tier = 0;
  int served_tier = 0;
  bool upgraded = false;
  // Failure attribution. `degraded`: this acquire could not be served at
  // the requested-or-better tier because of an error state — the view is
  // the stale resident payload or empty. `fetch_errored`: this very call
  // attempted the fetch and it failed (`error` carries the typed reason —
  // by shared pointer, so degraded serves cost no allocation under the
  // cache mutex). `group_failed`: the requested tier has exhausted its
  // retry budget and is negative-cached.
  bool degraded = false;
  bool fetch_errored = false;
  bool group_failed = false;
  std::shared_ptr<const StreamError> error;
  // Deadline fallback: the fetch this acquire wanted would have run past
  // the caller's deadline, so the view was served from the group's best
  // immediately-available payload (a stale resident tier, else the pinned
  // coarse floor) without touching the disk. Counted as a hit at
  // served_tier; the caller's frame front-end dedups this flag per
  // (frame, group) into StreamCacheStats::coarse_fallbacks.
  bool coarse_fallback = false;
};

class ResidencyCache final : public GroupSource {
 public:
  ResidencyCache(const AssetStore& store, ResidencyCacheConfig config = {});

  // GroupSource (single-session bracket) ---------------------------------
  // begin_frame/end_frame keep the one-viewer usage of PR 2 working: they
  // pin_plan/unpin_plan the plan's candidate set for *this* source. The
  // bracket stores that set in one member, so only ONE session may drive
  // it (frames may not overlap or interleave); a shared cache hosting
  // several sessions is driven through pin_plan / unpin_plan directly with
  // per-session working sets (one call pair per session, see serve/).
  void begin_frame(const FrameIntent& intent,
                   std::span<const voxel::DenseVoxelId> plan_voxels) override;
  void end_frame() override;
  GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId v) override;
  core::StreamCacheStats stats() const override;

  // Shared-session API ---------------------------------------------------
  // Adds one plan pin to every group in `voxels` (refcounted: k sessions
  // pinning a group protect it until all k unpin). Pinning does not fetch.
  // Must not be mixed with the single-session begin_frame/end_frame
  // bracket on the same cache (debug-asserted): a bracket caller owns the
  // one frame_pins_ slot, so a concurrent pin_plan caller indicates two
  // drivers disagreeing about the cache's mode.
  void pin_plan(std::span<const voxel::DenseVoxelId> voxels);
  // Drops one plan pin from every group in `voxels` and drains any budget
  // overshoot that the pins were holding back. Every pin_plan must be
  // matched by exactly one unpin_plan with the same voxel set.
  void unpin_plan(std::span<const voxel::DenseVoxelId> voxels);

  // acquire() with attribution: same pinning and blocking behavior, but the
  // caller learns whether *it* paid a demand fetch and how many payload
  // bytes that fetch read. The matching release(v) is unchanged.
  //
  // Tier semantics (`tier` is the lowest fidelity the caller accepts, 0 =
  // full): a resident group whose tier is <= `tier` is a hit and is served
  // as-is — an L1 in the cache satisfies an L1-or-worse request. A group
  // resident at a *worse* tier is refetched at `tier` (an upgrade: counted
  // as a miss plus `upgrades`; the refetch reads only this group). The
  // upgrade waits for outstanding views of the stale payload to drain
  // before replacing it; callers never see buffers swap under a live view.
  //
  // Deadline semantics (`deadline_ns`, absolute on core::stage_clock_ns;
  // kNoFetchDeadline = the blocking behavior above, bit-for-bit): when a
  // fetch is wanted but the deadline has passed — or another caller's
  // in-flight fetch of this group is still loading at the deadline — and a
  // fallback payload exists (stale resident tier or pinned coarse floor),
  // the acquire serves that payload immediately instead of blocking
  // (outcome.coarse_fallback, a HIT at the served tier). With nothing to
  // fall back on (no floor, group absent) the blocking path runs even past
  // the deadline — a deadline bounds stalls, it never invents pixels.
  AcquireOutcome acquire_outcome(voxel::DenseVoxelId v, int tier = 0,
                                 std::uint64_t deadline_ns = kNoFetchDeadline);

  // Loader-facing --------------------------------------------------------
  // Fetches `v` at `tier` if absent, or re-fetches it at `tier` when
  // resident at a worse tier and currently unviewed (counted as a
  // prefetch, not a miss). Returns true when this call fetched; false when
  // the group was already resident at `tier` or better, in flight, or
  // pinned by readers (an upgrade must not block the async lane — demand
  // acquire will pay it instead), and also when the fetch errored or the
  // group is negative-cached — prefetch NEVER throws, so a batch loop
  // continues past a bad group. When it fetched and `fetched_bytes` is
  // non-null, the payload bytes read are stored there (attribution).
  bool prefetch(voxel::DenseVoxelId v, int tier = 0,
                std::uint64_t* fetched_bytes = nullptr);
  // Same, with the outcome distinguished — what a batch drain uses to
  // count per-group errors without aborting the rest of the batch. When it
  // fetched and `fetched_ns` is non-null, the backend transfer time is
  // stored there (the drain feeds it to the session's BandwidthEstimator).
  PrefetchResult prefetch_checked(voxel::DenseVoxelId v, int tier = 0,
                                  std::uint64_t* fetched_bytes = nullptr,
                                  std::uint64_t* fetched_ns = nullptr);

  // Failure-domain introspection -----------------------------------------
  // True when at least one of `v`'s tiers has exhausted its retry budget
  // (negative-cached); pass a specific `tier` to probe just that tier.
  bool group_failed(voxel::DenseVoxelId v) const;
  bool tier_failed(voxel::DenseVoxelId v, int tier) const;
  // The last fetch error recorded for `v`, if any.
  std::optional<StreamError> group_error(voxel::DenseVoxelId v) const;
  bool resident(voxel::DenseVoxelId v) const;
  // Resident tier of `v`, or -1 when absent.
  int resident_tier(voxel::DenseVoxelId v) const;
  // Residency of every group under ONE lock acquisition (indexed by dense
  // voxel id, 1 = resident). Prefetch ranking scans the whole directory
  // per session per frame; probing resident() per group would hammer the
  // mutex all render workers contend on. The snapshot is advisory — a
  // group may be fetched or evicted the instant the lock drops — which is
  // all ranking needs (prefetch of a now-resident group is a cheap no-op).
  std::vector<std::uint8_t> resident_snapshot() const;
  // Same single-lock scan, but per group the resident *tier* (0..2) or
  // kTierAbsent when not resident — what tier-aware prefetch ranking needs.
  static constexpr std::uint8_t kTierAbsent = 0xFF;
  std::vector<std::uint8_t> tier_snapshot() const;
  // Per-group bitmask of negative-cached tiers (bit t set = tier t has
  // exhausted its retry budget), same single-lock scan. Prefetch ranking
  // masks its wanted tier against this so a failed (group, tier) never
  // re-enters a batch — not even as an upgrade candidate — while the
  // group's healthy tiers stay fetchable.
  std::vector<std::uint8_t> failed_tier_snapshot() const;
  // Both of the above under ONE lock acquisition (either out-param may be
  // null) — what per-frame, per-session ranking calls so the added
  // failure mask does not double its traffic on the contended mutex.
  void ranking_snapshot(std::vector<std::uint8_t>* resident_tiers,
                        std::vector<std::uint8_t>* failed_tiers) const;

  std::uint64_t resident_bytes() const;
  // Current LRU budget (decoded bytes). Starts at config().budget_bytes
  // and moves with set_budget_bytes().
  std::uint64_t budget_bytes() const;
  // Re-targets the LRU budget at runtime and evicts down to the new value
  // immediately (LRU-first, pinned groups excepted — their overshoot
  // drains at the next unpin, exactly as for a within-budget fetch burst).
  // The floor arena is untouched: it lives under its own budget. This is
  // the shard-rebalancing hook of a multi-scene serve::SceneServer, whose
  // governor moves byte shares between per-scene caches while keeping
  // their sum equal to one global budget.
  void set_budget_bytes(std::uint64_t budget_bytes);
  const ResidencyCacheConfig& config() const { return config_; }
  const AssetStore& store() const { return *store_; }

  // Coarse-floor introspection --------------------------------------------
  // The floor state is immutable after construction, so these are safe to
  // call from any thread without observing the cache mutex.
  //
  // True when the floor was pinned at construction (budget set, store has
  // a coarse tier, and the predicted floor fit the floor budget).
  bool coarse_floor_enabled() const { return coarse_tier_ >= 0; }
  // Decoded bytes the pinned floor holds — charged against the floor
  // budget, never against budget_bytes (and excluded from
  // resident_bytes()). Zero when disabled.
  std::uint64_t coarse_floor_bytes() const { return floor_bytes_; }
  // Tier the floor pins (the store's cheapest), or -1 when disabled.
  int coarse_tier() const { return coarse_tier_; }
  // Whether group `v`'s floor payload is pinned (false for every group
  // when the floor is disabled; a hole when its open-time read failed).
  bool coarse_floor_resident(voxel::DenseVoxelId v) const {
    return coarse_tier_ >= 0 &&
           floor_present_[static_cast<std::size_t>(v)] != 0;
  }
  // Deduped fallback accounting: the frame-aware front-ends (the loader /
  // serve::SessionSource) call this exactly once per (frame, group) whose
  // acquire came back with outcome.coarse_fallback, so the global
  // stats().coarse_fallbacks equals the sum of the per-session counters.
  void record_coarse_fallback();

 private:
  struct Entry {
    DecodedGroup group;
    int tier = 0;       // fidelity of the resident payload (valid when
                        // resident; lower = better)
    int pins = 0;       // outstanding acquires (failed acquires pin too, so
                        // pin/release stays balanced on every path)
    int plan_pins = 0;  // in-flight FramePlans claiming this group (union
                        // of all sessions' working sets)
    bool loading = false;  // fetch in flight; waiters sleep on cv_
    std::list<voxel::DenseVoxelId>::iterator lru_it;  // valid when resident
    bool resident = false;
    // Failure state, PER TIER (disk errors are tier-scoped: a corrupt L0
    // payload must not poison the group's healthy L1/L2): consecutive
    // failed fetch attempts, the denied-request countdown until the next
    // attempt, the permanent negative-cache bitmask, and the last typed
    // error (shared_ptr: degraded serves hand it out by pointer copy, not
    // a string allocation inside the cache-wide mutex).
    std::array<std::uint8_t, core::kLodTierCount> fail_count{};
    std::array<std::uint32_t, core::kLodTierCount> backoff_remaining{};
    std::uint8_t failed_tiers = 0;  // bit t = tier t negative-cached
    std::shared_ptr<const StreamError> last_error;

    bool tier_failed(int tier) const {
      return (failed_tiers >> tier) & 1u;
    }
  };

  // Fetches v at `tier` into its entry. Caller holds lk; the disk read and
  // decode run unlocked with entry.loading set. When the entry is already
  // resident (an upgrade), waits for pins to drain first, then replaces the
  // payload in place. Returns true with the entry resident at `tier`, or
  // false when the fetch failed — the entry keeps its previous payload (if
  // any), records the error, and advances its retry/backoff state. On
  // EVERY exit, including exceptions, `loading` is cleared and waiters are
  // woken (RAII guard) — a throwing fetch must never wedge the entry.
  bool fetch_locked(std::unique_lock<std::mutex>& lk, voxel::DenseVoxelId v,
                    int tier, bool is_prefetch);
  // Reads every group's coarse tier into the floor arena at construction
  // (single-threaded: no lock, no loading marks). All-or-nothing against
  // the floor budget; per-group read errors only leave holes.
  void pin_coarse_floor();
  void touch_locked(Entry& e, voxel::DenseVoxelId v);
  void evict_over_budget_locked();
  void pin_plan_locked(std::span<const voxel::DenseVoxelId> voxels);
  void unpin_plan_locked(std::span<const voxel::DenseVoxelId> voxels);

  const AssetStore* store_;
  ResidencyCacheConfig config_;
  // Live LRU budget: starts at config_.budget_bytes, re-targeted by
  // set_budget_bytes(). Atomic so budget_bytes() is an exact, lock-free
  // probe for concurrent governors and invariant-checking tests.
  std::atomic<std::uint64_t> budget_bytes_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // signals fetch completion and pin drains
  std::vector<Entry> entries_;  // indexed by dense voxel id
  std::list<voxel::DenseVoxelId> lru_;  // front = most recent
  std::uint64_t resident_bytes_ = 0;
  // Working set of the legacy single-session bracket (begin/end_frame).
  std::vector<voxel::DenseVoxelId> frame_pins_;
  // Debug guard: the single-session bracket and multi-session pin_plan are
  // mutually exclusive usages of one cache (see begin_frame).
  bool bracket_active_ = false;
  core::StreamCacheStats stats_;
  // Coarse floor: immutable after construction (pin_coarse_floor), so
  // deadline fallbacks read it without extending the mutex's critical
  // section. Outside the LRU and the main budget by design.
  std::vector<DecodedGroup> floor_;       // indexed by dense voxel id
  std::vector<std::uint8_t> floor_present_;
  std::uint64_t floor_bytes_ = 0;
  int coarse_tier_ = -1;  // -1 = floor disabled
};

}  // namespace sgs::stream
