// End-to-end experiment harness shared by the figure/table benches and the
// examples: builds a preset scene, renders the tile-centric reference (which
// also yields the GPU/GSCore workload trace), prepares the streaming scene,
// and runs any STREAMINGGS variant through the functional renderer and the
// accelerator simulator.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/streaming_renderer.hpp"
#include "gs/camera.hpp"
#include "render/tile_renderer.hpp"
#include "scene/presets.hpp"
#include "scene/variants.hpp"
#include "sim/gpu_model.hpp"
#include "sim/gscore_sim.hpp"
#include "sim/streaminggs_sim.hpp"

namespace sgs::sim {

struct ExperimentConfig {
  scene::ScenePreset preset = scene::ScenePreset::kTrain;
  scene::Algorithm algorithm = scene::Algorithm::k3dgs;
  // Fraction of the paper-scale Gaussian count / image resolution. Defaults
  // keep a full figure sweep within CPU minutes; ratios are scale-robust.
  float model_scale = 0.05f;
  float resolution_scale = 0.5f;
  // Voxel size override; <= 0 uses the preset default (0.4 / 2.0).
  float voxel_size = 0.0f;
  int group_size = 64;
  std::uint64_t variant_seed = 7;
};

// The three ablation variants of Fig. 11 plus the full design.
enum class Variant { kNoVqNoCgf, kNoCgf, kFull };
const char* variant_name(Variant v);

struct VariantOutcome {
  core::StreamingStats stats;
  SimReport accel;
  double psnr_vs_reference_db = 0.0;
  double ssim_vs_reference = 0.0;
};

// One scene+algorithm workload with its baselines evaluated once; variants
// can then be run cheaply against the shared reference.
class SceneExperiment {
 public:
  explicit SceneExperiment(const ExperimentConfig& config);

  const ExperimentConfig& config() const { return config_; }
  const gs::GaussianModel& model() const { return model_; }
  const gs::Camera& camera() const { return camera_; }
  float voxel_size() const { return voxel_size_; }

  const render::TileRenderResult& reference() const { return reference_; }
  const GpuSimResult& gpu() const { return gpu_; }
  const SimReport& gscore() const { return gscore_; }

  // Runs a streaming variant: functional render + accelerator simulation.
  // Prepared streaming scenes are cached per VQ setting (variant ablations
  // only differ in the coarse filter, which is a render-time flag).
  VariantOutcome run_variant(Variant v, const StreamingGsHwConfig& hw = {});

  // Cached prepared scene for the given VQ setting.
  const core::StreamingScene& streaming_scene(bool use_vq);

  // Cached functional render of the full variant (VQ + CGF). Hardware
  // sweeps (Fig. 13) re-simulate this one trace under many configurations.
  const core::StreamingRenderResult& full_render();

 private:
  ExperimentConfig config_;
  float voxel_size_ = 0.0f;
  gs::GaussianModel model_;
  gs::Camera camera_;
  render::TileRenderResult reference_;
  GpuSimResult gpu_;
  SimReport gscore_;
  std::unique_ptr<core::StreamingScene> scene_vq_;
  std::unique_ptr<core::StreamingScene> scene_raw_;
  std::unique_ptr<core::StreamingRenderResult> full_render_;
};

}  // namespace sgs::sim
