// Trace-driven model of GSCore (Lee et al., ASPLOS'24), the tile-centric
// accelerator baseline of the paper's Fig. 11.
//
// GSCore accelerates the same three-stage pipeline the GPU runs: projection
// units cull + project all Gaussians, bitonic sorting units order each
// tile's duplicated pairs (chunked, so pairs are materialized to DRAM once
// instead of the GPU radix sort's multiple passes), and a volume-rendering
// array blends. Being tile-centric, it keeps the intermediate DRAM traffic
// the streaming design eliminates — which is exactly the gap the paper
// measures.
#pragma once

#include "render/trace.hpp"
#include "sim/energy_model.hpp"
#include "sim/hw_config.hpp"
#include "sim/report.hpp"

namespace sgs::sim {

struct GscoreSimOptions {
  GscoreHwConfig hw{};
  EnergyConstants energy{};
};

SimReport simulate_gscore(const render::TileCentricTrace& trace,
                          const GscoreSimOptions& options = {});

}  // namespace sgs::sim
