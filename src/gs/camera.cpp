#include "gs/camera.hpp"

#include <cmath>

namespace sgs::gs {

Camera::Camera(Mat3f world_to_cam_rotation, Vec3f position, float fx, float fy,
               float cx, float cy, int width, int height)
    : rot_(world_to_cam_rotation),
      pos_(position),
      fx_(fx),
      fy_(fy),
      cx_(cx),
      cy_(cy),
      width_(width),
      height_(height) {}

Camera Camera::look_at(Vec3f eye, Vec3f target, Vec3f up_hint, float vfov_rad,
                       int width, int height) {
  const Vec3f forward = (target - eye).normalized();
  Vec3f right = forward.cross(up_hint).normalized();
  if (right.norm2() < 1e-12f) {
    // Degenerate up hint (parallel to view direction); pick any orthogonal.
    right = forward.cross(Vec3f{1.0f, 0.0f, 0.0f});
    if (right.norm2() < 1e-12f) right = forward.cross(Vec3f{0.0f, 1.0f, 0.0f});
    right = right.normalized();
  }
  const Vec3f down = forward.cross(right);  // +y is down in camera space
  const Mat3f rot = Mat3f::from_rows(right, down, forward);
  const float fy = 0.5f * static_cast<float>(height) / std::tan(0.5f * vfov_rad);
  const float fx = fy;  // square pixels
  return Camera(rot, eye, fx, fy, 0.5f * static_cast<float>(width),
                0.5f * static_cast<float>(height), width, height);
}

Ray Camera::pixel_ray(float px, float py) const {
  const Vec3f dir_cam{(px - cx_) / fx_, (py - cy_) / fy_, 1.0f};
  return Ray{pos_, (rot_.transposed() * dir_cam).normalized()};
}

}  // namespace sgs::gs
