// Model transforms emulating the two compressed-3DGS algorithms the paper
// evaluates alongside original 3DGS (Tbl. II / Fig. 11).
//
// The published pipelines are full training procedures; what the hardware
// evaluation needs from them is their *workload structure*: Mini-Splatting
// reconstructs scenes with a constrained Gaussian budget, LightGaussian
// prunes low-significance Gaussians and distills high-order SH. These
// transforms apply the same structural changes to an existing model.
#pragma once

#include <cstdint>

#include "gs/gaussian.hpp"

namespace sgs::scene {

enum class Algorithm { k3dgs, kMiniSplatting, kLightGaussian };

inline constexpr std::array<Algorithm, 3> kAllAlgorithms = {
    Algorithm::k3dgs, Algorithm::kMiniSplatting, Algorithm::kLightGaussian};

const char* algorithm_name(Algorithm a);

// Per-Gaussian significance score: opacity times projected-area proxy
// (max-scale squared), the pruning criterion family used by LightGaussian.
float significance(const gs::Gaussian& g);

// Mini-Splatting-like: importance-weighted resampling down to
// `keep_fraction` of the input count, with opacity compensation so the
// thinner model keeps similar coverage.
gs::GaussianModel mini_splatting_variant(const gs::GaussianModel& model,
                                         std::uint64_t seed,
                                         float keep_fraction = 0.35f);

// LightGaussian-like: prune the lowest-significance `prune_fraction` of
// Gaussians and truncate SH above `sh_degree` (distillation proxy).
gs::GaussianModel light_gaussian_variant(const gs::GaussianModel& model,
                                         float prune_fraction = 0.60f,
                                         int sh_degree = 1);

// Applies the named algorithm's transform (identity for k3dgs).
gs::GaussianModel apply_algorithm(const gs::GaussianModel& model, Algorithm a,
                                  std::uint64_t seed = 7);

}  // namespace sgs::scene
