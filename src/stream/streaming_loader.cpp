#include "stream/streaming_loader.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "gs/projection.hpp"
#include "obs/trace.hpp"

namespace sgs::stream {

std::vector<PrefetchRequest> rank_prefetch_groups(
    const ResidencyCache& cache, const FrameIntent& intent,
    const PrefetchConfig& config) {
  if (intent.camera == nullptr) return {};
  const AssetStore& store = cache.store();
  const gs::Camera& cam = *intent.camera;
  const float lookahead = std::max(1.0f, config.lookahead_frames);
  const float rot_env = intent.motion_rotation_rad * lookahead;
  const float trans_env = intent.motion_translation * lookahead;

  struct Ranked {
    float depth;
    voxel::DenseVoxelId id;
    std::uint8_t tier;
  };
  std::vector<Ranked> ranked;
  const auto dir = store.directory();
  // One lock per whole-directory scan, not one per group: with many
  // sessions ranking every frame, per-group resident() probes would
  // multiply lock traffic on the mutex the render workers contend on.
  std::vector<std::uint8_t> resident_tiers, failed_tiers;
  cache.ranking_snapshot(&resident_tiers, &failed_tiers);
  for (std::size_t i = 0; i < dir.size(); ++i) {
    const auto v = static_cast<voxel::DenseVoxelId>(i);
    if (dir[i].count == 0) continue;
    const int want = select_group_tier(store, intent, v, config.lod);
    // A negative-cached (group, tier) is not fetch-worthy: its prefetch
    // would be denied, and re-ranking it every frame in every session is
    // exactly the refetch storm the failure domain exists to prevent. The
    // mask is per tier, so a group with a corrupt L0 still prefetches at
    // the healthy tiers a far camera wants.
    if ((failed_tiers[i] >> want) & 1u) continue;
    // Resident at the wanted tier or better: nothing to fetch. A group
    // resident only at a worse tier stays a candidate — its prefetch is
    // the asynchronous upgrade path.
    if (resident_tiers[i] <= static_cast<std::uint8_t>(want)) continue;
    const AssetDirEntry& e = dir[i];
    const Vec3f center = (e.aabb_min + e.aabb_max) * 0.5f;
    const float radius = (e.aabb_max - e.aabb_min).norm() * 0.5f;
    const Vec3f c_cam = cam.world_to_camera(center);
    // Behind the camera even after the envelope's worst-case approach.
    if (c_cam.z + radius + trans_env <= gs::kNearClip) continue;
    const float near_z = std::max(c_cam.z - radius - trans_env, gs::kNearClip);
    // Conservative screen bound: projected AABB radius plus the envelope's
    // depth-independent rotation drift and depth-scaled translation drift
    // (the same decomposition FramePlan::reusable_for uses).
    const float pad_px = cam.focal_max() * (radius + trans_env) / near_z +
                         cam.focal_max() * rot_env;
    if (c_cam.z > gs::kNearClip) {
      const Vec2f uv = cam.project_cam(c_cam);
      if (uv.x < -pad_px || uv.y < -pad_px ||
          uv.x > static_cast<float>(cam.width()) + pad_px ||
          uv.y > static_cast<float>(cam.height()) + pad_px) {
        continue;
      }
    }
    // else: straddles the camera plane — unbounded projection, always rank.
    ranked.push_back({(center - cam.position()).norm(), v,
                      static_cast<std::uint8_t>(want)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    return a.depth != b.depth ? a.depth < b.depth : a.id < b.id;
  });

  std::vector<PrefetchRequest> batch;
  std::uint64_t bytes = 0;
  for (const Ranked& r : ranked) {
    if (batch.size() >= config.max_groups_per_frame) break;
    // Each candidate costs its own tier's payload, not the full group:
    // the same byte budget prefetches further ahead on pruned tiers.
    const std::uint64_t b = store.tier_extent(r.id, r.tier).bytes;
    if (bytes + b > config.max_bytes_per_frame && !batch.empty()) break;
    batch.push_back({r.id, r.tier});
    bytes += b;
  }
  return batch;
}

// ------------------------------------------------------- StreamingLoader --

StreamingLoader::StreamingLoader(ResidencyCache& cache, PrefetchConfig config)
    : cache_(&cache), config_(config) {}

StreamingLoader::~StreamingLoader() { wait_idle(); }

void StreamingLoader::begin_frame(
    const FrameIntent& intent,
    std::span<const voxel::DenseVoxelId> plan_voxels) {
  cache_->begin_frame(intent, plan_voxels);
  // Tier selection for this frame's plan: acquire() consults it per group.
  // Recomputed every frame — a camera-less intent must reset the map to
  // all-L0, not leave the previous frame's pruned tiers in force.
  selection_ =
      select_frame_tiers(cache_->store(), intent, plan_voxels, config_.lod);
  if (intent.camera == nullptr) return;
  std::vector<PrefetchRequest> batch = rank_prefetch(intent);
  if (batch.empty()) return;
  if (config_.synchronous) {
    SGS_TRACE_SPAN("prefetch", "prefetch_batch", "requests", batch.size());
    for (const PrefetchRequest& r : batch) cache_->prefetch(r.id, r.tier);
  } else {
    // One FIFO task per frame: fetches overlap this frame's rendering and
    // are naturally superseded by the next frame's batch.
    ResidencyCache* cache = cache_;
    async_submit([cache, batch = std::move(batch)] {
      SGS_TRACE_SPAN("prefetch", "prefetch_batch", "requests", batch.size());
      for (const PrefetchRequest& r : batch) cache->prefetch(r.id, r.tier);
    });
  }
}

void StreamingLoader::end_frame() { cache_->end_frame(); }

GroupView StreamingLoader::acquire(voxel::DenseVoxelId v) {
  return cache_->acquire_outcome(v, selection_.tier_of(v)).view;
}

void StreamingLoader::release(voxel::DenseVoxelId v) { cache_->release(v); }

core::StreamCacheStats StreamingLoader::stats() const {
  return cache_->stats();
}

void StreamingLoader::wait_idle() const { async_wait_idle(); }

std::vector<PrefetchRequest> StreamingLoader::rank_prefetch(
    const FrameIntent& intent) const {
  return rank_prefetch_groups(*cache_, intent, config_);
}

// --------------------------------------------------- SharedPrefetchQueue --

SharedPrefetchQueue::SharedPrefetchQueue(ResidencyCache& cache,
                                         PrefetchConfig config)
    : cache_(&cache), config_(config) {}

SharedPrefetchQueue::~SharedPrefetchQueue() { wait_idle(); }

std::size_t SharedPrefetchQueue::enqueue(const FrameIntent& intent,
                                         SessionCacheStats* sink,
                                         const LodPolicy* lod) {
  PrefetchConfig cfg = config_;
  if (lod != nullptr) cfg.lod = *lod;
  const std::vector<PrefetchRequest> ranked =
      rank_prefetch_groups(*cache_, intent, cfg);
  if (ranked.empty()) return 0;

  // Merge against every session's pending requests: a group already queued
  // at the same or a better tier is on its way — fetching it again would
  // only duplicate the read. A strictly better tier replaces the pending
  // mark and fetches (the cache turns it into an in-place upgrade).
  std::vector<PrefetchRequest> fresh;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    fresh.reserve(ranked.size());
    for (const PrefetchRequest& r : ranked) {
      const auto [it, inserted] = queued_.try_emplace(r.id, r.tier);
      if (inserted) {
        fresh.push_back(r);
      } else if (r.tier < it->second) {
        it->second = r.tier;
        fresh.push_back(r);
      } else {
        ++merged_;
      }
    }
  }
  if (fresh.empty()) return 0;

  auto drain = [this, sink](const std::vector<PrefetchRequest>& batch) {
    SGS_TRACE_SPAN("prefetch", "prefetch_batch", "requests", batch.size());
    // A failed group must not abort the rest of the batch: prefetch_checked
    // never throws, so the loop continues past per-group errors and counts
    // them into the session's attribution sink.
    for (const PrefetchRequest& r : batch) {
      std::uint64_t bytes = 0;
      const PrefetchResult result =
          cache_->prefetch_checked(r.id, r.tier, &bytes);
      {
        std::lock_guard<std::mutex> lk(mutex_);
        // Drop our pending mark — unless a later enqueue upgraded it to a
        // better tier whose fetch is still on its way (erasing that mark
        // would let a third session re-queue a group already in flight).
        const auto it = queued_.find(r.id);
        if (it != queued_.end() && it->second == r.tier) queued_.erase(it);
      }
      if (sink != nullptr) {
        if (result == PrefetchResult::kFetched) {
          sink->record_prefetch(bytes, r.tier);
        } else if (result == PrefetchResult::kErrored) {
          sink->record_prefetch_error();
        }
      }
    }
  };
  if (config_.synchronous) {
    drain(fresh);
  } else {
    const std::size_t n = fresh.size();
    async_submit([drain = std::move(drain), batch = std::move(fresh)] {
      drain(batch);
    });
    return n;
  }
  return fresh.size();
}

void SharedPrefetchQueue::wait_idle() const { async_wait_idle(); }

std::uint64_t SharedPrefetchQueue::merged_requests() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return merged_;
}

}  // namespace sgs::stream
