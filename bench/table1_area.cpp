// Table I reproduction: accelerator configuration and area (TSMC 32 nm).
//
//   ./table1_area [--hfus 4] [--cfus 4] [--ffus 1] [--render_units 64]
#include "bench_common.hpp"
#include "common/cli.hpp"
#include "sim/area_model.hpp"

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  sim::StreamingGsHwConfig hw;
  hw.hfu_count = args.get_int("hfus", hw.hfu_count);
  hw.cfu_per_hfu = args.get_int("cfus", hw.cfu_per_hfu);
  hw.ffu_per_hfu = args.get_int("ffus", hw.ffu_per_hfu);
  hw.render_unit_count = args.get_int("render_units", hw.render_unit_count);

  bench::print_header("Table I - configuration and area",
                      "VSU 0.06 | 4 HFU 0.79 | 2 sort 0.04 | 64 render 2.53 | "
                      "355KB SRAM 1.95 | total 5.37 mm^2");

  const sim::AreaReport rep = area_report(hw);
  bench::Table table({"Unit", "Configuration", "Area [mm^2]"});
  for (const auto& row : rep.rows) {
    table.row({row.unit, row.configuration, bench::fmt(row.area_mm2, 2)});
  }
  table.row({"Total", "", bench::fmt(rep.total_mm2, 2)});
  table.print();

  const sim::AreaConstants c;
  std::printf("  GSCore (scaled to 32 nm by DeepScaleTool): %.2f mm^2\n",
              c.gscore_total_mm2);
  std::printf("  Per-HFU breakdown: %d CFUs + %d FFUs, codebook-fed FIFO\n",
              hw.cfu_per_hfu, hw.ffu_per_hfu);
  return 0;
}
