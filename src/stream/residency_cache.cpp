#include "stream/residency_cache.hpp"

#include <cassert>
#include <utility>

namespace sgs::stream {

ResidencyCache::ResidencyCache(const AssetStore& store,
                               ResidencyCacheConfig config)
    : store_(&store),
      config_(config),
      entries_(static_cast<std::size_t>(store.group_count())) {}

void ResidencyCache::begin_frame(
    const FrameIntent&, std::span<const voxel::DenseVoxelId> plan_voxels) {
  // Pin the plan's working set: whether or not a candidate is resident yet,
  // it must not be evicted while the frame is in flight (views into it may
  // outlive their release()).
  frame_pins_.assign(plan_voxels.begin(), plan_voxels.end());
  pin_plan(frame_pins_);
}

void ResidencyCache::end_frame() {
  unpin_plan(frame_pins_);
  frame_pins_.clear();
}

void ResidencyCache::pin_plan(std::span<const voxel::DenseVoxelId> voxels) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (const voxel::DenseVoxelId v : voxels) {
    ++entries_[static_cast<std::size_t>(v)].plan_pins;
  }
}

void ResidencyCache::unpin_plan(std::span<const voxel::DenseVoxelId> voxels) {
  std::lock_guard<std::mutex> lk(mutex_);
  for (const voxel::DenseVoxelId v : voxels) {
    Entry& e = entries_[static_cast<std::size_t>(v)];
    assert(e.plan_pins > 0);
    --e.plan_pins;
  }
  // Pins may have carried residency above budget; drain the overshoot now.
  // (Unconditional: a session that pinned nothing still gets the drain.)
  evict_over_budget_locked();
}

GroupView ResidencyCache::acquire(voxel::DenseVoxelId v) {
  return acquire_outcome(v).view;
}

AcquireOutcome ResidencyCache::acquire_outcome(voxel::DenseVoxelId v) {
  std::unique_lock<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  AcquireOutcome out;
  for (;;) {
    if (e.resident) {
      if (!out.missed) ++stats_.hits;
      break;
    }
    if (e.loading) {
      // Another worker (or the prefetcher) is fetching this group; its
      // arrival serves this acquire without paying a fetch: a hit.
      cv_.wait(lk, [&e] { return !e.loading; });
      continue;
    }
    // Demand miss: this render worker stalls on the fetch.
    ++stats_.misses;
    fetch_locked(lk, v, /*is_prefetch=*/false);
    out.missed = true;
    out.bytes_fetched = e.group.payload_bytes;
  }
  ++e.pins;
  touch_locked(e, v);
  // Eviction runs only now, with the new entry pinned: with every other
  // group pinned the pass could otherwise evict the group this very call
  // just fetched (fetch_locked defers eviction for exactly that reason).
  if (out.missed) evict_over_budget_locked();
  out.view.model_indices = e.group.model_indices;
  out.view.gaussians = e.group.gaussians.data();
  out.view.coarse_max_scale = e.group.coarse_max_scale.data();
  out.view.by_model_index = false;
  return out;
}

void ResidencyCache::release(voxel::DenseVoxelId v) {
  std::lock_guard<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  assert(e.resident && e.pins > 0);
  --e.pins;
}

bool ResidencyCache::prefetch(voxel::DenseVoxelId v,
                              std::uint64_t* fetched_bytes) {
  std::unique_lock<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  if (e.resident || e.loading) return false;
  fetch_locked(lk, v, /*is_prefetch=*/true);
  if (fetched_bytes != nullptr) *fetched_bytes = e.group.payload_bytes;
  evict_over_budget_locked();
  return true;
}

bool ResidencyCache::resident(voxel::DenseVoxelId v) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return entries_[static_cast<std::size_t>(v)].resident;
}

std::vector<std::uint8_t> ResidencyCache::resident_snapshot() const {
  std::vector<std::uint8_t> flags(entries_.size(), 0);
  std::lock_guard<std::mutex> lk(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    flags[i] = entries_[i].resident ? 1 : 0;
  }
  return flags;
}

std::uint64_t ResidencyCache::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return resident_bytes_;
}

core::StreamCacheStats ResidencyCache::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

void ResidencyCache::fetch_locked(std::unique_lock<std::mutex>& lk,
                                  voxel::DenseVoxelId v, bool is_prefetch) {
  Entry& e = entries_[static_cast<std::size_t>(v)];
  e.loading = true;
  lk.unlock();
  // Disk read + decode outside the lock: other groups stay acquirable and
  // other fetches only serialize on the store's own file mutex.
  DecodedGroup fetched = store_->read_group(v);
  lk.lock();
  e.group = std::move(fetched);
  e.loading = false;
  e.resident = true;
  lru_.push_front(v);
  e.lru_it = lru_.begin();
  resident_bytes_ += e.group.resident_bytes();
  stats_.bytes_fetched += e.group.payload_bytes;
  if (is_prefetch) ++stats_.prefetches;
  // Deliberately no eviction pass here: a demand-missing acquire must pin
  // the new entry first, or — with every other resident group pinned — the
  // pass could evict the group it just fetched out from under the caller.
  // Callers run evict_over_budget_locked() once the entry is protected.
  cv_.notify_all();
}

void ResidencyCache::touch_locked(Entry& e, voxel::DenseVoxelId v) {
  if (e.lru_it != lru_.begin()) {
    lru_.erase(e.lru_it);
    lru_.push_front(v);
    e.lru_it = lru_.begin();
  }
}

void ResidencyCache::evict_over_budget_locked() {
  auto it = lru_.end();
  while (resident_bytes_ > config_.budget_bytes && it != lru_.begin()) {
    --it;
    Entry& e = entries_[static_cast<std::size_t>(*it)];
    if (e.pins > 0 || e.plan_pins > 0) continue;  // protected; try next-older
    resident_bytes_ -= e.group.resident_bytes();
    e.group = DecodedGroup{};  // frees the decoded buffers
    e.resident = false;
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

}  // namespace sgs::stream
