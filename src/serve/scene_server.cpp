#include "serve/scene_server.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/parallel.hpp"

namespace sgs::serve {

namespace {

// Nearest-rank percentile of an unsorted sample (copied, not mutated).
double percentile_ms(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  return samples[std::min(samples.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace

// ----------------------------------------------------------- SessionSource --

SessionSource::SessionSource(stream::ResidencyCache& cache,
                             stream::SharedPrefetchQueue& queue,
                             stream::LodPolicy lod)
    : cache_(&cache), queue_(&queue), lod_(lod) {}

void SessionSource::begin_frame(
    const stream::FrameIntent& intent,
    std::span<const voxel::DenseVoxelId> plan_voxels) {
  pinned_.assign(plan_voxels.begin(), plan_voxels.end());
  cache_->pin_plan(pinned_);
  // This session's quality knob: tiers for the plan under its own policy.
  selection_ =
      stream::select_frame_tiers(cache_->store(), intent, pinned_, lod_);
  for (int t = 0; t < core::kLodTierCount; ++t) {
    tier_requests_[static_cast<std::size_t>(t)] +=
        selection_.histogram[static_cast<std::size_t>(t)];
  }
  if (selection_.demoted > 0) ++degraded_frames_;
  queue_->enqueue(intent, &session_stats_, &lod_);
}

void SessionSource::end_frame() {
  cache_->unpin_plan(pinned_);
  pinned_.clear();
}

stream::GroupView SessionSource::acquire(voxel::DenseVoxelId v) {
  const stream::AcquireOutcome outcome =
      cache_->acquire_outcome(v, selection_.tier_of(v));
  session_stats_.record_acquire(outcome);
  return outcome.view;
}

void SessionSource::release(voxel::DenseVoxelId v) { cache_->release(v); }

core::StreamCacheStats SessionSource::stats() const {
  return session_stats_.snapshot();
}

// ------------------------------------------------------------- SceneServer --

struct SceneServer::Session {
  Session(const core::StreamingScene& scene, const core::SequenceOptions& opt,
          stream::ResidencyCache& cache, stream::SharedPrefetchQueue& queue,
          const stream::LodPolicy& lod)
      : source(cache, queue, lod), renderer(scene, opt, &source) {}

  SessionSource source;
  core::SequenceRenderer renderer;
  std::vector<double> frame_ms;
  std::size_t stall_frames = 0;
  std::size_t error_frames = 0;
};

SceneServer::SceneServer(const stream::AssetStore& store,
                         SceneServerConfig config)
    : config_(std::move(config)),
      scene_(store.make_scene()),
      cache_(store, config_.cache),
      queue_(cache_, config_.prefetch),
      async_errors_at_open_(async_task_errors()) {}

SceneServer::~SceneServer() { wait_idle(); }

int SceneServer::open_session() { return open_session(config_.lod); }

int SceneServer::open_session(const stream::LodPolicy& lod) {
  sessions_.push_back(std::make_unique<Session>(scene_, config_.sequence,
                                                cache_, queue_, lod));
  return static_cast<int>(sessions_.size()) - 1;
}

core::StreamingRenderResult SceneServer::render_frame(
    int session, const gs::Camera& camera) {
  Session& s = *sessions_.at(static_cast<std::size_t>(session));
  core::StreamingRenderResult result = s.renderer.render(camera);
  s.frame_ms.push_back(static_cast<double>(result.frame_wall_ns) * 1e-6);
  if (result.trace.cache.misses > 0) ++s.stall_frames;
  if (result.trace.cache.fetch_errors > 0 ||
      result.trace.cache.degraded_groups > 0) {
    ++s.error_frames;
  }
  return result;
}

ServerRunResult SceneServer::run(
    const std::vector<std::vector<gs::Camera>>& paths) {
  while (sessions_.size() < paths.size()) open_session();

  ServerRunResult out;
  out.sessions.resize(paths.size());
  // One thread per session: frames interleave on the pool (FIFO-fair
  // submission), fetches interleave in the shared cache and queue.
  std::vector<std::thread> viewers;
  viewers.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    viewers.emplace_back([this, &paths, &out, i] {
      std::vector<core::StreamingRenderResult>& frames = out.sessions[i];
      frames.reserve(paths[i].size());
      for (const gs::Camera& cam : paths[i]) {
        frames.push_back(render_frame(static_cast<int>(i), cam));
      }
    });
  }
  for (std::thread& t : viewers) t.join();
  wait_idle();
  out.report = report();
  return out;
}

ServerReport SceneServer::report() const {
  ServerReport rep;
  std::vector<double> all_ms;
  for (const auto& sp : sessions_) {
    const Session& s = *sp;
    SessionReport sr;
    sr.frames = s.frame_ms.size();
    sr.p50_ms = percentile_ms(s.frame_ms, 0.50);
    sr.p95_ms = percentile_ms(s.frame_ms, 0.95);
    sr.cache = s.source.stats();
    sr.stall_frames = s.stall_frames;
    sr.plans_built = s.renderer.stats().plans_built;
    sr.plans_reused = s.renderer.stats().plans_reused;
    sr.tier_requests = s.source.tier_requests();
    sr.degraded_frames = s.source.degraded_frames();
    sr.error_frames = s.error_frames;
    rep.stall_frames += sr.stall_frames;
    all_ms.insert(all_ms.end(), s.frame_ms.begin(), s.frame_ms.end());
    rep.sessions.push_back(std::move(sr));
  }
  rep.shared_cache = cache_.stats();
  rep.global_hit_rate = rep.shared_cache.hit_rate();
  rep.merged_prefetch_requests = queue_.merged_requests();
  // Scoped to this server's lifetime, but the lane (and its counter) is
  // process-global: two servers alive at once both see an error either
  // captured during their overlap — a diagnostics signal, not an exact
  // per-server attribution (fetch errors, which ARE attributed exactly,
  // never reach the lane).
  rep.async_lane_errors = async_task_errors() - async_errors_at_open_;
  rep.p50_ms = percentile_ms(all_ms, 0.50);
  rep.p95_ms = percentile_ms(std::move(all_ms), 0.95);
  return rep;
}

void SceneServer::wait_idle() const { queue_.wait_idle(); }

}  // namespace sgs::serve
