// Out-of-core streaming benchmark (and CI smoke test).
//
// Three passes over the same walkthrough trajectory:
//   resident     — the whole prepared scene in memory (the pre-stream path)
//   out-of-core  — the scene serialized to a tiered .sgsc asset store (v2,
//                  three payload tiers), rendered through a ResidencyCache
//                  (byte budget << scene size) fed by the prefetching
//                  StreamingLoader with LOD forced to L0. The images must
//                  be bit-identical to the resident pass — the benchmark
//                  exits non-zero otherwise, which is what makes it a
//                  meaningful smoke test.
//   LOD frontier — a raw (uncompressed) tiered store rendered twice, L0-
//                  forced and at the default adaptive LodPolicy, reporting
//                  the bandwidth-vs-PSNR frontier: fetched bytes saved and
//                  the per-frame PSNR floor against the resident render.
//                  Exits non-zero unless the default policy saves >= 30%
//                  of fetched bytes at >= 30 dB min PSNR.
//
// A fourth, traced pass re-runs the out-of-core configuration with span
// tracing enabled and gates the observability overhead contract: the
// traced pass must stay bit-identical and within 5% (and 0.5 ms/frame
// absolute) of the untraced pass, and the disabled-path cost — measured
// directly as ns per dormant span site times the traced event rate — must
// stay under 2% of frame time. --trace_out exports the traced pass as
// Chrome Trace Event JSON, which CI feeds to trace_stats.
//
// Emits BENCH_streaming.json (flat key/value) for trend tracking; see
// docs/BENCHMARKS.md for the schema and how CI consumes it.
//
//   ./bench_streaming [--scene train] [--frames 8] [--model_scale 0.02]
//                     [--res_scale 0.25] [--arc 0.03] [--budget_kb 0]
//                     [--out BENCH_streaming.json] [--trace_out trace.json]
//
// --budget_kb 0 picks a budget of ~35% of the store's decoded bytes, small
// enough to force eviction traffic on every preset.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/units.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "metrics/psnr.hpp"
#include "obs/trace.hpp"
#include "scene/presets.hpp"
#include "stream/asset_store.hpp"
#include "stream/lod_policy.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace {

std::vector<sgs::gs::Camera> make_trajectory(sgs::scene::ScenePreset preset,
                                             int w, int h, int frames,
                                             float arc) {
  std::vector<sgs::gs::Camera> cams;
  cams.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const float t = arc * static_cast<float>(f) / static_cast<float>(frames);
    cams.push_back(sgs::scene::make_preset_camera(preset, w, h, t));
  }
  return cams;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  const auto preset = scene::preset_from_name(args.get("scene", "train"));
  const int frames = args.get_int("frames", 8);
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.02));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.25));
  const float arc = static_cast<float>(args.get_double("arc", 0.03));
  const std::uint64_t budget_kb =
      static_cast<std::uint64_t>(args.get_int("budget_kb", 0));
  const std::string out_path = args.get("out", "BENCH_streaming.json");
  const std::string trace_out = args.get("trace_out", "");
  const std::string store_path = "/tmp/bench_streaming.sgsc";

  bench::print_header("out-of-core streaming: resident vs cache-backed vs LOD",
                      "bit-identical at L0, bandwidth-vs-PSNR frontier below");

  // Pin the pool width: the exported trace must exercise multi-threaded
  // emission (CI requires spans from >= 3 threads) even on single-core
  // smoke runners, and a fixed width keeps frame times comparable across
  // differently-sized machines.
  set_parallelism(4);

  const auto model = scene::make_preset_scene(preset, model_scale);
  int w = 0, h = 0;
  scene::scaled_resolution(preset, res_scale, w, h);
  core::StreamingConfig scfg;
  scfg.voxel_size = scene::preset_info(preset).default_voxel_size;
  const auto scene_resident = core::StreamingScene::prepare(model, scfg);
  const auto cameras = make_trajectory(preset, w, h, frames, arc);

  core::SequenceOptions seq;
  seq.reuse_max_translation = 0.25f * scfg.voxel_size;
  seq.reuse_max_rotation_rad = 0.04f;
  // Stage timing on for every pass: the traced pass reuses the stage
  // accumulators for its aggregated spans, so with timing already on in
  // the baseline the traced/untraced delta isolates pure emission cost.
  seq.render.collect_stage_timing = true;

  // Best-of-N timing: on small (possibly single-core) CI runners the
  // pass-to-pass scheduler jitter rivals the tracing overhead the gate
  // below measures, and the minimum is the standard jitter filter.
  constexpr int kTimingReps = 3;

  // --- resident pass ---------------------------------------------------------
  double resident_ms = 1e300;
  core::SequenceResult resident;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    const double t0 = now_ms();
    resident = core::render_sequence(scene_resident, cameras, seq);
    resident_ms = std::min(resident_ms, (now_ms() - t0) / frames);
  }

  // --- out-of-core pass (tiered store, LOD forced to L0) ---------------------
  stream::AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  try {
    if (!stream::AssetStore::write(store_path, scene_resident, wopts)) {
      std::fprintf(stderr, "FAILED to write %s\n", store_path.c_str());
      return 1;
    }
  } catch (const stream::StreamException& e) {
    std::fprintf(stderr, "FAILED to write store: %s\n", e.what());
    return 1;
  }
  stream::AssetStore store(store_path);
  stream::ResidencyCacheConfig ccfg;
  // Default budget: 35% of the *decoded* working set (the budget's unit),
  // not of the on-disk payloads — under VQ those differ by ~10x.
  ccfg.budget_bytes = budget_kb > 0 ? budget_kb * 1024
                                    : store.decoded_bytes_total() * 35 / 100;
  stream::PrefetchConfig pcfg;
  pcfg.lod.force_tier0 = true;  // the golden invariant this bench enforces
  const auto scene_ooc = store.make_scene();

  // --- out-of-core passes, untraced + traced (overhead gate) -----------------
  // Each rep gets a fresh cache/loader so the fetch pattern repeats; the
  // last rep's frames and stats are the ones reported (identical anyway —
  // that is the invariant being checked). The untraced and traced reps are
  // interleaved so page-cache and scheduler drift hits both sides alike:
  // the gate below compares their minima and must only see tracing.
  obs::set_thread_name("main");
  double ooc_ms = 1e300, traced_ms = 1e300;
  core::SequenceResult ooc, traced;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    {
      stream::ResidencyCache cache(store, ccfg);
      stream::StreamingLoader loader(cache, pcfg);
      const double t1 = now_ms();
      ooc = core::render_sequence(scene_ooc, cameras, seq, &loader);
      loader.wait_idle();
      ooc_ms = std::min(ooc_ms, (now_ms() - t1) / frames);
    }
    {
      stream::ResidencyCache tcache(store, ccfg);
      stream::StreamingLoader tloader(tcache, pcfg);
      obs::trace_reset();  // keep only the last rep's timeline
      obs::set_trace_enabled(true);
      const double t2 = now_ms();
      traced = core::render_sequence(scene_ooc, cameras, seq, &tloader);
      tloader.wait_idle();
      traced_ms = std::min(traced_ms, (now_ms() - t2) / frames);
      obs::set_trace_enabled(false);
    }
  }

  std::size_t trace_events = 0;
  for (const auto& t : obs::trace_collect()) trace_events += t.events.size();
  const std::uint64_t trace_dropped = obs::trace_dropped_total();
  if (!trace_out.empty()) {
    if (!obs::write_chrome_trace(trace_out)) {
      std::fprintf(stderr, "FAILED to write trace %s\n", trace_out.c_str());
      return 1;
    }
  }

  // Overhead gates. Wall-clock A/B of the two passes above is reported for
  // humans, but a shared CI runner's disk and scheduler tails (single
  // fetches can stall for milliseconds) swamp the sub-millisecond effect
  // being gated, so the pass/fail signal instead measures the per-event
  // cost directly — a tight probe loop over a span site — and scales it by
  // the event rate the traced pass actually produced. The same
  // methodology covers both gates: the dormant site (one relaxed load and
  // a branch) and the live site (two clock reads plus a ring push).
  constexpr int kProbeIters = 1 << 20;
  const double d0 = now_ms();
  for (int i = 0; i < kProbeIters; ++i) {
    SGS_TRACE_SPAN("bench", "disabled_probe");
    asm volatile("" ::: "memory");
  }
  const double disabled_span_ns = (now_ms() - d0) * 1e6 / kProbeIters;
  // The enabled probe runs after the export above, so its events are not
  // in the artifact; the reset below clears them from the rings.
  obs::set_trace_enabled(true);
  const double e0 = now_ms();
  for (int i = 0; i < kProbeIters; ++i) {
    SGS_TRACE_SPAN("bench", "enabled_probe");
    asm volatile("" ::: "memory");
  }
  const double enabled_span_ns = (now_ms() - e0) * 1e6 / kProbeIters;
  obs::set_trace_enabled(false);
  obs::trace_reset();
  const double events_per_frame =
      static_cast<double>(trace_events) / static_cast<double>(frames);
  const double disabled_pct =
      ooc_ms > 0.0 ? 100.0 * disabled_span_ns * events_per_frame /
                         (ooc_ms * 1e6)
                   : 0.0;
  const double enabled_pct =
      ooc_ms > 0.0 ? 100.0 * enabled_span_ns * events_per_frame /
                         (ooc_ms * 1e6)
                   : 0.0;

  // --- compare + report ------------------------------------------------------
  bool identical = resident.frames.size() == ooc.frames.size();
  int stall_frames = 0;
  core::StreamCacheStats total;
  for (std::size_t f = 0; f < ooc.frames.size() && identical; ++f) {
    identical = resident.frames[f].image.pixels() == ooc.frames[f].image.pixels();
    total.accumulate(ooc.frames[f].trace.cache);
    if (ooc.frames[f].trace.cache.misses > 0) ++stall_frames;
  }
  bool traced_identical = resident.frames.size() == traced.frames.size();
  core::StreamCacheStats traced_total;
  for (std::size_t f = 0; f < traced.frames.size() && traced_identical; ++f) {
    traced_identical =
        resident.frames[f].image.pixels() == traced.frames[f].image.pixels();
    traced_total.accumulate(traced.frames[f].trace.cache);
  }

  bench::Table table({"mode", "frame ms", "hit rate", "fetched", "evictions",
                      "stall frames"});
  table.row({"resident", bench::fmt(resident_ms), "-", "-", "-", "-"});
  table.row({"out-of-core L0", bench::fmt(ooc_ms),
             bench::fmt(100.0 * total.hit_rate(), 1) + "%",
             format_bytes(static_cast<double>(total.bytes_fetched)),
             std::to_string(total.evictions), std::to_string(stall_frames)});
  table.row({"out-of-core traced", bench::fmt(traced_ms),
             bench::fmt(100.0 * traced_total.hit_rate(), 1) + "%",
             format_bytes(static_cast<double>(traced_total.bytes_fetched)),
             std::to_string(traced_total.evictions), "-"});
  table.print();
  std::printf("  store: %s L0 payloads (+%s L1, +%s L2) across %d voxel "
              "groups, budget %s\n",
              format_bytes(static_cast<double>(store.payload_bytes_total())).c_str(),
              format_bytes(static_cast<double>(store.payload_bytes_tier(1))).c_str(),
              format_bytes(static_cast<double>(store.payload_bytes_tier(2))).c_str(),
              store.group_count(),
              format_bytes(static_cast<double>(ccfg.budget_bytes)).c_str());
  std::printf("  images bit-identical: %s (traced pass: %s)\n",
              identical ? "yes" : "NO", traced_identical ? "yes" : "NO");
  std::printf("  tracing: %zu events (%llu dropped), wall delta %+.2f "
              "ms/frame; enabled %.1f ns/event -> %.2f%% of frame, "
              "disabled %.2f ns/site -> %.3f%% (gates: <= 5%% enabled, "
              "<= 2%% disabled)\n",
              trace_events, static_cast<unsigned long long>(trace_dropped),
              traced_ms - ooc_ms, enabled_span_ns, enabled_pct,
              disabled_span_ns, disabled_pct);

  // --- LOD frontier (raw store: SH-band tiers carry the savings) -------------
  core::StreamingConfig rcfg = scfg;
  rcfg.use_vq = false;
  const auto scene_raw = core::StreamingScene::prepare(model, rcfg);
  try {
    if (!stream::AssetStore::write(store_path, scene_raw, wopts)) {
      std::fprintf(stderr, "FAILED to rewrite %s\n", store_path.c_str());
      return 1;
    }
  } catch (const stream::StreamException& e) {
    std::fprintf(stderr, "FAILED to rewrite store: %s\n", e.what());
    return 1;
  }
  stream::AssetStore raw_store(store_path);
  const auto resident_raw = core::render_sequence(scene_raw, cameras, seq);

  auto run_raw = [&](const stream::LodPolicy& lod) {
    stream::ResidencyCacheConfig rc;
    rc.budget_bytes = raw_store.decoded_bytes_total() * 35 / 100;
    stream::ResidencyCache rcache(raw_store, rc);
    stream::PrefetchConfig rp;
    rp.synchronous = true;  // reproducible fetch counters
    rp.lod = lod;
    stream::StreamingLoader rloader(rcache, rp);
    const auto sc = raw_store.make_scene();
    const auto out = core::render_sequence(sc, cameras, seq, &rloader);
    core::StreamCacheStats t;
    for (const auto& f : out.frames) t.accumulate(f.trace.cache);
    return std::make_pair(std::move(out), t);
  };

  stream::LodPolicy l0_policy;
  l0_policy.force_tier0 = true;
  const auto [raw_l0, raw_l0_stats] = run_raw(l0_policy);
  const auto [raw_lod, raw_lod_stats] = run_raw(stream::LodPolicy{});

  bool raw_identical = true;
  double psnr_min = 1e30, psnr_sum = 0.0;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    raw_identical = raw_identical && resident_raw.frames[f].image.pixels() ==
                                         raw_l0.frames[f].image.pixels();
    const double db = metrics::psnr_capped(resident_raw.frames[f].image,
                                           raw_lod.frames[f].image);
    psnr_min = std::min(psnr_min, db);
    psnr_sum += db;
  }
  const double psnr_mean = psnr_sum / static_cast<double>(cameras.size());
  const double savings =
      raw_l0_stats.bytes_fetched > 0
          ? 1.0 - static_cast<double>(raw_lod_stats.bytes_fetched) /
                      static_cast<double>(raw_l0_stats.bytes_fetched)
          : 0.0;

  bench::Table lod_table({"raw store pass", "fetched", "tier fetches L0/L1/L2",
                          "upgrades", "PSNR min/mean"});
  auto tier_fetches = [](const core::StreamCacheStats& s, int t) {
    return std::to_string(s.tier_misses[t] + s.tier_prefetches[t]);
  };
  lod_table.row({"forced L0",
                 format_bytes(static_cast<double>(raw_l0_stats.bytes_fetched)),
                 tier_fetches(raw_l0_stats, 0) + "/" +
                     tier_fetches(raw_l0_stats, 1) + "/" +
                     tier_fetches(raw_l0_stats, 2),
                 std::to_string(raw_l0_stats.upgrades), "exact"});
  lod_table.row({"default LodPolicy",
                 format_bytes(static_cast<double>(raw_lod_stats.bytes_fetched)),
                 tier_fetches(raw_lod_stats, 0) + "/" +
                     tier_fetches(raw_lod_stats, 1) + "/" +
                     tier_fetches(raw_lod_stats, 2),
                 std::to_string(raw_lod_stats.upgrades),
                 bench::fmt(psnr_min, 1) + "/" + bench::fmt(psnr_mean, 1) +
                     " dB"});
  lod_table.print();
  std::printf("  LOD frontier: %.1f%% fewer fetched bytes at %.1f dB min "
              "PSNR (gates: >= 30%% and >= 30 dB)\n",
              100.0 * savings, psnr_min);
  std::printf("  raw L0 pass bit-identical: %s\n", raw_identical ? "yes" : "NO");

  // --- zero-stall pass (coarse floor + zero fetch deadline) ------------------
  // The same walkthrough over a store whose coarsest tier is a
  // heavily-pruned fallback, with every group's floor payload pinned at
  // open (<= 5% of the scene's decoded bytes) and a zero per-frame demand
  // deadline: a group the prefetcher has not landed yet renders from the
  // floor instead of stalling the frame. The pass groups the scene at 2x
  // the voxel size — the floor pins at least one record per group, so the
  // 5% byte budget needs coarse-granularity groups, and a floor tier is a
  // per-group decision anyway — the multiplier grows until the floor
  // fits, since smaller --model_scale runs keep roughly as many groups
  // over far fewer records. Its cache budget is 65% of the decoded
  // scene, NOT the eviction-pressure 35% the passes above use: zero-stall
  // deadline streaming is the operating point where the steady-state
  // working set fits the budget and the floor only carries cold start and
  // bursts — under a budget smaller than the working set, deadline mode
  // trades the thrash into persistent quality loss instead of stalls,
  // which is a different (graceful-degradation) regime than the one this
  // gate pins. The per-frame prefetch cap is set just under the frame-0
  // working set so the cold start demonstrably serves its far tail from
  // the floor. Gates: not one frame with a demand miss; the floor fits
  // its 5% budget; frames that never fell back stay bit-identical to this
  // grouping's resident render; fallback frames hold >= 28 dB.
  core::StreamingScene scene_zs;
  float zs_voxel_mult = 0.0f;
  for (const float mult : {2.0f, 3.0f, 4.0f, 6.0f, 8.0f}) {
    core::StreamingConfig zcfg = rcfg;
    zcfg.voxel_size = mult * scfg.voxel_size;
    auto candidate = core::StreamingScene::prepare(model, zcfg);
    try {
      if (!stream::AssetStore::write(
              store_path, candidate,
              stream::AssetStoreWriteOptions::with_coarse_floor(0.04f))) {
        std::fprintf(stderr, "FAILED to rewrite %s\n", store_path.c_str());
        return 1;
      }
    } catch (const stream::StreamException& e) {
      std::fprintf(stderr, "FAILED to rewrite store: %s\n", e.what());
      return 1;
    }
    // Cheap fit probe: a floor that would blow the 5% budget disables
    // itself at open, so open a throwaway cache and ask.
    stream::AssetStore probe(store_path);
    stream::ResidencyCacheConfig pc;
    pc.budget_bytes = probe.decoded_bytes_total();
    pc.coarse_floor_budget_bytes = probe.decoded_bytes_total() * 5 / 100;
    if (stream::ResidencyCache(probe, pc).coarse_floor_enabled()) {
      scene_zs = std::move(candidate);
      zs_voxel_mult = mult;
      break;
    }
  }
  if (zs_voxel_mult == 0.0f) {
    std::fprintf(stderr,
                 "zero-stall gate FAILED: no grouping fits a 5%% floor\n");
    return 1;
  }
  const auto resident_zs = core::render_sequence(scene_zs, cameras, seq);
  stream::AssetStore zs_store(store_path);
  stream::ResidencyCacheConfig zs_cfg;
  zs_cfg.budget_bytes = zs_store.decoded_bytes_total() * 65 / 100;
  zs_cfg.coarse_floor_budget_bytes = zs_store.decoded_bytes_total() * 5 / 100;
  stream::ResidencyCache zs_cache(zs_store, zs_cfg);
  const bool zs_floor_enabled = zs_cache.coarse_floor_enabled();
  stream::PrefetchConfig zs_pcfg;
  zs_pcfg.synchronous = true;  // reproducible fallback pattern
  zs_pcfg.lod.force_tier0 = true;
  zs_pcfg.fetch_deadline_ns = 0;  // every demand fetch is past due
  // Cap the per-frame prefetch bandwidth just below the cold-start working
  // set so frame 0 provably serves its far tail from the floor.
  zs_pcfg.max_bytes_per_frame = zs_store.payload_bytes_total() * 99 / 100;
  zs_pcfg.max_groups_per_frame = static_cast<std::size_t>(-1);
  stream::StreamingLoader zs_loader(zs_cache, zs_pcfg);
  const auto zs_scene = zs_store.make_scene();
  const auto zs = core::render_sequence(zs_scene, cameras, seq, &zs_loader);

  int zs_stall_frames = 0, fallback_frames = 0;
  bool zs_clean_identical = true;
  double min_fallback_psnr = 1e30;
  core::StreamCacheStats zs_total;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    const core::StreamCacheStats& cs = zs.frames[f].trace.cache;
    zs_total.accumulate(cs);
    if (cs.misses > 0) ++zs_stall_frames;
    if (cs.coarse_fallbacks > 0) {
      ++fallback_frames;
      min_fallback_psnr = std::min(
          min_fallback_psnr, metrics::psnr_capped(resident_zs.frames[f].image,
                                                  zs.frames[f].image));
    } else {
      zs_clean_identical =
          zs_clean_identical && resident_zs.frames[f].image.pixels() ==
                                    zs.frames[f].image.pixels();
    }
  }
  const double zs_floor_pct =
      100.0 * static_cast<double>(zs_cache.coarse_floor_bytes()) /
      static_cast<double>(zs_store.decoded_bytes_total());
  std::printf("  zero-stall (%.0fx voxel groups): %d stall frames, %d/%d "
              "fallback frames (%llu group serves), floor %s = %.2f%% of "
              "scene, min fallback PSNR %.1f dB (gates: 0 stalls, floor <= "
              "5%%, >= 28 dB)\n",
              zs_voxel_mult, zs_stall_frames, fallback_frames, frames,
              static_cast<unsigned long long>(zs_total.coarse_fallbacks),
              format_bytes(static_cast<double>(zs_cache.coarse_floor_bytes()))
                  .c_str(),
              zs_floor_pct,
              fallback_frames > 0 ? min_fallback_psnr : 0.0);
  std::printf("  zero-stall clean frames bit-identical: %s\n",
              zs_clean_identical ? "yes" : "NO");

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"frames\": " << frames << ",\n"
       << "  \"resident_frame_ms\": " << resident_ms << ",\n"
       << "  \"ooc_frame_ms\": " << ooc_ms << ",\n"
       << "  \"hit_rate\": " << total.hit_rate() << ",\n"
       << "  \"hits\": " << total.hits << ",\n"
       << "  \"misses\": " << total.misses << ",\n"
       << "  \"prefetches\": " << total.prefetches << ",\n"
       << "  \"evictions\": " << total.evictions << ",\n"
       << "  \"bytes_fetched\": " << total.bytes_fetched << ",\n"
       << "  \"store_payload_bytes\": " << store.payload_bytes_total() << ",\n"
       << "  \"budget_bytes\": " << ccfg.budget_bytes << ",\n"
       << "  \"stall_frames\": " << stall_frames << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"lod_l0_bytes_fetched\": " << raw_l0_stats.bytes_fetched << ",\n"
       << "  \"lod_bytes_fetched\": " << raw_lod_stats.bytes_fetched << ",\n"
       << "  \"lod_fetch_savings\": " << savings << ",\n"
       << "  \"lod_psnr_min_db\": " << psnr_min << ",\n"
       << "  \"lod_psnr_mean_db\": " << psnr_mean << ",\n"
       << "  \"lod_upgrades\": " << raw_lod_stats.upgrades << ",\n"
       << "  \"lod_bit_identical\": " << (raw_identical ? "true" : "false")
       << ",\n"
       << "  \"traced_frame_ms\": " << traced_ms << ",\n"
       << "  \"trace_enabled_overhead_pct\": " << enabled_pct << ",\n"
       << "  \"trace_disabled_overhead_pct\": " << disabled_pct << ",\n"
       << "  \"trace_events\": " << trace_events << ",\n"
       << "  \"trace_dropped\": " << trace_dropped << ",\n"
       << "  \"enabled_span_ns\": " << enabled_span_ns << ",\n"
       << "  \"disabled_span_ns\": " << disabled_span_ns << ",\n"
       << "  \"trace_bit_identical\": "
       << (traced_identical ? "true" : "false") << ",\n"
       << "  \"zero_stall_frames\": " << zs_stall_frames << ",\n"
       << "  \"fallback_frames\": " << fallback_frames << ",\n"
       << "  \"coarse_fallbacks\": " << zs_total.coarse_fallbacks << ",\n"
       << "  \"min_fallback_psnr_db\": "
       << (fallback_frames > 0 ? min_fallback_psnr : 0.0) << ",\n"
       << "  \"coarse_floor_bytes\": " << zs_cache.coarse_floor_bytes() << ",\n"
       << "  \"coarse_floor_pct\": " << zs_floor_pct << ",\n"
       << "  \"zero_stall_clean_bit_identical\": "
       << (zs_clean_identical ? "true" : "false") << "\n"
       << "}\n";
  std::printf("  wrote %s\n", out_path.c_str());

  std::remove(store_path.c_str());
  const bool lod_ok = savings >= 0.30 && psnr_min >= 30.0;
  if (!lod_ok) {
    std::fprintf(stderr,
                 "LOD frontier gate FAILED: savings %.3f psnr_min %.2f\n",
                 savings, psnr_min);
  }
  // Observability overhead contract (per-event cost x traced event rate,
  // see the probe comment above).
  const bool trace_ok =
      traced_identical && enabled_pct <= 5.0 && disabled_pct <= 2.0;
  if (!trace_ok) {
    std::fprintf(stderr,
                 "tracing gate FAILED: bit_identical=%d enabled %.2f%% "
                 "disabled %.3f%%\n",
                 traced_identical ? 1 : 0, enabled_pct, disabled_pct);
  }
  // Zero-stall contract: the floor pins within its 5% budget, no frame
  // ever blocks on a demand miss, frames with no fallback stay exact, and
  // fallback frames keep a bounded quality loss.
  const bool zero_stall_ok =
      zs_floor_enabled && zs_floor_pct <= 5.0 && zs_stall_frames == 0 &&
      zs_clean_identical &&
      (fallback_frames == 0 || min_fallback_psnr >= 28.0);
  if (!zero_stall_ok) {
    std::fprintf(stderr,
                 "zero-stall gate FAILED: floor_enabled=%d floor_pct=%.2f "
                 "stall_frames=%d clean_identical=%d fallback_frames=%d "
                 "min_fallback_psnr=%.2f\n",
                 zs_floor_enabled ? 1 : 0, zs_floor_pct, zs_stall_frames,
                 zs_clean_identical ? 1 : 0, fallback_frames,
                 fallback_frames > 0 ? min_fallback_psnr : 0.0);
  }
  return (identical && raw_identical && lod_ok && trace_ok && zero_stall_ok)
             ? 0
             : 1;
}
