#include "vq/quantized_model.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <stdexcept>

namespace sgs::vq {

namespace {

// Extracts one parameter group from the model as a flat array.
std::vector<float> extract_group(const gs::GaussianModel& model, int which) {
  const std::size_t n = model.size();
  std::vector<float> out;
  switch (which) {
    case 0:  // scale
      out.reserve(n * 3);
      for (const auto& g : model.gaussians) {
        out.push_back(g.scale.x);
        out.push_back(g.scale.y);
        out.push_back(g.scale.z);
      }
      break;
    case 1:  // rotation
      out.reserve(n * 4);
      for (const auto& g : model.gaussians) {
        const Quatf q = g.rotation.normalized();
        out.push_back(q.w);
        out.push_back(q.x);
        out.push_back(q.y);
        out.push_back(q.z);
      }
      break;
    case 2:  // DC
      out.reserve(n * 3);
      for (const auto& g : model.gaussians) {
        out.push_back(g.sh[0].x);
        out.push_back(g.sh[0].y);
        out.push_back(g.sh[0].z);
      }
      break;
    case 3:  // SH rest: 15 coefficients x RGB = 45, coefficient-major
      out.reserve(n * 45);
      for (const auto& g : model.gaussians) {
        for (int k = 1; k < gs::kShCoeffCount; ++k) {
          out.push_back(g.sh[static_cast<std::size_t>(k)].x);
          out.push_back(g.sh[static_cast<std::size_t>(k)].y);
          out.push_back(g.sh[static_cast<std::size_t>(k)].z);
        }
      }
      break;
    default: assert(false);
  }
  return out;
}

TrainedCodebook train_group(const gs::GaussianModel& model, int which,
                            std::size_t dim, std::uint32_t entries,
                            const VqConfig& cfg) {
  const std::vector<float> data = extract_group(model, which);
  KMeansConfig kc;
  kc.k = entries;
  kc.max_iters = cfg.kmeans_iters;
  kc.max_train_samples = cfg.max_train_samples;
  kc.seed = cfg.seed + static_cast<std::uint64_t>(which) * 101;
  TrainedCodebook tc = train_codebook(data, dim, kc);

  // Quantization-aware refinement: full-data Lloyd passes. Each pass is a
  // kmeans run seeded implicitly by re-running with more data; we emulate by
  // re-running assignment+update manually.
  for (int r = 0; r < cfg.refine_iters; ++r) {
    const std::size_t k = tc.codebook.size();
    const std::size_t n = data.size() / dim;
    std::vector<double> sums(k * dim, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t c = tc.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dim; ++d) {
        sums[static_cast<std::size_t>(c) * dim + d] += data[i * dim + d];
      }
    }
    std::vector<float> entries_new(tc.codebook.raw().begin(), tc.codebook.raw().end());
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        entries_new[c * dim + d] =
            static_cast<float>(sums[c * dim + d] / static_cast<double>(counts[c]));
      }
    }
    tc.codebook = Codebook(dim, std::move(entries_new));
    for (std::size_t i = 0; i < n; ++i) {
      tc.assignment[i] = tc.codebook.nearest({data.data() + i * dim, dim});
    }
  }
  return tc;
}

}  // namespace

QuantizedModel QuantizedModel::build(const gs::GaussianModel& model,
                                     const VqConfig& config) {
  QuantizedModel qm;
  const std::size_t n = model.size();
  qm.positions_.reserve(n);
  qm.opacities_.reserve(n);
  for (const auto& g : model.gaussians) {
    qm.positions_.push_back(g.position);
    qm.opacities_.push_back(g.opacity);
  }

  TrainedCodebook scale = train_group(model, 0, 3, config.scale_entries, config);
  TrainedCodebook rot = train_group(model, 1, 4, config.rotation_entries, config);
  TrainedCodebook dc = train_group(model, 2, 3, config.dc_entries, config);
  TrainedCodebook sh = train_group(model, 3, 45, config.sh_entries, config);

  qm.indices_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    qm.indices_[i].scale = static_cast<std::uint16_t>(scale.assignment[i]);
    qm.indices_[i].rotation = static_cast<std::uint16_t>(rot.assignment[i]);
    qm.indices_[i].dc = static_cast<std::uint16_t>(dc.assignment[i]);
    qm.indices_[i].sh = static_cast<std::uint16_t>(sh.assignment[i]);
  }
  qm.scale_cb_ = std::move(scale.codebook);
  qm.rotation_cb_ = std::move(rot.codebook);
  qm.dc_cb_ = std::move(dc.codebook);
  qm.sh_cb_ = std::move(sh.codebook);

  qm.coarse_max_scale_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = qm.scale_cb_.entry(qm.indices_[i].scale);
    qm.coarse_max_scale_[i] = std::max(s[0], std::max(s[1], s[2]));
  }
  return qm;
}

gs::Gaussian QuantizedModel::decode(std::uint32_t i) const {
  gs::Gaussian g;
  g.position = positions_[i];
  g.opacity = opacities_[i];
  const auto s = scale_cb_.entry(indices_[i].scale);
  g.scale = {s[0], s[1], s[2]};
  const auto r = rotation_cb_.entry(indices_[i].rotation);
  g.rotation = Quatf{r[0], r[1], r[2], r[3]};
  const auto d = dc_cb_.entry(indices_[i].dc);
  g.sh[0] = {d[0], d[1], d[2]};
  const auto rest = sh_cb_.entry(indices_[i].sh);
  for (int k = 1; k < gs::kShCoeffCount; ++k) {
    const std::size_t base = static_cast<std::size_t>(k - 1) * 3;
    g.sh[static_cast<std::size_t>(k)] = {rest[base], rest[base + 1], rest[base + 2]};
  }
  return g;
}

gs::GaussianModel QuantizedModel::decode_all() const {
  gs::GaussianModel m;
  m.gaussians.reserve(size());
  for (std::uint32_t i = 0; i < size(); ++i) m.gaussians.push_back(decode(i));
  return m;
}

namespace {

constexpr std::uint32_t kVqMagic = 0x51564753;  // "SGVQ"
constexpr std::uint32_t kVqVersion = 1;

template <typename T>
void put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("truncated quantized model stream");
  return v;
}

}  // namespace

bool QuantizedModel::save(std::ostream& out) const {
  put<std::uint32_t>(out, kVqMagic);
  put<std::uint32_t>(out, kVqVersion);
  scale_cb_.save(out);
  rotation_cb_.save(out);
  dc_cb_.save(out);
  sh_cb_.save(out);
  put<std::uint64_t>(out, static_cast<std::uint64_t>(size()));
  for (std::size_t i = 0; i < size(); ++i) {
    put<float>(out, positions_[i].x);
    put<float>(out, positions_[i].y);
    put<float>(out, positions_[i].z);
    put<float>(out, opacities_[i]);
    put<std::uint16_t>(out, indices_[i].scale);
    put<std::uint16_t>(out, indices_[i].rotation);
    put<std::uint16_t>(out, indices_[i].dc);
    put<std::uint16_t>(out, indices_[i].sh);
  }
  return static_cast<bool>(out);
}

QuantizedModel QuantizedModel::load(std::istream& in) {
  if (get<std::uint32_t>(in) != kVqMagic) {
    throw std::runtime_error("bad quantized model magic");
  }
  if (get<std::uint32_t>(in) != kVqVersion) {
    throw std::runtime_error("unsupported quantized model version");
  }
  QuantizedModel qm;
  qm.scale_cb_ = Codebook::load(in);
  qm.rotation_cb_ = Codebook::load(in);
  qm.dc_cb_ = Codebook::load(in);
  qm.sh_cb_ = Codebook::load(in);
  if (qm.scale_cb_.dim() != 3 || qm.rotation_cb_.dim() != 4 ||
      qm.dc_cb_.dim() != 3 || qm.sh_cb_.dim() != 45) {
    throw std::runtime_error("quantized model codebooks have wrong dims");
  }
  const std::uint64_t n = get<std::uint64_t>(in);
  if (n > (std::uint64_t{1} << 32)) {
    throw std::runtime_error("implausible quantized model size");
  }
  qm.positions_.resize(n);
  qm.opacities_.resize(n);
  qm.indices_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    qm.positions_[i].x = get<float>(in);
    qm.positions_[i].y = get<float>(in);
    qm.positions_[i].z = get<float>(in);
    qm.opacities_[i] = get<float>(in);
    qm.indices_[i].scale = get<std::uint16_t>(in);
    qm.indices_[i].rotation = get<std::uint16_t>(in);
    qm.indices_[i].dc = get<std::uint16_t>(in);
    qm.indices_[i].sh = get<std::uint16_t>(in);
    if (qm.indices_[i].scale >= qm.scale_cb_.size() ||
        qm.indices_[i].rotation >= qm.rotation_cb_.size() ||
        qm.indices_[i].dc >= qm.dc_cb_.size() ||
        qm.indices_[i].sh >= qm.sh_cb_.size()) {
      throw std::runtime_error("quantized index out of codebook range");
    }
  }
  // Derived, not stored: same computation as build(), so a loaded model's
  // coarse stream is bit-identical to the trained one's.
  qm.coarse_max_scale_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto s = qm.scale_cb_.entry(qm.indices_[i].scale);
    qm.coarse_max_scale_[i] = std::max(s[0], std::max(s[1], s[2]));
  }
  return qm;
}

bool QuantizedModel::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return save(out);
}

QuantizedModel QuantizedModel::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open quantized model: " + path);
  return load(in);
}

std::size_t QuantizedModel::codebook_bytes() const {
  return scale_cb_.bytes() + rotation_cb_.bytes() + dc_cb_.bytes() + sh_cb_.bytes();
}

int QuantizedModel::index_bits_per_gaussian() const {
  return scale_cb_.index_bits() + rotation_cb_.index_bits() + dc_cb_.index_bits() +
         sh_cb_.index_bits();
}

}  // namespace sgs::vq
