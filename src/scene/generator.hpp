// Procedural Gaussian-cloud generator.
//
// The paper evaluates on trained 3DGS models of four photo datasets
// (Synthetic-NeRF, Synthetic-NSVF, Tanks&Temples, Deep Blending). Trained
// checkpoints are not redistributable and training them requires the photo
// datasets plus a differentiable rasterizer, so this reproduction generates
// *structurally equivalent* Gaussian clouds instead: surfel-like anisotropic
// Gaussians clustered on procedural surfaces (object shells, walls, ground
// planes), with scale/opacity/SH statistics matching published 3DGS model
// summaries. Every pipeline metric this repository measures — projection and
// filter pass rates, voxel occupancy, sort sizes, blend depth, DRAM traffic —
// depends on this structure, not on photographic content (see DESIGN.md §1).
#pragma once

#include <cstdint>

#include "gs/gaussian.hpp"

namespace sgs::scene {

enum class ClusterKind {
  kShell,   // Gaussians on a sphere surface (object-like)
  kBox,     // Gaussians on the faces of a box (furniture / buildings)
  kPlane,   // Gaussians on a finite plane patch (walls, ground)
  kBlob,    // volumetric fuzz (vegetation, clutter)
};

struct GeneratorConfig {
  std::size_t gaussian_count = 10000;
  // Cluster centers are placed uniformly in this box.
  Vec3f extent_min{-1.0f, -1.0f, -1.0f};
  Vec3f extent_max{1.0f, 1.0f, 1.0f};
  int cluster_count = 24;
  // Cluster size range as a fraction of the scene diagonal.
  float cluster_radius_min_frac = 0.03f;
  float cluster_radius_max_frac = 0.12f;
  // Log-normal splat scale distribution (log-space mean/std of the largest
  // semi-axis, in world units).
  float log_scale_mean = -4.6f;  // exp(-4.6) ~ 0.01
  float log_scale_std = 0.7f;
  // Surfel anisotropy: the normal-aligned axis is this fraction of the
  // tangent axes (trained 3DGS splats are strongly flattened).
  float flatness = 0.15f;
  // Opacity: mixture of mostly-opaque and translucent splats.
  float opaque_fraction = 0.7f;
  // Std-dev of the degree>=1 SH coefficients (view-dependence strength).
  float sh_ac_std = 0.08f;
  // Fraction of Gaussians placed on a ground plane spanning the extent
  // (real-world captures have large floors; synthetic objects do not).
  float ground_fraction = 0.0f;
  std::uint64_t seed = 1;
};

// Deterministically generates a model from the config (same seed, same
// model, independent of platform/thread count).
gs::GaussianModel generate_scene(const GeneratorConfig& config);

}  // namespace sgs::scene
