// Deterministic pseudo-random number generation.
//
// All stochastic components (scene generation, k-means init, fine-tuning
// jitter) draw from this splitmix64/xoshiro-style generator so that every
// experiment in the repository is bit-reproducible from a seed, independent
// of the standard library implementation.
#pragma once

#include <cstdint>

#include "common/vec.hpp"

namespace sgs {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : state_(seed) {
    // Warm up so nearby seeds diverge immediately.
    next_u64();
    next_u64();
  }

  std::uint64_t next_u64() {
    // splitmix64 (public domain, Sebastiano Vigna).
    state_ += 0x9E3779B97f4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, 1).
  float uniform() {
    return static_cast<float>(next_u64() >> 40) * (1.0f / 16777216.0f);
  }

  float uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next_u64() % n; }

  // Standard normal via Box–Muller (one value per call; the pair's second
  // member is intentionally dropped to keep the stream consumption simple).
  float normal() {
    float u1 = uniform();
    if (u1 < 1e-12f) u1 = 1e-12f;
    const float u2 = uniform();
    const float r = std::sqrt(-2.0f * std::log(u1));
    return r * std::cos(6.28318530718f * u2);
  }

  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  Vec3f uniform_vec3(float lo, float hi) {
    return {uniform(lo, hi), uniform(lo, hi), uniform(lo, hi)};
  }

  Vec3f normal_vec3(float stddev) {
    return {normal(0.0f, stddev), normal(0.0f, stddev), normal(0.0f, stddev)};
  }

  // Uniformly distributed point on the unit sphere.
  Vec3f unit_sphere() {
    const float z = uniform(-1.0f, 1.0f);
    const float phi = uniform(0.0f, 6.28318530718f);
    const float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    return {r * std::cos(phi), r * std::sin(phi), z};
  }

  // Fork an independent stream (for per-cluster / per-thread determinism).
  Rng fork(std::uint64_t salt) {
    return Rng(next_u64() ^ (salt * 0x9E3779B97f4A7C15ULL));
  }

 private:
  std::uint64_t state_;
};

}  // namespace sgs
