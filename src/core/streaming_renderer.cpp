#include "core/streaming_renderer.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_set>

#include "common/bitonic.hpp"
#include "common/parallel.hpp"
#include "core/hierarchical_filter.hpp"
#include "core/voxel_order.hpp"
#include "gs/blending.hpp"
#include "voxel/dda.hpp"

namespace sgs::core {

StreamingScene StreamingScene::prepare(const gs::GaussianModel& model,
                                       const StreamingConfig& config) {
  StreamingScene scene;
  scene.config_ = config;
  scene.original_model_ = model;

  if (config.use_vq) {
    scene.quantized_ = std::make_unique<vq::QuantizedModel>(
        vq::QuantizedModel::build(model, config.vq));
    scene.render_model_ = scene.quantized_->decode_all();
  } else {
    scene.render_model_ = model;
  }

  // The grid partitions by (exact) positions, which VQ leaves untouched.
  scene.grid_ = voxel::VoxelGrid::build(model, config.voxel_size);
  scene.layout_ = voxel::DataLayout(scene.grid_, config.use_vq);

  scene.coarse_max_scale_.resize(model.size());
  for (std::uint32_t i = 0; i < model.size(); ++i) {
    scene.coarse_max_scale_[i] =
        scene.render_model_.gaussians[i].max_scale();
  }
  return scene;
}

namespace {

struct Survivor {
  gs::ProjectedGaussian proj;
  std::uint32_t model_index;
};

}  // namespace

StreamingRenderResult render_streaming(const StreamingScene& scene,
                                       const gs::Camera& camera,
                                       const StreamingRenderOptions& options) {
  const bool collect_violators = options.collect_violators;
  StreamingConfig cfg = scene.config();
  if (options.coarse_filter_override) {
    cfg.use_coarse_filter = *options.coarse_filter_override;
  }
  const voxel::VoxelGrid& grid = scene.grid();
  const voxel::DataLayout& layout = scene.layout();
  const gs::GaussianModel& model = scene.render_model();

  const int width = camera.width();
  const int height = camera.height();
  const int gsz = cfg.group_size;
  const int groups_x = (width + gsz - 1) / gsz;
  const int groups_y = (height + gsz - 1) / gsz;
  const std::size_t group_count = static_cast<std::size_t>(groups_x) * groups_y;

  StreamingRenderResult result;
  result.image = Image(width, height, cfg.background);
  result.trace.group_size = gsz;
  result.trace.pixel_count = static_cast<std::uint64_t>(width) * height;
  result.trace.groups.resize(group_count);

  const Vec3f cam_pos = camera.position();
  // Depth key for voxel ordering: distance from camera to voxel center.
  auto depth_key = [&](voxel::DenseVoxelId v) {
    return (grid.voxel_center(v) - cam_pos).norm();
  };

  // --- VSU voxel table: per-frame voxel -> group binning -------------------
  // Each non-empty voxel's bounding sphere is projected once with the same
  // conservative bound the coarse filter uses; the voxel is a rendering
  // candidate for every group its screen bbox touches. Sampled rays below
  // only provide *ordering* edges — discovery is complete regardless of the
  // ray stride, so no pixel can see a Gaussian whose voxel was never
  // streamed.
  std::vector<std::vector<voxel::DenseVoxelId>> group_candidates(group_count);
  {
    std::mutex bin_mutex;
    const std::int32_t n_vox = grid.voxel_count();
    parallel_for(0, static_cast<std::size_t>(n_vox), [&](std::size_t vi) {
      const auto v = static_cast<voxel::DenseVoxelId>(vi);
      // Project the 8 voxel corners: for a convex box fully in front of the
      // near plane, the hull of the projected corners bounds the box's
      // projection exactly. The (rare) near-plane straddle falls back to
      // binning everywhere; boxes fully behind are skipped.
      const Vec3f lo = grid.voxel_min_corner(v);
      const float vs = grid.config().voxel_size;
      // Corners barely in front of the camera plane still project to finite
      // (very large, hence conservative) coordinates; only corners behind
      // this epsilon force the unbounded fallback. Gaussians nearer than the
      // real near clip are culled by the filters anyway.
      constexpr float kBinEps = 0.01f;
      int behind_near = 0;   // corners behind the true near plane
      int behind_eps = 0;    // corners with unusable projections
      float px0 = 1e30f, py0 = 1e30f, px1 = -1e30f, py1 = -1e30f;
      for (int corner = 0; corner < 8; ++corner) {
        const Vec3f p{lo.x + ((corner & 1) ? vs : 0.0f),
                      lo.y + ((corner & 2) ? vs : 0.0f),
                      lo.z + ((corner & 4) ? vs : 0.0f)};
        const Vec3f p_cam = camera.world_to_camera(p);
        if (p_cam.z <= gs::kNearClip) ++behind_near;
        if (p_cam.z <= kBinEps) {
          ++behind_eps;
          continue;
        }
        const Vec2f uv = camera.project_cam(p_cam);
        px0 = std::min(px0, uv.x);
        py0 = std::min(py0, uv.y);
        px1 = std::max(px1, uv.x);
        py1 = std::max(py1, uv.y);
      }
      if (behind_near == 8) return;  // fully behind the near plane
      int gx0, gx1, gy0, gy1;
      if (behind_eps > 0) {
        // Crosses the camera plane itself: projection unbounded.
        gx0 = 0; gy0 = 0; gx1 = groups_x - 1; gy1 = groups_y - 1;
      } else {
        // 1 px margin absorbs rounding at group borders.
        gx0 = std::max(0, static_cast<int>((px0 - 1.0f) / static_cast<float>(gsz)));
        gy0 = std::max(0, static_cast<int>((py0 - 1.0f) / static_cast<float>(gsz)));
        gx1 = std::min(groups_x - 1,
                       static_cast<int>((px1 + 1.0f) / static_cast<float>(gsz)));
        gy1 = std::min(groups_y - 1,
                       static_cast<int>((py1 + 1.0f) / static_cast<float>(gsz)));
        if (gx0 > gx1 || gy0 > gy1) return;  // fully off-screen
      }
      std::lock_guard<std::mutex> lk(bin_mutex);
      for (int gy = gy0; gy <= gy1; ++gy) {
        for (int gx = gx0; gx <= gx1; ++gx) {
          group_candidates[static_cast<std::size_t>(gy) * groups_x + gx].push_back(v);
        }
      }
    });
    // Parallel binning inserts in nondeterministic order; sort for
    // reproducibility (the table build order is fixed in hardware anyway).
    parallel_for(0, group_count, [&](std::size_t g) {
      std::sort(group_candidates[g].begin(), group_candidates[g].end());
    });
  }
  result.trace.voxel_table_steps = static_cast<std::uint64_t>(grid.voxel_count());

  std::mutex merge_mutex;
  StreamingStats total;
  std::unordered_set<std::uint32_t> violator_set;
  std::unordered_set<std::uint32_t> contributor_set;

  parallel_for(0, group_count, [&](std::size_t gi) {
    const int gx = static_cast<int>(gi) % groups_x;
    const int gy = static_cast<int>(gi) / groups_x;
    const int px0 = gx * gsz;
    const int py0 = gy * gsz;
    const int px1 = std::min(width, px0 + gsz);
    const int py1 = std::min(height, py0 + gsz);
    const int n_px = (px1 - px0) * (py1 - py0);
    const GroupRect rect{static_cast<float>(px0), static_cast<float>(py0),
                         static_cast<float>(px1), static_cast<float>(py1)};

    StreamingStats local;
    GroupWork& work = result.trace.groups[gi];
    work.rays = static_cast<std::uint32_t>(n_px);
    std::vector<std::uint32_t> local_violators;
    std::vector<std::uint32_t> local_contributors;

    // --- VSU: sampled-ray voxel orders --------------------------------------
    // Rays are marched on a stride grid that always includes the group's
    // last row/column, so the sampled frustum spans the full group.
    const int stride = std::max(1, cfg.ray_stride);
    std::vector<int> xs, ys;
    for (int px = px0; px < px1; px += stride) xs.push_back(px);
    if (xs.empty() || xs.back() != px1 - 1) xs.push_back(px1 - 1);
    for (int py = py0; py < py1; py += stride) ys.push_back(py);
    if (ys.empty() || ys.back() != py1 - 1) ys.push_back(py1 - 1);

    std::vector<std::vector<voxel::DenseVoxelId>> per_ray;
    per_ray.reserve(xs.size() * ys.size());
    voxel::DdaStats dda_stats;
    for (int py : ys) {
      for (int px : xs) {
        const gs::Ray ray = camera.pixel_ray(static_cast<float>(px) + 0.5f,
                                             static_cast<float>(py) + 0.5f);
        per_ray.push_back(
            voxel::intersected_voxels(ray, grid, 1e30f, &dda_stats));
      }
    }
    local.dda_steps = dda_stats.steps;
    work.dda_steps = dda_stats.steps;

    // Voxel-table candidates join as singleton "rays": they contribute no
    // ordering constraints (the depth-keyed heap places them) but guarantee
    // complete coverage for pixels the sampled rays missed.
    for (const voxel::DenseVoxelId v : group_candidates[gi]) {
      per_ray.push_back({v});
    }

    // --- VSU: global voxel order via topological sort -----------------------
    const VoxelOrderResult order = topological_voxel_order(per_ray, depth_key);
    local.topo_nodes = order.node_count;
    local.topo_edges = order.edge_count;
    local.cycle_breaks = order.cycle_breaks;
    work.nodes = static_cast<std::uint32_t>(order.node_count);
    work.edges = static_cast<std::uint32_t>(order.edge_count);
    work.voxels.reserve(order.order.size());

    // --- per-pixel compositing state ---------------------------------------
    std::vector<gs::PixelAccumulator> acc(static_cast<std::size_t>(n_px));
    std::vector<float> max_depth(static_cast<std::size_t>(n_px), 0.0f);
    int saturated = 0;

    std::vector<Survivor> survivors;
    std::vector<Survivor> sorted_survivors;
    std::vector<float> sort_keys;
    std::vector<std::uint32_t> sort_payload;
    for (voxel::DenseVoxelId v : order.order) {
      if (saturated == n_px) break;  // group fully opaque: stop streaming

      const auto residents = grid.gaussians_in(v);
      VoxelWorkItem item;
      item.residents = static_cast<std::uint32_t>(residents.size());
      item.coarse_bytes =
          static_cast<std::uint64_t>(residents.size()) * voxel::kCoarseRecordBytes;
      local.max_voxel_residents =
          std::max(local.max_voxel_residents, item.residents);

      // --- HFU: hierarchical filtering ------------------------------------
      survivors.clear();
      for (const std::uint32_t mi : residents) {
        bool coarse_ok = true;
        if (cfg.use_coarse_filter) {
          coarse_ok = coarse_filter(model.gaussians[mi].position,
                                    scene.coarse_max_scale(mi), camera, rect);
        }
        if (!coarse_ok) continue;
        ++item.coarse_pass;
        if (auto proj = fine_filter(model.gaussians[mi], camera, rect)) {
          ++item.fine_pass;
          survivors.push_back({*proj, mi});
        }
      }
      item.fine_bytes = layout.fine_bytes(item.coarse_pass);

      // --- per-voxel depth sort: the actual bitonic network the sorting
      // unit implements (fixed comparator schedule, +inf padding).
      if (survivors.size() > 1) {
        sort_keys.resize(survivors.size());
        sort_payload.resize(survivors.size());
        for (std::size_t k = 0; k < survivors.size(); ++k) {
          sort_keys[k] = survivors[k].proj.depth;
          sort_payload[k] = static_cast<std::uint32_t>(k);
        }
        bitonic_sort(sort_keys, sort_payload);
        sorted_survivors.clear();
        sorted_survivors.reserve(survivors.size());
        for (std::uint32_t idx : sort_payload) {
          sorted_survivors.push_back(survivors[idx]);
        }
        survivors.swap(sorted_survivors);
      }

      // --- rendering: partial pixel values stay on-chip --------------------
      const int row = px1 - px0;
      for (const Survivor& s : survivors) {
        if (saturated == n_px) break;
        const gs::PixelSpan span = gs::splat_pixel_span(
            s.proj.mean, s.proj.radius, px0, py0, px1, py1);
        bool contributed = false;
        bool violated = false;
        for (int py = span.y0; py < span.y1; ++py) {
          for (int px = span.x0; px < span.x1; ++px) {
            const int pi = (py - py0) * row + (px - px0);
            gs::PixelAccumulator& a = acc[static_cast<std::size_t>(pi)];
            if (a.saturated()) continue;
            ++item.blend_ops;
            const float alpha = gs::gaussian_alpha(
                s.proj,
                {static_cast<float>(px) + 0.5f, static_cast<float>(py) + 0.5f});
            if (alpha <= 0.0f) continue;
            contributed = true;
            ++local.blended_contributions;
            // Depth-order bookkeeping: the measured T_i of Eq. 2.
            float& md = max_depth[static_cast<std::size_t>(pi)];
            if (s.proj.depth < md - 1e-6f) {
              ++local.depth_order_violations;
              violated = true;
            } else {
              md = s.proj.depth;
            }
            gs::blend(a, s.proj.color, alpha);
            if (a.saturated()) ++saturated;
          }
        }
        if (contributed) local_contributors.push_back(s.model_index);
        if (violated) local_violators.push_back(s.model_index);
      }

      local.gaussians_streamed += item.residents;
      local.coarse_pass += item.coarse_pass;
      local.fine_pass += item.fine_pass;
      local.blend_ops += item.blend_ops;
      local.coarse_read_bytes += item.coarse_bytes;
      local.fine_read_bytes += item.fine_bytes;
      ++local.voxel_visits;
      work.voxels.push_back(item);
    }

    // Final pixel write-back (the only rendering-stage DRAM write).
    int pi = 0;
    for (int py = py0; py < py1; ++py) {
      for (int px = px0; px < px1; ++px, ++pi) {
        result.image.at(px, py) =
            gs::resolve(acc[static_cast<std::size_t>(pi)], cfg.background);
      }
    }
    local.frame_write_bytes = static_cast<std::uint64_t>(n_px) * 4;  // RGBA8

    std::lock_guard<std::mutex> lk(merge_mutex);
    total.coarse_read_bytes += local.coarse_read_bytes;
    total.fine_read_bytes += local.fine_read_bytes;
    total.frame_write_bytes += local.frame_write_bytes;
    total.gaussians_streamed += local.gaussians_streamed;
    total.coarse_pass += local.coarse_pass;
    total.fine_pass += local.fine_pass;
    total.blend_ops += local.blend_ops;
    total.blended_contributions += local.blended_contributions;
    total.depth_order_violations += local.depth_order_violations;
    total.dda_steps += local.dda_steps;
    total.voxel_visits += local.voxel_visits;
    total.topo_nodes += local.topo_nodes;
    total.topo_edges += local.topo_edges;
    total.cycle_breaks += local.cycle_breaks;
    total.max_voxel_residents =
        std::max(total.max_voxel_residents, local.max_voxel_residents);
    for (std::uint32_t v : local_violators) violator_set.insert(v);
    for (std::uint32_t c : local_contributors) contributor_set.insert(c);
  });

  total.gaussians_blended_unique = contributor_set.size();
  total.gaussians_violating_unique = violator_set.size();
  result.stats = total;
  result.trace.frame_write_bytes = total.frame_write_bytes;
  if (collect_violators) {
    result.violators.assign(violator_set.begin(), violator_set.end());
    std::sort(result.violators.begin(), result.violators.end());
  }
  return result;
}

}  // namespace sgs::core
