// Tests for the out-of-core streaming subsystem (src/stream/): the .sgsc
// asset store round-trip (v1 and tiered v2, including a frozen v1 fixture),
// residency-cache LRU/pinning/tier/determinism semantics, LOD tier
// selection, the prefetching loader, the async pool lane, and — the
// acceptance bar — golden proofs that cache-backed rendering is
// bit-identical to fully resident rendering (with LOD forced to L0) while
// actually exercising misses and evictions, and that adaptive tiers hold a
// PSNR bound while fetching fewer bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

#include "common/parallel.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "metrics/psnr.hpp"
#include "scene/generator.hpp"
#include "stream/asset_store.hpp"
#include "stream/lod_policy.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"
#include "stream_fault_testutil.hpp"

namespace sgs::stream {
namespace {

gs::GaussianModel test_model(std::uint64_t seed, std::size_t count) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = count;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.seed = seed;
  return scene::generate_scene(cfg);
}

core::StreamingScene test_scene(std::uint64_t seed, std::size_t count,
                                bool vq) {
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = vq;
  if (vq) {
    // Small books keep training fast; the format does not care.
    cfg.vq.scale_entries = 64;
    cfg.vq.rotation_entries = 64;
    cfg.vq.dc_entries = 64;
    cfg.vq.sh_entries = 32;
    cfg.vq.kmeans_iters = 4;
    cfg.vq.refine_iters = 1;
  }
  return core::StreamingScene::prepare(test_model(seed, count), cfg);
}

gs::Camera test_camera(int size = 128) {
  return gs::Camera::look_at({0, 0, -6}, {0, 0, 0}, {0, 1, 0}, 0.9f, size,
                             size);
}

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& p) : path(p) {}
  ~TempFile() { std::remove(path.c_str()); }
};

bool gaussians_equal(const gs::Gaussian& a, const gs::Gaussian& b) {
  return a.position == b.position && a.scale == b.scale &&
         a.rotation == b.rotation && a.opacity == b.opacity && a.sh == b.sh;
}

// ------------------------------------------------------------- AssetStore --

void expect_store_matches_scene(const AssetStore& store,
                                const core::StreamingScene& scene) {
  const voxel::VoxelGrid& g0 = scene.grid();
  const voxel::VoxelGrid& g1 = store.grid();
  ASSERT_EQ(g1.voxel_count(), g0.voxel_count());
  ASSERT_EQ(g1.gaussian_count(), g0.gaussian_count());
  EXPECT_EQ(g1.config().origin, g0.config().origin);
  EXPECT_EQ(g1.config().dims, g0.config().dims);
  EXPECT_EQ(g1.config().voxel_size, g0.config().voxel_size);

  for (voxel::DenseVoxelId v = 0; v < g0.voxel_count(); ++v) {
    // Spatial index round-trips exactly.
    ASSERT_EQ(g1.raw_of_dense(v), g0.raw_of_dense(v));
    const auto r0 = g0.gaussians_in(v);
    const auto r1 = g1.gaussians_in(v);
    ASSERT_EQ(r1.size(), r0.size());
    for (std::size_t k = 0; k < r0.size(); ++k) EXPECT_EQ(r1[k], r0[k]);

    // Decoded payloads reproduce the render model bit-for-bit.
    const DecodedGroup group = store.read_group(v);
    ASSERT_EQ(group.size(), r0.size());
    for (std::size_t k = 0; k < r0.size(); ++k) {
      EXPECT_EQ(group.model_indices[k], r0[k]);
      const gs::Gaussian& expect = scene.render_model().gaussians[r0[k]];
      EXPECT_TRUE(gaussians_equal(group.gaussian(k), expect));
      EXPECT_EQ(group.max_scale(k), scene.coarse_max_scale(r0[k]));
    }
  }
}

TEST(AssetStore, RawRoundTripIsBitExact) {
  const auto scene = test_scene(7, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_raw.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));

  AssetStore store(file.path);
  EXPECT_FALSE(store.vector_quantized());
  EXPECT_EQ(store.payload_bytes_total(),
            scene.grid().gaussian_count() * 236u);
  expect_store_matches_scene(store, scene);

  const auto scene_ooc = store.make_scene();
  EXPECT_FALSE(scene_ooc.params_resident());
  EXPECT_EQ(scene_ooc.config().group_size, scene.config().group_size);
  EXPECT_EQ(scene_ooc.layout().total_bytes(), scene.layout().total_bytes());
}

TEST(AssetStore, VqRoundTripIsBitExact) {
  const auto scene = test_scene(8, 2000, /*vq=*/true);
  TempFile file("/tmp/sgs_test_vq.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));

  AssetStore store(file.path);
  EXPECT_TRUE(store.vector_quantized());
  EXPECT_EQ(store.payload_bytes_total(), scene.grid().gaussian_count() * 24u);
  expect_store_matches_scene(store, scene);
}

TEST(AssetStore, RejectsGarbageAndTruncation) {
  TempFile file("/tmp/sgs_test_bad.sgsc");
  {
    std::ofstream out(file.path, std::ios::binary);
    out.write("not a store at all", 18);
  }
  EXPECT_THROW(AssetStore store(file.path), std::runtime_error);

  const auto scene = test_scene(9, 500, /*vq=*/false);
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  std::ifstream in(file.path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  // Cut the file mid-payload: the metadata still parses, but the directory
  // now references payloads beyond EOF — open fails fast instead of letting
  // a later read_group decode garbage.
  {
    std::ofstream out(file.path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(AssetStore store(file.path), std::runtime_error);

  // Cut inside the metadata: open fails while parsing the header.
  {
    std::ofstream out(file.path, std::ios::binary);
    out.write(bytes.data(), 40);
  }
  EXPECT_THROW(AssetStore store(file.path), std::runtime_error);
}

// ------------------------------------------------------- tiered stores --

// Importance the writer prunes by, recomputed independently of the store.
std::vector<float> group_importance(const core::StreamingScene& scene,
                                    std::span<const std::uint32_t> residents) {
  std::vector<float> imp;
  imp.reserve(residents.size());
  for (const std::uint32_t mi : residents) {
    const gs::Gaussian& g = scene.render_model().gaussians[mi];
    imp.push_back(g.opacity * g.max_scale());
  }
  return imp;
}

// The opacity-compensation factor the writer applies to a pruned tier.
float opacity_comp(const core::StreamingScene& scene,
                   std::span<const std::uint32_t> full,
                   std::span<const std::uint32_t> kept) {
  float full_mass = 0.0f, kept_mass = 0.0f;
  for (const std::uint32_t mi : full) {
    full_mass += scene.render_model().gaussians[mi].opacity;
  }
  for (const std::uint32_t mi : kept) {
    kept_mass += scene.render_model().gaussians[mi].opacity;
  }
  return kept_mass > 0.0f ? std::clamp(full_mass / kept_mass, 1.0f, 2.0f)
                          : 1.0f;
}

TEST(AssetStore, TieredStoreRoundTripsAllTiers) {
  const auto scene = test_scene(21, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_tiered.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;  // default tier specs: L1 = SH4, L2 = DC + prune
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));

  AssetStore store(file.path);
  EXPECT_EQ(store.tier_count(), 3);
  EXPECT_EQ(store.tier_sh_coeffs(0), gs::kShCoeffCount);
  EXPECT_EQ(store.tier_sh_coeffs(1), 4);
  EXPECT_EQ(store.tier_sh_coeffs(2), 1);
  // Tier 0 is the full-fidelity scene of v1.
  EXPECT_EQ(store.payload_bytes_total(),
            scene.grid().gaussian_count() * 236u);
  expect_store_matches_scene(store, scene);
  // Degraded tiers shrink on disk, in order (92 B and 56 B records).
  EXPECT_LT(store.payload_bytes_tier(1), store.payload_bytes_tier(0));
  EXPECT_LT(store.payload_bytes_tier(2), store.payload_bytes_tier(1));

  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    const auto full = store.group_indices(v, 0);
    const std::vector<float> imp = group_importance(scene, full);
    std::uint32_t prev = store.tier_extent(v, 0).count;
    ASSERT_EQ(prev, full.size());
    for (int t = 1; t < 3; ++t) {
      const TierExtent& x = store.tier_extent(v, t);
      const int sh_n = store.tier_sh_coeffs(t);
      // Monotone non-increasing, never empty for a non-empty group.
      EXPECT_LE(x.count, prev);
      if (prev > 0) {
        EXPECT_GE(x.count, 1u);
      }
      prev = x.count;
      EXPECT_EQ(x.bytes,
                x.count * (11u + 3u * static_cast<std::uint32_t>(sh_n)) * 4u);

      // The tier keeps exactly the top-count importances of the group.
      const auto sub = store.group_indices(v, t);
      ASSERT_EQ(sub.size(), x.count);
      std::vector<float> all_sorted = imp;
      std::sort(all_sorted.begin(), all_sorted.end(), std::greater<float>());
      std::vector<float> sub_imp = group_importance(scene, sub);
      std::sort(sub_imp.begin(), sub_imp.end(), std::greater<float>());
      for (std::size_t k = 0; k < sub_imp.size(); ++k) {
        EXPECT_EQ(sub_imp[k], all_sorted[k]);
      }

      // Decoded tier records: exact geometry, SH truncated to the tier's
      // band (zero tail), opacity scaled by the group's compensation.
      const float comp = opacity_comp(scene, full, sub);
      const DecodedGroup group = store.read_group(v, t);
      EXPECT_EQ(group.tier, t);
      EXPECT_EQ(group.payload_bytes, x.bytes);
      ASSERT_EQ(group.size(), sub.size());
      for (std::size_t k = 0; k < sub.size(); ++k) {
        EXPECT_EQ(group.model_indices[k], sub[k]);
        const gs::Gaussian& expect =
            scene.render_model().gaussians[sub[k]];
        const gs::Gaussian got = group.gaussian(k);
        EXPECT_EQ(got.position, expect.position);
        EXPECT_EQ(got.scale, expect.scale);
        EXPECT_EQ(got.rotation, expect.rotation);
        EXPECT_EQ(got.opacity, std::min(1.0f, expect.opacity * comp));
        for (int c = 0; c < gs::kShCoeffCount; ++c) {
          const Vec3f want =
              c < sh_n ? expect.sh[static_cast<std::size_t>(c)]
                       : Vec3f{0.0f, 0.0f, 0.0f};
          EXPECT_EQ(got.sh[static_cast<std::size_t>(c)], want);
        }
      }
    }
  }
}

TEST(AssetStore, TieredVqStoreRoundTrips) {
  const auto scene = test_scene(22, 2000, /*vq=*/true);
  TempFile file("/tmp/sgs_test_tiered_vq.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 2;
  // VQ records cannot truncate mid-codebook: DC-only (drops the 2-byte SH
  // index) plus pruning is the VQ degradation axis.
  wopts.tiers[1] = TierSpec{0.6f, 1};
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));

  AssetStore store(file.path);
  EXPECT_EQ(store.tier_count(), 2);
  EXPECT_TRUE(store.vector_quantized());
  EXPECT_EQ(store.payload_bytes_total(), scene.grid().gaussian_count() * 24u);
  expect_store_matches_scene(store, scene);
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    const auto full = store.group_indices(v, 0);
    const auto sub = store.group_indices(v, 1);
    EXPECT_EQ(store.tier_extent(v, 1).bytes, sub.size() * 22u);
    const float comp = opacity_comp(scene, full, sub);
    const DecodedGroup group = store.read_group(v, 1);
    ASSERT_EQ(group.size(), sub.size());
    for (std::size_t k = 0; k < sub.size(); ++k) {
      const gs::Gaussian& expect = scene.render_model().gaussians[sub[k]];
      const gs::Gaussian got = group.gaussian(k);
      EXPECT_EQ(got.position, expect.position);
      EXPECT_EQ(got.scale, expect.scale);
      EXPECT_EQ(got.rotation, expect.rotation);
      EXPECT_EQ(got.opacity, std::min(1.0f, expect.opacity * comp));
      EXPECT_EQ(got.sh[0], expect.sh[0]);  // DC survives via its codebook
      for (int c = 1; c < gs::kShCoeffCount; ++c) {
        EXPECT_EQ(got.sh[static_cast<std::size_t>(c)],
                  (Vec3f{0.0f, 0.0f, 0.0f}));
      }
    }
  }
}

// A tier that degrades nothing must not duplicate payload bytes: VQ
// records keep their full 24 B (the SH index decodes the whole codebook
// entry) for any sh_coeffs > 1, so the default L1 spec aliases L0.
TEST(AssetStore, NoOpVqTierAliasesThePayloadAbove) {
  const auto scene = test_scene(29, 1500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_vq_alias.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;  // defaults: L1 {keep 1, sh 4} is a VQ no-op
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));

  AssetStore store(file.path);
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    // L1 shares L0's payload bytes exactly...
    EXPECT_EQ(store.tier_extent(v, 1).offset, store.tier_extent(v, 0).offset);
    EXPECT_EQ(store.tier_extent(v, 1).bytes, store.tier_extent(v, 0).bytes);
    // ...while the genuinely degraded L2 has its own.
    if (store.tier_extent(v, 2).count > 0) {
      EXPECT_NE(store.tier_extent(v, 2).offset,
                store.tier_extent(v, 0).offset);
    }
  }
  // Aliased or not, both tiers decode bit-identically to the scene.
  const DecodedGroup g1 = store.read_group(0, 1);
  const auto full = store.group_indices(0, 0);
  ASSERT_EQ(g1.size(), full.size());
  for (std::size_t k = 0; k < full.size(); ++k) {
    EXPECT_TRUE(gaussians_equal(g1.gaussian(k),
                                scene.render_model().gaussians[full[k]]));
  }
}

TEST(AssetStore, RejectsBadTierOptions) {
  const auto scene = test_scene(23, 300, /*vq=*/false);
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 0;
  EXPECT_FALSE(AssetStore::write("/tmp/sgs_test_bad_tiers.sgsc", scene, wopts));
  wopts.tier_count = kLodTierCount + 1;
  EXPECT_FALSE(AssetStore::write("/tmp/sgs_test_bad_tiers.sgsc", scene, wopts));
}

// ---------------------------------------------------------- v1 fixture --

// The frozen-fixture scene: literal parameters only (no transcendental
// math), so the v1 writer's bytes are platform-independent and the
// checked-in file stays byte-exact forever.
gs::GaussianModel fixture_model() {
  gs::GaussianModel m;
  auto add = [&m](float x, float y, float z, float s, float o) {
    gs::Gaussian g;
    g.position = {x, y, z};
    g.scale = {s, s * 0.5f, s * 0.25f};
    g.rotation = {1.0f, 0.0f, 0.0f, 0.0f};
    g.opacity = o;
    for (int c = 0; c < gs::kShCoeffCount; ++c) {
      g.sh[static_cast<std::size_t>(c)] = {0.5f, 0.25f, 0.125f};
    }
    m.gaussians.push_back(g);
  };
  add(0.25f, 0.25f, 0.25f, 0.5f, 0.875f);
  add(0.75f, 0.5f, 0.25f, 0.25f, 0.5f);
  add(1.5f, 0.5f, 0.5f, 0.125f, 0.75f);
  add(1.25f, 1.75f, 0.5f, 0.375f, 0.25f);
  add(2.5f, 2.5f, 2.25f, 0.0625f, 1.0f);
  return m;
}

core::StreamingScene fixture_scene() {
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  return core::StreamingScene::prepare(fixture_model(), cfg);
}

std::vector<char> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

// Backward compatibility, pinned by a checked-in binary: the v2 reader
// must load a frozen v1 file bit-identically to what today's v1 writer
// round-trips — if either the writer or the reader drifts, this fails.
TEST(AssetStore, FrozenV1FixtureLoadsBitIdentically) {
  const std::string fixture =
      std::string(SGS_SOURCE_DIR) + "/tests/data/sgsc_v1_fixture.sgsc";
  const auto scene = fixture_scene();

  // Today's writer with tier_count == 1 must still emit exactly the
  // frozen v1 bytes...
  TempFile rewrite("/tmp/sgs_test_fixture_rewrite.sgsc");
  ASSERT_TRUE(AssetStore::write(rewrite.path, scene));
  EXPECT_EQ(read_all(rewrite.path), read_all(fixture));

  // ...and today's (v2-capable) reader must load the frozen file as a
  // single-tier store that decodes bit-identically to the scene.
  AssetStore store(fixture);
  EXPECT_EQ(store.tier_count(), 1);
  EXPECT_FALSE(store.vector_quantized());
  expect_store_matches_scene(store, scene);
}

TEST(AssetStore, WriteRequiresResidentParams) {
  const auto scene = test_scene(10, 400, /*vq=*/false);
  TempFile file("/tmp/sgs_test_parts.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  // A scene assembled from store metadata has no parameters to serialize.
  EXPECT_FALSE(AssetStore::write("/tmp/sgs_test_parts2.sgsc",
                                 store.make_scene()));
}

// --------------------------------------------------------- ResidencyCache --

// One Gaussian per voxel in a row of voxels: every group decodes to the
// same resident size, so eviction arithmetic is exact.
core::StreamingScene uniform_groups_scene(int n_groups) {
  gs::GaussianModel m;
  for (int i = 0; i < n_groups; ++i) {
    gs::Gaussian g;
    g.position = {static_cast<float>(i) + 0.5f, 0.5f, 0.5f};
    m.gaussians.push_back(g);
  }
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  return core::StreamingScene::prepare(m, cfg);
}

TEST(ResidencyCache, HitsMissesAndLruEviction) {
  const auto scene = uniform_groups_scene(8);
  TempFile file("/tmp/sgs_test_cache.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ASSERT_EQ(store.group_count(), 8);

  // Budget: exactly two decoded groups (all groups are the same size).
  const std::uint64_t unit = store.read_group(0).resident_bytes();
  ResidencyCacheConfig cfg;
  cfg.budget_bytes = 2 * unit;
  ResidencyCache cache(store, cfg);

  auto touch = [&cache](voxel::DenseVoxelId v) {
    cache.acquire(v);
    cache.release(v);
  };

  touch(0);  // miss
  touch(0);  // hit
  touch(1);  // miss
  touch(2);  // miss; evicts 0 (the least recently used)
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(cache.resident_bytes(), cfg.budget_bytes);
  EXPECT_FALSE(cache.resident(0));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_TRUE(cache.resident(2));

  // LRU order respects touches: re-warming 1 makes 2 the next victim.
  touch(1);  // hit: still resident
  touch(3);  // miss; evicts 2
  EXPECT_TRUE(cache.resident(1));
  EXPECT_FALSE(cache.resident(2));
  EXPECT_TRUE(cache.resident(3));
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().bytes_fetched, 4 * store.entry(0).bytes);
}

TEST(ResidencyCache, DeterministicUnderFixedRequestTrace) {
  const auto scene = test_scene(12, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_det.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  const int n = store.group_count();
  ASSERT_GE(n, 3);

  // A fixed pseudo-random request trace, replayed on two fresh caches with
  // the same budget: every counter and the final resident set must agree.
  std::vector<voxel::DenseVoxelId> trace;
  std::uint64_t x = 12345;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    trace.push_back(static_cast<voxel::DenseVoxelId>((x >> 33) % n));
  }

  ResidencyCacheConfig cfg;
  cfg.budget_bytes = store.payload_bytes_total() / 3;
  auto run = [&](ResidencyCache& cache) {
    for (const voxel::DenseVoxelId v : trace) {
      cache.acquire(v);
      cache.release(v);
    }
    return cache.stats();
  };

  ResidencyCache a(store, cfg), b(store, cfg);
  const auto sa = run(a);
  const auto sb = run(b);
  EXPECT_EQ(sa.hits, sb.hits);
  EXPECT_EQ(sa.misses, sb.misses);
  EXPECT_EQ(sa.evictions, sb.evictions);
  EXPECT_EQ(sa.bytes_fetched, sb.bytes_fetched);
  EXPECT_EQ(sa.hits + sa.misses, trace.size());
  EXPECT_GT(sa.evictions, 0u);
  for (voxel::DenseVoxelId v = 0; v < n; ++v) {
    EXPECT_EQ(a.resident(v), b.resident(v));
  }
}

TEST(ResidencyCache, PlanPinsBlockEvictionUntilEndFrame) {
  const auto scene = test_scene(13, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_pin.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ASSERT_GE(store.group_count(), 3);

  ResidencyCacheConfig cfg;
  cfg.budget_bytes = 1;  // nothing fits: everything unpinned is evicted
  ResidencyCache cache(store, cfg);

  const std::vector<voxel::DenseVoxelId> pinned = {0, 1};
  cache.begin_frame(FrameIntent{}, pinned);
  cache.acquire(0);
  cache.release(0);
  cache.acquire(1);
  cache.release(1);
  // Both released and far over budget, yet plan-pinned: still resident.
  EXPECT_TRUE(cache.resident(0));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 0u);

  cache.end_frame();  // pins drop; the overshoot drains
  EXPECT_FALSE(cache.resident(0));
  EXPECT_FALSE(cache.resident(1));
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ResidencyCache, PrefetchCountsSeparatelyFromMisses) {
  const auto scene = test_scene(14, 1500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_pf.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});

  EXPECT_TRUE(cache.prefetch(0));
  EXPECT_FALSE(cache.prefetch(0));  // already resident
  cache.acquire(0);
  cache.release(0);
  const auto s = cache.stats();
  EXPECT_EQ(s.prefetches, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.bytes_fetched, store.entry(0).bytes);
}

TEST(ResidencyCache, TierUpgradeRefetchesOnlyThatGroup) {
  const auto scene = test_scene(24, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_tier_cache.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);

  // A group where the tiers actually differ in size.
  voxel::DenseVoxelId v = -1;
  for (voxel::DenseVoxelId i = 0; i < store.group_count(); ++i) {
    if (store.tier_extent(i, 2).count < store.tier_extent(i, 0).count) {
      v = i;
      break;
    }
  }
  ASSERT_GE(v, 0) << "scene has no group with a pruned tier";

  ResidencyCache cache(store, {});
  // First touch at L2: a plain miss that fetches the pruned payload.
  const AcquireOutcome o2 = cache.acquire_outcome(v, 2);
  EXPECT_TRUE(o2.missed);
  EXPECT_FALSE(o2.upgraded);
  EXPECT_EQ(o2.served_tier, 2);
  EXPECT_EQ(o2.bytes_fetched, store.tier_extent(v, 2).bytes);
  EXPECT_EQ(o2.view.size(), store.tier_extent(v, 2).count);
  cache.release(v);
  EXPECT_EQ(cache.resident_tier(v), 2);

  // A resident L2 satisfies an L2-or-worse request without fetching...
  const AcquireOutcome o2b = cache.acquire_outcome(v, 2);
  EXPECT_FALSE(o2b.missed);
  EXPECT_EQ(o2b.served_tier, 2);
  cache.release(v);

  // ...but an L0 request refetches only this group (an upgrade).
  const AcquireOutcome o0 = cache.acquire_outcome(v, 0);
  EXPECT_TRUE(o0.missed);
  EXPECT_TRUE(o0.upgraded);
  EXPECT_EQ(o0.served_tier, 0);
  EXPECT_EQ(o0.bytes_fetched, store.tier_extent(v, 0).bytes);
  EXPECT_EQ(o0.view.size(), store.tier_extent(v, 0).count);
  cache.release(v);
  EXPECT_EQ(cache.resident_tier(v), 0);

  // Once upgraded, a worse request is a hit served at the better tier.
  const AcquireOutcome o1 = cache.acquire_outcome(v, 1);
  EXPECT_FALSE(o1.missed);
  EXPECT_EQ(o1.served_tier, 0);
  cache.release(v);

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.upgrades, 1u);
  EXPECT_EQ(s.tier_misses[2], 1u);
  EXPECT_EQ(s.tier_misses[0], 1u);
  EXPECT_EQ(s.tier_hits[2], 1u);
  EXPECT_EQ(s.tier_hits[0], 1u);
  EXPECT_EQ(s.tier_bytes_fetched[0] + s.tier_bytes_fetched[2],
            s.bytes_fetched);
  // hits + misses still partitions the accesses under tiering.
  EXPECT_EQ(s.accesses(), 4u);
}

TEST(ResidencyCache, PrefetchUpgradesUnpinnedGroupsOnly) {
  const auto scene = test_scene(25, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_tier_pf.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});

  // Prefetch at L2, then an L0 prefetch upgrades in place.
  EXPECT_TRUE(cache.prefetch(0, 2));
  EXPECT_EQ(cache.resident_tier(0), 2);
  EXPECT_FALSE(cache.prefetch(0, 2));  // already satisfied
  EXPECT_TRUE(cache.prefetch(0, 0));   // upgrade
  EXPECT_EQ(cache.resident_tier(0), 0);
  EXPECT_FALSE(cache.prefetch(0, 1));  // resident tier is better: no-op

  // A pinned group refuses the prefetch upgrade (it must not block the
  // async lane on the readers); demand acquire pays it after release.
  cache.acquire_outcome(1, 2);
  EXPECT_FALSE(cache.prefetch(1, 0));
  EXPECT_EQ(cache.resident_tier(1), 2);
  cache.release(1);
  EXPECT_TRUE(cache.prefetch(1, 0));
  EXPECT_EQ(cache.resident_tier(1), 0);

  const auto s = cache.stats();
  // Three prefetches (group 0 twice, group 1 once); group 1's first touch
  // was a demand miss, not a prefetch.
  EXPECT_EQ(s.prefetches, 3u);
  EXPECT_EQ(s.tier_prefetches[2], 1u);
  EXPECT_EQ(s.tier_prefetches[0], 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.upgrades, 0u);  // upgrades counts demand refetches only
}

// -------------------------------------------------------------- LodPolicy --

TEST(LodPolicy, FootprintTiersAreMonotoneInDepth) {
  const auto scene = test_scene(26, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_lod_sel.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);

  const gs::Camera cam = test_camera();
  FrameIntent intent;
  intent.camera = &cam;
  LodPolicy policy;
  policy.footprint_full_px = 40.0f;
  policy.footprint_half_px = 20.0f;

  // Tier must not improve with distance.
  struct DT {
    float depth;
    int tier;
  };
  std::vector<DT> picks;
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    const auto& e = store.entry(v);
    const Vec3f center = (e.aabb_min + e.aabb_max) * 0.5f;
    picks.push_back({(center - cam.position()).norm(),
                     select_group_tier(store, intent, v, policy)});
  }
  std::sort(picks.begin(), picks.end(),
            [](const DT& a, const DT& b) { return a.depth < b.depth; });
  // Footprint uses the nearest depth of the AABB, not the center distance,
  // so allow equal-depth jitter but require global near-low/far-high shape.
  EXPECT_LT(picks.front().tier, 2);
  EXPECT_GT(picks.back().tier, 0);

  // force_tier0 and single-tier clamping.
  LodPolicy forced = policy;
  forced.force_tier0 = true;
  LodPolicy shallow = policy;
  shallow.max_tier = 1;
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    EXPECT_EQ(select_group_tier(store, intent, v, forced), 0);
    EXPECT_LE(select_group_tier(store, intent, v, shallow), 1);
  }
}

TEST(LodPolicy, BudgetDemotesFarGroupsDeterministically) {
  const auto scene = test_scene(27, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_lod_budget.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);

  const gs::Camera cam = test_camera();
  FrameIntent intent;
  intent.camera = &cam;
  std::vector<voxel::DenseVoxelId> plan(
      static_cast<std::size_t>(store.group_count()));
  for (std::size_t i = 0; i < plan.size(); ++i) {
    plan[i] = static_cast<voxel::DenseVoxelId>(i);
  }

  LodPolicy generous;
  generous.footprint_full_px = 1.0f;  // everything wants L0...
  generous.footprint_half_px = 0.5f;
  LodPolicy tight = generous;
  tight.frame_fetch_budget_bytes = store.payload_bytes_total() / 10;

  const TierSelection base = select_frame_tiers(store, intent, plan, generous);
  EXPECT_EQ(base.demoted, 0u);
  EXPECT_EQ(base.histogram[0],
            static_cast<std::uint32_t>(store.group_count()));

  // ...but the byte budget demotes the far tail to max_tier.
  const TierSelection cut = select_frame_tiers(store, intent, plan, tight);
  EXPECT_GT(cut.demoted, 0u);
  EXPECT_GT(cut.histogram[2], 0u);
  EXPECT_LT(cut.histogram[0], base.histogram[0]);
  std::uint32_t covered = 0;
  for (const auto h : cut.histogram) covered += h;
  EXPECT_EQ(covered, static_cast<std::uint32_t>(plan.size()));

  // Near groups keep their tier; demotion eats from the far end: the
  // nearest plan group must still be L0 under the tight budget.
  voxel::DenseVoxelId nearest = plan[0];
  float best = 1e30f;
  for (const voxel::DenseVoxelId v : plan) {
    const auto& e = store.entry(v);
    const Vec3f center = (e.aabb_min + e.aabb_max) * 0.5f;
    const float d = (center - cam.position()).norm();
    if (d < best) {
      best = d;
      nearest = v;
    }
  }
  EXPECT_EQ(cut.tier_by_group[static_cast<std::size_t>(nearest)], 0);

  // Pure function of (camera, policy, store): two calls agree exactly.
  const TierSelection again = select_frame_tiers(store, intent, plan, tight);
  EXPECT_EQ(again.tier_by_group, cut.tier_by_group);
  EXPECT_EQ(again.demoted, cut.demoted);
}

TEST(LodPolicy, NamedPoliciesParse) {
  EXPECT_TRUE(lod_policy_from_name("off").force_tier0);
  EXPECT_TRUE(lod_policy_from_name("l0").force_tier0);
  EXPECT_LT(lod_policy_from_name("quality").footprint_full_px,
            lod_policy_from_name("balanced").footprint_full_px);
  EXPECT_GT(lod_policy_from_name("aggressive").footprint_full_px,
            lod_policy_from_name("balanced").footprint_full_px);
  EXPECT_THROW(lod_policy_from_name("warp9"), std::invalid_argument);
}

// -------------------------------------------------------- StreamingLoader --

TEST(StreamingLoader, RanksVisibleGroupsNearToFarUnderCaps) {
  const auto scene = test_scene(15, 3000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_rank.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});

  PrefetchConfig pcfg;
  pcfg.max_groups_per_frame = 8;
  StreamingLoader loader(cache, pcfg);

  const gs::Camera cam = test_camera();
  FrameIntent intent;
  intent.camera = &cam;
  const auto batch = loader.rank_prefetch(intent);
  ASSERT_FALSE(batch.empty());
  EXPECT_LE(batch.size(), pcfg.max_groups_per_frame);

  // Near-to-far ordering; single-tier store means every request is L0.
  float prev = -1.0f;
  for (const PrefetchRequest& r : batch) {
    EXPECT_EQ(r.tier, 0);
    const auto& e = store.entry(r.id);
    const Vec3f center = (e.aabb_min + e.aabb_max) * 0.5f;
    const float d = (center - cam.position()).norm();
    EXPECT_GE(d, prev);
    prev = d;
  }

  // Resident groups drop out of the ranking.
  for (const PrefetchRequest& r : batch) cache.prefetch(r.id);
  const auto batch2 = loader.rank_prefetch(intent);
  for (const PrefetchRequest& r : batch2) {
    EXPECT_FALSE(cache.resident(r.id));
  }
}

TEST(StreamingLoader, AsyncBeginFrameWarmsTheCache) {
  const auto scene = test_scene(16, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_warm.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});
  StreamingLoader loader(cache);

  const gs::Camera cam = test_camera();
  FrameIntent intent;
  intent.camera = &cam;
  loader.begin_frame(intent, {});
  loader.wait_idle();
  loader.end_frame();
  const auto s = loader.stats();
  EXPECT_GT(s.prefetches, 0u);
  EXPECT_GT(s.bytes_fetched, 0u);
  EXPECT_EQ(s.misses, 0u);
}

// -------------------------------------------------------------- async lane --

TEST(AsyncLane, RunsTasksFifoAndWaitsIdle) {
  std::vector<int> order;
  std::atomic<int> sum{0};
  for (int i = 0; i < 16; ++i) {
    async_submit([i, &order, &sum] {
      order.push_back(i);  // single lane worker: no race on the vector
      sum += i;
    });
  }
  async_wait_idle();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(sum.load(), 120);
}

// ------------------------------------------------- golden: OOC == resident --

std::vector<gs::Camera> orbit_trajectory(int frames, int size) {
  std::vector<gs::Camera> cams;
  for (int f = 0; f < frames; ++f) {
    const float t =
        0.6f * static_cast<float>(f) / static_cast<float>(frames);
    const float a = 6.2831853f * t;
    cams.push_back(gs::Camera::look_at(
        {6.0f * std::sin(a), 1.0f, -6.0f * std::cos(a)}, {0, 0, 0}, {0, 1, 0},
        0.9f, size, size));
  }
  return cams;
}

void golden_out_of_core(bool vq, int store_tiers = 1) {
  const auto scene = test_scene(vq ? 18 : 17, 2500, vq);
  TempFile file(vq ? "/tmp/sgs_test_golden_vq.sgsc"
                   : "/tmp/sgs_test_golden_raw.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = store_tiers;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);

  // Budget well below the scene so the walkthrough must evict and refetch.
  ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  ResidencyCache cache(store, ccfg);
  PrefetchConfig pcfg;
  pcfg.synchronous = true;  // deterministic stats for the assertions below
  // On a multi-tier store, forcing L0 everywhere must restore the exact
  // resident pixels — the tentpole's bit-exactness invariant.
  pcfg.lod.force_tier0 = true;
  StreamingLoader loader(cache, pcfg);
  const auto scene_ooc = store.make_scene();

  const auto cameras = orbit_trajectory(vq ? 3 : 6, 128);
  core::SequenceOptions seq;
  const auto resident = core::render_sequence(scene, cameras, seq);
  const auto ooc = core::render_sequence(scene_ooc, cameras, seq, &loader);

  ASSERT_EQ(ooc.frames.size(), resident.frames.size());
  core::StreamCacheStats total;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    const auto& a = resident.frames[f];
    const auto& b = ooc.frames[f];
    // The acceptance bar: bit-identical image bytes...
    EXPECT_EQ(a.image.pixels(), b.image.pixels()) << "frame " << f;
    // ...and identical streaming stats (same voxels, same survivors).
    EXPECT_EQ(a.stats.gaussians_streamed, b.stats.gaussians_streamed);
    EXPECT_EQ(a.stats.coarse_pass, b.stats.coarse_pass);
    EXPECT_EQ(a.stats.fine_pass, b.stats.fine_pass);
    EXPECT_EQ(a.stats.blend_ops, b.stats.blend_ops);
    EXPECT_EQ(a.stats.total_dram_bytes(), b.stats.total_dram_bytes());
    // Resident frames report no cache activity; OOC frames do.
    EXPECT_EQ(a.trace.cache.accesses(), 0u);
    EXPECT_GT(b.trace.cache.accesses(), 0u);
    total.accumulate(b.trace.cache);
  }
  // The walkthrough really was out of core: hits, misses, evictions, and
  // fetch traffic all non-zero under the 35% budget.
  EXPECT_GT(total.hit_rate(), 0.0);
  EXPECT_GT(total.hits, 0u);
  EXPECT_GT(total.misses + total.prefetches, 0u);
  EXPECT_GT(total.evictions, 0u);
  EXPECT_GT(total.bytes_fetched, 0u);
}

TEST(OutOfCoreGolden, RawWalkthroughBitIdenticalWithEvictions) {
  golden_out_of_core(/*vq=*/false);
}

TEST(OutOfCoreGolden, VqWalkthroughBitIdenticalWithEvictions) {
  golden_out_of_core(/*vq=*/true);
}

TEST(OutOfCoreGolden, TieredStoreForcedL0RawStaysBitIdentical) {
  golden_out_of_core(/*vq=*/false, /*store_tiers=*/3);
}

TEST(OutOfCoreGolden, TieredStoreForcedL0VqStaysBitIdentical) {
  golden_out_of_core(/*vq=*/true, /*store_tiers=*/3);
}

// The other side of the LOD trade: at an adaptive policy the walkthrough
// fetches measurably fewer payload bytes than forced L0 while every frame
// holds a PSNR floor against the resident render.
TEST(OutOfCoreGolden, AdaptiveLodSavesFetchBytesWithinPsnrBound) {
  const auto scene = test_scene(28, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_lod_golden.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);
  const auto cameras = orbit_trajectory(6, 128);
  core::SequenceOptions seq;
  const auto resident = core::render_sequence(scene, cameras, seq);

  auto run_ooc = [&](const LodPolicy& lod) {
    ResidencyCacheConfig ccfg;
    ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
    ResidencyCache cache(store, ccfg);
    PrefetchConfig pcfg;
    pcfg.synchronous = true;
    pcfg.lod = lod;
    StreamingLoader loader(cache, pcfg);
    const auto scene_ooc = store.make_scene();
    const auto frames =
        core::render_sequence(scene_ooc, cameras, seq, &loader);
    core::StreamCacheStats total;
    for (const auto& f : frames.frames) total.accumulate(f.trace.cache);
    return std::make_pair(std::move(frames), total);
  };

  LodPolicy forced;
  forced.force_tier0 = true;
  const auto [l0_frames, l0_stats] = run_ooc(forced);

  LodPolicy adaptive;  // thresholds sized to this 128 px test camera
  adaptive.footprint_full_px = 40.0f;
  adaptive.footprint_half_px = 20.0f;
  const auto [lod_frames, lod_stats] = run_ooc(adaptive);

  // The adaptive pass really used pruned tiers...
  EXPECT_GT(lod_stats.tier_misses[1] + lod_stats.tier_misses[2] +
                lod_stats.tier_prefetches[1] + lod_stats.tier_prefetches[2],
            0u);
  // ...moved fewer bytes for the same trajectory...
  EXPECT_LT(lod_stats.bytes_fetched, l0_stats.bytes_fetched);
  // ...and held the quality floor on every frame.
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    EXPECT_EQ(l0_frames.frames[f].image.pixels(),
              resident.frames[f].image.pixels());
    const double db = metrics::psnr(resident.frames[f].image,
                                    lod_frames.frames[f].image);
    EXPECT_GE(db, 30.0) << "frame " << f;
  }
}

// Out-of-core through the bare cache (no loader): every first touch is a
// demand miss, and the result is still bit-identical.
TEST(OutOfCoreGolden, ModelFreeSceneWithoutSourceIsRejected) {
  const auto scene = test_scene(20, 400, /*vq=*/false);
  TempFile file("/tmp/sgs_test_nosource.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  const auto scene_ooc = store.make_scene();
  // Rendering store metadata without a cache-backed source must fail loudly
  // (there are no resident parameters to read), on both entry points.
  EXPECT_THROW(core::render_streaming(scene_ooc, test_camera()),
               std::invalid_argument);
  core::SequenceRenderer seq(scene_ooc, {});
  EXPECT_THROW(seq.render(test_camera()), std::invalid_argument);
}

TEST(OutOfCoreGolden, BareCacheWithoutLoaderAlsoMatches) {
  const auto scene = test_scene(19, 1500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_bare.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ResidencyCache cache(store, {});
  const auto scene_ooc = store.make_scene();

  const gs::Camera cam = test_camera();
  core::SequenceOptions seq;
  core::SequenceRenderer res_renderer(scene, seq);
  core::SequenceRenderer ooc_renderer(scene_ooc, seq, &cache);
  const auto a = res_renderer.render(cam);
  const auto b = ooc_renderer.render(cam);
  EXPECT_EQ(a.image.pixels(), b.image.pixels());
  EXPECT_GT(b.trace.cache.misses, 0u);
  EXPECT_EQ(b.trace.cache.prefetches, 0u);
}

// ------------------------------------------------------- failure domain --
//
// One bad byte in a store must cost pixels of one group — never the
// process, never a deadlock, never a refetch storm. The fault-injection
// helpers (poison_vq_group, densest_group, copy_file) are shared with
// test_serve.cpp via stream_fault_testutil.hpp.
using faulttest::copy_file;
using faulttest::densest_group;
using faulttest::poison_vq_group;

TEST(AssetStore, WriterDetectsFullDisk) {
  std::ofstream probe("/dev/full", std::ios::binary);
  if (!probe) GTEST_SKIP() << "no /dev/full on this platform";
  probe.close();
  const auto scene = test_scene(40, 400, /*vq=*/false);
  // Every write to /dev/full fails with ENOSPC: the writer must notice at
  // its stream-state check instead of reporting success on a truncated
  // store. The thrown error names the path.
  try {
    AssetStore::write("/dev/full", scene);
    FAIL() << "write to /dev/full reported success";
  } catch (const StreamException& e) {
    EXPECT_EQ(e.error().kind, StreamErrorKind::kIoWrite);
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos);
  }
}

// Corruption corpus, part 1: truncate a valid tiered store at every
// section boundary (and inside each section). Open must fail with a typed
// error — no crash, no garbage store object.
TEST(AssetStore, CorruptionCorpusTruncationAtEveryBoundary) {
  const auto scene = test_scene(41, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_corpus.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  const std::vector<char> bytes = read_all(file.path);

  // Reconstruct the section boundaries from the store's own metadata: the
  // payload section starts at group 0's tier-0 offset (the writer's first
  // payload), the index tables span (gaussians + tier-table entries) u32s
  // before it, and the directory (92 B per group at 3 tiers) before that.
  std::uint64_t dir_start, index_start, payload_start;
  {
    AssetStore store(file.path);
    payload_start = store.tier_extent(0, 0).offset;
    std::uint64_t tier_entries = 0;
    for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
      for (int t = 1; t < store.tier_count(); ++t) {
        tier_entries += store.tier_extent(v, t).count;
      }
    }
    index_start = payload_start -
                  (store.gaussian_count() + tier_entries) * sizeof(std::uint32_t);
    dir_start = index_start -
                static_cast<std::uint64_t>(store.group_count()) * 92u;
    ASSERT_LT(dir_start, index_start);
  }

  const std::vector<std::uint64_t> cuts = {
      0,                // empty file
      4,                // after the magic
      12,               // inside the rendering config
      dir_start - 1,    // header cut one byte short
      dir_start,        // header/directory boundary
      dir_start + 46,   // mid-directory-entry
      index_start,      // directory/index boundary
      (index_start + payload_start) / 2,  // mid-index-table
      payload_start,    // index/payload boundary: all payloads beyond EOF
      payload_start + 1,
      bytes.size() - 7,  // last payload cut short
  };
  TempFile cut_file("/tmp/sgs_test_corpus_cut.sgsc");
  for (const std::uint64_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    {
      std::ofstream out(cut_file.path, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    StreamError error;
    EXPECT_EQ(AssetStore::open(cut_file.path, &error), nullptr)
        << "cut at " << cut << " opened";
    EXPECT_FALSE(error.detail.empty()) << "cut at " << cut;
    // The legacy constructor reports the same failure as an exception that
    // still is-a runtime_error.
    EXPECT_THROW(AssetStore store(cut_file.path), std::runtime_error)
        << "cut at " << cut;
  }
}

// Corruption corpus, part 2: flipped payload bytes are a *read-time*,
// group-scoped event — the store opens, the bad group reports a typed
// error, and every other group stays readable.
TEST(AssetStore, CorruptionCorpusPoisonedPayloadIsGroupScoped) {
  const auto scene = test_scene(42, 1500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_poison.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ASSERT_GE(store.group_count(), 2);
  const voxel::DenseVoxelId bad = densest_group(store);
  poison_vq_group(file.path, store, bad);

  const StreamResult<DecodedGroup> r = store.read_group_checked(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, StreamErrorKind::kCorruptPayload);
  EXPECT_EQ(r.error().group, static_cast<std::int64_t>(bad));
  EXPECT_EQ(r.error().tier, 0);
  EXPECT_FALSE(r.error().detail.empty());
  // The throwing wrapper reports the same typed error.
  EXPECT_THROW(store.read_group(bad), StreamException);

  // Fault isolation at the store layer: other groups still read fine,
  // in any order relative to the failing reads.
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    if (v == bad || store.entry(v).count == 0) continue;
    const StreamResult<DecodedGroup> ok = store.read_group_checked(v);
    EXPECT_TRUE(ok.ok()) << "group " << v;
  }
}

TEST(ResidencyCache, FailedFetchServesDegradedThenNegativeCaches) {
  const auto scene = test_scene(43, 1500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_failcache.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  ASSERT_GE(store.group_count(), 2);
  const voxel::DenseVoxelId bad = densest_group(store);
  const voxel::DenseVoxelId good = bad == 0 ? 1 : 0;
  poison_vq_group(file.path, store, bad);

  ResidencyCacheConfig cfg;
  cfg.max_fetch_attempts = 2;
  cfg.retry_backoff_base = 2;
  ResidencyCache cache(store, cfg);

  // Attempt 1: the fetch fails; the acquire is served an EMPTY view (the
  // frame renders without this group) instead of throwing or hanging.
  const AcquireOutcome o1 = cache.acquire_outcome(bad);
  EXPECT_TRUE(o1.degraded);
  EXPECT_TRUE(o1.fetch_errored);
  EXPECT_FALSE(o1.group_failed);  // one failure left in the budget
  EXPECT_EQ(o1.view.size(), 0u);
  EXPECT_EQ(o1.served_tier, -1);
  ASSERT_NE(o1.error, nullptr);
  EXPECT_EQ(o1.error->kind, StreamErrorKind::kCorruptPayload);
  cache.release(bad);  // release stays balanced on degraded acquires

  // Backoff (2 denied requests at base 2): no disk attempt, still served
  // degraded, no new fetch_errors.
  for (int i = 0; i < 2; ++i) {
    const AcquireOutcome o = cache.acquire_outcome(bad);
    EXPECT_TRUE(o.degraded);
    EXPECT_FALSE(o.fetch_errored);
    cache.release(bad);
  }
  EXPECT_EQ(cache.stats().fetch_errors, 1u);

  // Attempt 2: backoff drained, retry fails, budget exhausted — the group
  // is negative-cached for good.
  const AcquireOutcome o2 = cache.acquire_outcome(bad);
  EXPECT_TRUE(o2.fetch_errored);
  EXPECT_TRUE(o2.group_failed);
  cache.release(bad);
  EXPECT_TRUE(cache.group_failed(bad));
  ASSERT_TRUE(cache.group_error(bad).has_value());
  EXPECT_EQ(cache.group_error(bad)->kind, StreamErrorKind::kCorruptPayload);

  // Forever after: degraded serves, zero additional disk attempts.
  for (int i = 0; i < 10; ++i) {
    const AcquireOutcome o = cache.acquire_outcome(bad);
    EXPECT_TRUE(o.degraded);
    EXPECT_TRUE(o.group_failed);
    EXPECT_FALSE(o.fetch_errored);
    cache.release(bad);
  }
  // And the prefetch path is denied without IO too (the anti-storm check).
  EXPECT_EQ(cache.prefetch_checked(bad), PrefetchResult::kNegativeCached);

  const auto s = cache.stats();
  EXPECT_EQ(s.fetch_errors, 2u);   // exactly max_fetch_attempts disk touches
  EXPECT_EQ(s.failed_groups, 1u);  // one transition to the failed state
  EXPECT_EQ(s.degraded_groups, 14u);  // 1 + 2 backoff + 1 + 10 negative
  EXPECT_EQ(s.bytes_fetched, 0u);  // nothing ever landed

  // The cache stays fully usable for every other group.
  const AcquireOutcome ok = cache.acquire_outcome(good);
  EXPECT_FALSE(ok.degraded);
  EXPECT_TRUE(ok.missed);
  EXPECT_GT(ok.view.size(), 0u);
  cache.release(good);
  // A negative-cached (group, tier) surfaces in the failed-tier snapshot
  // prefetch ranking masks against (bit 0 = tier 0 on this v1 store).
  EXPECT_EQ(cache.failed_tier_snapshot()[static_cast<std::size_t>(bad)], 1u);
  EXPECT_TRUE(cache.tier_failed(bad, 0));
}

TEST(ResidencyCache, ConcurrentAcquiresOfFailedGroupNeverDeadlock) {
  const auto scene = test_scene(44, 1500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_faildead.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  const voxel::DenseVoxelId bad = densest_group(store);
  poison_vq_group(file.path, store, bad);

  ResidencyCache cache(store, {});
  // The seed bug: a throwing fetch left Entry::loading=true forever, so
  // every later acquire slept on cv_ for good. With the RAII guard, any
  // number of concurrent acquires of the poisoned group must all return.
  std::vector<std::thread> workers;
  std::atomic<int> returned{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&cache, bad, &returned] {
      for (int i = 0; i < 25; ++i) {
        const AcquireOutcome o = cache.acquire_outcome(bad);
        EXPECT_TRUE(o.degraded);
        cache.release(bad);
      }
      ++returned;
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(returned.load(), 8);
  EXPECT_LE(cache.stats().fetch_errors,
            static_cast<std::uint64_t>(cache.config().max_fetch_attempts));
  EXPECT_TRUE(cache.group_failed(bad));
}

TEST(ResidencyCache, TransientErrorRecoversAfterRepair) {
  const auto scene = test_scene(45, 1500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_repair.sgsc");
  TempFile pristine("/tmp/sgs_test_repair_pristine.sgsc");
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  copy_file(file.path, pristine.path);
  AssetStore store(file.path);
  const voxel::DenseVoxelId bad = densest_group(store);
  poison_vq_group(file.path, store, bad);

  ResidencyCacheConfig cfg;
  cfg.retry_backoff_base = 1;  // one denied request between attempts
  ResidencyCache cache(store, cfg);

  const AcquireOutcome o1 = cache.acquire_outcome(bad);
  EXPECT_TRUE(o1.fetch_errored);
  cache.release(bad);

  // The operator repairs the file in place (the store's handle re-seeks
  // and re-reads per fetch, so repaired bytes are picked up).
  copy_file(pristine.path, file.path);
  const AcquireOutcome denied = cache.acquire_outcome(bad);  // drains backoff
  EXPECT_TRUE(denied.degraded);
  cache.release(bad);

  const AcquireOutcome o2 = cache.acquire_outcome(bad);
  EXPECT_FALSE(o2.degraded);
  EXPECT_TRUE(o2.missed);
  EXPECT_GT(o2.view.size(), 0u);
  cache.release(bad);
  // Success fully resets the failure state: no lingering backoff, and the
  // recovered payload matches a pristine read bit-for-bit.
  EXPECT_FALSE(cache.group_failed(bad));
  const AcquireOutcome o3 = cache.acquire_outcome(bad);
  EXPECT_FALSE(o3.missed);  // plain hit now
  cache.release(bad);
  const DecodedGroup direct = store.read_group(bad);
  EXPECT_EQ(direct.size(),
            static_cast<std::size_t>(store.entry(bad).count));
}

TEST(ResidencyCache, FailedUpgradeServesStaleLowerTier) {
  const auto scene = test_scene(46, 2500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_staletier.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);
  // A group whose L2 payload does NOT alias L0 (pruned), so poisoning L0
  // leaves L2 readable. Default VQ tiers: L1 aliases L0, L2 is pruned.
  voxel::DenseVoxelId v = static_cast<voxel::DenseVoxelId>(-1);
  for (voxel::DenseVoxelId i = 0; i < store.group_count(); ++i) {
    if (store.tier_extent(i, 2).count > 0 &&
        store.tier_extent(i, 2).offset != store.tier_extent(i, 0).offset) {
      v = i;
      break;
    }
  }
  ASSERT_NE(v, static_cast<voxel::DenseVoxelId>(-1));
  poison_vq_group(file.path, store, v, /*tier=*/0);

  ResidencyCache cache(store, {});
  // L2 streams in fine...
  const AcquireOutcome o2 = cache.acquire_outcome(v, 2);
  EXPECT_FALSE(o2.degraded);
  EXPECT_EQ(o2.served_tier, 2);
  cache.release(v);
  // ...and when the L0 upgrade fails, the acquire is served the STALE
  // resident L2 payload — degraded quality beats a dropped group.
  const AcquireOutcome o0 = cache.acquire_outcome(v, 0);
  EXPECT_TRUE(o0.degraded);
  EXPECT_TRUE(o0.fetch_errored);
  EXPECT_EQ(o0.served_tier, 2);
  EXPECT_EQ(o0.view.size(), store.tier_extent(v, 2).count);
  cache.release(v);
  EXPECT_EQ(cache.resident_tier(v), 2);  // old payload intact

  // Exhaust the retry budget (denials drain the doubling backoff between
  // the three attempts): tier 0 goes negative-cached while the group is
  // STILL resident at its stale tier — served degraded, and bit 0 set in
  // the failed-tier snapshot so prefetch ranking stops proposing the
  // doomed upgrade. The failure is TIER-scoped: tier 2 stays healthy.
  for (int i = 0; i < 20; ++i) {
    cache.acquire_outcome(v, 0);
    cache.release(v);
  }
  EXPECT_TRUE(cache.group_failed(v));
  EXPECT_TRUE(cache.tier_failed(v, 0));
  EXPECT_FALSE(cache.tier_failed(v, 2));
  EXPECT_EQ(cache.resident_tier(v), 2);
  EXPECT_EQ(cache.failed_tier_snapshot()[static_cast<std::size_t>(v)], 1u);
  const AcquireOutcome after = cache.acquire_outcome(v, 0);
  EXPECT_TRUE(after.degraded);
  EXPECT_EQ(after.served_tier, 2);
  cache.release(v);
  // An L2 request is a plain hit on the resident payload, not degraded.
  const AcquireOutcome l2 = cache.acquire_outcome(v, 2);
  EXPECT_FALSE(l2.degraded);
  EXPECT_EQ(l2.served_tier, 2);
  cache.release(v);
}

// Errors are tier-scoped on disk, so the negative cache must be too: a
// group whose L0 payload is corrupt still FETCHES at its healthy pruned
// tiers — a far camera keeps its content instead of a hole.
TEST(ResidencyCache, TierScopedFailureLeavesOtherTiersFetchable) {
  const auto scene = test_scene(48, 2500, /*vq=*/true);
  TempFile file("/tmp/sgs_test_tierscope.sgsc");
  AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  ASSERT_TRUE(AssetStore::write(file.path, scene, wopts));
  AssetStore store(file.path);
  voxel::DenseVoxelId v = static_cast<voxel::DenseVoxelId>(-1);
  for (voxel::DenseVoxelId i = 0; i < store.group_count(); ++i) {
    if (store.tier_extent(i, 2).count > 0 &&
        store.tier_extent(i, 2).offset != store.tier_extent(i, 0).offset) {
      v = i;
      break;
    }
  }
  ASSERT_NE(v, static_cast<voxel::DenseVoxelId>(-1));
  poison_vq_group(file.path, store, v, /*tier=*/0);

  ResidencyCacheConfig cfg;
  cfg.max_fetch_attempts = 1;  // first L0 failure negative-caches tier 0
  ResidencyCache cache(store, cfg);
  const AcquireOutcome o0 = cache.acquire_outcome(v, 0);
  EXPECT_TRUE(o0.fetch_errored);
  EXPECT_EQ(o0.view.size(), 0u);  // nothing resident to fall back on
  cache.release(v);
  EXPECT_TRUE(cache.tier_failed(v, 0));

  // The same group's L2 request fetches normally — not degraded, not
  // denied — because only (v, L0) is poisoned.
  const AcquireOutcome o2 = cache.acquire_outcome(v, 2);
  EXPECT_FALSE(o2.degraded);
  EXPECT_TRUE(o2.missed);
  EXPECT_EQ(o2.served_tier, 2);
  EXPECT_EQ(o2.view.size(), store.tier_extent(v, 2).count);
  cache.release(v);
  EXPECT_FALSE(cache.tier_failed(v, 2));
  // One group entered the failed state (counted once, not per tier).
  EXPECT_EQ(cache.stats().failed_groups, 1u);
}

TEST(AsyncLane, CapturesTaskExceptionsInsteadOfTerminating) {
  async_wait_idle();
  (void)async_take_errors();  // drain anything a previous test left behind
  const std::uint64_t errors_before = async_task_errors();

  std::atomic<int> ran{0};
  async_submit([&ran] { ++ran; });
  async_submit([] { throw std::runtime_error("injected lane failure"); });
  // The lane must keep draining after a throwing task.
  async_submit([&ran] { ++ran; });
  async_wait_idle();

  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(async_task_errors(), errors_before + 1);
  const std::vector<std::string> errors = async_take_errors();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("injected lane failure"), std::string::npos);
  EXPECT_TRUE(async_take_errors().empty());  // drained
}

// The acceptance bar of the failure-domain work: a walkthrough over a
// store with one poisoned voxel group completes every frame, reports the
// failure in the trace counters, and renders every error-free frame
// bit-identical to the same walkthrough over the pristine store.
TEST(OutOfCoreGolden, PoisonedGroupWalkthroughCompletesAndIsolatesFault) {
  const auto scene = test_scene(47, 2500, /*vq=*/true);
  TempFile good_file("/tmp/sgs_test_fault_good.sgsc");
  TempFile bad_file("/tmp/sgs_test_fault_bad.sgsc");
  ASSERT_TRUE(AssetStore::write(good_file.path, scene));
  copy_file(good_file.path, bad_file.path);
  {
    AssetStore probe(bad_file.path);
    poison_vq_group(bad_file.path, probe, densest_group(probe));
  }

  // Four orbit frames that stream the (central, densest) poisoned group,
  // then two frames looking away from the scene entirely — guaranteed
  // error-free, so the bit-identical comparison below is never vacuous.
  auto cameras = orbit_trajectory(4, 128);
  for (int f = 0; f < 2; ++f) {
    cameras.push_back(gs::Camera::look_at({0, 1, -20}, {0, 1, -40}, {0, 1, 0},
                                          0.9f, 128, 128));
  }
  auto run = [&](const std::string& path) {
    AssetStore store(path);
    ResidencyCacheConfig ccfg;
    ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
    // One strike: the first failure negative-caches the group, making the
    // walkthrough's failure counters exact (1 attempt, 1 failed group).
    ccfg.max_fetch_attempts = 1;
    ResidencyCache cache(store, ccfg);
    PrefetchConfig pcfg;
    pcfg.synchronous = true;
    pcfg.lod.force_tier0 = true;
    StreamingLoader loader(cache, pcfg);
    const auto scene_ooc = store.make_scene();
    return core::render_sequence(scene_ooc, cameras, {}, &loader);
  };

  const auto pristine = run(good_file.path);
  const auto faulty = run(bad_file.path);

  // Every frame completed — no terminate, no deadlock, no early exit.
  ASSERT_EQ(faulty.frames.size(), cameras.size());
  core::StreamCacheStats total;
  std::size_t degraded_frames = 0;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    const core::StreamCacheStats& cs = faulty.frames[f].trace.cache;
    total.accumulate(cs);
    if (cs.degraded_groups > 0) {
      ++degraded_frames;
    } else {
      // Error-free frames are bit-identical to the pristine-store run.
      EXPECT_EQ(faulty.frames[f].image.pixels(),
                pristine.frames[f].image.pixels())
          << "frame " << f;
    }
  }
  // The fault actually fired and was reported in the v5 counters.
  EXPECT_GT(total.fetch_errors, 0u);
  EXPECT_GT(total.degraded_groups, 0u);
  EXPECT_GT(degraded_frames, 0u);
  EXPECT_LT(degraded_frames, cameras.size()) << "no error-free frame to pin";
  // Bounded disk touches for the one bad group, then negative-cached.
  EXPECT_EQ(total.fetch_errors, 1u);
  EXPECT_EQ(total.failed_groups, 1u);
}

// ------------------------------------- zero-stall: coarse floor + deadlines --
//
// The always-resident floor plus deadline-driven acquires turn demand
// stalls into bounded quality loss: acquire always has *something* to
// return. These tests pin the floor's pinning/eviction immunity, the
// priority queue's deterministic ordering, the once-per-(frame, group)
// fallback accounting, and the two bit-exactness escapes (generous
// deadline; v1 store without a coarse tier).

void write_floor_store(const std::string& path,
                       const core::StreamingScene& scene) {
  ASSERT_TRUE(
      AssetStore::write(path, scene, AssetStoreWriteOptions::with_coarse_floor()));
}

TEST(CoarseFloor, PinsEveryGroupAndSurvivesEvictionPressure) {
  const auto scene = test_scene(55, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_floor_pin.sgsc");
  write_floor_store(file.path, scene);
  AssetStore store(file.path);
  ASSERT_TRUE(store.has_coarse_tier());
  EXPECT_EQ(store.coarse_tier(), store.tier_count() - 1);

  // Main budget starved to ~1% of the scene; the floor rides its own
  // budget and must be untouchable by the LRU.
  ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = std::max<std::uint64_t>(
      store.decoded_bytes_total() / 100, 1);
  ccfg.coarse_floor_budget_bytes = store.decoded_bytes_total();
  ResidencyCache cache(store, ccfg);
  ASSERT_TRUE(cache.coarse_floor_enabled());
  EXPECT_EQ(cache.coarse_tier(), store.coarse_tier());
  EXPECT_GT(cache.coarse_floor_bytes(), 0u);
  EXPECT_LE(cache.coarse_floor_bytes(), ccfg.coarse_floor_budget_bytes);
  // Floor bytes live outside the LRU budget entirely.
  EXPECT_EQ(cache.resident_bytes(), 0u);
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    EXPECT_EQ(cache.coarse_floor_resident(v), store.entry(v).count > 0)
        << "group " << v;
  }
  const std::uint64_t floor_before = cache.coarse_floor_bytes();

  // Blocking sweep over every group: constant eviction churn at 1% budget.
  std::uint64_t sweep = 0;
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    if (store.entry(v).count == 0) continue;
    const AcquireOutcome out = cache.acquire_outcome(v);
    EXPECT_FALSE(out.coarse_fallback);
    EXPECT_EQ(out.view.size(), store.entry(v).count);
    cache.release(v);
    ++sweep;
  }
  const core::StreamCacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_EQ(s.hits + s.misses, s.accesses());
  // The churn never touched the floor: every group still pinned, byte for
  // byte, and the main budget still holds.
  EXPECT_EQ(cache.coarse_floor_bytes(), floor_before);
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    EXPECT_EQ(cache.coarse_floor_resident(v), store.entry(v).count > 0);
  }
  EXPECT_LE(cache.resident_bytes(), ccfg.budget_bytes);
  EXPECT_GT(sweep, 0u);
}

TEST(CoarseFloor, AllOrNothingAgainstItsBudget) {
  const auto scene = test_scene(56, 1500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_floor_allornothing.sgsc");
  write_floor_store(file.path, scene);
  AssetStore store(file.path);

  // A floor budget the predicted floor cannot fit: disabled outright, and
  // the deadline path degenerates to the blocking pre-floor behavior.
  ResidencyCacheConfig ccfg;
  ccfg.coarse_floor_budget_bytes = 1;
  ResidencyCache cache(store, ccfg);
  EXPECT_FALSE(cache.coarse_floor_enabled());
  EXPECT_EQ(cache.coarse_floor_bytes(), 0u);
  EXPECT_EQ(cache.coarse_tier(), -1);

  const voxel::DenseVoxelId v = densest_group(store);
  // Deadline long past, but no fallback payload exists: the acquire blocks
  // and fetches — a deadline bounds stalls, it never invents pixels.
  const AcquireOutcome out = cache.acquire_outcome(v, 0, /*deadline_ns=*/1);
  EXPECT_FALSE(out.coarse_fallback);
  EXPECT_TRUE(out.missed);
  EXPECT_EQ(out.view.size(), store.entry(v).count);
  cache.release(v);
}

TEST(CoarseFloor, ExpiredDeadlineAcquireNeverBlocksAndNeverFetches) {
  const auto scene = test_scene(57, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_floor_noblock.sgsc");
  write_floor_store(file.path, scene);
  AssetStore store(file.path);
  ResidencyCacheConfig ccfg;
  ccfg.coarse_floor_budget_bytes = store.decoded_bytes_total();
  ResidencyCache cache(store, ccfg);
  ASSERT_TRUE(cache.coarse_floor_enabled());

  std::uint64_t served = 0;
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    if (store.entry(v).count == 0) continue;
    // Deadline of 1 ns on the stage clock: expired since boot. Every
    // acquire must come back from the floor, instantly, without disk IO.
    const AcquireOutcome out = cache.acquire_outcome(v, 0, /*deadline_ns=*/1);
    EXPECT_TRUE(out.coarse_fallback);
    EXPECT_EQ(out.served_tier, cache.coarse_tier());
    EXPECT_EQ(out.bytes_fetched, 0u);
    EXPECT_FALSE(out.missed);
    EXPECT_GT(out.view.size(), 0u);
    EXPECT_EQ(out.view.size(),
              store.tier_extent(v, cache.coarse_tier()).count);
    cache.release(v);
    ++served;
  }
  const core::StreamCacheStats s = cache.stats();
  // Floor serves are hits at the floor tier; no fetch ever ran.
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.hits, served);
  EXPECT_EQ(s.bytes_fetched, 0u);
  EXPECT_EQ(s.tier_hits[static_cast<std::size_t>(cache.coarse_tier())],
            served);
  // The cache itself never self-counts fallbacks: the once-per-(frame,
  // group) dedup belongs to frame-aware front-ends via
  // record_coarse_fallback() (so per-session counters sum to the global).
  EXPECT_EQ(s.coarse_fallbacks, 0u);
}

TEST(PrefetchPriorityQueue, PopsByPriorityThenGroupIdDeterministically) {
  PrefetchPriorityQueue q;
  auto req = [](voxel::DenseVoxelId id, float priority) {
    PrefetchRequest r;
    r.id = id;
    r.tier = 0;
    r.priority = priority;
    return r;
  };
  // Equal priorities tie-break by ascending id regardless of push order.
  EXPECT_TRUE(q.push(req(5, 2.0f)));
  EXPECT_TRUE(q.push(req(9, 1.0f)));
  EXPECT_TRUE(q.push(req(3, 1.0f)));
  EXPECT_TRUE(q.push(req(1, 3.0f)));
  EXPECT_TRUE(q.push(req(8, kUrgentPriority)));  // sorts ahead of everything
  EXPECT_EQ(q.pending(), 5u);

  PrefetchRequest out;
  const std::uint64_t now = core::stage_clock_ns();
  ASSERT_TRUE(q.pop(&out, now));
  EXPECT_EQ(out.id, 8u);
  ASSERT_TRUE(q.pop(&out, now));
  EXPECT_EQ(out.id, 3u);
  ASSERT_TRUE(q.pop(&out, now));
  EXPECT_EQ(out.id, 9u);
  ASSERT_TRUE(q.pop(&out, now));
  EXPECT_EQ(out.id, 5u);
  ASSERT_TRUE(q.pop(&out, now));
  EXPECT_EQ(out.id, 1u);
  EXPECT_FALSE(q.pop(&out, now));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(PrefetchPriorityQueue, MergesSameOrBetterAndSupersedesWorseTiers) {
  PrefetchPriorityQueue q;
  PrefetchRequest r;
  r.id = 7;
  r.tier = 1;
  r.priority = 1.0f;
  EXPECT_TRUE(q.push(r));
  // Same tier: merged away. Worse tier: also merged (the pending fetch
  // satisfies a worse request).
  EXPECT_FALSE(q.push(r));
  r.tier = 2;
  EXPECT_FALSE(q.push(r));
  EXPECT_EQ(q.merged(), 2u);
  // Strictly better tier supersedes: one live request at tier 0 remains,
  // the stale tier-1 heap node is skipped at pop.
  r.tier = 0;
  EXPECT_TRUE(q.push(r));
  EXPECT_EQ(q.pending(), 1u);
  PrefetchRequest out;
  const std::uint64_t now = core::stage_clock_ns();
  ASSERT_TRUE(q.pop(&out, now));
  EXPECT_EQ(out.id, 7u);
  EXPECT_EQ(out.tier, 0u);
  EXPECT_FALSE(q.pop(&out, now));
}

TEST(PrefetchPriorityQueue, DropsExpiredRequestsAtPop) {
  PrefetchPriorityQueue q;
  PrefetchRequest r;
  r.id = 4;
  r.priority = 1.0f;
  r.deadline_ns = 5;  // long past on the stage clock
  EXPECT_TRUE(q.push(r));
  PrefetchRequest out;
  EXPECT_FALSE(q.pop(&out, core::stage_clock_ns()));
  EXPECT_EQ(q.expired(), 1u);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(StreamingLoader, DeadlineFallbackCountsOncePerFrameGroupAndRequeues) {
  const auto scene = test_scene(58, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_deadline_once.sgsc");
  write_floor_store(file.path, scene);
  AssetStore store(file.path);
  ResidencyCacheConfig ccfg;
  ccfg.coarse_floor_budget_bytes = store.decoded_bytes_total();
  ResidencyCache cache(store, ccfg);
  ASSERT_TRUE(cache.coarse_floor_enabled());

  PrefetchConfig pcfg;
  pcfg.synchronous = true;
  pcfg.fetch_deadline_ns = 0;  // expires the instant the frame begins
  StreamingLoader loader(cache, pcfg);

  const voxel::DenseVoxelId v = densest_group(store);
  const std::vector<voxel::DenseVoxelId> plan{v};
  // No camera: no ranked prefetch — the only traffic is the demand path.
  FrameIntent intent;
  loader.begin_frame(intent, plan);
  // The pixel pipeline acquires the same group from many pixel groups;
  // the fallback must be counted once per (frame, group), not per acquire.
  for (int k = 0; k < 3; ++k) {
    const GroupView view = loader.acquire(v);
    EXPECT_GT(view.size(), 0u);
    loader.release(v);
  }
  EXPECT_EQ(cache.stats().coarse_fallbacks, 1u);
  EXPECT_EQ(cache.stats().misses, 0u);
  // The wanted tier was re-queued at urgent priority, NOT drained inline
  // (a synchronous drain on the render path would be the very stall the
  // deadline killed).
  EXPECT_EQ(loader.queue().pending(), 1u);
  loader.end_frame();

  // The next frame's begin drains the urgent request; the group is now
  // resident at the wanted tier and serves real hits, no fallback.
  loader.begin_frame(intent, plan);
  EXPECT_EQ(loader.queue().pending(), 0u);
  EXPECT_EQ(cache.resident_tier(v), 0);
  const GroupView view = loader.acquire(v);
  EXPECT_EQ(view.size(), store.entry(v).count);
  loader.release(v);
  loader.end_frame();
  EXPECT_EQ(cache.stats().coarse_fallbacks, 1u);
  EXPECT_EQ(cache.stats().prefetches, 1u);
}

TEST(OutOfCoreGolden, GenerousDeadlineStaysBitIdentical) {
  const auto scene = test_scene(59, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_deadline_generous.sgsc");
  write_floor_store(file.path, scene);
  AssetStore store(file.path);
  const auto cameras = orbit_trajectory(4, 128);
  const auto resident = core::render_sequence(scene, cameras, {});

  ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  ccfg.coarse_floor_budget_bytes = store.decoded_bytes_total();
  ResidencyCache cache(store, ccfg);
  ASSERT_TRUE(cache.coarse_floor_enabled());
  PrefetchConfig pcfg;
  pcfg.synchronous = true;
  pcfg.lod.force_tier0 = true;
  StreamingLoader loader(cache, pcfg);
  const auto scene_ooc = store.make_scene();
  core::SequenceOptions seq;
  // A whole-frame budget no test-machine fetch can miss: the deadline
  // machinery is armed on every acquire, yet no fallback ever fires — and
  // the output must be bit-for-bit the blocking path's.
  seq.fetch_deadline_ns = 60ull * 1000 * 1000 * 1000;
  const auto ooc = core::render_sequence(scene_ooc, cameras, seq, &loader);

  core::StreamCacheStats total;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    EXPECT_EQ(ooc.frames[f].image.pixels(), resident.frames[f].image.pixels())
        << "frame " << f;
    total.accumulate(ooc.frames[f].trace.cache);
  }
  EXPECT_EQ(total.coarse_fallbacks, 0u);
  EXPECT_GT(total.accesses(), 0u);
}

TEST(OutOfCoreGolden, ZeroDeadlineWalkthroughNeverStalls) {
  const auto scene = test_scene(60, 2500, /*vq=*/false);
  TempFile file("/tmp/sgs_test_zero_stall.sgsc");
  write_floor_store(file.path, scene);
  AssetStore store(file.path);
  const auto cameras = orbit_trajectory(6, 128);
  const auto resident = core::render_sequence(scene, cameras, {});

  ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  ccfg.coarse_floor_budget_bytes = store.decoded_bytes_total();
  ResidencyCache cache(store, ccfg);
  ASSERT_TRUE(cache.coarse_floor_enabled());
  PrefetchConfig pcfg;
  pcfg.synchronous = true;
  pcfg.lod.force_tier0 = true;
  // Squeeze the per-frame prefetch budget so warm-up spans several frames:
  // the walkthrough MUST lean on the floor, not coast on a warmed cache.
  pcfg.max_bytes_per_frame = store.payload_bytes_total() / 16;
  pcfg.fetch_deadline_ns = 0;
  StreamingLoader loader(cache, pcfg);
  const auto scene_ooc = store.make_scene();
  const auto ooc = core::render_sequence(scene_ooc, cameras, {}, &loader);

  core::StreamCacheStats total;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    const core::StreamCacheStats& cs = ooc.frames[f].trace.cache;
    // The zero-stall property, per frame: not a single demand miss.
    EXPECT_EQ(cs.misses, 0u) << "frame " << f;
    total.accumulate(cs);
    if (cs.coarse_fallbacks == 0) {
      // No fallback fired: the frame must be bit-identical to resident
      // rendering (the floor never bleeds into clean frames).
      EXPECT_EQ(ooc.frames[f].image.pixels(), resident.frames[f].image.pixels())
          << "frame " << f;
    } else {
      // Fallback frames still render the whole scene at bounded quality.
      // (The starved prefetch budget makes early frames mostly-floor; the
      // production-budget quality gate lives in bench_streaming.)
      const double db =
          metrics::psnr(resident.frames[f].image, ooc.frames[f].image);
      EXPECT_GE(db, 12.0) << "frame " << f;
    }
  }
  // The floor was actually exercised (the squeezed prefetch budget cannot
  // cover the first frames), and the global counter equals the sum of the
  // per-frame deltas — nothing double- or under-counted.
  EXPECT_GT(total.coarse_fallbacks, 0u);
  EXPECT_EQ(cache.stats().coarse_fallbacks, total.coarse_fallbacks);
  EXPECT_EQ(total.hits + total.misses, total.accesses());
}

TEST(OutOfCoreGolden, V1StoreWithoutCoarseTierKeepsBlockingSemantics) {
  const auto scene = test_scene(61, 2000, /*vq=*/false);
  TempFile file("/tmp/sgs_test_v1_negative.sgsc");
  // v1 single-tier store: no coarse tier to pin — open() reports the
  // missing capability and the floor config is a no-op.
  ASSERT_TRUE(AssetStore::write(file.path, scene));
  AssetStore store(file.path);
  EXPECT_FALSE(store.has_coarse_tier());
  const auto cameras = orbit_trajectory(4, 128);
  const auto resident = core::render_sequence(scene, cameras, {});

  ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  ccfg.coarse_floor_budget_bytes = store.decoded_bytes_total();
  ResidencyCache cache(store, ccfg);
  EXPECT_FALSE(cache.coarse_floor_enabled());
  PrefetchConfig pcfg;
  pcfg.synchronous = true;
  // A zero deadline with nothing to fall back on must not change a pixel
  // or a counter: the renderer keeps the blocking path, stalls and all.
  pcfg.fetch_deadline_ns = 0;
  StreamingLoader loader(cache, pcfg);
  const auto scene_ooc = store.make_scene();
  const auto ooc = core::render_sequence(scene_ooc, cameras, {}, &loader);

  core::StreamCacheStats total;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    EXPECT_EQ(ooc.frames[f].image.pixels(), resident.frames[f].image.pixels())
        << "frame " << f;
    total.accumulate(ooc.frames[f].trace.cache);
  }
  // Pre-PR stall accounting: demand misses happened and were counted.
  EXPECT_GT(total.misses + total.prefetches, 0u);
  EXPECT_EQ(total.coarse_fallbacks, 0u);
}

TEST(OutOfCoreGolden, PoisonedGroupWithFloorStaysZeroStallAndBalancesPins) {
  const auto scene = test_scene(62, 2500, /*vq=*/true);
  TempFile good_file("/tmp/sgs_test_floor_fault_good.sgsc");
  TempFile bad_file("/tmp/sgs_test_floor_fault_bad.sgsc");
  write_floor_store(good_file.path, scene);
  copy_file(good_file.path, bad_file.path);
  voxel::DenseVoxelId poisoned = 0;
  {
    AssetStore probe(bad_file.path);
    poisoned = densest_group(probe);
    // Poison L0 only: the floor tier stays healthy, so the group's floor
    // payload pins fine and every deadline serve of it still has pixels.
    poison_vq_group(bad_file.path, probe, poisoned, /*tier=*/0);
  }

  AssetStore store(bad_file.path);
  ResidencyCacheConfig ccfg;
  ccfg.budget_bytes = store.decoded_bytes_total() * 35 / 100;
  ccfg.coarse_floor_budget_bytes = store.decoded_bytes_total();
  ccfg.max_fetch_attempts = 1;  // one strike: exact failure counters
  ResidencyCache cache(store, ccfg);
  ASSERT_TRUE(cache.coarse_floor_enabled());
  ASSERT_TRUE(cache.coarse_floor_resident(poisoned));

  PrefetchConfig pcfg;
  pcfg.synchronous = true;
  pcfg.lod.force_tier0 = true;
  pcfg.fetch_deadline_ns = 0;
  StreamingLoader loader(cache, pcfg);
  const auto scene_ooc = store.make_scene();
  const auto cameras = orbit_trajectory(4, 128);
  const auto ooc = core::render_sequence(scene_ooc, cameras, {}, &loader);

  // Every frame completed without a single blocking demand fetch: at a
  // zero deadline the demand path never touches the disk, so the only
  // misses are the poisoned group's degraded (negative-cached) serves —
  // error accounting outranks the deadline so faults stay visible — and
  // the corruption itself surfaces on the prefetch lane.
  ASSERT_EQ(ooc.frames.size(), cameras.size());
  core::StreamCacheStats total;
  for (const auto& f : ooc.frames) {
    EXPECT_EQ(f.trace.cache.misses, f.trace.cache.degraded_groups);
    total.accumulate(f.trace.cache);
  }
  EXPECT_GT(total.coarse_fallbacks, 0u);
  EXPECT_GT(total.fetch_errors, 0u);
  EXPECT_TRUE(cache.tier_failed(poisoned, 0));
  // Pin balance across the poisoned run: an empty unpin drains the budget
  // overshoot, which only works if no acquire leaked a pin (pinned groups
  // are unevictable — a leak would wedge residency above budget forever).
  cache.unpin_plan({});
  EXPECT_LE(cache.resident_bytes(), ccfg.budget_bytes);
}

}  // namespace
}  // namespace sgs::stream
