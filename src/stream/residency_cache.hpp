// ResidencyCache: decoded voxel groups held under a byte budget.
//
// The cache is the GroupSource an out-of-core render uses: acquire() pins a
// group and returns its decoded view, fetching from the AssetStore on a
// miss (a demand stall — the render worker blocks on the disk read). A
// loader thread can warm the cache ahead of demand through prefetch().
//
// Eviction is strict LRU over unpinned groups: a group is protected while
// (a) any acquire is outstanding on it, or (b) it belongs to the in-flight
// FramePlan (begin_frame pins the plan's candidate set, end_frame releases
// it) — so views handed to render workers stay valid for the whole frame
// even past their release(). Pinned groups may push residency above the
// budget; the overshoot drains at end_frame.
//
// The budget counts decoded in-memory bytes (DecodedGroup::resident_bytes),
// while bytes_fetched counts on-disk payload bytes — the two sides of the
// memory/traffic trade the simulator prices.
//
// Determinism: for a fixed request trace from one thread, hits, misses,
// evictions, and the resident set are fully reproducible (pure LRU, no
// clocks). Concurrent traces keep counters exact but their interleaving is
// scheduling-dependent; the *rendered image* never depends on cache state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "stream/asset_store.hpp"
#include "stream/group_source.hpp"

namespace sgs::stream {

struct ResidencyCacheConfig {
  // Decoded-bytes budget. Groups beyond it are evicted LRU-first; pinned
  // groups are never evicted even when over budget.
  std::uint64_t budget_bytes = 64ull << 20;
};

class ResidencyCache final : public GroupSource {
 public:
  ResidencyCache(const AssetStore& store, ResidencyCacheConfig config = {});

  // GroupSource --------------------------------------------------------------
  void begin_frame(const FrameIntent& intent,
                   std::span<const voxel::DenseVoxelId> plan_voxels) override;
  void end_frame() override;
  GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId v) override;
  core::StreamCacheStats stats() const override;

  // Loader-facing ------------------------------------------------------------
  // Fetches `v` if absent (counted as a prefetch, not a miss). Returns true
  // when this call brought the group in, false when it was already resident
  // or in flight.
  bool prefetch(voxel::DenseVoxelId v);
  bool resident(voxel::DenseVoxelId v) const;

  std::uint64_t resident_bytes() const;
  const ResidencyCacheConfig& config() const { return config_; }
  const AssetStore& store() const { return *store_; }

 private:
  struct Entry {
    DecodedGroup group;
    int pins = 0;              // outstanding acquires
    bool plan_pinned = false;  // member of the in-flight plan's working set
    bool loading = false;      // fetch in flight; waiters sleep on cv_
    std::list<voxel::DenseVoxelId>::iterator lru_it;  // valid when resident
    bool resident = false;
  };

  // Fetches v into its entry. Caller holds lk; the disk read and decode run
  // unlocked with entry.loading set. Returns with the entry resident.
  void fetch_locked(std::unique_lock<std::mutex>& lk, voxel::DenseVoxelId v,
                    bool is_prefetch);
  void touch_locked(Entry& e, voxel::DenseVoxelId v);
  void evict_over_budget_locked();

  const AssetStore* store_;
  ResidencyCacheConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;  // signals fetch completion
  std::vector<Entry> entries_;  // indexed by dense voxel id
  std::list<voxel::DenseVoxelId> lru_;  // front = most recent
  std::uint64_t resident_bytes_ = 0;
  std::vector<voxel::DenseVoxelId> frame_pins_;
  core::StreamCacheStats stats_;
};

}  // namespace sgs::stream
