// Trace-driven simulator of the STREAMINGGS accelerator (paper Sec. IV).
//
// Consumes the StreamingTrace a functional render produced and replays it
// through a six-stage double-buffered pipeline:
//   VSU -> DRAM load -> CFU (coarse filter) -> FFU (decode + fine filter)
//       -> bitonic sort -> render array.
// Items are voxel visits; a group's VSU work gates its first voxel (the
// rendering order must exist before streaming starts). Energy integrates
// DRAM bytes, SRAM movement, MACs, and static power over the frame.
#pragma once

#include "core/streaming_trace.hpp"
#include "sim/energy_model.hpp"
#include "sim/hw_config.hpp"
#include "sim/report.hpp"

namespace sgs::sim {

struct StreamingGsSimOptions {
  StreamingGsHwConfig hw{};
  EnergyConstants energy{};
  // Without the coarse filter (w/o CGF variant) every resident bypasses the
  // CFUs and is processed by the FFUs directly.
  bool coarse_filter_enabled = true;
};

SimReport simulate_streaminggs(const core::StreamingTrace& trace,
                               const StreamingGsSimOptions& options = {});

// SRAM capacity check: largest voxel chunk + codebook + group accumulators
// must fit the configured buffers. Returns empty string when OK, else a
// human-readable violation description.
std::string check_buffer_capacity(const core::StreamingTrace& trace,
                                  const StreamingGsHwConfig& hw,
                                  std::size_t codebook_bytes);

}  // namespace sgs::sim
