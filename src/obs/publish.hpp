// Bridges from the repo's existing counter structs into the metrics
// registry: the registry is the single sink, these are the adapters the
// renderer, cache, pool, and server publish through.
//
// All functions write cumulative values as gauges under a dotted prefix
// ("cache.hits", "stage.filter_ns", ...) on MetricsRegistry::global().
// They are cold-path (per frame / per report), so the name lookups take
// the registry mutex; the ids are cached registry-side by name.
#pragma once

#include <string>

#include "core/streaming_trace.hpp"

namespace sgs::obs {

// StreamCacheStats -> gauges: hits, misses, prefetches, evictions,
// bytes_fetched, upgrades, fetch_errors, degraded_groups, failed_groups,
// coarse_fallbacks, net_bytes, net_stall_ns, abr_demotions.
void publish_cache_stats(const core::StreamCacheStats& stats,
                         const std::string& prefix = "cache");

// StageTimingsNs -> gauges: plan_ns, vsu_ns, filter_ns, sort_ns, blend_ns,
// fetch_ns, decode_ns.
void publish_stage_timings(const core::StageTimingsNs& timings,
                           const std::string& prefix = "stage");

// Pool + async-lane counters -> gauges: pool.parallelism,
// async.tasks_completed, async.task_errors.
void publish_parallel_stats();

}  // namespace sgs::obs
