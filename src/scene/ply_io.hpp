// Binary-PLY serialization compatible with the reference 3DGS checkpoint
// format, so externally trained models can be loaded once available and our
// generated scenes can be inspected in standard splat viewers.
//
// Property layout (little-endian float32, one element per Gaussian):
//   x y z nx ny nz f_dc_0..2 f_rest_0..44 opacity scale_0..2 rot_0..3
// with the reference conventions: log-scales, logit opacities, f_rest stored
// channel-major (15 R coefficients, then 15 G, then 15 B), rotation (w,x,y,z).
#pragma once

#include <string>

#include "gs/gaussian.hpp"

namespace sgs::scene {

// Writes the model; returns false on IO failure.
bool write_ply(const std::string& path, const gs::GaussianModel& model);

// Reads a model. Throws std::runtime_error on malformed input.
gs::GaussianModel read_ply(const std::string& path);

}  // namespace sgs::scene
