// Codec tuner: explores the vector-quantization design space.
//
// Sweeps codebook sizes for the four parameter groups and reports, for each
// configuration, the on-chip codebook footprint (must fit the 250 KB SRAM),
// the DRAM bytes per Gaussian in the fine stream, and the image cost of
// quantization (tile render of the decoded model vs. the original model).
// This reproduces the reasoning behind the paper's 4096/4096/4096/512
// choice (Sec. III-C / V-A).
//
// It also demonstrates the trained codec's binary round-trip
// (QuantizedModel::save/load): training dominates preparation time, so a
// shipped .sgvq file next to the scene replaces a rebuild.
//
//   ./codec_tuner [--scene truck] [--model_scale 0.03] [--res_scale 0.3]
//                 [--save_codec /tmp/scene.sgvq]
#include <cstdio>
#include <cstdint>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "metrics/psnr.hpp"
#include "render/tile_renderer.hpp"
#include "scene/presets.hpp"
#include "voxel/layout.hpp"
#include "vq/quantized_model.hpp"

namespace {

// Keep in sync with every args.get* below (the --help contract).
constexpr const char* kUsage =
    R"(codec_tuner — VQ codebook design-space sweep + binary codec round-trip

  --scene <name>       scene preset (default truck)
  --model_scale <f>    fraction of the full preset model (default 0.03)
  --res_scale <f>      fraction of the preset resolution (default 0.3)
  --save_codec <path>  where the paper-config codec is saved and reloaded
                       for the bit-exact round-trip (default
                       /tmp/codec_tuner.sgvq)
  --help               this text
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const auto preset = scene::preset_from_name(args.get("scene", "truck"));
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.03));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.3));

  const auto model = scene::make_preset_scene(preset, model_scale);
  int w = 0, h = 0;
  scene::scaled_resolution(preset, res_scale, w, h);
  const auto cam = scene::make_preset_camera(preset, w, h);
  const auto reference = render::render_tile_centric(model, cam);

  std::printf("== VQ codec tuner: '%s', %zu Gaussians ==\n",
              scene::preset_info(preset).name.c_str(), model.size());
  std::printf(
      "raw fine record: %zu B/Gaussian; VQ record: %zu B/Gaussian "
      "(92.3%% traffic cut claimed in the paper)\n\n",
      voxel::kFineRecordRawBytes, voxel::kFineRecordVqBytes);

  std::printf("%28s %10s %9s %10s %8s\n", "codebooks (scale/rot/DC/SH)",
              "SRAM", "fits250K", "PSNR [dB]", "bits/G");

  struct Config {
    std::uint32_t main_entries;
    std::uint32_t sh_entries;
  };
  const Config sweeps[] = {{256, 64},   {1024, 128}, {2048, 256},
                           {4096, 512} /* paper */,  {8192, 1024}};

  for (const Config& c : sweeps) {
    vq::VqConfig vcfg;
    vcfg.scale_entries = c.main_entries;
    vcfg.rotation_entries = c.main_entries;
    vcfg.dc_entries = c.main_entries;
    vcfg.sh_entries = c.sh_entries;
    vcfg.kmeans_iters = 8;
    const auto qm = vq::QuantizedModel::build(model, vcfg);

    const auto decoded_render = render::render_tile_centric(qm.decode_all(), cam);
    const double psnr = metrics::psnr_capped(decoded_render.image, reference.image);
    const bool fits = qm.codebook_bytes() <= 250 * 1024;

    std::printf("%13u/%u/%u/%-6u %10s %9s %10.2f %8d%s\n", c.main_entries,
                c.main_entries, c.main_entries, c.sh_entries,
                format_bytes(static_cast<double>(qm.codebook_bytes())).c_str(),
                fits ? "yes" : "NO", psnr, qm.index_bits_per_gaussian(),
                c.main_entries == 4096 ? "   <- paper config" : "");
  }

  std::printf(
      "\nThe paper's 4096/4096/4096/512 configuration is the largest that\n"
      "fits the 250 KB on-chip codebook buffer; larger books gain little\n"
      "PSNR while spilling SRAM.\n");

  // Binary round-trip of the paper-config codec: save, reload, and verify
  // the reloaded model decodes bit-identically (the .sgsc asset store
  // depends on exactly this property for its VQ payloads).
  const std::string codec_path = args.get("save_codec", "/tmp/codec_tuner.sgvq");
  vq::VqConfig paper_cfg;
  paper_cfg.kmeans_iters = 8;
  const auto qm = vq::QuantizedModel::build(model, paper_cfg);
  if (!qm.save_file(codec_path)) {
    std::fprintf(stderr, "cannot write %s\n", codec_path.c_str());
    return 1;
  }
  const auto loaded = vq::QuantizedModel::load_file(codec_path);
  std::size_t mismatches = 0;
  for (std::uint32_t i = 0; i < qm.size(); ++i) {
    const gs::Gaussian a = qm.decode(i);
    const gs::Gaussian b = loaded.decode(i);
    if (!(a.position == b.position && a.scale == b.scale &&
          a.rotation == b.rotation && a.opacity == b.opacity && a.sh == b.sh)) {
      ++mismatches;
    }
  }
  std::printf(
      "\ncodec round-trip: %s (%zu Gaussians, %zu decode mismatches) -> %s\n",
      mismatches == 0 ? "bit-exact" : "BROKEN", qm.size(), mismatches,
      codec_path.c_str());
  return mismatches == 0 ? 0 : 1;
}
