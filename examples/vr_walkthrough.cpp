// VR walkthrough: the motivating scenario of the paper's introduction.
//
// A headset renders a trained scene along a camera trajectory and must
// sustain 90 FPS. This example walks a camera through a real-world-style
// scene, renders every keyframe with the streaming pipeline, and reports
// per-frame quality, DRAM traffic, and the simulated frame rate of the
// mobile GPU, GSCore, and the STREAMINGGS accelerator against the 90 FPS
// budget.
//
//   ./vr_walkthrough [--scene playroom] [--frames 8] [--model_scale 0.05]
//                    [--res_scale 0.4] [--save_frames out_dir]
#include <cstdio>

#include "common/cli.hpp"
#include "common/ppm.hpp"
#include "common/units.hpp"
#include "core/streaming_renderer.hpp"
#include "metrics/psnr.hpp"
#include "render/tile_renderer.hpp"
#include "scene/presets.hpp"
#include "sim/gpu_model.hpp"
#include "sim/gscore_sim.hpp"
#include "sim/streaminggs_sim.hpp"

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  const auto preset = scene::preset_from_name(args.get("scene", "train"));
  const int frames = args.get_int("frames", 8);
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.05));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.4));
  const std::string save_dir = args.get("save_frames", "");

  const auto& info = scene::preset_info(preset);
  std::printf("== VR walkthrough: '%s', %d keyframes, 90 FPS budget ==\n",
              info.name.c_str(), frames);

  const auto model = scene::make_preset_scene(preset, model_scale);
  int w = 0, h = 0;
  scene::scaled_resolution(preset, res_scale, w, h);

  // Offline preparation (voxelization + VQ) happens once per scene.
  core::StreamingConfig scfg;
  scfg.voxel_size = info.default_voxel_size;
  const auto scene_prepared = core::StreamingScene::prepare(model, scfg);
  std::printf("scene: %zu Gaussians, %d non-empty voxels, codebooks %s\n\n",
              model.size(), scene_prepared.grid().voxel_count(),
              format_bytes(static_cast<double>(
                               scene_prepared.quantized()->codebook_bytes()))
                  .c_str());

  std::printf("%6s %10s %10s | %9s %9s %11s | %s\n", "frame", "PSNR", "traffic",
              "GPU fps", "GSCore", "StreamingGS", "90 FPS?");

  double worst_fps = 1e30;
  for (int f = 0; f < frames; ++f) {
    const float t = static_cast<float>(f) / static_cast<float>(frames);
    const auto cam = scene::make_preset_camera(preset, w, h, t);

    const auto reference = render::render_tile_centric(model, cam);
    const auto streamed = core::render_streaming(scene_prepared, cam);

    const auto gpu = sim::simulate_gpu(reference.trace);
    const auto gscore = sim::simulate_gscore(reference.trace);
    const auto accel = sim::simulate_streaminggs(streamed.trace);
    worst_fps = std::min(worst_fps, accel.fps);

    std::printf("%6d %8.2fdB %10s | %9.1f %9.1f %11.1f | %s\n", f,
                metrics::psnr_capped(streamed.image, reference.image),
                format_bytes(static_cast<double>(streamed.stats.total_dram_bytes()))
                    .c_str(),
                gpu.report.fps, gscore.fps, accel.fps,
                accel.fps >= 90.0 ? "yes" : "NO");

    if (!save_dir.empty()) {
      write_ppm(save_dir + "/walk_" + std::to_string(f) + ".ppm", streamed.image);
    }
  }

  std::printf("\nworst-case accelerator frame rate: %.1f FPS (budget 90)\n",
              worst_fps);
  std::printf(
      "note: at full paper scale the GPU lands at 2-9 FPS (see "
      "bench/fig03_fps_mobile); the accelerator's margin is what makes "
      "untethered VR viable.\n");
  return 0;
}
