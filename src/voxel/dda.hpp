// 3D digital differential analyzer (Amanatides & Woo) for ray–voxel
// intersection. The paper's VSU samples along each pixel ray to identify
// intersected voxels (Sec. IV-B); DDA is the exact, sample-free equivalent
// and visits voxels strictly front-to-back, which is exactly the per-ray
// rendering order the voxel-ordering table needs.
#pragma once

#include <functional>
#include <vector>

#include "gs/camera.hpp"
#include "voxel/grid.hpp"

namespace sgs::voxel {

struct DdaStats {
  std::size_t steps = 0;        // voxel cells visited (incl. empty)
  std::size_t non_empty = 0;    // cells that survived renaming
};

// Walks `ray` through the grid from entry to exit (or until `max_t`),
// invoking visit(coord, t_entry) per visited cell in front-to-back order.
// Returns false from `visit` to stop early.
void traverse(const gs::Ray& ray, const VoxelGridConfig& grid, float max_t,
              const std::function<bool(Vec3i, float)>& visit);

// Dense (renamed) IDs of non-empty voxels along the ray, front-to-back,
// deduplicated (a DDA never revisits a cell). Stats are accumulated if given.
std::vector<DenseVoxelId> intersected_voxels(const gs::Ray& ray,
                                             const VoxelGrid& grid,
                                             float max_t = 1e30f,
                                             DdaStats* stats = nullptr);

// Allocation-free variant: appends into `out` (not cleared), reusing its
// capacity. The streaming renderer's per-worker scratch arenas march
// thousands of rays per frame through this path.
void intersected_voxels_into(const gs::Ray& ray, const VoxelGrid& grid,
                             float max_t, DdaStats* stats,
                             std::vector<DenseVoxelId>& out);

}  // namespace sgs::voxel
