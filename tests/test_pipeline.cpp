// Tests for the staged frame pipeline: FramePlan binning, the individual
// GroupPipeline stages, the FrameScheduler's deterministic merging, the
// frame-sequence API, and — most importantly — a golden regression proving
// the staged pipeline reproduces the pre-refactor monolithic renderer
// bit-for-bit (image bytes and every StreamingStats counter).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/bitonic.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/frame_plan.hpp"
#include "core/frame_scheduler.hpp"
#include "core/group_pipeline.hpp"
#include "core/hierarchical_filter.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "core/voxel_order.hpp"
#include "gs/blending.hpp"
#include "metrics/psnr.hpp"
#include "scene/generator.hpp"
#include "voxel/dda.hpp"
#include "voxel/layout.hpp"

namespace sgs::core {
namespace {

// ---------------------------------------------------------------------------
// Golden reference: a faithful (serial) copy of the pre-refactor monolithic
// render_streaming loop, kept here so the staged pipeline can be checked
// against the exact computation the seed renderer performed. Do not
// "improve" this function — its value is being frozen history.
// ---------------------------------------------------------------------------

struct RefSurvivor {
  gs::ProjectedGaussian proj;
  std::uint32_t model_index;
};

StreamingRenderResult reference_render_monolithic(
    const StreamingScene& scene, const gs::Camera& camera,
    const StreamingRenderOptions& options = {}) {
  StreamingConfig cfg = scene.config();
  if (options.coarse_filter_override) {
    cfg.use_coarse_filter = *options.coarse_filter_override;
  }
  const voxel::VoxelGrid& grid = scene.grid();
  const voxel::DataLayout& layout = scene.layout();
  const gs::GaussianModel& model = scene.render_model();

  const int width = camera.width();
  const int height = camera.height();
  const int gsz = cfg.group_size;
  const int groups_x = (width + gsz - 1) / gsz;
  const int groups_y = (height + gsz - 1) / gsz;
  const std::size_t group_count = static_cast<std::size_t>(groups_x) * groups_y;

  StreamingRenderResult result;
  result.image = Image(width, height, cfg.background);
  result.trace.group_size = gsz;
  result.trace.pixel_count = static_cast<std::uint64_t>(width) * height;
  result.trace.groups.resize(group_count);

  const Vec3f cam_pos = camera.position();
  auto depth_key = [&](voxel::DenseVoxelId v) {
    return (grid.voxel_center(v) - cam_pos).norm();
  };

  // Voxel -> group binning, serial version of the seed's mutex-guarded loop.
  std::vector<std::vector<voxel::DenseVoxelId>> group_candidates(group_count);
  for (std::int32_t vi = 0; vi < grid.voxel_count(); ++vi) {
    const auto v = static_cast<voxel::DenseVoxelId>(vi);
    const Vec3f lo = grid.voxel_min_corner(v);
    const float vs = grid.config().voxel_size;
    constexpr float kBinEps = 0.01f;
    int behind_near = 0;
    int behind_eps = 0;
    float px0 = 1e30f, py0 = 1e30f, px1 = -1e30f, py1 = -1e30f;
    for (int corner = 0; corner < 8; ++corner) {
      const Vec3f p{lo.x + ((corner & 1) ? vs : 0.0f),
                    lo.y + ((corner & 2) ? vs : 0.0f),
                    lo.z + ((corner & 4) ? vs : 0.0f)};
      const Vec3f p_cam = camera.world_to_camera(p);
      if (p_cam.z <= gs::kNearClip) ++behind_near;
      if (p_cam.z <= kBinEps) {
        ++behind_eps;
        continue;
      }
      const Vec2f uv = camera.project_cam(p_cam);
      px0 = std::min(px0, uv.x);
      py0 = std::min(py0, uv.y);
      px1 = std::max(px1, uv.x);
      py1 = std::max(py1, uv.y);
    }
    if (behind_near == 8) continue;
    int gx0, gx1, gy0, gy1;
    if (behind_eps > 0) {
      gx0 = 0; gy0 = 0; gx1 = groups_x - 1; gy1 = groups_y - 1;
    } else {
      gx0 = std::max(0, static_cast<int>((px0 - 1.0f) / static_cast<float>(gsz)));
      gy0 = std::max(0, static_cast<int>((py0 - 1.0f) / static_cast<float>(gsz)));
      gx1 = std::min(groups_x - 1,
                     static_cast<int>((px1 + 1.0f) / static_cast<float>(gsz)));
      gy1 = std::min(groups_y - 1,
                     static_cast<int>((py1 + 1.0f) / static_cast<float>(gsz)));
      if (gx0 > gx1 || gy0 > gy1) continue;
    }
    for (int gy = gy0; gy <= gy1; ++gy) {
      for (int gx = gx0; gx <= gx1; ++gx) {
        group_candidates[static_cast<std::size_t>(gy) * groups_x + gx].push_back(v);
      }
    }
  }
  for (auto& c : group_candidates) std::sort(c.begin(), c.end());
  result.trace.voxel_table_steps = static_cast<std::uint64_t>(grid.voxel_count());

  StreamingStats total;
  std::unordered_set<std::uint32_t> violator_set;
  std::unordered_set<std::uint32_t> contributor_set;

  for (std::size_t gi = 0; gi < group_count; ++gi) {
    const int gx = static_cast<int>(gi) % groups_x;
    const int gy = static_cast<int>(gi) / groups_x;
    const int px0 = gx * gsz;
    const int py0 = gy * gsz;
    const int px1 = std::min(width, px0 + gsz);
    const int py1 = std::min(height, py0 + gsz);
    const int n_px = (px1 - px0) * (py1 - py0);
    const GroupRect rect{static_cast<float>(px0), static_cast<float>(py0),
                         static_cast<float>(px1), static_cast<float>(py1)};

    StreamingStats local;
    GroupWork& work = result.trace.groups[gi];
    work.rays = static_cast<std::uint32_t>(n_px);

    const int stride = std::max(1, cfg.ray_stride);
    std::vector<int> xs, ys;
    for (int px = px0; px < px1; px += stride) xs.push_back(px);
    if (xs.empty() || xs.back() != px1 - 1) xs.push_back(px1 - 1);
    for (int py = py0; py < py1; py += stride) ys.push_back(py);
    if (ys.empty() || ys.back() != py1 - 1) ys.push_back(py1 - 1);

    std::vector<std::vector<voxel::DenseVoxelId>> per_ray;
    per_ray.reserve(xs.size() * ys.size());
    voxel::DdaStats dda_stats;
    for (int py : ys) {
      for (int px : xs) {
        const gs::Ray ray = camera.pixel_ray(static_cast<float>(px) + 0.5f,
                                             static_cast<float>(py) + 0.5f);
        per_ray.push_back(
            voxel::intersected_voxels(ray, grid, 1e30f, &dda_stats));
      }
    }
    local.dda_steps = dda_stats.steps;
    work.dda_steps = dda_stats.steps;

    for (const voxel::DenseVoxelId v : group_candidates[gi]) {
      per_ray.push_back({v});
    }

    const VoxelOrderResult order = topological_voxel_order(per_ray, depth_key);
    local.topo_nodes = order.node_count;
    local.topo_edges = order.edge_count;
    local.cycle_breaks = order.cycle_breaks;
    work.nodes = static_cast<std::uint32_t>(order.node_count);
    work.edges = static_cast<std::uint32_t>(order.edge_count);
    work.voxels.reserve(order.order.size());

    std::vector<gs::PixelAccumulator> acc(static_cast<std::size_t>(n_px));
    std::vector<float> max_depth(static_cast<std::size_t>(n_px), 0.0f);
    int saturated = 0;

    std::vector<RefSurvivor> survivors;
    std::vector<RefSurvivor> sorted_survivors;
    std::vector<float> sort_keys;
    std::vector<std::uint32_t> sort_payload;
    for (voxel::DenseVoxelId v : order.order) {
      if (saturated == n_px) break;

      const auto residents = grid.gaussians_in(v);
      VoxelWorkItem item;
      item.residents = static_cast<std::uint32_t>(residents.size());
      item.coarse_bytes =
          static_cast<std::uint64_t>(residents.size()) * voxel::kCoarseRecordBytes;
      local.max_voxel_residents =
          std::max(local.max_voxel_residents, item.residents);

      survivors.clear();
      for (const std::uint32_t mi : residents) {
        bool coarse_ok = true;
        if (cfg.use_coarse_filter) {
          coarse_ok = coarse_filter(model.gaussians[mi].position,
                                    scene.coarse_max_scale(mi), camera, rect);
        }
        if (!coarse_ok) continue;
        ++item.coarse_pass;
        if (auto proj = fine_filter(model.gaussians[mi], camera, rect)) {
          ++item.fine_pass;
          survivors.push_back({*proj, mi});
        }
      }
      item.fine_bytes = layout.fine_bytes(item.coarse_pass);

      if (survivors.size() > 1) {
        sort_keys.resize(survivors.size());
        sort_payload.resize(survivors.size());
        for (std::size_t k = 0; k < survivors.size(); ++k) {
          sort_keys[k] = survivors[k].proj.depth;
          sort_payload[k] = static_cast<std::uint32_t>(k);
        }
        bitonic_sort(sort_keys, sort_payload);
        sorted_survivors.clear();
        sorted_survivors.reserve(survivors.size());
        for (std::uint32_t idx : sort_payload) {
          sorted_survivors.push_back(survivors[idx]);
        }
        survivors.swap(sorted_survivors);
      }

      const int row = px1 - px0;
      for (const RefSurvivor& s : survivors) {
        if (saturated == n_px) break;
        const gs::PixelSpan span = gs::splat_pixel_span(
            s.proj.mean, s.proj.radius, px0, py0, px1, py1);
        bool contributed = false;
        bool violated = false;
        for (int py = span.y0; py < span.y1; ++py) {
          for (int px = span.x0; px < span.x1; ++px) {
            const int pi = (py - py0) * row + (px - px0);
            gs::PixelAccumulator& a = acc[static_cast<std::size_t>(pi)];
            if (a.saturated()) continue;
            ++item.blend_ops;
            const float alpha = gs::gaussian_alpha(
                s.proj,
                {static_cast<float>(px) + 0.5f, static_cast<float>(py) + 0.5f});
            if (alpha <= 0.0f) continue;
            contributed = true;
            ++local.blended_contributions;
            float& md = max_depth[static_cast<std::size_t>(pi)];
            if (s.proj.depth < md - 1e-6f) {
              ++local.depth_order_violations;
              violated = true;
            } else {
              md = s.proj.depth;
            }
            gs::blend(a, s.proj.color, alpha);
            if (a.saturated()) ++saturated;
          }
        }
        if (contributed) contributor_set.insert(s.model_index);
        if (violated) violator_set.insert(s.model_index);
      }

      local.gaussians_streamed += item.residents;
      local.coarse_pass += item.coarse_pass;
      local.fine_pass += item.fine_pass;
      local.blend_ops += item.blend_ops;
      local.coarse_read_bytes += item.coarse_bytes;
      local.fine_read_bytes += item.fine_bytes;
      ++local.voxel_visits;
      work.voxels.push_back(item);
    }

    int pi = 0;
    for (int py = py0; py < py1; ++py) {
      for (int px = px0; px < px1; ++px, ++pi) {
        result.image.at(px, py) =
            gs::resolve(acc[static_cast<std::size_t>(pi)], cfg.background);
      }
    }
    local.frame_write_bytes = static_cast<std::uint64_t>(n_px) * 4;

    total.coarse_read_bytes += local.coarse_read_bytes;
    total.fine_read_bytes += local.fine_read_bytes;
    total.frame_write_bytes += local.frame_write_bytes;
    total.gaussians_streamed += local.gaussians_streamed;
    total.coarse_pass += local.coarse_pass;
    total.fine_pass += local.fine_pass;
    total.blend_ops += local.blend_ops;
    total.blended_contributions += local.blended_contributions;
    total.depth_order_violations += local.depth_order_violations;
    total.dda_steps += local.dda_steps;
    total.voxel_visits += local.voxel_visits;
    total.topo_nodes += local.topo_nodes;
    total.topo_edges += local.topo_edges;
    total.cycle_breaks += local.cycle_breaks;
    total.max_voxel_residents =
        std::max(total.max_voxel_residents, local.max_voxel_residents);
  }

  total.gaussians_blended_unique = contributor_set.size();
  total.gaussians_violating_unique = violator_set.size();
  result.stats = total;
  result.trace.frame_write_bytes = total.frame_write_bytes;
  if (options.collect_violators) {
    result.violators.assign(violator_set.begin(), violator_set.end());
    std::sort(result.violators.begin(), result.violators.end());
  }
  return result;
}

// ------------------------------------------------------------ test helpers --

gs::Camera test_camera(int w = 256, int h = 256) {
  return gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, w, h);
}

gs::GaussianModel test_model(std::uint64_t seed, std::size_t n = 8000) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = n;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.log_scale_mean = -4.0f;
  cfg.log_scale_std = 0.6f;
  cfg.seed = seed;
  return scene::generate_scene(cfg);
}

void expect_stats_equal(const StreamingStats& a, const StreamingStats& b) {
  EXPECT_EQ(a.coarse_read_bytes, b.coarse_read_bytes);
  EXPECT_EQ(a.fine_read_bytes, b.fine_read_bytes);
  EXPECT_EQ(a.frame_write_bytes, b.frame_write_bytes);
  EXPECT_EQ(a.gaussians_streamed, b.gaussians_streamed);
  EXPECT_EQ(a.coarse_pass, b.coarse_pass);
  EXPECT_EQ(a.fine_pass, b.fine_pass);
  EXPECT_EQ(a.blend_ops, b.blend_ops);
  EXPECT_EQ(a.blended_contributions, b.blended_contributions);
  EXPECT_EQ(a.depth_order_violations, b.depth_order_violations);
  EXPECT_EQ(a.gaussians_blended_unique, b.gaussians_blended_unique);
  EXPECT_EQ(a.gaussians_violating_unique, b.gaussians_violating_unique);
  EXPECT_EQ(a.dda_steps, b.dda_steps);
  EXPECT_EQ(a.voxel_visits, b.voxel_visits);
  EXPECT_EQ(a.topo_nodes, b.topo_nodes);
  EXPECT_EQ(a.topo_edges, b.topo_edges);
  EXPECT_EQ(a.cycle_breaks, b.cycle_breaks);
  EXPECT_EQ(a.max_voxel_residents, b.max_voxel_residents);
}

// ------------------------------------------------------- golden regression --

TEST(GoldenRegression, StagedPipelineMatchesMonolithBitExact) {
  // The in-test reference runs the historical scalar routines directly, so
  // bit-exactness holds at kScalar dispatch (vector paths are covered by
  // the PSNR-bounded test below and tests/test_kernels.cpp).
  const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
  const auto model = test_model(41);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera();

  const auto golden = reference_render_monolithic(scene, cam);
  const auto staged = render_streaming(scene, cam);

  EXPECT_EQ(staged.image.pixels(), golden.image.pixels());
  expect_stats_equal(staged.stats, golden.stats);
  EXPECT_EQ(staged.trace.voxel_table_steps, golden.trace.voxel_table_steps);
  EXPECT_EQ(staged.trace.total_dram_bytes(), golden.trace.total_dram_bytes());
  EXPECT_EQ(staged.trace.total_residents(), golden.trace.total_residents());
  EXPECT_EQ(staged.trace.total_blend_ops(), golden.trace.total_blend_ops());
  ASSERT_EQ(staged.trace.groups.size(), golden.trace.groups.size());
  for (std::size_t g = 0; g < staged.trace.groups.size(); ++g) {
    EXPECT_EQ(staged.trace.groups[g].voxels.size(),
              golden.trace.groups[g].voxels.size());
    EXPECT_EQ(staged.trace.groups[g].dda_steps, golden.trace.groups[g].dda_steps);
    EXPECT_EQ(staged.trace.groups[g].nodes, golden.trace.groups[g].nodes);
    EXPECT_EQ(staged.trace.groups[g].edges, golden.trace.groups[g].edges);
  }
}

TEST(GoldenRegression, MatchesMonolithWithoutCoarseFilterAndWithViolators) {
  const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
  const auto model = test_model(42, 6000);
  StreamingConfig scfg;
  scfg.voxel_size = 0.8f;
  scfg.use_vq = false;
  scfg.group_size = 32;
  scfg.ray_stride = 4;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera(192, 160);  // partial edge groups

  StreamingRenderOptions opts;
  opts.collect_violators = true;
  opts.coarse_filter_override = false;
  const auto golden = reference_render_monolithic(scene, cam, opts);
  const auto staged = render_streaming(scene, cam, opts);

  EXPECT_EQ(staged.image.pixels(), golden.image.pixels());
  expect_stats_equal(staged.stats, golden.stats);
  EXPECT_EQ(staged.violators, golden.violators);
}

// The vector paths are allowed to differ from the frozen scalar goldens
// only by FP reassociation/FMA and the blender's polynomial exp: the frame
// must stay visually identical (PSNR-bounded) and the filter funnel sizes
// must agree lane-for-lane with scalar on real scene data.
TEST(GoldenRegression, SimdDispatchStaysWithinGoldenPsnrBound) {
  if (simd::detect_isa() == simd::IsaLevel::kScalar) {
    GTEST_SKIP() << "no vector ISA on this host";
  }
  const auto model = test_model(41);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera();

  StreamingRenderResult scalar_r, simd_r;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    scalar_r = render_streaming(scene, cam);
  }
  simd_r = render_streaming(scene, cam);

  // Same funnel up to FP-boundary flips: a record sitting exactly on a cull
  // threshold may land differently under FMA, so the survivor counts get a
  // tiny slack rather than exact equality.
  EXPECT_EQ(simd_r.stats.gaussians_streamed, scalar_r.stats.gaussians_streamed);
  const auto near_count = [](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t d = a > b ? a - b : b - a;
    return d <= 2 + (a + b) / 2000;  // ±0.1%, minimum 2
  };
  EXPECT_TRUE(near_count(simd_r.stats.coarse_pass, scalar_r.stats.coarse_pass))
      << simd_r.stats.coarse_pass << " vs " << scalar_r.stats.coarse_pass;
  EXPECT_TRUE(near_count(simd_r.stats.fine_pass, scalar_r.stats.fine_pass))
      << simd_r.stats.fine_pass << " vs " << scalar_r.stats.fine_pass;
  const double psnr = metrics::psnr(simd_r.image, scalar_r.image);
  EXPECT_GT(psnr, 55.0) << "SIMD frame drifted from the scalar golden";
}

// --------------------------------------------------------------- FramePlan --

TEST(FramePlan, DeterministicAcrossParallelism) {
  const auto model = test_model(43, 5000);
  const auto grid = voxel::VoxelGrid::build(model, 0.7f);
  const gs::Camera cam = test_camera();

  const int saved = parallelism();
  set_parallelism(1);
  const FramePlan serial = FramePlan::build(grid, cam, 64);
  set_parallelism(4);
  const FramePlan threaded = FramePlan::build(grid, cam, 64);
  set_parallelism(saved);

  ASSERT_EQ(serial.group_count(), threaded.group_count());
  for (std::size_t g = 0; g < serial.group_count(); ++g) {
    EXPECT_EQ(serial.candidates(g), threaded.candidates(g));
  }
}

TEST(FramePlan, LargerMarginIsSuperset) {
  const auto model = test_model(44, 5000);
  const auto grid = voxel::VoxelGrid::build(model, 0.7f);
  const gs::Camera cam = test_camera();

  const FramePlan tight = FramePlan::build(grid, cam, 64, 1.0f);
  const FramePlan wide = FramePlan::build(grid, cam, 64, 24.0f);
  ASSERT_EQ(tight.group_count(), wide.group_count());
  for (std::size_t g = 0; g < tight.group_count(); ++g) {
    const auto& t = tight.candidates(g);
    const auto& w = wide.candidates(g);
    EXPECT_TRUE(std::includes(w.begin(), w.end(), t.begin(), t.end()))
        << "group " << g;
  }
}

TEST(FramePlan, ReusableForRespectsThresholds) {
  const auto model = test_model(45, 1000);
  const auto grid = voxel::VoxelGrid::build(model, 1.0f);
  const gs::Camera cam = test_camera();
  const FramePlan plan = FramePlan::build(grid, cam, 64, 24.0f);

  EXPECT_TRUE(plan.reusable_for(cam, 0.1f, 0.02f));

  const gs::Camera nudged =
      gs::Camera::look_at({0.01f, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, 256, 256);
  EXPECT_TRUE(plan.reusable_for(nudged, 0.1f, 0.02f));

  const gs::Camera far_cam =
      gs::Camera::look_at({1.0f, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, 256, 256);
  EXPECT_FALSE(plan.reusable_for(far_cam, 0.1f, 0.02f));

  const gs::Camera resized =
      gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, 128, 128);
  EXPECT_FALSE(plan.reusable_for(resized, 10.0f, 10.0f));

  const gs::Camera rotated =
      gs::Camera::look_at({0, 0, -5}, {0.5f, 0, 0}, {0, 1, 0}, 0.8f, 256, 256);
  EXPECT_FALSE(plan.reusable_for(rotated, 10.0f, 0.02f));
}

// ------------------------------------------------------------------ stages --

TEST(SortStage, SortsSurvivorsByDepthLikeTheBitonicNetwork) {
  GroupContext ctx;
  const float depths[] = {5.0f, 1.0f, 3.0f, 2.0f, 4.0f, 0.5f, 6.0f};
  for (std::uint32_t i = 0; i < 7; ++i) {
    Survivor s;
    s.proj.depth = depths[i];
    s.model_index = i;
    ctx.survivors.push_back(s);
  }
  SortStage::run(ctx);
  ASSERT_EQ(ctx.survivors.size(), 7u);
  for (std::size_t i = 1; i < ctx.survivors.size(); ++i) {
    EXPECT_LE(ctx.survivors[i - 1].proj.depth, ctx.survivors[i].proj.depth);
  }
}

TEST(FilterStage, CountsMatchFunnelInvariant) {
  const auto model = test_model(46, 4000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera();
  const GroupRect rect{96, 96, 160, 160};

  GroupContext ctx;
  std::uint64_t total_residents = 0, total_coarse = 0, total_fine = 0;
  for (voxel::DenseVoxelId v = 0; v < scene.grid().voxel_count(); ++v) {
    const auto residents = scene.grid().gaussians_in(v);
    const auto counts = FilterStage::run(ctx, scene, v, cam, rect,
                                         /*use_coarse_filter=*/true);
    EXPECT_LE(counts.fine_pass, counts.coarse_pass);
    EXPECT_LE(counts.coarse_pass, residents.size());
    EXPECT_EQ(ctx.survivors.size(), counts.fine_pass);
    total_residents += residents.size();
    total_coarse += counts.coarse_pass;
    total_fine += counts.fine_pass;

    // Without the coarse filter every resident reaches the fine phase, and
    // conservativeness means the fine survivors are identical.
    const auto no_cgf = FilterStage::run(ctx, scene, v, cam, rect,
                                         /*use_coarse_filter=*/false);
    EXPECT_EQ(no_cgf.coarse_pass, residents.size());
    EXPECT_EQ(no_cgf.fine_pass, counts.fine_pass);
  }
  EXPECT_GT(total_residents, 0u);
  EXPECT_LT(total_fine, total_residents);  // the funnel actually filters
  EXPECT_LE(total_coarse, total_residents);
}

TEST(VsuStage, ScratchArenaReuseDoesNotChangeResults) {
  const auto model = test_model(47, 4000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera();
  const FramePlan plan = FramePlan::build(scene.grid(), cam, 64);

  // A fresh context per group vs one context reused across all groups (in
  // reverse order, so stale per_ray slots really get exercised).
  std::vector<VsuStageResult> fresh(plan.group_count());
  for (std::size_t g = 0; g < plan.group_count(); ++g) {
    GroupContext ctx;
    ctx.begin_group(64 * 64);
    const int gx = static_cast<int>(g) % plan.groups_x();
    const int gy = static_cast<int>(g) / plan.groups_x();
    fresh[g] = VsuStage::run(ctx, scene.grid(), cam, gx * 64, gy * 64,
                             gx * 64 + 64, gy * 64 + 64, 8, plan.candidates(g));
  }
  GroupContext reused;
  for (std::size_t i = plan.group_count(); i-- > 0;) {
    reused.begin_group(64 * 64);
    const int gx = static_cast<int>(i) % plan.groups_x();
    const int gy = static_cast<int>(i) / plan.groups_x();
    const auto r = VsuStage::run(reused, scene.grid(), cam, gx * 64, gy * 64,
                                 gx * 64 + 64, gy * 64 + 64, 8,
                                 plan.candidates(i));
    EXPECT_EQ(r.order.order, fresh[i].order.order) << "group " << i;
    EXPECT_EQ(r.dda_steps, fresh[i].dda_steps);
    EXPECT_EQ(r.order.edge_count, fresh[i].order.edge_count);
  }
}

// ----------------------------------------------------------- FrameScheduler --

TEST(FrameScheduler, DeterministicAcrossParallelismAndRepeats) {
  const auto model = test_model(48, 5000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera();
  const FramePlan plan = FramePlan::build(scene.grid(), cam, 64);

  const int saved = parallelism();
  set_parallelism(1);
  FrameScheduler sched1;
  const auto serial = sched1.render_frame(scene, cam, plan, {});
  set_parallelism(4);
  FrameScheduler sched4;
  const auto threaded = sched4.render_frame(scene, cam, plan, {});
  // Re-render on the same scheduler: scratch arenas are warm now.
  const auto warm = sched4.render_frame(scene, cam, plan, {});
  set_parallelism(saved);

  EXPECT_EQ(serial.image.pixels(), threaded.image.pixels());
  EXPECT_EQ(warm.image.pixels(), threaded.image.pixels());
  expect_stats_equal(serial.stats, threaded.stats);
  expect_stats_equal(warm.stats, threaded.stats);
}

TEST(FrameScheduler, FrameWriteBytesSumToFullFrame) {
  const auto model = test_model(49, 3000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  // Odd resolution: edge groups are partial; the per-group += accounting
  // must still sum to exactly width*height*4 RGBA8 bytes.
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera(200, 120);
  const auto r = render_streaming(scene, cam);
  EXPECT_EQ(r.stats.frame_write_bytes, 200u * 120u * 4u);
  EXPECT_EQ(r.trace.frame_write_bytes, 200u * 120u * 4u);
}

// ------------------------------------------------------------ stage timing --

TEST(StageTiming, CollectedWhenEnabledAndInertOtherwise) {
  const auto model = test_model(50, 4000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera(128, 128);

  const auto untimed = render_streaming(scene, cam);
  EXPECT_EQ(untimed.trace.total_stage_ns().total(), 0u);

  StreamingRenderOptions opts;
  opts.collect_stage_timing = true;
  const auto timed = render_streaming(scene, cam, opts);
  const StageTimingsNs t = timed.trace.total_stage_ns();
  EXPECT_GT(t.total(), 0u);
  EXPECT_GT(t.plan, 0u);
  EXPECT_GT(t.vsu, 0u);
  EXPECT_GT(t.filter, 0u);
  EXPECT_GT(t.blend, 0u);

  // Timing is metadata only: the frame itself is identical.
  EXPECT_EQ(timed.image.pixels(), untimed.image.pixels());
  expect_stats_equal(timed.stats, untimed.stats);
}

// --------------------------------------------------------- render_sequence --

TEST(RenderSequence, StaticCameraReusesPlanAndStaysBitExact) {
  const auto model = test_model(51, 4000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const gs::Camera cam = test_camera(128, 128);

  SequenceOptions opts;
  opts.plan_margin_px = 1.0f;  // match the single-frame renderer exactly
  const std::vector<gs::Camera> cams(4, cam);
  const auto seq = render_sequence(scene, cams, opts);

  EXPECT_EQ(seq.stats.plans_built, 1u);
  EXPECT_EQ(seq.stats.plans_reused, 3u);

  const auto single = render_streaming(scene, cam);
  ASSERT_EQ(seq.frames.size(), 4u);
  for (std::size_t f = 0; f < seq.frames.size(); ++f) {
    EXPECT_EQ(seq.frames[f].image.pixels(), single.image.pixels()) << f;
    expect_stats_equal(seq.frames[f].stats, single.stats);
  }
  // Reused frames charge zero voxel-table build steps.
  EXPECT_FALSE(seq.frames[0].trace.plan_reused);
  EXPECT_GT(seq.frames[0].trace.voxel_table_steps, 0u);
  for (std::size_t f = 1; f < seq.frames.size(); ++f) {
    EXPECT_TRUE(seq.frames[f].trace.plan_reused);
    EXPECT_EQ(seq.frames[f].trace.voxel_table_steps, 0u);
  }
}

TEST(RenderSequence, SmallMotionReusesLargeMotionRebuilds) {
  const auto model = test_model(52, 4000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);

  auto cam_at = [&](float x) {
    return gs::Camera::look_at({x, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, 128, 128);
  };

  SequenceOptions opts;
  opts.reuse_max_translation = 0.05f;
  opts.reuse_max_rotation_rad = 0.05f;
  // Frames 0-2 creep (reusable), frame 3 jumps (rebuild), frame 4 creeps.
  const std::vector<gs::Camera> cams = {cam_at(0.0f), cam_at(0.01f),
                                        cam_at(0.02f), cam_at(1.0f),
                                        cam_at(1.01f)};
  const auto seq = render_sequence(scene, cams, opts);
  EXPECT_EQ(seq.stats.plans_built, 2u);
  EXPECT_EQ(seq.stats.plans_reused, 3u);
  EXPECT_TRUE(seq.frames[1].trace.plan_reused);
  EXPECT_TRUE(seq.frames[2].trace.plan_reused);
  EXPECT_FALSE(seq.frames[3].trace.plan_reused);
  EXPECT_TRUE(seq.frames[4].trace.plan_reused);

  // Reused frames stay close to a from-scratch render: the generous margin
  // keeps the binning conservative under creeping motion.
  for (std::size_t f = 1; f < 3; ++f) {
    const auto scratch = render_streaming(scene, cams[f]);
    EXPECT_GT(metrics::psnr_capped(seq.frames[f].image, scratch.image), 40.0)
        << "frame " << f;
  }
}

TEST(RenderSequence, GeometryChangeForcesReplanNeverStaleReuse) {
  const auto model = test_model(53, 4000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);

  // Identical pose; the image geometry changes mid-sequence (resolution,
  // then intrinsics via a different fov). Thresholds are infinite so only
  // the geometry check can force the rebuilds; margin 1 px matches the
  // single-frame renderer so every frame compares bit-exact to scratch.
  SequenceOptions opts;
  opts.reuse_max_translation = 1e9f;
  opts.reuse_max_rotation_rad = 1e9f;
  opts.plan_margin_px = 1.0f;
  const std::vector<gs::Camera> cams = {
      test_camera(128, 128), test_camera(128, 128),
      test_camera(192, 96),  // resized
      gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.5f, 192, 96),
  };
  const auto seq = render_sequence(scene, cams, opts);
  ASSERT_EQ(seq.frames.size(), 4u);
  EXPECT_EQ(seq.stats.plans_built, 3u);
  EXPECT_EQ(seq.stats.plans_reused, 1u);
  EXPECT_EQ(seq.stats.plans_invalidated_geometry, 2u);
  // Every frame is correctly sized and matches a from-scratch render.
  for (std::size_t f = 0; f < cams.size(); ++f) {
    EXPECT_EQ(seq.frames[f].image.width(), cams[f].width());
    EXPECT_EQ(seq.frames[f].image.height(), cams[f].height());
    const auto scratch = render_streaming(scene, cams[f]);
    EXPECT_EQ(seq.frames[f].image.pixels(), scratch.image.pixels()) << f;
  }
}

TEST(FrameScheduler, RejectsPlanWithMismatchedImageGeometry) {
  const auto model = test_model(54, 3000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);

  const gs::Camera cam = test_camera(128, 128);
  const FramePlan plan =
      FramePlan::build(scene.grid(), cam, scene.config().group_size);
  FrameScheduler scheduler;

  // Same geometry, different pose: fine (the sequence-reuse case).
  const gs::Camera moved =
      gs::Camera::look_at({0.1f, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, 128, 128);
  EXPECT_NO_THROW(scheduler.render_frame(scene, moved, plan, {}));

  // Different size or intrinsics: the stale plan must be rejected loudly.
  EXPECT_THROW(
      scheduler.render_frame(scene, test_camera(64, 64), plan, {}),
      std::invalid_argument);
  const gs::Camera refocused =
      gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.5f, 128, 128);
  EXPECT_THROW(scheduler.render_frame(scene, refocused, plan, {}),
               std::invalid_argument);
}

TEST(FramePlan, UniqueCandidatesIsSortedUnionOfGroups) {
  const auto model = test_model(55, 4000);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const FramePlan plan =
      FramePlan::build(scene.grid(), test_camera(), 64, 8.0f);

  std::unordered_set<voxel::DenseVoxelId> expect;
  for (std::size_t g = 0; g < plan.group_count(); ++g) {
    for (const voxel::DenseVoxelId v : plan.candidates(g)) expect.insert(v);
  }
  const auto uniq = plan.collect_unique_candidates();
  EXPECT_EQ(uniq.size(), expect.size());
  EXPECT_TRUE(std::is_sorted(uniq.begin(), uniq.end()));
  for (const voxel::DenseVoxelId v : uniq) EXPECT_TRUE(expect.count(v) > 0);
}

}  // namespace
}  // namespace sgs::core
