// Bitonic sorting network — the hardware sorting unit.
//
// The paper adopts GSCore's bitonic sorting unit for the per-voxel depth
// sort (Sec. IV-A: "we simplify the sorting unit by just adopting the
// bitonic sorting unit from GSCore, as our voxel-based rendering only
// requires establishing the rendering order for Gaussians within a voxel").
// This module provides (a) a functional bitonic network that sorts exactly
// like the hardware (fixed comparator schedule, padding to a power of two)
// and (b) closed-form complexity so the cycle model can charge real
// stage/comparator counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sgs {

struct BitonicComplexity {
  std::uint32_t padded_n = 0;   // next power of two
  int stages = 0;               // comparator stages: k(k+1)/2 for n = 2^k
  std::uint64_t comparators = 0;  // total compare-exchange operations
};

BitonicComplexity bitonic_complexity(std::uint32_t n);

// Sorts `keys` ascending in place using the bitonic network schedule,
// applying the same exchanges to `payload` (typically Gaussian indices).
// keys.size() need not be a power of two; the network pads virtually with
// +inf keys. payload must match keys in length.
void bitonic_sort(std::span<float> keys, std::span<std::uint32_t> payload);

// Cycle model of one hardware sorting unit: `width` compare-exchange lanes
// retire up to `width` comparators per cycle, stages are serialized by the
// data dependency.
double bitonic_sort_cycles(std::uint32_t n, std::uint32_t width);

}  // namespace sgs
