// FetchBackend: the byte-ranged transfer seam under AssetStore.
//
// Everything the store reads after open() is a (offset, length) range —
// payload tiers on demand, metadata sections at open. FetchBackend makes
// that boundary explicit so the *transport* is swappable under one typed
// failure contract:
//
//   - LocalFileBackend        one ifstream + mutex; bit-identical to the
//                             pre-seam direct-file path.
//   - MemoryBackend           an in-memory byte image of a store; zero-cost
//                             transfers (elapsed_ns == 0), handy for tests.
//   - SimulatedNetworkBackend wraps another backend behind a deterministic
//                             link model (latency/bandwidth/jitter/loss)
//                             driven by a virtual clock and a seeded RNG —
//                             never wall time — so a given seed and request
//                             sequence replays a byte-identical transfer
//                             schedule.
//
// Error mapping is part of the contract: a transfer that times out or is
// lost surfaces as StreamErrorKind::kNetTimeout; one that truncates
// mid-payload surfaces as kIoRead with the delivered/requested byte counts
// in the detail. Backends report errors store-scoped (group = tier = -1);
// AssetStore re-scopes them with group+tier context on the read path. That
// routes every network fault into the cache's existing retry/backoff/
// degraded machinery (residency_cache.hpp) — the network error path IS the
// disk error path.
//
// read_range() on every backend is thread-safe; elapsed_ns in the returned
// FetchInfo is the transfer duration (wall-clock for real I/O, virtual for
// the simulated link) and is what BandwidthEstimator consumes.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <streambuf>
#include <string>
#include <vector>

#include "stream/stream_error.hpp"

namespace sgs::stream {

// One completed transfer, as seen by the caller.
struct FetchInfo {
  std::uint64_t bytes = 0;       // bytes delivered (== requested on success)
  std::uint64_t elapsed_ns = 0;  // transfer duration; virtual time for the
                                 // simulated link, wall time for real I/O
};

// Cumulative per-backend transfer counters (thread-safe snapshot).
struct FetchBackendStats {
  std::uint64_t requests = 0;       // read_range calls, any outcome
  std::uint64_t bytes = 0;          // bytes delivered by completed transfers
  std::uint64_t busy_ns = 0;        // total transfer time, failures included
  std::uint64_t timeouts = 0;       // transfers lost / timed out (kNetTimeout)
  std::uint64_t partial_reads = 0;  // transfers truncated mid-payload (kIoRead)
};

class FetchBackend {
 public:
  virtual ~FetchBackend() = default;

  // Reads exactly dst.size() bytes starting at `offset`. On success the
  // whole span is filled and FetchInfo reports the transfer. On failure
  // returns a typed StreamError (store-scoped; callers add group/tier);
  // dst may hold a delivered prefix after a partial transfer.
  virtual StreamResult<FetchInfo> read_range(std::uint64_t offset,
                                             std::span<char> dst) = 0;

  // Total store size in bytes (0 if the backend failed to open).
  virtual std::uint64_t size() const = 0;

  // Set when the backend could not reach its origin at construction; a
  // store open over such a backend fails with this error (kIoOpen etc.).
  virtual std::optional<StreamError> open_error() const {
    return std::nullopt;
  }

  // Human-readable origin for error messages and reports.
  virtual std::string describe() const = 0;

  virtual FetchBackendStats stats() const = 0;
};

// The pre-seam behavior: one shared ifstream guarded by a mutex, reads
// timed with the wall clock. Construction never throws — a missing file is
// reported through open_error() / the first read_range.
class LocalFileBackend final : public FetchBackend {
 public:
  explicit LocalFileBackend(std::string path);

  StreamResult<FetchInfo> read_range(std::uint64_t offset,
                                     std::span<char> dst) override;
  std::uint64_t size() const override { return size_; }
  std::optional<StreamError> open_error() const override {
    return open_error_;
  }
  std::string describe() const override { return "file:" + path_; }
  FetchBackendStats stats() const override;

 private:
  std::string path_;
  std::uint64_t size_ = 0;
  std::optional<StreamError> open_error_;
  mutable std::mutex mutex_;  // guards file_ and stats_
  mutable std::ifstream file_;
  FetchBackendStats stats_;
};

// A store held entirely in memory. Transfers are instantaneous
// (elapsed_ns == 0, so they never feed a bandwidth estimate).
class MemoryBackend final : public FetchBackend {
 public:
  explicit MemoryBackend(std::vector<char> bytes);
  // Loads a whole file image; on failure returns nullptr and sets *error.
  static std::shared_ptr<MemoryBackend> from_file(const std::string& path,
                                                  StreamError* error = nullptr);

  StreamResult<FetchInfo> read_range(std::uint64_t offset,
                                     std::span<char> dst) override;
  std::uint64_t size() const override { return bytes_.size(); }
  std::string describe() const override;
  FetchBackendStats stats() const override;

 private:
  std::vector<char> bytes_;
  mutable std::mutex mutex_;  // guards stats_
  FetchBackendStats stats_;
};

// Link model for SimulatedNetworkBackend. The default-constructed profile
// is a perfect link: zero latency, infinite bandwidth, no faults — renders
// over it are bit-identical to the wrapped backend.
struct NetProfile {
  // Fixed per-request setup cost (RTT + server think time).
  std::uint64_t latency_ns = 0;
  // Extra per-request delay drawn uniformly from [0, jitter_ns].
  std::uint64_t jitter_ns = 0;
  // Link throughput; 0 means infinite (transfers cost latency+jitter only).
  std::uint64_t bandwidth_bytes_per_sec = 0;
  // Probability a transfer is lost: the full transfer time is still
  // charged (the client waited it out), no bytes arrive, and the request
  // fails with kNetTimeout.
  double loss_rate = 0.0;
  // Probability a transfer truncates mid-payload: half the requested bytes
  // arrive and the request fails with kIoRead (a short read the store must
  // surface with group+tier context, not as a decode error).
  double partial_rate = 0.0;
  // Seeds the per-backend RNG; same seed + same request sequence replays a
  // byte-identical transfer schedule.
  std::uint32_t seed = 1;
  // Keep a per-transfer record (transfers()) — for tests; off for servers.
  bool record_schedule = false;

  // Named CLI profiles, ordered here by effective throughput:
  //   "lossy"       —  8 MB/s, 25 ms latency, 10 ms jitter, 3% loss,
  //                    1% partial transfers
  //   "constrained" — 16 MB/s, 10 ms latency, 2 ms jitter, clean
  //   "fast"        —  1 GB/s, 0.5 ms latency, clean
  // Throws std::invalid_argument on any other name.
  static NetProfile from_name(const std::string& name);
};

// One simulated transfer, recorded when NetProfile::record_schedule is set.
// Times are on the backend's virtual clock (starts at 0, advances by each
// request's transfer time — wall time never enters).
struct NetTransfer {
  std::uint64_t offset = 0;
  std::uint64_t requested = 0;
  std::uint64_t delivered = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint8_t outcome = 0;  // 0 = ok, 1 = timeout/loss, 2 = partial

  friend bool operator==(const NetTransfer&, const NetTransfer&) = default;
};

// Deterministic simulated network over any origin backend. All randomness
// comes from one seeded generator advanced in a fixed order per request
// under the backend mutex, and all time is virtual — so the transfer
// schedule is a pure function of (profile, request sequence). Concurrent
// callers are safe, but schedule replay additionally requires the request
// *order* to be deterministic (single-threaded or synchronous prefetch).
class SimulatedNetworkBackend final : public FetchBackend {
 public:
  SimulatedNetworkBackend(std::shared_ptr<FetchBackend> origin,
                          NetProfile profile);

  StreamResult<FetchInfo> read_range(std::uint64_t offset,
                                     std::span<char> dst) override;
  std::uint64_t size() const override { return origin_->size(); }
  std::optional<StreamError> open_error() const override {
    return origin_->open_error();
  }
  std::string describe() const override;
  FetchBackendStats stats() const override;

  const NetProfile& profile() const { return profile_; }
  // Virtual clock: total simulated link time consumed so far.
  std::uint64_t now_ns() const;
  // Transfer schedule (empty unless profile.record_schedule).
  std::vector<NetTransfer> transfers() const;

 private:
  std::shared_ptr<FetchBackend> origin_;
  NetProfile profile_;
  mutable std::mutex mutex_;  // guards rng_, now_ns_, stats_, log_
  std::uint64_t rng_;
  std::uint64_t now_ns_ = 0;
  FetchBackendStats stats_;
  std::vector<NetTransfer> log_;
};

// std::streambuf over a FetchBackend: lets AssetStore::open() parse store
// metadata through the same transfer seam (and the same fault injection)
// as payload reads. Read-only, chunked underflow, forward seeks only via
// the usual istream interface. A backend error during parsing is latched
// in last_error() so the store can surface the typed network error instead
// of misreporting it as a corrupt-section error.
class FetchStreamBuf final : public std::streambuf {
 public:
  explicit FetchStreamBuf(FetchBackend& backend, std::size_t chunk = 1 << 16);

  const std::optional<StreamError>& last_error() const { return error_; }

 protected:
  int_type underflow() override;
  std::streamsize xsgetn(char* s, std::streamsize n) override;
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override;
  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override;

 private:
  std::uint64_t current_offset() const;

  FetchBackend* backend_;
  std::vector<char> buf_;
  // Store offset just past the bytes currently in [eback, egptr).
  std::uint64_t next_offset_ = 0;
  std::optional<StreamError> error_;
};

}  // namespace sgs::stream
