#include "stream/residency_cache.hpp"

#include <cassert>
#include <utility>

namespace sgs::stream {

ResidencyCache::ResidencyCache(const AssetStore& store,
                               ResidencyCacheConfig config)
    : store_(&store),
      config_(config),
      entries_(static_cast<std::size_t>(store.group_count())) {}

void ResidencyCache::begin_frame(
    const FrameIntent&, std::span<const voxel::DenseVoxelId> plan_voxels) {
  // Pin the plan's working set: whether or not a candidate is resident yet,
  // it must not be evicted while the frame is in flight (views into it may
  // outlive their release()).
  frame_pins_.assign(plan_voxels.begin(), plan_voxels.end());
  std::lock_guard<std::mutex> lk(mutex_);
  assert(!bracket_active_ &&
         "ResidencyCache::begin_frame frames must not overlap");
  bracket_active_ = true;
  pin_plan_locked(frame_pins_);
}

void ResidencyCache::end_frame() {
  std::lock_guard<std::mutex> lk(mutex_);
  assert(bracket_active_ && "end_frame without begin_frame");
  unpin_plan_locked(frame_pins_);
  frame_pins_.clear();
  bracket_active_ = false;
}

void ResidencyCache::pin_plan(std::span<const voxel::DenseVoxelId> voxels) {
  std::lock_guard<std::mutex> lk(mutex_);
  // The single-session bracket and multi-session pin_plan must not drive
  // one cache at the same time: the bracket owns the frame_pins_ slot and
  // assumes it is the only pinner whose unpin drains the budget overshoot.
  assert(!bracket_active_ &&
         "pin_plan while a begin_frame/end_frame bracket is active — use one "
         "pinning path per cache");
  pin_plan_locked(voxels);
}

void ResidencyCache::unpin_plan(std::span<const voxel::DenseVoxelId> voxels) {
  std::lock_guard<std::mutex> lk(mutex_);
  assert(!bracket_active_ &&
         "unpin_plan while a begin_frame/end_frame bracket is active — use "
         "one pinning path per cache");
  unpin_plan_locked(voxels);
}

void ResidencyCache::pin_plan_locked(
    std::span<const voxel::DenseVoxelId> voxels) {
  for (const voxel::DenseVoxelId v : voxels) {
    ++entries_[static_cast<std::size_t>(v)].plan_pins;
  }
}

void ResidencyCache::unpin_plan_locked(
    std::span<const voxel::DenseVoxelId> voxels) {
  for (const voxel::DenseVoxelId v : voxels) {
    Entry& e = entries_[static_cast<std::size_t>(v)];
    assert(e.plan_pins > 0);
    --e.plan_pins;
  }
  // Pins may have carried residency above budget; drain the overshoot now.
  // (Unconditional: a session that pinned nothing still gets the drain.)
  evict_over_budget_locked();
}

GroupView ResidencyCache::acquire(voxel::DenseVoxelId v) {
  return acquire_outcome(v).view;
}

AcquireOutcome ResidencyCache::acquire_outcome(voxel::DenseVoxelId v,
                                               int tier) {
  std::unique_lock<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  AcquireOutcome out;
  out.requested_tier = tier;
  for (;;) {
    if (e.loading) {
      // Another worker (or the prefetcher) is fetching this group; its
      // arrival serves this acquire without paying a fetch: a hit, as long
      // as the arriving tier satisfies the request (re-checked below).
      cv_.wait(lk, [&e] { return !e.loading; });
      continue;
    }
    if (e.resident && e.tier <= tier) {
      if (!out.missed) {
        ++stats_.hits;
        ++stats_.tier_hits[static_cast<std::size_t>(e.tier)];
      }
      break;
    }
    // Demand miss (absent) or upgrade (resident at a worse tier): this
    // render worker stalls on the fetch either way.
    ++stats_.misses;
    ++stats_.tier_misses[static_cast<std::size_t>(tier)];
    if (e.resident) {
      ++stats_.upgrades;
      out.upgraded = true;
    }
    fetch_locked(lk, v, tier, /*is_prefetch=*/false);
    out.missed = true;
    out.bytes_fetched = e.group.payload_bytes;
  }
  ++e.pins;
  touch_locked(e, v);
  // Eviction runs only now, with the new entry pinned: with every other
  // group pinned the pass could otherwise evict the group this very call
  // just fetched (fetch_locked defers eviction for exactly that reason).
  if (out.missed) evict_over_budget_locked();
  out.served_tier = e.tier;
  out.view.model_indices = e.group.model_indices;
  out.view.gaussians = e.group.gaussians.data();
  out.view.coarse_max_scale = e.group.coarse_max_scale.data();
  out.view.by_model_index = false;
  return out;
}

void ResidencyCache::release(voxel::DenseVoxelId v) {
  std::lock_guard<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  assert(e.resident && e.pins > 0);
  --e.pins;
  // An upgrade may be parked on this group waiting for views to drain.
  if (e.pins == 0 && e.loading) cv_.notify_all();
}

bool ResidencyCache::prefetch(voxel::DenseVoxelId v, int tier,
                              std::uint64_t* fetched_bytes) {
  std::unique_lock<std::mutex> lk(mutex_);
  Entry& e = entries_[static_cast<std::size_t>(v)];
  if (e.loading) return false;
  if (e.resident && e.tier <= tier) return false;
  // Upgrading a group someone is reading would block the async lane on the
  // readers; leave it to the next demand acquire instead.
  if (e.resident && e.pins > 0) return false;
  fetch_locked(lk, v, tier, /*is_prefetch=*/true);
  if (fetched_bytes != nullptr) *fetched_bytes = e.group.payload_bytes;
  evict_over_budget_locked();
  return true;
}

bool ResidencyCache::resident(voxel::DenseVoxelId v) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return entries_[static_cast<std::size_t>(v)].resident;
}

int ResidencyCache::resident_tier(voxel::DenseVoxelId v) const {
  std::lock_guard<std::mutex> lk(mutex_);
  const Entry& e = entries_[static_cast<std::size_t>(v)];
  return e.resident ? e.tier : -1;
}

std::vector<std::uint8_t> ResidencyCache::resident_snapshot() const {
  std::vector<std::uint8_t> flags(entries_.size(), 0);
  std::lock_guard<std::mutex> lk(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    flags[i] = entries_[i].resident ? 1 : 0;
  }
  return flags;
}

std::vector<std::uint8_t> ResidencyCache::tier_snapshot() const {
  std::vector<std::uint8_t> tiers(entries_.size(), kTierAbsent);
  std::lock_guard<std::mutex> lk(mutex_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].resident) {
      tiers[i] = static_cast<std::uint8_t>(entries_[i].tier);
    }
  }
  return tiers;
}

std::uint64_t ResidencyCache::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return resident_bytes_;
}

core::StreamCacheStats ResidencyCache::stats() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return stats_;
}

void ResidencyCache::fetch_locked(std::unique_lock<std::mutex>& lk,
                                  voxel::DenseVoxelId v, int tier,
                                  bool is_prefetch) {
  Entry& e = entries_[static_cast<std::size_t>(v)];
  e.loading = true;
  const bool upgrade = e.resident;
  if (upgrade) {
    // Replacing the payload invalidates its buffers; wait for outstanding
    // views to drain first. New acquires queue behind `loading`, and the
    // pipeline holds at most one group per worker while waiting on none,
    // so the drain cannot deadlock. Eviction skips loading entries.
    cv_.wait(lk, [&e] { return e.pins == 0; });
  }
  lk.unlock();
  // Disk read + decode outside the lock: other groups stay acquirable and
  // other fetches only serialize on the store's own file mutex.
  DecodedGroup fetched = store_->read_group(v, tier);
  lk.lock();
  if (upgrade) {
    resident_bytes_ -= e.group.resident_bytes();
  }
  e.group = std::move(fetched);
  e.tier = tier;
  e.loading = false;
  if (!e.resident) {
    e.resident = true;
    lru_.push_front(v);
    e.lru_it = lru_.begin();
  }
  resident_bytes_ += e.group.resident_bytes();
  stats_.bytes_fetched += e.group.payload_bytes;
  stats_.tier_bytes_fetched[static_cast<std::size_t>(tier)] +=
      e.group.payload_bytes;
  if (is_prefetch) {
    ++stats_.prefetches;
    ++stats_.tier_prefetches[static_cast<std::size_t>(tier)];
  }
  // Deliberately no eviction pass here: a demand-missing acquire must pin
  // the new entry first, or — with every other resident group pinned — the
  // pass could evict the group it just fetched out from under the caller.
  // Callers run evict_over_budget_locked() once the entry is protected.
  cv_.notify_all();
}

void ResidencyCache::touch_locked(Entry& e, voxel::DenseVoxelId v) {
  if (e.lru_it != lru_.begin()) {
    lru_.erase(e.lru_it);
    lru_.push_front(v);
    e.lru_it = lru_.begin();
  }
}

void ResidencyCache::evict_over_budget_locked() {
  auto it = lru_.end();
  while (resident_bytes_ > config_.budget_bytes && it != lru_.begin()) {
    --it;
    Entry& e = entries_[static_cast<std::size_t>(*it)];
    if (e.pins > 0 || e.plan_pins > 0 || e.loading) {
      continue;  // protected (or mid-upgrade); try next-older
    }
    resident_bytes_ -= e.group.resident_bytes();
    e.group = DecodedGroup{};  // frees the decoded buffers
    e.resident = false;
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

}  // namespace sgs::stream
