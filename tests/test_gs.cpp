// Tests for the 3DGS substrate: SH, covariance, projection (including the
// coarse-filter conservativeness property), blending, camera model.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "common/rng.hpp"
#include "gs/blending.hpp"
#include "gs/camera.hpp"
#include "gs/covariance.hpp"
#include "gs/gaussian.hpp"
#include "gs/projection.hpp"
#include "gs/sh.hpp"

namespace sgs::gs {
namespace {

Camera test_camera(int w = 640, int h = 480) {
  return Camera::look_at({0.0f, 0.0f, -5.0f}, {0.0f, 0.0f, 0.0f},
                         {0.0f, 1.0f, 0.0f}, 0.8f, w, h);
}

Gaussian random_gaussian(Rng& rng, float scale_lo = 0.005f,
                         float scale_hi = 0.3f) {
  Gaussian g;
  g.position = rng.uniform_vec3(-2.0f, 2.0f);
  g.scale = {rng.uniform(scale_lo, scale_hi), rng.uniform(scale_lo, scale_hi),
             rng.uniform(scale_lo, scale_hi)};
  g.rotation = Quatf::from_axis_angle(rng.unit_sphere(), rng.uniform(0.0f, 6.28f));
  g.opacity = rng.uniform(0.05f, 0.99f);
  g.sh[0] = color_to_dc({rng.uniform(), rng.uniform(), rng.uniform()});
  for (int k = 1; k < kShCoeffCount; ++k) g.sh[static_cast<std::size_t>(k)] = rng.normal_vec3(0.1f);
  return g;
}

// ----------------------------------------------------------------- camera --

TEST(Camera, LookAtPutsTargetOnAxis) {
  const Camera cam = test_camera();
  const Vec3f t_cam = cam.world_to_camera({0.0f, 0.0f, 0.0f});
  EXPECT_NEAR(t_cam.x, 0.0f, 1e-4f);
  EXPECT_NEAR(t_cam.y, 0.0f, 1e-4f);
  EXPECT_NEAR(t_cam.z, 5.0f, 1e-4f);
  const Vec2f px = cam.project_cam(t_cam);
  EXPECT_NEAR(px.x, cam.cx(), 1e-2f);
  EXPECT_NEAR(px.y, cam.cy(), 1e-2f);
}

TEST(Camera, WorldCameraRoundTrip) {
  const Camera cam = test_camera();
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const Vec3f p = rng.uniform_vec3(-10.0f, 10.0f);
    const Vec3f back = cam.camera_to_world(cam.world_to_camera(p));
    EXPECT_NEAR(back.x, p.x, 1e-3f);
    EXPECT_NEAR(back.y, p.y, 1e-3f);
    EXPECT_NEAR(back.z, p.z, 1e-3f);
  }
}

TEST(Camera, PixelRayHitsProjectedPoint) {
  const Camera cam = test_camera();
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    // A point in front of the camera projects to (u, v); the ray through
    // (u, v) must pass within numerical distance of the point.
    const Vec3f p_cam{rng.uniform(-1.0f, 1.0f), rng.uniform(-1.0f, 1.0f),
                      rng.uniform(2.0f, 8.0f)};
    const Vec3f p_world = cam.camera_to_world(p_cam);
    const Vec2f px = cam.project_cam(p_cam);
    const Ray ray = cam.pixel_ray(px.x, px.y);
    const Vec3f to_p = p_world - ray.origin;
    const float t = to_p.dot(ray.direction);
    const float dist = (to_p - ray.direction * t).norm();
    EXPECT_LT(dist, 1e-3f * t);
  }
}

TEST(Camera, DegenerateUpHintRecovers) {
  // up parallel to the view direction must not produce NaNs.
  const Camera cam = Camera::look_at({0, 5, 0}, {0, 0, 0}, {0, 1, 0}, 0.8f, 64, 64);
  const Vec3f v = cam.world_to_camera({1.0f, 0.0f, 0.0f});
  EXPECT_FALSE(std::isnan(v.x) || std::isnan(v.y) || std::isnan(v.z));
}

// --------------------------------------------------------------------- SH --

TEST(Sh, Degree0IsConstant) {
  std::array<Vec3f, 16> coeffs{};
  coeffs[0] = color_to_dc({0.3f, 0.6f, 0.9f});
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const Vec3f c = eval_sh(coeffs, rng.unit_sphere(), 0);
    EXPECT_NEAR(c.x, 0.3f, 1e-4f);
    EXPECT_NEAR(c.y, 0.6f, 1e-4f);
    EXPECT_NEAR(c.z, 0.9f, 1e-4f);
  }
}

TEST(Sh, DcRoundTrip) {
  const Vec3f rgb{0.21f, 0.55f, 0.87f};
  EXPECT_NEAR(dc_to_color(color_to_dc(rgb)).x, rgb.x, 1e-5f);
  EXPECT_NEAR(dc_to_color(color_to_dc(rgb)).y, rgb.y, 1e-5f);
  EXPECT_NEAR(dc_to_color(color_to_dc(rgb)).z, rgb.z, 1e-5f);
}

TEST(Sh, BasisOrthogonalityOnSphere) {
  // Monte-Carlo check that distinct basis functions integrate to ~0 and
  // B_i^2 integrates to 1/(4pi) normalization-consistently.
  Rng rng(33);
  constexpr int n = 50000;
  double dot01 = 0.0, dot47 = 0.0, norm2_2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto b = sh_basis(rng.unit_sphere());
    dot01 += b[0] * b[1];
    dot47 += b[4] * b[7];
    norm2_2 += b[2] * b[2];
  }
  EXPECT_NEAR(dot01 / n, 0.0, 5e-3);
  EXPECT_NEAR(dot47 / n, 0.0, 5e-3);
  // E[B_2^2] over the sphere = 1/(4pi).
  EXPECT_NEAR(norm2_2 / n, 1.0 / (4.0 * 3.14159265), 5e-3);
}

TEST(Sh, ClampsNegativeToZero) {
  std::array<Vec3f, 16> coeffs{};
  coeffs[0] = color_to_dc({0.0f, 0.0f, 0.0f}) * 4.0f;  // strongly negative
  const Vec3f c = eval_sh(coeffs, {0, 0, 1});
  EXPECT_GE(c.x, 0.0f);
  EXPECT_GE(c.y, 0.0f);
  EXPECT_GE(c.z, 0.0f);
}

TEST(Sh, DegreeTruncationDropsViewDependence) {
  Rng rng(5);
  std::array<Vec3f, 16> coeffs{};
  coeffs[0] = color_to_dc({0.5f, 0.5f, 0.5f});
  for (int k = 1; k < 16; ++k) coeffs[static_cast<std::size_t>(k)] = rng.normal_vec3(0.3f);
  const Vec3f d1 = rng.unit_sphere();
  const Vec3f d2 = rng.unit_sphere();
  const Vec3f c1 = eval_sh(coeffs, d1, 0);
  const Vec3f c2 = eval_sh(coeffs, d2, 0);
  EXPECT_NEAR(c1.x, c2.x, 1e-5f);  // degree 0: no view dependence
  EXPECT_NE(eval_sh(coeffs, d1, 3).x, eval_sh(coeffs, d2, 3).x);
}

// ------------------------------------------------------------- covariance --

TEST(Covariance, DiagonalForAxisAlignedGaussian) {
  const Mat3f cov = build_covariance_3d({0.1f, 0.2f, 0.3f}, Quatf{});
  EXPECT_NEAR(cov(0, 0), 0.01f, 1e-6f);
  EXPECT_NEAR(cov(1, 1), 0.04f, 1e-6f);
  EXPECT_NEAR(cov(2, 2), 0.09f, 1e-6f);
  EXPECT_NEAR(cov(0, 1), 0.0f, 1e-6f);
}

TEST(Covariance, AlwaysSymmetricPsd) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const Vec3f s{rng.uniform(0.01f, 1.0f), rng.uniform(0.01f, 1.0f),
                  rng.uniform(0.01f, 1.0f)};
    const Quatf q = Quatf::from_axis_angle(rng.unit_sphere(), rng.uniform(0.0f, 6.28f));
    const Mat3f cov = build_covariance_3d(s, q);
    for (int a = 0; a < 3; ++a)
      for (int b = 0; b < 3; ++b) EXPECT_NEAR(cov(a, b), cov(b, a), 1e-5f);
    // PSD: random quadratic forms are non-negative.
    for (int k = 0; k < 10; ++k) {
      const Vec3f v = rng.uniform_vec3(-1.0f, 1.0f);
      EXPECT_GE(v.dot(cov * v), -1e-5f);
    }
    // Rotation preserves eigenvalues => trace equals sum of squared scales.
    EXPECT_NEAR(cov(0, 0) + cov(1, 1) + cov(2, 2),
                s.x * s.x + s.y * s.y + s.z * s.z, 1e-4f);
  }
}

TEST(Covariance, ProjectionShrinksWithDepth) {
  const Mat3f cov = build_covariance_3d({0.1f, 0.1f, 0.1f}, Quatf{});
  const Mat3f w = Mat3f::identity();
  const Sym2f near_cov = project_covariance(cov, w, {0, 0, 2.0f}, 500, 500);
  const Sym2f far_cov = project_covariance(cov, w, {0, 0, 8.0f}, 500, 500);
  EXPECT_GT(splat_radius(near_cov), splat_radius(far_cov));
}

TEST(Covariance, IsotropicGaussianProjectsToCircle) {
  const Mat3f cov = build_covariance_3d({0.2f, 0.2f, 0.2f}, Quatf{});
  const Sym2f s = project_covariance(cov, Mat3f::identity(), {0, 0, 4.0f}, 400, 400);
  EXPECT_NEAR(s.a, s.c, 1e-3f);
  EXPECT_NEAR(s.b, 0.0f, 1e-3f);
  // Expected radius: 3 * s * f / z (+dilation).
  const float expect = 3.0f * std::sqrt(0.2f * 0.2f * 400.0f * 400.0f / 16.0f + 0.3f);
  EXPECT_NEAR(splat_radius(s), expect, 0.1f);
}

// ------------------------------------------------------------- projection --

TEST(Projection, BehindCameraCulled) {
  const Camera cam = test_camera();
  Gaussian g;
  g.position = {0.0f, 0.0f, -10.0f};  // behind the eye at z=-5 looking at origin
  EXPECT_FALSE(project_gaussian(g, cam).has_value());
}

TEST(Projection, TransparentCulled) {
  const Camera cam = test_camera();
  Gaussian g;
  g.position = {0.0f, 0.0f, 0.0f};
  g.opacity = 0.5f / 255.0f;
  EXPECT_FALSE(project_gaussian(g, cam).has_value());
}

TEST(Projection, CenterGaussianProjectsToCenter) {
  const Camera cam = test_camera();
  Gaussian g;
  g.position = {0.0f, 0.0f, 0.0f};
  g.scale = {0.05f, 0.05f, 0.05f};
  const auto p = project_gaussian(g, cam);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->mean.x, cam.cx(), 0.5f);
  EXPECT_NEAR(p->mean.y, cam.cy(), 0.5f);
  EXPECT_NEAR(p->depth, 5.0f, 1e-3f);
  EXPECT_GT(p->radius, 0.0f);
}

TEST(Projection, DepthOrderingMatchesGeometry) {
  const Camera cam = test_camera();
  Gaussian near_g, far_g;
  near_g.position = {0.1f, 0.0f, -1.0f};
  far_g.position = {0.1f, 0.0f, 2.0f};
  const auto pn = project_gaussian(near_g, cam);
  const auto pf = project_gaussian(far_g, cam);
  ASSERT_TRUE(pn && pf);
  EXPECT_LT(pn->depth, pf->depth);
}

// The central invariant of hierarchical filtering: the 4-parameter coarse
// radius upper-bounds the exact projected radius for any shape/orientation.
class CoarseConservativeness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoarseConservativeness, CoarseRadiusDominates) {
  Rng rng(GetParam());
  const Camera cam = test_camera();
  int tested = 0;
  for (int i = 0; i < 400; ++i) {
    const Gaussian g = random_gaussian(rng);
    const auto fine = project_gaussian(g, cam);
    const auto coarse = project_coarse(g.position, g.max_scale(), cam);
    if (!fine) continue;
    ASSERT_TRUE(coarse.has_value());  // coarse may only cull near-plane
    ++tested;
    EXPECT_GE(coarse->radius, fine->radius - 1e-3f)
        << "scale=" << g.scale << " pos=" << g.position;
    EXPECT_NEAR(coarse->mean.x, fine->mean.x, 1e-3f);
    EXPECT_NEAR(coarse->mean.y, fine->mean.y, 1e-3f);
    EXPECT_NEAR(coarse->depth, fine->depth, 1e-4f);
  }
  EXPECT_GT(tested, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoarseConservativeness,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Projection, DiscRectIntersection) {
  EXPECT_TRUE(disc_intersects_rect({5, 5}, 1.0f, 0, 0, 10, 10));   // inside
  EXPECT_TRUE(disc_intersects_rect({-1, 5}, 1.5f, 0, 0, 10, 10));  // overlaps edge
  EXPECT_FALSE(disc_intersects_rect({-5, 5}, 1.0f, 0, 0, 10, 10)); // outside
  // Corner distance: disc at (-1,-1) radius sqrt(2)+eps touches (0,0).
  EXPECT_TRUE(disc_intersects_rect({-1, -1}, 1.5f, 0, 0, 10, 10));
  EXPECT_FALSE(disc_intersects_rect({-1, -1}, 1.2f, 0, 0, 10, 10));
}

// --------------------------------------------------------------- blending --

TEST(Blending, TransmittanceMonotoneDecreasing) {
  PixelAccumulator acc;
  float prev = acc.transmittance;
  Rng rng(12);
  for (int i = 0; i < 50; ++i) {
    blend(acc, {rng.uniform(), rng.uniform(), rng.uniform()},
          rng.uniform(0.01f, 0.9f));
    EXPECT_LE(acc.transmittance, prev);
    prev = acc.transmittance;
  }
}

TEST(Blending, OpaqueFrontHidesBack) {
  PixelAccumulator acc;
  blend(acc, {1, 0, 0}, 0.99f);
  blend(acc, {0, 1, 0}, 0.99f);
  const Vec3f c = resolve(acc, {0, 0, 0});
  EXPECT_GT(c.x, 0.95f);
  EXPECT_LT(c.y, 0.05f);
}

TEST(Blending, OrderMatters) {
  PixelAccumulator ab, ba;
  blend(ab, {1, 0, 0}, 0.6f);
  blend(ab, {0, 0, 1}, 0.6f);
  blend(ba, {0, 0, 1}, 0.6f);
  blend(ba, {1, 0, 0}, 0.6f);
  EXPECT_GT(resolve(ab, {0, 0, 0}).x, resolve(ba, {0, 0, 0}).x);
}

TEST(Blending, ResolveAddsBackgroundByTransmittance) {
  PixelAccumulator acc;
  blend(acc, {0, 0, 0}, 0.25f);
  const Vec3f c = resolve(acc, {1, 1, 1});
  EXPECT_NEAR(c.x, 0.75f, 1e-5f);
}

TEST(Blending, AlphaEvaluation) {
  ProjectedGaussian g;
  g.mean = {10.0f, 10.0f};
  g.conic = Sym2f{0.5f, 0.0f, 0.5f};
  g.opacity = 0.8f;
  // At the center the exponent is 0 => alpha == opacity.
  EXPECT_NEAR(gaussian_alpha(g, {10.0f, 10.0f}), 0.8f, 1e-5f);
  // Alpha decays with distance.
  const float a1 = gaussian_alpha(g, {11.0f, 10.0f});
  const float a2 = gaussian_alpha(g, {12.0f, 10.0f});
  EXPECT_GT(a1, a2);
  // Far away: below threshold => exactly zero.
  EXPECT_EQ(gaussian_alpha(g, {100.0f, 100.0f}), 0.0f);
}

TEST(Blending, AlphaClamped) {
  ProjectedGaussian g;
  g.mean = {0, 0};
  g.conic = Sym2f{0.5f, 0.0f, 0.5f};
  g.opacity = 5.0f;  // out-of-range opacity must clamp, not explode
  EXPECT_LE(gaussian_alpha(g, {0, 0}), kAlphaClamp + 1e-6f);
}

TEST(Blending, PixelSpanClipsToRegion) {
  const PixelSpan s = splat_pixel_span({5.0f, 5.0f}, 2.0f, 0, 0, 16, 16);
  EXPECT_LE(s.x0, 3);
  EXPECT_GE(s.x1, 8);
  const PixelSpan out = splat_pixel_span({100.0f, 100.0f}, 2.0f, 0, 0, 16, 16);
  EXPECT_TRUE(out.empty());
  const PixelSpan all = splat_pixel_span({8.0f, 8.0f}, 100.0f, 0, 0, 16, 16);
  EXPECT_EQ(all.x0, 0);
  EXPECT_EQ(all.x1, 16);
}

TEST(Gaussian, ModelBounds) {
  GaussianModel m;
  Gaussian a, b;
  a.position = {-1, 0, 2};
  a.scale = {0.1f, 0.1f, 0.1f};
  b.position = {3, -2, 5};
  b.scale = {0.2f, 0.2f, 0.2f};
  m.gaussians = {a, b};
  const auto cb = m.center_bounds();
  EXPECT_EQ(cb.min, (Vec3f{-1, -2, 2}));
  EXPECT_EQ(cb.max, (Vec3f{3, 0, 5}));
  const auto eb = m.extent_bounds();
  EXPECT_NEAR(eb.min.x, -1.3f, 1e-5f);
  EXPECT_NEAR(eb.max.x, 3.6f, 1e-5f);
}

TEST(Gaussian, ParameterCountMatchesPaper) {
  // 3 pos + 3 scale + 4 rot + 1 opacity + 48 SH = 59 (paper Sec. II-B).
  EXPECT_EQ(kParamsPerGaussian, 59);
  EXPECT_EQ(kCoarseParams + kFineParams, kParamsPerGaussian);
  EXPECT_EQ(3 + 3 + 4 + 1 + 3 * kShCoeffCount, kParamsPerGaussian);
}

}  // namespace
}  // namespace sgs::gs
