#include "render/traffic.hpp"

namespace sgs::render {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kProjectionRead: return "projection-read";
    case Stage::kProjectionWrite: return "projection-write";
    case Stage::kSortingRead: return "sorting-read";
    case Stage::kSortingWrite: return "sorting-write";
    case Stage::kRenderingRead: return "rendering-read";
    case Stage::kRenderingWrite: return "rendering-write";
    case Stage::kCount: break;
  }
  return "?";
}

}  // namespace sgs::render
