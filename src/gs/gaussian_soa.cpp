#include "gs/gaussian_soa.hpp"

namespace sgs::gs {

void GaussianColumns::resize(std::size_t n) {
  px.resize(n);
  py.resize(n);
  pz.resize(n);
  sx.resize(n);
  sy.resize(n);
  sz.resize(n);
  rw.resize(n);
  rx.resize(n);
  ry.resize(n);
  rz.resize(n);
  opacity.resize(n);
  max_scale.resize(n);
  const std::size_t sh_n = n * static_cast<std::size_t>(kShCoeffCount);
  sh_r.resize(sh_n);
  sh_g.resize(sh_n);
  sh_b.resize(sh_n);
}

void GaussianColumns::clear() { resize(0); }

void GaussianColumns::set(std::size_t k, const Gaussian& g, float coarse) {
  px[k] = g.position.x;
  py[k] = g.position.y;
  pz[k] = g.position.z;
  sx[k] = g.scale.x;
  sy[k] = g.scale.y;
  sz[k] = g.scale.z;
  rw[k] = g.rotation.w;
  rx[k] = g.rotation.x;
  ry[k] = g.rotation.y;
  rz[k] = g.rotation.z;
  opacity[k] = g.opacity;
  max_scale[k] = coarse;
  const std::size_t base = k * static_cast<std::size_t>(kShCoeffCount);
  for (std::size_t c = 0; c < static_cast<std::size_t>(kShCoeffCount); ++c) {
    sh_r[base + c] = g.sh[c].x;
    sh_g[base + c] = g.sh[c].y;
    sh_b[base + c] = g.sh[c].z;
  }
}

Gaussian GaussianColumns::gaussian(std::size_t k) const {
  Gaussian g;
  g.position = {px[k], py[k], pz[k]};
  g.scale = {sx[k], sy[k], sz[k]};
  g.rotation = Quatf{rw[k], rx[k], ry[k], rz[k]};
  g.opacity = opacity[k];
  const std::size_t base = k * static_cast<std::size_t>(kShCoeffCount);
  for (std::size_t c = 0; c < static_cast<std::size_t>(kShCoeffCount); ++c) {
    g.sh[c] = {sh_r[base + c], sh_g[base + c], sh_b[base + c]};
  }
  return g;
}

}  // namespace sgs::gs
