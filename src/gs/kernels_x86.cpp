// SSE2 / AVX2 kernel implementations. Compiled into every x86 build (unless
// -DSGS_SIMD=OFF) without per-file -mavx2 flags: each AVX2 function carries
// a target("avx2,fma") attribute, so the TU stays runnable on baseline
// hosts and the dispatcher (kernels.cpp) alone decides what executes.
//
// Determinism rules every kernel here follows:
//   - lane blocking counts from the logical start of the slice (i = 0, 8,
//     16, ...), never from pointer alignment, so a cache entry (first == 0)
//     and a resident slice (first == arbitrary) with equal bytes produce
//     equal results;
//   - loads are unaligned; tails use maskload/maskstore (AVX2) or drop to
//     per-lane code at a position fixed by the count (SSE2) — no reads past
//     the column vectors (the libstdc++ ASan container annotations would
//     flag them).
// Numeric deltas vs the scalar reference come only from FMA contraction,
// reassociation of small dot products, and the polynomial exp() in the
// blender — the tolerance contract tests/test_kernels.cpp enforces.
#include "gs/kernels.hpp"

#ifdef SGS_KERNELS_X86

#include <immintrin.h>

#include <cmath>

#include "gs/sh.hpp"

#define SGS_AVX2 __attribute__((target("avx2,fma")))
#define SGS_SSE2 __attribute__((target("sse2")))

namespace sgs::gs::detail {

namespace {

// SH basis constants (same literals as sh.cpp / the reference rasterizer).
constexpr float kC0 = 0.28209479177387814f;
constexpr float kC1 = 0.4886025119029199f;
constexpr float kC2[5] = {1.0925484305920792f, -1.0925484305920792f,
                          0.31539156525252005f, -1.0925484305920792f,
                          0.5462742152960396f};
constexpr float kC3[7] = {-0.5900435899266435f, 2.890611442640554f,
                          -0.4570457994644658f, 0.3731763325901154f,
                          -0.4570457994644658f, 1.445305721320277f,
                          -0.5900435899266435f};

// Degree-3 basis for a (not necessarily unit) view direction, matching
// sh_basis() including its normalize-or-zero behavior.
inline void sh_basis16(Vec3f dir, float* b) {
  const Vec3f d = dir.normalized();
  const float x = d.x, y = d.y, z = d.z;
  const float xx = x * x, yy = y * y, zz = z * z;
  b[0] = kC0;
  b[1] = -kC1 * y;
  b[2] = kC1 * z;
  b[3] = -kC1 * x;
  b[4] = kC2[0] * (x * y);
  b[5] = kC2[1] * (y * z);
  b[6] = kC2[2] * (2.0f * zz - xx - yy);
  b[7] = kC2[3] * (x * z);
  b[8] = kC2[4] * (xx - yy);
  b[9] = kC3[0] * y * (3.0f * xx - yy);
  b[10] = kC3[1] * (x * y) * z;
  b[11] = kC3[2] * y * (4.0f * zz - xx - yy);
  b[12] = kC3[3] * z * (2.0f * zz - 3.0f * xx - 3.0f * yy);
  b[13] = kC3[4] * x * (4.0f * zz - xx - yy);
  b[14] = kC3[5] * z * (xx - yy);
  b[15] = kC3[6] * x * (xx - 3.0f * yy);
}

alignas(32) constexpr std::int32_t kTailMaskTable[16] = {
    -1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0};

SGS_AVX2 inline __m256i tail_mask8(int lanes) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kTailMaskTable + (8 - lanes)));
}

SGS_AVX2 inline float hsum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_add_ps(lo, _mm_movehl_ps(lo, lo));
  lo = _mm_add_ss(lo, _mm_shuffle_ps(lo, lo, 1));
  return _mm_cvtss_f32(lo);
}

// Cephes-style exp, |rel err| < 2^-22 over the blender's range (x <= 0).
SGS_AVX2 inline __m256 exp256_ps(__m256 x) {
  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 kLn2Hi = _mm256_set1_ps(0.693359375f);
  const __m256 kLn2Lo = _mm256_set1_ps(-2.12194440e-4f);
  x = _mm256_max_ps(x, _mm256_set1_ps(-87.336544f));
  x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647949f));
  const __m256 fx = _mm256_round_ps(
      _mm256_mul_ps(x, kLog2e), _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  x = _mm256_fnmadd_ps(fx, kLn2Hi, x);
  x = _mm256_fnmadd_ps(fx, kLn2Lo, x);
  const __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, _mm256_set1_ps(1.0f));
  __m256i n = _mm256_cvtps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

// 4-wide variant of the same polynomial for the SSE2 blender.
SGS_SSE2 inline __m128 exp128_ps(__m128 x) {
  const __m128 kLog2e = _mm_set1_ps(1.44269504088896341f);
  const __m128 kLn2Hi = _mm_set1_ps(0.693359375f);
  const __m128 kLn2Lo = _mm_set1_ps(-2.12194440e-4f);
  x = _mm_max_ps(x, _mm_set1_ps(-87.336544f));
  x = _mm_min_ps(x, _mm_set1_ps(88.3762626647949f));
  // cvtps_epi32 rounds to nearest (MXCSR default), giving round(x * log2e).
  const __m128i n = _mm_cvtps_epi32(_mm_mul_ps(x, kLog2e));
  const __m128 fx = _mm_cvtepi32_ps(n);
  x = _mm_sub_ps(x, _mm_mul_ps(fx, kLn2Hi));
  x = _mm_sub_ps(x, _mm_mul_ps(fx, kLn2Lo));
  const __m128 z = _mm_mul_ps(x, x);
  __m128 y = _mm_set1_ps(1.9875691500e-4f);
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(1.3981999507e-3f));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(8.3334519073e-3f));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(4.1665795894e-2f));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(1.6666665459e-1f));
  y = _mm_add_ps(_mm_mul_ps(y, x), _mm_set1_ps(5.0000001201e-1f));
  y = _mm_add_ps(_mm_mul_ps(y, z), x);
  y = _mm_add_ps(y, _mm_set1_ps(1.0f));
  __m128i e = _mm_add_epi32(n, _mm_set1_epi32(0x7f));
  e = _mm_slli_epi32(e, 23);
  return _mm_mul_ps(y, _mm_castsi128_ps(e));
}

SGS_SSE2 inline __m128 select128(__m128 mask, __m128 a, __m128 b) {
  return _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b));
}

// View-dependent color of one record: scalar basis, vector coefficient
// dots over the channel-contiguous SH columns (two FMAs per channel).
SGS_AVX2 inline Vec3f eval_sh_record_avx2(const GaussianColumns& cols,
                                          std::size_t rec, Vec3f dir) {
  alignas(32) float basis[16];
  sh_basis16(dir, basis);
  const __m256 b0 = _mm256_load_ps(basis);
  const __m256 b1 = _mm256_load_ps(basis + 8);
  const std::size_t base = rec * static_cast<std::size_t>(kShCoeffCount);
  const float* cr = cols.sh_r.data() + base;
  const float* cg = cols.sh_g.data() + base;
  const float* cb = cols.sh_b.data() + base;
  const float r = hsum8(_mm256_fmadd_ps(_mm256_loadu_ps(cr + 8), b1,
                                        _mm256_mul_ps(_mm256_loadu_ps(cr), b0)));
  const float g = hsum8(_mm256_fmadd_ps(_mm256_loadu_ps(cg + 8), b1,
                                        _mm256_mul_ps(_mm256_loadu_ps(cg), b0)));
  const float b = hsum8(_mm256_fmadd_ps(_mm256_loadu_ps(cb + 8), b1,
                                        _mm256_mul_ps(_mm256_loadu_ps(cb), b0)));
  return {std::max(0.0f, r + 0.5f), std::max(0.0f, g + 0.5f),
          std::max(0.0f, b + 0.5f)};
}

}  // namespace

// ------------------------------------------------------------ coarse filter

SGS_AVX2 void coarse_filter_avx2_impl(const GaussianColumns& cols,
                                      std::size_t first, std::size_t count,
                                      const Camera& cam,
                                      const FilterRect& rect,
                                      std::vector<std::uint32_t>& out_idx) {
  const float* px = cols.px.data() + first;
  const float* py = cols.py.data() + first;
  const float* pz = cols.pz.data() + first;
  const float* ms = cols.max_scale.data() + first;
  const Mat3f& rot = cam.rotation();
  const Vec3f cp = cam.position();
  const __m256 w00 = _mm256_set1_ps(rot(0, 0)), w01 = _mm256_set1_ps(rot(0, 1)),
               w02 = _mm256_set1_ps(rot(0, 2));
  const __m256 w10 = _mm256_set1_ps(rot(1, 0)), w11 = _mm256_set1_ps(rot(1, 1)),
               w12 = _mm256_set1_ps(rot(1, 2));
  const __m256 w20 = _mm256_set1_ps(rot(2, 0)), w21 = _mm256_set1_ps(rot(2, 1)),
               w22 = _mm256_set1_ps(rot(2, 2));
  const __m256 cpx = _mm256_set1_ps(cp.x), cpy = _mm256_set1_ps(cp.y),
               cpz = _mm256_set1_ps(cp.z);
  const __m256 vfx = _mm256_set1_ps(cam.fx()), vfy = _mm256_set1_ps(cam.fy());
  const __m256 vcx = _mm256_set1_ps(cam.cx()), vcy = _mm256_set1_ps(cam.cy());
  const __m256 near_clip = _mm256_set1_ps(kNearClip);
  const __m256 dilation = _mm256_set1_ps(kScreenSpaceDilation);
  const __m256 one = _mm256_set1_ps(1.0f), half = _mm256_set1_ps(0.5f);
  const __m256 three = _mm256_set1_ps(3.0f), zero = _mm256_setzero_ps();
  const __m256 rx0 = _mm256_set1_ps(rect.x0), ry0 = _mm256_set1_ps(rect.y0);
  const __m256 rx1 = _mm256_set1_ps(rect.x1), ry1 = _mm256_set1_ps(rect.y1);

  for (std::size_t i = 0; i < count; i += 8) {
    const int lanes = count - i >= 8 ? 8 : static_cast<int>(count - i);
    const __m256i imask = tail_mask8(lanes);
    const __m256 vmask = _mm256_castsi256_ps(imask);
    const __m256 x = _mm256_maskload_ps(px + i, imask);
    const __m256 y = _mm256_maskload_ps(py + i, imask);
    const __m256 z = _mm256_maskload_ps(pz + i, imask);
    // p_cam = W * (p - cam_pos)
    const __m256 dx = _mm256_sub_ps(x, cpx);
    const __m256 dy = _mm256_sub_ps(y, cpy);
    const __m256 dz = _mm256_sub_ps(z, cpz);
    const __m256 xc = _mm256_fmadd_ps(w02, dz,
                                      _mm256_fmadd_ps(w01, dy,
                                                      _mm256_mul_ps(w00, dx)));
    const __m256 yc = _mm256_fmadd_ps(w12, dz,
                                      _mm256_fmadd_ps(w11, dy,
                                                      _mm256_mul_ps(w10, dx)));
    const __m256 zc = _mm256_fmadd_ps(w22, dz,
                                      _mm256_fmadd_ps(w21, dy,
                                                      _mm256_mul_ps(w20, dx)));
    __m256 keep =
        _mm256_and_ps(vmask, _mm256_cmp_ps(zc, near_clip, _CMP_GT_OQ));
    // sigma_max(J)^2 bound (project_coarse).
    const __m256 inv_z = _mm256_div_ps(one, zc);
    const __m256 xz = _mm256_mul_ps(xc, inv_z);
    const __m256 yz = _mm256_mul_ps(yc, inv_z);
    const __m256 fxz = _mm256_mul_ps(vfx, inv_z);
    const __m256 fyz = _mm256_mul_ps(vfy, inv_z);
    const __m256 a = _mm256_mul_ps(_mm256_mul_ps(fxz, fxz),
                                   _mm256_fmadd_ps(xz, xz, one));
    const __m256 c = _mm256_mul_ps(_mm256_mul_ps(fyz, fyz),
                                   _mm256_fmadd_ps(yz, yz, one));
    const __m256 b = _mm256_mul_ps(_mm256_mul_ps(fxz, fyz),
                                   _mm256_mul_ps(xz, yz));
    const __m256 mid = _mm256_mul_ps(half, _mm256_add_ps(a, c));
    const __m256 disc = _mm256_mul_ps(half, _mm256_sub_ps(a, c));
    const __m256 jj = _mm256_add_ps(
        mid, _mm256_sqrt_ps(_mm256_fmadd_ps(disc, disc, _mm256_mul_ps(b, b))));
    const __m256 s = _mm256_maskload_ps(ms + i, imask);
    const __m256 bound = _mm256_fmadd_ps(_mm256_mul_ps(s, s), jj, dilation);
    const __m256 radius = _mm256_mul_ps(three, _mm256_sqrt_ps(bound));
    // Projected mean + disc-vs-rect.
    const __m256 mx = _mm256_fmadd_ps(vfx, xz, vcx);
    const __m256 my = _mm256_fmadd_ps(vfy, yz, vcy);
    const __m256 ddx = _mm256_max_ps(
        zero, _mm256_max_ps(_mm256_sub_ps(rx0, mx), _mm256_sub_ps(mx, rx1)));
    const __m256 ddy = _mm256_max_ps(
        zero, _mm256_max_ps(_mm256_sub_ps(ry0, my), _mm256_sub_ps(my, ry1)));
    const __m256 d2 = _mm256_fmadd_ps(ddx, ddx, _mm256_mul_ps(ddy, ddy));
    keep = _mm256_and_ps(
        keep, _mm256_cmp_ps(d2, _mm256_mul_ps(radius, radius), _CMP_LE_OQ));
    unsigned m = static_cast<unsigned>(_mm256_movemask_ps(keep));
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(m));
      out_idx.push_back(static_cast<std::uint32_t>(i + j));
      m &= m - 1;
    }
  }
}

void coarse_filter_batch_avx2(const GaussianColumns& cols, std::size_t first,
                              std::size_t count, const Camera& cam,
                              const FilterRect& rect,
                              std::vector<std::uint32_t>& out_idx) {
  coarse_filter_avx2_impl(cols, first, count, cam, rect, out_idx);
}

SGS_SSE2 void coarse_filter_sse2_impl(const GaussianColumns& cols,
                                      std::size_t first, std::size_t count,
                                      const Camera& cam,
                                      const FilterRect& rect,
                                      std::vector<std::uint32_t>& out_idx) {
  const float* px = cols.px.data() + first;
  const float* py = cols.py.data() + first;
  const float* pz = cols.pz.data() + first;
  const float* ms = cols.max_scale.data() + first;
  const Mat3f& rot = cam.rotation();
  const Vec3f cp = cam.position();
  const __m128 w00 = _mm_set1_ps(rot(0, 0)), w01 = _mm_set1_ps(rot(0, 1)),
               w02 = _mm_set1_ps(rot(0, 2));
  const __m128 w10 = _mm_set1_ps(rot(1, 0)), w11 = _mm_set1_ps(rot(1, 1)),
               w12 = _mm_set1_ps(rot(1, 2));
  const __m128 w20 = _mm_set1_ps(rot(2, 0)), w21 = _mm_set1_ps(rot(2, 1)),
               w22 = _mm_set1_ps(rot(2, 2));
  const __m128 cpx = _mm_set1_ps(cp.x), cpy = _mm_set1_ps(cp.y),
               cpz = _mm_set1_ps(cp.z);
  const __m128 vfx = _mm_set1_ps(cam.fx()), vfy = _mm_set1_ps(cam.fy());
  const __m128 vcx = _mm_set1_ps(cam.cx()), vcy = _mm_set1_ps(cam.cy());
  const __m128 near_clip = _mm_set1_ps(kNearClip);
  const __m128 dilation = _mm_set1_ps(kScreenSpaceDilation);
  const __m128 one = _mm_set1_ps(1.0f), half = _mm_set1_ps(0.5f);
  const __m128 three = _mm_set1_ps(3.0f), zero = _mm_setzero_ps();
  const __m128 rx0 = _mm_set1_ps(rect.x0), ry0 = _mm_set1_ps(rect.y0);
  const __m128 rx1 = _mm_set1_ps(rect.x1), ry1 = _mm_set1_ps(rect.y1);

  const std::size_t vec_count = count & ~static_cast<std::size_t>(3);
  for (std::size_t i = 0; i < vec_count; i += 4) {
    const __m128 x = _mm_loadu_ps(px + i);
    const __m128 y = _mm_loadu_ps(py + i);
    const __m128 z = _mm_loadu_ps(pz + i);
    const __m128 dx = _mm_sub_ps(x, cpx);
    const __m128 dy = _mm_sub_ps(y, cpy);
    const __m128 dz = _mm_sub_ps(z, cpz);
    const __m128 xc = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w00, dx), _mm_mul_ps(w01, dy)),
        _mm_mul_ps(w02, dz));
    const __m128 yc = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w10, dx), _mm_mul_ps(w11, dy)),
        _mm_mul_ps(w12, dz));
    const __m128 zc = _mm_add_ps(
        _mm_add_ps(_mm_mul_ps(w20, dx), _mm_mul_ps(w21, dy)),
        _mm_mul_ps(w22, dz));
    __m128 keep = _mm_cmpgt_ps(zc, near_clip);
    const __m128 inv_z = _mm_div_ps(one, zc);
    const __m128 xz = _mm_mul_ps(xc, inv_z);
    const __m128 yz = _mm_mul_ps(yc, inv_z);
    const __m128 fxz = _mm_mul_ps(vfx, inv_z);
    const __m128 fyz = _mm_mul_ps(vfy, inv_z);
    const __m128 a = _mm_mul_ps(_mm_mul_ps(fxz, fxz),
                                _mm_add_ps(one, _mm_mul_ps(xz, xz)));
    const __m128 c = _mm_mul_ps(_mm_mul_ps(fyz, fyz),
                                _mm_add_ps(one, _mm_mul_ps(yz, yz)));
    const __m128 b = _mm_mul_ps(_mm_mul_ps(fxz, fyz), _mm_mul_ps(xz, yz));
    const __m128 mid = _mm_mul_ps(half, _mm_add_ps(a, c));
    const __m128 disc = _mm_mul_ps(half, _mm_sub_ps(a, c));
    const __m128 jj = _mm_add_ps(
        mid,
        _mm_sqrt_ps(_mm_add_ps(_mm_mul_ps(disc, disc), _mm_mul_ps(b, b))));
    const __m128 s = _mm_loadu_ps(ms + i);
    const __m128 bound =
        _mm_add_ps(_mm_mul_ps(_mm_mul_ps(s, s), jj), dilation);
    const __m128 radius = _mm_mul_ps(three, _mm_sqrt_ps(bound));
    const __m128 mx = _mm_add_ps(_mm_mul_ps(vfx, xz), vcx);
    const __m128 my = _mm_add_ps(_mm_mul_ps(vfy, yz), vcy);
    const __m128 ddx = _mm_max_ps(
        zero, _mm_max_ps(_mm_sub_ps(rx0, mx), _mm_sub_ps(mx, rx1)));
    const __m128 ddy = _mm_max_ps(
        zero, _mm_max_ps(_mm_sub_ps(ry0, my), _mm_sub_ps(my, ry1)));
    const __m128 d2 =
        _mm_add_ps(_mm_mul_ps(ddx, ddx), _mm_mul_ps(ddy, ddy));
    keep = _mm_and_ps(keep,
                      _mm_cmple_ps(d2, _mm_mul_ps(radius, radius)));
    unsigned m = static_cast<unsigned>(_mm_movemask_ps(keep));
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(m));
      out_idx.push_back(static_cast<std::uint32_t>(i + j));
      m &= m - 1;
    }
  }
  // Tail at a position fixed by `count` (never by alignment): scalar math.
  for (std::size_t i = vec_count; i < count; ++i) {
    const std::size_t k = first + i;
    const auto proj = project_coarse({cols.px[k], cols.py[k], cols.pz[k]},
                                     cols.max_scale[k], cam);
    if (!proj) continue;
    if (!disc_intersects_rect(proj->mean, proj->radius, rect.x0, rect.y0,
                              rect.x1, rect.y1)) {
      continue;
    }
    out_idx.push_back(static_cast<std::uint32_t>(i));
  }
}

void coarse_filter_batch_sse2(const GaussianColumns& cols, std::size_t first,
                              std::size_t count, const Camera& cam,
                              const FilterRect& rect,
                              std::vector<std::uint32_t>& out_idx) {
  coarse_filter_sse2_impl(cols, first, count, cam, rect, out_idx);
}

// ---------------------------------------------------------- fine projection

SGS_AVX2 void fine_project_avx2_impl(const GaussianColumns& cols,
                                     std::size_t first,
                                     std::span<const std::uint32_t> candidates,
                                     const Camera& cam, const FilterRect& rect,
                                     std::vector<FineSurvivor>& out) {
  const Mat3f& rot = cam.rotation();
  const Vec3f cp = cam.position();
  const __m256 w00 = _mm256_set1_ps(rot(0, 0)), w01 = _mm256_set1_ps(rot(0, 1)),
               w02 = _mm256_set1_ps(rot(0, 2));
  const __m256 w10 = _mm256_set1_ps(rot(1, 0)), w11 = _mm256_set1_ps(rot(1, 1)),
               w12 = _mm256_set1_ps(rot(1, 2));
  const __m256 w20 = _mm256_set1_ps(rot(2, 0)), w21 = _mm256_set1_ps(rot(2, 1)),
               w22 = _mm256_set1_ps(rot(2, 2));
  const __m256 cpx = _mm256_set1_ps(cp.x), cpy = _mm256_set1_ps(cp.y),
               cpz = _mm256_set1_ps(cp.z);
  const __m256 vfx = _mm256_set1_ps(cam.fx()), vfy = _mm256_set1_ps(cam.fy());
  const __m256 vcx = _mm256_set1_ps(cam.cx()), vcy = _mm256_set1_ps(cam.cy());
  const __m256 near_clip = _mm256_set1_ps(kNearClip);
  const __m256 min_op = _mm256_set1_ps(kMinOpacity);
  const __m256 dilation = _mm256_set1_ps(kScreenSpaceDilation);
  const __m256 one = _mm256_set1_ps(1.0f), two = _mm256_set1_ps(2.0f);
  const __m256 half = _mm256_set1_ps(0.5f), three = _mm256_set1_ps(3.0f);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 rx0 = _mm256_set1_ps(rect.x0), ry0 = _mm256_set1_ps(rect.y0);
  const __m256 rx1 = _mm256_set1_ps(rect.x1), ry1 = _mm256_set1_ps(rect.y1);

  const std::size_t n = candidates.size();
  for (std::size_t i = 0; i < n; i += 8) {
    const int lanes = n - i >= 8 ? 8 : static_cast<int>(n - i);
    // Gather the candidate records into transposed stack tiles. Pad lanes
    // carry a benign record (zero scale/opacity, identity quat) and are
    // masked out of `keep` regardless.
    alignas(32) float tpx[8], tpy[8], tpz[8];
    alignas(32) float tsx[8], tsy[8], tsz[8];
    alignas(32) float tqw[8], tqx[8], tqy[8], tqz[8];
    alignas(32) float top[8];
    for (int j = 0; j < 8; ++j) {
      if (j < lanes) {
        const std::size_t k = first + candidates[i + static_cast<std::size_t>(j)];
        tpx[j] = cols.px[k];
        tpy[j] = cols.py[k];
        tpz[j] = cols.pz[k];
        tsx[j] = cols.sx[k];
        tsy[j] = cols.sy[k];
        tsz[j] = cols.sz[k];
        tqw[j] = cols.rw[k];
        tqx[j] = cols.rx[k];
        tqy[j] = cols.ry[k];
        tqz[j] = cols.rz[k];
        top[j] = cols.opacity[k];
      } else {
        tpx[j] = tpy[j] = tpz[j] = 0.0f;
        tsx[j] = tsy[j] = tsz[j] = 0.0f;
        tqw[j] = 1.0f;
        tqx[j] = tqy[j] = tqz[j] = 0.0f;
        top[j] = 0.0f;
      }
    }
    const __m256 vmask = _mm256_castsi256_ps(tail_mask8(lanes));
    // p_cam + near/opacity culls.
    const __m256 dx = _mm256_sub_ps(_mm256_load_ps(tpx), cpx);
    const __m256 dy = _mm256_sub_ps(_mm256_load_ps(tpy), cpy);
    const __m256 dz = _mm256_sub_ps(_mm256_load_ps(tpz), cpz);
    const __m256 xc = _mm256_fmadd_ps(
        w02, dz, _mm256_fmadd_ps(w01, dy, _mm256_mul_ps(w00, dx)));
    const __m256 yc = _mm256_fmadd_ps(
        w12, dz, _mm256_fmadd_ps(w11, dy, _mm256_mul_ps(w10, dx)));
    const __m256 zc = _mm256_fmadd_ps(
        w22, dz, _mm256_fmadd_ps(w21, dy, _mm256_mul_ps(w20, dx)));
    const __m256 vop = _mm256_load_ps(top);
    __m256 keep =
        _mm256_and_ps(vmask, _mm256_cmp_ps(zc, near_clip, _CMP_GT_OQ));
    keep = _mm256_and_ps(keep, _mm256_cmp_ps(vop, min_op, _CMP_GE_OQ));
    // Rotation matrix of the (un-normalized) quaternion: s = 2 / |q|^2.
    const __m256 qw = _mm256_load_ps(tqw), qx = _mm256_load_ps(tqx);
    const __m256 qy = _mm256_load_ps(tqy), qz = _mm256_load_ps(tqz);
    const __m256 n2 = _mm256_fmadd_ps(
        qz, qz,
        _mm256_fmadd_ps(qy, qy,
                        _mm256_fmadd_ps(qx, qx, _mm256_mul_ps(qw, qw))));
    const __m256 s_ok = _mm256_cmp_ps(n2, zero, _CMP_GT_OQ);
    const __m256 qs =
        _mm256_and_ps(s_ok, _mm256_div_ps(two, n2));  // 0 when |q| == 0
    const __m256 xx = _mm256_mul_ps(_mm256_mul_ps(qx, qx), qs);
    const __m256 yy = _mm256_mul_ps(_mm256_mul_ps(qy, qy), qs);
    const __m256 zz = _mm256_mul_ps(_mm256_mul_ps(qz, qz), qs);
    const __m256 xy = _mm256_mul_ps(_mm256_mul_ps(qx, qy), qs);
    const __m256 xz_ = _mm256_mul_ps(_mm256_mul_ps(qx, qz), qs);
    const __m256 yz_ = _mm256_mul_ps(_mm256_mul_ps(qy, qz), qs);
    const __m256 wx = _mm256_mul_ps(_mm256_mul_ps(qw, qx), qs);
    const __m256 wy = _mm256_mul_ps(_mm256_mul_ps(qw, qy), qs);
    const __m256 wz = _mm256_mul_ps(_mm256_mul_ps(qw, qz), qs);
    const __m256 r00 = _mm256_sub_ps(one, _mm256_add_ps(yy, zz));
    const __m256 r01 = _mm256_sub_ps(xy, wz);
    const __m256 r02 = _mm256_add_ps(xz_, wy);
    const __m256 r10 = _mm256_add_ps(xy, wz);
    const __m256 r11 = _mm256_sub_ps(one, _mm256_add_ps(xx, zz));
    const __m256 r12 = _mm256_sub_ps(yz_, wx);
    const __m256 r20 = _mm256_sub_ps(xz_, wy);
    const __m256 r21 = _mm256_add_ps(yz_, wx);
    const __m256 r22 = _mm256_sub_ps(one, _mm256_add_ps(xx, yy));
    // M = R * diag(scale); Sigma = M M^T (6 unique entries).
    const __m256 sx = _mm256_load_ps(tsx), sy = _mm256_load_ps(tsy),
                 sz = _mm256_load_ps(tsz);
    const __m256 m00 = _mm256_mul_ps(r00, sx), m01 = _mm256_mul_ps(r01, sy),
                 m02 = _mm256_mul_ps(r02, sz);
    const __m256 m10 = _mm256_mul_ps(r10, sx), m11 = _mm256_mul_ps(r11, sy),
                 m12 = _mm256_mul_ps(r12, sz);
    const __m256 m20 = _mm256_mul_ps(r20, sx), m21 = _mm256_mul_ps(r21, sy),
                 m22 = _mm256_mul_ps(r22, sz);
    const __m256 c00 = _mm256_fmadd_ps(
        m02, m02, _mm256_fmadd_ps(m01, m01, _mm256_mul_ps(m00, m00)));
    const __m256 c01 = _mm256_fmadd_ps(
        m02, m12, _mm256_fmadd_ps(m01, m11, _mm256_mul_ps(m00, m10)));
    const __m256 c02 = _mm256_fmadd_ps(
        m02, m22, _mm256_fmadd_ps(m01, m21, _mm256_mul_ps(m00, m20)));
    const __m256 c11 = _mm256_fmadd_ps(
        m12, m12, _mm256_fmadd_ps(m11, m11, _mm256_mul_ps(m10, m10)));
    const __m256 c12 = _mm256_fmadd_ps(
        m12, m22, _mm256_fmadd_ps(m11, m21, _mm256_mul_ps(m10, m20)));
    const __m256 c22 = _mm256_fmadd_ps(
        m22, m22, _mm256_fmadd_ps(m21, m21, _mm256_mul_ps(m20, m20)));
    // V = W Sigma W^T (camera-space covariance, 6 unique entries).
    const __m256 t00 = _mm256_fmadd_ps(
        w02, c02, _mm256_fmadd_ps(w01, c01, _mm256_mul_ps(w00, c00)));
    const __m256 t01 = _mm256_fmadd_ps(
        w02, c12, _mm256_fmadd_ps(w01, c11, _mm256_mul_ps(w00, c01)));
    const __m256 t02 = _mm256_fmadd_ps(
        w02, c22, _mm256_fmadd_ps(w01, c12, _mm256_mul_ps(w00, c02)));
    const __m256 t10 = _mm256_fmadd_ps(
        w12, c02, _mm256_fmadd_ps(w11, c01, _mm256_mul_ps(w10, c00)));
    const __m256 t11 = _mm256_fmadd_ps(
        w12, c12, _mm256_fmadd_ps(w11, c11, _mm256_mul_ps(w10, c01)));
    const __m256 t12 = _mm256_fmadd_ps(
        w12, c22, _mm256_fmadd_ps(w11, c12, _mm256_mul_ps(w10, c02)));
    const __m256 t20 = _mm256_fmadd_ps(
        w22, c02, _mm256_fmadd_ps(w21, c01, _mm256_mul_ps(w20, c00)));
    const __m256 t21 = _mm256_fmadd_ps(
        w22, c12, _mm256_fmadd_ps(w21, c11, _mm256_mul_ps(w20, c01)));
    const __m256 t22 = _mm256_fmadd_ps(
        w22, c22, _mm256_fmadd_ps(w21, c12, _mm256_mul_ps(w20, c02)));
    const __m256 v00 = _mm256_fmadd_ps(
        w02, t02, _mm256_fmadd_ps(w01, t01, _mm256_mul_ps(w00, t00)));
    const __m256 v01 = _mm256_fmadd_ps(
        w12, t02, _mm256_fmadd_ps(w11, t01, _mm256_mul_ps(w10, t00)));
    const __m256 v02 = _mm256_fmadd_ps(
        w22, t02, _mm256_fmadd_ps(w21, t01, _mm256_mul_ps(w20, t00)));
    const __m256 v11 = _mm256_fmadd_ps(
        w12, t12, _mm256_fmadd_ps(w11, t11, _mm256_mul_ps(w10, t10)));
    const __m256 v12 = _mm256_fmadd_ps(
        w22, t12, _mm256_fmadd_ps(w21, t11, _mm256_mul_ps(w20, t10)));
    const __m256 v22 = _mm256_fmadd_ps(
        w22, t22, _mm256_fmadd_ps(w21, t21, _mm256_mul_ps(w20, t20)));
    // EWA Jacobian rows j0 = (fx/z, 0, -fx x / z^2), j1 = (0, fy/z, ...).
    const __m256 inv_z = _mm256_div_ps(one, zc);
    const __m256 xz = _mm256_mul_ps(xc, inv_z);
    const __m256 yz = _mm256_mul_ps(yc, inv_z);
    const __m256 j00 = _mm256_mul_ps(vfx, inv_z);
    const __m256 j11 = _mm256_mul_ps(vfy, inv_z);
    const __m256 j02 = _mm256_sub_ps(zero, _mm256_mul_ps(j00, xz));
    const __m256 j12 = _mm256_sub_ps(zero, _mm256_mul_ps(j11, yz));
    // Screen covariance: a = j0 V j0^T + 0.3, etc.
    const __m256 a = _mm256_add_ps(
        _mm256_fmadd_ps(
            _mm256_mul_ps(j02, j02), v22,
            _mm256_fmadd_ps(_mm256_mul_ps(two, _mm256_mul_ps(j00, j02)), v02,
                            _mm256_mul_ps(_mm256_mul_ps(j00, j00), v00))),
        dilation);
    const __m256 b = _mm256_fmadd_ps(
        _mm256_mul_ps(j02, j12), v22,
        _mm256_fmadd_ps(_mm256_mul_ps(j02, j11), v12,
                        _mm256_fmadd_ps(_mm256_mul_ps(j00, j12), v02,
                                        _mm256_mul_ps(_mm256_mul_ps(j00, j11),
                                                      v01))));
    const __m256 c2 = _mm256_add_ps(
        _mm256_fmadd_ps(
            _mm256_mul_ps(j12, j12), v22,
            _mm256_fmadd_ps(_mm256_mul_ps(two, _mm256_mul_ps(j11, j12)), v12,
                            _mm256_mul_ps(_mm256_mul_ps(j11, j11), v11))),
        dilation);
    const __m256 det = _mm256_fnmadd_ps(b, b, _mm256_mul_ps(a, c2));
    keep = _mm256_and_ps(keep, _mm256_cmp_ps(det, zero, _CMP_GT_OQ));
    // Conic, radius, mean, rect test.
    const __m256 conic_a = _mm256_div_ps(c2, det);
    const __m256 conic_b = _mm256_div_ps(_mm256_sub_ps(zero, b), det);
    const __m256 conic_c = _mm256_div_ps(a, det);
    const __m256 mid = _mm256_mul_ps(half, _mm256_add_ps(a, c2));
    const __m256 eig_disc = _mm256_sqrt_ps(
        _mm256_max_ps(zero, _mm256_fmsub_ps(mid, mid, det)));
    const __m256 radius = _mm256_mul_ps(
        three,
        _mm256_sqrt_ps(_mm256_max_ps(zero, _mm256_add_ps(mid, eig_disc))));
    const __m256 mx = _mm256_fmadd_ps(vfx, xz, vcx);
    const __m256 my = _mm256_fmadd_ps(vfy, yz, vcy);
    const __m256 ddx = _mm256_max_ps(
        zero, _mm256_max_ps(_mm256_sub_ps(rx0, mx), _mm256_sub_ps(mx, rx1)));
    const __m256 ddy = _mm256_max_ps(
        zero, _mm256_max_ps(_mm256_sub_ps(ry0, my), _mm256_sub_ps(my, ry1)));
    const __m256 d2 = _mm256_fmadd_ps(ddx, ddx, _mm256_mul_ps(ddy, ddy));
    keep = _mm256_and_ps(
        keep, _mm256_cmp_ps(d2, _mm256_mul_ps(radius, radius), _CMP_LE_OQ));

    unsigned m = static_cast<unsigned>(_mm256_movemask_ps(keep));
    if (m == 0) continue;
    alignas(32) float omx[8], omy[8], odepth[8], oca[8], ocb[8], occ[8],
        orad[8];
    _mm256_store_ps(omx, mx);
    _mm256_store_ps(omy, my);
    _mm256_store_ps(odepth, zc);
    _mm256_store_ps(oca, conic_a);
    _mm256_store_ps(ocb, conic_b);
    _mm256_store_ps(occ, conic_c);
    _mm256_store_ps(orad, radius);
    while (m != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(m));
      m &= m - 1;
      const std::uint32_t local = candidates[i + j];
      const std::size_t k = first + local;
      FineSurvivor fs;
      fs.local = local;
      fs.proj.mean = {omx[j], omy[j]};
      fs.proj.depth = odepth[j];
      fs.proj.conic = {oca[j], ocb[j], occ[j]};
      fs.proj.radius = orad[j];
      fs.proj.opacity = cols.opacity[k];
      fs.proj.color = eval_sh_record_avx2(
          cols, k, Vec3f{cols.px[k], cols.py[k], cols.pz[k]} - cp);
      out.push_back(fs);
    }
  }
}

void fine_project_batch_avx2(const GaussianColumns& cols, std::size_t first,
                             std::span<const std::uint32_t> candidates,
                             const Camera& cam, const FilterRect& rect,
                             std::vector<FineSurvivor>& out) {
  fine_project_avx2_impl(cols, first, candidates, cam, rect, out);
}

// ------------------------------------------------------------------ SH eval

SGS_AVX2 void eval_sh_avx2_impl(const GaussianColumns& cols, std::size_t first,
                                std::span<const std::uint32_t> locals,
                                Vec3f cam_pos, Vec3f* out_colors) {
  for (std::size_t j = 0; j < locals.size(); ++j) {
    const std::size_t k = first + locals[j];
    out_colors[j] = eval_sh_record_avx2(
        cols, k, Vec3f{cols.px[k], cols.py[k], cols.pz[k]} - cam_pos);
  }
}

void eval_sh_batch_avx2(const GaussianColumns& cols, std::size_t first,
                        std::span<const std::uint32_t> locals, Vec3f cam_pos,
                        Vec3f* out_colors) {
  eval_sh_avx2_impl(cols, first, locals, cam_pos, out_colors);
}

// -------------------------------------------------------------- alpha blend

SGS_AVX2 BlendCounters blend_avx2_impl(BlendPlanes& planes,
                                       std::vector<float>& max_depth,
                                       const ProjectedGaussian& g,
                                       const PixelSpan& span, int px0, int py0,
                                       int row_w) {
  BlendCounters out;
  const __m256 conic_a = _mm256_set1_ps(g.conic.a);
  const __m256 conic_c = _mm256_set1_ps(g.conic.c);
  const __m256 two_b = _mm256_set1_ps(2.0f * g.conic.b);
  const __m256 vop = _mm256_set1_ps(g.opacity);
  const __m256 vdepth = _mm256_set1_ps(g.depth);
  const __m256 col_r = _mm256_set1_ps(g.color.x);
  const __m256 col_g = _mm256_set1_ps(g.color.y);
  const __m256 col_b = _mm256_set1_ps(g.color.z);
  const __m256 cutoff = _mm256_set1_ps(kTransmittanceCutoff);
  const __m256 min_alpha = _mm256_set1_ps(kMinBlendAlpha);
  const __m256 alpha_clamp = _mm256_set1_ps(kAlphaClamp);
  const __m256 depth_eps = _mm256_set1_ps(1e-6f);
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 lane_ramp =
      _mm256_setr_ps(0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f);

  const int n = span.x1 - span.x0;
  for (int py = span.y0; py < span.y1; ++py) {
    const float fdy = static_cast<float>(py) + 0.5f - g.mean.y;
    const __m256 dy2c = _mm256_set1_ps(g.conic.c * fdy * fdy);
    const __m256 bdy = _mm256_mul_ps(two_b, _mm256_set1_ps(fdy));
    const std::size_t base =
        static_cast<std::size_t>((py - py0) * row_w + (span.x0 - px0));
    float* trow = planes.t.data() + base;
    float* rrow = planes.r.data() + base;
    float* grow = planes.g.data() + base;
    float* brow = planes.b.data() + base;
    float* mdrow = max_depth.data() + base;
    const float dx0 = static_cast<float>(span.x0) + 0.5f - g.mean.x;
    for (int i = 0; i < n; i += 8) {
      const int lanes = n - i >= 8 ? 8 : n - i;
      const __m256i imask = tail_mask8(lanes);
      const __m256 vmask = _mm256_castsi256_ps(imask);
      const __m256 t = _mm256_maskload_ps(trow + i, imask);
      const __m256 examined =
          _mm256_and_ps(vmask, _mm256_cmp_ps(t, cutoff, _CMP_GE_OQ));
      const int em = _mm256_movemask_ps(examined);
      out.blend_ops += static_cast<std::uint64_t>(
          __builtin_popcount(static_cast<unsigned>(em)));
      if (em == 0) continue;
      const __m256 dx =
          _mm256_add_ps(_mm256_set1_ps(dx0 + static_cast<float>(i)), lane_ramp);
      // power = 0.5 * (a dx^2 + 2b dx dy + c dy^2)
      const __m256 q = _mm256_fmadd_ps(
          _mm256_mul_ps(conic_a, dx), dx, _mm256_fmadd_ps(bdy, dx, dy2c));
      const __m256 power = _mm256_mul_ps(half, q);
      const __m256 pos_ok = _mm256_cmp_ps(power, zero, _CMP_GE_OQ);
      __m256 alpha =
          _mm256_mul_ps(vop, exp256_ps(_mm256_sub_ps(zero, power)));
      const __m256 alpha_ok = _mm256_cmp_ps(alpha, min_alpha, _CMP_GE_OQ);
      alpha = _mm256_min_ps(alpha, alpha_clamp);
      const __m256 active =
          _mm256_and_ps(examined, _mm256_and_ps(pos_ok, alpha_ok));
      const int am = _mm256_movemask_ps(active);
      if (am == 0) continue;
      out.contributions += static_cast<std::uint64_t>(
          __builtin_popcount(static_cast<unsigned>(am)));
      out.contributed = true;
      // Depth-order bookkeeping (the measured T_i of Eq. 2).
      __m256 md = _mm256_maskload_ps(mdrow + i, imask);
      const __m256 viol = _mm256_and_ps(
          active,
          _mm256_cmp_ps(vdepth, _mm256_sub_ps(md, depth_eps), _CMP_LT_OQ));
      const int vm = _mm256_movemask_ps(viol);
      if (vm != 0) {
        out.violations += static_cast<std::uint64_t>(
            __builtin_popcount(static_cast<unsigned>(vm)));
        out.violated = true;
      }
      const __m256 take_depth = _mm256_andnot_ps(viol, active);
      md = _mm256_blendv_ps(md, vdepth, take_depth);
      _mm256_maskstore_ps(mdrow + i, imask, md);
      // C += T * alpha * color on active lanes; T *= (1 - alpha).
      const __m256 w = _mm256_and_ps(_mm256_mul_ps(t, alpha), active);
      __m256 r = _mm256_maskload_ps(rrow + i, imask);
      __m256 gg = _mm256_maskload_ps(grow + i, imask);
      __m256 bb = _mm256_maskload_ps(brow + i, imask);
      r = _mm256_fmadd_ps(w, col_r, r);
      gg = _mm256_fmadd_ps(w, col_g, gg);
      bb = _mm256_fmadd_ps(w, col_b, bb);
      _mm256_maskstore_ps(rrow + i, imask, r);
      _mm256_maskstore_ps(grow + i, imask, gg);
      _mm256_maskstore_ps(brow + i, imask, bb);
      const __m256 t_next = _mm256_blendv_ps(
          t, _mm256_mul_ps(t, _mm256_sub_ps(one, alpha)), active);
      out.newly_saturated += static_cast<std::uint32_t>(__builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_ps(_mm256_and_ps(
              active, _mm256_cmp_ps(t_next, cutoff, _CMP_LT_OQ))))));
      _mm256_maskstore_ps(trow + i, imask, t_next);
    }
  }
  return out;
}

BlendCounters blend_survivor_avx2(BlendPlanes& planes,
                                  std::vector<float>& max_depth,
                                  const ProjectedGaussian& proj,
                                  const PixelSpan& span, int px0, int py0,
                                  int row_w) {
  return blend_avx2_impl(planes, max_depth, proj, span, px0, py0, row_w);
}

SGS_SSE2 BlendCounters blend_sse2_impl(BlendPlanes& planes,
                                       std::vector<float>& max_depth,
                                       const ProjectedGaussian& g,
                                       const PixelSpan& span, int px0, int py0,
                                       int row_w) {
  BlendCounters out;
  const __m128 conic_a = _mm_set1_ps(g.conic.a);
  const __m128 vop = _mm_set1_ps(g.opacity);
  const __m128 vdepth = _mm_set1_ps(g.depth);
  const __m128 col_r = _mm_set1_ps(g.color.x);
  const __m128 col_g = _mm_set1_ps(g.color.y);
  const __m128 col_b = _mm_set1_ps(g.color.z);
  const __m128 cutoff = _mm_set1_ps(kTransmittanceCutoff);
  const __m128 min_alpha = _mm_set1_ps(kMinBlendAlpha);
  const __m128 alpha_clamp = _mm_set1_ps(kAlphaClamp);
  const __m128 depth_eps = _mm_set1_ps(1e-6f);
  const __m128 half = _mm_set1_ps(0.5f);
  const __m128 one = _mm_set1_ps(1.0f);
  const __m128 zero = _mm_setzero_ps();
  const __m128 lane_ramp = _mm_setr_ps(0.0f, 1.0f, 2.0f, 3.0f);

  const int n = span.x1 - span.x0;
  const int n4 = n & ~3;
  for (int py = span.y0; py < span.y1; ++py) {
    const float fdy = static_cast<float>(py) + 0.5f - g.mean.y;
    const __m128 dy2c = _mm_set1_ps(g.conic.c * fdy * fdy);
    const __m128 bdy = _mm_set1_ps(2.0f * g.conic.b * fdy);
    const std::size_t base =
        static_cast<std::size_t>((py - py0) * row_w + (span.x0 - px0));
    float* trow = planes.t.data() + base;
    float* rrow = planes.r.data() + base;
    float* grow = planes.g.data() + base;
    float* brow = planes.b.data() + base;
    float* mdrow = max_depth.data() + base;
    const float dx0 = static_cast<float>(span.x0) + 0.5f - g.mean.x;
    for (int i = 0; i < n4; i += 4) {
      const __m128 t = _mm_loadu_ps(trow + i);
      const __m128 examined = _mm_cmpge_ps(t, cutoff);
      const int em = _mm_movemask_ps(examined);
      out.blend_ops += static_cast<std::uint64_t>(
          __builtin_popcount(static_cast<unsigned>(em)));
      if (em == 0) continue;
      const __m128 dx =
          _mm_add_ps(_mm_set1_ps(dx0 + static_cast<float>(i)), lane_ramp);
      const __m128 q = _mm_add_ps(
          _mm_mul_ps(_mm_mul_ps(conic_a, dx), dx),
          _mm_add_ps(_mm_mul_ps(bdy, dx), dy2c));
      const __m128 power = _mm_mul_ps(half, q);
      const __m128 pos_ok = _mm_cmpge_ps(power, zero);
      __m128 alpha = _mm_mul_ps(vop, exp128_ps(_mm_sub_ps(zero, power)));
      const __m128 alpha_ok = _mm_cmpge_ps(alpha, min_alpha);
      alpha = _mm_min_ps(alpha, alpha_clamp);
      const __m128 active =
          _mm_and_ps(examined, _mm_and_ps(pos_ok, alpha_ok));
      const int am = _mm_movemask_ps(active);
      if (am == 0) continue;
      out.contributions += static_cast<std::uint64_t>(
          __builtin_popcount(static_cast<unsigned>(am)));
      out.contributed = true;
      __m128 md = _mm_loadu_ps(mdrow + i);
      const __m128 viol = _mm_and_ps(
          active, _mm_cmplt_ps(vdepth, _mm_sub_ps(md, depth_eps)));
      const int vm = _mm_movemask_ps(viol);
      if (vm != 0) {
        out.violations += static_cast<std::uint64_t>(
            __builtin_popcount(static_cast<unsigned>(vm)));
        out.violated = true;
      }
      md = select128(_mm_andnot_ps(viol, active), vdepth, md);
      _mm_storeu_ps(mdrow + i, md);
      const __m128 w = _mm_and_ps(_mm_mul_ps(t, alpha), active);
      _mm_storeu_ps(rrow + i,
                    _mm_add_ps(_mm_loadu_ps(rrow + i), _mm_mul_ps(w, col_r)));
      _mm_storeu_ps(grow + i,
                    _mm_add_ps(_mm_loadu_ps(grow + i), _mm_mul_ps(w, col_g)));
      _mm_storeu_ps(brow + i,
                    _mm_add_ps(_mm_loadu_ps(brow + i), _mm_mul_ps(w, col_b)));
      const __m128 t_next =
          select128(active, _mm_mul_ps(t, _mm_sub_ps(one, alpha)), t);
      out.newly_saturated += static_cast<std::uint32_t>(
          __builtin_popcount(static_cast<unsigned>(_mm_movemask_ps(
              _mm_and_ps(active, _mm_cmplt_ps(t_next, cutoff))))));
      _mm_storeu_ps(trow + i, t_next);
    }
    // Per-pixel tail at a position fixed by the span width.
    for (int i = n4; i < n; ++i) {
      if (trow[i] < kTransmittanceCutoff) continue;
      ++out.blend_ops;
      const int px = span.x0 + i;
      const float alpha = gaussian_alpha(
          g, {static_cast<float>(px) + 0.5f, static_cast<float>(py) + 0.5f});
      if (alpha <= 0.0f) continue;
      out.contributed = true;
      ++out.contributions;
      if (g.depth < mdrow[i] - 1e-6f) {
        ++out.violations;
        out.violated = true;
      } else {
        mdrow[i] = g.depth;
      }
      const float w = trow[i] * alpha;
      rrow[i] += w * g.color.x;
      grow[i] += w * g.color.y;
      brow[i] += w * g.color.z;
      trow[i] *= (1.0f - alpha);
      if (trow[i] < kTransmittanceCutoff) ++out.newly_saturated;
    }
  }
  return out;
}

BlendCounters blend_survivor_sse2(BlendPlanes& planes,
                                  std::vector<float>& max_depth,
                                  const ProjectedGaussian& proj,
                                  const PixelSpan& span, int px0, int py0,
                                  int row_w) {
  return blend_sse2_impl(planes, max_depth, proj, span, px0, py0, row_w);
}

// ------------------------------------------------------- VQ codebook gather

SGS_AVX2 void gather_avx2_impl(float* dst, std::size_t dst_stride,
                               const float* src, const std::uint32_t* idx,
                               std::size_t n, std::size_t src_stride,
                               std::size_t src_offset) {
  const __m256i vstride =
      _mm256_set1_epi32(static_cast<std::int32_t>(src_stride));
  const __m256i voffset =
      _mm256_set1_epi32(static_cast<std::int32_t>(src_offset));
  std::size_t k = 0;
  for (; k + 8 <= n; k += 8) {
    __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    vi = _mm256_add_epi32(_mm256_mullo_epi32(vi, vstride), voffset);
    const __m256 v = _mm256_i32gather_ps(src, vi, 4);
    if (dst_stride == 1) {
      _mm256_storeu_ps(dst + k, v);
    } else {
      alignas(32) float tmp[8];
      _mm256_store_ps(tmp, v);
      for (int j = 0; j < 8; ++j) {
        dst[(k + static_cast<std::size_t>(j)) * dst_stride] = tmp[j];
      }
    }
  }
  for (; k < n; ++k) {
    dst[k * dst_stride] =
        src[static_cast<std::size_t>(idx[k]) * src_stride + src_offset];
  }
}

void gather_codebook_column_avx2(float* dst, std::size_t dst_stride,
                                 const float* src, const std::uint32_t* idx,
                                 std::size_t n, std::size_t src_stride,
                                 std::size_t src_offset) {
  gather_avx2_impl(dst, dst_stride, src, idx, n, src_stride, src_offset);
}

}  // namespace sgs::gs::detail

#endif  // SGS_KERNELS_X86
