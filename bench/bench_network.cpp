// Network streaming benchmark (and CI smoke test): the PSNR-vs-bandwidth
// frontier of the ABR loop over simulated links.
//
// Passes over one walkthrough trajectory:
//   resident      — the prepared scene fully in memory (reference pixels)
//   local file    — tiered VQ store through LocalFileBackend, L0-forced,
//                   synchronous: must be bit-identical to resident
//   perfect net   — the SAME configuration through a SimulatedNetworkBackend
//                   with the default (perfect) NetProfile: must be
//                   bit-identical to the local pass — the network seam adds
//                   transfers, never pixels (exits non-zero otherwise)
//   frontier      — a raw coarse-floor store streamed over the three named
//                   link presets (lossy -> constrained -> fast) with the
//                   ABR term live (abr_frame_budget_ns) and a zero demand
//                   deadline: each pass reports PSNR vs the resident
//                   render, ABR demotions, net traffic, and the loader's
//                   converged link estimate.
//
// Gates (non-zero exit on failure):
//   - local pass bit-identical to resident; perfect-net pass bit-identical
//     to the local pass
//   - mean PSNR is non-decreasing along lossy -> constrained -> fast (the
//     frontier is monotone in link quality)
//   - zero stall frames at "constrained": a clean link plus the coarse
//     floor and zero deadline must never block a frame on the network
//     (the lossy link may legitimately stall — a lost floor-pin transfer
//     leaves a hole whose acquires take the blocking path — so it is
//     reported, not gated)
//   - ABR demoted at least once on both bandwidth-limited links (lossy,
//     constrained): the estimator really drove tier selection
//
// Emits BENCH_network.json (flat key/value) for trend tracking; see
// docs/BENCHMARKS.md for the schema and how CI consumes it.
//
//   ./bench_network [--scene train] [--frames 8] [--model_scale 0.02]
//                   [--res_scale 0.25] [--arc 0.03]
//                   [--out BENCH_network.json]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/units.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "metrics/psnr.hpp"
#include "scene/presets.hpp"
#include "stream/asset_store.hpp"
#include "stream/fetch_backend.hpp"
#include "stream/lod_policy.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace {

std::vector<sgs::gs::Camera> make_trajectory(sgs::scene::ScenePreset preset,
                                             int w, int h, int frames,
                                             float arc) {
  std::vector<sgs::gs::Camera> cams;
  cams.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const float t = arc * static_cast<float>(f) / static_cast<float>(frames);
    cams.push_back(sgs::scene::make_preset_camera(preset, w, h, t));
  }
  return cams;
}

// One frontier pass's outcome.
struct NetPass {
  std::string profile;
  double psnr_min_db = 0.0;
  double psnr_mean_db = 0.0;
  int stall_frames = 0;
  int fallback_frames = 0;
  std::uint64_t abr_demotions = 0;
  std::uint64_t net_bytes = 0;
  std::uint64_t net_stall_ns = 0;
  std::uint64_t fetch_errors = 0;
  std::uint64_t link_requests = 0;
  std::uint64_t link_timeouts = 0;
  double estimated_bw_mbps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  const auto preset = scene::preset_from_name(args.get("scene", "train"));
  const int frames = args.get_int("frames", 8);
  const float model_scale =
      static_cast<float>(args.get_double("model_scale", 0.02));
  const float res_scale =
      static_cast<float>(args.get_double("res_scale", 0.25));
  const float arc = static_cast<float>(args.get_double("arc", 0.03));
  const std::string out_path = args.get("out", "BENCH_network.json");
  const std::string store_path = "/tmp/bench_network.sgsc";

  bench::print_header("network streaming: ABR over simulated links",
                      "bit-identical over a perfect link, PSNR frontier "
                      "monotone in bandwidth");
  set_parallelism(4);

  const auto model = scene::make_preset_scene(preset, model_scale);
  int w = 0, h = 0;
  scene::scaled_resolution(preset, res_scale, w, h);
  core::StreamingConfig scfg;
  scfg.voxel_size = scene::preset_info(preset).default_voxel_size;
  const auto scene_resident = core::StreamingScene::prepare(model, scfg);
  const auto cameras = make_trajectory(preset, w, h, frames, arc);

  core::SequenceOptions seq;
  seq.reuse_max_translation = 0.25f * scfg.voxel_size;
  seq.reuse_max_rotation_rad = 0.04f;

  // --- resident reference ----------------------------------------------------
  const auto resident = core::render_sequence(scene_resident, cameras, seq);

  // --- local file vs perfect net: the bit-exactness gate ---------------------
  stream::AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  try {
    if (!stream::AssetStore::write(store_path, scene_resident, wopts)) {
      std::fprintf(stderr, "FAILED to write %s\n", store_path.c_str());
      return 1;
    }
  } catch (const stream::StreamException& e) {
    std::fprintf(stderr, "FAILED to write store: %s\n", e.what());
    return 1;
  }

  // Synchronous + L0-forced on both sides: the fetch schedule is a pure
  // function of the trajectory, so the two passes issue identical request
  // sequences and the only variable is the transport.
  auto run_golden = [&](const std::shared_ptr<stream::FetchBackend>& backend) {
    stream::StreamError err;
    std::unique_ptr<stream::AssetStore> store =
        backend ? stream::AssetStore::open(backend, &err)
                : stream::AssetStore::open(store_path, &err);
    if (!store) {
      std::fprintf(stderr, "FAILED to open store: %s\n",
                   err.to_string().c_str());
      std::exit(1);
    }
    stream::ResidencyCacheConfig cc;
    cc.budget_bytes = store->decoded_bytes_total() * 35 / 100;
    stream::ResidencyCache cache(*store, cc);
    stream::PrefetchConfig pc;
    pc.synchronous = true;
    pc.lod.force_tier0 = true;
    stream::StreamingLoader loader(cache, pc);
    const auto sc = store->make_scene();
    return core::render_sequence(sc, cameras, seq, &loader);
  };

  const auto local = run_golden(nullptr);
  auto perfect = std::make_shared<stream::SimulatedNetworkBackend>(
      std::make_shared<stream::LocalFileBackend>(store_path),
      stream::NetProfile{});
  const auto netgold = run_golden(perfect);

  bool local_identical = local.frames.size() == resident.frames.size();
  for (std::size_t f = 0; f < local.frames.size() && local_identical; ++f) {
    local_identical =
        resident.frames[f].image.pixels() == local.frames[f].image.pixels();
  }
  bool net_identical = netgold.frames.size() == local.frames.size();
  for (std::size_t f = 0; f < netgold.frames.size() && net_identical; ++f) {
    net_identical =
        local.frames[f].image.pixels() == netgold.frames[f].image.pixels();
  }
  std::printf("  local pass bit-identical to resident: %s\n",
              local_identical ? "yes" : "NO");
  std::printf("  perfect-net pass bit-identical to local (%llu requests, "
              "%s over the seam): %s\n",
              static_cast<unsigned long long>(perfect->stats().requests),
              format_bytes(static_cast<double>(perfect->stats().bytes)).c_str(),
              net_identical ? "yes" : "NO");

  // --- PSNR-vs-bandwidth frontier --------------------------------------------
  // Raw store with the default SH-band tier ladder (L2 keeps every record
  // at DC only), whose coarsest tier doubles as the always-resident floor:
  // the zero demand deadline turns a late fetch into a bounded-quality
  // L2 serve instead of a stall, which is how the constrained link
  // sustains its zero-stall gate — and the quality each link recovers
  // ABOVE that common floor is exactly what the frontier measures.
  core::StreamingConfig rcfg = scfg;
  rcfg.use_vq = false;
  const auto scene_raw = core::StreamingScene::prepare(model, rcfg);
  try {
    if (!stream::AssetStore::write(store_path, scene_raw, wopts)) {
      std::fprintf(stderr, "FAILED to rewrite %s\n", store_path.c_str());
      return 1;
    }
  } catch (const stream::StreamException& e) {
    std::fprintf(stderr, "FAILED to rewrite store: %s\n", e.what());
    return 1;
  }
  const auto resident_raw = core::render_sequence(scene_raw, cameras, seq);

  const std::vector<std::string> profiles = {"lossy", "constrained", "fast"};
  std::vector<NetPass> passes;
  for (const std::string& name : profiles) {
    auto net = std::make_shared<stream::SimulatedNetworkBackend>(
        std::make_shared<stream::LocalFileBackend>(store_path),
        stream::NetProfile::from_name(name));
    stream::StreamError err;
    const auto store = stream::AssetStore::open(net, &err);
    if (!store) {
      std::fprintf(stderr, "FAILED to open %s store: %s\n", name.c_str(),
                   err.to_string().c_str());
      return 1;
    }
    stream::ResidencyCacheConfig cc;
    cc.budget_bytes = store->decoded_bytes_total() * 35 / 100;
    cc.coarse_floor_budget_bytes = store->decoded_bytes_total();
    stream::ResidencyCache cache(*store, cc);
    stream::PrefetchConfig pc;
    pc.synchronous = true;        // deterministic request order on the link
    pc.fetch_deadline_ns = 0;     // never block a frame on a demand fetch
    // The measured link is the binding prefetch constraint: no group-count
    // cap, and the static byte cap is only a conservative cold-start
    // budget for the first frames (the ABR term has no estimate yet).
    // From the first transfer on, the ABR cap (estimate x horizon x
    // safety) decides what each pass streams — exactly what its link
    // sustains.
    pc.max_groups_per_frame = static_cast<std::size_t>(-1);
    pc.max_bytes_per_frame = 256 << 10;
    pc.lod.abr_frame_budget_ns = 100'000'000;  // ~100 ms fetch horizon
    stream::StreamingLoader loader(cache, pc);
    const auto sc = store->make_scene();
    const auto out = core::render_sequence(sc, cameras, seq, &loader);

    NetPass p;
    p.profile = name;
    double psnr_min = 1e30, psnr_sum = 0.0;
    for (std::size_t f = 0; f < cameras.size(); ++f) {
      const double db = metrics::psnr_capped(resident_raw.frames[f].image,
                                             out.frames[f].image);
      psnr_min = std::min(psnr_min, db);
      psnr_sum += db;
      const core::StreamCacheStats& cs = out.frames[f].trace.cache;
      if (cs.misses > 0) ++p.stall_frames;
      if (cs.coarse_fallbacks > 0) ++p.fallback_frames;
    }
    p.psnr_min_db = psnr_min;
    p.psnr_mean_db = psnr_sum / static_cast<double>(cameras.size());
    const core::StreamCacheStats s = loader.stats();
    p.abr_demotions = s.abr_demotions;
    p.net_bytes = s.net_bytes;
    p.net_stall_ns = s.net_stall_ns;
    p.fetch_errors = s.fetch_errors;
    p.link_requests = net->stats().requests;
    p.link_timeouts = net->stats().timeouts;
    p.estimated_bw_mbps =
        loader.estimator().bandwidth_bytes_per_sec() / 1e6;
    passes.push_back(p);
  }

  bench::Table table({"link", "PSNR min/mean", "stall frames",
                      "floor frames", "ABR demotions", "net fetched",
                      "timeouts", "est. MB/s"});
  for (const NetPass& p : passes) {
    table.row({p.profile,
               bench::fmt(p.psnr_min_db, 1) + "/" +
                   bench::fmt(p.psnr_mean_db, 1) + " dB",
               std::to_string(p.stall_frames), std::to_string(p.fallback_frames),
               std::to_string(p.abr_demotions),
               format_bytes(static_cast<double>(p.net_bytes)),
               std::to_string(p.link_timeouts),
               bench::fmt(p.estimated_bw_mbps, 1)});
  }
  table.print();

  // --- gates -----------------------------------------------------------------
  bool frontier_monotone = true;
  for (std::size_t i = 1; i < passes.size(); ++i) {
    // A faster link must never render worse (0.05 dB slack absorbs PSNR
    // cap rounding when both passes are essentially exact).
    if (passes[i].psnr_mean_db < passes[i - 1].psnr_mean_db - 0.05) {
      frontier_monotone = false;
    }
  }
  const NetPass& constrained = passes[1];
  const bool zero_stall_constrained = constrained.stall_frames == 0;
  const bool abr_engaged =
      passes[0].abr_demotions > 0 && passes[1].abr_demotions > 0;
  std::printf("  frontier monotone (lossy -> constrained -> fast): %s\n",
              frontier_monotone ? "yes" : "NO");
  std::printf("  zero stalls at constrained: %s (%d stall frames)\n",
              zero_stall_constrained ? "yes" : "NO",
              constrained.stall_frames);
  std::printf("  ABR engaged on bandwidth-limited links: %s\n",
              abr_engaged ? "yes" : "NO");

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"frames\": " << frames << ",\n"
       << "  \"local_bit_identical\": "
       << (local_identical ? "true" : "false") << ",\n"
       << "  \"net_bit_identical\": " << (net_identical ? "true" : "false")
       << ",\n"
       << "  \"net_requests\": " << perfect->stats().requests << ",\n"
       << "  \"net_seam_bytes\": " << perfect->stats().bytes << ",\n"
       << "  \"frontier_monotone\": "
       << (frontier_monotone ? "true" : "false") << ",\n"
       << "  \"abr_engaged\": " << (abr_engaged ? "true" : "false");
  for (const NetPass& p : passes) {
    json << ",\n"
         << "  \"net_" << p.profile << "_psnr_min_db\": " << p.psnr_min_db
         << ",\n"
         << "  \"net_" << p.profile << "_psnr_mean_db\": " << p.psnr_mean_db
         << ",\n"
         << "  \"net_" << p.profile << "_stall_frames\": " << p.stall_frames
         << ",\n"
         << "  \"net_" << p.profile
         << "_fallback_frames\": " << p.fallback_frames << ",\n"
         << "  \"net_" << p.profile << "_abr_demotions\": " << p.abr_demotions
         << ",\n"
         << "  \"net_" << p.profile << "_bytes\": " << p.net_bytes << ",\n"
         << "  \"net_" << p.profile << "_stall_ns\": " << p.net_stall_ns
         << ",\n"
         << "  \"net_" << p.profile << "_fetch_errors\": " << p.fetch_errors
         << ",\n"
         << "  \"net_" << p.profile << "_timeouts\": " << p.link_timeouts
         << ",\n"
         << "  \"net_" << p.profile
         << "_estimated_bw_mbps\": " << p.estimated_bw_mbps;
  }
  json << "\n}\n";
  std::printf("  wrote %s\n", out_path.c_str());

  std::remove(store_path.c_str());
  bool ok = true;
  if (!local_identical || !net_identical) {
    std::fprintf(stderr, "network golden gate FAILED: local %s, net %s\n",
                 local_identical ? "ok" : "MISMATCH",
                 net_identical ? "ok" : "MISMATCH");
    ok = false;
  }
  if (!frontier_monotone) {
    std::fprintf(stderr, "frontier gate FAILED: mean PSNR not monotone\n");
    ok = false;
  }
  if (!zero_stall_constrained) {
    std::fprintf(stderr, "zero-stall gate FAILED: %d stall frames at "
                 "constrained\n", constrained.stall_frames);
    ok = false;
  }
  if (!abr_engaged) {
    std::fprintf(stderr, "ABR gate FAILED: no demotions on a "
                 "bandwidth-limited link\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
