// Unit quaternion for Gaussian ellipsoid orientation, matching the (w,x,y,z)
// convention of the reference 3DGS implementation's PLY export.
#pragma once

#include <cmath>

#include "common/mat.hpp"
#include "common/vec.hpp"

namespace sgs {

struct Quatf {
  float w = 1.0f;
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Quatf() = default;
  constexpr Quatf(float w_, float x_, float y_, float z_) : w(w_), x(x_), y(y_), z(z_) {}

  static Quatf from_axis_angle(Vec3f axis, float angle_rad) {
    const Vec3f a = axis.normalized();
    const float h = 0.5f * angle_rad;
    const float s = std::sin(h);
    return {std::cos(h), a.x * s, a.y * s, a.z * s};
  }

  constexpr float dot(Quatf o) const { return w * o.w + x * o.x + y * o.y + z * o.z; }
  float norm() const { return std::sqrt(dot(*this)); }

  Quatf normalized() const {
    const float n = norm();
    if (n <= 0.0f) return Quatf{};
    return {w / n, x / n, y / n, z / n};
  }

  constexpr Quatf conjugate() const { return {w, -x, -y, -z}; }

  constexpr Quatf operator*(Quatf o) const {
    return {w * o.w - x * o.x - y * o.y - z * o.z,
            w * o.x + x * o.w + y * o.z - z * o.y,
            w * o.y - x * o.z + y * o.w + z * o.x,
            w * o.z + x * o.y - y * o.x + z * o.w};
  }

  constexpr bool operator==(const Quatf&) const = default;

  // Rotation matrix of the *normalized* quaternion. The un-normalized form is
  // used on purpose (same as reference 3DGS): it divides by the squared norm
  // so stored quaternions do not need renormalization after fine-tuning.
  Mat3f to_rotation_matrix() const {
    const float n2 = dot(*this);
    const float s = n2 > 0.0f ? 2.0f / n2 : 0.0f;
    const float xx = x * x * s, yy = y * y * s, zz = z * z * s;
    const float xy = x * y * s, xz = x * z * s, yz = y * z * s;
    const float wx = w * x * s, wy = w * y * s, wz = w * z * s;
    Mat3f r;
    r(0, 0) = 1.0f - (yy + zz);
    r(0, 1) = xy - wz;
    r(0, 2) = xz + wy;
    r(1, 0) = xy + wz;
    r(1, 1) = 1.0f - (xx + zz);
    r(1, 2) = yz - wx;
    r(2, 0) = xz - wy;
    r(2, 1) = yz + wx;
    r(2, 2) = 1.0f - (xx + yy);
    return r;
  }

  Vec3f rotate(Vec3f v) const { return to_rotation_matrix() * v; }
};

}  // namespace sgs
