// Lloyd's k-means with k-means++ seeding over flat float vectors.
//
// Used to train the per-parameter-group codebooks of the paper's vector
// quantization (Sec. III-C). Deterministic for a given seed, independent of
// thread count (assignment parallelizes over points; centroid updates are
// serial).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sgs::vq {

struct KMeansConfig {
  std::uint32_t k = 256;
  int max_iters = 10;
  // Training subsample cap: k-means++ and Lloyd run on at most this many
  // points (the final assignment always covers all points). 0 = no cap.
  std::size_t max_train_samples = 65536;
  double tol = 1e-5;  // relative inertia improvement to keep iterating
  std::uint64_t seed = 42;
};

struct KMeansResult {
  std::size_t dim = 0;
  std::vector<float> centroids;           // k * dim
  std::vector<std::uint32_t> assignment;  // one per input point
  double inertia = 0.0;                   // sum of squared distances
  int iters_run = 0;
};

// data.size() must be a multiple of dim. Requires at least one point.
KMeansResult kmeans(std::span<const float> data, std::size_t dim,
                    const KMeansConfig& config);

// Nearest centroid index for a single vector (brute force).
std::uint32_t nearest_centroid(std::span<const float> centroids, std::size_t dim,
                               std::span<const float> v);

}  // namespace sgs::vq
