// End-to-end integration tests: preset scenes through both pipelines, the
// experiment harness, and the cross-model invariants of DESIGN.md §4.
#include <gtest/gtest.h>

#include "core/streaming_renderer.hpp"
#include "metrics/psnr.hpp"
#include "metrics/ssim.hpp"
#include "sim/experiment.hpp"

namespace sgs {
namespace {

sim::ExperimentConfig tiny_config(scene::ScenePreset p) {
  sim::ExperimentConfig cfg;
  cfg.preset = p;
  cfg.model_scale = 0.02f;
  cfg.resolution_scale = 0.25f;
  return cfg;
}

class PresetIntegration
    : public ::testing::TestWithParam<scene::ScenePreset> {};

TEST_P(PresetIntegration, FullPipelineInvariants) {
  sim::SceneExperiment exp(tiny_config(GetParam()));
  const auto& info = scene::preset_info(GetParam());

  // Reference render produced something visible.
  const auto& ref = exp.reference();
  EXPECT_GT(ref.trace.projected_count, 0u);
  EXPECT_GT(ref.trace.blend_ops, 0u);

  // Full streaming variant.
  auto full = exp.run_variant(sim::Variant::kFull);

  // Invariant: quality against the reference is reasonable at tiny scale.
  EXPECT_GT(full.psnr_vs_reference_db, 18.0) << info.name;
  EXPECT_GT(full.ssim_vs_reference, 0.55) << info.name;

  // Invariant: streaming DRAM traffic far below tile-centric.
  EXPECT_LT(full.stats.total_dram_bytes(), ref.trace.traffic.total() / 2);

  // Invariant: hierarchical filtering funnel is strictly ordered.
  EXPECT_LE(full.stats.fine_pass, full.stats.coarse_pass);
  EXPECT_LE(full.stats.coarse_pass, full.stats.gaussians_streamed);
  EXPECT_GT(full.stats.filtered_fraction(), 0.2) << info.name;

  // Invariant: the accelerator beats the GPU model and GSCore on time and
  // energy (Fig. 11 ordering), at every preset.
  const double gpu_s = exp.gpu().report.seconds;
  EXPECT_GT(gpu_s / full.accel.seconds, 4.0) << info.name;
  EXPECT_GT(exp.gscore().seconds, full.accel.seconds) << info.name;
  EXPECT_GT(exp.gpu().report.energy_mj(), full.accel.energy_mj());

  // Buffer capacity: the workload fits the paper's SRAM budget.
  const auto* qm = exp.streaming_scene(true).quantized();
  ASSERT_NE(qm, nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, PresetIntegration,
    ::testing::ValuesIn(scene::kAllPresets.begin(), scene::kAllPresets.end()),
    [](const ::testing::TestParamInfo<scene::ScenePreset>& info) {
      return scene::preset_info(info.param).name;
    });

TEST(Integration, VariantOrderingMatchesPaper) {
  // Fig. 11: StreamingGS > w/o CGF > w/o VQ+CGF in speedup; full design has
  // the lowest DRAM traffic.
  sim::SceneExperiment exp(tiny_config(scene::ScenePreset::kTrain));
  auto no_vq_cgf = exp.run_variant(sim::Variant::kNoVqNoCgf);
  auto no_cgf = exp.run_variant(sim::Variant::kNoCgf);
  auto full = exp.run_variant(sim::Variant::kFull);

  EXPECT_LT(full.accel.seconds, no_cgf.accel.seconds);
  EXPECT_LT(no_cgf.accel.seconds, no_vq_cgf.accel.seconds);
  EXPECT_LT(full.stats.total_dram_bytes(), no_cgf.stats.total_dram_bytes());
  EXPECT_LT(no_cgf.stats.total_dram_bytes(),
            no_vq_cgf.stats.total_dram_bytes());
  // Energy ordering follows traffic.
  EXPECT_LT(full.accel.energy_mj(), no_cgf.accel.energy_mj());
  EXPECT_LT(no_cgf.accel.energy_mj(), no_vq_cgf.accel.energy_mj());
}

TEST(Integration, VqQualityCost) {
  // VQ's image cost (vs the no-VQ streaming render) must be bounded: the
  // paper's quantization-aware codebooks lose almost nothing; ours are
  // k-means-only and allowed a few dB, but must stay visually close.
  sim::SceneExperiment exp(tiny_config(scene::ScenePreset::kPlayroom));
  auto raw = exp.run_variant(sim::Variant::kNoVqNoCgf);
  auto full = exp.run_variant(sim::Variant::kFull);
  EXPECT_GT(full.ssim_vs_reference, raw.ssim_vs_reference - 0.15);
}

TEST(Integration, StreamingSceneAccessors) {
  sim::SceneExperiment exp(tiny_config(scene::ScenePreset::kLego));
  const auto& scene_vq = exp.streaming_scene(true);
  EXPECT_NE(scene_vq.quantized(), nullptr);
  EXPECT_EQ(scene_vq.render_model().size(), exp.model().size());
  EXPECT_EQ(scene_vq.original_model().size(), exp.model().size());
  const auto& scene_raw = exp.streaming_scene(false);
  EXPECT_EQ(scene_raw.quantized(), nullptr);

  // Coarse max scale is decoded-aware under VQ.
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_FLOAT_EQ(scene_vq.coarse_max_scale(i),
                    scene_vq.render_model().gaussians[i].max_scale());
  }
}

TEST(Integration, SyntheticVsRealWorldStructure) {
  // Characterization sanity (paper Fig. 3/4): real-world scenes are heavier
  // than synthetic ones in absolute GPU frame time at equal scale factors.
  sim::SceneExperiment lego(tiny_config(scene::ScenePreset::kLego));
  sim::SceneExperiment truck(tiny_config(scene::ScenePreset::kTruck));
  EXPECT_GT(truck.model().size(), lego.model().size());
  EXPECT_GT(truck.gpu().report.seconds, lego.gpu().report.seconds);
}

TEST(Integration, VariantNameStrings) {
  EXPECT_STREQ(sim::variant_name(sim::Variant::kFull), "StreamingGS");
  EXPECT_STREQ(sim::variant_name(sim::Variant::kNoCgf), "w/o CGF");
  EXPECT_STREQ(sim::variant_name(sim::Variant::kNoVqNoCgf), "w/o VQ+CGF");
}

}  // namespace
}  // namespace sgs
