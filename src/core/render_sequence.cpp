#include "core/render_sequence.hpp"

#include <utility>

#include "obs/trace.hpp"
#include "stream/group_source.hpp"

namespace sgs::core {

SequenceRenderer::SequenceRenderer(const StreamingScene& scene,
                                   SequenceOptions options,
                                   stream::GroupSource* source)
    : scene_(&scene), options_(std::move(options)), source_(source) {}

StreamingRenderResult SequenceRenderer::render(const gs::Camera& camera) {
  SGS_TRACE_SPAN("frame", "frame");
  const std::uint64_t frame_t0 = stage_clock_ns();
  // Image-geometry changes invalidate the cached plan outright: a plan
  // binned for other dimensions or intrinsics must never be reused (the
  // scheduler would reject it), and it cannot become valid again later.
  if (plan_.has_value()) {
    const gs::Camera& pc = plan_->camera();
    if (pc.width() != camera.width() || pc.height() != camera.height() ||
        pc.fx() != camera.fx() || pc.fy() != camera.fy() ||
        pc.cx() != camera.cx() || pc.cy() != camera.cy()) {
      plan_.reset();
      ++stats_.plans_invalidated_geometry;
    }
  }

  const bool reuse =
      plan_.has_value() &&
      plan_->reusable_for(camera, options_.reuse_max_translation,
                          options_.reuse_max_rotation_rad);
  std::uint64_t plan_ns = 0;
  if (!reuse) {
    SGS_TRACE_SPAN("stage", "plan");
    plan_ = FramePlan::build_timed(scene_->grid(), camera,
                                   scene_->config().group_size,
                                   options_.plan_margin_px,
                                   options_.render.collect_stage_timing,
                                   plan_ns);
    ++stats_.plans_built;
    if (source_ != nullptr) {
      plan_working_set_ = plan_->collect_unique_candidates();
    }
  } else {
    ++stats_.plans_reused;
  }

  // Out-of-core bracket: hand the source the camera, the expected
  // inter-frame motion (the reuse envelope), and the plan's candidate set —
  // it pins the working set and prefetches ahead while the frame renders.
  StreamCacheStats before;
  if (source_ != nullptr) {
    // Snapshot BEFORE begin_frame: synchronous prefetch happens inside it,
    // and that traffic belongs to this frame's delta (the simulator prices
    // trace.cache.bytes_fetched — dropping prefetches would make a better
    // prefetcher look like less fetch traffic).
    before = source_->stats();
    stream::FrameIntent intent;
    intent.camera = &camera;
    intent.motion_translation = options_.reuse_max_translation;
    intent.motion_rotation_rad = options_.reuse_max_rotation_rad;
    intent.fetch_deadline_ns = options_.fetch_deadline_ns;
    source_->begin_frame(intent, plan_working_set_);
  }

  StreamingRenderResult result =
      scheduler_.render_frame(*scene_, camera, *plan_, options_.render,
                              source_);
  result.trace.plan_reused = reuse;
  result.trace.plan_build_ns = plan_ns;
  if (reuse) {
    // The voxel table was not rebuilt this frame: the VSU is charged zero
    // table steps, which is exactly the reuse win the sim sees.
    result.trace.voxel_table_steps = 0;
  }

  if (source_ != nullptr) {
    source_->end_frame();
    result.trace.cache = source_->stats().delta_since(before);
  }
  result.frame_wall_ns = stage_clock_ns() - frame_t0;
  return result;
}

SequenceResult render_sequence(const StreamingScene& scene,
                               const std::vector<gs::Camera>& cameras,
                               const SequenceOptions& options,
                               stream::GroupSource* source) {
  SequenceRenderer renderer(scene, options, source);
  SequenceResult out;
  out.frames.reserve(cameras.size());
  for (const gs::Camera& cam : cameras) {
    out.frames.push_back(renderer.render(cam));
  }
  out.stats = renderer.stats();
  return out;
}

}  // namespace sgs::core
