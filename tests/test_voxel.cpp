// Tests for the voxel substrate: grid partitioning, renaming table, DDA
// traversal properties, DRAM layout accounting.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.hpp"
#include "gs/camera.hpp"
#include "scene/generator.hpp"
#include "voxel/dda.hpp"
#include "voxel/grid.hpp"
#include "voxel/layout.hpp"

namespace sgs::voxel {
namespace {

gs::GaussianModel small_model(std::size_t n, std::uint64_t seed,
                              float extent = 4.0f) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = n;
  cfg.extent_min = Vec3f::splat(-extent);
  cfg.extent_max = Vec3f::splat(extent);
  cfg.seed = seed;
  return scene::generate_scene(cfg);
}

// ------------------------------------------------------------------- grid --

TEST(Grid, PartitionComplete) {
  const auto model = small_model(5000, 1);
  const VoxelGrid grid = VoxelGrid::build(model, 1.0f);
  EXPECT_EQ(grid.gaussian_count(), model.size());

  // Every Gaussian appears exactly once across all voxels.
  std::vector<int> seen(model.size(), 0);
  for (DenseVoxelId v = 0; v < grid.voxel_count(); ++v) {
    for (std::uint32_t gi : grid.gaussians_in(v)) {
      ASSERT_LT(gi, model.size());
      ++seen[gi];
      EXPECT_EQ(grid.voxel_of_gaussian(gi), v);
    }
  }
  for (std::size_t i = 0; i < model.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(Grid, GaussiansLandInContainingVoxel) {
  const auto model = small_model(2000, 2);
  const VoxelGrid grid = VoxelGrid::build(model, 0.7f);
  for (std::size_t i = 0; i < model.size(); ++i) {
    const Vec3i c = grid.coord_of_point(model.gaussians[i].position);
    const DenseVoxelId d = grid.dense_of_raw(grid.raw_id(c));
    EXPECT_EQ(d, grid.voxel_of_gaussian(static_cast<std::uint32_t>(i)));
    // The position must geometrically lie inside the voxel box.
    const Vec3f lo = grid.voxel_min_corner(d);
    const Vec3f hi = lo + Vec3f::splat(grid.config().voxel_size);
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(model.gaussians[i].position[a], lo[a] - 1e-4f);
      EXPECT_LE(model.gaussians[i].position[a], hi[a] + 1e-4f);
    }
  }
}

TEST(Grid, RenamingIsBijectionOntoNonEmpty) {
  const auto model = small_model(3000, 3);
  const VoxelGrid grid = VoxelGrid::build(model, 1.3f);

  std::set<RawVoxelId> raw_seen;
  for (DenseVoxelId d = 0; d < grid.voxel_count(); ++d) {
    const RawVoxelId r = grid.raw_of_dense(d);
    EXPECT_TRUE(raw_seen.insert(r).second) << "duplicate raw id";
    EXPECT_EQ(grid.dense_of_raw(r), d);
    EXPECT_FALSE(grid.gaussians_in(d).empty()) << "dense voxel must be non-empty";
  }
  // All raw voxels not in the map must be empty.
  std::int64_t empty_count = 0;
  for (RawVoxelId r = 0; r < grid.raw_voxel_count(); ++r) {
    if (grid.dense_of_raw(r) == kInvalidDenseId) ++empty_count;
  }
  EXPECT_EQ(empty_count + grid.voxel_count(), grid.raw_voxel_count());
}

TEST(Grid, CoordRawRoundTrip) {
  const auto model = small_model(100, 4);
  const VoxelGrid grid = VoxelGrid::build(model, 0.9f);
  const Vec3i dims = grid.config().dims;
  for (std::int32_t z = 0; z < dims.z; ++z) {
    for (std::int32_t y = 0; y < dims.y; ++y) {
      for (std::int32_t x = 0; x < dims.x; ++x) {
        const Vec3i c{x, y, z};
        EXPECT_EQ(grid.coord_of_raw(grid.raw_id(c)), c);
      }
    }
  }
}

TEST(Grid, OutOfRangeDenseLookupInvalid) {
  const auto model = small_model(100, 5);
  const VoxelGrid grid = VoxelGrid::build(model, 1.0f);
  EXPECT_EQ(grid.dense_of_raw(-1), kInvalidDenseId);
  EXPECT_EQ(grid.dense_of_raw(grid.raw_voxel_count()), kInvalidDenseId);
}

TEST(Grid, StreamingOrderIsVoxelContiguous) {
  // The CSR payload must list voxel 0's Gaussians, then voxel 1's, ... —
  // the contiguity the DRAM layout depends on.
  const auto model = small_model(1500, 6);
  const VoxelGrid grid = VoxelGrid::build(model, 1.1f);
  const auto order = grid.streaming_order();
  std::size_t cursor = 0;
  for (DenseVoxelId v = 0; v < grid.voxel_count(); ++v) {
    const auto span = grid.gaussians_in(v);
    for (std::size_t k = 0; k < span.size(); ++k) {
      EXPECT_EQ(order[cursor + k], span[k]);
    }
    cursor += span.size();
  }
  EXPECT_EQ(cursor, model.size());
}

TEST(Grid, CrossBoundaryDetection) {
  // The grid origin sits at the minimum Gaussian center, so voxel 0 spans
  // [~0.1, ~1.1) per axis here.
  gs::GaussianModel model;
  gs::Gaussian anchor;  // defines the origin corner
  anchor.position = {0.1f, 0.1f, 0.1f};
  anchor.scale = {0.3f, 0.01f, 0.01f};  // on the corner: always crossing
  gs::Gaussian inside;  // small splat near the middle of voxel 0
  inside.position = {0.6f, 0.6f, 0.6f};
  inside.scale = {0.01f, 0.01f, 0.01f};
  gs::Gaussian crossing;  // large splat reaching past the ~1.1 boundary
  crossing.position = {1.05f, 0.6f, 0.6f};
  crossing.scale = {0.1f, 0.01f, 0.01f};
  model.gaussians = {anchor, inside, crossing};
  const VoxelGrid grid = VoxelGrid::build(model, 1.0f);
  EXPECT_TRUE(grid.crosses_boundary(model.gaussians[0]));
  EXPECT_FALSE(grid.crosses_boundary(model.gaussians[1]));
  EXPECT_TRUE(grid.crosses_boundary(model.gaussians[2]));
  EXPECT_NEAR(grid.cross_boundary_ratio(model), 2.0 / 3.0, 1e-9);
}

TEST(Grid, VoxelSizeControlsVoxelCount) {
  const auto model = small_model(5000, 7);
  const VoxelGrid coarse = VoxelGrid::build(model, 4.0f);
  const VoxelGrid fine = VoxelGrid::build(model, 0.5f);
  EXPECT_LT(coarse.voxel_count(), fine.voxel_count());
  EXPECT_GT(fine.raw_voxel_count(), coarse.raw_voxel_count());
}

TEST(Grid, SingleGaussian) {
  gs::GaussianModel model;
  gs::Gaussian g;
  g.position = {1.0f, 2.0f, 3.0f};
  model.gaussians = {g};
  const VoxelGrid grid = VoxelGrid::build(model, 2.0f);
  EXPECT_EQ(grid.voxel_count(), 1);
  EXPECT_EQ(grid.gaussians_in(0).size(), 1u);
}

// -------------------------------------------------------------------- DDA --

class DdaProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DdaProperties, StepsAreFaceAdjacentAndMonotone) {
  Rng rng(GetParam());
  VoxelGridConfig cfg;
  cfg.origin = {-4.0f, -4.0f, -4.0f};
  cfg.voxel_size = 0.8f;
  cfg.dims = {10, 10, 10};

  for (int trial = 0; trial < 50; ++trial) {
    gs::Ray ray{rng.uniform_vec3(-8.0f, 8.0f), rng.unit_sphere()};
    std::vector<Vec3i> cells;
    std::vector<float> ts;
    traverse(ray, cfg, 1e30f, [&](Vec3i c, float t) {
      cells.push_back(c);
      ts.push_back(t);
      return true;
    });
    for (std::size_t i = 1; i < cells.size(); ++i) {
      // Exactly one axis changes by one per step (face adjacency).
      EXPECT_EQ(cells[i - 1].manhattan(cells[i]), 1)
          << cells[i - 1] << " -> " << cells[i];
      // Entry distances strictly increase (front-to-back order).
      EXPECT_GT(ts[i], ts[i - 1]);
    }
    // No cell is visited twice.
    std::set<std::tuple<int, int, int>> unique;
    for (const Vec3i& c : cells) {
      EXPECT_TRUE(unique.insert({c.x, c.y, c.z}).second);
    }
    // All visited cells are in bounds.
    for (const Vec3i& c : cells) {
      EXPECT_TRUE(c.x >= 0 && c.x < 10 && c.y >= 0 && c.y < 10 && c.z >= 0 &&
                  c.z < 10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DdaProperties,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(Dda, OriginInsideStartsAtContainingCell) {
  VoxelGridConfig cfg;
  cfg.origin = {0, 0, 0};
  cfg.voxel_size = 1.0f;
  cfg.dims = {8, 8, 8};
  const gs::Ray ray{{2.5f, 3.5f, 4.5f}, Vec3f{1, 0, 0}.normalized()};
  std::vector<Vec3i> cells;
  traverse(ray, cfg, 1e30f, [&](Vec3i c, float) {
    cells.push_back(c);
    return true;
  });
  ASSERT_FALSE(cells.empty());
  EXPECT_EQ(cells.front(), (Vec3i{2, 3, 4}));
  EXPECT_EQ(cells.back(), (Vec3i{7, 3, 4}));  // exits through +x face
  EXPECT_EQ(cells.size(), 6u);
}

TEST(Dda, MissingRayVisitsNothing) {
  VoxelGridConfig cfg;
  cfg.origin = {0, 0, 0};
  cfg.voxel_size = 1.0f;
  cfg.dims = {4, 4, 4};
  const gs::Ray ray{{10.0f, 10.0f, 10.0f}, Vec3f{1, 0, 0}.normalized()};
  bool visited = false;
  traverse(ray, cfg, 1e30f, [&](Vec3i, float) {
    visited = true;
    return true;
  });
  EXPECT_FALSE(visited);
}

TEST(Dda, AxisAlignedRayWithZeroComponents) {
  VoxelGridConfig cfg;
  cfg.origin = {0, 0, 0};
  cfg.voxel_size = 1.0f;
  cfg.dims = {5, 5, 5};
  // Direction has two exact zeros — the slab/step logic must not divide by 0.
  const gs::Ray ray{{-1.0f, 2.5f, 2.5f}, {1.0f, 0.0f, 0.0f}};
  std::vector<Vec3i> cells;
  traverse(ray, cfg, 1e30f, [&](Vec3i c, float) {
    cells.push_back(c);
    return true;
  });
  EXPECT_EQ(cells.size(), 5u);
  for (const auto& c : cells) {
    EXPECT_EQ(c.y, 2);
    EXPECT_EQ(c.z, 2);
  }
}

TEST(Dda, MaxTLimitsTraversal) {
  VoxelGridConfig cfg;
  cfg.origin = {0, 0, 0};
  cfg.voxel_size = 1.0f;
  cfg.dims = {100, 3, 3};
  const gs::Ray ray{{0.5f, 1.5f, 1.5f}, {1.0f, 0.0f, 0.0f}};
  std::vector<Vec3i> cells;
  traverse(ray, cfg, 5.0f, [&](Vec3i c, float) {
    cells.push_back(c);
    return true;
  });
  EXPECT_LE(cells.size(), 7u);
  EXPECT_GE(cells.size(), 5u);
}

TEST(Dda, EarlyStopViaCallback) {
  VoxelGridConfig cfg;
  cfg.origin = {0, 0, 0};
  cfg.voxel_size = 1.0f;
  cfg.dims = {50, 3, 3};
  const gs::Ray ray{{0.5f, 1.5f, 1.5f}, {1.0f, 0.0f, 0.0f}};
  int count = 0;
  traverse(ray, cfg, 1e30f, [&](Vec3i, float) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST(Dda, IntersectedVoxelsSkipsEmpties) {
  // Two occupied voxels far apart along x; the ray crosses both plus many
  // empty cells. Only the dense IDs must be returned, in order.
  gs::GaussianModel model;
  gs::Gaussian a, b;
  a.position = {0.5f, 0.5f, 0.5f};
  b.position = {7.5f, 0.5f, 0.5f};
  model.gaussians = {a, b};
  const VoxelGrid grid = VoxelGrid::build(model, 1.0f);
  ASSERT_EQ(grid.voxel_count(), 2);

  const gs::Ray ray{{-2.0f, 0.5f, 0.5f}, {1.0f, 0.0f, 0.0f}};
  DdaStats stats;
  const auto ids = intersected_voxels(ray, grid, 1e30f, &stats);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], grid.voxel_of_gaussian(0));
  EXPECT_EQ(ids[1], grid.voxel_of_gaussian(1));
  EXPECT_GT(stats.steps, stats.non_empty);
}

// ------------------------------------------------------------------ layout --

TEST(Layout, RecordSizesMatchPaper) {
  // Coarse: 4 float32 (x, y, z, s). Fine raw: 55 float32. Fine VQ: four
  // uint16 indices + float opacity.
  EXPECT_EQ(kCoarseRecordBytes, 16u);
  EXPECT_EQ(kFineRecordRawBytes, 220u);
  EXPECT_EQ(kFineRecordVqBytes, 12u);
}

TEST(Layout, OffsetsArePrefixSums) {
  const auto model = small_model(2000, 9);
  const VoxelGrid grid = VoxelGrid::build(model, 1.0f);
  const DataLayout raw(grid, false);
  const DataLayout vq(grid, true);

  std::uint64_t coarse = 0, fine_raw = 0, fine_vq = 0;
  for (DenseVoxelId v = 0; v < grid.voxel_count(); ++v) {
    EXPECT_EQ(raw.span(v).coarse_offset, coarse);
    EXPECT_EQ(raw.span(v).fine_offset, fine_raw);
    EXPECT_EQ(vq.span(v).fine_offset, fine_vq);
    const std::uint64_t n = raw.span(v).count;
    EXPECT_EQ(n, grid.gaussians_in(v).size());
    coarse += n * kCoarseRecordBytes;
    fine_raw += n * kFineRecordRawBytes;
    fine_vq += n * kFineRecordVqBytes;
  }
  EXPECT_EQ(raw.coarse_stream_bytes(), coarse);
  EXPECT_EQ(raw.fine_stream_bytes(), fine_raw);
  EXPECT_EQ(vq.fine_stream_bytes(), fine_vq);
}

TEST(Layout, VqCompressionRatioMatchesPaperBallpark) {
  // The paper reports 92.3% fine-stream traffic reduction from VQ; the
  // 12 B vs 220 B records give 94.5%.
  const double reduction = 1.0 - static_cast<double>(kFineRecordVqBytes) /
                                     static_cast<double>(kFineRecordRawBytes);
  EXPECT_GT(reduction, 0.90);
  EXPECT_LT(reduction, 0.97);
}

TEST(Layout, TotalBytesScaleWithModel) {
  const auto small = small_model(500, 10);
  const auto large = small_model(5000, 10);
  const DataLayout ls(VoxelGrid::build(small, 1.0f), true);
  const DataLayout ll(VoxelGrid::build(large, 1.0f), true);
  EXPECT_GT(ll.total_bytes(), ls.total_bytes());
  EXPECT_EQ(ls.coarse_stream_bytes(), 500u * kCoarseRecordBytes);
  EXPECT_EQ(ll.coarse_stream_bytes(), 5000u * kCoarseRecordBytes);
}

}  // namespace
}  // namespace sgs::voxel
