// Shared fault-injection helpers for the failure-domain tests
// (test_stream.cpp, test_serve.cpp, test_network.cpp). The on-disk VQ
// record layout this encodes — pos3 + opacity floats (16 bytes), then the
// scale codebook index u16 — lives HERE and nowhere else in the test tree,
// so a layout change cannot leave one suite silently poisoning the wrong
// byte. FaultInjectingBackend is the transport-level counterpart: it
// injects faults per byte-range on the FetchBackend seam instead of
// corrupting the file, so a test can target one group's transfer phase
// without touching any other reader of the store.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stream/asset_store.hpp"
#include "stream/fetch_backend.hpp"

namespace sgs::stream::faulttest {

// Copies src over dst (pristine bytes back in place, or a corpus variant).
inline void copy_file(const std::string& src, const std::string& dst) {
  std::ifstream in(src, std::ios::binary);
  std::ofstream out(dst, std::ios::binary);
  out << in.rdbuf();
}

// Overwrites the scale codebook index of group v's first tier-`tier`
// record with 0xFFFF — out of every test codebook's range, so the decode
// fails with a typed kCorruptPayload. VQ stores only.
inline void poison_vq_group(const std::string& path, const AssetStore& store,
                            voxel::DenseVoxelId v, int tier = 0) {
  const TierExtent& e = store.tier_extent(v, tier);
  ASSERT_GT(e.count, 0u);
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(f));
  f.seekp(static_cast<std::streamoff>(e.offset + 16));
  const std::uint16_t bad = 0xFFFF;
  f.write(reinterpret_cast<const char*>(&bad), 2);
  ASSERT_TRUE(static_cast<bool>(f));
}

// The group with the most residents: on an origin-centered scene with an
// origin-orbiting camera this is essentially guaranteed to be streamed.
inline voxel::DenseVoxelId densest_group(const AssetStore& store) {
  voxel::DenseVoxelId best = 0;
  for (voxel::DenseVoxelId v = 0; v < store.group_count(); ++v) {
    if (store.entry(v).count > store.entry(best).count) best = v;
  }
  return best;
}

// Transport-level fault injection on the FetchBackend seam: arms faults
// against byte ranges of the store, so a test can fail exactly one group's
// (or one tier's) transfers — at any phase, open-time metadata included —
// without corrupting the file other readers share. Each armed range fires
// for a bounded number of overlapping requests, which makes retry/backoff
// counting exact: arm count = N, and the (N+1)-th transfer succeeds.
class FaultInjectingBackend final : public FetchBackend {
 public:
  enum class Fault : std::uint8_t {
    // The transfer is lost: kNetTimeout, origin never touched.
    kTimeout,
    // Half the requested bytes arrive, then kIoRead — the honest partial.
    kPartial,
    // The LYING backend: reports success but delivers only half the bytes.
    // Exists to prove the store's own length check catches a transport
    // that under-delivers without admitting it (kIoRead with group+tier,
    // never a decode error on the garbage tail).
    kShortRead,
  };

  explicit FaultInjectingBackend(std::shared_ptr<FetchBackend> origin)
      : origin_(std::move(origin)) {}

  // Arms `fault` for the next `count` read_range calls whose span overlaps
  // [lo, hi). Earlier-armed ranges win when several overlap one request.
  void fault_range(std::uint64_t lo, std::uint64_t hi, Fault fault,
                   int count = 1) {
    std::lock_guard<std::mutex> lk(mutex_);
    arms_.push_back(Arm{lo, hi, fault, count});
  }

  // Requests that hit an armed fault so far.
  std::uint64_t faults_fired() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return fired_;
  }

  StreamResult<FetchInfo> read_range(std::uint64_t offset,
                                     std::span<char> dst) override {
    const std::uint64_t want = dst.size();
    Fault fault = Fault::kTimeout;
    bool hit = false;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      ++stats_.requests;
      for (Arm& a : arms_) {
        if (a.remaining > 0 && offset < a.hi && offset + want > a.lo) {
          --a.remaining;
          ++fired_;
          fault = a.fault;
          hit = true;
          break;
        }
      }
    }
    if (!hit) {
      StreamResult<FetchInfo> r = origin_->read_range(offset, dst);
      std::lock_guard<std::mutex> lk(mutex_);
      if (r.ok()) {
        stats_.bytes += r.value().bytes;
        stats_.busy_ns += r.value().elapsed_ns;
      }
      return r;
    }
    if (fault == Fault::kTimeout) {
      std::lock_guard<std::mutex> lk(mutex_);
      ++stats_.timeouts;
      return StreamError{StreamErrorKind::kNetTimeout, -1, -1,
                         "injected timeout at offset " +
                             std::to_string(offset)};
    }
    // kPartial and kShortRead both deliver a prefix...
    const std::uint64_t half = want / 2;
    if (half > 0) {
      StreamResult<FetchInfo> inner =
          origin_->read_range(offset, dst.subspan(0, half));
      if (!inner.ok()) return inner.take_error();
    }
    if (fault == Fault::kPartial) {
      std::lock_guard<std::mutex> lk(mutex_);
      ++stats_.partial_reads;
      return StreamError{StreamErrorKind::kIoRead, -1, -1,
                         "injected partial transfer: " +
                             std::to_string(half) + " of " +
                             std::to_string(want) + " bytes at offset " +
                             std::to_string(offset)};
    }
    // ...but kShortRead claims the transfer succeeded.
    return FetchInfo{half, 0};
  }

  std::uint64_t size() const override { return origin_->size(); }
  std::optional<StreamError> open_error() const override {
    return origin_->open_error();
  }
  std::string describe() const override {
    return "faulty(" + origin_->describe() + ")";
  }
  FetchBackendStats stats() const override {
    std::lock_guard<std::mutex> lk(mutex_);
    return stats_;
  }

 private:
  struct Arm {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    Fault fault = Fault::kTimeout;
    int remaining = 0;
  };

  std::shared_ptr<FetchBackend> origin_;
  mutable std::mutex mutex_;
  std::vector<Arm> arms_;
  std::uint64_t fired_ = 0;
  FetchBackendStats stats_;
};

}  // namespace sgs::stream::faulttest
