#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace sgs {

namespace {
int g_parallelism = 0;  // 0 = uninitialized, resolve lazily
}

int parallelism() {
  if (g_parallelism <= 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    g_parallelism = hc > 0 ? static_cast<int>(hc) : 1;
  }
  return g_parallelism;
}

void set_parallelism(int n) { g_parallelism = std::max(1, n); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const int workers = std::min<std::size_t>(static_cast<std::size_t>(parallelism()), count);
  if (workers <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Work-stealing over a shared atomic counter: cheap and load-balanced for
  // the skewed per-tile costs typical of splatting.
  std::atomic<std::size_t> next{begin};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int t = 0; t < workers; ++t) {
    pool.emplace_back([&next, end, &fn] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        fn(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace sgs
