// Reference tile-centric renderer: the original 3DGS pipeline
// (projection -> global sort -> per-tile alpha blending), paper Sec. II-A.
//
// This is both the image-quality reference for the streaming pipeline and
// the workload model for the GPU / GSCore baselines: alongside the image it
// produces a TileCentricTrace with exact operation and DRAM byte counts.
#pragma once

#include "common/image.hpp"
#include "gs/camera.hpp"
#include "gs/gaussian.hpp"
#include "render/trace.hpp"

namespace sgs::render {

struct TileRenderConfig {
  int tile_size = 16;
  Vec3f background{0.0f, 0.0f, 0.0f};
  TileCentricRecordSizes record_sizes;
};

struct TileRenderResult {
  Image image;
  TileCentricTrace trace;
};

TileRenderResult render_tile_centric(const gs::GaussianModel& model,
                                     const gs::Camera& camera,
                                     const TileRenderConfig& config = {});

}  // namespace sgs::render
