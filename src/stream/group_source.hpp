// GroupSource: where the renderer gets a voxel group's Gaussians from.
//
// The staged pipeline (core/group_pipeline.hpp) consumes voxel groups — the
// residents of one dense voxel, decoded to full Gaussians — but does not
// care whether they live in a fully-resident GaussianModel or are paged in
// from an on-disk asset store (stream/asset_store.hpp) through a residency
// cache. This interface is that seam:
//
//   ResidentGroupSource — wraps a prepared StreamingScene; acquire() is a
//     pointer view into render_model(), no copies, no bookkeeping. This is
//     the implicit source every pre-existing call site uses.
//   ResidencyCache / StreamingLoader (their own headers) — cache-backed
//     sources that fetch and decode groups on demand under a byte budget.
//
// Contract: acquire() may be called concurrently from any pool worker; the
// returned view stays valid until the matching release() (cache sources pin
// the group in between). begin_frame()/end_frame() bracket one rendered
// frame: the source learns the camera, the caller's expected inter-frame
// motion envelope, and the FramePlan's candidate voxels — everything a
// prefetcher needs to fetch ahead and everything a cache needs to pin the
// in-flight working set.
#pragma once

#include <span>

#include "core/streaming_renderer.hpp"
#include "core/streaming_trace.hpp"
#include "gs/camera.hpp"
#include "gs/gaussian.hpp"
#include "voxel/grid.hpp"

namespace sgs::stream {

// Read-only view of one voxel group's decoded residents.
//
// `model_indices[k]` is resident k's index in the original model (stats and
// violator collection use it). Parameter lookup depends on the backing
// storage: a resident scene keeps Gaussians in model order (`by_model_index`
// true — index with the model id, exactly the access the monolithic renderer
// performed), while a cache entry stores them densely in resident order
// (`by_model_index` false). gaussian()/max_scale() hide the difference.
struct GroupView {
  std::span<const std::uint32_t> model_indices;
  const gs::Gaussian* gaussians = nullptr;
  const float* coarse_max_scale = nullptr;
  bool by_model_index = true;

  std::size_t size() const { return model_indices.size(); }
  const gs::Gaussian& gaussian(std::size_t k) const {
    return gaussians[by_model_index ? model_indices[k] : k];
  }
  float max_scale(std::size_t k) const {
    return coarse_max_scale[by_model_index ? model_indices[k] : k];
  }
};

// What the frame driver knows when a frame starts; prefetchers rank
// non-resident groups against the camera inflated by the motion envelope.
struct FrameIntent {
  const gs::Camera* camera = nullptr;
  // Expected camera drift before the *next* plan rebuild (the sequence
  // renderer's reuse envelope). Zero means single-frame rendering.
  float motion_translation = 0.0f;
  float motion_rotation_rad = 0.0f;
};

class GroupSource {
 public:
  virtual ~GroupSource() = default;

  // Brackets one frame. `plan_voxels` are the FramePlan's candidate voxels
  // (sorted, unique): a cache pins them against eviction for the duration
  // of the frame, a prefetcher seeds its ranking with them. Default: no-op.
  virtual void begin_frame(const FrameIntent& intent,
                           std::span<const voxel::DenseVoxelId> plan_voxels);
  virtual void end_frame();

  // Group data for dense voxel `v`; valid until release(v) from the same
  // caller. Thread-safe.
  virtual GroupView acquire(voxel::DenseVoxelId v) = 0;
  virtual void release(voxel::DenseVoxelId v) = 0;

  // Cumulative cache/fetch counters since construction (all-zero for
  // resident sources). The frame driver diffs snapshots around a frame to
  // fill StreamingTrace::cache.
  virtual core::StreamCacheStats stats() const;
};

// The fully-resident path: views into a prepared StreamingScene. acquire
// and release are trivially reentrant and frame brackets are no-ops.
class ResidentGroupSource final : public GroupSource {
 public:
  explicit ResidentGroupSource(const core::StreamingScene& scene);

  GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId) override {}

 private:
  const core::StreamingScene* scene_;
};

}  // namespace sgs::stream
