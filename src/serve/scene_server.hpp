// SceneServer: N scenes behind per-scene residency shards, M viewer
// sessions multiplexed onto the persistent pool, admission-controlled.
//
// The paper's streaming design assumes a single viewer; a server room does
// not. A SceneServer hosts one or more AssetStore-backed scenes — each with
// its own thread-safe ResidencyCache shard, all shards governed by ONE
// global byte budget — and any number of sessions, each a SequenceRenderer
// driving its own camera path through its own SessionSource front-end over
// its scene's shard. Sessions of one scene share that scene's decoded
// voxel groups: a group fetched for one viewer serves every viewer of that
// scene, eviction respects the union of all in-flight working sets
// (refcounted plan pins), and all sessions' prefetch rankings merge into
// one deduplicated fetch queue keyed by (scene, group, tier).
//
// The load-bearing invariant: a session's rendered frames are bit-identical
// to rendering the same camera path alone *under the same LodPolicy, with
// adaptive tiers requested deterministically* (tier selection is a pure
// function of the session's camera and policy — never of shared cache
// state). Sharing the cache changes who pays which fetch and when — never
// a pixel — on single-tier stores or with lod.force_tier0; with adaptive
// tiers on a multi-tier store, a frame may be served a better-than-
// requested tier that happens to be resident, so the guarantee relaxes to
// the PSNR bound of the store's tiers (tests/test_serve.cpp pins the
// bit-exact cases down for raw and VQ stores).
//
// Threading model (the frame-granular state machine):
//   - Each session is a state machine over its frames:
//       ready -> planning -> rendering -> committing -> ready   (-> closed)
//     kReady: no frame in flight. kPlanning: a driver holds the session,
//     the plan is being built/reused and tiers selected. kRendering: from
//     SessionSource::begin_frame() on — the frame executes data-parallel
//     on the pool. kCommitting: from end_frame() — pins dropped, counters
//     and histograms folded in. kClosed: close_session() was called.
//   - run() does NOT spawn one thread per session. It multiplexes sessions
//     over a bounded driver set (config.max_concurrent_frames, 0 = auto:
//     min(paths, parallelism())). Ready sessions queue FIFO; a driver pops
//     one, renders exactly ONE frame, and re-queues it — so session count
//     is bounded by memory, not by core count, and no session can starve
//     another (the fairness contract; ServerReport::fairness_index
//     measures it, ServerReport::queue_wait_* prices it). One session is
//     never held by two drivers, so its frames stay sequential and the
//     bit-exactness invariant is untouched.
//   - render_frame() is safe to call concurrently for *distinct* sessions.
//     One session is sequential: its frames form one camera path.
//   - open_session()/try_open_session()/close_session() are thread-safe
//     against concurrent render_frame()/run(): registration takes the
//     session-table lock, the frame path resolves its session pointer
//     under the same lock, and Session storage is pointer-stable. Sessions
//     may join a running server.
//   - Admission: config.max_sessions caps OPEN sessions (0 = unlimited).
//     Over-cap or unknown-scene opens are rejected atomically — a typed
//     AdmissionResult from try_open_session(), an AdmissionRejectedError
//     from open_session(), never a partial registration — and counted in
//     ServerReport::admission_rejects.
//   - Shard rebalancing: every config.shard_rebalance_frames committed
//     frames, the governor re-splits the global cache budget across the
//     scene shards by demand (EWMA of each shard's access+prefetch delta),
//     with a per-shard floor share. Shrinks apply before grows, so the sum
//     of shard budgets never exceeds the global budget — not even
//     mid-rebalance — and coarse-floor arenas are exempt (they live under
//     their own per-shard budget).
//   - Per-session cache counters (SessionReport::cache) attribute every
//     hit, demand miss, and prefetched byte to the session that caused it;
//     a scene shard's global counters are the sum over that scene's
//     sessions plus evictions, and ServerReport::shared_cache is the sum
//     over shards.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "obs/metrics.hpp"
#include "stream/asset_store.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace sgs::serve {

// Frame-granular session state (see the threading model above). Stored in
// one atomic per session; transitions are made by the single driver that
// holds the session, so observers see a consistent (if instantaneous)
// snapshot.
enum class SessionState : std::uint8_t {
  kReady = 0,    // no frame in flight
  kPlanning,     // driver holds the session; plan build / tier selection
  kRendering,    // begin_frame() done; frame executing on the pool
  kCommitting,   // end_frame() reached; pins dropped, stats folding in
  kClosed,       // close_session() was called; renders are rejected
};
const char* session_state_name(SessionState s);

// Why an open was refused. Admission is atomic: a rejected open leaves the
// server exactly as it was — no partial registration, ever.
enum class AdmissionRejectReason : std::uint8_t {
  kSessionCapReached = 0,  // open sessions == config.max_sessions
  kUnknownScene,           // scene index >= scene_count()
};
const char* admission_reject_reason_name(AdmissionRejectReason r);

// Typed admission outcome of try_open_session(). `session` is valid only
// when `admitted`.
struct AdmissionResult {
  int session = -1;
  bool admitted = false;
  AdmissionRejectReason reason = AdmissionRejectReason::kSessionCapReached;
};

// Thrown by the throwing open_session() overloads on a rejected admission.
class AdmissionRejectedError : public std::runtime_error {
 public:
  explicit AdmissionRejectedError(AdmissionRejectReason reason)
      : std::runtime_error(std::string("session admission rejected: ") +
                           admission_reject_reason_name(reason)),
        reason_(reason) {}
  AdmissionRejectReason reason() const { return reason_; }

 private:
  AdmissionRejectReason reason_;
};

// Per-session front-end over one scene shard's cache and the server's
// shared fetch queue: the GroupSource a session's SequenceRenderer renders
// through.
//
// Frame bracket contract: begin_frame() selects this session's payload
// tiers for the plan under its own LodPolicy (each session carries its own
// quality knob over the one shared cache), pins the session's plan working
// set (refcounted in the shard — other sessions' pins on the same groups
// are independent), and enqueues the session's prefetch ranking into the
// shared queue under its scene key; end_frame() drops exactly the pins
// this session took. acquire()/release() pass through to the shard with
// per-session attribution, requesting the frame's selected tier per group.
// acquire() may be called concurrently from any pool worker; stats()
// returns this session's counters only (thread-safe).
//
// When bound to a session state slot, begin_frame() flips it to
// kRendering on exit and end_frame() to kCommitting on entry — the two
// state-machine edges only the source can see.
class SessionSource final : public stream::GroupSource {
 public:
  SessionSource(stream::ResidencyCache& cache,
                stream::SharedPrefetchQueue& queue,
                stream::LodPolicy lod = {}, std::uint32_t scene = 0,
                std::atomic<SessionState>* state = nullptr);

  void begin_frame(const stream::FrameIntent& intent,
                   std::span<const voxel::DenseVoxelId> plan_voxels) override;
  void end_frame() override;
  stream::GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId v) override;
  core::StreamCacheStats stats() const override;

  // Deadline support (zero-stall serving): begin_frame resolves the
  // intent's (or the queue config's) relative fetch budget to an absolute
  // stage-clock deadline; an acquire that would still be fetching past it
  // is served from the shard's coarse floor instead of blocking. The first
  // floor-serve of each (frame, group) increments this session's AND the
  // shard's coarse_fallbacks — so per-session counters sum exactly to the
  // global one — and re-queues the wanted tier at kUrgentPriority on the
  // shared queue.
  //
  // Frames whose tier selection was demoted below the footprint-ideal tier
  // by the policy's byte budget — the "quality gave way to bandwidth"
  // signal a server operator watches.
  std::size_t degraded_frames() const { return degraded_frames_; }
  // Plan-group tier requests accumulated over all frames.
  const std::array<std::uint64_t, core::kLodTierCount>& tier_requests() const {
    return tier_requests_;
  }
  const stream::LodPolicy& lod() const { return lod_; }
  // Scene this session streams (index into its server's shard set).
  std::uint32_t scene() const { return scene_; }
  // This session's measured link estimate (EWMA over the transfers its
  // demand misses and credited prefetches completed). When the session's
  // policy enables the ABR term, begin_frame folds this into tier
  // selection and the shared queue's prefetch byte cap — each session
  // adapts to the link IT measured, over the one shared cache.
  double estimated_bandwidth_bps() const {
    return session_stats_.estimated_bandwidth_bps();
  }

 private:
  stream::ResidencyCache* cache_;
  stream::SharedPrefetchQueue* queue_;
  stream::LodPolicy lod_;
  std::uint32_t scene_ = 0;
  std::atomic<SessionState>* state_ = nullptr;  // nullable; not owned
  stream::TierSelection selection_;  // current frame's tier per group
  stream::SessionCacheStats session_stats_;
  std::vector<voxel::DenseVoxelId> pinned_;  // this session's frame pins
  std::array<std::uint64_t, core::kLodTierCount> tier_requests_{};
  std::size_t degraded_frames_ = 0;
  // This frame's absolute demand-fetch deadline (kNoFetchDeadline = block).
  std::uint64_t frame_deadline_ns_ = stream::kNoFetchDeadline;
  // Groups already served from the coarse floor this frame: acquire() runs
  // concurrently on pool workers, but the fallback count and urgent
  // re-queue must fire once per (frame, group).
  std::mutex fallback_mutex_;
  std::unordered_set<voxel::DenseVoxelId> fallback_seen_;
};

struct SceneServerConfig {
  // GLOBAL cache budget — split across the per-scene shards by the
  // rebalancing governor (equal shares at construction); for a single
  // scene, simply that scene's budget. The shard floor arenas
  // (cache.coarse_floor_budget_bytes) are per-shard and exempt.
  stream::ResidencyCacheConfig cache;
  // Per-frame prefetch caps applied to each session's enqueue.
  stream::PrefetchConfig prefetch;
  // Sequence options every session renders with (plan reuse envelope,
  // binning margin, render options).
  core::SequenceOptions sequence;
  // Quality policy sessions open with unless open_session() is given their
  // own — each session streams its scene at its own fidelity. On a
  // single-tier (v1) store every policy degenerates to L0.
  stream::LodPolicy lod;
  // Admission cap on OPEN sessions (0 = unlimited). Opens past the cap are
  // rejected with AdmissionRejectReason::kSessionCapReached.
  std::size_t max_sessions = 0;
  // Frames in flight at once under run() — the driver count of the
  // multiplexed scheduler (0 = auto: min(session count, parallelism())).
  // Session count itself is NOT bounded by this; idle sessions wait in the
  // ready queue, not on a thread each.
  int max_concurrent_frames = 0;
  // Rebalance the shard budgets every this many committed frames
  // (multi-scene servers only; 0 disables rebalancing and keeps the
  // construction-time equal split).
  std::uint64_t shard_rebalance_frames = 16;
};

// Aggregated per-session outcome (latency in wall-clock milliseconds).
// Percentiles come from a fixed-bucket log-scale obs::LogHistogram over
// frame nanoseconds — O(1) memory per session regardless of frame count,
// each quantile overstating its sample by at most 12.5% (never under).
struct SessionReport {
  std::size_t frames = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  obs::LogHistogram latency;  // frame wall time in ns, all frames
  core::StreamCacheStats cache;  // session-attributed; evictions always 0.
                                 // Failure attribution rides here too:
                                 // cache.fetch_errors / degraded_groups /
                                 // failed_groups (distinct bad groups this
                                 // session touched) — a poisoned group
                                 // shows up ONLY in the sessions that
                                 // actually streamed it.
  // Scene this session streams and its state at report time.
  std::uint32_t scene = 0;
  SessionState state = SessionState::kReady;
  // Scheduler cost: time this session's frames sat in run()'s ready queue
  // before a driver picked them up (0 for frames driven directly through
  // render_frame()). Total and per-frame histogram.
  std::uint64_t queue_wait_ns = 0;
  obs::LogHistogram queue_wait;
  // Frames per second over the wall-clock span run() drove this session
  // (first enqueue to last commit; 0 when never driven by run()). The
  // per-session sample the fairness index is computed over.
  double throughput_fps = 0.0;
  std::size_t stall_frames = 0;  // frames with >= 1 demand miss
  // Frames with >= 1 group served from the shard's coarse floor because
  // its fetch missed the frame deadline. With a deadline and a floor in
  // force, stall_frames stays 0 and these frames carry the cost as bounded
  // quality loss instead of latency.
  std::size_t fallback_frames = 0;
  std::size_t plans_built = 0;
  std::size_t plans_reused = 0;
  // LOD: plan-group tier requests over all frames, and frames whose
  // selection was demoted below the footprint tier by the byte budget.
  std::array<std::uint64_t, core::kLodTierCount> tier_requests{};
  std::size_t degraded_frames = 0;
  // Frames that saw at least one fetch error or degraded (error-state)
  // serve. The session still completed every one of them — fault isolation
  // means a bad group costs pixels of one group, never the session.
  std::size_t error_frames = 0;
  // The session's link estimate at report time (0 = no transfer with a
  // non-zero duration completed yet — e.g. local disk, everything already
  // resident, or a perfect simulated link). ABR demotions it caused are in
  // cache.abr_demotions.
  double estimated_bandwidth_bps = 0.0;
};

struct ServerReport {
  std::vector<SessionReport> sessions;
  // Scenes hosted and, per scene, that shard's global cache counters and
  // its CURRENT budget share. scene_caches[k] (plus that scene's sessions'
  // abr_demotions) is the sum of scene-k sessions' counters plus
  // evictions; scene_budget_bytes sums exactly to the configured global
  // budget at every instant.
  std::size_t scenes = 1;
  std::vector<core::StreamCacheStats> scene_caches;
  std::vector<std::uint64_t> scene_budget_bytes;
  // The shard counters summed — the whole server's cache view (includes
  // evictions and every session's traffic).
  core::StreamCacheStats shared_cache;
  double global_hit_rate = 0.0;
  // Opens rejected by admission control (cap or unknown scene) over the
  // server's lifetime.
  std::uint64_t admission_rejects = 0;
  // Jain's fairness index over the per-session frame throughputs run()
  // measured: (sum x)^2 / (n * sum x^2), 1.0 = perfectly fair, 1/n = one
  // session got everything. 1.0 when fewer than two sessions have been
  // driven by run().
  double fairness_index = 1.0;
  // Prefetch requests served by another session's in-flight fetch — the
  // cross-session merge win of the shared queue.
  std::uint64_t merged_prefetch_requests = 0;
  // Latency across all sessions' frames (merge of the per-session
  // histograms; bucket-wise addition, so merged percentiles are computed
  // over the exact union of samples).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  obs::LogHistogram latency;
  // Scheduler ready-queue wait across all sessions' frames (the fairness
  // cost in time units; all-zero when run() was never used).
  double queue_wait_p50_ms = 0.0;
  double queue_wait_p95_ms = 0.0;
  double queue_wait_p99_ms = 0.0;
  obs::LogHistogram queue_wait;
  std::size_t stall_frames = 0;
  // Sum of the sessions' fallback_frames (coarse-floor deadline serves).
  std::size_t fallback_frames = 0;
  // Exceptions the async prefetch lane captured instead of terminating on
  // since this server was constructed (the lane's counter is process-wide;
  // the report scopes it to this server's lifetime — see
  // common/parallel.hpp). Non-zero means a background task itself threw —
  // distinct from fetch errors, which the cache absorbs before they ever
  // reach the lane.
  std::uint64_t async_lane_errors = 0;
};

struct ServerRunResult {
  // result.sessions[s][f] is session s's frame f — bit-identical to the
  // same path rendered alone.
  std::vector<std::vector<core::StreamingRenderResult>> sessions;
  ServerReport report;
};

class SceneServer {
 public:
  // Single-scene server (scene index 0). The store must outlive the
  // server; all parameters stream through the scene's shard under
  // config.cache.budget_bytes.
  explicit SceneServer(const stream::AssetStore& store,
                       SceneServerConfig config = {});
  // Multi-scene server: stores[k] becomes scene k with its own residency
  // shard; config.cache.budget_bytes is the GLOBAL budget the shards
  // share (equal split at construction, demand-rebalanced every
  // config.shard_rebalance_frames frames). Every store must outlive the
  // server. Throws std::invalid_argument on an empty or null-holding
  // store list.
  explicit SceneServer(const std::vector<const stream::AssetStore*>& stores,
                       SceneServerConfig config = {});
  ~SceneServer();

  // Opens a new viewer session on `scene` and returns its id (dense,
  // starting at 0; ids are never reused, so closed sessions keep their
  // slot in report()). Thread-safe, including against concurrent
  // render_frame()/run(). The no-policy overloads use config().lod.
  // Throws AdmissionRejectedError when admission refuses the open.
  int open_session();
  int open_session(const stream::LodPolicy& lod, std::uint32_t scene = 0);
  // Non-throwing admission path: the typed outcome of the same checks.
  // A reject is atomic (no partial registration) and counted in
  // admission_rejects().
  AdmissionResult try_open_session(std::uint32_t scene = 0);
  AdmissionResult try_open_session(const stream::LodPolicy& lod,
                                   std::uint32_t scene = 0);
  // Closes an open session: its slot (and counters) survive in report(),
  // its admission slot frees up, further render_frame() calls on it
  // throw. The caller must not close a session whose frame is in flight
  // (one session is sequential — closing is its last sequential act).
  // Throws std::out_of_range on an unknown id, std::invalid_argument when
  // already closed.
  void close_session(int session);
  // OPEN sessions (excludes closed ones). Total ever opened is
  // report().sessions.size().
  std::size_t session_count() const;
  // Opens rejected by admission control so far.
  std::uint64_t admission_rejects() const {
    return admission_rejects_.load(std::memory_order_relaxed);
  }
  std::size_t scene_count() const { return shards_.size(); }
  // Current state of one session's frame state machine.
  SessionState session_state(int session) const;

  // Renders the next frame of `session`'s camera path. Thread-safe across
  // distinct sessions; calls for one session must be sequential. Throws
  // std::invalid_argument on a closed session.
  core::StreamingRenderResult render_frame(int session,
                                           const gs::Camera& camera);

  // Multiplexed scheduler: drives path i through session i (opening
  // sessions on scene 0 as needed) until every path is rendered, using at
  // most config.max_concurrent_frames drivers (0 = auto), then drains the
  // fetch queue and returns all frames plus the report. Sessions rotate
  // through the drivers FIFO-fairly, one frame per turn; a session's
  // frames stay sequential, so every path's output is bit-identical to
  // rendering it alone. Multi-scene hosts open their sessions (with scene
  // assignments) before calling run().
  ServerRunResult run(const std::vector<std::vector<gs::Camera>>& paths);

  // Snapshot of per-session and global counters so far. Call only while no
  // frame is in flight (between frames or after run()).
  ServerReport report() const;

  // Blocks until all queued prefetch batches have landed.
  void wait_idle() const;

  // Requests still pending in the shared priority queue — 0 after a
  // wait_idle with no frames in flight (no session's work starves).
  std::size_t pending_prefetch_requests() const {
    return queue_.pending_requests();
  }

  // Scene-shard access (scene 0 = the single-scene legacy view).
  stream::ResidencyCache& cache(std::uint32_t scene = 0);
  const core::StreamingScene& scene() const;
  const core::StreamingScene& scene(std::uint32_t index) const;
  // This shard's CURRENT byte share of the global budget. Across all
  // shards these sum exactly to config().cache.budget_bytes, at every
  // instant — the invariant the stress test samples mid-run.
  std::uint64_t shard_budget_bytes(std::uint32_t scene) const;
  const SceneServerConfig& config() const { return config_; }

 private:
  struct SceneShard;
  struct Session;

  static std::vector<std::unique_ptr<SceneShard>> make_shards(
      const std::vector<const stream::AssetStore*>& stores,
      const SceneServerConfig& config);
  static std::vector<stream::ResidencyCache*> shard_caches(
      const std::vector<std::unique_ptr<SceneShard>>& shards);

  // One frame of `s`, with scheduler attribution: state transitions, the
  // session_frame span (queue-wait arg included), trace stamping, counter
  // folding, and the periodic shard rebalance at commit.
  core::StreamingRenderResult render_session_frame(
      Session& s, const gs::Camera& camera, std::uint64_t queue_wait_ns);
  void maybe_rebalance();
  void rebalance_shards();

  // Registered once: render_frame() observes per-frame latency into the
  // global metrics registry without a name lookup on the frame path.
  obs::MetricId frame_ns_metric_;
  SceneServerConfig config_;
  std::vector<std::unique_ptr<SceneShard>> shards_;  // indexed by scene
  // Guards the session table (open/close/lookup). Frame rendering itself
  // runs outside it: Session storage is pointer-stable (unique_ptr), so a
  // driver resolves its session under the lock and renders without it.
  mutable std::mutex sessions_mutex_;
  // Declared before queue_ so the queue (whose async batches credit
  // session sinks) drains before any session is destroyed.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t open_sessions_ = 0;
  std::atomic<std::uint64_t> admission_rejects_{0};
  stream::SharedPrefetchQueue queue_;
  // Shard-budget governor state: frames committed (rebalance trigger),
  // last-rebalance access marks and the demand EWMA per shard.
  std::atomic<std::uint64_t> committed_frames_{0};
  std::mutex rebalance_mutex_;
  std::vector<std::uint64_t> shard_last_accesses_;
  std::vector<double> shard_demand_ewma_;
  // Lane-error baseline at construction: report() attributes only errors
  // captured during this server's lifetime, not earlier async work's.
  std::uint64_t async_errors_at_open_ = 0;
};

}  // namespace sgs::serve
