#include "voxel/dda.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sgs::voxel {

namespace {

// Ray/AABB slab test; returns [t0, t1] clamped to t >= 0, or false.
bool ray_box(const gs::Ray& ray, Vec3f lo, Vec3f hi, float& t0, float& t1) {
  t0 = 0.0f;
  t1 = std::numeric_limits<float>::infinity();
  for (int a = 0; a < 3; ++a) {
    const float o = ray.origin[a];
    const float d = ray.direction[a];
    if (std::abs(d) < 1e-12f) {
      if (o < lo[a] || o > hi[a]) return false;
      continue;
    }
    float ta = (lo[a] - o) / d;
    float tb = (hi[a] - o) / d;
    if (ta > tb) std::swap(ta, tb);
    t0 = std::max(t0, ta);
    t1 = std::min(t1, tb);
    if (t0 > t1) return false;
  }
  return true;
}

}  // namespace

void traverse(const gs::Ray& ray, const VoxelGridConfig& grid, float max_t,
              const std::function<bool(Vec3i, float)>& visit) {
  const Vec3f lo = grid.origin;
  const Vec3f hi = grid.origin + Vec3f{static_cast<float>(grid.dims.x),
                                       static_cast<float>(grid.dims.y),
                                       static_cast<float>(grid.dims.z)} *
                                     grid.voxel_size;
  float t0, t1;
  if (!ray_box(ray, lo, hi, t0, t1)) return;
  t1 = std::min(t1, max_t);
  if (t0 > t1) return;

  // Enter slightly inside the box to get a well-defined starting cell.
  const float entry_eps = 1e-5f * grid.voxel_size;
  const Vec3f p0 = ray.at(t0 + entry_eps);
  Vec3i c{static_cast<std::int32_t>(std::floor((p0.x - lo.x) / grid.voxel_size)),
          static_cast<std::int32_t>(std::floor((p0.y - lo.y) / grid.voxel_size)),
          static_cast<std::int32_t>(std::floor((p0.z - lo.z) / grid.voxel_size))};
  for (int a = 0; a < 3; ++a) c[a] = std::clamp(c[a], 0, grid.dims[a] - 1);

  Vec3i step{0, 0, 0};
  Vec3f t_max_axis{std::numeric_limits<float>::infinity(),
                   std::numeric_limits<float>::infinity(),
                   std::numeric_limits<float>::infinity()};
  Vec3f t_delta = t_max_axis;
  for (int a = 0; a < 3; ++a) {
    const float d = ray.direction[a];
    if (std::abs(d) < 1e-12f) continue;
    step[a] = d > 0.0f ? 1 : -1;
    const float next_boundary =
        lo[a] + (static_cast<float>(c[a]) + (d > 0.0f ? 1.0f : 0.0f)) * grid.voxel_size;
    t_max_axis[a] = (next_boundary - ray.origin[a]) / d;
    t_delta[a] = grid.voxel_size / std::abs(d);
  }

  float t_entry = t0;
  for (;;) {
    if (!visit(c, t_entry)) return;
    // Advance across the nearest cell boundary.
    int axis = 0;
    if (t_max_axis.y < t_max_axis[axis]) axis = 1;
    if (t_max_axis.z < t_max_axis[axis]) axis = 2;
    t_entry = t_max_axis[axis];
    if (t_entry > t1) return;
    c[axis] += step[axis];
    if (c[axis] < 0 || c[axis] >= grid.dims[axis]) return;
    t_max_axis[axis] += t_delta[axis];
  }
}

std::vector<DenseVoxelId> intersected_voxels(const gs::Ray& ray,
                                             const VoxelGrid& grid,
                                             float max_t, DdaStats* stats) {
  std::vector<DenseVoxelId> out;
  intersected_voxels_into(ray, grid, max_t, stats, out);
  return out;
}

void intersected_voxels_into(const gs::Ray& ray, const VoxelGrid& grid,
                             float max_t, DdaStats* stats,
                             std::vector<DenseVoxelId>& out) {
  traverse(ray, grid.config(), max_t, [&](Vec3i c, float) {
    if (stats) ++stats->steps;
    const DenseVoxelId d = grid.dense_of_raw(grid.raw_id(c));
    if (d != kInvalidDenseId) {
      out.push_back(d);
      if (stats) ++stats->non_empty;
    }
    return true;
  });
}

}  // namespace sgs::voxel
