#include "stream/group_source.hpp"

#include <cassert>

namespace sgs::stream {

void GroupSource::begin_frame(const FrameIntent&,
                              std::span<const voxel::DenseVoxelId>) {}

void GroupSource::end_frame() {}

core::StreamCacheStats GroupSource::stats() const { return {}; }

ResidentGroupSource::ResidentGroupSource(const core::StreamingScene& scene)
    : scene_(&scene) {
  assert(scene.params_resident() &&
         "resident source needs a scene with a resident render model");
}

GroupView ResidentGroupSource::acquire(voxel::DenseVoxelId v) {
  GroupView view;
  view.model_indices = scene_->grid().gaussians_in(v);
  view.cols = &scene_->group_columns();
  view.first = scene_->group_offset(v);
  return view;
}

}  // namespace sgs::stream
