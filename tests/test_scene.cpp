// Tests for the scene substrate: procedural generation, presets, PLY IO,
// and the Mini-Splatting / LightGaussian model transforms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "scene/generator.hpp"
#include "scene/ply_io.hpp"
#include "scene/presets.hpp"
#include "scene/variants.hpp"

namespace sgs::scene {
namespace {

// -------------------------------------------------------------- generator --

TEST(Generator, ProducesRequestedCount) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 1234;
  const auto model = generate_scene(cfg);
  EXPECT_EQ(model.size(), 1234u);
}

TEST(Generator, EmptyCount) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 0;
  EXPECT_TRUE(generate_scene(cfg).empty());
}

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 500;
  cfg.seed = 42;
  const auto a = generate_scene(cfg);
  const auto b = generate_scene(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.gaussians[i].position, b.gaussians[i].position);
    EXPECT_EQ(a.gaussians[i].scale, b.gaussians[i].scale);
    EXPECT_EQ(a.gaussians[i].sh[0], b.gaussians[i].sh[0]);
  }
}

TEST(Generator, SeedsProduceDifferentScenes) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 100;
  cfg.seed = 1;
  const auto a = generate_scene(cfg);
  cfg.seed = 2;
  const auto b = generate_scene(cfg);
  EXPECT_NE(a.gaussians[0].position, b.gaussians[0].position);
}

TEST(Generator, PositionsWithinExtent) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 2000;
  cfg.extent_min = {-2.0f, -1.0f, 0.0f};
  cfg.extent_max = {2.0f, 3.0f, 5.0f};
  const auto model = generate_scene(cfg);
  for (const auto& g : model.gaussians) {
    EXPECT_GE(g.position.x, cfg.extent_min.x);
    EXPECT_LE(g.position.x, cfg.extent_max.x);
    EXPECT_GE(g.position.y, cfg.extent_min.y);
    EXPECT_LE(g.position.y, cfg.extent_max.y);
    EXPECT_GE(g.position.z, cfg.extent_min.z);
    EXPECT_LE(g.position.z, cfg.extent_max.z);
  }
}

TEST(Generator, ValidParameterRanges) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 2000;
  const auto model = generate_scene(cfg);
  for (const auto& g : model.gaussians) {
    EXPECT_GT(g.scale.min_component(), 0.0f);
    EXPECT_GT(g.opacity, 0.0f);
    EXPECT_LT(g.opacity, 1.0f);
    EXPECT_NEAR(g.rotation.norm(), 1.0f, 1e-3f);
  }
}

TEST(Generator, SurfelsAreFlattened) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 3000;
  cfg.flatness = 0.1f;
  const auto model = generate_scene(cfg);
  // Median anisotropy (min/max scale) must reflect flattening.
  std::size_t flat = 0;
  for (const auto& g : model.gaussians) {
    if (g.scale.min_component() < 0.5f * g.scale.max_component()) ++flat;
  }
  EXPECT_GT(flat, model.size() / 2);
}

TEST(Generator, GroundFractionPopulatesFloor) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 5000;
  cfg.extent_min = {-10, -2, -10};
  cfg.extent_max = {10, 5, 10};
  cfg.ground_fraction = 0.3f;
  cfg.seed = 5;
  const auto model = generate_scene(cfg);
  std::size_t near_floor = 0;
  for (const auto& g : model.gaussians) {
    if (g.position.y < -1.5f) ++near_floor;
  }
  // At least half the requested ground mass lands near the floor plane.
  EXPECT_GT(near_floor, model.size() * 15 / 100);
}

// ---------------------------------------------------------------- presets --

TEST(Presets, AllNamed) {
  for (ScenePreset p : kAllPresets) {
    const PresetInfo& info = preset_info(p);
    EXPECT_FALSE(info.name.empty());
    EXPECT_EQ(preset_from_name(info.name), p);
    EXPECT_GT(info.paper_gaussian_count, 100'000u);
    EXPECT_GT(info.paper_width, 0);
  }
  EXPECT_THROW(preset_from_name("nope"), std::invalid_argument);
}

TEST(Presets, VoxelSizesMatchPaper) {
  // Paper Sec. V-A: voxel size 2 for real-world scenes, 0.4 for synthetic.
  for (ScenePreset p : kSyntheticPresets) {
    EXPECT_FLOAT_EQ(preset_info(p).default_voxel_size, 0.4f);
    EXPECT_TRUE(preset_info(p).synthetic);
  }
  for (ScenePreset p : kRealWorldPresets) {
    EXPECT_FLOAT_EQ(preset_info(p).default_voxel_size, 2.0f);
    EXPECT_FALSE(preset_info(p).synthetic);
  }
}

TEST(Presets, ScaleControlsCount) {
  const auto s01 = make_preset_scene(ScenePreset::kLego, 0.01f);
  const auto s02 = make_preset_scene(ScenePreset::kLego, 0.02f);
  EXPECT_NEAR(static_cast<double>(s02.size()),
              2.0 * static_cast<double>(s01.size()), s01.size() * 0.02 + 2);
}

TEST(Presets, CameraSeesScene) {
  // The default camera must have a healthy share of Gaussians in front.
  for (ScenePreset p : kAllPresets) {
    const auto model = make_preset_scene(p, 0.005f);
    const gs::Camera cam = make_preset_camera(p, 320, 240);
    std::size_t in_front = 0;
    for (const auto& g : model.gaussians) {
      if (cam.world_to_camera(g.position).z > 0.2f) ++in_front;
    }
    EXPECT_GT(in_front, model.size() / 3) << preset_info(p).name;
  }
}

TEST(Presets, ScaledResolutionMultipleOf16) {
  int w = 0, h = 0;
  scaled_resolution(ScenePreset::kTrain, 0.5f, w, h);
  EXPECT_EQ(w % 16, 0);
  EXPECT_EQ(h % 16, 0);
  EXPECT_GT(w, 0);
  scaled_resolution(ScenePreset::kTrain, 0.01f, w, h);
  EXPECT_GE(w, 16);
  EXPECT_GE(h, 16);
}

TEST(Presets, CameraTrajectoryMoves) {
  const gs::Camera a = make_preset_camera(ScenePreset::kTruck, 320, 240, 0.0f);
  const gs::Camera b = make_preset_camera(ScenePreset::kTruck, 320, 240, 0.25f);
  EXPECT_GT((a.position() - b.position()).norm(), 0.5f);
}

// ----------------------------------------------------------------- PLY IO --

TEST(PlyIo, RoundTrip) {
  GeneratorConfig cfg;
  cfg.gaussian_count = 300;
  cfg.seed = 9;
  const auto model = generate_scene(cfg);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgs_test_model.ply").string();
  ASSERT_TRUE(write_ply(path, model));
  const auto back = read_ply(path);
  ASSERT_EQ(back.size(), model.size());
  for (std::size_t i = 0; i < model.size(); i += 17) {
    const auto& a = model.gaussians[i];
    const auto& b = back.gaussians[i];
    EXPECT_EQ(a.position, b.position);  // positions are bit-exact floats
    EXPECT_NEAR(a.opacity, b.opacity, 1e-5f);
    EXPECT_NEAR(a.scale.x, b.scale.x, 1e-5f * (1.0f + a.scale.x));
    EXPECT_NEAR(a.scale.y, b.scale.y, 1e-5f * (1.0f + a.scale.y));
    // Rotation is normalized on read; compare up to sign via |dot| ~ 1.
    const float dot = std::abs(a.rotation.normalized().dot(b.rotation));
    EXPECT_NEAR(dot, 1.0f, 1e-4f);
    for (int k = 0; k < gs::kShCoeffCount; ++k) {
      EXPECT_NEAR(a.sh[static_cast<std::size_t>(k)].x, b.sh[static_cast<std::size_t>(k)].x, 1e-6f);
      EXPECT_NEAR(a.sh[static_cast<std::size_t>(k)].z, b.sh[static_cast<std::size_t>(k)].z, 1e-6f);
    }
  }
  std::remove(path.c_str());
}

TEST(PlyIo, MissingFileThrows) {
  EXPECT_THROW(read_ply("/nonexistent/missing.ply"), std::runtime_error);
}

TEST(PlyIo, EmptyModelRoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sgs_test_empty.ply").string();
  ASSERT_TRUE(write_ply(path, {}));
  EXPECT_EQ(read_ply(path).size(), 0u);
  std::remove(path.c_str());
}

// ----------------------------------------------------------------- variants --

TEST(Variants, Names) {
  EXPECT_STREQ(algorithm_name(Algorithm::k3dgs), "3DGS");
  EXPECT_STREQ(algorithm_name(Algorithm::kMiniSplatting), "Mini-Splatting");
  EXPECT_STREQ(algorithm_name(Algorithm::kLightGaussian), "LightGaussian");
}

TEST(Variants, MiniSplattingReducesCount) {
  const auto model = make_preset_scene(ScenePreset::kTrain, 0.005f);
  const auto mini = mini_splatting_variant(model, 3, 0.35f);
  EXPECT_NEAR(static_cast<double>(mini.size()),
              0.35 * static_cast<double>(model.size()),
              0.02 * static_cast<double>(model.size()));
}

TEST(Variants, MiniSplattingPrefersSignificant) {
  const auto model = make_preset_scene(ScenePreset::kTrain, 0.005f);
  const auto mini = mini_splatting_variant(model, 3, 0.3f);
  double orig_mean = 0.0, mini_mean = 0.0;
  for (const auto& g : model.gaussians) orig_mean += significance(g);
  for (const auto& g : mini.gaussians) mini_mean += significance(g);
  orig_mean /= static_cast<double>(model.size());
  mini_mean /= static_cast<double>(mini.size());
  EXPECT_GT(mini_mean, orig_mean);
}

TEST(Variants, LightGaussianPrunesLowSignificance) {
  const auto model = make_preset_scene(ScenePreset::kTrain, 0.005f);
  const auto lg = light_gaussian_variant(model, 0.6f, 1);
  EXPECT_NEAR(static_cast<double>(lg.size()),
              0.4 * static_cast<double>(model.size()),
              0.02 * static_cast<double>(model.size()) + 1);
  // SH above degree 1 must be zeroed.
  for (const auto& g : lg.gaussians) {
    for (int k = 4; k < gs::kShCoeffCount; ++k) {
      EXPECT_EQ(g.sh[static_cast<std::size_t>(k)], (Vec3f{0, 0, 0}));
    }
  }
}

TEST(Variants, LightGaussianKeepsTopSignificance) {
  const auto model = make_preset_scene(ScenePreset::kTruck, 0.003f);
  const auto lg = light_gaussian_variant(model, 0.5f, 2);
  // The minimum significance kept must be >= the maximum pruned (stable
  // sort by significance).
  float min_kept = 1e30f;
  for (const auto& g : lg.gaussians) min_kept = std::min(min_kept, significance(g));
  std::size_t below = 0;
  for (const auto& g : model.gaussians) {
    if (significance(g) < min_kept) ++below;
  }
  EXPECT_GE(below, model.size() - lg.size() - model.size() / 100);
}

TEST(Variants, ApplyAlgorithmIdentityFor3dgs) {
  const auto model = make_preset_scene(ScenePreset::kLego, 0.003f);
  const auto same = apply_algorithm(model, Algorithm::k3dgs);
  EXPECT_EQ(same.size(), model.size());
}

TEST(Variants, EmptyModelSafe) {
  EXPECT_TRUE(mini_splatting_variant({}, 1).empty());
  EXPECT_TRUE(light_gaussian_variant({}).empty());
}

}  // namespace
}  // namespace sgs::scene
