#include "stream/asset_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "vq/quantized_model.hpp"

namespace sgs::stream {

namespace {

// On-disk record sizes. Fixed constants, not sizeof() of host structs: the
// fetch traffic the DRAM model charges must not depend on host padding.
constexpr std::size_t kDirEntryBytes = 8 + 8 + 8 + 4 + 6 * 4;  // 52
constexpr std::size_t kRawRecordBytes = 59 * sizeof(float);    // 236
constexpr std::size_t kVqRecordBytes =
    4 * sizeof(float) + 4 * sizeof(std::uint16_t);  // 24

template <typename T>
void put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_vec3(std::ostream& out, Vec3f v) {
  put<float>(out, v.x);
  put<float>(out, v.y);
  put<float>(out, v.z);
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("truncated .sgsc stream");
  return v;
}

Vec3f get_vec3(std::istream& in) {
  Vec3f v;
  v.x = get<float>(in);
  v.y = get<float>(in);
  v.z = get<float>(in);
  return v;
}

// Reads a little-endian scalar out of a fetched payload buffer.
template <typename T>
T peel(const char*& p) {
  T v{};
  std::copy(p, p + sizeof(T), reinterpret_cast<char*>(&v));
  p += sizeof(T);
  return v;
}

}  // namespace

bool AssetStore::write(const std::string& path,
                       const core::StreamingScene& scene) {
  if (!scene.params_resident()) return false;
  const core::StreamingConfig& cfg = scene.config();
  const voxel::VoxelGrid& grid = scene.grid();
  const bool vq = cfg.use_vq;
  if (vq && scene.quantized() == nullptr) return false;

  std::ofstream out(path, std::ios::binary);
  if (!out) return false;

  put<std::uint32_t>(out, kSgscMagic);
  put<std::uint32_t>(out, kSgscVersion);
  put<std::uint32_t>(out, vq ? 1u : 0u);
  // Rendering config.
  put<float>(out, cfg.voxel_size);
  put<std::int32_t>(out, cfg.group_size);
  put<std::int32_t>(out, cfg.ray_stride);
  put<std::uint8_t>(out, cfg.use_coarse_filter ? 1 : 0);
  put_vec3(out, cfg.background);
  // Grid config (authoritative: the grid was built from the original
  // positions, which are exact under VQ too).
  const voxel::VoxelGridConfig& gc = grid.config();
  put_vec3(out, gc.origin);
  put<float>(out, gc.voxel_size);
  put<std::int32_t>(out, gc.dims.x);
  put<std::int32_t>(out, gc.dims.y);
  put<std::int32_t>(out, gc.dims.z);
  put<std::uint64_t>(out, static_cast<std::uint64_t>(grid.gaussian_count()));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(grid.voxel_count()));

  if (vq) {
    const vq::QuantizedModel& qm = *scene.quantized();
    if (!qm.scale_codebook().save(out) || !qm.rotation_codebook().save(out) ||
        !qm.dc_codebook().save(out) || !qm.sh_codebook().save(out)) {
      return false;
    }
  }

  // Directory: payload offsets are computed up front (record sizes are
  // fixed), so the file is written in one forward pass.
  const std::size_t rec_bytes = vq ? kVqRecordBytes : kRawRecordBytes;
  const auto n_groups = static_cast<std::size_t>(grid.voxel_count());
  std::uint64_t cursor = static_cast<std::uint64_t>(out.tellp()) +
                         n_groups * kDirEntryBytes +
                         grid.gaussian_count() * sizeof(std::uint32_t);
  for (std::size_t v = 0; v < n_groups; ++v) {
    const auto dv = static_cast<voxel::DenseVoxelId>(v);
    const std::uint64_t count = grid.gaussians_in(dv).size();
    const std::uint64_t bytes = count * rec_bytes;
    put<std::int64_t>(out, grid.raw_of_dense(dv));
    put<std::uint64_t>(out, cursor);
    put<std::uint64_t>(out, bytes);
    put<std::uint32_t>(out, static_cast<std::uint32_t>(count));
    const Vec3f lo = grid.voxel_min_corner(dv);
    put_vec3(out, lo);
    put_vec3(out, lo + Vec3f::splat(gc.voxel_size));
    cursor += bytes;
  }

  // Index table: the resident spatial index (model indices per group).
  for (std::size_t v = 0; v < n_groups; ++v) {
    const auto residents =
        grid.gaussians_in(static_cast<voxel::DenseVoxelId>(v));
    out.write(reinterpret_cast<const char*>(residents.data()),
              static_cast<std::streamsize>(residents.size() *
                                           sizeof(std::uint32_t)));
  }

  // Payloads.
  const gs::GaussianModel& model = scene.render_model();
  for (std::size_t v = 0; v < n_groups; ++v) {
    for (const std::uint32_t mi :
         grid.gaussians_in(static_cast<voxel::DenseVoxelId>(v))) {
      if (vq) {
        const vq::QuantizedModel& qm = *scene.quantized();
        put_vec3(out, qm.position(mi));
        put<float>(out, qm.opacity(mi));
        const vq::QuantizedIndices& qi = qm.indices(mi);
        put<std::uint16_t>(out, qi.scale);
        put<std::uint16_t>(out, qi.rotation);
        put<std::uint16_t>(out, qi.dc);
        put<std::uint16_t>(out, qi.sh);
      } else {
        const gs::Gaussian& g = model.gaussians[mi];
        put_vec3(out, g.position);
        put_vec3(out, g.scale);
        put<float>(out, g.rotation.w);
        put<float>(out, g.rotation.x);
        put<float>(out, g.rotation.y);
        put<float>(out, g.rotation.z);
        put<float>(out, g.opacity);
        for (const Vec3f& c : g.sh) put_vec3(out, c);
      }
    }
  }
  return static_cast<bool>(out);
}

AssetStore::AssetStore(const std::string& path)
    : file_(path, std::ios::binary) {
  if (!file_) throw std::runtime_error("cannot open .sgsc store: " + path);
  file_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(file_.tellg());
  file_.seekg(0);
  if (get<std::uint32_t>(file_) != kSgscMagic) {
    throw std::runtime_error("bad .sgsc magic");
  }
  if (get<std::uint32_t>(file_) != kSgscVersion) {
    throw std::runtime_error("unsupported .sgsc version");
  }
  vq_ = (get<std::uint32_t>(file_) & 1u) != 0;
  config_.voxel_size = get<float>(file_);
  config_.group_size = get<std::int32_t>(file_);
  config_.ray_stride = get<std::int32_t>(file_);
  config_.use_coarse_filter = get<std::uint8_t>(file_) != 0;
  config_.background = get_vec3(file_);
  config_.use_vq = vq_;

  voxel::VoxelGridConfig gc;
  gc.origin = get_vec3(file_);
  gc.voxel_size = get<float>(file_);
  gc.dims.x = get<std::int32_t>(file_);
  gc.dims.y = get<std::int32_t>(file_);
  gc.dims.z = get<std::int32_t>(file_);
  if (gc.voxel_size <= 0.0f || gc.dims.x <= 0 || gc.dims.y <= 0 ||
      gc.dims.z <= 0) {
    throw std::runtime_error(".sgsc grid config implausible");
  }
  gaussian_count_ = static_cast<std::size_t>(get<std::uint64_t>(file_));
  const std::uint32_t n_groups = get<std::uint32_t>(file_);
  if (gaussian_count_ > (std::uint64_t{1} << 32) ||
      n_groups > (1u << 28)) {
    throw std::runtime_error(".sgsc counts implausible");
  }

  if (vq_) {
    scale_cb_ = vq::Codebook::load(file_);
    rotation_cb_ = vq::Codebook::load(file_);
    dc_cb_ = vq::Codebook::load(file_);
    sh_cb_ = vq::Codebook::load(file_);
    if (scale_cb_.dim() != 3 || rotation_cb_.dim() != 4 || dc_cb_.dim() != 3 ||
        sh_cb_.dim() != 45) {
      throw std::runtime_error(".sgsc codebooks have wrong dims");
    }
  }

  directory_.resize(n_groups);
  std::uint64_t total_count = 0;
  const std::uint64_t rec_bytes = vq_ ? kVqRecordBytes : kRawRecordBytes;
  for (AssetDirEntry& e : directory_) {
    e.raw_id = get<std::int64_t>(file_);
    e.offset = get<std::uint64_t>(file_);
    e.bytes = get<std::uint64_t>(file_);
    e.count = get<std::uint32_t>(file_);
    e.aabb_min = get_vec3(file_);
    e.aabb_max = get_vec3(file_);
    // The payload must hold exactly count fixed-size records and lie
    // inside the file — otherwise read_group would decode past its buffer.
    if (e.bytes != e.count * rec_bytes || e.offset > file_size ||
        e.bytes > file_size - e.offset) {
      throw std::runtime_error(".sgsc directory entry inconsistent");
    }
    total_count += e.count;
    payload_total_ += e.bytes;
  }
  if (total_count != gaussian_count_) {
    throw std::runtime_error(".sgsc directory does not cover the model");
  }

  index_table_.resize(gaussian_count_);
  file_.read(reinterpret_cast<char*>(index_table_.data()),
             static_cast<std::streamsize>(index_table_.size() *
                                          sizeof(std::uint32_t)));
  if (!file_) throw std::runtime_error("truncated .sgsc index table");
  index_offsets_.resize(n_groups + 1, 0);
  for (std::uint32_t v = 0; v < n_groups; ++v) {
    index_offsets_[v + 1] = index_offsets_[v] + directory_[v].count;
  }

  // Reassemble the resident spatial index.
  std::vector<voxel::RawVoxelId> raw_ids(n_groups);
  std::vector<std::vector<std::uint32_t>> residents(n_groups);
  for (std::uint32_t v = 0; v < n_groups; ++v) {
    raw_ids[v] = directory_[v].raw_id;
    const auto span = group_indices(static_cast<voxel::DenseVoxelId>(v));
    residents[v].assign(span.begin(), span.end());
  }
  grid_ = voxel::VoxelGrid::assemble(gc, raw_ids, residents, gaussian_count_);
}

std::span<const std::uint32_t> AssetStore::group_indices(
    voxel::DenseVoxelId v) const {
  const auto b = static_cast<std::size_t>(index_offsets_[static_cast<std::size_t>(v)]);
  const auto e = static_cast<std::size_t>(index_offsets_[static_cast<std::size_t>(v) + 1]);
  return {index_table_.data() + b, e - b};
}

DecodedGroup AssetStore::read_group(voxel::DenseVoxelId v) const {
  const AssetDirEntry& e = entry(v);
  std::vector<char> buf(static_cast<std::size_t>(e.bytes));
  {
    std::lock_guard<std::mutex> lk(file_mutex_);
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(e.offset));
    file_.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!file_) throw std::runtime_error("truncated .sgsc payload");
  }

  DecodedGroup group;
  group.model_indices = group_indices(v);
  group.payload_bytes = e.bytes;
  group.gaussians.resize(e.count);
  group.coarse_max_scale.resize(e.count);
  const char* p = buf.data();
  for (std::uint32_t k = 0; k < e.count; ++k) {
    gs::Gaussian& g = group.gaussians[k];
    if (vq_) {
      g.position.x = peel<float>(p);
      g.position.y = peel<float>(p);
      g.position.z = peel<float>(p);
      g.opacity = peel<float>(p);
      const auto si = peel<std::uint16_t>(p);
      const auto ri = peel<std::uint16_t>(p);
      const auto di = peel<std::uint16_t>(p);
      const auto hi = peel<std::uint16_t>(p);
      if (si >= scale_cb_.size() || ri >= rotation_cb_.size() ||
          di >= dc_cb_.size() || hi >= sh_cb_.size()) {
        throw std::runtime_error(".sgsc payload index out of codebook range");
      }
      // Same lookups as QuantizedModel::decode — a cached group is
      // bit-identical to the prepared scene's render model.
      const auto s = scale_cb_.entry(si);
      g.scale = {s[0], s[1], s[2]};
      const auto r = rotation_cb_.entry(ri);
      g.rotation = Quatf{r[0], r[1], r[2], r[3]};
      const auto d = dc_cb_.entry(di);
      g.sh[0] = {d[0], d[1], d[2]};
      const auto rest = sh_cb_.entry(hi);
      for (int c = 1; c < gs::kShCoeffCount; ++c) {
        const std::size_t base = static_cast<std::size_t>(c - 1) * 3;
        g.sh[static_cast<std::size_t>(c)] = {rest[base], rest[base + 1],
                                             rest[base + 2]};
      }
      group.coarse_max_scale[k] = std::max(s[0], std::max(s[1], s[2]));
    } else {
      g.position.x = peel<float>(p);
      g.position.y = peel<float>(p);
      g.position.z = peel<float>(p);
      g.scale.x = peel<float>(p);
      g.scale.y = peel<float>(p);
      g.scale.z = peel<float>(p);
      g.rotation.w = peel<float>(p);
      g.rotation.x = peel<float>(p);
      g.rotation.y = peel<float>(p);
      g.rotation.z = peel<float>(p);
      g.opacity = peel<float>(p);
      for (int c = 0; c < gs::kShCoeffCount; ++c) {
        g.sh[static_cast<std::size_t>(c)].x = peel<float>(p);
        g.sh[static_cast<std::size_t>(c)].y = peel<float>(p);
        g.sh[static_cast<std::size_t>(c)].z = peel<float>(p);
      }
      group.coarse_max_scale[k] = g.max_scale();
    }
  }
  return group;
}

}  // namespace sgs::stream
