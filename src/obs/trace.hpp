// Span-based frame-timeline tracing with Chrome Trace Event export.
//
// SGS_TRACE_SPAN("stage", "filter", "group", g, "voxel", v) opens an RAII
// scope that records begin/end on core::stage_clock_ns() and buffers one
// TraceEvent when it closes; SGS_TRACE_INSTANT marks point events (cache
// evictions, retries, degraded serves). Every thread buffers into its own
// bounded ring (per-ring mutex, taken only while tracing is enabled), so
// workers never contend on a shared log and a runaway producer overwrites
// its own oldest events instead of growing memory.
//
// The disabled path is one relaxed atomic load and a branch per site — the
// ≤2% frame-time contract bench_streaming gates. Enable with
// set_trace_enabled(true), then trace_collect() / write_chrome_trace() at
// any quiescent point; the JSON loads directly in Perfetto or
// chrome://tracing.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sgs::obs {

// Mirrors the two Chrome Trace Event phases the exporter emits:
// kSpan -> "X" (complete event with duration), kInstant -> "i".
enum class TracePhase : std::uint8_t { kSpan, kInstant };

struct TraceEvent {
  const char* name;      // static-storage string; never owned
  const char* cat;       // category ("stage", "cache", "frame", ...)
  std::uint64_t ts_ns;   // begin timestamp on core::stage_clock_ns()
  std::uint64_t dur_ns;  // span duration; 0 for instants
  const char* arg0_name;  // nullptr when unused
  const char* arg1_name;
  std::uint64_t arg0;
  std::uint64_t arg1;
  TracePhase phase;
};

// Everything one thread buffered, in emission order (a nested span closes —
// and therefore lands — before its parent).
struct ThreadTrace {
  int tid = 0;  // stable small id, assigned at first emission
  std::string name;
  std::uint64_t dropped = 0;  // events overwritten by the ring bound
  std::vector<TraceEvent> events;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool on);

// Per-thread ring bound in events (default 1<<14). Applies to events
// emitted after the call; rings already past a smaller bound keep their
// contents and overwrite in place.
void set_trace_capacity(std::size_t events_per_thread);

// Names this thread in the exported timeline ("pool-worker-3",
// "async-lane", "session-0", ...). Safe any time, cheap, idempotent.
void set_thread_name(const std::string& name);

// Buffers one event on the calling thread's ring (callers check
// trace_enabled() first; the span/instant helpers do).
void trace_emit(const TraceEvent& e);

// Snapshot of every thread's buffered events, in thread-registration
// order. Thread-safe against concurrent emission.
std::vector<ThreadTrace> trace_collect();

// Drops all buffered events and drop counters; thread registrations and
// names survive.
void trace_reset();

// Total events lost to ring bounds across all threads.
std::uint64_t trace_dropped_total();

// Chrome Trace Event JSON ({"traceEvents":[...]}), timestamps normalized
// to the earliest buffered event. The path overload collects first;
// returns false when the file cannot be written.
void write_chrome_trace(std::ostream& out,
                        const std::vector<ThreadTrace>& threads);
bool write_chrome_trace(const std::string& path);

// RAII span. Construction samples the clock only when tracing is enabled;
// destruction emits one kSpan event. Name/cat/arg names must be
// static-storage strings (string literals).
class TraceSpan {
 public:
  TraceSpan(const char* cat, const char* name) {
    if (trace_enabled()) open(cat, name, nullptr, 0, nullptr, 0);
  }
  TraceSpan(const char* cat, const char* name, const char* arg0_name,
            std::uint64_t arg0) {
    if (trace_enabled()) open(cat, name, arg0_name, arg0, nullptr, 0);
  }
  TraceSpan(const char* cat, const char* name, const char* arg0_name,
            std::uint64_t arg0, const char* arg1_name, std::uint64_t arg1) {
    if (trace_enabled()) open(cat, name, arg0_name, arg0, arg1_name, arg1);
  }
  ~TraceSpan() {
    if (active_) close();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void open(const char* cat, const char* name, const char* arg0_name,
            std::uint64_t arg0, const char* arg1_name, std::uint64_t arg1);
  void close();

  bool active_ = false;
  // Uninitialized unless active_: the disabled path must not pay for
  // zeroing an event it will never emit.
  const char* cat_;
  const char* name_;
  const char* arg0_name_;
  const char* arg1_name_;
  std::uint64_t arg0_;
  std::uint64_t arg1_;
  std::uint64_t t0_;
};

void trace_instant(const char* cat, const char* name);
void trace_instant(const char* cat, const char* name, const char* arg0_name,
                   std::uint64_t arg0);
void trace_instant(const char* cat, const char* name, const char* arg0_name,
                   std::uint64_t arg0, const char* arg1_name,
                   std::uint64_t arg1);

}  // namespace sgs::obs

#define SGS_TRACE_CONCAT_IMPL(a, b) a##b
#define SGS_TRACE_CONCAT(a, b) SGS_TRACE_CONCAT_IMPL(a, b)

// Opens an RAII span for the rest of the enclosing scope:
//   SGS_TRACE_SPAN("cache", "fetch", "group", g, "tier", t);
#define SGS_TRACE_SPAN(...)                                       \
  ::sgs::obs::TraceSpan SGS_TRACE_CONCAT(sgs_trace_span_, __LINE__)( \
      __VA_ARGS__)

// Marks a point event (no duration):
//   SGS_TRACE_INSTANT("cache", "evict", "group", g);
#define SGS_TRACE_INSTANT(...)                                   \
  do {                                                           \
    if (::sgs::obs::trace_enabled()) {                           \
      ::sgs::obs::trace_instant(__VA_ARGS__);                    \
    }                                                            \
  } while (0)
