// Quickstart: render one scene with both pipelines, compare quality and
// DRAM traffic, and simulate the accelerator against the GPU baseline.
//
//   ./quickstart [--scene train] [--model_scale 0.05] [--res_scale 0.5]
//                [--out_dir .]
#include <cstdio>

#include "common/cli.hpp"
#include "common/ppm.hpp"
#include "common/units.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);

  sim::ExperimentConfig cfg;
  cfg.preset = scene::preset_from_name(args.get("scene", "train"));
  cfg.model_scale = static_cast<float>(args.get_double("model_scale", 0.05));
  cfg.resolution_scale = static_cast<float>(args.get_double("res_scale", 0.5));
  const std::string out_dir = args.get("out_dir", ".");
  for (const auto& flag : args.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }

  const scene::PresetInfo& info = scene::preset_info(cfg.preset);
  std::printf("== STREAMINGGS quickstart: scene '%s' (%s) ==\n",
              info.name.c_str(), info.synthetic ? "synthetic" : "real-world");

  sim::SceneExperiment exp(cfg);
  std::printf("model: %zu Gaussians, camera %dx%d, voxel size %.2f\n",
              exp.model().size(), exp.camera().width(), exp.camera().height(),
              exp.voxel_size());

  // --- tile-centric reference ------------------------------------------------
  const auto& ref = exp.reference();
  std::printf("\n[tile-centric reference]\n");
  std::printf("  pairs: %llu (%.2f per Gaussian), blend ops: %llu\n",
              static_cast<unsigned long long>(ref.trace.pair_count),
              ref.trace.projected_count
                  ? static_cast<double>(ref.trace.pair_count) /
                        static_cast<double>(ref.trace.projected_count)
                  : 0.0,
              static_cast<unsigned long long>(ref.trace.blend_ops));
  std::printf("  DRAM traffic: %s (intermediate: %.1f%%)\n",
              format_bytes(static_cast<double>(ref.trace.traffic.total())).c_str(),
              100.0 * static_cast<double>(ref.trace.traffic.intermediate()) /
                  static_cast<double>(ref.trace.traffic.total()));

  // --- streaming pipeline ------------------------------------------------------
  const sim::VariantOutcome full = exp.run_variant(sim::Variant::kFull);
  std::printf("\n[StreamingGS pipeline]\n");
  std::printf("  streamed: %llu, after CGF: %llu, after FGF: %llu (filtered %.1f%%)\n",
              static_cast<unsigned long long>(full.stats.gaussians_streamed),
              static_cast<unsigned long long>(full.stats.coarse_pass),
              static_cast<unsigned long long>(full.stats.fine_pass),
              100.0 * full.stats.filtered_fraction());
  std::printf("  DRAM traffic: %s (coarse %s + fine %s + frame %s)\n",
              format_bytes(static_cast<double>(full.stats.total_dram_bytes())).c_str(),
              format_bytes(static_cast<double>(full.stats.coarse_read_bytes)).c_str(),
              format_bytes(static_cast<double>(full.stats.fine_read_bytes)).c_str(),
              format_bytes(static_cast<double>(full.stats.frame_write_bytes)).c_str());
  std::printf("  intermediate off-chip traffic: 0 B (fully streaming)\n");
  std::printf("  quality vs reference: %.2f dB PSNR, %.4f SSIM\n",
              full.psnr_vs_reference_db, full.ssim_vs_reference);
  std::printf("  depth-order violations: %.3f%% of contributions\n",
              100.0 * full.stats.violation_ratio());

  // --- hardware comparison ------------------------------------------------------
  const auto& gpu = exp.gpu().report;
  const auto& gscore = exp.gscore();
  std::printf("\n[hardware]           %12s %12s %12s\n", "time/frame", "FPS",
              "energy/frame");
  auto row = [](const char* name, const sim::SimReport& r) {
    std::printf("  %-18s %9.2f ms %12.1f %9.3f mJ\n", name, r.seconds * 1e3,
                r.fps, r.energy_mj());
  };
  row("Orin NX (model)", gpu);
  row("GSCore", gscore);
  row("StreamingGS", full.accel);
  std::printf("\n  speedup vs GPU:  GSCore %s, StreamingGS %s\n",
              format_ratio(gpu.seconds / gscore.seconds).c_str(),
              format_ratio(gpu.seconds / full.accel.seconds).c_str());
  std::printf("  energy savings:  GSCore %s, StreamingGS %s\n",
              format_ratio(gpu.energy_mj() / gscore.energy_mj()).c_str(),
              format_ratio(gpu.energy_mj() / full.accel.energy_mj()).c_str());

  const std::string ref_path = out_dir + "/quickstart_reference.ppm";
  const std::string stream_path = out_dir + "/quickstart_streaming.ppm";
  write_ppm(ref_path, ref.image);
  // Re-render the full variant image for output (run_variant reports stats).
  const auto& scene2 = exp.streaming_scene(/*use_vq=*/true);
  write_ppm(stream_path, core::render_streaming(scene2, exp.camera()).image);
  std::printf("\nwrote %s and %s\n", ref_path.c_str(), stream_path.c_str());
  return 0;
}
