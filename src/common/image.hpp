// Float RGB image container used by both renderers and the quality metrics.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "common/vec.hpp"

namespace sgs {

class Image {
 public:
  Image() = default;
  Image(int width, int height, Vec3f fill = {0.0f, 0.0f, 0.0f})
      : width_(width), height_(height),
        pixels_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill) {
    assert(width >= 0 && height >= 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t pixel_count() const { return pixels_.size(); }
  bool empty() const { return pixels_.empty(); }

  Vec3f& at(int x, int y) {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  const Vec3f& at(int x, int y) const {
    assert(x >= 0 && x < width_ && y >= 0 && y < height_);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  std::vector<Vec3f>& pixels() { return pixels_; }
  const std::vector<Vec3f>& pixels() const { return pixels_; }

  // Bytes a rendered frame occupies in DRAM at 8-bit RGB, which is what the
  // final frame-buffer write-out is charged as in the traffic model.
  std::size_t rgb8_bytes() const { return pixel_count() * 3; }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<Vec3f> pixels_;
};

}  // namespace sgs
