// Google-benchmark microbenchmarks of the library's hot kernels: SH
// evaluation, exact and coarse projection, alpha blending, DDA traversal,
// topological voxel ordering, k-means assignment, the batched SoA kernels
// at every dispatch level, and the two renderers on a small scene.
//
// Besides the google-benchmark suite, a self-timed comparison pass emits
// BENCH_kernels.json (flat key/value, schema in docs/BENCHMARKS.md): the
// per-kernel scalar-vs-SIMD and SoA-vs-AoS numbers CI smokes and uploads.
// The pass double-checks that scalar and SIMD outputs agree within
// kSimdAbsTolerance and exits non-zero when they do not, so the smoke step
// is a correctness gate as well as a trend file.
//
//   ./bench_kernels [--out BENCH_kernels.json] [--json_only]
//                   [google-benchmark flags...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/frame_plan.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "core/voxel_order.hpp"
#include "gs/blending.hpp"
#include "gs/gaussian_soa.hpp"
#include "gs/kernels.hpp"
#include "gs/projection.hpp"
#include "gs/sh.hpp"
#include "render/tile_renderer.hpp"
#include "scene/generator.hpp"
#include "voxel/dda.hpp"
#include "vq/kmeans.hpp"

namespace {

using namespace sgs;

gs::Camera bench_camera(int w = 256, int h = 256) {
  return gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, w, h);
}

gs::GaussianModel bench_model(std::size_t n) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = n;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.seed = 99;
  return scene::generate_scene(cfg);
}

gs::GaussianColumns bench_columns(const gs::GaussianModel& model) {
  gs::GaussianColumns cols;
  cols.resize(model.gaussians.size());
  for (std::size_t k = 0; k < model.gaussians.size(); ++k) {
    cols.set(k, model.gaussians[k], model.gaussians[k].max_scale());
  }
  return cols;
}

const gs::FilterRect kBenchRect{64.0f, 64.0f, 192.0f, 192.0f};

void BM_ShEval(benchmark::State& state) {
  Rng rng(1);
  std::array<Vec3f, 16> coeffs;
  for (auto& c : coeffs) c = rng.normal_vec3(0.2f);
  Vec3f dir = rng.unit_sphere();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::eval_sh(coeffs, dir));
    // Defeat caching without drifting off the unit sphere: eval_sh is
    // specified over directions, and an unnormalized input would slowly
    // shift what is being measured (and its branch behavior) as the bench
    // runs longer.
    dir.x += 1e-3f;
    dir = dir.normalized();
  }
}
BENCHMARK(BM_ShEval);

void BM_ProjectGaussian(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cam = bench_camera();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gs::project_gaussian(model.gaussians[i], cam));
    i = (i + 1) & 4095;
  }
}
BENCHMARK(BM_ProjectGaussian);

void BM_ProjectCoarse(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cam = bench_camera();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& g = model.gaussians[i];
    benchmark::DoNotOptimize(gs::project_coarse(g.position, g.max_scale(), cam));
    i = (i + 1) & 4095;
  }
}
BENCHMARK(BM_ProjectCoarse);

void BM_AlphaBlend(benchmark::State& state) {
  gs::ProjectedGaussian g;
  g.mean = {128, 128};
  g.conic = Sym2f{0.02f, 0.005f, 0.03f};
  g.opacity = 0.8f;
  g.color = {0.7f, 0.3f, 0.2f};
  gs::PixelAccumulator acc;
  float x = 120.0f;
  for (auto _ : state) {
    const float a = gs::gaussian_alpha(g, {x, 126.0f});
    if (a > 0.0f) gs::blend(acc, g.color, a);
    benchmark::DoNotOptimize(acc);
    x = x < 136.0f ? x + 0.25f : 120.0f;
    if (acc.saturated()) acc = gs::PixelAccumulator{};
  }
}
BENCHMARK(BM_AlphaBlend);

// ---------------------------------------------------- batched SoA kernels ---
// Arg(0/1/2) pins dispatch to scalar/sse2/avx2; levels above the host cap
// are clamped by active_isa(), so reported numbers for unavailable ISAs
// just repeat the highest available one.

simd::IsaLevel arg_isa(const benchmark::State& state) {
  return static_cast<simd::IsaLevel>(state.range(0));
}

// AoS baseline of the coarse filter: the historical per-record loop over
// gs::Gaussian (236 B apart), for the SoA-vs-AoS layout comparison.
void BM_CoarseFilterAoS(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cam = bench_camera();
  std::vector<std::uint32_t> idx;
  for (auto _ : state) {
    idx.clear();
    for (std::size_t i = 0; i < model.gaussians.size(); ++i) {
      const auto& g = model.gaussians[i];
      const auto proj = gs::project_coarse(g.position, g.max_scale(), cam);
      if (proj && gs::disc_intersects_rect(proj->mean, proj->radius,
                                           kBenchRect.x0, kBenchRect.y0,
                                           kBenchRect.x1, kBenchRect.y1)) {
        idx.push_back(static_cast<std::uint32_t>(i));
      }
    }
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(model.gaussians.size()));
}
BENCHMARK(BM_CoarseFilterAoS);

void BM_CoarseFilterSoA(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cols = bench_columns(model);
  const auto cam = bench_camera();
  const simd::ScopedForceIsa pin(arg_isa(state));
  std::vector<std::uint32_t> idx;
  for (auto _ : state) {
    idx.clear();
    gs::coarse_filter_batch(cols, 0, cols.size(), cam, kBenchRect, idx);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cols.size()));
  state.SetLabel(simd::isa_name(simd::active_isa()));
}
BENCHMARK(BM_CoarseFilterSoA)->Arg(0)->Arg(1)->Arg(2);

void BM_FineProjectBatch(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cols = bench_columns(model);
  const auto cam = bench_camera();
  std::vector<std::uint32_t> cand;
  gs::coarse_filter_batch(cols, 0, cols.size(), cam, kBenchRect, cand);
  const simd::ScopedForceIsa pin(arg_isa(state));
  std::vector<gs::FineSurvivor> out;
  for (auto _ : state) {
    out.clear();
    gs::fine_project_batch(cols, 0, cand, cam, kBenchRect, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cand.size()));
  state.SetLabel(simd::isa_name(simd::active_isa()));
}
BENCHMARK(BM_FineProjectBatch)->Arg(0)->Arg(2);

void BM_ShEvalBatch(benchmark::State& state) {
  const auto model = bench_model(4096);
  const auto cols = bench_columns(model);
  std::vector<std::uint32_t> locals(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    locals[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<Vec3f> colors(cols.size());
  const simd::ScopedForceIsa pin(arg_isa(state));
  for (auto _ : state) {
    gs::eval_sh_batch(cols, 0, locals, {0, 0, -5}, colors.data());
    benchmark::DoNotOptimize(colors.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cols.size()));
  state.SetLabel(simd::isa_name(simd::active_isa()));
}
BENCHMARK(BM_ShEvalBatch)->Arg(0)->Arg(2);

std::vector<gs::ProjectedGaussian> bench_survivor_stream(std::size_t n) {
  Rng rng(5);
  std::vector<gs::ProjectedGaussian> out;
  for (std::size_t s = 0; s < n; ++s) {
    gs::ProjectedGaussian p;
    p.mean = {rng.uniform(0.0f, 64.0f), rng.uniform(0.0f, 64.0f)};
    p.conic = Sym2f{0.02f, 0.005f, 0.03f};
    p.radius = 20.0f;
    p.depth = 1.0f + 0.01f * static_cast<float>(s);
    p.opacity = 0.35f;
    p.color = {0.7f, 0.3f, 0.2f};
    out.push_back(p);
  }
  return out;
}

void BM_BlendSurvivors(benchmark::State& state) {
  const auto stream = bench_survivor_stream(128);
  gs::BlendPlanes planes;
  std::vector<float> max_depth;
  const simd::ScopedForceIsa pin(arg_isa(state));
  std::uint64_t ops = 0;
  for (auto _ : state) {
    planes.reset(64 * 64);
    max_depth.assign(64 * 64, 0.0f);
    for (const auto& p : stream) {
      const gs::PixelSpan span =
          gs::splat_pixel_span(p.mean, p.radius, 0, 0, 64, 64);
      if (span.empty()) continue;
      ops += gs::blend_survivor(planes, max_depth, p, span, 0, 0, 64).blend_ops;
    }
    benchmark::DoNotOptimize(planes.r.data());
  }
  benchmark::DoNotOptimize(ops);
  state.SetLabel(simd::isa_name(simd::active_isa()));
}
BENCHMARK(BM_BlendSurvivors)->Arg(0)->Arg(1)->Arg(2);

// Batched VQ decode primitive: one codebook column gathered for a whole
// group (scalar loop vs AVX2 gather), strided into an SH column.
void BM_VqGatherColumn(benchmark::State& state) {
  Rng rng(17);
  const std::size_t dim = 45, entries = 256, n = 4096;
  std::vector<float> cb(dim * entries);
  for (auto& v : cb) v = rng.normal();
  std::vector<std::uint32_t> idx(n);
  for (auto& i : idx) i = static_cast<std::uint32_t>(rng.uniform_index(entries));
  std::vector<float> dst(n * gs::kShCoeffCount);
  const simd::ScopedForceIsa pin(arg_isa(state));
  for (auto _ : state) {
    for (std::size_t c = 0; c < 3; ++c) {
      gs::gather_codebook_column(dst.data() + c, gs::kShCoeffCount, cb.data(),
                                 idx.data(), n, dim, c);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(3 * n));
  state.SetLabel(simd::isa_name(simd::active_isa()));
}
BENCHMARK(BM_VqGatherColumn)->Arg(0)->Arg(2);

void BM_DdaTraversal(benchmark::State& state) {
  const auto model = bench_model(20000);
  const auto grid = voxel::VoxelGrid::build(model, 0.5f);
  const auto cam = bench_camera();
  Rng rng(3);
  for (auto _ : state) {
    const gs::Ray ray =
        cam.pixel_ray(rng.uniform(0.0f, 256.0f), rng.uniform(0.0f, 256.0f));
    benchmark::DoNotOptimize(voxel::intersected_voxels(ray, grid));
  }
}
BENCHMARK(BM_DdaTraversal);

void BM_TopologicalOrder(benchmark::State& state) {
  // 64 rays over a 64-voxel chain with random subsequences.
  Rng rng(7);
  std::vector<std::vector<voxel::DenseVoxelId>> rays;
  for (int r = 0; r < 64; ++r) {
    std::vector<voxel::DenseVoxelId> ray;
    for (int v = 0; v < 64; ++v) {
      if (rng.uniform() < 0.4f) ray.push_back(v);
    }
    rays.push_back(std::move(ray));
  }
  auto depth = [](voxel::DenseVoxelId v) { return static_cast<float>(v); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::topological_voxel_order(rays, depth));
  }
}
BENCHMARK(BM_TopologicalOrder);

void BM_KMeansAssign(benchmark::State& state) {
  Rng rng(11);
  const std::size_t dim = 45;
  std::vector<float> centroids(512 * dim);
  for (auto& v : centroids) v = rng.normal();
  std::vector<float> query(dim);
  for (auto& v : query) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vq::nearest_centroid(centroids, dim, query));
    query[0] += 1e-5f;
  }
}
BENCHMARK(BM_KMeansAssign);

void BM_TileRenderFrame(benchmark::State& state) {
  const auto model = bench_model(static_cast<std::size_t>(state.range(0)));
  const auto cam = bench_camera(192, 192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(render::render_tile_centric(model, cam));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TileRenderFrame)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_StreamingRenderFrame(benchmark::State& state) {
  const auto model = bench_model(static_cast<std::size_t>(state.range(0)));
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto cam = bench_camera(192, 192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::render_streaming(scene, cam));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamingRenderFrame)->Arg(5000)->Arg(20000)->Unit(benchmark::kMillisecond);

// Multi-group stress: small pixel groups put the load on the per-group
// pipeline (scratch-arena reuse + pool scheduling) rather than the blending
// inner loop — the path the staged refactor targets.
void BM_StreamingRenderFrameFineGroups(benchmark::State& state) {
  const auto model = bench_model(20000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 0.5f;
  cfg.use_vq = false;
  cfg.group_size = static_cast<int>(state.range(0));
  const auto scene = core::StreamingScene::prepare(model, cfg);
  const auto cam = bench_camera(256, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::render_streaming(scene, cam));
  }
}
BENCHMARK(BM_StreamingRenderFrameFineGroups)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

// Per-frame voxel-table build (the FramePlan layer on its own).
void BM_FramePlanBuild(benchmark::State& state) {
  const auto model = bench_model(20000);
  const auto grid = voxel::VoxelGrid::build(model, 0.5f);
  const auto cam = bench_camera();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FramePlan::build(grid, cam, 32));
  }
}
BENCHMARK(BM_FramePlanBuild);

// Frame-sequence rendering under headset-like creep: nearly every frame
// reuses the cached plan, so the per-frame cost is the staged pipeline
// alone (no table rebuild).
void BM_StreamingSequenceCreep(benchmark::State& state) {
  const auto model = bench_model(20000);
  core::StreamingConfig cfg;
  cfg.voxel_size = 1.0f;
  cfg.use_vq = false;
  const auto scene = core::StreamingScene::prepare(model, cfg);
  core::SequenceRenderer sequence(scene);
  float x = 0.0f;
  for (auto _ : state) {
    const auto cam = gs::Camera::look_at({x, 0, -5}, {0, 0, 0}, {0, 1, 0},
                                         0.8f, 192, 192);
    benchmark::DoNotOptimize(sequence.render(cam));
    x += 1e-4f;  // creep well inside the reuse envelope
  }
}
BENCHMARK(BM_StreamingSequenceCreep)->Unit(benchmark::kMillisecond);

// ------------------------------------------------ BENCH_kernels.json pass ---

// Best-of-k wall time of fn() in milliseconds (k small: these workloads are
// hundreds of microseconds each, and min-of-k rejects scheduler noise).
template <typename Fn>
double best_ms(Fn&& fn, int reps = 7) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// Times the scalar-vs-SIMD comparison pass, verifies the tolerance contract
// on the way, and writes the flat JSON. Returns false on a kernel mismatch.
bool emit_kernels_json(const std::string& out_path) {
  const auto model = bench_model(4096);
  const auto cols = bench_columns(model);
  const auto cam = bench_camera();
  const simd::IsaLevel top = simd::detect_isa();

  // SoA-vs-AoS + scalar-vs-SIMD coarse filter.
  std::vector<std::uint32_t> idx_aos, idx_scalar, idx_simd;
  const double aos_ms = best_ms([&] {
    idx_aos.clear();
    for (std::size_t i = 0; i < model.gaussians.size(); ++i) {
      const auto& g = model.gaussians[i];
      const auto proj = gs::project_coarse(g.position, g.max_scale(), cam);
      if (proj && gs::disc_intersects_rect(proj->mean, proj->radius,
                                           kBenchRect.x0, kBenchRect.y0,
                                           kBenchRect.x1, kBenchRect.y1)) {
        idx_aos.push_back(static_cast<std::uint32_t>(i));
      }
    }
  });
  double coarse_scalar_ms, coarse_simd_ms;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    coarse_scalar_ms = best_ms([&] {
      idx_scalar.clear();
      gs::coarse_filter_batch(cols, 0, cols.size(), cam, kBenchRect, idx_scalar);
    });
  }
  {
    const simd::ScopedForceIsa pin(top);
    coarse_simd_ms = best_ms([&] {
      idx_simd.clear();
      gs::coarse_filter_batch(cols, 0, cols.size(), cam, kBenchRect, idx_simd);
    });
  }
  bool match = (idx_scalar == idx_aos) && (idx_simd == idx_scalar);

  // Fine projection over the coarse survivors.
  std::vector<gs::FineSurvivor> fine_scalar, fine_simd;
  double fine_scalar_ms, fine_simd_ms;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    fine_scalar_ms = best_ms([&] {
      fine_scalar.clear();
      gs::fine_project_batch(cols, 0, idx_scalar, cam, kBenchRect, fine_scalar);
    });
  }
  {
    const simd::ScopedForceIsa pin(top);
    fine_simd_ms = best_ms([&] {
      fine_simd.clear();
      gs::fine_project_batch(cols, 0, idx_scalar, cam, kBenchRect, fine_simd);
    });
  }
  match = match && fine_simd.size() == fine_scalar.size();
  const auto near_rel = [](float x, float y) {
    return std::abs(x - y) <=
           gs::kSimdAbsTolerance * std::max(1.0f, std::abs(y));
  };
  for (std::size_t j = 0; match && j < fine_simd.size(); ++j) {
    match = fine_simd[j].local == fine_scalar[j].local &&
            near_rel(fine_simd[j].proj.mean.x, fine_scalar[j].proj.mean.x) &&
            near_rel(fine_simd[j].proj.depth, fine_scalar[j].proj.depth) &&
            near_rel(fine_simd[j].proj.radius, fine_scalar[j].proj.radius);
  }

  // SH evaluation over every record.
  std::vector<std::uint32_t> locals(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    locals[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<Vec3f> col_scalar(cols.size()), col_simd(cols.size());
  double sh_scalar_ms, sh_simd_ms;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    sh_scalar_ms = best_ms(
        [&] { gs::eval_sh_batch(cols, 0, locals, {0, 0, -5}, col_scalar.data()); });
  }
  {
    const simd::ScopedForceIsa pin(top);
    sh_simd_ms = best_ms(
        [&] { gs::eval_sh_batch(cols, 0, locals, {0, 0, -5}, col_simd.data()); });
  }
  for (std::size_t i = 0; match && i < cols.size(); ++i) {
    match = std::abs(col_simd[i].x - col_scalar[i].x) <= gs::kSimdAbsTolerance &&
            std::abs(col_simd[i].y - col_scalar[i].y) <= gs::kSimdAbsTolerance &&
            std::abs(col_simd[i].z - col_scalar[i].z) <= gs::kSimdAbsTolerance;
  }

  // Alpha blending of a survivor stream into one 64x64 group.
  const auto stream = bench_survivor_stream(128);
  gs::BlendPlanes planes_scalar, planes_simd;
  std::vector<float> md;
  const auto blend_pass = [&](gs::BlendPlanes& planes) {
    planes.reset(64 * 64);
    md.assign(64 * 64, 0.0f);
    for (const auto& p : stream) {
      const gs::PixelSpan span =
          gs::splat_pixel_span(p.mean, p.radius, 0, 0, 64, 64);
      if (span.empty()) continue;
      gs::blend_survivor(planes, md, p, span, 0, 0, 64);
    }
  };
  double blend_scalar_ms, blend_simd_ms;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    blend_scalar_ms = best_ms([&] { blend_pass(planes_scalar); });
  }
  {
    const simd::ScopedForceIsa pin(top);
    blend_simd_ms = best_ms([&] { blend_pass(planes_simd); });
  }
  for (std::size_t pi = 0; match && pi < planes_scalar.size(); ++pi) {
    match = std::abs(planes_simd.r[pi] - planes_scalar.r[pi]) <=
                gs::kSimdAbsTolerance &&
            std::abs(planes_simd.t[pi] - planes_scalar.t[pi]) <=
                gs::kSimdAbsTolerance;
  }

  // Batched VQ codebook gather (bitwise contract).
  Rng rng(17);
  const std::size_t dim = 45, entries = 256, n = 4096;
  std::vector<float> cb(dim * entries);
  for (auto& v : cb) v = rng.normal();
  std::vector<std::uint32_t> gidx(n);
  for (auto& i : gidx) i = static_cast<std::uint32_t>(rng.uniform_index(entries));
  std::vector<float> dst_scalar(n * gs::kShCoeffCount, 0.0f);
  std::vector<float> dst_simd(n * gs::kShCoeffCount, 0.0f);
  const auto gather_pass = [&](std::vector<float>& dst) {
    for (std::size_t c = 0; c < 3; ++c) {
      gs::gather_codebook_column(dst.data() + c, gs::kShCoeffCount, cb.data(),
                                 gidx.data(), n, dim, c);
    }
  };
  double gather_scalar_ms, gather_simd_ms;
  {
    const simd::ScopedForceIsa pin(simd::IsaLevel::kScalar);
    gather_scalar_ms = best_ms([&] { gather_pass(dst_scalar); });
  }
  {
    const simd::ScopedForceIsa pin(top);
    gather_simd_ms = best_ms([&] { gather_pass(dst_simd); });
  }
  match = match && std::memcmp(dst_scalar.data(), dst_simd.data(),
                               dst_scalar.size() * sizeof(float)) == 0;

  const auto speedup = [](double a, double b) { return b > 0.0 ? a / b : 0.0; };
  std::ofstream json(out_path);
  json << "{\n"
       << "  \"isa_detected\": \"" << simd::isa_name(top) << "\",\n"
       << "  \"records\": " << cols.size() << ",\n"
       << "  \"coarse_aos_ms\": " << aos_ms << ",\n"
       << "  \"coarse_scalar_ms\": " << coarse_scalar_ms << ",\n"
       << "  \"coarse_simd_ms\": " << coarse_simd_ms << ",\n"
       << "  \"coarse_soa_vs_aos_speedup\": " << speedup(aos_ms, coarse_simd_ms)
       << ",\n"
       << "  \"coarse_simd_speedup\": "
       << speedup(coarse_scalar_ms, coarse_simd_ms) << ",\n"
       << "  \"fine_scalar_ms\": " << fine_scalar_ms << ",\n"
       << "  \"fine_simd_ms\": " << fine_simd_ms << ",\n"
       << "  \"fine_simd_speedup\": " << speedup(fine_scalar_ms, fine_simd_ms)
       << ",\n"
       << "  \"sh_scalar_ms\": " << sh_scalar_ms << ",\n"
       << "  \"sh_simd_ms\": " << sh_simd_ms << ",\n"
       << "  \"sh_simd_speedup\": " << speedup(sh_scalar_ms, sh_simd_ms) << ",\n"
       << "  \"blend_scalar_ms\": " << blend_scalar_ms << ",\n"
       << "  \"blend_simd_ms\": " << blend_simd_ms << ",\n"
       << "  \"blend_simd_speedup\": "
       << speedup(blend_scalar_ms, blend_simd_ms) << ",\n"
       << "  \"vq_gather_scalar_ms\": " << gather_scalar_ms << ",\n"
       << "  \"vq_gather_simd_ms\": " << gather_simd_ms << ",\n"
       << "  \"vq_gather_simd_speedup\": "
       << speedup(gather_scalar_ms, gather_simd_ms) << ",\n"
       << "  \"kernels_match\": " << (match ? "true" : "false") << "\n"
       << "}\n";
  std::printf("wrote %s (isa %s, kernels_match %s)\n", out_path.c_str(),
              simd::isa_name(top), match ? "true" : "false");
  return match;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernels.json";
  bool json_only = false;
  // Peel our own flags before google-benchmark parses the rest.
  int w = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json_only") {
      json_only = true;
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;

  if (!emit_kernels_json(out_path)) {
    std::fprintf(stderr, "FAILED: scalar-vs-SIMD kernel outputs diverged "
                         "beyond the tolerance contract\n");
    return 1;
  }
  if (json_only) return 0;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
