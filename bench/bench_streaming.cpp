// Out-of-core streaming benchmark (and CI smoke test).
//
// Three passes over the same walkthrough trajectory:
//   resident     — the whole prepared scene in memory (the pre-stream path)
//   out-of-core  — the scene serialized to a tiered .sgsc asset store (v2,
//                  three payload tiers), rendered through a ResidencyCache
//                  (byte budget << scene size) fed by the prefetching
//                  StreamingLoader with LOD forced to L0. The images must
//                  be bit-identical to the resident pass — the benchmark
//                  exits non-zero otherwise, which is what makes it a
//                  meaningful smoke test.
//   LOD frontier — a raw (uncompressed) tiered store rendered twice, L0-
//                  forced and at the default adaptive LodPolicy, reporting
//                  the bandwidth-vs-PSNR frontier: fetched bytes saved and
//                  the per-frame PSNR floor against the resident render.
//                  Exits non-zero unless the default policy saves >= 30%
//                  of fetched bytes at >= 30 dB min PSNR.
//
// Emits BENCH_streaming.json (flat key/value) for trend tracking; see
// docs/BENCHMARKS.md for the schema and how CI consumes it.
//
//   ./bench_streaming [--scene train] [--frames 8] [--model_scale 0.02]
//                     [--res_scale 0.25] [--arc 0.03] [--budget_kb 0]
//                     [--out BENCH_streaming.json]
//
// --budget_kb 0 picks a budget of ~35% of the store's decoded bytes, small
// enough to force eviction traffic on every preset.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/render_sequence.hpp"
#include "core/streaming_renderer.hpp"
#include "metrics/psnr.hpp"
#include "scene/presets.hpp"
#include "stream/asset_store.hpp"
#include "stream/lod_policy.hpp"
#include "stream/residency_cache.hpp"
#include "stream/streaming_loader.hpp"

namespace {

std::vector<sgs::gs::Camera> make_trajectory(sgs::scene::ScenePreset preset,
                                             int w, int h, int frames,
                                             float arc) {
  std::vector<sgs::gs::Camera> cams;
  cams.reserve(static_cast<std::size_t>(frames));
  for (int f = 0; f < frames; ++f) {
    const float t = arc * static_cast<float>(f) / static_cast<float>(frames);
    cams.push_back(sgs::scene::make_preset_camera(preset, w, h, t));
  }
  return cams;
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  const auto preset = scene::preset_from_name(args.get("scene", "train"));
  const int frames = args.get_int("frames", 8);
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.02));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.25));
  const float arc = static_cast<float>(args.get_double("arc", 0.03));
  const std::uint64_t budget_kb =
      static_cast<std::uint64_t>(args.get_int("budget_kb", 0));
  const std::string out_path = args.get("out", "BENCH_streaming.json");
  const std::string store_path = "/tmp/bench_streaming.sgsc";

  bench::print_header("out-of-core streaming: resident vs cache-backed vs LOD",
                      "bit-identical at L0, bandwidth-vs-PSNR frontier below");

  const auto model = scene::make_preset_scene(preset, model_scale);
  int w = 0, h = 0;
  scene::scaled_resolution(preset, res_scale, w, h);
  core::StreamingConfig scfg;
  scfg.voxel_size = scene::preset_info(preset).default_voxel_size;
  const auto scene_resident = core::StreamingScene::prepare(model, scfg);
  const auto cameras = make_trajectory(preset, w, h, frames, arc);

  core::SequenceOptions seq;
  seq.reuse_max_translation = 0.25f * scfg.voxel_size;
  seq.reuse_max_rotation_rad = 0.04f;

  // --- resident pass ---------------------------------------------------------
  const double t0 = now_ms();
  const auto resident = core::render_sequence(scene_resident, cameras, seq);
  const double resident_ms = (now_ms() - t0) / frames;

  // --- out-of-core pass (tiered store, LOD forced to L0) ---------------------
  stream::AssetStoreWriteOptions wopts;
  wopts.tier_count = 3;
  try {
    if (!stream::AssetStore::write(store_path, scene_resident, wopts)) {
      std::fprintf(stderr, "FAILED to write %s\n", store_path.c_str());
      return 1;
    }
  } catch (const stream::StreamException& e) {
    std::fprintf(stderr, "FAILED to write store: %s\n", e.what());
    return 1;
  }
  stream::AssetStore store(store_path);
  stream::ResidencyCacheConfig ccfg;
  // Default budget: 35% of the *decoded* working set (the budget's unit),
  // not of the on-disk payloads — under VQ those differ by ~10x.
  ccfg.budget_bytes = budget_kb > 0 ? budget_kb * 1024
                                    : store.decoded_bytes_total() * 35 / 100;
  stream::ResidencyCache cache(store, ccfg);
  stream::PrefetchConfig pcfg;
  pcfg.lod.force_tier0 = true;  // the golden invariant this bench enforces
  stream::StreamingLoader loader(cache, pcfg);
  const auto scene_ooc = store.make_scene();

  const double t1 = now_ms();
  const auto ooc = core::render_sequence(scene_ooc, cameras, seq, &loader);
  loader.wait_idle();
  const double ooc_ms = (now_ms() - t1) / frames;

  // --- compare + report ------------------------------------------------------
  bool identical = resident.frames.size() == ooc.frames.size();
  int stall_frames = 0;
  core::StreamCacheStats total;
  for (std::size_t f = 0; f < ooc.frames.size() && identical; ++f) {
    identical = resident.frames[f].image.pixels() == ooc.frames[f].image.pixels();
    total.accumulate(ooc.frames[f].trace.cache);
    if (ooc.frames[f].trace.cache.misses > 0) ++stall_frames;
  }

  bench::Table table({"mode", "frame ms", "hit rate", "fetched", "evictions",
                      "stall frames"});
  table.row({"resident", bench::fmt(resident_ms), "-", "-", "-", "-"});
  table.row({"out-of-core L0", bench::fmt(ooc_ms),
             bench::fmt(100.0 * total.hit_rate(), 1) + "%",
             format_bytes(static_cast<double>(total.bytes_fetched)),
             std::to_string(total.evictions), std::to_string(stall_frames)});
  table.print();
  std::printf("  store: %s L0 payloads (+%s L1, +%s L2) across %d voxel "
              "groups, budget %s\n",
              format_bytes(static_cast<double>(store.payload_bytes_total())).c_str(),
              format_bytes(static_cast<double>(store.payload_bytes_tier(1))).c_str(),
              format_bytes(static_cast<double>(store.payload_bytes_tier(2))).c_str(),
              store.group_count(),
              format_bytes(static_cast<double>(ccfg.budget_bytes)).c_str());
  std::printf("  images bit-identical: %s\n", identical ? "yes" : "NO");

  // --- LOD frontier (raw store: SH-band tiers carry the savings) -------------
  core::StreamingConfig rcfg = scfg;
  rcfg.use_vq = false;
  const auto scene_raw = core::StreamingScene::prepare(model, rcfg);
  try {
    if (!stream::AssetStore::write(store_path, scene_raw, wopts)) {
      std::fprintf(stderr, "FAILED to rewrite %s\n", store_path.c_str());
      return 1;
    }
  } catch (const stream::StreamException& e) {
    std::fprintf(stderr, "FAILED to rewrite store: %s\n", e.what());
    return 1;
  }
  stream::AssetStore raw_store(store_path);
  const auto resident_raw = core::render_sequence(scene_raw, cameras, seq);

  auto run_raw = [&](const stream::LodPolicy& lod) {
    stream::ResidencyCacheConfig rc;
    rc.budget_bytes = raw_store.decoded_bytes_total() * 35 / 100;
    stream::ResidencyCache rcache(raw_store, rc);
    stream::PrefetchConfig rp;
    rp.synchronous = true;  // reproducible fetch counters
    rp.lod = lod;
    stream::StreamingLoader rloader(rcache, rp);
    const auto sc = raw_store.make_scene();
    const auto out = core::render_sequence(sc, cameras, seq, &rloader);
    core::StreamCacheStats t;
    for (const auto& f : out.frames) t.accumulate(f.trace.cache);
    return std::make_pair(std::move(out), t);
  };

  stream::LodPolicy l0_policy;
  l0_policy.force_tier0 = true;
  const auto [raw_l0, raw_l0_stats] = run_raw(l0_policy);
  const auto [raw_lod, raw_lod_stats] = run_raw(stream::LodPolicy{});

  bool raw_identical = true;
  double psnr_min = 1e30, psnr_sum = 0.0;
  for (std::size_t f = 0; f < cameras.size(); ++f) {
    raw_identical = raw_identical && resident_raw.frames[f].image.pixels() ==
                                         raw_l0.frames[f].image.pixels();
    const double db = metrics::psnr_capped(resident_raw.frames[f].image,
                                           raw_lod.frames[f].image);
    psnr_min = std::min(psnr_min, db);
    psnr_sum += db;
  }
  const double psnr_mean = psnr_sum / static_cast<double>(cameras.size());
  const double savings =
      raw_l0_stats.bytes_fetched > 0
          ? 1.0 - static_cast<double>(raw_lod_stats.bytes_fetched) /
                      static_cast<double>(raw_l0_stats.bytes_fetched)
          : 0.0;

  bench::Table lod_table({"raw store pass", "fetched", "tier fetches L0/L1/L2",
                          "upgrades", "PSNR min/mean"});
  auto tier_fetches = [](const core::StreamCacheStats& s, int t) {
    return std::to_string(s.tier_misses[t] + s.tier_prefetches[t]);
  };
  lod_table.row({"forced L0",
                 format_bytes(static_cast<double>(raw_l0_stats.bytes_fetched)),
                 tier_fetches(raw_l0_stats, 0) + "/" +
                     tier_fetches(raw_l0_stats, 1) + "/" +
                     tier_fetches(raw_l0_stats, 2),
                 std::to_string(raw_l0_stats.upgrades), "exact"});
  lod_table.row({"default LodPolicy",
                 format_bytes(static_cast<double>(raw_lod_stats.bytes_fetched)),
                 tier_fetches(raw_lod_stats, 0) + "/" +
                     tier_fetches(raw_lod_stats, 1) + "/" +
                     tier_fetches(raw_lod_stats, 2),
                 std::to_string(raw_lod_stats.upgrades),
                 bench::fmt(psnr_min, 1) + "/" + bench::fmt(psnr_mean, 1) +
                     " dB"});
  lod_table.print();
  std::printf("  LOD frontier: %.1f%% fewer fetched bytes at %.1f dB min "
              "PSNR (gates: >= 30%% and >= 30 dB)\n",
              100.0 * savings, psnr_min);
  std::printf("  raw L0 pass bit-identical: %s\n", raw_identical ? "yes" : "NO");

  std::ofstream json(out_path);
  json << "{\n"
       << "  \"frames\": " << frames << ",\n"
       << "  \"resident_frame_ms\": " << resident_ms << ",\n"
       << "  \"ooc_frame_ms\": " << ooc_ms << ",\n"
       << "  \"hit_rate\": " << total.hit_rate() << ",\n"
       << "  \"hits\": " << total.hits << ",\n"
       << "  \"misses\": " << total.misses << ",\n"
       << "  \"prefetches\": " << total.prefetches << ",\n"
       << "  \"evictions\": " << total.evictions << ",\n"
       << "  \"bytes_fetched\": " << total.bytes_fetched << ",\n"
       << "  \"store_payload_bytes\": " << store.payload_bytes_total() << ",\n"
       << "  \"budget_bytes\": " << ccfg.budget_bytes << ",\n"
       << "  \"stall_frames\": " << stall_frames << ",\n"
       << "  \"bit_identical\": " << (identical ? "true" : "false") << ",\n"
       << "  \"lod_l0_bytes_fetched\": " << raw_l0_stats.bytes_fetched << ",\n"
       << "  \"lod_bytes_fetched\": " << raw_lod_stats.bytes_fetched << ",\n"
       << "  \"lod_fetch_savings\": " << savings << ",\n"
       << "  \"lod_psnr_min_db\": " << psnr_min << ",\n"
       << "  \"lod_psnr_mean_db\": " << psnr_mean << ",\n"
       << "  \"lod_upgrades\": " << raw_lod_stats.upgrades << ",\n"
       << "  \"lod_bit_identical\": " << (raw_identical ? "true" : "false")
       << "\n"
       << "}\n";
  std::printf("  wrote %s\n", out_path.c_str());

  std::remove(store_path.c_str());
  const bool lod_ok = savings >= 0.30 && psnr_min >= 30.0;
  if (!lod_ok) {
    std::fprintf(stderr,
                 "LOD frontier gate FAILED: savings %.3f psnr_min %.2f\n",
                 savings, psnr_min);
  }
  return (identical && raw_identical && lod_ok) ? 0 : 1;
}
