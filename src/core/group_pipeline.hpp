// The staged per-group rendering pipeline (paper Sec. III/IV):
//
//   VsuStage    — sampled-ray marching + topological voxel ordering
//   FilterStage — coarse/fine hierarchical filtering (HFU)
//   SortStage   — per-voxel bitonic depth sort
//   BlendStage  — on-chip alpha blending + final pixel resolve
//
// Stages communicate through a per-worker GroupContext scratch arena that is
// reused across groups and frames, so the hot loop performs no per-voxel
// heap allocation. Each stage is a free-standing component with its own
// entry point, individually testable and individually timeable; the
// GroupPipeline composes them into the exact computation the former
// monolithic renderer performed (bit-identical images and counters).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/hierarchical_filter.hpp"
#include "core/streaming_renderer.hpp"
#include "core/streaming_trace.hpp"
#include "core/voxel_order.hpp"
#include "gs/blending.hpp"
#include "gs/kernels.hpp"
#include "gs/projection.hpp"
#include "stream/group_source.hpp"
#include "voxel/grid.hpp"

namespace sgs::core {

// A Gaussian that survived hierarchical filtering for the current voxel.
struct Survivor {
  gs::ProjectedGaussian proj;
  std::uint32_t model_index = 0;
};

// Per-worker scratch arena. One instance is owned per pool worker by the
// FrameScheduler; capacity grows to the high-water mark of the groups a
// worker processes and is never released mid-frame.
struct GroupContext {
  // VSU: sampled ray coordinates and per-ray voxel orders. `per_ray` slots
  // beyond `per_ray_used` are stale-but-empty vectors kept for their
  // capacity; topological ordering ignores empty rays.
  std::vector<int> ray_xs, ray_ys;
  std::vector<std::vector<voxel::DenseVoxelId>> per_ray;
  std::size_t per_ray_used = 0;

  // Filter + sort. coarse_idx / fine_out are the batched kernels' scratch
  // (coarse survivor indices, fine survivors with projections).
  std::vector<std::uint32_t> coarse_idx;
  std::vector<gs::FineSurvivor> fine_out;
  std::vector<Survivor> survivors;
  std::vector<Survivor> sorted_survivors;
  std::vector<float> sort_keys;
  std::vector<std::uint32_t> sort_payload;

  // Blend: per-pixel compositing state for the current group, SoA planes so
  // the blender touches 8 contiguous floats per vector op.
  gs::BlendPlanes acc;
  std::vector<float> max_depth;
  int saturated = 0;

  // Model indices recorded while blending the current group.
  std::vector<std::uint32_t> violators;
  std::vector<std::uint32_t> contributors;

  // Resets per-group state (keeps every vector's capacity).
  void begin_group(int n_px);
  // Returns a cleared per-ray slot, reusing its previous capacity.
  std::vector<voxel::DenseVoxelId>& next_ray_slot();
};

// --------------------------------------------------------------- VsuStage --
struct VsuStageResult {
  VoxelOrderResult order;
  std::uint64_t dda_steps = 0;
};

class VsuStage {
 public:
  // Marches the group's sampled rays (stride grid that always includes the
  // last row/column) through the grid, appends the plan's candidate voxels
  // as ordering-free singleton rays, and topologically sorts the union.
  static VsuStageResult run(GroupContext& ctx, const voxel::VoxelGrid& grid,
                            const gs::Camera& camera, int px0, int py0,
                            int px1, int py1, int ray_stride,
                            const std::vector<voxel::DenseVoxelId>& candidates);
};

// ------------------------------------------------------------ FilterStage --
struct FilterStageCounts {
  std::uint32_t coarse_pass = 0;  // survivors entering the fine phase
  std::uint32_t fine_pass = 0;    // survivors entering sort + blend
};

class FilterStage {
 public:
  // Streams one voxel group's residents through the coarse and fine filters
  // into ctx.survivors (cleared first), in resident order. The group view
  // may come from a resident scene or a cache-backed store — the math (and
  // hence the survivor set) is identical.
  static FilterStageCounts run(GroupContext& ctx,
                               const stream::GroupView& group,
                               const gs::Camera& camera, const GroupRect& rect,
                               bool use_coarse_filter);

  // Convenience for the fully-resident path (wraps the scene's grouped
  // column slice for dense voxel `v` in a GroupView).
  static FilterStageCounts run(GroupContext& ctx, const StreamingScene& scene,
                               voxel::DenseVoxelId v, const gs::Camera& camera,
                               const GroupRect& rect, bool use_coarse_filter);
};

// -------------------------------------------------------------- SortStage --
class SortStage {
 public:
  // Depth-sorts ctx.survivors in place using the bitonic network the
  // hardware sorting unit implements (fixed comparator schedule, +inf
  // padding). No-op for fewer than two survivors.
  static void run(GroupContext& ctx);
};

// ------------------------------------------------------------- BlendStage --
class BlendStage {
 public:
  // Blends the (sorted) survivors of one voxel into the group accumulators,
  // updating item.blend_ops, the blend/violation counters of `stats`, and
  // ctx.violators / ctx.contributors.
  static void run(GroupContext& ctx, int px0, int py0, int px1, int py1,
                  VoxelWorkItem& item, StreamingStats& stats);

  // Final pixel write-back (the only rendering-stage DRAM write); adds the
  // group's frame bytes to stats.frame_write_bytes.
  static void resolve(const GroupContext& ctx, int px0, int py0, int px1,
                      int py1, Vec3f background, Image& image,
                      StreamingStats& stats);
};

// ----------------------------------------------------------- GroupPipeline --
struct GroupPipelineOptions {
  bool use_coarse_filter = true;
  int ray_stride = 8;
  bool collect_stage_timing = false;
};

class FramePlan;

class GroupPipeline {
 public:
  // Renders one pixel group end to end. Appends per-voxel work items and
  // stage timings to `work`, accumulates counters into `stats` (the caller
  // owns one slot per group for deterministic merging), records
  // contributors/violators in ctx, and writes the group's pixels to `image`.
  // `source` supplies each streamed voxel group's Gaussians (resident scene
  // or cache-backed store); the rendered bytes are identical either way.
  static void render_group(const StreamingScene& scene,
                           const gs::Camera& camera, const FramePlan& plan,
                           std::size_t group_index,
                           const GroupPipelineOptions& options,
                           stream::GroupSource& source, GroupContext& ctx,
                           GroupWork& work, StreamingStats& stats,
                           Image& image);
};

}  // namespace sgs::core
