// Frame scheduler: runs every pixel group of a FramePlan through the staged
// GroupPipeline on the persistent worker pool.
//
// Ownership model: the scheduler keeps one GroupContext scratch arena per
// pool worker, so consecutive groups (and consecutive frames, when the
// scheduler is kept alive by a SequenceRenderer) reuse the same buffers and
// the hot loop never reallocates. Group results land in per-group slots and
// are merged in group-index order after the parallel section, which makes
// every counter — including the unique-Gaussian sets — deterministic under
// any dynamic schedule.
//
// Thread-safety: one FrameScheduler renders one frame at a time — its
// per-worker arenas are reused across calls, so render_frame must not be
// invoked concurrently on the same instance. Distinct instances (e.g. one
// per viewer session in a serve::SceneServer) may render concurrently:
// their pool jobs serialize FIFO-fairly on the shared worker pool, and a
// cache-backed `source` must itself be thread-safe (ResidencyCache is).
// Within a frame, the pipeline calls source->acquire()/release() from any
// worker concurrently; every acquired view is released before the frame
// returns, and plan-level pinning is the *caller's* job (the sequence
// renderer brackets the frame with the source's begin_frame/end_frame).
#pragma once

#include <vector>

#include "core/frame_plan.hpp"
#include "core/group_pipeline.hpp"
#include "core/streaming_renderer.hpp"

namespace sgs::core {

class FrameScheduler {
 public:
  FrameScheduler();

  // Renders one frame: every group of `plan` through the staged pipeline.
  // `camera` must match the plan's image geometry — same size and
  // intrinsics; the pose may differ when sequence rendering reuses a plan.
  // A geometry mismatch throws std::invalid_argument (a stale plan would
  // otherwise mis-tile the frame silently). `source` supplies voxel-group
  // data: nullptr renders fully resident from `scene`; a cache-backed
  // source (src/stream/) renders out of core — the caller brackets the
  // frame with begin_frame/end_frame in that case.
  StreamingRenderResult render_frame(const StreamingScene& scene,
                                     const gs::Camera& camera,
                                     const FramePlan& plan,
                                     const StreamingRenderOptions& options,
                                     stream::GroupSource* source = nullptr);

 private:
  std::vector<GroupContext> contexts_;  // one per pool worker
};

}  // namespace sgs::core
