#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace sgs::simd {

namespace {

// -1 == no force; otherwise the int value of the forced IsaLevel.
std::atomic<int> g_forced{-1};

IsaLevel probe() {
#if defined(SGS_NO_SIMD)
  return IsaLevel::kScalar;
#elif defined(__x86_64__) || defined(__i386__)
  if (std::getenv("SGS_FORCE_SCALAR") != nullptr) return IsaLevel::kScalar;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return IsaLevel::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) return IsaLevel::kSse2;
  return IsaLevel::kScalar;
#else
  return IsaLevel::kScalar;
#endif
}

}  // namespace

IsaLevel detect_isa() {
  static const IsaLevel level = probe();
  return level;
}

IsaLevel active_isa() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  const IsaLevel detected = detect_isa();
  if (forced < 0) return detected;
  // Forcing up is clamped: never dispatch instructions the host lacks.
  return forced < static_cast<int>(detected) ? static_cast<IsaLevel>(forced)
                                             : detected;
}

void force_isa(IsaLevel level) {
  g_forced.store(static_cast<int>(level), std::memory_order_relaxed);
}

void clear_forced_isa() { g_forced.store(-1, std::memory_order_relaxed); }

const char* isa_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kSse2:
      return "sse2";
    case IsaLevel::kAvx2:
      return "avx2";
    case IsaLevel::kScalar:
    default:
      return "scalar";
  }
}

ScopedForceIsa::ScopedForceIsa(IsaLevel level)
    : previous_(g_forced.load(std::memory_order_relaxed)) {
  force_isa(level);
}

ScopedForceIsa::~ScopedForceIsa() {
  g_forced.store(previous_, std::memory_order_relaxed);
}

}  // namespace sgs::simd
