// Two-phase hierarchical filtering (paper Sec. III-B, "Redundant Gaussians
// in Voxels"), the algorithmic core of the HFU.
//
// Phase 1 (coarse-grained): loads only {x, y, z, s_max} (16 B) per Gaussian,
// computes a conservative projected center + radius (55 MACs) and rejects
// Gaussians that cannot intersect the pixel group. Phase 2 (fine-grained):
// loads the remaining parameters (raw 220 B, or 12 B of codebook indices
// under VQ), computes the exact conic/radius/color (427 MACs), and keeps
// only true intersectors.
//
// Invariant (tested): the coarse phase never rejects a Gaussian the fine
// phase would keep — project_coarse's radius upper-bounds the exact radius.
#pragma once

#include <optional>

#include "gs/camera.hpp"
#include "gs/gaussian.hpp"
#include "gs/projection.hpp"

namespace sgs::core {

// Pixel-space rectangle of a pixel group, [x0, x1) x [y0, y1).
struct GroupRect {
  float x0 = 0.0f;
  float y0 = 0.0f;
  float x1 = 0.0f;
  float y1 = 0.0f;
};

// Coarse-grained filter: true if the Gaussian *may* intersect the group.
// On pass, `out` (if non-null) receives the coarse projection.
bool coarse_filter(Vec3f position, float max_scale, const gs::Camera& cam,
                   const GroupRect& rect, gs::CoarseProjection* out = nullptr);

// Fine-grained filter: exact projection + intersection test. Returns the
// projected Gaussian when it truly overlaps the group.
std::optional<gs::ProjectedGaussian> fine_filter(const gs::Gaussian& g,
                                                 const gs::Camera& cam,
                                                 const GroupRect& rect);

}  // namespace sgs::core
