// Fig. 11 reproduction: end-to-end speedup and energy savings of GSCore and
// the three STREAMINGGS variants over the mobile GPU, per 3DGS algorithm,
// averaged over the four datasets.
//
// Paper averages: speedup GSCore 21.6x | w/o VQ+CGF ~20x | w/o CGF 22.2x |
// StreamingGS 45.7x; energy savings GSCore ~27x | StreamingGS 62.9x
// (2.1x / 2.3x over GSCore).
//
//   ./fig11_speedup_energy [--model_scale 0.04] [--res_scale 0.4]
//                          [--scenes lego,palace,train,truck,playroom,drjohnson]
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "sim/experiment.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.04));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.4));
  const auto scene_names =
      split_csv(args.get("scenes", "lego,palace,train,truck,playroom,drjohnson"));

  bench::print_header(
      "Fig. 11 - end-to-end speedup and energy savings over the GPU",
      "speedup: GSCore 21.6x, w/o VQ+CGF ~20x, w/o CGF 22.2x, StreamingGS "
      "45.7x | energy: GSCore ~27x, StreamingGS 62.9x");

  const std::array<sim::Variant, 3> variants = {
      sim::Variant::kNoVqNoCgf, sim::Variant::kNoCgf, sim::Variant::kFull};

  bench::Table table({"algorithm", "scene", "GSCore", "w/o VQ+CGF", "w/o CGF",
                      "StreamingGS", "E:GSCore", "E:w/o VQ+CGF", "E:w/o CGF",
                      "E:StreamingGS"});

  struct Avg {
    double speed[4] = {};   // gscore + 3 variants
    double energy[4] = {};
    int n = 0;
  };
  std::map<scene::Algorithm, Avg> averages;

  for (const scene::Algorithm algo : scene::kAllAlgorithms) {
    for (const auto& name : scene_names) {
      sim::ExperimentConfig cfg;
      cfg.preset = scene::preset_from_name(name);
      cfg.algorithm = algo;
      cfg.model_scale = model_scale;
      cfg.resolution_scale = res_scale;
      sim::SceneExperiment exp(cfg);

      const double gpu_s = exp.gpu().report.seconds;
      const double gpu_e = exp.gpu().report.energy_mj();
      Avg& avg = averages[algo];

      std::vector<std::string> row = {scene::algorithm_name(algo), name};
      std::vector<std::string> energy_cells;

      const double gs_speed = gpu_s / exp.gscore().seconds;
      const double gs_energy = gpu_e / exp.gscore().energy_mj();
      row.push_back(bench::fmt_ratio(gs_speed));
      energy_cells.push_back(bench::fmt_ratio(gs_energy));
      avg.speed[0] += gs_speed;
      avg.energy[0] += gs_energy;

      for (std::size_t v = 0; v < variants.size(); ++v) {
        const auto out = exp.run_variant(variants[v]);
        const double sp = gpu_s / out.accel.seconds;
        const double en = gpu_e / out.accel.energy_mj();
        row.push_back(bench::fmt_ratio(sp));
        energy_cells.push_back(bench::fmt_ratio(en));
        avg.speed[v + 1] += sp;
        avg.energy[v + 1] += en;
      }
      ++avg.n;
      row.insert(row.end(), energy_cells.begin(), energy_cells.end());
      table.row(row);
    }
  }

  for (const auto& [algo, avg] : averages) {
    std::vector<std::string> row = {std::string(scene::algorithm_name(algo)) + " AVG",
                                    ""};
    for (int i = 0; i < 4; ++i) row.push_back(bench::fmt_ratio(avg.speed[i] / avg.n));
    for (int i = 0; i < 4; ++i) row.push_back(bench::fmt_ratio(avg.energy[i] / avg.n));
    table.row(row);
  }
  table.print();

  // Grand averages in paper order.
  double sp[4] = {}, en[4] = {};
  int n = 0;
  for (const auto& [algo, avg] : averages) {
    (void)algo;
    for (int i = 0; i < 4; ++i) {
      sp[i] += avg.speed[i];
      en[i] += avg.energy[i];
    }
    n += avg.n;
  }
  std::printf(
      "\n  grand averages (vs GPU):\n"
      "    speedup: GSCore %.1fx | w/o VQ+CGF %.1fx | w/o CGF %.1fx | "
      "StreamingGS %.1fx   (paper: 21.6 / ~20 / 22.2 / 45.7)\n"
      "    energy:  GSCore %.1fx | w/o VQ+CGF %.1fx | w/o CGF %.1fx | "
      "StreamingGS %.1fx   (paper: ~27 / ~21 / ~27 / 62.9)\n"
      "    StreamingGS over GSCore: %.1fx speedup, %.1fx energy "
      "(paper: 2.1x / 2.3x)\n",
      sp[0] / n, sp[1] / n, sp[2] / n, sp[3] / n, en[0] / n, en[1] / n,
      en[2] / n, en[3] / n, sp[3] / sp[0], en[3] / en[0]);
  return 0;
}
