// LodPolicy: which payload tier each voxel group should stream at.
//
// A .sgsc v2 store carries up to kLodTierCount payload tiers per group
// (L0 full fidelity, L1/L2 importance-pruned — see asset_store.hpp). The
// policy maps a group's projected screen-space footprint to a requested
// tier: a group whose voxel spans many pixels needs every Gaussian, a
// group shrinking toward a dot does not. Selection is a *pure function* of
// (camera, policy, store) — it never reads cache residency — so a session's
// tier requests are deterministic and independent of who else shares the
// cache (the serve layer's "served == alone" reasoning depends on this).
//
// Budget-aware demotion: when frame_fetch_budget_bytes is set, plan groups
// are walked near-to-far and, once the worst-case fetch estimate of the
// tiers chosen so far exceeds the budget, every remaining (farther) group
// demotes to max_tier. The estimate deliberately charges every group as if
// it had to be fetched — residency would make selection depend on shared
// cache state. Frames that demoted at least one group below its footprint
// tier are "degraded" (ServerReport counts them per session).
//
// ABR (throughput) term: the bandwidth-adaptive half of demotion. A
// front-end that owns a BandwidthEstimator copies its current estimate
// into link_bandwidth_bytes_per_sec each frame before selection; with
// abr_frame_budget_ns set, the frame's effective byte budget becomes
// min(frame_fetch_budget_bytes, bandwidth * budget_ns * abr_safety) — the
// bytes the estimated link can actually move before the frame deadline.
// Demotions the ABR term forces *beyond* what the static budget alone
// would have are counted in TierSelection::abr_demoted. Selection stays a
// pure function of its inputs — the estimate is an explicit policy field,
// never read from shared state — but with ABR active the inputs include
// measured throughput, so cross-run bit-exactness holds only when the
// transfer schedule does (e.g. a deterministic SimulatedNetworkBackend).
// All defaults keep the term inert.
//
// force_tier0 is the golden-test switch: every request is L0, which makes
// out-of-core rendering bit-identical to resident rendering even on a
// multi-tier store.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stream/asset_store.hpp"
#include "stream/group_source.hpp"

namespace sgs::stream {

struct LodPolicy {
  // Footprint thresholds, in projected pixels of the voxel edge at the
  // group's nearest depth: >= full goes L0, >= half goes L1, below goes L2.
  float footprint_full_px = 96.0f;
  float footprint_half_px = 40.0f;
  // Lowest-fidelity tier the policy may request (further clamped by the
  // store's tier_count).
  int max_tier = kLodTierCount - 1;
  // Worst-case per-frame fetch-byte target for demotion; 0 disables.
  std::uint64_t frame_fetch_budget_bytes = 0;
  // Keep the store's coarsest tier out of deliberate selection: on a >1
  // tier store, adaptive requests clamp to tier_count - 2. Set when the
  // store was written with AssetStoreWriteOptions::with_coarse_floor —
  // there the last tier is a heavily-pruned fallback reserved for the
  // residency cache's always-resident floor, not a quality level a camera
  // should ever ask for on purpose.
  bool reserve_coarse_tier = false;
  // Request L0 everywhere (bit-exact out-of-core rendering).
  bool force_tier0 = false;

  // --- ABR throughput term (see the header comment) ---
  // Estimated link throughput, written by the owning front-end each frame
  // from its BandwidthEstimator. 0 = no estimate (term inert this frame).
  double link_bandwidth_bytes_per_sec = 0.0;
  // Time the frame's fetch traffic must fit into (the frame's fetch
  // deadline, typically); 0 disables the ABR term entirely.
  std::uint64_t abr_frame_budget_ns = 0;
  // Headroom fraction of the estimated link the budget may claim.
  double abr_safety = 0.85;
};

// Bytes the estimated link can move within the policy's ABR window, or 0
// when the term is inactive (disabled, or no estimate yet). Shared by
// select_frame_tiers and the prefetch byte-budget clamps.
std::uint64_t abr_frame_budget_bytes(const LodPolicy& policy);

// Per-frame outcome of tier selection over a FramePlan's candidate set.
struct TierSelection {
  // Dense voxel id -> requested tier. Groups outside the plan request L0
  // (they are only touched by prefetch, which ranks them itself).
  std::vector<std::uint8_t> tier_by_group;
  // Plan groups per requested tier.
  std::array<std::uint32_t, kLodTierCount> histogram{};
  // Plan groups pushed below their footprint tier by the byte budget.
  std::uint32_t demoted = 0;
  // The subset of `demoted` forced by the ABR throughput term alone — the
  // static frame_fetch_budget_bytes would have kept their footprint tier.
  std::uint32_t abr_demoted = 0;

  // The tier an acquire of `v` should request under this selection; a
  // default-constructed (never-selected) instance requests L0 everywhere.
  int tier_of(voxel::DenseVoxelId v) const {
    return tier_by_group.empty()
               ? 0
               : tier_by_group[static_cast<std::size_t>(v)];
  }
};

// The footprint tier for one group under `policy` (no budget demotion).
// Returns 0 when the intent has no camera.
int select_group_tier(const AssetStore& store, const FrameIntent& intent,
                      voxel::DenseVoxelId v, const LodPolicy& policy);

// Tier selection for a frame's plan candidates, including budget demotion.
TierSelection select_frame_tiers(const AssetStore& store,
                                 const FrameIntent& intent,
                                 std::span<const voxel::DenseVoxelId> plan_voxels,
                                 const LodPolicy& policy);

// Named presets for CLI flags (--lod / --quality):
//   "off" | "l0"  force_tier0 (bit-exact)
//   "quality"     conservative thresholds, little pruning
//   "balanced"    the LodPolicy{} defaults
//   "aggressive"  eager pruning, maximum fetch savings
// Throws std::invalid_argument on unknown names.
LodPolicy lod_policy_from_name(const std::string& name);

}  // namespace sgs::stream
