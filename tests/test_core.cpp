// Tests for the STREAMINGGS core: voxel ordering, hierarchical filtering,
// the streaming renderer's invariants, and boundary-aware fine-tuning.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/finetune.hpp"
#include "core/hierarchical_filter.hpp"
#include "core/streaming_renderer.hpp"
#include "core/voxel_order.hpp"
#include "gs/sh.hpp"
#include "metrics/psnr.hpp"
#include "render/tile_renderer.hpp"
#include "scene/generator.hpp"

namespace sgs::core {
namespace {

using voxel::DenseVoxelId;

// ------------------------------------------------------------- voxel order --

float unit_depth(DenseVoxelId v) { return static_cast<float>(v); }

TEST(VoxelOrder, EmptyInput) {
  const auto r = topological_voxel_order({}, unit_depth);
  EXPECT_TRUE(r.order.empty());
  EXPECT_EQ(r.cycle_breaks, 0u);
}

TEST(VoxelOrder, SingleRayKeepsItsOrder) {
  const std::vector<std::vector<DenseVoxelId>> rays = {{4, 5, 2, 6, 3}};
  const auto r = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(r.order, (std::vector<DenseVoxelId>{4, 5, 2, 6, 3}));
  EXPECT_EQ(r.edge_count, 4u);
  EXPECT_EQ(r.cycle_breaks, 0u);
}

TEST(VoxelOrder, PaperFigure5Example) {
  // Fig. 5: R0 = 4,5,2,3; R1 = 4,5,6,3; R2/R3 = 4,5,6.
  const std::vector<std::vector<DenseVoxelId>> rays = {
      {4, 5, 2, 3}, {4, 5, 6, 3}, {4, 5, 6}, {4, 5, 6}};
  const auto r = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(r.node_count, 5u);
  EXPECT_EQ(r.cycle_breaks, 0u);
  EXPECT_TRUE(order_respects_rays(r.order, rays));
  // The paper's global order 4,5,2,6,3 is one valid topological order; ours
  // must at least respect all per-ray dependencies.
  EXPECT_EQ(r.order.front(), 4);
  EXPECT_EQ(r.order.back(), 3);
}

TEST(VoxelOrder, MergesDisjointRays) {
  const std::vector<std::vector<DenseVoxelId>> rays = {{1, 2}, {10, 11}};
  const auto r = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(r.node_count, 4u);
  EXPECT_TRUE(order_respects_rays(r.order, rays));
}

TEST(VoxelOrder, DetectsAndBreaksCycle) {
  // Ray A: 1 -> 2, Ray B: 2 -> 1 (impossible from one camera but the VSU
  // must not hang).
  const std::vector<std::vector<DenseVoxelId>> rays = {{1, 2}, {2, 1}};
  const auto r = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(r.order.size(), 2u);
  EXPECT_EQ(r.cycle_breaks, 1u);
  // The closer node (depth key 1) is released first.
  EXPECT_EQ(r.order.front(), 1);
}

TEST(VoxelOrder, DuplicateEdgesCountedOnce) {
  const std::vector<std::vector<DenseVoxelId>> rays = {{1, 2, 3}, {1, 2, 3},
                                                       {2, 3}};
  const auto r = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(r.edge_count, 2u);
}

TEST(VoxelOrder, TieBreakByDepth) {
  // Two independent chains; all else equal, closer voxels emit first.
  const std::vector<std::vector<DenseVoxelId>> rays = {{5, 6}, {1, 2}};
  const auto r = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(r.order.front(), 1);
}

TEST(VoxelOrder, CycleBreakingIsDeterministic) {
  // A cycle-heavy input (two 3-cycles sharing node 2) must resolve to the
  // same order and the same break count on every run: the VSU's tie-break
  // is a fixed hardware policy, not an artifact of iteration order.
  const std::vector<std::vector<DenseVoxelId>> rays = {
      {1, 2}, {2, 3}, {3, 1}, {2, 4}, {4, 5}, {5, 2}};
  const auto first = topological_voxel_order(rays, unit_depth);
  EXPECT_GT(first.cycle_breaks, 0u);
  EXPECT_EQ(first.order.size(), 5u);
  for (int rep = 0; rep < 10; ++rep) {
    const auto again = topological_voxel_order(rays, unit_depth);
    EXPECT_EQ(again.order, first.order);
    EXPECT_EQ(again.cycle_breaks, first.cycle_breaks);
    EXPECT_EQ(again.edge_count, first.edge_count);
  }
}

TEST(VoxelOrder, ConflictingRaysCannotBothBeRespected) {
  // Two rays that disagree on the order of {1, 2}: whatever the sorter
  // emits, order_respects_rays must flag the violated ray — for the
  // result's own order and for both hand-written candidate orders.
  const std::vector<std::vector<DenseVoxelId>> rays = {{1, 2}, {2, 1}};
  const auto r = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(r.cycle_breaks, 1u);
  EXPECT_FALSE(order_respects_rays(r.order, rays));
  EXPECT_FALSE(order_respects_rays({1, 2}, rays));
  EXPECT_FALSE(order_respects_rays({2, 1}, rays));
  // Each ray alone is satisfiable.
  EXPECT_TRUE(order_respects_rays({1, 2}, {rays[0]}));
  EXPECT_TRUE(order_respects_rays({2, 1}, {rays[1]}));
}

TEST(VoxelOrder, RespectHelperRejectsMissingNodes) {
  // An order that omits a voxel some ray pierces cannot respect that ray.
  const std::vector<std::vector<DenseVoxelId>> rays = {{1, 2, 3}};
  EXPECT_FALSE(order_respects_rays({1, 3}, rays));
  EXPECT_TRUE(order_respects_rays({1, 2, 3}, rays));
}

class VoxelOrderRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VoxelOrderRandom, RandomRaySubsequencesRespected) {
  // Per-ray orders generated as subsequences of one global depth order are
  // always acyclic; the topological order must respect all of them with no
  // cycle breaks.
  Rng rng(GetParam());
  std::vector<std::vector<DenseVoxelId>> rays;
  const int n_vox = 40;
  for (int r = 0; r < 64; ++r) {
    std::vector<DenseVoxelId> ray;
    for (int v = 0; v < n_vox; ++v) {
      if (rng.uniform() < 0.3f) ray.push_back(v);
    }
    rays.push_back(std::move(ray));
  }
  const auto result = topological_voxel_order(rays, unit_depth);
  EXPECT_EQ(result.cycle_breaks, 0u);
  EXPECT_TRUE(order_respects_rays(result.order, rays));
  // Each node appears exactly once.
  std::vector<DenseVoxelId> sorted = result.order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VoxelOrderRandom,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------- hierarchical filter --

gs::Camera test_camera(int w = 256, int h = 256) {
  return gs::Camera::look_at({0, 0, -5}, {0, 0, 0}, {0, 1, 0}, 0.8f, w, h);
}

TEST(HierarchicalFilter, CoarseAcceptsCentered) {
  const gs::Camera cam = test_camera();
  const GroupRect rect{96, 96, 160, 160};  // center block
  EXPECT_TRUE(coarse_filter({0, 0, 0}, 0.1f, cam, rect));
}

TEST(HierarchicalFilter, CoarseRejectsOffscreen) {
  const gs::Camera cam = test_camera();
  const GroupRect rect{0, 0, 64, 64};
  // A small Gaussian whose projection lands in the far opposite corner of
  // the image (projected position checked explicitly).
  const Vec3f pos{-2.0f, -2.0f, 0.0f};
  const auto proj = gs::project_coarse(pos, 0.01f, cam);
  ASSERT_TRUE(proj.has_value());
  ASSERT_GT(proj->mean.x, 128.0f);
  EXPECT_FALSE(coarse_filter(pos, 0.01f, cam, rect));
}

TEST(HierarchicalFilter, CoarseNeverRejectsFineAccepted) {
  // The conservativeness invariant at the filter level, over random
  // Gaussians and random group rectangles.
  Rng rng(1234);
  const gs::Camera cam = test_camera();
  int fine_accepts = 0;
  for (int i = 0; i < 2000; ++i) {
    gs::Gaussian g;
    g.position = rng.uniform_vec3(-2.5f, 2.5f);
    g.scale = {rng.uniform(0.005f, 0.4f), rng.uniform(0.005f, 0.4f),
               rng.uniform(0.005f, 0.4f)};
    g.rotation = Quatf::from_axis_angle(rng.unit_sphere(), rng.uniform(0.0f, 6.28f));
    g.opacity = rng.uniform(0.1f, 0.99f);
    const float gx = rng.uniform(0.0f, 192.0f);
    const float gy = rng.uniform(0.0f, 192.0f);
    const GroupRect rect{gx, gy, gx + 64.0f, gy + 64.0f};
    const auto fine = fine_filter(g, cam, rect);
    if (!fine) continue;
    ++fine_accepts;
    EXPECT_TRUE(coarse_filter(g.position, g.max_scale(), cam, rect))
        << "coarse rejected a fine-accepted Gaussian (i=" << i << ")";
  }
  EXPECT_GT(fine_accepts, 50);
}

TEST(HierarchicalFilter, CoarseOutputsProjection) {
  const gs::Camera cam = test_camera();
  const GroupRect rect{0, 0, 256, 256};
  gs::CoarseProjection proj;
  ASSERT_TRUE(coarse_filter({0, 0, 0}, 0.1f, cam, rect, &proj));
  EXPECT_NEAR(proj.depth, 5.0f, 1e-3f);
  EXPECT_GT(proj.radius, 0.0f);
}

TEST(HierarchicalFilter, FilterReducesWork) {
  // On a realistic scene, the two-phase filter must reject a substantial
  // share of streamed Gaussians (paper: 76.3% filtered).
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = 20000;
  cfg.extent_min = {-4, -4, -4};
  cfg.extent_max = {4, 4, 4};
  cfg.seed = 3;
  const auto model = scene::generate_scene(cfg);

  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const auto r = render_streaming(scene, test_camera());
  EXPECT_GT(r.stats.filtered_fraction(), 0.3);
  EXPECT_LE(r.stats.fine_pass, r.stats.coarse_pass);
  EXPECT_LE(r.stats.coarse_pass, r.stats.gaussians_streamed);
}

// ------------------------------------------------------ streaming renderer --

scene::GeneratorConfig small_scene_cfg(std::uint64_t seed,
                                       std::size_t n = 8000) {
  scene::GeneratorConfig cfg;
  cfg.gaussian_count = n;
  cfg.extent_min = {-3, -3, -3};
  cfg.extent_max = {3, 3, 3};
  cfg.log_scale_mean = -4.6f;
  cfg.log_scale_std = 0.5f;
  cfg.seed = seed;
  return cfg;
}

TEST(StreamingRenderer, SingleVoxelEqualsTileCentric) {
  // Exactness condition: with the whole scene in one voxel the streaming
  // pipeline degenerates to a global depth sort and must reproduce the
  // tile-centric image bit-for-bit (same blend math, same pixel sets).
  const auto model = scene::generate_scene(small_scene_cfg(21));
  const gs::Camera cam = test_camera();

  StreamingConfig scfg;
  scfg.voxel_size = 1000.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const auto streamed = render_streaming(scene, cam);
  const auto reference = render::render_tile_centric(model, cam);

  EXPECT_GT(metrics::psnr(streamed.image, reference.image), 60.0);
  EXPECT_EQ(streamed.stats.depth_order_violations, 0u);
  EXPECT_EQ(streamed.stats.cycle_breaks, 0u);
}

TEST(StreamingRenderer, NoBoundaryCrossersMeansNoViolations) {
  // Construct a model where no Gaussian's 3-sigma box crosses a voxel
  // boundary; streaming order then cannot produce depth inversions. The
  // grid origin floats with the model bounds, so crossers are culled
  // iteratively until the ratio is exactly zero.
  gs::GaussianModel model;
  Rng rng(5);
  const float vox = 1.0f;
  // Two near-point anchors pin the model bounds (and thus the grid origin)
  // so one culling pass suffices. Their 3-sigma extent (3e-6) is below the
  // grid's origin epsilon, so they never cross a boundary themselves.
  for (const float corner : {-3.2f, 3.2f}) {
    gs::Gaussian a;
    a.position = Vec3f::splat(corner);
    a.scale = Vec3f::splat(1e-6f);
    a.opacity = 0.5f;
    model.gaussians.push_back(a);
  }
  for (int i = 0; i < 5000; ++i) {
    gs::Gaussian g;
    g.position = rng.uniform_vec3(-3.0f, 3.0f);
    const float s = rng.uniform(0.005f, 0.04f);
    g.scale = {s, s * rng.uniform(0.5f, 1.0f), s * rng.uniform(0.5f, 1.0f)};
    g.rotation = Quatf::from_axis_angle(rng.unit_sphere(), rng.uniform(0.0f, 6.28f));
    g.opacity = rng.uniform(0.3f, 0.99f);
    g.sh[0] = gs::color_to_dc({rng.uniform(), rng.uniform(), rng.uniform()});
    model.gaussians.push_back(g);
  }
  {
    const voxel::VoxelGrid grid = voxel::VoxelGrid::build(model, vox);
    gs::GaussianModel kept;
    for (const auto& g : model.gaussians) {
      if (!grid.crosses_boundary(g)) kept.gaussians.push_back(g);
    }
    model = std::move(kept);
  }
  ASSERT_GT(model.size(), 1000u);

  StreamingConfig scfg;
  scfg.voxel_size = vox;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  ASSERT_NEAR(scene.grid().cross_boundary_ratio(model), 0.0, 1e-9);

  const gs::Camera cam = test_camera();
  const auto streamed = render_streaming(scene, cam);
  EXPECT_EQ(streamed.stats.depth_order_violations, 0u);

  // And the image matches the reference closely (only FP-order effects).
  const auto reference = render::render_tile_centric(model, cam);
  EXPECT_GT(metrics::psnr(streamed.image, reference.image), 45.0);
}

TEST(StreamingRenderer, ZeroIntermediateTraffic) {
  const auto model = scene::generate_scene(small_scene_cfg(22));
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const auto r = render_streaming(scene, test_camera());
  // The only DRAM traffic is the two model streams plus the frame write.
  EXPECT_EQ(r.stats.total_dram_bytes(),
            r.stats.coarse_read_bytes + r.stats.fine_read_bytes +
                r.stats.frame_write_bytes);
  EXPECT_EQ(r.stats.frame_write_bytes, 256u * 256u * 4u);
  // Trace aggregates agree with stats.
  EXPECT_EQ(r.trace.total_dram_bytes(), r.stats.total_dram_bytes());
  EXPECT_EQ(r.trace.total_residents(), r.stats.gaussians_streamed);
  EXPECT_EQ(r.trace.total_fine_pass(), r.stats.fine_pass);
  EXPECT_EQ(r.trace.total_blend_ops(), r.stats.blend_ops);
}

TEST(StreamingRenderer, TrafficMatchesLayoutRecords) {
  const auto model = scene::generate_scene(small_scene_cfg(23, 4000));
  for (const bool vq : {false, true}) {
    StreamingConfig scfg;
    scfg.voxel_size = 1.5f;
    scfg.use_vq = vq;
    scfg.vq.scale_entries = 64;  // keep the test fast
    scfg.vq.rotation_entries = 64;
    scfg.vq.dc_entries = 64;
    scfg.vq.sh_entries = 32;
    scfg.vq.kmeans_iters = 3;
    scfg.vq.max_train_samples = 2048;
    const StreamingScene scene = StreamingScene::prepare(model, scfg);
    const auto r = render_streaming(scene, test_camera(128, 128));
    EXPECT_EQ(r.stats.coarse_read_bytes,
              r.stats.gaussians_streamed * voxel::kCoarseRecordBytes);
    const std::uint64_t fine_rec =
        vq ? voxel::kFineRecordVqBytes : voxel::kFineRecordRawBytes;
    EXPECT_EQ(r.stats.fine_read_bytes, r.stats.coarse_pass * fine_rec);
  }
}

TEST(StreamingRenderer, DisablingCoarseFilterPassesEverything) {
  const auto model = scene::generate_scene(small_scene_cfg(24, 3000));
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  scfg.use_coarse_filter = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  const auto r = render_streaming(scene, test_camera(128, 128));
  EXPECT_EQ(r.stats.coarse_pass, r.stats.gaussians_streamed);
}

TEST(StreamingRenderer, CoarseFilterOverrideMatchesConfig) {
  const auto model = scene::generate_scene(small_scene_cfg(25, 3000));
  StreamingConfig with_cgf;
  with_cgf.voxel_size = 1.0f;
  with_cgf.use_vq = false;
  with_cgf.use_coarse_filter = true;
  const StreamingScene scene = StreamingScene::prepare(model, with_cgf);

  StreamingRenderOptions override_off;
  override_off.coarse_filter_override = false;
  const auto off = render_streaming(scene, test_camera(128, 128), override_off);
  EXPECT_EQ(off.stats.coarse_pass, off.stats.gaussians_streamed);

  const auto on = render_streaming(scene, test_camera(128, 128));
  EXPECT_LT(on.stats.coarse_pass, on.stats.gaussians_streamed);
  // The image is identical either way: the coarse filter only skips
  // Gaussians the fine filter rejects anyway.
  EXPECT_GT(metrics::psnr(on.image, off.image), 90.0);
}

TEST(StreamingRenderer, CgfImageIdenticalToNoCgf) {
  // Stronger version of the conservativeness property at image level on a
  // scene with large overlapping splats.
  scene::GeneratorConfig cfg = small_scene_cfg(26, 5000);
  cfg.log_scale_mean = -3.5f;  // bigger splats
  const auto model = scene::generate_scene(cfg);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  StreamingRenderOptions no_cgf;
  no_cgf.coarse_filter_override = false;
  const auto a = render_streaming(scene, test_camera(128, 128));
  const auto b = render_streaming(scene, test_camera(128, 128), no_cgf);
  EXPECT_EQ(a.image.pixels(), b.image.pixels());
  EXPECT_EQ(a.stats.fine_pass, b.stats.fine_pass);
}

TEST(StreamingRenderer, ViolatorCollection) {
  // A scene engineered to cross boundaries: large flat splats near voxel
  // faces.
  scene::GeneratorConfig cfg = small_scene_cfg(27, 6000);
  cfg.log_scale_mean = -2.8f;
  const auto model = scene::generate_scene(cfg);
  StreamingConfig scfg;
  scfg.voxel_size = 0.8f;
  scfg.use_vq = false;
  const StreamingScene scene = StreamingScene::prepare(model, scfg);
  StreamingRenderOptions opts;
  opts.collect_violators = true;
  const auto r = render_streaming(scene, test_camera(), opts);
  if (r.stats.depth_order_violations > 0) {
    EXPECT_FALSE(r.violators.empty());
    for (std::uint32_t v : r.violators) EXPECT_LT(v, model.size());
    // Sorted and unique.
    EXPECT_TRUE(std::is_sorted(r.violators.begin(), r.violators.end()));
    EXPECT_TRUE(std::adjacent_find(r.violators.begin(), r.violators.end()) ==
                r.violators.end());
  }
}

TEST(StreamingRenderer, RayStrideOneMatchesDefaultDiscovery) {
  const auto model = scene::generate_scene(small_scene_cfg(28, 5000));
  StreamingConfig a;
  a.voxel_size = 1.0f;
  a.use_vq = false;
  a.ray_stride = 1;
  StreamingConfig b = a;
  b.ray_stride = 8;
  const auto ra = render_streaming(StreamingScene::prepare(model, a), test_camera());
  const auto rb = render_streaming(StreamingScene::prepare(model, b), test_camera());
  // Sparse sampling must not lose visible content: images nearly identical.
  EXPECT_GT(metrics::psnr(ra.image, rb.image), 38.0);
  // But it must cost far fewer VSU steps.
  EXPECT_LT(rb.stats.dda_steps * 10, ra.stats.dda_steps);
}

TEST(StreamingRenderer, GroupSizeInvariance) {
  const auto model = scene::generate_scene(small_scene_cfg(29, 5000));
  StreamingConfig a;
  a.voxel_size = 1.0f;
  a.use_vq = false;
  a.group_size = 16;
  StreamingConfig b = a;
  b.group_size = 64;
  const auto ra = render_streaming(StreamingScene::prepare(model, a), test_camera());
  const auto rb = render_streaming(StreamingScene::prepare(model, b), test_camera());
  EXPECT_GT(metrics::psnr(ra.image, rb.image), 35.0);
  // Bigger groups stream fewer voxel visits.
  EXPECT_LT(rb.stats.voxel_visits, ra.stats.voxel_visits);
}

// ---------------------------------------------------------------- finetune --

TEST(Finetune, ReducesViolationsAndImprovesQuality) {
  // A crossing-heavy scene, small voxels: fine-tuning must shrink the error
  // Gaussian ratio substantially (paper Fig. 7: 2.3% -> 0.4%) while the
  // streaming-vs-tile consistency PSNR recovers.
  scene::GeneratorConfig cfg = small_scene_cfg(31, 6000);
  cfg.log_scale_mean = -2.8f;
  const auto model = scene::generate_scene(cfg);
  const gs::Camera cam = test_camera(192, 192);
  const auto reference = render::render_tile_centric(model, cam);

  StreamingConfig scfg;
  scfg.voxel_size = 0.7f;
  scfg.use_vq = false;

  FinetuneConfig ft;
  ft.iterations = 600;
  ft.refresh_every = 100;
  const FinetuneResult r =
      boundary_aware_finetune(model, scfg, cam, reference.image, ft);

  ASSERT_GE(r.history.size(), 3u);
  const auto& first = r.history.front();
  const auto& last = r.history.back();
  EXPECT_GT(first.violation_ratio, 0.0);
  EXPECT_LT(last.violation_ratio, first.violation_ratio * 0.7);
  EXPECT_GE(last.psnr_db, first.psnr_db);
  EXPECT_LT(last.cross_boundary_ratio, first.cross_boundary_ratio);
  // Positions must not move (the paper keeps geometry fixed).
  for (std::size_t i = 0; i < model.size(); i += 311) {
    EXPECT_EQ(r.model.gaussians[i].position, model.gaussians[i].position);
  }
  // Scales shrink only (violators) or stay fixed.
  for (std::size_t i = 0; i < model.size(); i += 97) {
    EXPECT_LE(r.model.gaussians[i].scale.max_component(),
              model.gaussians[i].scale.max_component() * 1.01f);
  }
}

TEST(Finetune, HistoryIterationsMonotone) {
  const auto model = scene::generate_scene(small_scene_cfg(32, 2000));
  const gs::Camera cam = test_camera(96, 96);
  const auto reference = render::render_tile_centric(model, cam);
  StreamingConfig scfg;
  scfg.voxel_size = 1.0f;
  FinetuneConfig ft;
  ft.iterations = 200;
  ft.refresh_every = 50;
  const FinetuneResult r =
      boundary_aware_finetune(model, scfg, cam, reference.image, ft);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GT(r.history[i].iteration, r.history[i - 1].iteration);
  }
  EXPECT_EQ(r.history.back().iteration, 200);
}

TEST(Finetune, MinScaleFloorHolds) {
  const auto model = scene::generate_scene(small_scene_cfg(33, 1500));
  const gs::Camera cam = test_camera(96, 96);
  const auto reference = render::render_tile_centric(model, cam);
  StreamingConfig scfg;
  scfg.voxel_size = 0.5f;
  FinetuneConfig ft;
  ft.iterations = 400;
  ft.refresh_every = 100;
  ft.min_scale_factor = 0.5f;  // aggressive floor for the test
  const FinetuneResult r =
      boundary_aware_finetune(model, scfg, cam, reference.image, ft);
  for (std::size_t i = 0; i < model.size(); ++i) {
    EXPECT_GE(r.model.gaussians[i].scale.x,
              model.gaussians[i].scale.x * 0.5f * 0.999f);
  }
}

}  // namespace
}  // namespace sgs::core
