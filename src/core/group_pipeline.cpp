#include "core/group_pipeline.hpp"

#include <algorithm>
#include <utility>

#include "common/bitonic.hpp"
#include "core/frame_plan.hpp"
#include "obs/trace.hpp"
#include "voxel/dda.hpp"
#include "voxel/layout.hpp"

namespace sgs::core {

// ------------------------------------------------------------ GroupContext --

void GroupContext::begin_group(int n_px) {
  // Clear every slot, not just the ones the next group will claim: the
  // topological sort sees the whole per_ray vector, and a stale non-empty
  // slot from a larger previous group would inject phantom ordering rays.
  // clear() keeps each slot's capacity, so the arena still never reallocates.
  for (auto& slot : per_ray) slot.clear();
  per_ray_used = 0;
  acc.reset(static_cast<std::size_t>(n_px));
  max_depth.assign(static_cast<std::size_t>(n_px), 0.0f);
  saturated = 0;
  violators.clear();
  contributors.clear();
}

std::vector<voxel::DenseVoxelId>& GroupContext::next_ray_slot() {
  if (per_ray_used == per_ray.size()) per_ray.emplace_back();
  auto& slot = per_ray[per_ray_used++];
  slot.clear();
  return slot;
}

// ---------------------------------------------------------------- VsuStage --

VsuStageResult VsuStage::run(GroupContext& ctx, const voxel::VoxelGrid& grid,
                             const gs::Camera& camera, int px0, int py0,
                             int px1, int py1, int ray_stride,
                             const std::vector<voxel::DenseVoxelId>& candidates) {
  VsuStageResult out;

  // Rays are marched on a stride grid that always includes the group's
  // last row/column, so the sampled frustum spans the full group.
  const int stride = std::max(1, ray_stride);
  auto& xs = ctx.ray_xs;
  auto& ys = ctx.ray_ys;
  xs.clear();
  ys.clear();
  for (int px = px0; px < px1; px += stride) xs.push_back(px);
  if (xs.empty() || xs.back() != px1 - 1) xs.push_back(px1 - 1);
  for (int py = py0; py < py1; py += stride) ys.push_back(py);
  if (ys.empty() || ys.back() != py1 - 1) ys.push_back(py1 - 1);

  voxel::DdaStats dda_stats;
  for (int py : ys) {
    for (int px : xs) {
      const gs::Ray ray = camera.pixel_ray(static_cast<float>(px) + 0.5f,
                                           static_cast<float>(py) + 0.5f);
      voxel::intersected_voxels_into(ray, grid, 1e30f, &dda_stats,
                                     ctx.next_ray_slot());
    }
  }
  out.dda_steps = dda_stats.steps;

  // Voxel-table candidates join as singleton "rays": they contribute no
  // ordering constraints (the depth-keyed heap places them) but guarantee
  // complete coverage for pixels the sampled rays missed.
  for (const voxel::DenseVoxelId v : candidates) {
    ctx.next_ray_slot().push_back(v);
  }

  // Global voxel order via topological sort. Trailing per_ray slots beyond
  // per_ray_used are empty (cleared on reuse) and contribute nothing.
  const Vec3f cam_pos = camera.position();
  out.order = topological_voxel_order(ctx.per_ray, [&](voxel::DenseVoxelId v) {
    return (grid.voxel_center(v) - cam_pos).norm();
  });
  return out;
}

// ------------------------------------------------------------- FilterStage --

FilterStageCounts FilterStage::run(GroupContext& ctx,
                                   const stream::GroupView& group,
                                   const gs::Camera& camera,
                                   const GroupRect& rect,
                                   bool use_coarse_filter) {
  FilterStageCounts counts;
  ctx.survivors.clear();
  ctx.coarse_idx.clear();
  ctx.fine_out.clear();
  const std::size_t n = group.size();
  // A degraded acquire (fetch/decode failure) yields an empty view with no
  // column store at all — nothing to filter, and `*group.cols` below would
  // be a null dereference.
  if (n == 0 || group.cols == nullptr) return counts;
  const gs::FilterRect frect{rect.x0, rect.y0, rect.x1, rect.y1};
  // Coarse phase over the whole slice, then fine phase over the coarse
  // survivors. Both filters are monotone per record, so the two-phase
  // batched form makes the same decisions in the same resident order as the
  // historical interleaved loop — identical survivors and counters.
  if (use_coarse_filter) {
    gs::coarse_filter_batch(*group.cols, group.first, n, camera, frect,
                            ctx.coarse_idx);
  } else {
    ctx.coarse_idx.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      ctx.coarse_idx[k] = static_cast<std::uint32_t>(k);
    }
  }
  counts.coarse_pass = static_cast<std::uint32_t>(ctx.coarse_idx.size());
  gs::fine_project_batch(*group.cols, group.first, ctx.coarse_idx, camera,
                         frect, ctx.fine_out);
  counts.fine_pass = static_cast<std::uint32_t>(ctx.fine_out.size());
  ctx.survivors.reserve(ctx.fine_out.size());
  for (const gs::FineSurvivor& f : ctx.fine_out) {
    ctx.survivors.push_back({f.proj, group.model_indices[f.local]});
  }
  return counts;
}

FilterStageCounts FilterStage::run(GroupContext& ctx,
                                   const StreamingScene& scene,
                                   voxel::DenseVoxelId v,
                                   const gs::Camera& camera,
                                   const GroupRect& rect,
                                   bool use_coarse_filter) {
  stream::GroupView view;
  view.model_indices = scene.grid().gaussians_in(v);
  view.cols = &scene.group_columns();
  view.first = scene.group_offset(v);
  return run(ctx, view, camera, rect, use_coarse_filter);
}

// --------------------------------------------------------------- SortStage --

void SortStage::run(GroupContext& ctx) {
  auto& survivors = ctx.survivors;
  if (survivors.size() <= 1) return;
  // The actual bitonic network the hardware sorting unit implements (fixed
  // comparator schedule, +inf padding), applied to depth keys with the
  // survivor index as payload.
  ctx.sort_keys.resize(survivors.size());
  ctx.sort_payload.resize(survivors.size());
  for (std::size_t k = 0; k < survivors.size(); ++k) {
    ctx.sort_keys[k] = survivors[k].proj.depth;
    ctx.sort_payload[k] = static_cast<std::uint32_t>(k);
  }
  bitonic_sort(ctx.sort_keys, ctx.sort_payload);
  ctx.sorted_survivors.clear();
  ctx.sorted_survivors.reserve(survivors.size());
  for (std::uint32_t idx : ctx.sort_payload) {
    ctx.sorted_survivors.push_back(survivors[idx]);
  }
  survivors.swap(ctx.sorted_survivors);
}

// -------------------------------------------------------------- BlendStage --

void BlendStage::run(GroupContext& ctx, int px0, int py0, int px1, int py1,
                     VoxelWorkItem& item, StreamingStats& stats) {
  const int n_px = (px1 - px0) * (py1 - py0);
  const int row = px1 - px0;
  for (const Survivor& s : ctx.survivors) {
    if (ctx.saturated == n_px) break;
    const gs::PixelSpan span =
        gs::splat_pixel_span(s.proj.mean, s.proj.radius, px0, py0, px1, py1);
    if (span.x0 >= span.x1 || span.y0 >= span.y1) continue;
    const gs::BlendCounters c = gs::blend_survivor(
        ctx.acc, ctx.max_depth, s.proj, span, px0, py0, row);
    item.blend_ops += c.blend_ops;
    stats.blended_contributions += c.contributions;
    stats.depth_order_violations += c.violations;
    ctx.saturated += static_cast<int>(c.newly_saturated);
    if (c.contributed) ctx.contributors.push_back(s.model_index);
    if (c.violated) ctx.violators.push_back(s.model_index);
  }
}

void BlendStage::resolve(const GroupContext& ctx, int px0, int py0, int px1,
                         int py1, Vec3f background, Image& image,
                         StreamingStats& stats) {
  int pi = 0;
  for (int py = py0; py < py1; ++py) {
    for (int px = px0; px < px1; ++px, ++pi) {
      const auto i = static_cast<std::size_t>(pi);
      const gs::PixelAccumulator a{
          {ctx.acc.r[i], ctx.acc.g[i], ctx.acc.b[i]}, ctx.acc.t[i]};
      image.at(px, py) = gs::resolve(a, background);
    }
  }
  stats.frame_write_bytes += static_cast<std::uint64_t>(pi) * 4;  // RGBA8
}

// ------------------------------------------------------------ GroupPipeline --

void GroupPipeline::render_group(const StreamingScene& scene,
                                 const gs::Camera& camera,
                                 const FramePlan& plan,
                                 std::size_t group_index,
                                 const GroupPipelineOptions& options,
                                 stream::GroupSource& source, GroupContext& ctx,
                                 GroupWork& work, StreamingStats& stats,
                                 Image& image) {
  const voxel::VoxelGrid& grid = scene.grid();
  const voxel::DataLayout& layout = scene.layout();
  const int gsz = plan.group_size();
  const int gx = static_cast<int>(group_index) % plan.groups_x();
  const int gy = static_cast<int>(group_index) / plan.groups_x();
  const int px0 = gx * gsz;
  const int py0 = gy * gsz;
  const int px1 = std::min(camera.width(), px0 + gsz);
  const int py1 = std::min(camera.height(), py0 + gsz);
  const int n_px = (px1 - px0) * (py1 - py0);
  const GroupRect rect{static_cast<float>(px0), static_cast<float>(py0),
                       static_cast<float>(px1), static_cast<float>(py1)};

  const bool timed = options.collect_stage_timing;
  work.rays = static_cast<std::uint32_t>(n_px);
  ctx.begin_group(n_px);

  const std::uint64_t gidx = static_cast<std::uint64_t>(group_index);

  // --- VSU: ray marching + topological voxel ordering ----------------------
  std::uint64_t t0 = timed ? stage_clock_ns() : 0;
  VsuStageResult vsu;
  {
    SGS_TRACE_SPAN("stage", "vsu", "group", gidx);
    vsu = VsuStage::run(ctx, grid, camera, px0, py0, px1, py1,
                        options.ray_stride, plan.candidates(group_index));
  }
  if (timed) work.timing_ns.vsu += stage_clock_ns() - t0;

  stats.dda_steps += vsu.dda_steps;
  work.dda_steps = vsu.dda_steps;
  stats.topo_nodes += vsu.order.node_count;
  stats.topo_edges += vsu.order.edge_count;
  stats.cycle_breaks += vsu.order.cycle_breaks;
  work.nodes = static_cast<std::uint32_t>(vsu.order.node_count);
  work.edges = static_cast<std::uint32_t>(vsu.order.edge_count);
  work.voxels.reserve(vsu.order.order.size());

  // --- stream voxels through filter -> sort -> blend -----------------------
  // Per-voxel stages run in the low-microsecond range, so RAII spans per
  // voxel would dominate their own measurement (and blow the traced
  // overhead gate). Instead the loop accumulates per-stage wall time —
  // already needed for StageTimingsNs — and emits one aggregated span per
  // stage per group after the loop. `clocked` keeps the accumulation alive
  // when tracing wants it even though the caller didn't ask for timings.
  const bool traced = obs::trace_enabled();
  const bool clocked = timed || traced;
  const std::uint64_t loop_t0 = clocked ? stage_clock_ns() : 0;
  std::uint64_t filter_ns = 0, sort_ns = 0, blend_ns = 0;
  for (voxel::DenseVoxelId v : vsu.order.order) {
    if (ctx.saturated == n_px) break;  // group fully opaque: stop streaming

    // The source supplies this voxel group's decoded residents: a pointer
    // view for resident scenes, a (possibly stalling) cache fetch for
    // out-of-core stores. Held acquired through filter+sort+blend. The
    // acquire wall time splits into `decode` (this thread's synchronous
    // payload decode, counted by thread_decode_ns) and `fetch` (the rest:
    // disk reads, lock waits, waiting on another worker's fetch).
    const std::uint64_t d0 = timed ? thread_decode_ns() : 0;
    t0 = timed ? stage_clock_ns() : 0;
    const stream::GroupView group = source.acquire(v);
    if (timed) {
      const std::uint64_t acquire_ns = stage_clock_ns() - t0;
      const std::uint64_t decode_ns = thread_decode_ns() - d0;
      work.timing_ns.decode += decode_ns;
      work.timing_ns.fetch += acquire_ns > decode_ns ? acquire_ns - decode_ns : 0;
    }
    VoxelWorkItem item;
    item.residents = static_cast<std::uint32_t>(group.size());
    item.coarse_bytes =
        static_cast<std::uint64_t>(group.size()) * voxel::kCoarseRecordBytes;
    stats.max_voxel_residents =
        std::max(stats.max_voxel_residents, item.residents);

    t0 = clocked ? stage_clock_ns() : 0;
    const FilterStageCounts counts =
        FilterStage::run(ctx, group, camera, rect, options.use_coarse_filter);
    if (clocked) {
      const std::uint64_t t1 = stage_clock_ns();
      filter_ns += t1 - t0;
      t0 = t1;
    }
    item.coarse_pass = counts.coarse_pass;
    item.fine_pass = counts.fine_pass;
    item.fine_bytes = layout.fine_bytes(item.coarse_pass);

    SortStage::run(ctx);
    if (clocked) {
      const std::uint64_t t1 = stage_clock_ns();
      sort_ns += t1 - t0;
      t0 = t1;
    }

    BlendStage::run(ctx, px0, py0, px1, py1, item, stats);
    if (clocked) blend_ns += stage_clock_ns() - t0;
    source.release(v);

    stats.gaussians_streamed += item.residents;
    stats.coarse_pass += item.coarse_pass;
    stats.fine_pass += item.fine_pass;
    stats.blend_ops += item.blend_ops;
    stats.coarse_read_bytes += item.coarse_bytes;
    stats.fine_read_bytes += item.fine_bytes;
    ++stats.voxel_visits;
    work.voxels.push_back(item);
  }

  if (timed) {
    work.timing_ns.filter += filter_ns;
    work.timing_ns.sort += sort_ns;
    work.timing_ns.blend += blend_ns;
  }
  if (traced) {
    // One aggregated span per stage per group, laid back to back from the
    // loop start. Their union is a subset of the real loop interval (the
    // remainder is acquire time, which shows up as the cache fetch/decode
    // spans), so the timeline still nests; only the per-voxel interleaving
    // is collapsed.
    const std::pair<const char*, std::uint64_t> stage_spans[] = {
        {"filter", filter_ns}, {"sort", sort_ns}, {"blend", blend_ns}};
    std::uint64_t ts = loop_t0;
    for (const auto& [stage_name, stage_ns] : stage_spans) {
      obs::TraceEvent e{};
      e.name = stage_name;
      e.cat = "stage";
      e.ts_ns = ts;
      e.dur_ns = stage_ns;
      e.arg0_name = "group";
      e.arg0 = gidx;
      e.phase = obs::TracePhase::kSpan;
      obs::trace_emit(e);
      ts += stage_ns;
    }
  }

  // --- final pixel write-back (the only rendering-stage DRAM write) --------
  t0 = timed ? stage_clock_ns() : 0;
  {
    SGS_TRACE_SPAN("stage", "blend", "group", gidx);
    BlendStage::resolve(ctx, px0, py0, px1, py1, scene.config().background,
                        image, stats);
  }
  if (timed) work.timing_ns.blend += stage_clock_ns() - t0;
}

}  // namespace sgs::core
