#include "metrics/psnr.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace sgs::metrics {

double mse(const Image& a, const Image& b) {
  assert(a.width() == b.width() && a.height() == b.height());
  if (a.pixel_count() == 0) return 0.0;
  double acc = 0.0;
  const auto& pa = a.pixels();
  const auto& pb = b.pixels();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const Vec3f d = pa[i] - pb[i];
    acc += static_cast<double>(d.x) * d.x + static_cast<double>(d.y) * d.y +
           static_cast<double>(d.z) * d.z;
  }
  return acc / (3.0 * static_cast<double>(pa.size()));
}

double psnr(const Image& a, const Image& b) {
  const double m = mse(a, b);
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / m);
}

double psnr_capped(const Image& a, const Image& b, double cap_db) {
  const double v = psnr(a, b);
  return v > cap_db ? cap_db : v;
}

}  // namespace sgs::metrics
