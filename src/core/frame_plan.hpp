// Per-frame VSU voxel table: voxel -> pixel-group binning (paper Sec. IV-B).
//
// Each non-empty voxel's eight corners are projected once with the same
// conservative bound the coarse filter uses; the voxel becomes a rendering
// candidate for every group its (margin-padded) screen bbox touches. Sampled
// rays in the VSU stage only provide *ordering* edges — discovery is complete
// regardless of the ray stride, so no pixel can see a Gaussian whose voxel
// was never streamed.
//
// The plan is a frame-level object so sequence rendering can reuse it across
// frames: a plan built with a generous margin stays a usable binning while
// the camera moves a little (see reusable_for), which skips the per-frame
// table rebuild entirely — the first genuinely multi-frame reuse in the
// pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "gs/camera.hpp"
#include "voxel/grid.hpp"

namespace sgs::core {

class FramePlan {
 public:
  // Bins every non-empty voxel of `grid` into the pixel groups of `camera`'s
  // image. `margin_px` pads each voxel's projected bbox: the renderer needs
  // 1 px (rounding at group borders); plans built for reuse pass a larger
  // margin so small camera motion keeps the binning usable. Parallelized
  // with per-worker local bins merged once (no shared mutex on the insert
  // path); candidate lists are sorted, hence deterministic.
  static FramePlan build(const voxel::VoxelGrid& grid, const gs::Camera& camera,
                         int group_size, float margin_px = 1.0f);

  // build() plus wall-clock build time: `plan_ns` receives the elapsed
  // nanoseconds when `timed`, 0 otherwise. Shared by the single-frame
  // renderer and the sequence renderer so the two paths measure plan time
  // identically.
  static FramePlan build_timed(const voxel::VoxelGrid& grid,
                               const gs::Camera& camera, int group_size,
                               float margin_px, bool timed,
                               std::uint64_t& plan_ns);

  int group_size() const { return group_size_; }
  int groups_x() const { return groups_x_; }
  int groups_y() const { return groups_y_; }
  std::size_t group_count() const { return candidates_.size(); }
  float margin_px() const { return margin_px_; }
  const gs::Camera& camera() const { return camera_; }

  // Sorted dense voxel IDs that may affect the given group.
  const std::vector<voxel::DenseVoxelId>& candidates(std::size_t group) const {
    return candidates_[group];
  }

  // Sorted union of every group's candidates: the plan's predicted voxel
  // working set. Out-of-core sources pin these against eviction for the
  // duration of a frame and seed prefetch ranking with them. (Rays of a
  // *reused* plan can still discover voxels outside this set; those fetch
  // on demand.) Computed on call — O(total candidates log) — so the
  // single-frame resident path, which never needs it, pays nothing; the
  // sequence renderer caches the result per plan build.
  std::vector<voxel::DenseVoxelId> collect_unique_candidates() const;

  // Table-build cost charged to the VSU (one conservative projection per
  // non-empty voxel). Zero table steps are charged for frames that reuse a
  // cached plan.
  std::uint64_t voxel_table_steps() const { return voxel_table_steps_; }

  // True when this plan is still usable for `cam`: identical image geometry
  // (size + intrinsics), the camera translated / rotated less than the
  // given bounds since the plan was built, AND the depth-independent
  // rotation drift (focal * angle pixels) fits inside this plan's binning
  // margin. Translation drift scales with 1/depth, so that part of the
  // approximation remains the caller's threshold-vs-margin trade-off.
  bool reusable_for(const gs::Camera& cam, float max_translation,
                    float max_rotation_rad) const;

 private:
  gs::Camera camera_;
  int group_size_ = 64;
  int groups_x_ = 0;
  int groups_y_ = 0;
  float margin_px_ = 1.0f;
  std::uint64_t voxel_table_steps_ = 0;
  std::vector<std::vector<voxel::DenseVoxelId>> candidates_;
};

}  // namespace sgs::core
