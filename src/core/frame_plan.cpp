#include "core/frame_plan.hpp"

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "core/streaming_trace.hpp"
#include "gs/projection.hpp"

namespace sgs::core {

FramePlan FramePlan::build_timed(const voxel::VoxelGrid& grid,
                                 const gs::Camera& camera, int group_size,
                                 float margin_px, bool timed,
                                 std::uint64_t& plan_ns) {
  const std::uint64_t t0 = timed ? stage_clock_ns() : 0;
  FramePlan plan = build(grid, camera, group_size, margin_px);
  plan_ns = timed ? stage_clock_ns() - t0 : 0;
  return plan;
}

FramePlan FramePlan::build(const voxel::VoxelGrid& grid,
                           const gs::Camera& camera, int group_size,
                           float margin_px) {
  FramePlan plan;
  plan.camera_ = camera;
  plan.group_size_ = group_size;
  plan.margin_px_ = margin_px;

  const int width = camera.width();
  const int height = camera.height();
  const int gsz = group_size;
  const int groups_x = (width + gsz - 1) / gsz;
  const int groups_y = (height + gsz - 1) / gsz;
  plan.groups_x_ = groups_x;
  plan.groups_y_ = groups_y;
  const std::size_t group_count = static_cast<std::size_t>(groups_x) * groups_y;
  plan.candidates_.resize(group_count);
  plan.voxel_table_steps_ = static_cast<std::uint64_t>(grid.voxel_count());

  // Per-worker local bins, merged once below: no shared state on the insert
  // path. Each (voxel, group) pair is produced exactly once, so the merged,
  // sorted candidate lists are independent of the schedule.
  const int workers = parallelism();
  std::vector<std::vector<std::vector<voxel::DenseVoxelId>>> local_bins(
      static_cast<std::size_t>(workers));
  for (auto& bins : local_bins) bins.resize(group_count);

  const std::int32_t n_vox = grid.voxel_count();
  parallel_for_workers(0, static_cast<std::size_t>(n_vox),
                       [&](int worker, std::size_t vi) {
    auto& bins = local_bins[static_cast<std::size_t>(worker)];
    const auto v = static_cast<voxel::DenseVoxelId>(vi);
    // Project the 8 voxel corners: for a convex box fully in front of the
    // near plane, the hull of the projected corners bounds the box's
    // projection exactly. The (rare) near-plane straddle falls back to
    // binning everywhere; boxes fully behind are skipped.
    const Vec3f lo = grid.voxel_min_corner(v);
    const float vs = grid.config().voxel_size;
    // Corners barely in front of the camera plane still project to finite
    // (very large, hence conservative) coordinates; only corners behind
    // this epsilon force the unbounded fallback. Gaussians nearer than the
    // real near clip are culled by the filters anyway.
    constexpr float kBinEps = 0.01f;
    int behind_near = 0;   // corners behind the true near plane
    int behind_eps = 0;    // corners with unusable projections
    float px0 = 1e30f, py0 = 1e30f, px1 = -1e30f, py1 = -1e30f;
    for (int corner = 0; corner < 8; ++corner) {
      const Vec3f p{lo.x + ((corner & 1) ? vs : 0.0f),
                    lo.y + ((corner & 2) ? vs : 0.0f),
                    lo.z + ((corner & 4) ? vs : 0.0f)};
      const Vec3f p_cam = camera.world_to_camera(p);
      if (p_cam.z <= gs::kNearClip) ++behind_near;
      if (p_cam.z <= kBinEps) {
        ++behind_eps;
        continue;
      }
      const Vec2f uv = camera.project_cam(p_cam);
      px0 = std::min(px0, uv.x);
      py0 = std::min(py0, uv.y);
      px1 = std::max(px1, uv.x);
      py1 = std::max(py1, uv.y);
    }
    if (behind_near == 8) return;  // fully behind the near plane
    int gx0, gx1, gy0, gy1;
    if (behind_eps > 0) {
      // Crosses the camera plane itself: projection unbounded.
      gx0 = 0; gy0 = 0; gx1 = groups_x - 1; gy1 = groups_y - 1;
    } else {
      // The margin absorbs rounding at group borders (1 px) and, for plans
      // built for reuse, the projection drift of small camera motion.
      gx0 = std::max(0, static_cast<int>((px0 - margin_px) /
                                         static_cast<float>(gsz)));
      gy0 = std::max(0, static_cast<int>((py0 - margin_px) /
                                         static_cast<float>(gsz)));
      gx1 = std::min(groups_x - 1, static_cast<int>((px1 + margin_px) /
                                                    static_cast<float>(gsz)));
      gy1 = std::min(groups_y - 1, static_cast<int>((py1 + margin_px) /
                                                    static_cast<float>(gsz)));
      if (gx0 > gx1 || gy0 > gy1) return;  // fully off-screen
    }
    for (int gy = gy0; gy <= gy1; ++gy) {
      for (int gx = gx0; gx <= gx1; ++gx) {
        bins[static_cast<std::size_t>(gy) * groups_x + gx].push_back(v);
      }
    }
  });

  // Merge + sort per group (also parallel; groups are independent). The
  // sort fixes the order regardless of which worker binned which voxel —
  // the table build order is fixed in hardware anyway.
  parallel_for(0, group_count, [&](std::size_t g) {
    auto& out = plan.candidates_[g];
    std::size_t total = 0;
    for (const auto& bins : local_bins) total += bins[g].size();
    out.reserve(total);
    for (const auto& bins : local_bins) {
      out.insert(out.end(), bins[g].begin(), bins[g].end());
    }
    std::sort(out.begin(), out.end());
  });

  return plan;
}

std::vector<voxel::DenseVoxelId> FramePlan::collect_unique_candidates() const {
  std::vector<voxel::DenseVoxelId> all;
  std::size_t total = 0;
  for (const auto& c : candidates_) total += c.size();
  all.reserve(total);
  for (const auto& c : candidates_) all.insert(all.end(), c.begin(), c.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

bool FramePlan::reusable_for(const gs::Camera& cam, float max_translation,
                             float max_rotation_rad) const {
  if (cam.width() != camera_.width() || cam.height() != camera_.height()) {
    return false;
  }
  if (cam.fx() != camera_.fx() || cam.fy() != camera_.fy() ||
      cam.cx() != camera_.cx() || cam.cy() != camera_.cy()) {
    return false;
  }
  if ((cam.position() - camera_.position()).norm() > max_translation) {
    return false;
  }
  // Relative rotation angle from trace(R_new * R_old^T) = 1 + 2 cos(theta).
  const Mat3f rel = cam.rotation() * camera_.rotation().transposed();
  const float trace = rel.m[0][0] + rel.m[1][1] + rel.m[2][2];
  const float c = std::clamp((trace - 1.0f) * 0.5f, -1.0f, 1.0f);
  const float angle = std::acos(c);
  if (angle > max_rotation_rad) return false;
  // Rotation shifts every projection by ~focal * angle pixels regardless of
  // depth, so the plan can bound that drift itself: reuse only while the
  // binning margin absorbs it. (Translation drift scales with 1/depth and
  // stays the caller's threshold trade-off.)
  return cam.focal_max() * angle <= margin_px_;
}

}  // namespace sgs::core
