// Structure-of-arrays layout for decoded Gaussian parameters.
//
// The per-Gaussian hot path (coarse filter, fine projection, SH evaluation)
// touches a few fields of many records, so the AoS gs::Gaussian (236 B —
// more than three cache lines per record) wastes most of every line it
// pulls. GaussianColumns stores each parameter as its own contiguous float
// column: the coarse filter streams exactly the 16 B/record the paper's CFU
// reads ({x, y, z, s_max}), the fine phase reads only the columns it needs,
// and the SIMD kernels (gs/kernels.hpp) load 8 lanes with one unaligned
// vector load per column.
//
// SH coefficients are stored channel-deinterleaved: three columns (sh_r,
// sh_g, sh_b) of kShCoeffCount floats per record, record-major — record k's
// red coefficients occupy sh_r[k*16 .. k*16+16). A channel's 16 coefficients
// are contiguous, so one SH color evaluation is three 16-float dot products
// against the basis — two vector FMAs per channel under AVX2.
//
// Conversion to and from gs::Gaussian (set / gaussian) is exact float
// copying in both directions, which is what keeps the out-of-core == resident
// golden byte-identical: a cache entry's columns and the resident scene's
// columns hold bitwise-equal floats whenever the decoded records match.
#pragma once

#include <cstddef>
#include <vector>

#include "gs/gaussian.hpp"

namespace sgs::gs {

struct GaussianColumns {
  // Position / scale / rotation (wxyz) / opacity, one float column each.
  std::vector<float> px, py, pz;
  std::vector<float> sx, sy, sz;
  std::vector<float> rw, rx, ry, rz;
  std::vector<float> opacity;
  // The coarse stream's max-scale (decoded-aware under VQ): the 4th coarse
  // parameter, kept as its own column so the coarse filter never touches
  // the fine half.
  std::vector<float> max_scale;
  // SH, channel-deinterleaved, kShCoeffCount floats per record per channel.
  std::vector<float> sh_r, sh_g, sh_b;

  // 13 scalar columns + 3 * 16 SH floats = 61 floats = 244 B per record:
  // the in-memory footprint a residency budget is charged.
  static constexpr std::size_t kFloatsPerRecord =
      13 + 3 * static_cast<std::size_t>(kShCoeffCount);
  static constexpr std::size_t kBytesPerRecord =
      kFloatsPerRecord * sizeof(float);

  std::size_t size() const { return px.size(); }
  bool empty() const { return px.empty(); }
  std::size_t bytes() const { return size() * kBytesPerRecord; }

  void resize(std::size_t n);
  void clear();

  // Writes record k from an AoS Gaussian (exact copies). `coarse` is the
  // value the coarse stream carries for this record — the decoded-aware
  // max scale, not necessarily g.max_scale() for future encodings.
  void set(std::size_t k, const Gaussian& g, float coarse);

  // Materializes record k back to an AoS Gaussian (exact copies).
  Gaussian gaussian(std::size_t k) const;
};

}  // namespace sgs::gs
