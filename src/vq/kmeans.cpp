#include "vq/kmeans.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace sgs::vq {

namespace {

double sq_dist(const float* a, const float* b, std::size_t dim) {
  double d = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double t = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    d += t * t;
  }
  return d;
}

// k-means++ seeding over the (possibly subsampled) training set.
std::vector<float> seed_centroids(const float* data, std::size_t n,
                                  std::size_t dim, std::uint32_t k, Rng& rng) {
  std::vector<float> centroids(static_cast<std::size_t>(k) * dim);
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());

  std::size_t first = rng.uniform_index(n);
  std::copy_n(data + first * dim, dim, centroids.begin());
  for (std::uint32_t c = 1; c < k; ++c) {
    const float* prev = centroids.data() + static_cast<std::size_t>(c - 1) * dim;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], sq_dist(data + i * dim, prev, dim));
      total += min_d2[i];
    }
    // Sample proportional to squared distance; degenerate data falls back
    // to uniform.
    std::size_t pick = 0;
    if (total > 0.0) {
      double r = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        r -= min_d2[i];
        if (r <= 0.0) {
          pick = i;
          break;
        }
      }
    } else {
      pick = rng.uniform_index(n);
    }
    std::copy_n(data + pick * dim, dim,
                centroids.begin() + static_cast<std::size_t>(c) * dim);
  }
  return centroids;
}

}  // namespace

std::uint32_t nearest_centroid(std::span<const float> centroids, std::size_t dim,
                               std::span<const float> v) {
  assert(dim > 0 && centroids.size() % dim == 0 && v.size() == dim);
  const std::size_t k = centroids.size() / dim;
  std::uint32_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < k; ++c) {
    const double d = sq_dist(centroids.data() + c * dim, v.data(), dim);
    if (d < best_d) {
      best_d = d;
      best = static_cast<std::uint32_t>(c);
    }
  }
  return best;
}

KMeansResult kmeans(std::span<const float> data, std::size_t dim,
                    const KMeansConfig& config) {
  assert(dim > 0 && data.size() % dim == 0 && !data.empty());
  const std::size_t n = data.size() / dim;
  const std::uint32_t k = std::min<std::uint32_t>(
      config.k, static_cast<std::uint32_t>(std::min<std::size_t>(
                    n, std::numeric_limits<std::uint32_t>::max())));

  Rng rng(config.seed);

  // Training subsample (evenly strided so all regions are represented).
  std::vector<float> train_storage;
  const float* train = data.data();
  std::size_t train_n = n;
  if (config.max_train_samples > 0 && n > config.max_train_samples) {
    train_n = config.max_train_samples;
    train_storage.resize(train_n * dim);
    const double stride = static_cast<double>(n) / static_cast<double>(train_n);
    for (std::size_t i = 0; i < train_n; ++i) {
      const std::size_t src = static_cast<std::size_t>(static_cast<double>(i) * stride);
      std::copy_n(data.data() + src * dim, dim, train_storage.begin() + i * dim);
    }
    train = train_storage.data();
  }

  KMeansResult result;
  result.dim = dim;
  result.centroids = seed_centroids(train, train_n, dim, k, rng);

  std::vector<std::uint32_t> train_assign(train_n, 0);
  double prev_inertia = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < config.max_iters; ++iter) {
    // Assignment step (parallel over points).
    std::vector<double> inertia_partial(static_cast<std::size_t>(parallelism()), 0.0);
    const std::size_t chunk = (train_n + inertia_partial.size() - 1) / inertia_partial.size();
    parallel_for(0, inertia_partial.size(), [&](std::size_t t) {
      const std::size_t b = t * chunk;
      const std::size_t e = std::min(train_n, b + chunk);
      double local = 0.0;
      for (std::size_t i = b; i < e; ++i) {
        const std::uint32_t c = nearest_centroid(result.centroids, dim,
                                                 {train + i * dim, dim});
        train_assign[i] = c;
        local += sq_dist(train + i * dim,
                         result.centroids.data() + static_cast<std::size_t>(c) * dim, dim);
      }
      inertia_partial[t] = local;
    });
    double inertia = 0.0;
    for (double v : inertia_partial) inertia += v;

    // Update step (serial, deterministic).
    std::vector<double> sums(static_cast<std::size_t>(k) * dim, 0.0);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < train_n; ++i) {
      const std::uint32_t c = train_assign[i];
      ++counts[c];
      double* s = sums.data() + static_cast<std::size_t>(c) * dim;
      const float* p = train + i * dim;
      for (std::size_t d = 0; d < dim; ++d) s[d] += p[d];
    }
    for (std::uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep dead centroids where they are
      float* ctr = result.centroids.data() + static_cast<std::size_t>(c) * dim;
      const double* s = sums.data() + static_cast<std::size_t>(c) * dim;
      for (std::size_t d = 0; d < dim; ++d) {
        ctr[d] = static_cast<float>(s[d] / static_cast<double>(counts[c]));
      }
    }

    result.iters_run = iter + 1;
    if (prev_inertia < std::numeric_limits<double>::infinity() &&
        prev_inertia - inertia <= config.tol * std::max(1.0, prev_inertia)) {
      break;
    }
    prev_inertia = inertia;
  }

  // Final full assignment over all points (parallel, deterministic).
  result.assignment.resize(n);
  std::vector<double> inertia_partial(static_cast<std::size_t>(parallelism()), 0.0);
  const std::size_t chunk = (n + inertia_partial.size() - 1) / inertia_partial.size();
  parallel_for(0, inertia_partial.size(), [&](std::size_t t) {
    const std::size_t b = t * chunk;
    const std::size_t e = std::min(n, b + chunk);
    double local = 0.0;
    for (std::size_t i = b; i < e; ++i) {
      const std::uint32_t c =
          nearest_centroid(result.centroids, dim, {data.data() + i * dim, dim});
      result.assignment[i] = c;
      local += sq_dist(data.data() + i * dim,
                       result.centroids.data() + static_cast<std::size_t>(c) * dim, dim);
    }
    inertia_partial[t] = local;
  });
  result.inertia = 0.0;
  for (double v : inertia_partial) result.inertia += v;
  return result;
}

}  // namespace sgs::vq
