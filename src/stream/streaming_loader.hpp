// StreamingLoader: prefetch-driven GroupSource for out-of-core rendering —
// plus the shared, session-aware fetch queue a multi-viewer server uses.
//
// StreamingLoader decorates a ResidencyCache: acquire/release/pinning pass
// straight through, and begin_frame() additionally (a) selects a payload
// tier per plan group through its LodPolicy — acquire() then requests that
// tier, so distant groups stream importance-pruned subsets — and (b) ranks
// the store's fetch-worthy voxel groups by predicted visibility for the
// frame's camera — inflated by the caller's motion envelope, so groups
// about to enter the frustum are fetched *before* the frame that needs
// them — and fetches the best-ranked ones on the pool's async lane while
// the frame renders on the main workers. A demand miss still stalls the
// render worker that hits it; the loader's job is making those stalls rare.
//
// Ranking (rank_prefetch_groups): a group is a candidate when its directory
// AABB, padded by the envelope's worst-case projection drift, touches the
// image rect and it is not already resident at (or better than) the tier
// the policy wants for it; candidates are ordered near-to-far (near groups
// are streamed by more pixel groups and occlude far ones). Per frame,
// fetches are capped by a group-count and a byte budget — the
// fetch-bandwidth knob — with each candidate charged at its tier's bytes.
//
// Prefetch scheduling is a PRIORITY queue, not a FIFO: both front-ends
// push PrefetchRequests — priority = the ranking's near-to-far depth, ties
// broken by ascending group id so equal-rank order is deterministic — into
// a PrefetchPriorityQueue and drain it most-urgent-first. A demand acquire
// that missed its frame's fetch deadline (served from the cache's coarse
// floor, see residency_cache.hpp) re-queues its wanted tier at
// kUrgentPriority, ahead of every ranked candidate, so the group streams
// in at full fidelity for the following frames instead of being blocked
// on. Requests may carry their own deadline; a request that expires before
// its pop is dropped (expired_requests()) — its frame is already over.
//
// SharedPrefetchQueue is the N-session variant: every session enqueues its
// own ranking into ONE priority queue over one or more per-scene cache
// shards (requests are keyed by (scene, group, tier)). Requests for a
// (scene, group) already pending at the same or a better tier are merged
// (fetched once, counted in merged_requests()), and every drain task runs
// the queue dry — so no session starves: a request pushed before batch k's
// drain is fetched no later than that drain, regardless of which session
// or scene pushed it.
//
// Thread-safety: StreamingLoader assumes one driving session (its frame
// bracket is the single-session GroupSource contract), but its fetches run
// concurrently with render workers. SharedPrefetchQueue::enqueue and both
// classes' fallback re-queues are safe from any number of threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "stream/bandwidth_estimator.hpp"
#include "stream/lod_policy.hpp"
#include "stream/residency_cache.hpp"

namespace sgs::stream {

class SessionCacheStats;

struct PrefetchConfig {
  // Per-frame fetch-ahead caps (bandwidth budget per frame).
  std::size_t max_groups_per_frame = 64;
  std::uint64_t max_bytes_per_frame = 16ull << 20;
  // The motion envelope is assumed to persist for this many frames: the
  // visibility pad grows with it, so the prefetcher looks further ahead
  // along the camera's drift than a single frame's reuse bound.
  float lookahead_frames = 4.0f;
  // Fetch inline inside begin_frame/enqueue instead of on the async lane.
  // Slower (the fetch no longer overlaps rendering) but fully deterministic
  // — what the golden tests and reproducible benchmarks use.
  bool synchronous = false;
  // Per-frame demand-fetch deadline, RELATIVE nanoseconds from
  // begin_frame. kNoFetchDeadline keeps demand misses blocking (the
  // bit-exact pre-floor behavior); 0 expires instantly, so every miss of a
  // floor-backed group serves the coarse tier — deterministic zero-stall.
  // An intent carrying its own fetch_deadline_ns overrides this.
  std::uint64_t fetch_deadline_ns = kNoFetchDeadline;
  // Tier selection for plan groups and prefetch candidates. The defaults
  // adapt on multi-tier stores and degenerate to L0 on v1 stores;
  // lod.force_tier0 restores bit-exact out-of-core rendering everywhere.
  LodPolicy lod;
};

// Priority of deadline-fallback re-queues: sorts ahead of every ranked
// candidate (ranking priorities are camera distances, >= 0).
inline constexpr float kUrgentPriority = -1.0f;

// One group worth fetching, at the tier the policy wants it. Requests are
// keyed by (scene, group, tier): `scene` indexes the shard cache of a
// multi-scene SharedPrefetchQueue (always 0 for single-scene front-ends),
// so two scenes' groups with the same dense id never merge.
struct PrefetchRequest {
  voxel::DenseVoxelId id = 0;
  std::uint32_t scene = 0;
  std::uint8_t tier = 0;
  // Queue ordering key: lower pops first (the ranking stores its
  // near-to-far camera distance here; demand re-queues use
  // kUrgentPriority). Ties pop by ascending group id — deterministic.
  float priority = 0.0f;
  // Drop-dead time on core::stage_clock_ns: a request still pending at its
  // deadline is dropped at pop (the frame that wanted it is already
  // over). kNoFetchDeadline = never expires.
  std::uint64_t deadline_ns = kNoFetchDeadline;
  // Attribution sink credited if this request's fetch lands (nullable).
  SessionCacheStats* sink = nullptr;
};

// The deduplicated, deadline-aware priority queue both prefetch front-ends
// schedule on. push() merges against pending work: a group already pending
// at the same or a better tier absorbs the new request (merged(),
// dropped); a strictly better tier supersedes the pending one. pop()
// yields the most urgent live request — lowest priority value first, ties
// by ascending group id — dropping expired requests (expired()) on the
// way. Thread-safe; pop order for a fixed push set is deterministic.
class PrefetchPriorityQueue {
 public:
  // True when the request entered the queue; false when it was merged into
  // a pending same-or-better request.
  bool push(const PrefetchRequest& request);
  // Pops the most urgent live request into *out. False when the queue ran
  // dry. `now_ns` is the expiry clock (pass core::stage_clock_ns()).
  bool pop(PrefetchRequest* out, std::uint64_t now_ns);
  // Pending (pushed, not yet popped or merged-away) requests.
  std::size_t pending() const;
  // Requests absorbed by an already-pending same-or-better request.
  std::uint64_t merged() const;
  // Requests dropped at pop because their deadline had passed.
  std::uint64_t expired() const;

 private:
  struct Node {
    float priority = 0.0f;
    voxel::DenseVoxelId id = 0;
    std::uint32_t scene = 0;
    std::uint8_t tier = 0;
    std::uint64_t deadline_ns = kNoFetchDeadline;
    SessionCacheStats* sink = nullptr;
  };
  // Min-heap order: lowest (priority, scene, id) pops first — scene joins
  // the tie-break so equal-rank pop order stays deterministic on a
  // multi-scene queue.
  static bool later(const Node& a, const Node& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    if (a.scene != b.scene) return a.scene > b.scene;
    return a.id > b.id;
  }
  // Dedup key: requests merge per (scene, group); the mapped value is the
  // best tier pending for that pair.
  static std::uint64_t key(std::uint32_t scene, voxel::DenseVoxelId id) {
    return (std::uint64_t{scene} << 32) |
           static_cast<std::uint32_t>(id);
  }

  mutable std::mutex mutex_;
  std::vector<Node> heap_;
  // (scene, group) -> best tier pending. A heap node whose tier no longer
  // matches was superseded by a better-tier push and is skipped at pop
  // (lazy deletion keeps push O(log n) without heap surgery).
  std::unordered_map<std::uint64_t, std::uint8_t> pending_;
  std::uint64_t merged_ = 0;
  std::uint64_t expired_ = 0;
};

// Fetch-worthy groups for `intent` against `cache`'s store, best first
// (near-to-far), capped by the config's group/byte budgets. A group
// qualifies when it is absent or resident only at a worse tier than
// config.lod wants. The shared ranking core of StreamingLoader and
// SharedPrefetchQueue.
std::vector<PrefetchRequest> rank_prefetch_groups(
    const ResidencyCache& cache, const FrameIntent& intent,
    const PrefetchConfig& config);

// Thread-safe per-session cache-counter sink. A session's own front-end
// (serve::SessionSource) and the shared fetch queue both credit it: render
// workers record hits/misses concurrently while the async lane records the
// prefetches this session's intents initiated.
class SessionCacheStats {
 public:
  void record_acquire(const AcquireOutcome& outcome) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (outcome.degraded) {
      // Served degraded (stale tier or empty view) because of an error
      // state. Counted under misses — the request was not satisfied at the
      // asked tier — with the failure attributed alongside.
      ++stats_.misses;
      ++stats_.tier_misses[static_cast<std::size_t>(outcome.requested_tier)];
      ++stats_.degraded_groups;
      if (outcome.fetch_errored) ++stats_.fetch_errors;
      if (outcome.group_failed) failed_seen_.insert(outcome.group);
    } else if (outcome.missed) {
      ++stats_.misses;
      ++stats_.tier_misses[static_cast<std::size_t>(outcome.requested_tier)];
      if (outcome.upgraded) ++stats_.upgrades;
      stats_.bytes_fetched += outcome.bytes_fetched;
      stats_.tier_bytes_fetched[static_cast<std::size_t>(
          outcome.requested_tier)] += outcome.bytes_fetched;
      stats_.net_bytes += outcome.bytes_fetched;
      stats_.net_stall_ns += outcome.fetch_ns;
      estimator_.observe(outcome.bytes_fetched, outcome.fetch_ns);
    } else {
      // Hits — including deadline fallbacks (outcome.coarse_fallback),
      // which are hits at the served floor/stale tier; the once-per-
      // (frame, group) fallback counter is credited separately through
      // record_coarse_fallback() by the frame front-end that dedups it.
      ++stats_.hits;
      ++stats_.tier_hits[static_cast<std::size_t>(outcome.served_tier)];
    }
  }
  // Called once per (frame, group) served from the coarse floor — the
  // front-end dedups, so session counters sum to the cache's global one.
  void record_coarse_fallback() {
    std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.coarse_fallbacks;
  }
  // `net_ns` is the backend transfer time of the fetch (0 on a local disk
  // or perfect link) — it feeds this session's net counters and bandwidth
  // estimate alongside the byte traffic.
  void record_prefetch(std::uint64_t bytes, int tier = 0,
                       std::uint64_t net_ns = 0) {
    std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.prefetches;
    ++stats_.tier_prefetches[static_cast<std::size_t>(tier)];
    stats_.bytes_fetched += bytes;
    stats_.tier_bytes_fetched[static_cast<std::size_t>(tier)] += bytes;
    stats_.net_bytes += bytes;
    stats_.net_stall_ns += net_ns;
    estimator_.observe(bytes, net_ns);
  }
  // ABR demotions this session's frame selection charged to the throughput
  // term (TierSelection::abr_demoted, credited once per begin_frame).
  void record_abr_demotions(std::uint32_t n) {
    if (n == 0) return;
    std::lock_guard<std::mutex> lk(mutex_);
    stats_.abr_demotions += n;
  }
  // This session's measured link estimate: what its frame front-end copies
  // into LodPolicy::link_bandwidth_bytes_per_sec before tier selection.
  // 0 until a transfer with non-zero duration completes.
  double estimated_bandwidth_bps() const {
    return estimator_.bandwidth_bytes_per_sec();
  }
  // A prefetch this session requested was attempted and errored (the batch
  // continues past it; the error is attributed here). Unlike the traffic
  // counters, errors are not tier-resolved in StreamCacheStats.
  void record_prefetch_error() {
    std::lock_guard<std::mutex> lk(mutex_);
    ++stats_.fetch_errors;
  }
  core::StreamCacheStats snapshot() const {
    std::lock_guard<std::mutex> lk(mutex_);
    core::StreamCacheStats s = stats_;
    // Session scope: DISTINCT permanently-failed groups this session
    // touched (the shared cache's counter is the global transition count).
    s.failed_groups = failed_seen_.size();
    return s;
  }

 private:
  mutable std::mutex mutex_;
  core::StreamCacheStats stats_;  // evictions stay 0: they are a property
                                  // of the shared cache, not of a session
  std::unordered_set<voxel::DenseVoxelId> failed_seen_;
  // Per-session link estimate over the transfers attributed to this
  // session (demand misses + credited prefetches). Own mutex: observe()
  // is called under mutex_, and the estimator's lock is a leaf.
  BandwidthEstimator estimator_;
};

class StreamingLoader final : public GroupSource {
 public:
  explicit StreamingLoader(ResidencyCache& cache, PrefetchConfig config = {});
  // Drains in-flight async fetches (they capture `this`).
  ~StreamingLoader() override;

  void begin_frame(const FrameIntent& intent,
                   std::span<const voxel::DenseVoxelId> plan_voxels) override;
  void end_frame() override;
  GroupView acquire(voxel::DenseVoxelId v) override;
  void release(voxel::DenseVoxelId v) override;
  core::StreamCacheStats stats() const override;

  // Ranking for this loader's cache and config. Exposed for tests.
  std::vector<PrefetchRequest> rank_prefetch(const FrameIntent& intent) const;

  // Blocks until all submitted prefetch batches have landed.
  void wait_idle() const;

  // The last begin_frame's tier selection (histogram + demotions), for
  // reporting degraded frames. Valid between begin_frame and the next.
  const TierSelection& frame_selection() const { return selection_; }

  // The loader's priority queue (pending/merged/expired introspection).
  const PrefetchPriorityQueue& queue() const { return queue_; }

  // The loader's link estimate over its completed demand + prefetch
  // transfers. begin_frame folds it into tier selection when the config's
  // LodPolicy enables the ABR term (abr_frame_budget_ns > 0).
  const BandwidthEstimator& estimator() const { return estimator_; }

  ResidencyCache& cache() { return *cache_; }
  const PrefetchConfig& config() const { return config_; }

 private:
  void drain_queue();

  ResidencyCache* cache_;
  PrefetchConfig config_;
  TierSelection selection_;  // tier_by_group consulted by acquire()
  PrefetchPriorityQueue queue_;
  // Link estimate fed by every completed transfer this loader triggered;
  // stats() reports the ABR demotions its frames accumulated (the cache's
  // global counter stays 0 — demotion is a front-end decision).
  BandwidthEstimator estimator_;
  std::atomic<std::uint64_t> abr_demotions_{0};
  // This frame's absolute demand-fetch deadline on core::stage_clock_ns
  // (computed in begin_frame from the intent's/config's relative budget).
  std::uint64_t frame_deadline_ns_ = kNoFetchDeadline;
  // Groups already served from the coarse floor this frame: acquire() runs
  // on every render worker, but the fallback counter and the urgent
  // re-queue must fire once per (frame, group).
  std::mutex fallback_mutex_;
  std::unordered_set<voxel::DenseVoxelId> fallback_seen_;
};

// One fetch queue shared by N viewer sessions over one or more per-scene
// ResidencyCache shards.
//
// Each session calls enqueue() at the top of its frame with its own camera
// intent, its scene index, and optionally its SessionCacheStats sink for
// attribution plus its own LodPolicy. The queue ranks the session's
// candidates against ITS scene's shard and pushes them into the shared
// PrefetchPriorityQueue keyed by (scene, group, tier) — groups already
// pending for *any* session of the same scene at the same or a better tier
// merge away (the request is served by the fetch already on its way);
// requests from different scenes never merge — then schedules a drain on
// the async FIFO lane. Every drain runs the queue dry, most-urgent-first
// across all scenes and sessions, so service is bounded for every session:
// a request pushed before batch k's drain is fetched no later than that
// drain, whoever pushed it.
class SharedPrefetchQueue {
 public:
  // Single-scene front-end (the PR 3 shape): one cache, scene index 0.
  explicit SharedPrefetchQueue(ResidencyCache& cache,
                               PrefetchConfig config = {});
  // Multi-scene front-end: shards[k] is scene k's cache. The shard set is
  // fixed for the queue's lifetime; every shard must outlive it. Throws
  // std::invalid_argument on an empty or null-holding shard list.
  SharedPrefetchQueue(std::vector<ResidencyCache*> shards,
                      PrefetchConfig config = {});
  // Drains in-flight batches (their tasks capture `this`).
  ~SharedPrefetchQueue();

  // Ranks + enqueues one session's prefetch work against scene `scene`'s
  // shard. Returns the number of groups newly queued (after merging with
  // other sessions' pending requests). `sink`, when non-null, is credited
  // for every group this call's batch actually fetches — including fetches
  // that land after the session's frame ended (the counters are cumulative
  // and monotone). `lod`, when non-null, overrides the queue config's
  // policy — the per-session quality knob of the serve layer. Throws
  // std::out_of_range for an unknown scene.
  std::size_t enqueue(const FrameIntent& intent,
                      SessionCacheStats* sink = nullptr,
                      const LodPolicy* lod = nullptr,
                      std::uint32_t scene = 0);

  // Deadline-fallback re-queue: pushes (scene, id, tier) at
  // kUrgentPriority so the group a session just served from the coarse
  // floor streams in at its wanted tier ahead of every ranked candidate.
  // Schedules a drain unless the queue is synchronous (then the next
  // enqueue drains it). Safe from any render worker.
  void requeue_urgent(voxel::DenseVoxelId id, std::uint8_t tier,
                      SessionCacheStats* sink = nullptr,
                      std::uint32_t scene = 0);

  // Blocks until every batch enqueued before this call has landed.
  void wait_idle() const;

  // Requests dropped because the same (scene, group) was already pending
  // at the same or a better tier for some session: the fetch-traffic the
  // merge saved, in group requests.
  std::uint64_t merged_requests() const;
  // Requests still pending in the shared priority queue (0 after a
  // wait_idle with no concurrent enqueues: nothing starves).
  std::size_t pending_requests() const;
  // Requests dropped at pop because their deadline had passed.
  std::uint64_t expired_requests() const;

  std::size_t scene_count() const { return shards_.size(); }
  ResidencyCache& cache(std::uint32_t scene = 0) {
    return *shards_.at(scene);
  }
  const PrefetchConfig& config() const { return config_; }

 private:
  void drain();

  std::vector<ResidencyCache*> shards_;  // indexed by scene
  PrefetchConfig config_;
  PrefetchPriorityQueue queue_;
};

}  // namespace sgs::stream
