// Analytic roofline model of the Nvidia Orin NX mobile GPU running the
// reference (tile-centric) 3DGS pipeline.
//
// The paper uses on-device measurements (Fig. 3: 2-9 FPS across scenes);
// hardware is unavailable here, so the GPU is modeled per stage as
// max(compute time, memory time) with achieved-efficiency factors
// calibrated to land the same FPS band on equivalent workloads (see
// EXPERIMENTS.md). The trace supplies exact FLOP and byte counts, so scene-
// to-scene *ratios* come from the workload, not the calibration.
#pragma once

#include "render/trace.hpp"
#include "sim/energy_model.hpp"
#include "sim/hw_config.hpp"
#include "sim/report.hpp"

namespace sgs::sim {

struct GpuStageTimes {
  double projection_s = 0.0;
  double sorting_s = 0.0;
  double rendering_s = 0.0;

  double total_s() const { return projection_s + sorting_s + rendering_s; }
};

struct GpuSimResult {
  SimReport report;
  GpuStageTimes stages;
  // Per-stage DRAM bytes (projection, sorting, rendering) for the Fig. 4
  // bandwidth-requirement breakdown.
  std::uint64_t projection_bytes = 0;
  std::uint64_t sorting_bytes = 0;
  std::uint64_t rendering_bytes = 0;
};

GpuSimResult simulate_gpu(const render::TileCentricTrace& trace,
                          const GpuConfig& config = {});

// DRAM bandwidth (GB/s) the trace would need to sustain `target_fps`
// (paper Fig. 4 uses 90 FPS).
double required_bandwidth_gbps(const render::TileCentricTrace& trace,
                               double target_fps);

}  // namespace sgs::sim
