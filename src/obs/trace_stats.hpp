// Validation + summarization of an exported Chrome Trace Event JSON file
// (obs/trace.hpp's write_chrome_trace output, or anything schema-compatible).
//
// Shared by the tools/trace_stats CLI (which CI smoke-runs on the
// bench_streaming trace artifact) and the obs test suite. Parsing is a
// self-contained minimal JSON reader — the repo takes no JSON dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sgs::obs {

// Aggregates for one span name ("filter", "fetch", ...).
struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t total_dur_ns = 0;
  std::uint64_t max_dur_ns = 0;
};

// One span occurrence, kept for the top-N listings.
struct SpanSample {
  std::string name;
  int tid = 0;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::int64_t group = -1;  // "group" arg when present
  std::int64_t tier = -1;   // "tier" arg when present
};

struct TraceSummary {
  std::size_t events = 0;    // spans + instants (metadata excluded)
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::vector<int> tids;     // distinct thread ids, ascending
  std::map<int, std::string> thread_names;
  std::map<std::string, SpanAgg> by_name;               // spans by name
  std::map<std::string, std::uint64_t> instants_by_name;
  // "session_frame" spans grouped by their "session" arg.
  std::map<std::int64_t, SpanAgg> by_session;
  // Every "fetch" span, sorted by duration descending.
  std::vector<SpanSample> fetches;
};

// Parses and validates `path`. Returns std::nullopt and sets *error on
// malformed JSON or schema violations (missing ph/tid/name, a span without
// ts/dur, a non-object event, ...).
std::optional<TraceSummary> analyze_trace_file(const std::string& path,
                                               std::string* error);

// Same, over an in-memory document (tests).
std::optional<TraceSummary> analyze_trace_text(const std::string& text,
                                               std::string* error);

}  // namespace sgs::obs
