// Minimal deterministic parallel-for over index ranges.
//
// Rendering parallelizes over image tiles; each tile writes a disjoint pixel
// region and accumulates its own statistics, so a static block partition is
// race-free and reproducible regardless of thread count.
#pragma once

#include <cstddef>
#include <functional>

namespace sgs {

// Number of worker threads used by parallel_for (defaults to hardware
// concurrency, at least 1). Override via set_parallelism, e.g. in tests.
int parallelism();
void set_parallelism(int n);

// Invokes fn(i) for i in [begin, end). Blocks until all iterations complete.
// fn must be safe to call concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace sgs
