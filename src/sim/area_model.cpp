#include "sim/area_model.hpp"

#include <sstream>

namespace sgs::sim {

AreaReport area_report(const StreamingGsHwConfig& hw, const AreaConstants& c) {
  AreaReport rep;
  auto add = [&rep](const std::string& unit, const std::string& config,
                    double area) {
    rep.rows.push_back({unit, config, area});
    rep.total_mm2 += area;
  };

  add("Voxel Sorting Unit", std::to_string(hw.vsu_count) + " Unit",
      c.vsu_mm2 * hw.vsu_count);
  {
    std::ostringstream cfgs;
    cfgs << hw.hfu_count << " Units";
    add("Hierarchical Filtering Unit", cfgs.str(), c.hfu_mm2 * hw.hfu_count);
  }
  add("Sorting Unit", std::to_string(hw.sort_unit_count) + " Units",
      c.sort_unit_mm2 * hw.sort_unit_count);
  add("Rendering Unit", std::to_string(hw.render_unit_count) + " Units",
      c.render_unit_mm2 * hw.render_unit_count);
  const double sram_kb = hw.input_buffer_kb + hw.codebook_kb + hw.scratch_kb;
  {
    std::ostringstream cfgs;
    cfgs << static_cast<int>(sram_kb) << "KB";
    add("SRAM (Input Buffer, Codebook, others)", cfgs.str(),
        c.sram_mm2_per_kb * sram_kb);
  }
  return rep;
}

}  // namespace sgs::sim
