// Fig. 12 reproduction: sensitivity of energy efficiency and rendering
// quality to the voxel size (train scene, original 3DGS).
//
// Paper: PSNR falls from ~22.3 dB at voxel 2 to ~21.5 dB at voxel 0.5
// (more cross-boundary Gaussians at small voxels), while very large voxels
// admit more irrelevant Gaussians per voxel and lower energy efficiency;
// voxel size 2 balances both.
//
//   ./fig12_voxel_size [--scene train] [--model_scale 0.04] [--res_scale 0.4]
//                      [--sizes 0.5,1,1.5,2,2.5,3]
#include <sstream>

#include "bench_common.hpp"
#include "common/cli.hpp"
#include "metrics/psnr.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace sgs;
  CliArgs args(argc, argv);
  const auto preset = scene::preset_from_name(args.get("scene", "train"));
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.04));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.4));

  std::vector<double> sizes;
  {
    std::istringstream is(args.get("sizes", "0.5,1,1.5,2,2.5,3"));
    std::string tok;
    while (std::getline(is, tok, ',')) sizes.push_back(std::atof(tok.c_str()));
  }

  bench::print_header(
      "Fig. 12 - voxel-size sensitivity (scene '" +
          scene::preset_info(preset).name + "', original 3DGS)",
      "PSNR 21.5 dB @0.5 -> 22.3 dB @2; energy efficiency peaks near 2");

  bench::Table table({"voxel size", "energy savings", "PSNR full [dB]",
                      "PSNR noVQ [dB]", "cross-boundary", "error Gaussians",
                      "streamed/frame", "filtered"});

  for (const double vs : sizes) {
    sim::ExperimentConfig cfg;
    cfg.preset = preset;
    cfg.model_scale = model_scale;
    cfg.resolution_scale = res_scale;
    cfg.voxel_size = static_cast<float>(vs);
    sim::SceneExperiment exp(cfg);
    const auto out = exp.run_variant(sim::Variant::kFull);
    const double energy_savings =
        exp.gpu().report.energy_mj() / out.accel.energy_mj();
    const double cross =
        exp.streaming_scene(true).grid().cross_boundary_ratio(exp.model());
    // Ordering-induced quality loss isolated from the VQ floor: the no-VQ
    // streaming render against the same reference.
    const auto no_vq =
        core::render_streaming(exp.streaming_scene(false), exp.camera());
    const double psnr_novq =
        metrics::psnr_capped(no_vq.image, exp.reference().image);

    table.row({bench::fmt(vs, 1), bench::fmt_ratio(energy_savings),
               bench::fmt(out.psnr_vs_reference_db, 2),
               bench::fmt(psnr_novq, 2), bench::fmt(100.0 * cross, 1) + "%",
               bench::fmt(100.0 * out.stats.violation_ratio(), 2) + "%",
               std::to_string(out.stats.gaussians_streamed),
               bench::fmt(100.0 * out.stats.filtered_fraction(), 1) + "%"});
  }
  table.print();
  std::printf(
      "\n  Expected shape: small voxels -> more cross-boundary Gaussians ->\n"
      "  lower PSNR; beyond the knee, PSNR saturates while per-voxel\n"
      "  redundancy grows and energy efficiency degrades.\n");
  return 0;
}
