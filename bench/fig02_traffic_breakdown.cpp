// Fig. 2 reproduction: DRAM traffic proportions across the stages of the
// tile-centric (original 3DGS) rendering pipeline.
//
// Paper values (real-world scenes): projection read 25.9%, sorting r/w
// 23.9% + 26.6%, rendering read 8.0%, projection write 14.7%, frame write
// 0.8%; projection+sorting together ~90%, intermediate traffic ~85%.
//
//   ./fig02_traffic_breakdown [--model_scale 0.05] [--res_scale 0.5]
#include "bench_common.hpp"
#include "common/cli.hpp"
#include "common/units.hpp"
#include "render/tile_renderer.hpp"
#include "scene/presets.hpp"

int main(int argc, char** argv) {
  using namespace sgs;
  using render::Stage;
  CliArgs args(argc, argv);
  const float model_scale = static_cast<float>(args.get_double("model_scale", 0.05));
  const float res_scale = static_cast<float>(args.get_double("res_scale", 0.5));

  bench::print_header(
      "Fig. 2 - DRAM traffic breakdown of the tile-centric pipeline",
      "proj-read 25.9% | proj-write 14.7% | sort-read 23.9% | sort-write "
      "26.6% | render-read 8.0% | render-write 0.8%");

  bench::Table table({"scene", "total", "proj-rd", "proj-wr", "sort-rd",
                      "sort-wr", "rend-rd", "rend-wr", "intermediate"});

  double agg[render::kStageCount] = {};
  double agg_total = 0.0, agg_intermediate = 0.0;

  for (const scene::ScenePreset p : scene::kAllPresets) {
    const auto& info = scene::preset_info(p);
    const auto model = scene::make_preset_scene(p, model_scale);
    int w = 0, h = 0;
    scene::scaled_resolution(p, res_scale, w, h);
    const auto cam = scene::make_preset_camera(p, w, h);
    const auto r = render::render_tile_centric(model, cam);
    const auto& t = r.trace.traffic;

    auto pct = [&](Stage s) { return bench::fmt(100.0 * t.fraction(s), 1) + "%"; };
    table.row({info.name, format_bytes(static_cast<double>(t.total())),
               pct(Stage::kProjectionRead), pct(Stage::kProjectionWrite),
               pct(Stage::kSortingRead), pct(Stage::kSortingWrite),
               pct(Stage::kRenderingRead), pct(Stage::kRenderingWrite),
               bench::fmt(100.0 * static_cast<double>(t.intermediate()) /
                              static_cast<double>(t.total()),
                          1) +
                   "%"});
    for (int s = 0; s < render::kStageCount; ++s) {
      agg[s] += static_cast<double>(t.bytes[static_cast<std::size_t>(s)]);
    }
    agg_total += static_cast<double>(t.total());
    agg_intermediate += static_cast<double>(t.intermediate());
  }

  std::vector<std::string> mean_row = {"MEAN", format_bytes(agg_total / 6.0)};
  for (int s = 0; s < render::kStageCount; ++s) {
    mean_row.push_back(bench::fmt(100.0 * agg[s] / agg_total, 1) + "%");
  }
  mean_row.push_back(bench::fmt(100.0 * agg_intermediate / agg_total, 1) + "%");
  table.row(mean_row);
  table.print();

  const double proj_sort_pct =
      100.0 * (agg[0] + agg[1] + agg[2] + agg[3]) / agg_total;
  std::printf(
      "\n  projection+sorting share: %.1f%% (paper: ~90%%)\n"
      "  intermediate share:       %.1f%% (paper: ~85%%)\n",
      proj_sort_pct, 100.0 * agg_intermediate / agg_total);
  return 0;
}
